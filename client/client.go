// Package client is the Go client for galsd with the retry discipline the
// server's degradation contract expects: exponential backoff with full
// jitter, Retry-After honoring, a total retry budget and a consecutive-
// failure circuit breaker. Every galsd compute endpoint is idempotent (a
// request is a pure function of its body, and partial results are never
// cached server-side), so the client retries POSTs as freely as GETs —
// but only on the responses the server marks transient: 429, 503, 504 and
// transport errors. 4xx validation failures surface immediately.
//
// The zero Options value is usable: it targets http://localhost:8347 with
// 8 attempts, 100ms base backoff and a 5-failure breaker.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gals/internal/core"
	"gals/internal/experiment"
	"gals/internal/service"
)

// Re-exported wire types, so callers need not import internal packages
// (and cannot: gals/internal is invisible outside the module).
type (
	RunRequest   = service.RunRequest
	RunResult    = service.RunResult
	SweepRequest = service.SweepRequest
	SweepResult  = service.SweepResult
	SuiteRequest = service.SuiteRequest
	SuiteSummary = service.SuiteSummary
	ServerStats  = service.Stats
	Telemetry    = core.Telemetry
)

// ErrBreakerOpen is returned without touching the network while the
// circuit breaker is open: enough consecutive calls have failed that the
// server is presumed down, and hammering it would slow its recovery.
var ErrBreakerOpen = errors.New("client: circuit breaker open")

// APIError is a non-2xx response from galsd.
type APIError struct {
	StatusCode int
	Message    string        // the server's {"error": ...}, or the raw body
	RetryAfter time.Duration // parsed Retry-After, 0 when absent
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: galsd returned %d: %s", e.StatusCode, e.Message)
}

// Retryable reports whether the response signals a transient condition
// under the server's contract: 429 (admission control), 503 (queue full /
// shutting down / injected fault) and 504 (deadline expired; the next
// attempt may land on a warmer cache or a quieter server).
func (e *APIError) Retryable() bool {
	switch e.StatusCode {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Options configures a Client. The zero value works; fields override.
type Options struct {
	// BaseURL is the server root (default "http://localhost:8347").
	BaseURL string
	// Token, when set, is sent as "Authorization: Bearer <Token>".
	Token string
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client

	// MaxAttempts bounds tries per call, first attempt included
	// (default 8; 1 disables retries).
	MaxAttempts int
	// BaseBackoff seeds the exponential schedule (default 100ms): attempt
	// k sleeps a uniform random duration in [0, min(MaxBackoff,
	// BaseBackoff<<k)] — "full jitter", which spreads a thundering herd of
	// recovering clients instead of synchronizing it.
	BaseBackoff time.Duration
	// MaxBackoff caps one sleep (default 10s).
	MaxBackoff time.Duration
	// Budget caps the total time a call may spend across attempts and
	// sleeps; when the next sleep would overrun it, the last error returns
	// instead (default 0 = no budget beyond ctx).
	Budget time.Duration

	// BreakerThreshold opens the breaker after this many consecutive
	// failed calls (default 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before the next
	// call is allowed through as a probe (default 5s).
	BreakerCooldown time.Duration

	// Rand overrides the jitter source (default math/rand.Float64); tests
	// inject a deterministic one.
	Rand func() float64
}

// Client is a galsd API client. Safe for concurrent use.
type Client struct {
	opt  Options
	http *http.Client

	mu        sync.Mutex
	fails     int       // consecutive failed calls
	openUntil time.Time // breaker open until then (zero = closed)

	st clientCounters
}

// ClientStats is a snapshot of one Client's per-outcome counters: what the
// retry/breaker machinery actually did, from the caller's side of the
// wire. Read it with Client.Stats.
type ClientStats struct {
	// Calls counts API calls issued; Successes and Failures their final
	// outcomes (a call that succeeded on its third attempt is one Call,
	// one Success, two Retries).
	Calls, Successes, Failures int64
	// Attempts counts HTTP exchanges; Retries the attempts beyond each
	// call's first.
	Attempts, Retries int64
	// RateLimited, Unavailable and Timeouts count 429, 503 and 504
	// responses (per attempt, not per call); OtherAPIErrors the remaining
	// non-2xx statuses; TransportErrors failures with no HTTP status at
	// all (refused connections, resets).
	RateLimited, Unavailable, Timeouts int64
	OtherAPIErrors, TransportErrors    int64
	// BreakerOpens counts closed-to-open transitions; BreakerFastFails
	// calls refused with ErrBreakerOpen while open.
	BreakerOpens, BreakerFastFails int64
}

type clientCounters struct {
	calls, successes, failures         atomic.Int64
	attempts, retries                  atomic.Int64
	rateLimited, unavailable, timeouts atomic.Int64
	otherAPI, transport                atomic.Int64
	breakerOpens, breakerFastFails     atomic.Int64
}

// Stats snapshots the client-side outcome counters. (Server-side counters
// are a network call away via ServerStats.)
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Calls:            c.st.calls.Load(),
		Successes:        c.st.successes.Load(),
		Failures:         c.st.failures.Load(),
		Attempts:         c.st.attempts.Load(),
		Retries:          c.st.retries.Load(),
		RateLimited:      c.st.rateLimited.Load(),
		Unavailable:      c.st.unavailable.Load(),
		Timeouts:         c.st.timeouts.Load(),
		OtherAPIErrors:   c.st.otherAPI.Load(),
		TransportErrors:  c.st.transport.Load(),
		BreakerOpens:     c.st.breakerOpens.Load(),
		BreakerFastFails: c.st.breakerFastFails.Load(),
	}
}

// note classifies one attempt's failure into the outcome counters.
func (c *Client) note(err error) {
	if err == nil {
		return
	}
	var ae *APIError
	if !errors.As(err, &ae) {
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			c.st.transport.Add(1)
		}
		return
	}
	switch ae.StatusCode {
	case http.StatusTooManyRequests:
		c.st.rateLimited.Add(1)
	case http.StatusServiceUnavailable:
		c.st.unavailable.Add(1)
	case http.StatusGatewayTimeout:
		c.st.timeouts.Add(1)
	default:
		c.st.otherAPI.Add(1)
	}
}

// New builds a Client, resolving Options defaults.
func New(opt Options) *Client {
	if opt.BaseURL == "" {
		opt.BaseURL = "http://localhost:8347"
	}
	opt.BaseURL = strings.TrimRight(opt.BaseURL, "/")
	if opt.HTTPClient == nil {
		opt.HTTPClient = http.DefaultClient
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = 8
	}
	if opt.BaseBackoff <= 0 {
		opt.BaseBackoff = 100 * time.Millisecond
	}
	if opt.MaxBackoff <= 0 {
		opt.MaxBackoff = 10 * time.Second
	}
	if opt.BreakerThreshold == 0 {
		opt.BreakerThreshold = 5
	}
	if opt.BreakerCooldown <= 0 {
		opt.BreakerCooldown = 5 * time.Second
	}
	if opt.Rand == nil {
		opt.Rand = rand.Float64
	}
	return &Client{opt: opt, http: opt.HTTPClient}
}

// Health checks GET /healthz (never retried: it is the probe callers use
// to decide whether retrying anything else is worthwhile).
func (c *Client) Health(ctx context.Context) error {
	var out map[string]string
	return c.once(ctx, http.MethodGet, "/healthz", nil, &out)
}

// ServerStats fetches GET /v1/stats — the server's counters, as opposed
// to the local Stats snapshot.
func (c *Client) ServerStats(ctx context.Context) (ServerStats, error) {
	var out ServerStats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Run executes one simulation via POST /v1/run.
func (c *Client) Run(ctx context.Context, req RunRequest) (RunResult, error) {
	var out RunResult
	err := c.do(ctx, http.MethodPost, "/v1/run", req, &out)
	return out, err
}

// Telemetry fetches a run-telemetry artifact by the digest a telemetry-
// enabled Run returned, via GET /v1/telemetry/<digest>.
func (c *Client) Telemetry(ctx context.Context, digest string) (*Telemetry, error) {
	var out Telemetry
	if err := c.do(ctx, http.MethodGet, "/v1/telemetry/"+digest, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RunBatch executes many simulations via POST /v1/batch. The per-run
// results carry their own error fields; a non-nil error here means the
// batch itself failed.
func (c *Client) RunBatch(ctx context.Context, reqs []RunRequest) ([]service.BatchItem, error) {
	in := map[string]any{"runs": reqs}
	var out struct {
		Results []service.BatchItem `json:"results"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/batch", in, &out)
	return out.Results, err
}

// Sweep measures a design space via POST /v1/sweep.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (SweepResult, error) {
	var out SweepResult
	err := c.do(ctx, http.MethodPost, "/v1/sweep", req, &out)
	return out, err
}

// Suite runs the Figure-6 pipeline via POST /v1/suite.
func (c *Client) Suite(ctx context.Context, req SuiteRequest) (SuiteSummary, error) {
	var out SuiteSummary
	err := c.do(ctx, http.MethodPost, "/v1/suite", req, &out)
	return out, err
}

// Experiment regenerates one table or figure via POST /v1/experiment.
func (c *Client) Experiment(ctx context.Context, req service.ExperimentRequest) (*experiment.Table, error) {
	var out experiment.Table
	if err := c.do(ctx, http.MethodPost, "/v1/experiment", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// do runs one API call under the full retry discipline.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	c.st.calls.Add(1)
	if err := c.breakerAllow(); err != nil {
		c.st.breakerFastFails.Add(1)
		c.st.failures.Add(1)
		return err
	}

	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}

	start := time.Now()
	var lastErr error
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		if attempt > 0 {
			sleep := c.backoff(attempt, lastErr)
			if c.opt.Budget > 0 && time.Since(start)+sleep > c.opt.Budget {
				break // out of budget: report the last real error, not a sleep
			}
			t := time.NewTimer(sleep)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				c.breakerRecord(false)
				c.st.failures.Add(1)
				return ctx.Err()
			}
			c.st.retries.Add(1)
		}
		c.st.attempts.Add(1)
		lastErr = c.attempt(ctx, method, path, body, out)
		c.note(lastErr)
		if lastErr == nil {
			c.breakerRecord(true)
			c.st.successes.Add(1)
			return nil
		}
		if !retryable(lastErr) || ctx.Err() != nil {
			break
		}
	}
	c.breakerRecord(false)
	c.st.failures.Add(1)
	return lastErr
}

// once is do without retries, for probes.
func (c *Client) once(ctx context.Context, method, path string, in, out any) error {
	c.st.calls.Add(1)
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			c.st.failures.Add(1)
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	c.st.attempts.Add(1)
	err := c.attempt(ctx, method, path, body, out)
	c.note(err)
	if err != nil {
		c.st.failures.Add(1)
	} else {
		c.st.successes.Add(1)
	}
	return err
}

// attempt performs one HTTP exchange.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.opt.BaseURL+path, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.opt.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.opt.Token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()

	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		msg := strings.TrimSpace(string(raw))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &APIError{
			StatusCode: resp.StatusCode,
			Message:    msg,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// backoff picks the pre-attempt sleep: full jitter over the exponential
// schedule, floored at the server's Retry-After when the last failure
// carried one (the server knows when capacity returns; guessing shorter
// just earns another 429).
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	ceil := c.opt.BaseBackoff << (attempt - 1)
	if ceil > c.opt.MaxBackoff || ceil <= 0 { // <= 0: shift overflow
		ceil = c.opt.MaxBackoff
	}
	sleep := time.Duration(c.opt.Rand() * float64(ceil))
	var ae *APIError
	if errors.As(lastErr, &ae) && ae.RetryAfter > sleep {
		sleep = ae.RetryAfter
	}
	return sleep
}

func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Retryable()
	}
	// Not an HTTP status: a transport-level failure (refused connection,
	// reset, dropped mid-body). Idempotent server, so retry.
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// breakerAllow admits the call, or fails fast while the breaker is open.
func (c *Client) breakerAllow() error {
	if c.opt.BreakerThreshold < 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.openUntil.IsZero() {
		if time.Now().Before(c.openUntil) {
			return ErrBreakerOpen
		}
		// Cooldown over: half-open. Admit this call as the probe; its
		// outcome re-opens or resets the breaker.
		c.openUntil = time.Time{}
		c.fails = c.opt.BreakerThreshold - 1
	}
	return nil
}

// breakerRecord folds a call outcome into the breaker state.
func (c *Client) breakerRecord(ok bool) {
	if c.opt.BreakerThreshold < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ok {
		c.fails = 0
		c.openUntil = time.Time{}
		return
	}
	c.fails++
	if c.fails >= c.opt.BreakerThreshold {
		if c.openUntil.IsZero() {
			c.st.breakerOpens.Add(1)
		}
		c.openUntil = time.Now().Add(c.opt.BreakerCooldown)
	}
}

func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}
