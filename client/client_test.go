package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// stub serves canned status codes in sequence, then 200s with body.
func stub(t *testing.T, codes []int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if int(n) <= len(codes) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(codes[n-1])
			w.Write([]byte(`{"error": "transient"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"workload": "gcc", "config": "ok", "time_fs": 1}`))
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func fastOpts(url string) Options {
	return Options{
		BaseURL:     url,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Rand:        func() float64 { return 1 }, // deterministic full backoff
	}
}

func TestClientRetriesTransientStatuses(t *testing.T) {
	for _, code := range []int{
		http.StatusTooManyRequests,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout,
	} {
		srv, calls := stub(t, []int{code, code}, "")
		c := New(fastOpts(srv.URL))
		res, err := c.Run(context.Background(), RunRequest{Bench: "gcc"})
		if err != nil {
			t.Fatalf("status %d: Run = %v, want success after retries", code, err)
		}
		if res.Workload != "gcc" {
			t.Fatalf("status %d: unexpected result %+v", code, res)
		}
		if got := calls.Load(); got != 3 {
			t.Fatalf("status %d: server saw %d calls, want 3 (2 failures + success)", code, got)
		}
	}
}

func TestClientDoesNotRetryCallerErrors(t *testing.T) {
	for _, code := range []int{http.StatusBadRequest, http.StatusUnauthorized} {
		srv, calls := stub(t, []int{code, code, code}, "")
		c := New(fastOpts(srv.URL))
		_, err := c.Run(context.Background(), RunRequest{Bench: "gcc"})
		var ae *APIError
		if !errors.As(err, &ae) || ae.StatusCode != code {
			t.Fatalf("status %d: Run = %v, want APIError with that status", code, err)
		}
		if got := calls.Load(); got != 1 {
			t.Fatalf("status %d: server saw %d calls, want exactly 1 (no retry)", code, got)
		}
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	srv, _ := stub(t, []int{http.StatusServiceUnavailable}, "1")
	opt := fastOpts(srv.URL)
	c := New(opt)
	start := time.Now()
	if _, err := c.Run(context.Background(), RunRequest{Bench: "gcc"}); err != nil {
		t.Fatalf("Run = %v", err)
	}
	// Backoff would be ~1ms; Retry-After: 1 must floor the sleep at 1s.
	if d := time.Since(start); d < time.Second {
		t.Fatalf("retried after %v, want >= 1s from Retry-After", d)
	}
}

func TestClientBackoffSchedule(t *testing.T) {
	c := New(Options{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second,
		Rand: func() float64 { return 1 }})
	// Full jitter with Rand()=1 yields the ceiling: base<<(k-1), capped.
	for _, tc := range []struct {
		attempt int
		want    time.Duration
	}{
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{5, time.Second}, // 1.6s capped at MaxBackoff
		{40, time.Second},
	} {
		if got := c.backoff(tc.attempt, nil); got != tc.want {
			t.Fatalf("backoff(%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}
	// An APIError's Retry-After floors the jittered sleep.
	ae := &APIError{StatusCode: 429, RetryAfter: 5 * time.Second}
	if got := c.backoff(1, ae); got != 5*time.Second {
		t.Fatalf("backoff with Retry-After = %v, want 5s", got)
	}
}

func TestClientBreakerOpensAndRecovers(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	var calls atomic.Int64
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer counting.Close()

	opt := fastOpts(counting.URL)
	opt.MaxAttempts = 1
	opt.BreakerThreshold = 2
	opt.BreakerCooldown = 50 * time.Millisecond
	c := New(opt)

	for i := 0; i < 2; i++ {
		if _, err := c.Run(context.Background(), RunRequest{Bench: "gcc"}); err == nil {
			t.Fatal("Run succeeded against an all-503 server")
		}
	}
	before := calls.Load()
	if _, err := c.Run(context.Background(), RunRequest{Bench: "gcc"}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Run with open breaker = %v, want ErrBreakerOpen", err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker still sent a request")
	}

	// After the cooldown one probe goes through (and fails, re-opening).
	time.Sleep(60 * time.Millisecond)
	if _, err := c.Run(context.Background(), RunRequest{Bench: "gcc"}); errors.Is(err, ErrBreakerOpen) {
		t.Fatal("breaker did not half-open after its cooldown")
	}
	if calls.Load() != before+1 {
		t.Fatalf("half-open probe sent %d requests, want 1", calls.Load()-before)
	}
	if _, err := c.Run(context.Background(), RunRequest{Bench: "gcc"}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("failed probe did not re-open the breaker")
	}
}

func TestClientBudgetBoundsRetries(t *testing.T) {
	srv, calls := stub(t, []int{503, 503, 503, 503, 503, 503, 503, 503}, "")
	opt := fastOpts(srv.URL)
	opt.BaseBackoff = 40 * time.Millisecond
	opt.MaxBackoff = 40 * time.Millisecond
	opt.Budget = 100 * time.Millisecond // room for ~2 sleeps, not 7
	c := New(opt)
	_, err := c.Run(context.Background(), RunRequest{Bench: "gcc"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("Run = %v, want the last 503 (budget exhausted)", err)
	}
	if got := calls.Load(); got >= 8 {
		t.Fatalf("server saw %d calls; budget did not bound retries", got)
	}
}

func TestClientContextCancelStopsRetries(t *testing.T) {
	srv, calls := stub(t, []int{503, 503, 503, 503, 503, 503, 503, 503}, "")
	opt := fastOpts(srv.URL)
	opt.BaseBackoff = time.Hour // cancellation must interrupt the sleep
	opt.MaxBackoff = time.Hour
	c := New(opt)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, RunRequest{Bench: "gcc"})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the first attempt fail and the sleep start
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Run did not return")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls after cancel, want 1", got)
	}
}

func TestClientSendsBearerToken(t *testing.T) {
	var got atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("Authorization"))
		w.Write([]byte(`{"status": "ok"}`))
	}))
	defer srv.Close()
	c := New(Options{BaseURL: srv.URL, Token: "s3cret"})
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "Bearer s3cret" {
		t.Fatalf("Authorization = %q, want Bearer s3cret", got.Load())
	}
}

// TestClientStatsCounters drives the retry machinery against a stub and
// checks the local per-outcome counters tell the true story.
func TestClientStatsCounters(t *testing.T) {
	srv, _ := stub(t, []int{429, 503, 504}, "")
	cl := New(fastOpts(srv.URL))
	if _, err := cl.Run(context.Background(), RunRequest{Bench: "gcc"}); err != nil {
		t.Fatalf("run after retries: %v", err)
	}
	st := cl.Stats()
	if st.Calls != 1 || st.Successes != 1 || st.Failures != 0 {
		t.Errorf("calls/successes/failures = %d/%d/%d, want 1/1/0", st.Calls, st.Successes, st.Failures)
	}
	if st.Attempts != 4 || st.Retries != 3 {
		t.Errorf("attempts/retries = %d/%d, want 4/3", st.Attempts, st.Retries)
	}
	if st.RateLimited != 1 || st.Unavailable != 1 || st.Timeouts != 1 {
		t.Errorf("429/503/504 = %d/%d/%d, want 1/1/1", st.RateLimited, st.Unavailable, st.Timeouts)
	}
	if st.TransportErrors != 0 || st.BreakerOpens != 0 || st.BreakerFastFails != 0 {
		t.Errorf("unexpected transport/breaker counters: %+v", st)
	}
}

// TestClientStatsBreaker pins the breaker-side counters: opens count
// transitions, fast-fails count refused calls.
func TestClientStatsBreaker(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(srv.Close)
	opt := fastOpts(srv.URL)
	opt.MaxAttempts = 1
	opt.BreakerThreshold = 2
	opt.BreakerCooldown = time.Hour
	cl := New(opt)
	for i := 0; i < 4; i++ {
		cl.Run(context.Background(), RunRequest{Bench: "gcc"})
	}
	st := cl.Stats()
	if st.BreakerOpens != 1 {
		t.Errorf("breaker opens = %d, want 1", st.BreakerOpens)
	}
	if st.BreakerFastFails != 2 {
		t.Errorf("breaker fast fails = %d, want 2 (calls 3 and 4)", st.BreakerFastFails)
	}
	if st.Failures != 4 || st.Unavailable != 2 {
		t.Errorf("failures/503s = %d/%d, want 4/2", st.Failures, st.Unavailable)
	}
}
