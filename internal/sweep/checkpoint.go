// Sweep checkpointing: the crash-safety layer under MeasureSummary and
// MeasurePhase. A long sweep periodically persists its streaming
// accumulator plus a completed-cell bitmap to the result cache (kinds
// "sweepckpt"/"phaseckpt", keyed by the same measureKey as the final
// artifact), so a cancelled, SIGTERMed or SIGKILLed run resumes from the
// last checkpoint instead of restarting cold: completed cells are skipped,
// the restored accumulator absorbs the rest, and the final summary is
// bit-identical to an uninterrupted run — the fold is commutative with
// exact tie-breaks, so any subset of completed work is a valid prefix.
//
// Checkpoints ride the cache's atomic temp+rename writes (a crash mid-
// checkpoint leaves the previous one intact) and are garbage-collected once
// the parent summary lands: MeasureSummary removes its own on success, and
// ScrubCheckpoints reaps orphans whose parent already exists (a crash after
// the summary write but before the removal).
package sweep

import (
	"container/heap"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"gals/internal/core"
	"gals/internal/resultcache"
	"gals/internal/timing"
)

// ckptVersion is baked into every checkpoint blob; a mismatch (an old
// process's layout) is treated as a miss and the sweep restarts cold.
const ckptVersion = 1

var (
	ckptWrites   atomic.Int64
	ckptResumes  atomic.Int64
	resumedCells atomic.Int64
)

// CheckpointsWritten reports how many sweep/phase checkpoints this process
// has persisted (periodic plus final cancellation flushes).
func CheckpointsWritten() int64 { return ckptWrites.Load() }

// CheckpointsResumed reports how many MeasureSummary/MeasurePhase calls
// restored a valid checkpoint instead of starting cold.
func CheckpointsResumed() int64 { return ckptResumes.Load() }

// ResumedCells reports the total number of already-completed cells those
// resumes skipped — the work a crash did not forfeit.
func ResumedCells() int64 { return resumedCells.Load() }

// done-cell bitmaps: bit ci*nspecs+si marks cell (config ci, benchmark si).

func bitWords(n int) int       { return (n + 63) / 64 }
func setBit(b []uint64, i int) { b[i/64] |= 1 << (i % 64) }
func bitSet(b []uint64, i int) bool {
	return i/64 < len(b) && b[i/64]&(1<<(i%64)) != 0
}
func popcount(b []uint64) int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// sweepCheckpoint is the persisted "sweepckpt" blob: a summaryAcc's full
// state mid-sweep. SummaryKey names the parent "sweepsum" entry so a
// startup scrub can tell a live checkpoint from an orphaned one without
// recomputing any key.
type sweepCheckpoint struct {
	Version    int    `json:"version"`
	SummaryKey string `json:"summary_key"`
	NumSpecs   int    `json:"num_specs"`
	NumCfgs    int    `json:"num_cfgs"`
	TopK       int    `json:"topk,omitempty"`
	// Done is the completed-cell bitmap (bit ci*NumSpecs+si).
	Done []uint64 `json:"done"`
	// Partial holds row buffers of configs with some but not all cells
	// complete; fully-done configs are already folded into Sum.
	Partial map[int][]timing.FS `json:"partial,omitempty"`
	// Sum is the Summary folded over the fully-done configs so far (Top
	// unsealed), BestScore its winner's score, Rank the K-bounded ranking
	// heap contents when TopK > 0.
	Sum       *Summary       `json:"sum"`
	BestScore float64        `json:"best_score"`
	Rank      []RankedConfig `json:"rank,omitempty"`
}

// checkpoint snapshots the accumulator into a persistable blob. Every
// slice is deep-copied under the lock: the store marshals outside it, and
// the accumulator keeps mutating.
func (a *summaryAcc) checkpoint(sumKey string) *sweepCheckpoint {
	a.mu.Lock()
	defer a.mu.Unlock()
	ck := &sweepCheckpoint{
		Version: ckptVersion, SummaryKey: sumKey,
		NumSpecs: a.specs, NumCfgs: len(a.left), TopK: a.topk,
		Done:      append([]uint64(nil), a.done...),
		BestScore: a.bestScore,
	}
	if len(a.rows) > 0 {
		ck.Partial = make(map[int][]timing.FS, len(a.rows))
		for ci, row := range a.rows {
			ck.Partial[ci] = append([]timing.FS(nil), row...)
		}
	}
	if a.topk > 0 {
		ck.Rank = append([]RankedConfig(nil), a.rank...)
	}
	s := *a.sum
	s.PerApp = append([]int(nil), a.sum.PerApp...)
	s.PerAppTimes = append([]timing.FS(nil), a.sum.PerAppTimes...)
	s.BestTimes = append([]timing.FS(nil), a.sum.BestTimes...)
	if a.topk <= 0 {
		s.Scores = append([]float64(nil), a.sum.Scores...)
		s.Invalid = append([]bool(nil), a.sum.Invalid...)
	}
	ck.Sum = &s
	return ck
}

// restore rebuilds a summaryAcc from a loaded checkpoint, or returns nil
// when the blob doesn't match the request (stale version, different
// dimensions or aggregation mode) or is internally inconsistent — every
// nil here degrades to a cold sweep, never a wrong answer.
func (ck *sweepCheckpoint) restore(nspecs, ncfgs, topk int) *summaryAcc {
	if ck.Version != ckptVersion || ck.NumSpecs != nspecs || ck.NumCfgs != ncfgs || ck.TopK != topk {
		return nil
	}
	if len(ck.Done) != bitWords(nspecs*ncfgs) || ck.Sum == nil {
		return nil
	}
	s := ck.Sum
	if !summaryShapeOK(s, nspecs, ncfgs, topk) || len(s.PerAppTimes) != nspecs {
		return nil
	}
	if topk <= 0 && len(s.Invalid) != ncfgs {
		return nil
	}
	if s.Best < -1 || s.Best >= ncfgs || len(ck.Rank) > topk {
		return nil
	}
	a := newSummaryAcc(nspecs, ncfgs, topk)
	a.done = append([]uint64(nil), ck.Done...)
	a.sum = s
	a.sum.Top = nil // sealed by finish, never live mid-sweep
	a.bestScore = ck.BestScore
	if topk > 0 {
		// The heap's internal layout is not part of the checkpoint contract:
		// Less is a total order, so re-heapifying the same multiset yields
		// identical eviction decisions and an identical sealed ranking.
		a.rank = append(rankHeap(nil), ck.Rank...)
		heap.Init(&a.rank)
	}
	for ci := 0; ci < ncfgs; ci++ {
		n := 0
		for si := 0; si < nspecs; si++ {
			if bitSet(a.done, ci*nspecs+si) {
				n++
			}
		}
		a.left[ci] = nspecs - n
	}
	for ci, row := range ck.Partial {
		if ci < 0 || ci >= ncfgs || len(row) != nspecs ||
			a.left[ci] == 0 || a.left[ci] == nspecs {
			return nil
		}
		a.rows[ci] = append([]timing.FS(nil), row...)
	}
	// Every partially-done config must carry its row buffer, or its folded
	// score would silently lose the pre-crash cells.
	for ci := range a.left {
		if a.left[ci] > 0 && a.left[ci] < nspecs && a.rows[ci] == nil {
			return nil
		}
	}
	return a
}

// phaseCheckpoint is the persisted "phaseckpt" blob: MeasurePhase's
// completed results so far. Results are immutable once delivered, so the
// blob holds them directly.
type phaseCheckpoint struct {
	Version    int            `json:"version"`
	SummaryKey string         `json:"summary_key"`
	NumSpecs   int            `json:"num_specs"`
	Done       []uint64       `json:"done"`
	Out        []*core.Result `json:"out"`
}

func (ck *phaseCheckpoint) valid(nspecs int) bool {
	if ck.Version != ckptVersion || ck.NumSpecs != nspecs ||
		len(ck.Done) != bitWords(nspecs) || len(ck.Out) != nspecs {
		return false
	}
	for i := 0; i < nspecs; i++ {
		if bitSet(ck.Done, i) != (ck.Out[i] != nil) {
			return false
		}
	}
	return true
}

// phaseAcc collects MeasurePhase's per-benchmark results under a lock (the
// bare out[i] writes of the pre-checkpoint code would race a snapshot).
type phaseAcc struct {
	mu   sync.Mutex
	out  []*core.Result
	done []uint64
}

func newPhaseAcc(nspecs int) *phaseAcc {
	return &phaseAcc{out: make([]*core.Result, nspecs), done: make([]uint64, bitWords(nspecs))}
}

func (a *phaseAcc) add(i int, res *core.Result) {
	a.mu.Lock()
	a.out[i] = res
	setBit(a.done, i)
	a.mu.Unlock()
}

// checkpoint snapshots the accumulator. The out slice is copied; the
// pointed-to Results are immutable after delivery, so they are shared.
func (a *phaseAcc) checkpoint(sumKey string) *phaseCheckpoint {
	a.mu.Lock()
	defer a.mu.Unlock()
	return &phaseCheckpoint{
		Version: ckptVersion, SummaryKey: sumKey, NumSpecs: len(a.out),
		Done: append([]uint64(nil), a.done...),
		Out:  append([]*core.Result(nil), a.out...),
	}
}

func (a *phaseAcc) restore(ck *phaseCheckpoint) {
	a.mu.Lock()
	copy(a.out, ck.Out)
	copy(a.done, ck.Done)
	a.mu.Unlock()
}

// ckptWriter throttles periodic checkpoint writes from the cell sink: at
// most one write per interval, taken by whichever worker's delivery trips
// the deadline (CAS-guarded, so the others keep simulating). Blocking one
// worker for one blob write per interval is the entire overhead of
// checkpointing an uninterrupted sweep.
type ckptWriter struct {
	store resultcache.Store
	key   string
	every time.Duration
	snap  func() any

	last    atomic.Int64 // unixnano of the last write
	writing atomic.Bool
}

func newCkptWriter(store resultcache.Store, key string, every time.Duration, snap func() any) *ckptWriter {
	if store == nil || every <= 0 {
		return nil
	}
	w := &ckptWriter{store: store, key: key, every: every, snap: snap}
	w.last.Store(time.Now().UnixNano())
	return w
}

// maybe writes a checkpoint when the interval has elapsed; a nil writer
// (checkpointing off) costs one comparison.
func (w *ckptWriter) maybe() {
	if w == nil {
		return
	}
	if time.Now().UnixNano()-w.last.Load() < int64(w.every) {
		return
	}
	if !w.writing.CompareAndSwap(false, true) {
		return
	}
	w.store.Store(w.key, w.snap())
	ckptWrites.Add(1)
	w.last.Store(time.Now().UnixNano())
	w.writing.Store(false)
}

// flushCheckpoint is the cancellation path: persist the final accumulator
// state unconditionally (no interval gate) so a shutdown mid-sweep resumes
// warm after restart.
func flushCheckpoint(store resultcache.Store, key string, snap func() any) {
	if store == nil {
		return
	}
	store.Store(key, snap())
	ckptWrites.Add(1)
}

// removeCheckpoint garbage-collects a checkpoint once its parent summary
// is durable. Stores without a deletion side (plain map-backed test
// stores) just keep the orphan; ScrubCheckpoints reaps those on restart.
func removeCheckpoint(store resultcache.Store, key string) {
	if r, ok := store.(resultcache.Remover); ok {
		r.Remove(key)
	}
}

// ScrubCheckpoints garbage-collects checkpoints whose parent summary
// already exists — debris from a crash that landed the final artifact but
// died before removing its checkpoint. It returns the number reaped.
// Checkpoints whose parent is still missing are live resume state and are
// kept. galsd's -scrub runs this after the cache and recording scrubs.
func ScrubCheckpoints(c *resultcache.Cache) int {
	n := 0
	for _, kind := range []string{"sweepckpt", "phaseckpt"} {
		for _, k := range c.Keys(kind) {
			var env struct {
				SummaryKey string `json:"summary_key"`
			}
			if !c.Load(k, &env) || env.SummaryKey == "" {
				continue
			}
			if c.Has(env.SummaryKey) {
				c.Remove(k)
				n++
			}
		}
	}
	return n
}
