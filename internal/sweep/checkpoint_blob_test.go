// The policy-blob flavor of the checkpoint contract lives in an external
// test package: it trains a real "learned" artifact via internal/learn,
// which itself imports the sweep package.
package sweep_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"gals/internal/learn"
	"gals/internal/resultcache"
	"gals/internal/sweep"
	"gals/internal/workload"
)

// TestCheckpointResumeWithPolicyBlob pins bit-identical resume for sweeps
// whose configurations carry a learned-policy weights artifact: the blob
// enters cache keys as a digest, so the interrupted run's checkpoint is
// found again, restored, and the resumed summary matches an uninterrupted
// reference byte for byte.
func TestCheckpointResumeWithPolicyBlob(t *testing.T) {
	blob, err := learn.Artifact(nil, learn.TrainOptions{Window: 6_000})
	if err != nil {
		t.Fatal(err)
	}
	specs := workload.Suite()[:3]
	cfgs := append(sweep.AdaptiveSpace()[:4],
		sweep.PhaseSpace([]sweep.PolicySetting{
			{Name: "learned", Blob: blob},
			{Name: "paper"},
		})...)
	o := sweep.Options{Window: 2_000, Workers: 2}

	ref, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prev := sweep.SetPersist(ref)
	want, err := sweep.MeasureSummary(specs, cfgs, o)
	sweep.SetPersist(prev)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	c, err := resultcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sweep.SetPersist(c)
	defer sweep.SetPersist(nil)

	p := sweep.NewPool(2, 1024)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int64
	p.SetObserver(func(time.Duration) {
		if seen.Add(1) == 5 {
			cancel()
		}
	})
	oc := o
	oc.Exec = p
	oc.Ctx = ctx
	if _, err := sweep.MeasureSummary(specs, cfgs, oc); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted MeasureSummary = %v, want context.Canceled", err)
	}
	if blobs, _ := filepath.Glob(filepath.Join(dir, "sweepckpt", "*", "*.json")); len(blobs) != 1 {
		t.Fatalf("found %d checkpoint blobs after the cancel, want 1", len(blobs))
	}

	resumesBefore, cellsBefore := sweep.CheckpointsResumed(), sweep.ResumedCells()
	got, err := sweep.MeasureSummary(specs, cfgs, o)
	if err != nil {
		t.Fatalf("resumed MeasureSummary: %v", err)
	}
	if sweep.CheckpointsResumed() != resumesBefore+1 || sweep.ResumedCells() <= cellsBefore {
		t.Fatal("rerun did not resume from the checkpoint")
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("blob-carrying sweep's resume not bit-identical to the uninterrupted run")
	}
	if blobs, _ := filepath.Glob(filepath.Join(dir, "sweepckpt", "*", "*.json")); len(blobs) != 0 {
		t.Fatal("checkpoint not garbage-collected after the summary landed")
	}
}
