package sweep

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gals/internal/core"
	"gals/internal/workload"
)

// TestPoolCancelPurgesQueuedCells pins the teardown half of the deadline
// contract: cancelling an ExecuteContext batch removes its still-queued
// cells from the scheduler without running them, the call returns the
// context error promptly (not after the queue would have drained), and the
// pool stays healthy for later batches.
func TestPoolCancelPurgesQueuedCells(t *testing.T) {
	p := NewPool(1, 64)
	defer p.Close()

	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate() // before the deferred Close, or a failed assert deadlocks teardown
	started := make(chan struct{})
	blocker := execAsync(t, p, 0, func() { close(started); <-gate })
	<-started // the single worker is now occupied; everything below queues

	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	cells := make([]func(), 16)
	for i := range cells {
		cells[i] = func() { ran.Add(1) }
	}
	done := make(chan error, 1)
	go func() { done <- p.ExecuteContext(ctx, 0, [][]func(){cells}) }()
	waitPending(t, p, 16) // the blocker cell is running, not pending

	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ExecuteContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ExecuteContext did not return after cancel (queued cells not purged)")
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d cancelled cells ran, want 0", got)
	}
	if got := p.Purged(); got != 16 {
		t.Fatalf("Purged() = %d, want 16", got)
	}

	openGate()
	if err := <-blocker; err != nil {
		t.Fatalf("blocker batch: %v", err)
	}
	// The pool must still execute new work after a purge.
	var after atomic.Int64
	if err := p.Execute(0, [][]func(){{func() { after.Add(1) }}}); err != nil {
		t.Fatalf("Execute after purge: %v", err)
	}
	if after.Load() != 1 {
		t.Fatal("cell after purge did not run")
	}
}

// TestPoolCancelWaitsForRunningCells pins the safety half: ExecuteContext
// never returns while one of its cells is still executing, even after
// cancellation — callers tear down shared state (trace pools, recordings)
// as soon as it returns, so returning early would be a use-after-free.
func TestPoolCancelWaitsForRunningCells(t *testing.T) {
	p := NewPool(2, 64)
	defer p.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- p.ExecuteContext(ctx, 0, [][]func(){{func() { close(started); <-gate }}})
	}()
	<-started

	cancel()
	select {
	case <-done:
		t.Fatal("ExecuteContext returned while its cell was still running")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteContext = %v, want context.Canceled", err)
	}
}

// TestPoolCancelLeaksNoGoroutines drives many cancelled batches and checks
// the goroutine count settles back: the per-batch watcher must exit on
// completion as well as on cancellation.
func TestPoolCancelLeaksNoGoroutines(t *testing.T) {
	p := NewPool(2, 256)
	before := runtime.NumGoroutine()

	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		if i%2 == 0 {
			cancel() // half the batches are cancelled before submission
		}
		p.ExecuteContext(ctx, 0, [][]func(){{func() {}, func() {}}})
		cancel()
	}
	p.Close()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancelled batches", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelMidSweepStopsAndReruns pins the sweep-layer degradation
// contract: a cancelled MeasurePhase returns the context error without
// persisting partial aggregates, and an identical rerun without
// cancellation produces the same times as a never-cancelled sweep —
// cancellation must be invisible to results.
func TestCancelMidSweepStopsAndReruns(t *testing.T) {
	specs := workload.Suite()[:2]
	o := Options{Window: 2_000, Workers: 2}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the sweep must refuse to do any work
	oc := o
	oc.Ctx = ctx
	if _, err := MeasurePhase(specs, oc); !errors.Is(err, context.Canceled) {
		t.Fatalf("MeasurePhase under cancelled ctx = %v, want context.Canceled", err)
	}

	want, err := MeasurePhase(specs, o)
	if err != nil {
		t.Fatalf("clean MeasurePhase: %v", err)
	}
	oc.Ctx = context.Background()
	got, err := MeasurePhase(specs, oc)
	if err != nil {
		t.Fatalf("rerun MeasurePhase: %v", err)
	}
	for i := range want {
		if want[i].TimeFS != got[i].TimeFS || !reflect.DeepEqual(want[i].Stats, got[i].Stats) {
			t.Fatalf("rerun diverged for %s: time %v != %v", specs[i].Name, got[i].TimeFS, want[i].TimeFS)
		}
	}
}

// TestCancelRunContextObservesDeadline pins the core loop's latency bound:
// RunContext returns within a cancellation quantum of the context expiring,
// and a completed RunContext is bit-identical to plain Run.
func TestCancelRunContextObservesDeadline(t *testing.T) {
	spec := workload.Suite()[0]
	cfg := core.DefaultAdaptive(core.PhaseAdaptive)

	// Bit-equality on completion.
	want := core.RunWorkload(spec, cfg, 50_000)
	got, err := core.RunWorkloadContext(context.Background(), spec, cfg, 50_000)
	if err != nil {
		t.Fatalf("RunWorkloadContext: %v", err)
	}
	if want.TimeFS != got.TimeFS || !reflect.DeepEqual(want.Stats, got.Stats) {
		t.Fatalf("RunContext result diverged from Run: %+v != %+v", got, want)
	}

	// Cancellation stops a long window early.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := core.RunWorkloadContext(ctx, spec, cfg, 1_000_000_000)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled RunWorkloadContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunWorkloadContext did not observe cancellation")
	}
}
