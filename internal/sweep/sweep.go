// Package sweep implements the paper's design-space explorations
// (Section 4): the exhaustive search for the best-overall fully
// synchronous processor (1,024 configurations: 16 I-cache/branch-predictor
// organizations x 4 D/L2 x 4 integer IQ x 4 FP IQ) and the per-application
// exhaustive search defining Program-Adaptive mode (256 adaptive MCD
// configurations: 4 x 4 x 4 x 4).
//
// Every run replays the same deterministic trace per benchmark, so
// configuration comparisons are exact. Runs fan out over a worker pool;
// the paper burned 300 CPU-months on this, we burn a few CPU-minutes at
// scaled-down windows.
package sweep

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"gals/internal/core"
	"gals/internal/resultcache"
	"gals/internal/timing"
	"gals/internal/workload"
)

// Options control a sweep.
type Options struct {
	// Window is the instruction window per run.
	Window int64
	// Workers is the parallelism (default: GOMAXPROCS).
	Workers int
	// Seed feeds PLL/jitter (shared across runs for comparability).
	Seed int64
	// JitterFrac enables clock jitter.
	JitterFrac float64
	// PLLScale scales PLL lock times (see core.Config).
	PLLScale float64
	// Traces optionally shares recorded instruction streams across sweeps:
	// each benchmark is generated once into an immutable slab and replayed
	// by every configuration run. When nil (or when the pool's window is
	// shorter than Window), Measure and PhaseResults build a private pool,
	// so per-run trace regeneration is avoided either way; pass a pool to
	// also share recordings between separate sweep calls.
	Traces *workload.Pool
}

// WithDefaults fills in zero fields: Window 30,000, Workers GOMAXPROCS,
// Seed 42, PLLScale 0.1. It is the single source of truth for sweep
// defaults; experiment's memo key derives from it.
func (o Options) WithDefaults() Options {
	if o.Window <= 0 {
		o.Window = 30_000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.PLLScale == 0 {
		o.PLLScale = 0.1
	}
	return o
}

var (
	persistMu       sync.RWMutex
	persist         resultcache.Store
	measureComputes atomic.Int64
)

// SetPersist installs a persistent result store consulted by Measure and
// PhaseResults before simulating anything, and written back after every
// computed matrix. Keys derive from the benchmark specs, the configuration
// list and the result-relevant options (Window, Seed, JitterFrac, PLLScale
// — Workers and Traces change only how fast the answer arrives), plus
// resultcache.SchemaVersion, so repeated sweep invocations are incremental
// across processes. Pass nil to detach. It returns the previously
// installed store so temporary owners can restore it rather than clobber
// it.
func SetPersist(s resultcache.Store) (prev resultcache.Store) {
	persistMu.Lock()
	defer persistMu.Unlock()
	prev = persist
	persist = s
	return prev
}

func persistStore() resultcache.Store {
	persistMu.RLock()
	defer persistMu.RUnlock()
	return persist
}

// MeasureComputations reports how many Measure and PhaseResults calls
// actually simulated (rather than being served from the persistent store).
func MeasureComputations() int64 { return measureComputes.Load() }

// measureRequest is the canonical cache-key payload for one Measure call:
// everything that can change the times matrix, nothing that can't.
type measureRequest struct {
	Specs      []workload.Spec
	Cfgs       []core.Config
	Window     int64
	Seed       int64
	JitterFrac float64
	PLLScale   float64
}

func (o Options) measureKey(kind string, specs []workload.Spec, cfgs []core.Config) string {
	return resultcache.Key(kind, measureRequest{
		Specs: specs, Cfgs: cfgs,
		Window: o.Window, Seed: o.Seed,
		JitterFrac: o.JitterFrac, PLLScale: o.PLLScale,
	})
}

// pool returns the recorded-trace pool to run from: the caller-provided one
// when it covers the window, otherwise a private pool sized to the window.
func (o Options) pool() *workload.Pool {
	if o.Traces.Window() >= o.Window {
		return o.Traces
	}
	return workload.NewPool(o.Window)
}

func (o Options) apply(cfg core.Config) core.Config {
	cfg.Seed = o.Seed
	cfg.JitterFrac = o.JitterFrac
	cfg.PLLScale = o.PLLScale
	return cfg
}

// SyncSpace enumerates all 1,024 fully synchronous configurations.
func SyncSpace() []core.Config {
	var out []core.Config
	for ic := range timing.SyncICacheSpecs() {
		for _, dc := range timing.DCacheConfigs() {
			for _, iq := range timing.IQSizes() {
				for _, fq := range timing.IQSizes() {
					out = append(out, core.Config{
						Mode: core.Synchronous, SyncICache: ic, DCache: dc,
						IntIQ: iq, FPIQ: fq,
					})
				}
			}
		}
	}
	return out
}

// QuickSyncSpace enumerates the direct-mapped-I-cache subset of the
// synchronous space (320 of the 1,024 points). The best-overall contest is
// decided among these (direct-mapped front ends are markedly faster,
// Section 2.2), so pruned sweeps run ~3x faster; it is the single
// definition behind every "quick" flag.
func QuickSyncSpace() []core.Config {
	specs := timing.SyncICacheSpecs()
	var out []core.Config
	for _, c := range SyncSpace() {
		if specs[c.SyncICache].Assoc == 1 {
			out = append(out, c)
		}
	}
	return out
}

// AdaptiveSpace enumerates all 256 Program-Adaptive configurations.
func AdaptiveSpace() []core.Config {
	var out []core.Config
	for _, ic := range timing.ICacheConfigs() {
		for _, dc := range timing.DCacheConfigs() {
			for _, iq := range timing.IQSizes() {
				for _, fq := range timing.IQSizes() {
					out = append(out, core.Config{
						Mode: core.ProgramAdaptive, ICache: ic, DCache: dc,
						IntIQ: iq, FPIQ: fq,
					})
				}
			}
		}
	}
	return out
}

// Measure runs every configuration on every benchmark and returns the run
// times in femtoseconds, indexed [config][benchmark]. Each benchmark's
// deterministic trace is recorded once (in Options.Traces when provided)
// and replayed by all configuration runs concurrently.
func Measure(specs []workload.Spec, cfgs []core.Config, o Options) [][]timing.FS {
	o = o.WithDefaults()
	store := persistStore()
	var key string
	if store != nil {
		key = o.measureKey("measure", specs, cfgs)
		var cached [][]timing.FS
		if store.Load(key, &cached) && len(cached) == len(cfgs) {
			return cached
		}
	}
	measureComputes.Add(1)
	pool := o.pool()
	times := make([][]timing.FS, len(cfgs))
	for i := range times {
		times[i] = make([]timing.FS, len(specs))
	}

	type job struct{ ci, si int }
	jobs := make(chan job, o.Workers*2)
	var wg sync.WaitGroup
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				src := pool.Get(specs[j.si]).Replay()
				res := core.RunSource(src, o.apply(cfgs[j.ci]), o.Window)
				times[j.ci][j.si] = res.TimeFS
			}
		}()
	}
	for ci := range cfgs {
		for si := range specs {
			jobs <- job{ci, si}
		}
	}
	close(jobs)
	wg.Wait()
	if store != nil {
		store.Store(key, times)
	}
	return times
}

// BestOverall picks the configuration with the best (lowest) geometric-mean
// run time across all benchmarks — the paper's "best overall" machine.
// Configurations with any zero or negative run time (a failed or empty run)
// score +Inf and can never win; it returns -1 when times is empty or no
// configuration has a finite score.
func BestOverall(times [][]timing.FS) int {
	best, bestScore := -1, math.Inf(1)
	for ci, row := range times {
		score := 0.0
		for _, t := range row {
			score += logFS(t)
		}
		if score < bestScore {
			best, bestScore = ci, score
		}
	}
	return best
}

// BestPerApp picks, for each benchmark, the configuration with the lowest
// run time (the Program-Adaptive selection).
func BestPerApp(times [][]timing.FS) []int {
	if len(times) == 0 {
		return nil
	}
	n := len(times[0])
	best := make([]int, n)
	for si := 0; si < n; si++ {
		for ci := range times {
			if times[ci][si] < times[best[si]][si] {
				best[si] = ci
			}
		}
	}
	return best
}

// logFS is a natural log over femtosecond times, used for geometric means.
// Zero or negative times (no valid measurement) map to +Inf so that
// math.Log(0) = -Inf can never silently win a lowest-geomean comparison.
func logFS(t timing.FS) float64 {
	if t <= 0 {
		return math.Inf(1)
	}
	return math.Log(float64(t))
}

// PhaseResults runs the Phase-Adaptive machine (base configuration,
// controllers on) on every benchmark, replaying shared recorded traces.
// Reconfiguration events are always recorded so downstream consumers
// (Figure 7 traces) can reuse these results instead of re-running.
func PhaseResults(specs []workload.Spec, o Options) []*core.Result {
	o = o.WithDefaults()
	store := persistStore()
	var key string
	if store != nil {
		key = o.measureKey("phase", specs, nil)
		var cached []*core.Result
		if store.Load(key, &cached) && len(cached) == len(specs) {
			return cached
		}
	}
	measureComputes.Add(1)
	pool := o.pool()
	out := make([]*core.Result, len(specs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, o.Workers)
	for i := range specs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			cfg := o.apply(core.DefaultAdaptive(core.PhaseAdaptive))
			cfg.RecordTrace = true
			out[i] = core.RunSource(pool.Get(specs[i]).Replay(), cfg, o.Window)
		}(i)
	}
	wg.Wait()
	if store != nil {
		store.Store(key, out)
	}
	return out
}

// Improvement returns the percent run-time improvement of adapted over
// baseline: (Tbase/Tadapt - 1) * 100.
func Improvement(baseline, adapted timing.FS) float64 {
	if adapted == 0 {
		return 0
	}
	return (float64(baseline)/float64(adapted) - 1) * 100
}

// SetsAdaptiveSpace enumerates the Program-Adaptive configurations with
// the sets-resized (direct-mapped) front end of the paper's Section 7
// future work, in place of the ways-based Table 2 design.
func SetsAdaptiveSpace() []core.Config {
	cfgs := AdaptiveSpace()
	out := make([]core.Config, len(cfgs))
	for i, c := range cfgs {
		c.ICacheBySets = true
		out[i] = c
	}
	return out
}
