// Package sweep implements the paper's design-space explorations
// (Section 4): the exhaustive search for the best-overall fully
// synchronous processor (1,024 configurations: 16 I-cache/branch-predictor
// organizations x 4 D/L2 x 4 integer IQ x 4 FP IQ) and the per-application
// exhaustive search defining Program-Adaptive mode (256 adaptive MCD
// configurations: 4 x 4 x 4 x 4).
//
// Every run replays the same deterministic trace per benchmark, so
// configuration comparisons are exact. A sweep is decomposed into one cell
// per (configuration, benchmark) pair executed on a shared work-stealing
// pool (see pool.go); the paper burned 300 CPU-months on this, we burn a
// few CPU-minutes at scaled-down windows. At paper-scale windows, use
// MeasureSummary (streaming aggregation, O(configs + benchmarks) memory)
// with a recording store installed (SetRecordings), so the traces are
// mmap'd files rather than heap.
package sweep

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gals/internal/control"
	"gals/internal/core"
	"gals/internal/metrics"
	"gals/internal/resultcache"
	"gals/internal/timing"
	"gals/internal/workload"
)

// Options control a sweep.
type Options struct {
	// Window is the instruction window per run.
	Window int64
	// Workers is the parallelism (default: GOMAXPROCS).
	Workers int
	// Seed feeds PLL/jitter (shared across runs for comparability).
	Seed int64
	// JitterFrac enables clock jitter.
	JitterFrac float64
	// PLLScale scales PLL lock times (see core.Config).
	PLLScale float64
	// Traces optionally shares recorded instruction streams across sweeps:
	// each benchmark is generated once into an immutable slab and replayed
	// by every configuration run. When nil (or when the pool's window is
	// shorter than Window), Measure and PhaseResults build a private pool
	// (backed by the recording store installed with SetRecordings, if any),
	// so per-run trace regeneration is avoided either way; pass a pool to
	// also share recordings between separate sweep calls.
	Traces *workload.Pool
	// Exec optionally routes the sweep's cells to a specific pool — the
	// service installs its own so total parallelism stays bounded under
	// mixed run/sweep/suite load. When nil, cells run on SharedPool()
	// (or a transient pool when Workers deviates from GOMAXPROCS).
	// Result-neutral.
	Exec *Pool
	// Priority orders this sweep's cells against other work sharing the
	// pool (higher first). Result-neutral.
	Priority int
	// RunParallel caps the intra-run parallelism degree a cell may use
	// when the pool has idle workers and an empty queue — the ragged tail
	// of a sweep, where leftover slots would otherwise sit unused while
	// the last cells run single-threaded. 0 (the default) keeps every
	// cell sequential; values above core's stage count are clamped.
	// Result-neutral: core guarantees bit-identity at any degree.
	RunParallel int
	// Policy and PolicyParams select the adaptation policy
	// (internal/control registry) of Phase-Adaptive runs whose config does
	// not already carry one — primarily the PhaseResults/MeasurePhase
	// stage. "" keeps the paper controllers. Result-relevant: part of every
	// persist key. To sweep policies against each other, put them in the
	// configuration list instead (PhaseSpace).
	Policy       string
	PolicyParams string
	// PolicyBlob is the policy's structured artifact (e.g. the "learned"
	// policy's trained weights). Result-relevant: its canonical digest
	// (control.BlobDigest) is part of every persist key.
	PolicyBlob string
	// TopK, when > 0, makes MeasureSummary retain only the K best-scoring
	// configurations (Summary.Top) instead of the full per-config Scores
	// slice, so ranking memory stops scaling with generated design-space
	// size. 0 keeps full scores. Result-relevant for the summary shape,
	// neutral for Best/PerApp.
	TopK int
	// Ctx bounds the sweep: on cancellation queued cells are purged from
	// the executor, running cells stop at their next accounting-interval
	// boundary, and MeasureSummary/MeasurePhase return ctx's error without
	// persisting the partial aggregate. Result-neutral (a completed sweep
	// is bit-identical with or without a Ctx); nil means no bound.
	Ctx context.Context `json:"-"`
	// Tracer, when non-nil, collects per-cell timed spans (record →
	// replay/measure, plus sweep-level cache-hit and persist spans) for
	// this sweep's wall-time attribution. Result-neutral and excluded from
	// every persist key; nil (the default) costs a nil check per span site.
	Tracer *metrics.Tracer `json:"-"`
	// CheckpointEvery, when > 0 and a persistent store is installed
	// (SetPersist), makes MeasureSummary and MeasurePhase persist their
	// streaming accumulators plus a completed-cell bitmap to the store at
	// this interval (kinds "sweepckpt"/"phaseckpt"), and resume from the
	// newest valid checkpoint on start — so a crashed or cancelled sweep
	// skips its completed cells on rerun. Cancellation always flushes a
	// final checkpoint when any progress was made, even at interval 0.
	// Result-neutral: a resumed sweep's summary is bit-identical to an
	// uninterrupted one (see checkpoint.go).
	CheckpointEvery time.Duration `json:"-"`
}

// WithDefaults fills in zero fields: Window 30,000, Workers GOMAXPROCS,
// Seed 42, PLLScale 0.1. It is the single source of truth for sweep
// defaults; experiment's memo key derives from it.
func (o Options) WithDefaults() Options {
	if o.Window <= 0 {
		o.Window = 30_000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.PLLScale == 0 {
		o.PLLScale = 0.1
	}
	return o
}

var (
	persistMu       sync.RWMutex
	persist         resultcache.Store
	recordings      workload.Backing
	measureComputes atomic.Int64
)

// SetPersist installs a persistent result store consulted by Measure,
// MeasureSummary and PhaseResults before simulating anything, and written
// back after every computed matrix or summary. Keys derive from the
// benchmark specs, the configuration list and the result-relevant options
// (Window, Seed, JitterFrac, PLLScale — Workers, Exec, Priority and Traces
// change only how fast the answer arrives), plus resultcache.SchemaVersion,
// so repeated sweep invocations are incremental across processes. Pass nil
// to detach. It returns the previously installed store so temporary owners
// can restore it rather than clobber it.
func SetPersist(s resultcache.Store) (prev resultcache.Store) {
	persistMu.Lock()
	defer persistMu.Unlock()
	prev = persist
	persist = s
	return prev
}

func persistStore() resultcache.Store {
	persistMu.RLock()
	defer persistMu.RUnlock()
	return persist
}

// PersistStore returns the currently installed persistent result store (nil
// when persistence is detached) — the store sidecar artifacts like the
// learned policy's weights live in, so the training pipeline and the
// experiment layer share the sweep layer's persistence without owning it.
func PersistStore() resultcache.Store { return persistStore() }

// SetRecordings installs a recording backing (typically an mmap-backed
// recstore.Store) behind every trace pool the sweep layer creates: each
// benchmark's instruction stream then lives in file-backed pages, recorded
// at most once per store directory across processes. Pass nil to detach.
// It returns the previously installed backing.
func SetRecordings(b workload.Backing) (prev workload.Backing) {
	persistMu.Lock()
	defer persistMu.Unlock()
	prev = recordings
	recordings = b
	return prev
}

func recordingsBacking() workload.Backing {
	persistMu.RLock()
	defer persistMu.RUnlock()
	return recordings
}

// NewRecordingPool creates a trace pool for the given window, backed by the
// recording store installed with SetRecordings (in-memory when none is).
func NewRecordingPool(window int64) *workload.Pool {
	return workload.NewBackedPool(window, recordingsBacking())
}

// MeasureComputations reports how many Measure, MeasureSummary and
// PhaseResults calls actually simulated (rather than being served from the
// persistent store).
func MeasureComputations() int64 { return measureComputes.Load() }

// measureRequest is the canonical cache-key payload for one Measure call:
// everything that can change the returned object, nothing that can't.
// Policy/PolicyParams/PolicyBlob change Phase-Adaptive results (the blob
// enters as its canonical digest, so keys stay small and two requests share
// an entry only when they agree on the exact artifact bytes); TopK changes
// the shape of a persisted summary (which configurations' scores are
// retained), so summaries aggregated differently never alias. Config-level
// blobs (PhaseSpace entries) are digested the same way via keyConfigs.
type measureRequest struct {
	Specs            []workload.Spec
	Cfgs             []core.Config
	Window           int64
	Seed             int64
	JitterFrac       float64
	PLLScale         float64
	Policy           string `json:",omitempty"`
	PolicyParams     string `json:",omitempty"`
	PolicyBlobDigest string `json:",omitempty"`
	TopK             int    `json:",omitempty"`
}

func (o Options) measureKey(kind string, specs []workload.Spec, cfgs []core.Config) string {
	req := measureRequest{
		Specs: specs, Cfgs: keyConfigs(cfgs),
		Window: o.Window, Seed: o.Seed,
		JitterFrac: o.JitterFrac, PLLScale: o.PLLScale,
		Policy: o.Policy, PolicyParams: o.PolicyParams,
		PolicyBlobDigest: control.BlobDigest(o.PolicyBlob),
	}
	// A checkpoint's accumulator shape depends on the aggregation mode the
	// same way the summary's does, so "sweepckpt" keys carry TopK too — a
	// top-K sweep never resumes from a full-scores checkpoint or vice versa.
	if kind == "sweepsum" || kind == "sweepckpt" {
		req.TopK = o.TopK
	}
	return resultcache.Key(kind, req)
}

// keyConfigs canonicalizes a configuration list for key payloads: a config
// carrying a blob artifact is keyed by the artifact's digest, not its
// bytes, so a policy-axis sweep over learned machines doesn't embed whole
// weight models in every request hash input.
func keyConfigs(cfgs []core.Config) []core.Config {
	blobbed := false
	for i := range cfgs {
		if cfgs[i].PolicyBlob != "" {
			blobbed = true
			break
		}
	}
	if !blobbed {
		return cfgs
	}
	out := append([]core.Config(nil), cfgs...)
	for i := range out {
		if out[i].PolicyBlob != "" {
			out[i].PolicyBlob = "digest:" + control.BlobDigest(out[i].PolicyBlob)
		}
	}
	return out
}

// pool returns the recorded-trace pool to run from: the caller-provided one
// when it covers the window, otherwise a private pool sized to the window
// (backed by the installed recording store, if any). owned reports that the
// pool belongs to this call — the caller retires it once its cells finish,
// returning any store-backed slab references instead of accumulating
// mappings across windows.
func (o Options) pool() (p *workload.Pool, owned bool) {
	if o.Traces.Window() >= o.Window {
		return o.Traces, false
	}
	return NewRecordingPool(o.Window), true
}

// executor resolves the pool cells run on. The second return is non-nil
// when the caller owns a transient pool and must Close it: Workers is a
// per-call parallelism contract, so a non-default value gets a private
// pool of exactly that size instead of the shared one.
func (o Options) executor() (exec, owned *Pool) {
	if o.Exec != nil {
		return o.Exec, nil
	}
	if o.Workers == runtime.GOMAXPROCS(0) {
		return SharedPool(), nil
	}
	p := NewPool(o.Workers, 0)
	return p, p
}

// cellDegree resolves the intra-run parallelism for one cell at the moment
// it starts: 1 (sequential) unless the sweep opted in via RunParallel AND
// the pool reports idle slots — then the cell claims those leftover slots
// as pipeline stages, up to the configured cap. Consulted per cell, so a
// sweep's wide middle runs every worker on its own cell and only the
// ragged tail borrows spare capacity.
func cellDegree(p *Pool, cap int) int {
	if cap <= 1 {
		return 1
	}
	idle := p.IdleSlots()
	if idle <= 0 {
		return 1
	}
	deg := 1 + idle
	if deg > cap {
		deg = cap
	}
	return core.ParallelDegree(deg)
}

func (o Options) apply(cfg core.Config) core.Config {
	cfg.Seed = o.Seed
	cfg.JitterFrac = o.JitterFrac
	cfg.PLLScale = o.PLLScale
	// The sweep-level policy selection reaches Phase-Adaptive runs whose
	// configuration does not already carry its own (PhaseSpace entries do).
	if cfg.Mode == core.PhaseAdaptive && cfg.Policy == "" && cfg.PolicyParams == "" && cfg.PolicyBlob == "" {
		cfg.Policy, cfg.PolicyParams, cfg.PolicyBlob = o.Policy, o.PolicyParams, o.PolicyBlob
	}
	return cfg
}

// SyncSpace enumerates all 1,024 fully synchronous configurations.
func SyncSpace() []core.Config {
	var out []core.Config
	for ic := range timing.SyncICacheSpecs() {
		for _, dc := range timing.DCacheConfigs() {
			for _, iq := range timing.IQSizes() {
				for _, fq := range timing.IQSizes() {
					out = append(out, core.Config{
						Mode: core.Synchronous, SyncICache: ic, DCache: dc,
						IntIQ: iq, FPIQ: fq,
					})
				}
			}
		}
	}
	return out
}

// QuickSyncSpace enumerates the direct-mapped-I-cache subset of the
// synchronous space (320 of the 1,024 points). The best-overall contest is
// decided among these (direct-mapped front ends are markedly faster,
// Section 2.2), so pruned sweeps run ~3x faster; it is the single
// definition behind every "quick" flag.
func QuickSyncSpace() []core.Config {
	specs := timing.SyncICacheSpecs()
	var out []core.Config
	for _, c := range SyncSpace() {
		if specs[c.SyncICache].Assoc == 1 {
			out = append(out, c)
		}
	}
	return out
}

// AdaptiveSpace enumerates all 256 Program-Adaptive configurations.
func AdaptiveSpace() []core.Config {
	var out []core.Config
	for _, ic := range timing.ICacheConfigs() {
		for _, dc := range timing.DCacheConfigs() {
			for _, iq := range timing.IQSizes() {
				for _, fq := range timing.IQSizes() {
					out = append(out, core.Config{
						Mode: core.ProgramAdaptive, ICache: ic, DCache: dc,
						IntIQ: iq, FPIQ: fq,
					})
				}
			}
		}
	}
	return out
}

// PolicySetting pairs a registered adaptation policy (internal/control)
// with a parameter assignment in control.ParseParams syntax
// ("key=value[,key=value...]") and, for blob-requiring policies like
// "learned", the weights artifact. It is also the JSON shape the service's
// sweep endpoint accepts.
type PolicySetting struct {
	Name   string `json:"name"`
	Params string `json:"params,omitempty"`
	Blob   string `json:"blob,omitempty"`
}

// PhaseSpace enumerates Phase-Adaptive machines — the base adaptive
// configuration with the on-line controllers enabled — one per policy
// setting, making the adaptation policy itself a sweepable design-space
// axis alongside SyncSpace and AdaptiveSpace.
func PhaseSpace(policies []PolicySetting) []core.Config {
	return CrossPhaseSpace(policies, nil)
}

// CrossPhaseSpace crosses the adaptation-policy axis against initial
// machine configurations: the policy × config product space, one
// Phase-Adaptive machine per (policy setting, base) pair in policy-major
// order. Nil or empty bases default to the single base adaptive
// configuration (making PhaseSpace the one-base special case); a base's
// mode is forced to PhaseAdaptive and any policy selection it carries is
// overwritten by the axis entry.
func CrossPhaseSpace(policies []PolicySetting, bases []core.Config) []core.Config {
	if len(bases) == 0 {
		bases = []core.Config{core.DefaultAdaptive(core.PhaseAdaptive)}
	}
	out := make([]core.Config, 0, len(policies)*len(bases))
	for _, p := range policies {
		for _, base := range bases {
			cfg := base
			cfg.Mode = core.PhaseAdaptive
			cfg.Policy, cfg.PolicyParams, cfg.PolicyBlob = p.Name, p.Params, p.Blob
			out = append(out, cfg)
		}
	}
	return out
}

// cellChunk bounds the cells per submitted group, so a queued
// higher-priority request is admitted after at most a chunk's worth of one
// worker's backlog.
const cellChunk = 64

// runCells executes one simulation cell per (configuration, benchmark)
// pair on the sweep's executor and streams each cell's result into sink.
// sink is called from worker goroutines: calls for distinct (ci, si) pairs
// may be concurrent, and each pair is delivered exactly once. A non-nil
// skip filters cells at group-build time — a skipped cell is never queued
// and never delivered; the checkpoint-resume path uses it to elide work a
// previous run already completed.
//
// Groups are config-major: one group is one configuration's cells across
// the benchmarks, in benchmark order. That is what lets the streaming
// accumulator close a config's row as soon as its group drains (O(workers)
// rows in flight) instead of holding every row open until the last
// benchmark completes. Recording sharing is unaffected — the trace pool
// hands every cell the same slab regardless of which group asked first —
// and thieves batch-stealing a group's far half touch its later benchmarks
// (in order), so concurrent cold-start recording still spreads across
// workers.
func runCells(specs []workload.Spec, cfgs []core.Config, o Options, skip func(ci, si int) bool, sink func(ci, si int, res *core.Result)) error {
	pool, ownedTraces := o.pool()
	if ownedTraces {
		// Execute returns only after every cell finished, so no replay is
		// live when the private pool retires its slab references.
		defer pool.Retire()
	}
	exec, owned := o.executor()
	if owned != nil {
		defer owned.Close()
	}
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// The measure stage span parents every cell span; with a nil tracer
	// every span call below is a no-op.
	stage := o.Tracer.Start("measure", fmt.Sprintf("%d configs x %d benchmarks", len(cfgs), len(specs)))
	groups := make([][]func(), 0, len(cfgs)*(len(specs)/cellChunk+1))
	for ci := range cfgs {
		ci := ci
		for start := 0; start < len(specs); start += cellChunk {
			end := start + cellChunk
			if end > len(specs) {
				end = len(specs)
			}
			cells := make([]func(), 0, end-start)
			for si := start; si < end; si++ {
				si := si
				if skip != nil && skip(ci, si) {
					continue
				}
				cells = append(cells, func() {
					// Only render the config label when a trace is live:
					// an untraced cell must not pay a per-cell allocation.
					var cellSpan metrics.Span
					if o.Tracer != nil {
						cellSpan = stage.Child("cell", cfgs[ci].Label()+" / "+specs[si].Name)
					}
					recSpan := cellSpan.Child("record", specs[si].Name)
					rec, err := pool.GetContext(ctx, specs[si])
					recSpan.End()
					if err != nil {
						cellSpan.End()
						return // cancelled mid-recording: deliver nothing
					}
					// A nil-Done ctx takes core's uninstrumented fast
					// path, so ctx-less sweeps cost exactly what they
					// did; a cancelled cell delivers nothing.
					simSpan := cellSpan.Child("replay+measure", "")
					res, err := core.RunSourceParallelContext(ctx, rec.Replay(), o.apply(cfgs[ci]), o.Window, cellDegree(exec, o.RunParallel))
					simSpan.End()
					if err != nil {
						cellSpan.End()
						return
					}
					if o.Tracer != nil {
						cellSpan.Annotate(fmt.Sprintf("%s / %s: %d reconfigs",
							cfgs[ci].Label(), specs[si].Name, res.Stats.Reconfigs))
					}
					cellSpan.End()
					sink(ci, si, res)
				})
			}
			if len(cells) > 0 {
				groups = append(groups, cells)
			}
		}
	}
	err := exec.ExecuteContext(ctx, o.Priority, groups)
	stage.End()
	return err
}

// Measure runs every configuration on every benchmark and returns the run
// times in femtoseconds, indexed [config][benchmark]. Each benchmark's
// deterministic trace is recorded once (in Options.Traces when provided)
// and replayed by all configuration runs concurrently.
//
// The full matrix grows with |configs| x |benchmarks|; callers that only
// need the winners (best overall, best per application) should prefer
// MeasureSummary, which folds cells into running accumulators instead.
// Measure panics if the executor rejects the sweep (only possible with a
// caller-provided bounded Options.Exec — use MeasureSummary there).
func Measure(specs []workload.Spec, cfgs []core.Config, o Options) [][]timing.FS {
	o = o.WithDefaults()
	store := persistStore()
	var key string
	if store != nil {
		key = o.measureKey("measure", specs, cfgs)
		var cached [][]timing.FS
		if store.Load(key, &cached) && len(cached) == len(cfgs) {
			return cached
		}
	}
	measureComputes.Add(1)
	times := make([][]timing.FS, len(cfgs))
	for i := range times {
		times[i] = make([]timing.FS, len(specs))
	}
	err := runCells(specs, cfgs, o, nil, func(ci, si int, res *core.Result) {
		times[ci][si] = res.TimeFS
	})
	if err != nil {
		panic(err)
	}
	if store != nil {
		store.Store(key, times)
	}
	return times
}

// Summary is the streaming aggregation of one sweep: everything the
// sweep's consumers (best-overall ranking, Figure 6, the service) need, in
// O(configs + benchmarks) memory instead of the full [config][benchmark]
// matrix. Its per-config best times are bit-identical to running Measure
// and folding the matrix: cells complete out of order, but each config's
// row is folded in benchmark order and ties resolve to the lowest config
// index, exactly as BestOverall and BestPerApp do.
type Summary struct {
	// NumSpecs and NumCfgs are the matrix dimensions.
	NumSpecs, NumCfgs int
	// Best is the best-overall configuration index (lowest geometric-mean
	// run time across benchmarks), or -1 when no configuration has a
	// finite score.
	Best int
	// BestTimes are the best configuration's per-benchmark run times
	// (nil when Best is -1).
	BestTimes []timing.FS
	// PerApp[si] is the configuration index with the lowest run time on
	// benchmark si; PerAppTimes[si] is that time.
	PerApp      []int
	PerAppTimes []timing.FS
	// Scores[ci] is configuration ci's sum of log run times (the geomean
	// ranking metric); Invalid[ci] marks configurations disqualified by a
	// non-positive run time, whose Scores entry is meaningless. Both are
	// nil when the sweep ran with Options.TopK > 0.
	Scores  []float64
	Invalid []bool
	// Top holds, when Options.TopK > 0, the K best-scoring valid
	// configurations in ascending score order (ties to the lower index) —
	// the ranking report in O(K) memory instead of O(configs).
	Top []RankedConfig `json:",omitempty"`
}

// RankedConfig is one entry of a top-K ranking: a configuration index and
// its sum-of-log-run-times score.
type RankedConfig struct {
	Config int
	Score  float64
}

// rankHeap is a max-heap by (score, config index): the root is the worst
// retained entry, evicted when a better configuration arrives.
type rankHeap []RankedConfig

func (h rankHeap) Len() int { return len(h) }
func (h rankHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score > h[j].Score
	}
	return h[i].Config > h[j].Config
}
func (h rankHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *rankHeap) Push(x any)   { *h = append(*h, x.(RankedConfig)) }
func (h *rankHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// rankOf folds one valid (config, score) pair into a K-bounded heap.
func rankOf(h *rankHeap, k int, r RankedConfig) {
	if h.Len() < k {
		heap.Push(h, r)
		return
	}
	// Replace the worst retained entry when r outranks it (lower score
	// wins; ties to the lower index, matching the full-scores sort).
	w := (*h)[0]
	if r.Score < w.Score || (r.Score == w.Score && r.Config < w.Config) {
		(*h)[0] = r
		heap.Fix(h, 0)
	}
}

// sortedRanking drains a rank heap into ascending (score, index) order.
func sortedRanking(h rankHeap) []RankedConfig {
	out := make([]RankedConfig, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(RankedConfig)
	}
	return out
}

// TopOf computes the K best-scoring valid configurations from a
// full-scores summary — the bridge that lets a cached full summary answer a
// top-K request without re-simulating.
func (s *Summary) TopOf(k int) []RankedConfig {
	var h rankHeap
	for ci, score := range s.Scores {
		if s.Invalid[ci] {
			continue
		}
		rankOf(&h, k, RankedConfig{Config: ci, Score: score})
	}
	return sortedRanking(h)
}

// summaryAcc folds completed cells into a Summary. A config's row buffer
// lives only while its cells are outstanding; with runCells's config-major
// groups that is O(workers) rows at a time, not the full matrix.
type summaryAcc struct {
	mu    sync.Mutex
	specs int
	rows  map[int][]timing.FS
	left  []int // cells outstanding per config
	sum   *Summary
	// done marks delivered cells (bit ci*specs+si) — the completed-cell
	// bitmap a checkpoint persists so a resumed sweep skips them.
	done []uint64

	// bestScore mirrors Scores[sum.Best] so the winner comparison works
	// when per-config scores are not retained.
	bestScore float64
	// topk > 0 folds scores into the K-bounded rank heap instead of the
	// full Scores/Invalid slices.
	topk int
	rank rankHeap
}

func newSummaryAcc(nspecs, ncfgs, topk int) *summaryAcc {
	a := &summaryAcc{
		specs: nspecs,
		rows:  make(map[int][]timing.FS),
		left:  make([]int, ncfgs),
		done:  make([]uint64, bitWords(nspecs*ncfgs)),
		topk:  topk,
		sum: &Summary{
			NumSpecs: nspecs, NumCfgs: ncfgs,
			Best:        -1,
			PerApp:      make([]int, nspecs),
			PerAppTimes: make([]timing.FS, nspecs),
		},
	}
	if topk <= 0 {
		a.sum.Scores = make([]float64, ncfgs)
		a.sum.Invalid = make([]bool, ncfgs)
	}
	for i := range a.left {
		a.left[i] = nspecs
	}
	for i := range a.sum.PerApp {
		a.sum.PerApp[i] = -1
	}
	return a
}

// finish seals the accumulator: the rank heap drains into Summary.Top.
func (a *summaryAcc) finish() *Summary {
	if a.topk > 0 {
		a.sum.Top = sortedRanking(a.rank)
	}
	return a.sum
}

func (a *summaryAcc) add(ci, si int, t timing.FS) {
	a.mu.Lock()
	defer a.mu.Unlock()
	row := a.rows[ci]
	if row == nil {
		row = make([]timing.FS, a.specs)
		a.rows[ci] = row
	}
	row[si] = t
	setBit(a.done, ci*a.specs+si)
	if a.left[ci]--; a.left[ci] == 0 {
		delete(a.rows, ci)
		a.fold(ci, row)
	}
}

// fold consumes one completed config row: per-benchmark bests, the geomean
// score, and (when it wins) the retained best row. Rows arrive in any
// order; the lowest-index tie-breaks reproduce the sequential fold.
func (a *summaryAcc) fold(ci int, row []timing.FS) {
	s := a.sum
	score, invalid := 0.0, false
	for si, t := range row {
		score += logFS(t)
		if t <= 0 {
			invalid = true
		}
		if s.PerApp[si] == -1 || t < s.PerAppTimes[si] ||
			(t == s.PerAppTimes[si] && ci < s.PerApp[si]) {
			s.PerApp[si], s.PerAppTimes[si] = ci, t
		}
	}
	if invalid {
		// Disqualified: park a JSON-safe zero (the +Inf score would poison
		// persistence) and let Invalid carry the disqualification.
		score = 0
	}
	if a.topk > 0 {
		if !invalid {
			rankOf(&a.rank, a.topk, RankedConfig{Config: ci, Score: score})
		}
	} else {
		s.Scores[ci] = score
		s.Invalid[ci] = invalid
	}
	if invalid {
		return
	}
	if s.Best == -1 || score < a.bestScore ||
		(score == a.bestScore && ci < s.Best) {
		s.Best = ci
		a.bestScore = score
		s.BestTimes = append(s.BestTimes[:0], row...)
	}
}

// Summarize folds a full Measure matrix into a Summary — the bridge for
// callers still holding matrices, and the reference the streaming path is
// tested against.
func Summarize(times [][]timing.FS) *Summary {
	nspecs := 0
	if len(times) > 0 {
		nspecs = len(times[0])
	}
	a := newSummaryAcc(nspecs, len(times), 0)
	for ci, row := range times {
		a.fold(ci, row)
	}
	return a.finish()
}

// MeasureSummary runs every configuration on every benchmark like Measure,
// but folds each cell into running accumulators instead of retaining the
// whole times matrix: memory is O(configs + benchmarks) plus one row per
// in-flight configuration, regardless of window. It returns an error when
// the executor rejects the sweep (queue full / closed) or a cell panics.
func MeasureSummary(specs []workload.Spec, cfgs []core.Config, o Options) (*Summary, error) {
	o = o.WithDefaults()
	store := persistStore()
	var key string
	if store != nil {
		lookup := o.Tracer.Start("cache-lookup", "sweepsum")
		key = o.measureKey("sweepsum", specs, cfgs)
		var cached Summary
		if store.Load(key, &cached) && summaryShapeOK(&cached, len(specs), len(cfgs), o.TopK) {
			lookup.Annotate("sweepsum: hit")
			lookup.End()
			return &cached, nil
		}
		lookup.End()
		if o.TopK > 0 {
			// A persisted full-scores summary strictly subsumes a top-K one.
			full := o
			full.TopK = 0
			var fs Summary
			if store.Load(full.measureKey("sweepsum", specs, cfgs), &fs) &&
				summaryShapeOK(&fs, len(specs), len(cfgs), 0) {
				fs.Top = fs.TopOf(o.TopK)
				fs.Scores, fs.Invalid = nil, nil
				store.Store(key, &fs)
				return &fs, nil
			}
		}
		// A full matrix persisted by Measure answers the same question.
		var times [][]timing.FS
		if store.Load(o.measureKey("measure", specs, cfgs), &times) && len(times) == len(cfgs) {
			sum := Summarize(times)
			if o.TopK > 0 {
				sum.Top = sum.TopOf(o.TopK)
				sum.Scores, sum.Invalid = nil, nil
			}
			store.Store(key, sum)
			return sum, nil
		}
	}
	measureComputes.Add(1)
	acc := newSummaryAcc(len(specs), len(cfgs), o.TopK)
	var skip func(ci, si int) bool
	var ckKey string
	if store != nil {
		// Resume: a valid checkpoint replaces the cold accumulator, and its
		// (immutable) done bitmap elides the cells a previous run completed.
		ckKey = o.measureKey("sweepckpt", specs, cfgs)
		var ck sweepCheckpoint
		if store.Load(ckKey, &ck) {
			if restored := ck.restore(len(specs), len(cfgs), o.TopK); restored != nil {
				acc = restored
				done := ck.Done
				nspecs := len(specs)
				skip = func(ci, si int) bool { return bitSet(done, ci*nspecs+si) }
				ckptResumes.Add(1)
				resumedCells.Add(int64(popcount(done)))
			}
		}
	}
	w := newCkptWriter(store, ckKey, o.CheckpointEvery, func() any { return acc.checkpoint(key) })
	var progressed atomic.Bool
	err := runCells(specs, cfgs, o, skip, func(ci, si int, res *core.Result) {
		acc.add(ci, si, res.TimeFS)
		progressed.Store(true)
		w.maybe()
	})
	if err != nil {
		// Cancelled (or the executor shed the sweep mid-flight): persist the
		// progress this run made so a rerun resumes warm instead of cold. A
		// run that delivered nothing new leaves any prior checkpoint as-is.
		if progressed.Load() {
			flushCheckpoint(store, ckKey, func() any { return acc.checkpoint(key) })
		}
		return nil, err
	}
	sum := acc.finish()
	if store != nil {
		persist := o.Tracer.Start("persist", "sweepsum")
		store.Store(key, sum)
		persist.End()
		removeCheckpoint(store, ckKey)
	}
	return sum, nil
}

// summaryShapeOK validates a summary loaded from the persistent store
// against the request's dimensions and aggregation mode.
func summaryShapeOK(s *Summary, nspecs, ncfgs, topk int) bool {
	if s.NumSpecs != nspecs || s.NumCfgs != ncfgs || len(s.PerApp) != nspecs {
		return false
	}
	if topk > 0 {
		return len(s.Scores) == 0
	}
	return len(s.Scores) == ncfgs
}

// BestOverall picks the configuration with the best (lowest) geometric-mean
// run time across all benchmarks — the paper's "best overall" machine.
// Configurations with any zero or negative run time (a failed or empty run)
// score +Inf and can never win; it returns -1 when times is empty or no
// configuration has a finite score.
func BestOverall(times [][]timing.FS) int {
	best, bestScore := -1, math.Inf(1)
	for ci, row := range times {
		score := 0.0
		for _, t := range row {
			score += logFS(t)
		}
		if score < bestScore {
			best, bestScore = ci, score
		}
	}
	return best
}

// BestPerApp picks, for each benchmark, the configuration with the lowest
// run time (the Program-Adaptive selection).
func BestPerApp(times [][]timing.FS) []int {
	if len(times) == 0 {
		return nil
	}
	n := len(times[0])
	best := make([]int, n)
	for si := 0; si < n; si++ {
		for ci := range times {
			if times[ci][si] < times[best[si]][si] {
				best[si] = ci
			}
		}
	}
	return best
}

// logFS is a natural log over femtosecond times, used for geometric means.
// Zero or negative times (no valid measurement) map to +Inf so that
// math.Log(0) = -Inf can never silently win a lowest-geomean comparison.
func logFS(t timing.FS) float64 {
	if t <= 0 {
		return math.Inf(1)
	}
	return math.Log(float64(t))
}

// PhaseResults runs the Phase-Adaptive machine (base configuration,
// controllers on) on every benchmark, replaying shared recorded traces.
// Reconfiguration events are always recorded so downstream consumers
// (Figure 7 traces) can reuse these results instead of re-running. It
// panics if the executor rejects the batch; MeasurePhase is the
// error-returning form.
func PhaseResults(specs []workload.Spec, o Options) []*core.Result {
	out, err := MeasurePhase(specs, o)
	if err != nil {
		panic(err)
	}
	return out
}

// MeasurePhase is PhaseResults with executor rejections (queue full /
// closed pool) reported as errors instead of panics.
func MeasurePhase(specs []workload.Spec, o Options) ([]*core.Result, error) {
	o = o.WithDefaults()
	store := persistStore()
	var key string
	if store != nil {
		lookup := o.Tracer.Start("cache-lookup", "phase")
		key = o.measureKey("phase", specs, nil)
		var cached []*core.Result
		if store.Load(key, &cached) && len(cached) == len(specs) {
			lookup.Annotate("phase: hit")
			lookup.End()
			return cached, nil
		}
		lookup.End()
	}
	measureComputes.Add(1)
	pool, ownedTraces := o.pool()
	if ownedTraces {
		defer pool.Retire()
	}
	exec, owned := o.executor()
	if owned != nil {
		defer owned.Close()
	}
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	acc := newPhaseAcc(len(specs))
	var skip []uint64
	var ckKey string
	if store != nil {
		ckKey = o.measureKey("phaseckpt", specs, nil)
		var ck phaseCheckpoint
		if store.Load(ckKey, &ck) && ck.valid(len(specs)) {
			acc.restore(&ck)
			skip = ck.Done
			ckptResumes.Add(1)
			resumedCells.Add(int64(popcount(skip)))
		}
	}
	w := newCkptWriter(store, ckKey, o.CheckpointEvery, func() any { return acc.checkpoint(key) })
	var progressed atomic.Bool
	groups := make([][]func(), 0, len(specs))
	for i := range specs {
		i := i
		if bitSet(skip, i) {
			continue
		}
		groups = append(groups, []func(){func() {
			cfg := o.apply(core.DefaultAdaptive(core.PhaseAdaptive))
			cfg.RecordTrace = true
			rec, err := pool.GetContext(ctx, specs[i])
			if err != nil {
				return // cancelled mid-recording: deliver nothing
			}
			res, err := core.RunSourceParallelContext(ctx, rec.Replay(), cfg, o.Window, cellDegree(exec, o.RunParallel))
			if err != nil {
				return
			}
			acc.add(i, res)
			progressed.Store(true)
			w.maybe()
		}})
	}
	if err := exec.ExecuteContext(ctx, o.Priority, groups); err != nil {
		if progressed.Load() {
			flushCheckpoint(store, ckKey, func() any { return acc.checkpoint(key) })
		}
		return nil, err
	}
	if store != nil {
		store.Store(key, acc.out)
		removeCheckpoint(store, ckKey)
	}
	return acc.out, nil
}

// Improvement returns the percent run-time improvement of adapted over
// baseline: (Tbase/Tadapt - 1) * 100.
func Improvement(baseline, adapted timing.FS) float64 {
	if adapted == 0 {
		return 0
	}
	return (float64(baseline)/float64(adapted) - 1) * 100
}

// SetsAdaptiveSpace enumerates the Program-Adaptive configurations with
// the sets-resized (direct-mapped) front end of the paper's Section 7
// future work, in place of the ways-based Table 2 design.
func SetsAdaptiveSpace() []core.Config {
	cfgs := AdaptiveSpace()
	out := make([]core.Config, len(cfgs))
	for i, c := range cfgs {
		c.ICacheBySets = true
		out[i] = c
	}
	return out
}
