package sweep

import (
	"testing"

	"gals/internal/metrics"
	"gals/internal/workload"
)

// TestSweepTraceSpansNest drives a 2-worker sweep with a tracer attached
// and checks the span tree has the documented shape: a "measure" stage
// span whose children are one "cell" span per (config, benchmark) pair,
// each carrying its "record"/"replay+measure" sub-spans — even though the
// cells executed concurrently on different workers.
func TestSweepTraceSpansNest(t *testing.T) {
	specs := workload.Suite()[:2]
	cfgs := AdaptiveSpace()[:2]
	tr := metrics.NewTracer("sweep")
	sum, err := MeasureSummary(specs, cfgs, Options{Window: 3000, Workers: 2, Tracer: tr})
	if err != nil {
		t.Fatalf("MeasureSummary: %v", err)
	}
	if sum == nil || sum.Best < 0 {
		t.Fatalf("sweep produced no result")
	}

	dump := tr.Finish()
	var stage *metrics.SpanData
	for _, sp := range dump.Spans {
		if sp.Name == "measure" {
			stage = sp
			break
		}
	}
	if stage == nil {
		t.Fatalf("no measure stage span in trace: %+v", dump.Spans)
	}
	wantCells := len(specs) * len(cfgs)
	var cells int
	for _, c := range stage.Children {
		if c.Name != "cell" {
			t.Fatalf("unexpected stage child %q", c.Name)
		}
		cells++
		if c.StartUS < stage.StartUS {
			t.Errorf("cell %q starts at %dus before its stage (%dus)", c.Detail, c.StartUS, stage.StartUS)
		}
		var names []string
		for _, g := range c.Children {
			names = append(names, g.Name)
			if g.StartUS < c.StartUS {
				t.Errorf("sub-span %q starts before its cell", g.Name)
			}
		}
		if len(names) != 2 || names[0] != "record" || names[1] != "replay+measure" {
			t.Errorf("cell %q children = %v, want [record replay+measure]", c.Detail, names)
		}
	}
	if cells != wantCells {
		t.Errorf("traced %d cells, want %d", cells, wantCells)
	}
	if stage.DurUS <= 0 {
		t.Errorf("measure stage has no duration")
	}
}

// TestSweepUntracedUnaffected pins the no-tracer path: a nil Tracer must
// produce bit-identical sweep results (tracing is result-neutral and off
// the persist key).
func TestSweepUntracedUnaffected(t *testing.T) {
	specs := workload.Suite()[:2]
	cfgs := AdaptiveSpace()[:2]
	a, err := MeasureSummary(specs, cfgs, Options{Window: 3000, Tracer: metrics.NewTracer("x")})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureSummary(specs, cfgs, Options{Window: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Best != b.Best || len(a.PerApp) != len(b.PerApp) {
		t.Fatalf("traced sweep diverged: %+v vs %+v", a, b)
	}
	for i := range a.PerApp {
		if a.PerApp[i] != b.PerApp[i] || a.PerAppTimes[i] != b.PerAppTimes[i] {
			t.Fatalf("traced sweep diverged at app %d", i)
		}
	}
}
