package sweep

import (
	"reflect"
	"sort"
	"testing"

	"gals/internal/core"
	"gals/internal/resultcache"
	"gals/internal/timing"
	"gals/internal/workload"
)

func TestPhaseSpaceCarriesPolicies(t *testing.T) {
	settings := []PolicySetting{
		{Name: "paper"},
		{Name: "frozen"},
		{Name: "interval", Params: "interval=7500,hysteresis=1"},
	}
	cfgs := PhaseSpace(settings)
	if len(cfgs) != len(settings) {
		t.Fatalf("PhaseSpace has %d configs, want %d", len(cfgs), len(settings))
	}
	for i, cfg := range cfgs {
		if cfg.Mode != core.PhaseAdaptive {
			t.Errorf("config %d mode %v", i, cfg.Mode)
		}
		if cfg.Policy != settings[i].Name || cfg.PolicyParams != settings[i].Params {
			t.Errorf("config %d policy %q{%q}", i, cfg.Policy, cfg.PolicyParams)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("config %d invalid: %v", i, err)
		}
	}
}

// TestPolicySweepEndToEnd runs the policy axis through MeasureSummary like
// any other design space: frozen must never beat paper on a phased
// workload's per-app winner being well-defined, and every cell must be
// finite.
func TestPolicySweepEndToEnd(t *testing.T) {
	specs := []workload.Spec{mustSpec(t, "apsi"), mustSpec(t, "art")}
	cfgs := PhaseSpace([]PolicySetting{
		{Name: "paper"},
		{Name: "frozen"},
		{Name: "interval", Params: "interval=7500"},
	})
	sum, err := MeasureSummary(specs, cfgs, Options{Window: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Best < 0 {
		t.Fatal("policy sweep produced no finite configuration")
	}
	for si, bi := range sum.PerApp {
		if bi < 0 || sum.PerAppTimes[si] <= 0 {
			t.Fatalf("benchmark %d has no winner", si)
		}
	}
	// Distinct policies must actually produce distinct machines: frozen and
	// paper cannot tie on a workload with reconfiguration opportunities.
	times := Measure(specs, cfgs, Options{Window: 40_000})
	if times[0][0] == times[1][0] {
		t.Error("paper and frozen produced identical times on apsi")
	}
}

// TestOptionsPolicyReachesPhaseStage pins that Options.Policy changes
// MeasurePhase results (and their persist identity) without touching
// configs that already carry a policy.
func TestOptionsPolicyReachesPhaseStage(t *testing.T) {
	specs := []workload.Spec{mustSpec(t, "apsi")}
	paper, err := MeasurePhase(specs, Options{Window: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := MeasurePhase(specs, Options{Window: 40_000, Policy: "frozen"})
	if err != nil {
		t.Fatal(err)
	}
	if frozen[0].Stats.Reconfigs != 0 {
		t.Errorf("frozen phase run reconfigured %d times", frozen[0].Stats.Reconfigs)
	}
	if paper[0].Stats.Reconfigs == 0 {
		t.Error("paper phase run never reconfigured on apsi")
	}
	if paper[0].TimeFS == frozen[0].TimeFS {
		t.Error("policy selection did not change the phase result")
	}
	// A config that carries its own policy wins over the sweep-level one.
	cfg := Options{Window: 1000, Policy: "frozen"}.apply(
		core.DefaultAdaptive(core.PhaseAdaptive).WithPolicy("paper", ""))
	if cfg.Policy != "paper" {
		t.Errorf("apply clobbered the config's own policy with %q", cfg.Policy)
	}
}

func TestTopKSummaryMatchesFullRanking(t *testing.T) {
	specs := workload.Suite()[:3]
	cfgs := AdaptiveSpace()[:12]
	o := Options{Window: 1500}
	full, err := MeasureSummary(specs, cfgs, o)
	if err != nil {
		t.Fatal(err)
	}
	ok := o
	ok.TopK = 5
	top, err := MeasureSummary(specs, cfgs, ok)
	if err != nil {
		t.Fatal(err)
	}
	if top.Scores != nil || top.Invalid != nil {
		t.Error("top-K summary retained the full scores slice")
	}
	if len(top.Top) != 5 {
		t.Fatalf("Top has %d entries, want 5", len(top.Top))
	}
	// The reference ranking: sort the full scores ascending, ties by index.
	type rc struct {
		ci    int
		score float64
	}
	var ref []rc
	for ci, s := range full.Scores {
		if full.Invalid[ci] {
			continue
		}
		ref = append(ref, rc{ci, s})
	}
	sort.Slice(ref, func(i, j int) bool {
		if ref[i].score != ref[j].score {
			return ref[i].score < ref[j].score
		}
		return ref[i].ci < ref[j].ci
	})
	for i, r := range top.Top {
		if r.Config != ref[i].ci || r.Score != ref[i].score {
			t.Fatalf("Top[%d] = %+v, want (%d, %v)", i, r, ref[i].ci, ref[i].score)
		}
	}
	if top.Best != full.Best || !reflect.DeepEqual(top.BestTimes, full.BestTimes) ||
		!reflect.DeepEqual(top.PerApp, full.PerApp) {
		t.Error("top-K aggregation changed the winners")
	}
	if top.Top[0].Config != full.Best {
		t.Error("Top[0] is not the best-overall configuration")
	}
	if got := full.TopOf(5); !reflect.DeepEqual(got, top.Top) {
		t.Errorf("TopOf(5) = %v, want %v", got, top.Top)
	}
}

func TestTopKServedFromPersistedFullSummary(t *testing.T) {
	specs := workload.Suite()[:2]
	cfgs := AdaptiveSpace()[:8]
	o := Options{Window: 1500}

	c, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prev := SetPersist(c)
	defer SetPersist(prev)

	full, err := MeasureSummary(specs, cfgs, o)
	if err != nil {
		t.Fatal(err)
	}
	before := MeasureComputations()
	ok := o
	ok.TopK = 3
	top, err := MeasureSummary(specs, cfgs, ok)
	if err != nil {
		t.Fatal(err)
	}
	if MeasureComputations() != before {
		t.Fatal("top-K request re-simulated despite a persisted full summary")
	}
	if !reflect.DeepEqual(top.Top, full.TopOf(3)) {
		t.Error("derived top-K differs from the full summary's ranking")
	}
	// And the derived summary was persisted under its own key: a second
	// request loads it directly even shape-checked.
	again, err := MeasureSummary(specs, cfgs, ok)
	if err != nil {
		t.Fatal(err)
	}
	if MeasureComputations() != before {
		t.Fatal("second top-K request re-simulated")
	}
	if !reflect.DeepEqual(again.Top, top.Top) {
		t.Error("persisted top-K summary differs")
	}
}

func TestTopOfExcludesInvalidConfigs(t *testing.T) {
	times := [][]timing.FS{
		{100, 200},
		{0, 300}, // disqualified: a non-positive run time
		{50, 400},
	}
	s := Summarize(times)
	top := s.TopOf(3)
	if len(top) != 2 {
		t.Fatalf("TopOf kept %d configs, want 2 (one invalid)", len(top))
	}
	for _, r := range top {
		if r.Config == 1 {
			t.Error("disqualified configuration ranked")
		}
	}
}

func mustSpec(t *testing.T, name string) workload.Spec {
	t.Helper()
	s, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("missing benchmark %q", name)
	}
	return s
}

// TestCrossPhaseSpaceProduct pins the policy x initial-configuration
// product space: policy-major order, one Phase-Adaptive machine per pair,
// and the one-base special case collapsing to PhaseSpace.
func TestCrossPhaseSpaceProduct(t *testing.T) {
	settings := []PolicySetting{{Name: "paper"}, {Name: "frozen"}}
	small := core.DefaultAdaptive(core.PhaseAdaptive)
	large := small
	large.ICache = timing.ICache64K4W
	large.DCache = timing.DCache256K8W
	large.IntIQ, large.FPIQ = timing.IQ64, timing.IQ64

	cfgs := CrossPhaseSpace(settings, []core.Config{small, large})
	if len(cfgs) != 4 {
		t.Fatalf("product space has %d configs, want 4", len(cfgs))
	}
	for i, cfg := range cfgs {
		wantPol := settings[i/2].Name
		if cfg.Policy != wantPol || cfg.Mode != core.PhaseAdaptive {
			t.Errorf("config %d: policy %q mode %v, want %q phase-adaptive", i, cfg.Policy, cfg.Mode, wantPol)
		}
		wantIQ := small.IntIQ
		if i%2 == 1 {
			wantIQ = timing.IQ64
		}
		if cfg.IntIQ != wantIQ {
			t.Errorf("config %d: IntIQ %d, want %d", i, cfg.IntIQ, wantIQ)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("config %d invalid: %v", i, err)
		}
	}
	if !reflect.DeepEqual(CrossPhaseSpace(settings, nil), PhaseSpace(settings)) {
		t.Error("CrossPhaseSpace with no bases differs from PhaseSpace")
	}
}
