// The shared work-stealing cell scheduler. A sweep is decomposed into one
// cell per (configuration, benchmark) pair, submitted as contiguous groups
// (one configuration's cells, in benchmark order — see runCells for why
// that orientation is what lets the streaming accumulator close rows
// early); the worker that admits a group drains it front-to-back while
// idle workers batch-steal half of a sibling's deque from its far end
// (Cilk-style), so migrating work costs one lock acquisition per batch
// rather than per cell.
// One pool instance bounds TOTAL simulation parallelism: the service runs
// every request — single runs, batches, sweeps, suite pipelines — through
// its pool,
// so a 12,800-cell sweep and a stream of /v1/run requests together never
// exceed the configured worker count, and higher-priority groups preempt
// queued (not running) lower-priority work.
package sweep

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueueFull is returned by Execute when admitting the batch would push
// the pool's pending-cell count past its bound; under overload the caller
// sheds load (HTTP maps it to 503) instead of buffering without limit.
var ErrQueueFull = errors.New("sweep: cell queue full")

// ErrClosed is returned by Execute after Close.
var ErrClosed = errors.New("sweep: pool closed")

// DefaultQueueDepth is the pending-cell bound used when NewPool is given a
// non-positive depth: comfortably above a full 1,024-config x 40-benchmark
// sweep (40,960 cells), so a single paper-scale request never self-rejects.
const DefaultQueueDepth = 1 << 16

// batch ties every cell of one Execute call together so cancellation can
// find and discharge them wherever they sit (priority heap or a worker's
// deque). cancelled is also checked by cells a worker has already popped,
// covering the race where a cell leaves the queue just as the purge runs.
type batch struct {
	wg        sync.WaitGroup
	cancelled atomic.Bool
}

// cell is one queued unit of work with the priority of its batch.
type cell struct {
	pri int
	run func()
	b   *batch
}

// group is a submitted batch of cells awaiting admission to a worker.
type group struct {
	pri   int
	seq   uint64 // submission order: FIFO within a priority
	cells []cell
}

// groupHeap is a max-heap by (priority, -seq).
type groupHeap []*group

func (h groupHeap) Len() int { return len(h) }
func (h groupHeap) Less(i, j int) bool {
	if h[i].pri != h[j].pri {
		return h[i].pri > h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h groupHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *groupHeap) Push(x any)   { *h = append(*h, x.(*group)) }
func (h *groupHeap) Pop() any {
	old := *h
	n := len(old)
	g := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return g
}

// deque is one worker's local run queue. The owner consumes from the front
// (cells of one group stay in submission order, so a benchmark's recording
// is replayed back-to-back); thieves take from the back, the end farthest
// from what the owner touches next.
type deque struct {
	buf  []cell
	head int // index of the front cell; len(buf) == head means empty
}

func (d *deque) empty() bool { return d.head == len(d.buf) }
func (d *deque) front() cell { return d.buf[d.head] }
func (d *deque) size() int   { return len(d.buf) - d.head }
func (d *deque) popFront() cell {
	c := d.buf[d.head]
	d.buf[d.head].run = nil
	d.head++
	if d.empty() {
		d.buf, d.head = d.buf[:0], 0
	}
	return c
}

// stealHalfFrom moves the back half of v's cells (at least one) into d,
// which must be empty, preserving their order — the classic Cilk batch
// steal. One lock acquisition migrates the whole batch; the old design
// moved one cell per steal, so fine-grained load paid one acquisition per
// migrated cell. It returns the number of cells moved.
func (d *deque) stealHalfFrom(v *deque) int {
	n := (v.size() + 1) / 2
	start := len(v.buf) - n
	d.buf = append(d.buf[:0], v.buf[start:]...)
	d.head = 0
	for i := start; i < len(v.buf); i++ {
		v.buf[i].run = nil
	}
	v.buf = v.buf[:start]
	if v.empty() {
		v.buf, v.head = v.buf[:0], 0
	}
	return n
}

// purgeBatch removes the batch's cells from the deque in place, preserving
// the order of everything else, and returns how many it removed.
func (d *deque) purgeBatch(b *batch) int {
	if d.empty() {
		return 0
	}
	n := 0
	w := d.head
	for i := d.head; i < len(d.buf); i++ {
		if d.buf[i].b == b {
			n++
			continue
		}
		d.buf[w] = d.buf[i]
		w++
	}
	for i := w; i < len(d.buf); i++ {
		d.buf[i] = cell{}
	}
	d.buf = d.buf[:w]
	if d.empty() {
		d.buf, d.head = d.buf[:0], 0
	}
	return n
}

// pushFrontGroup prepends a group's cells so they run before anything the
// deque already holds (they were admitted because they outrank it).
func (d *deque) pushFrontGroup(g *group) {
	if d.head >= len(g.cells) {
		d.head -= len(g.cells)
		copy(d.buf[d.head:], g.cells)
		return
	}
	buf := make([]cell, 0, len(g.cells)+d.size())
	buf = append(buf, g.cells...)
	buf = append(buf, d.buf[d.head:]...)
	d.buf, d.head = buf, 0
}

// Pool is a bounded work-stealing executor for simulation cells. Create
// with NewPool, submit with Execute, stop with Close. All methods are safe
// for concurrent use. Cells are coarse (one simulation run each, typically
// 0.1 ms - 1 s), so a single mutex over the scheduling state is far from
// contended; the per-worker deques exist for locality and priority, not for
// lock avoidance.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending int // cells in the heap + deques (not yet running)
	queue   groupHeap
	deques  []deque
	seq     uint64
	depth   int
	closed  bool
	workers sync.WaitGroup

	nworkers  int
	inflight  atomic.Int64
	completed atomic.Int64
	rejected  atomic.Int64
	purged    atomic.Int64 // cells removed unrun by cancellation
	steals    atomic.Int64 // steal events (one lock acquisition each)
	stolen    atomic.Int64 // cells migrated by steals

	// obs, when set, observes every cell's execution wall time. Atomic so
	// SetObserver is safe against already-running workers; nil (the
	// default, and the CLI's SharedPool forever) costs one pointer load
	// per cell and not even a clock read.
	obs atomic.Pointer[func(d time.Duration)]
}

// NewPool starts a pool of `workers` goroutines bounded at `depth` pending
// cells (<= 0 selects DefaultQueueDepth).
func NewPool(workers, depth int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	p := &Pool{depth: depth, nworkers: workers, deques: make([]deque, workers)}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		p.workers.Add(1)
		go p.work(i)
	}
	return p
}

var (
	sharedOnce sync.Once
	shared     *Pool
)

// SharedPool returns the process-wide default pool (GOMAXPROCS workers,
// effectively unbounded queue), created on first use. CLI sweeps without an
// explicit Options.Exec run here, so concurrent sweeps in one process share
// one parallelism bound instead of multiplying worker fleets.
func SharedPool() *Pool {
	sharedOnce.Do(func() { shared = NewPool(runtime.GOMAXPROCS(0), 1<<30) })
	return shared
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.nworkers }

// Pending returns the number of admitted-but-not-running cells.
func (p *Pool) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending
}

// InFlight returns the number of currently executing cells.
func (p *Pool) InFlight() int64 { return p.inflight.Load() }

// IdleSlots reports how many workers are idle with no queued cell waiting
// to claim them — the spare capacity a running cell may borrow for
// intra-run stage parallelism without displacing other work. Zero whenever
// the queue is non-empty: a queued cell always outranks a speedup of one
// already running. The value is advisory (both counters move under the
// caller's feet); borrowers oversubscribe by at most their stage count,
// which the scheduler absorbs.
func (p *Pool) IdleSlots() int {
	if p.Pending() > 0 {
		return 0
	}
	idle := p.nworkers - int(p.inflight.Load())
	if idle < 0 {
		idle = 0
	}
	return idle
}

// Completed returns the number of finished cells.
func (p *Pool) Completed() int64 { return p.completed.Load() }

// Rejected returns the number of Execute batches refused with ErrQueueFull.
func (p *Pool) Rejected() int64 { return p.rejected.Load() }

// Purged returns the number of cells removed unrun by context cancellation.
func (p *Pool) Purged() int64 { return p.purged.Load() }

// Steals returns the number of steal events so far. Each steal is one lock
// acquisition that migrates half the victim's deque; before batch stealing
// it migrated a single cell, so StolenCells()/Steals() is the lock-traffic
// amortization factor under fine-grained load.
func (p *Pool) Steals() int64 { return p.steals.Load() }

// StolenCells returns the number of cells that moved between workers via
// steals.
func (p *Pool) StolenCells() int64 { return p.stolen.Load() }

// SetObserver installs fn to observe every subsequently executed cell's
// wall time (the service feeds its cell-latency histogram). Cells are
// coarse — one simulation run each — so the two clock reads this adds per
// cell are noise. nil uninstalls.
func (p *Pool) SetObserver(fn func(d time.Duration)) {
	if fn == nil {
		p.obs.Store(nil)
		return
	}
	p.obs.Store(&fn)
}

// work is one worker's loop.
func (p *Pool) work(id int) {
	defer p.workers.Done()
	for {
		p.mu.Lock()
		c, ok := p.next(id)
		for !ok && !p.closed {
			p.cond.Wait()
			c, ok = p.next(id)
		}
		if !ok {
			p.mu.Unlock()
			return
		}
		p.pending--
		p.mu.Unlock()

		p.inflight.Add(1)
		if fn := p.obs.Load(); fn != nil {
			t0 := time.Now()
			c.run()
			(*fn)(time.Since(t0))
		} else {
			c.run()
		}
		p.inflight.Add(-1)
		p.completed.Add(1)
	}
}

// next picks worker id's next cell under p.mu: admit the top pending group
// when it outranks the local deque (or the deque is empty), else continue
// the local group, else batch-steal half the fullest sibling's deque into
// the local one and continue from its front. Stolen cells stay in a deque —
// never in private worker state — so they remain visible to Pending, to
// further thieves, and to front-admission preemption by higher-priority
// groups between every cell.
func (p *Pool) next(id int) (cell, bool) {
	d := &p.deques[id]
	if len(p.queue) > 0 && (d.empty() || p.queue[0].pri > d.front().pri) {
		d.pushFrontGroup(heap.Pop(&p.queue).(*group))
	}
	if d.empty() {
		victim, best := -1, 0
		for i := range p.deques {
			if i != id && p.deques[i].size() > best {
				victim, best = i, p.deques[i].size()
			}
		}
		if victim < 0 {
			return cell{}, false
		}
		moved := d.stealHalfFrom(&p.deques[victim])
		p.steals.Add(1)
		p.stolen.Add(int64(moved))
	}
	return d.popFront(), true
}

// Execute runs every cell of every group on the pool and returns when all
// have finished. Cells of one group are kept contiguous on one worker's
// deque (stealing aside) — submit the cells that share a recording as one
// group. Higher pri runs first among queued work; ties are FIFO. A panic
// inside a cell is contained to that cell and reported as the batch's
// error after the remaining cells finish. Execute must not be called from
// inside a cell (the nested batch could wait forever for the worker it is
// occupying).
func (p *Pool) Execute(pri int, groups [][]func()) error {
	return p.ExecuteContext(context.Background(), pri, groups)
}

// ExecuteContext is Execute bounded by ctx: when ctx is cancelled the
// batch's still-queued cells are purged from the scheduler (their lanes
// freed immediately for other batches) and cells already on a worker are
// left to finish — a cell is an opaque func, so it is the cell's own job to
// observe the same ctx and return early. ExecuteContext always waits for
// its running cells before returning, so caller-owned resources (trace
// pools, accumulators) are safe to tear down as soon as it returns; the
// return is ctx.Err() when the batch was cut short.
func (p *Pool) ExecuteContext(ctx context.Context, pri int, groups [][]func()) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total == 0 {
		return nil
	}

	b := &batch{}
	b.wg.Add(total)
	var panicMu sync.Mutex
	var panicked any
	wrap := func(fn func()) func() {
		return func() {
			defer b.wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			if b.cancelled.Load() {
				return
			}
			fn()
		}
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		// Account for cells that will never run.
		b.wg.Add(-total)
		return ErrClosed
	}
	// The depth bound is about queuing behind other work, not about batch
	// size: an idle pool (nothing pending) admits a batch of any size, so
	// a sweep larger than the bound runs instead of failing forever, while
	// a loaded pool sheds anything that doesn't fit.
	if p.pending > 0 && p.pending+total > p.depth {
		p.mu.Unlock()
		b.wg.Add(-total)
		p.rejected.Add(1)
		return ErrQueueFull
	}
	for _, fns := range groups {
		if len(fns) == 0 {
			continue
		}
		g := &group{pri: pri, seq: p.seq, cells: make([]cell, len(fns))}
		p.seq++
		for i, fn := range fns {
			g.cells[i] = cell{pri: pri, run: wrap(fn), b: b}
		}
		heap.Push(&p.queue, g)
	}
	p.pending += total
	p.mu.Unlock()
	p.cond.Broadcast()

	var watcher chan struct{}
	var finished chan struct{}
	if ctx.Done() != nil {
		watcher = make(chan struct{})
		finished = make(chan struct{})
		go func() {
			defer close(watcher)
			select {
			case <-ctx.Done():
				p.purge(b)
			case <-finished:
			}
		}()
	}

	b.wg.Wait()
	if watcher != nil {
		close(finished)
		<-watcher // the purge (if any) completed; no goroutine outlives us
	}
	panicMu.Lock()
	defer panicMu.Unlock()
	if panicked != nil {
		return fmt.Errorf("sweep: cell panicked: %v", panicked)
	}
	return ctx.Err()
}

// purge removes the batch's queued cells from the priority heap and every
// worker deque, discharging their WaitGroup slots so ExecuteContext's wait
// ends as soon as the batch's running cells drain.
func (p *Pool) purge(b *batch) {
	b.cancelled.Store(true)
	p.mu.Lock()
	removed := 0
	kept := p.queue[:0]
	for _, g := range p.queue {
		w := 0
		for _, c := range g.cells {
			if c.b == b {
				removed++
				continue
			}
			g.cells[w] = c
			w++
		}
		for i := w; i < len(g.cells); i++ {
			g.cells[i] = cell{}
		}
		g.cells = g.cells[:w]
		if w > 0 {
			kept = append(kept, g)
		}
	}
	for i := len(kept); i < len(p.queue); i++ {
		p.queue[i] = nil
	}
	p.queue = kept
	heap.Init(&p.queue)
	for i := range p.deques {
		removed += p.deques[i].purgeBatch(b)
	}
	p.pending -= removed
	p.mu.Unlock()
	p.purged.Add(int64(removed))
	for i := 0; i < removed; i++ {
		b.wg.Done()
	}
}

// Close drains already-accepted cells, then stops the workers. Subsequent
// Execute calls fail with ErrClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.workers.Wait()
}
