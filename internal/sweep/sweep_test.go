package sweep

import (
	"reflect"
	"testing"

	"gals/internal/core"
	"gals/internal/resultcache"
	"gals/internal/timing"
	"gals/internal/workload"
)

func TestSpaceSizes(t *testing.T) {
	// Paper Section 4: 1,024 synchronous points (16 x 4 x 4 x 4) and 256
	// adaptive points (4 x 4 x 4 x 4).
	if got := len(SyncSpace()); got != 1024 {
		t.Errorf("sync space has %d configs, want 1024", got)
	}
	if got := len(AdaptiveSpace()); got != 256 {
		t.Errorf("adaptive space has %d configs, want 256", got)
	}
	for _, c := range SyncSpace() {
		if err := c.Validate(); err != nil {
			t.Fatalf("invalid sync config: %v", err)
		}
	}
	for _, c := range AdaptiveSpace() {
		if c.Mode != core.ProgramAdaptive {
			t.Fatal("adaptive space config not program-adaptive")
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("invalid adaptive config: %v", err)
		}
	}
}

func TestBestOverallAndPerApp(t *testing.T) {
	// Synthetic matrix: config 1 is best overall; config 0 best on app 0.
	times := [][]timing.FS{
		{100, 900, 900},
		{300, 300, 300},
		{500, 400, 800},
	}
	if got := BestOverall(times); got != 1 {
		t.Errorf("BestOverall = %d, want 1", got)
	}
	per := BestPerApp(times)
	want := []int{0, 1, 1}
	for i := range want {
		if per[i] != want[i] {
			t.Errorf("BestPerApp[%d] = %d, want %d", i, per[i], want[i])
		}
	}
	if BestPerApp(nil) != nil {
		t.Error("BestPerApp(nil) != nil")
	}
}

// TestBestOverallZeroTimeGuard: a zero (or negative) run time means "no
// valid measurement" and must never win the geometric-mean comparison —
// math.Log(0) = -Inf would otherwise make the broken config look infinitely
// fast.
func TestBestOverallZeroTimeGuard(t *testing.T) {
	times := [][]timing.FS{
		{100, 0, 900}, // one failed run: whole config disqualified
		{300, 300, 300},
		{500, -7, 800}, // negative time likewise
	}
	if got := BestOverall(times); got != 1 {
		t.Errorf("BestOverall with zero/negative times = %d, want 1", got)
	}
	// Empty input and all-invalid input return -1, not a bogus winner.
	if got := BestOverall(nil); got != -1 {
		t.Errorf("BestOverall(nil) = %d, want -1", got)
	}
	if got := BestOverall([][]timing.FS{}); got != -1 {
		t.Errorf("BestOverall(empty) = %d, want -1", got)
	}
	if got := BestOverall([][]timing.FS{{0}, {0, 0}}); got != -1 {
		t.Errorf("BestOverall(all-invalid) = %d, want -1", got)
	}
	// Sanity: a single valid config wins.
	if got := BestOverall([][]timing.FS{{5}}); got != 0 {
		t.Errorf("BestOverall(single) = %d, want 0", got)
	}
}

// TestMeasureSharedPool threads one recorded-trace pool through two sweeps
// and checks results match pool-less sweeps exactly.
func TestMeasureSharedPool(t *testing.T) {
	specs := workload.Suite()[:3]
	cfgs := AdaptiveSpace()[:3]
	pool := workload.NewPool(3000)
	withPool := Options{Window: 3000, Traces: pool}
	noPool := Options{Window: 3000}
	a := Measure(specs, cfgs, withPool)
	b := Measure(specs, cfgs, noPool)
	for ci := range cfgs {
		for si := range specs {
			if a[ci][si] != b[ci][si] {
				t.Fatalf("pooled sweep diverges at [%d][%d]: %d vs %d", ci, si, a[ci][si], b[ci][si])
			}
		}
	}
	if pool.Size() != len(specs) {
		t.Errorf("pool recorded %d benchmarks, want %d", pool.Size(), len(specs))
	}
	// PhaseResults shares the same pool and matches its pool-less twin.
	pa := PhaseResults(specs, withPool)
	pb := PhaseResults(specs, noPool)
	for i := range pa {
		if pa[i].TimeFS != pb[i].TimeFS {
			t.Fatalf("pooled PhaseResults diverges at %d", i)
		}
	}
	// An undersized pool must not be used (replays would overrun); Measure
	// falls back to a private pool of the right window.
	small := workload.NewPool(10)
	c := Measure(specs, cfgs, Options{Window: 3000, Traces: small})
	for ci := range cfgs {
		for si := range specs {
			if c[ci][si] != b[ci][si] {
				t.Fatalf("undersized-pool sweep diverges at [%d][%d]", ci, si)
			}
		}
	}
	if small.Size() != 0 {
		t.Errorf("undersized pool was populated (%d entries)", small.Size())
	}
}

// TestPhaseResultsRecordEvents: PhaseResults always records
// reconfiguration events so Figure 7 can reuse suite runs.
func TestPhaseResultsRecordEvents(t *testing.T) {
	spec, _ := workload.ByName("apsi")
	res := PhaseResults([]workload.Spec{spec}, Options{Window: 40_000})
	if len(res[0].Stats.ReconfigEvents) == 0 {
		t.Error("PhaseResults recorded no reconfiguration events on apsi")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(200, 100); got != 100 {
		t.Errorf("Improvement(200,100) = %v, want +100%%", got)
	}
	if got := Improvement(100, 200); got != -50 {
		t.Errorf("Improvement(100,200) = %v, want -50%%", got)
	}
	if got := Improvement(100, 0); got != 0 {
		t.Errorf("Improvement by zero = %v, want 0", got)
	}
}

func TestMeasureMatchesDirectRuns(t *testing.T) {
	specs := workload.Suite()[:2]
	cfgs := []core.Config{core.DefaultSync(), core.DefaultAdaptive(core.ProgramAdaptive)}
	o := Options{Window: 5000, Workers: 4}
	times := Measure(specs, cfgs, o)
	for ci, cfg := range cfgs {
		for si, spec := range specs {
			want := core.RunWorkload(spec, o.WithDefaults().apply(cfg), 5000).TimeFS
			if times[ci][si] != want {
				t.Errorf("Measure[%d][%d] = %d, direct run %d", ci, si, times[ci][si], want)
			}
		}
	}
}

func TestMeasureDeterministicAcrossRuns(t *testing.T) {
	specs := workload.Suite()[:3]
	cfgs := AdaptiveSpace()[:4]
	o := Options{Window: 3000}
	a := Measure(specs, cfgs, o)
	b := Measure(specs, cfgs, o)
	for ci := range cfgs {
		for si := range specs {
			if a[ci][si] != b[ci][si] {
				t.Fatalf("parallel sweep nondeterministic at [%d][%d]", ci, si)
			}
		}
	}
}

// TestMeasureSummaryBitIdenticalToMatrix is the tentpole acceptance check
// at test scale: the streaming summary's winners and per-config best times
// must be bit-identical to retaining the full matrix and folding it, for
// both the summary's own accumulation order (out-of-order cell completion)
// and the sequential reference.
func TestMeasureSummaryBitIdenticalToMatrix(t *testing.T) {
	specs := workload.Suite()[:5]
	cfgs := AdaptiveSpace()[:24]
	o := Options{Window: 2500}
	times := Measure(specs, cfgs, o)
	ref := Summarize(times)
	sum, err := MeasureSummary(specs, cfgs, o)
	if err != nil {
		t.Fatal(err)
	}

	if sum.Best != ref.Best || sum.Best != BestOverall(times) {
		t.Fatalf("Best = %d, matrix fold %d, BestOverall %d", sum.Best, ref.Best, BestOverall(times))
	}
	for si := range specs {
		if sum.BestTimes[si] != times[sum.Best][si] {
			t.Fatalf("BestTimes[%d] = %d, matrix %d", si, sum.BestTimes[si], times[sum.Best][si])
		}
	}
	per := BestPerApp(times)
	for si := range specs {
		if sum.PerApp[si] != per[si] {
			t.Fatalf("PerApp[%d] = %d, BestPerApp %d", si, sum.PerApp[si], per[si])
		}
		if sum.PerAppTimes[si] != times[per[si]][si] {
			t.Fatalf("PerAppTimes[%d] = %d, matrix %d", si, sum.PerAppTimes[si], times[per[si]][si])
		}
	}
	for ci := range cfgs {
		if sum.Scores[ci] != ref.Scores[ci] || sum.Invalid[ci] != ref.Invalid[ci] {
			t.Fatalf("Scores[%d] = %v/%v, matrix fold %v/%v",
				ci, sum.Scores[ci], sum.Invalid[ci], ref.Scores[ci], ref.Invalid[ci])
		}
	}
	// And the summary is itself deterministic across runs.
	again, err := MeasureSummary(specs, cfgs, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sum, again) {
		t.Fatal("MeasureSummary nondeterministic across runs")
	}
}

// TestSummarizeTieBreaksAndInvalids pins Summarize (and therefore the
// streaming fold) to BestOverall/BestPerApp semantics on crafted ties and
// disqualified rows.
func TestSummarizeTieBreaksAndInvalids(t *testing.T) {
	times := [][]timing.FS{
		{100, 0, 900}, // failed run: disqualified overall, still wins app 0
		{300, 300, 300},
		{300, 300, 300}, // exact tie with config 1: lowest index must win
		{500, 400, 800},
	}
	sum := Summarize(times)
	if sum.Best != BestOverall(times) || sum.Best != 1 {
		t.Fatalf("Best = %d, want 1", sum.Best)
	}
	if !sum.Invalid[0] || sum.Invalid[1] {
		t.Fatalf("Invalid flags wrong: %v", sum.Invalid)
	}
	per := BestPerApp(times)
	for si := range per {
		if sum.PerApp[si] != per[si] {
			t.Fatalf("PerApp[%d] = %d, BestPerApp %d", si, sum.PerApp[si], per[si])
		}
	}
	// Degenerate shapes.
	if s := Summarize(nil); s.Best != -1 {
		t.Fatalf("Summarize(nil).Best = %d, want -1", s.Best)
	}
	if s := Summarize([][]timing.FS{{0}, {-3}}); s.Best != -1 {
		t.Fatalf("all-invalid Best = %d, want -1", s.Best)
	}
}

// TestMeasureSummaryPersistAndMatrixFallback: a persisted summary is served
// without simulating; a persisted full matrix (from an older Measure call)
// also answers a summary request without simulating.
func TestMeasureSummaryPersistAndMatrixFallback(t *testing.T) {
	specs := workload.Suite()[:2]
	cfgs := AdaptiveSpace()[:6]
	o := Options{Window: 1500}

	c, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if prev := SetPersist(c); prev != nil {
		defer SetPersist(prev)
	} else {
		defer SetPersist(nil)
	}

	before := MeasureComputations()
	sum, err := MeasureSummary(specs, cfgs, o)
	if err != nil {
		t.Fatal(err)
	}
	if MeasureComputations() != before+1 {
		t.Fatal("cold summary did not compute")
	}
	warm, err := MeasureSummary(specs, cfgs, o)
	if err != nil {
		t.Fatal(err)
	}
	if MeasureComputations() != before+1 {
		t.Fatal("warm summary recomputed instead of loading")
	}
	if !reflect.DeepEqual(sum, warm) {
		t.Fatal("persisted summary differs from computed one")
	}

	// Fresh store: persist only the matrix, then ask for the summary.
	c2, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	SetPersist(c2)
	times := Measure(specs, cfgs, o) // computes and persists the matrix
	mid := MeasureComputations()
	fromMatrix, err := MeasureSummary(specs, cfgs, o)
	if err != nil {
		t.Fatal(err)
	}
	if MeasureComputations() != mid {
		t.Fatal("summary re-simulated despite a persisted matrix")
	}
	if !reflect.DeepEqual(fromMatrix, Summarize(times)) {
		t.Fatal("matrix-derived summary differs")
	}
}

func TestPhaseResultsShape(t *testing.T) {
	specs := workload.Suite()[:3]
	res := PhaseResults(specs, Options{Window: 3000})
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	for i, r := range res {
		if r == nil || r.Stats.Instructions != 3000 {
			t.Errorf("result %d malformed", i)
		}
		if r.Config.Mode != core.PhaseAdaptive {
			t.Errorf("result %d mode %v", i, r.Config.Mode)
		}
	}
}
