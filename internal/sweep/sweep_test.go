package sweep

import (
	"testing"

	"gals/internal/core"
	"gals/internal/timing"
	"gals/internal/workload"
)

func TestSpaceSizes(t *testing.T) {
	// Paper Section 4: 1,024 synchronous points (16 x 4 x 4 x 4) and 256
	// adaptive points (4 x 4 x 4 x 4).
	if got := len(SyncSpace()); got != 1024 {
		t.Errorf("sync space has %d configs, want 1024", got)
	}
	if got := len(AdaptiveSpace()); got != 256 {
		t.Errorf("adaptive space has %d configs, want 256", got)
	}
	for _, c := range SyncSpace() {
		if err := c.Validate(); err != nil {
			t.Fatalf("invalid sync config: %v", err)
		}
	}
	for _, c := range AdaptiveSpace() {
		if c.Mode != core.ProgramAdaptive {
			t.Fatal("adaptive space config not program-adaptive")
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("invalid adaptive config: %v", err)
		}
	}
}

func TestBestOverallAndPerApp(t *testing.T) {
	// Synthetic matrix: config 1 is best overall; config 0 best on app 0.
	times := [][]timing.FS{
		{100, 900, 900},
		{300, 300, 300},
		{500, 400, 800},
	}
	if got := BestOverall(times); got != 1 {
		t.Errorf("BestOverall = %d, want 1", got)
	}
	per := BestPerApp(times)
	want := []int{0, 1, 1}
	for i := range want {
		if per[i] != want[i] {
			t.Errorf("BestPerApp[%d] = %d, want %d", i, per[i], want[i])
		}
	}
	if BestPerApp(nil) != nil {
		t.Error("BestPerApp(nil) != nil")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(200, 100); got != 100 {
		t.Errorf("Improvement(200,100) = %v, want +100%%", got)
	}
	if got := Improvement(100, 200); got != -50 {
		t.Errorf("Improvement(100,200) = %v, want -50%%", got)
	}
	if got := Improvement(100, 0); got != 0 {
		t.Errorf("Improvement by zero = %v, want 0", got)
	}
}

func TestMeasureMatchesDirectRuns(t *testing.T) {
	specs := workload.Suite()[:2]
	cfgs := []core.Config{core.DefaultSync(), core.DefaultAdaptive(core.ProgramAdaptive)}
	o := Options{Window: 5000, Workers: 4}
	times := Measure(specs, cfgs, o)
	for ci, cfg := range cfgs {
		for si, spec := range specs {
			want := core.RunWorkload(spec, o.withDefaults().apply(cfg), 5000).TimeFS
			if times[ci][si] != want {
				t.Errorf("Measure[%d][%d] = %d, direct run %d", ci, si, times[ci][si], want)
			}
		}
	}
}

func TestMeasureDeterministicAcrossRuns(t *testing.T) {
	specs := workload.Suite()[:3]
	cfgs := AdaptiveSpace()[:4]
	o := Options{Window: 3000}
	a := Measure(specs, cfgs, o)
	b := Measure(specs, cfgs, o)
	for ci := range cfgs {
		for si := range specs {
			if a[ci][si] != b[ci][si] {
				t.Fatalf("parallel sweep nondeterministic at [%d][%d]", ci, si)
			}
		}
	}
}

func TestPhaseResultsShape(t *testing.T) {
	specs := workload.Suite()[:3]
	res := PhaseResults(specs, Options{Window: 3000})
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	for i, r := range res {
		if r == nil || r.Stats.Instructions != 3000 {
			t.Errorf("result %d malformed", i)
		}
		if r.Config.Mode != core.PhaseAdaptive {
			t.Errorf("result %d mode %v", i, r.Config.Mode)
		}
	}
}
