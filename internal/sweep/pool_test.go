package sweep

import (
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// execAsync submits a single-cell batch from its own goroutine and returns
// a done channel (Execute blocks until the cell ran).
func execAsync(t *testing.T, p *Pool, pri int, fn func()) chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- p.Execute(pri, [][]func(){{fn}}) }()
	return done
}

func waitPending(t *testing.T, p *Pool, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Pending() != want {
		if time.Now().After(deadline) {
			t.Fatalf("pending stuck at %d, want %d", p.Pending(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolPriorityAndBackpressure ports the PR-2 scheduler contract to the
// work-stealing pool: with one occupied worker, queued single-cell batches
// run highest-priority first (FIFO within a priority), and cells beyond the
// depth bound are rejected with ErrQueueFull.
func TestPoolPriorityAndBackpressure(t *testing.T) {
	p := NewPool(1, 4)
	defer p.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	gateDone := execAsync(t, p, 0, func() { close(started); <-gate })
	<-started // the worker is now occupied; everything below queues

	var mu sync.Mutex
	var order []string
	var dones []chan error
	enqueue := func(name string, pri int) {
		dones = append(dones, execAsync(t, p, pri, func() {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}))
		waitPending(t, p, len(dones))
	}
	enqueue("low", -10)
	enqueue("normal-1", 0)
	enqueue("high", 10)
	enqueue("normal-2", 0)

	// The queue is at its bound of 4 now.
	if err := p.Execute(10, [][]func(){{func() {}}}); err != ErrQueueFull {
		t.Fatalf("over-bound submit returned %v, want ErrQueueFull", err)
	}
	if p.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", p.Rejected())
	}

	close(gate)
	if err := <-gateDone; err != nil {
		t.Fatal(err)
	}
	for _, d := range dones {
		if err := <-d; err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"high", "normal-1", "normal-2", "low"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("execution order %v, want %v", order, want)
	}
}

// TestPoolSurvivesPanickingCell: a panic inside a cell becomes the
// submitting batch's error; the worker (and later batches) keep running.
func TestPoolSurvivesPanickingCell(t *testing.T) {
	p := NewPool(1, 8)
	defer p.Close()

	err := p.Execute(0, [][]func(){{func() { panic("boom") }}})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panicking cell returned %v, want wrapped panic", err)
	}
	ran := false
	if err := p.Execute(0, [][]func(){{func() { ran = true }}}); err != nil || !ran {
		t.Fatalf("worker dead after panic: err=%v ran=%v", err, ran)
	}
	// The other cells of a batch with one panicking cell still run.
	count := 0
	var mu sync.Mutex
	err = p.Execute(0, [][]func(){{
		func() { mu.Lock(); count++; mu.Unlock() },
		func() { panic("mid") },
		func() { mu.Lock(); count++; mu.Unlock() },
	}})
	if err == nil || count != 2 {
		t.Fatalf("batch with panic: err=%v, %d/2 healthy cells ran", err, count)
	}
}

// TestPoolStealsAcrossWorkers: a batch submitted as one group lands on one
// worker's deque, but with several workers idle it still finishes with
// multi-worker parallelism — idle workers steal from the loaded deque.
func TestPoolStealsAcrossWorkers(t *testing.T) {
	const workers = 4
	p := NewPool(workers, 0)
	defer p.Close()

	var mu sync.Mutex
	seen := map[chan struct{}]bool{}
	barrier := make(chan struct{})
	// Each cell parks until `workers` cells are running at once — possible
	// only if stealing spreads one group over all workers.
	running := make(chan struct{}, workers)
	cells := make([]func(), workers)
	for i := range cells {
		cells[i] = func() {
			running <- struct{}{}
			mu.Lock()
			if len(running) == workers && !seen[barrier] {
				seen[barrier] = true
				close(barrier)
			}
			mu.Unlock()
			<-barrier
			<-running
		}
	}
	done := make(chan error, 1)
	go func() { done <- p.Execute(0, [][]func(){cells}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("one-group batch never spread across workers (stealing broken)")
	}
}

// TestPoolIdleAdmitsOversizedBatch: the depth bound sheds load behind
// queued work; it must not reject a batch bigger than the bound on an
// idle pool (a paper-scale sweep on a small -queue server would otherwise
// 503 forever).
func TestPoolIdleAdmitsOversizedBatch(t *testing.T) {
	p := NewPool(2, 3)
	defer p.Close()
	var n atomic.Int64
	cells := make([]func(), 10)
	for i := range cells {
		cells[i] = func() { n.Add(1) }
	}
	if err := p.Execute(0, [][]func(){cells}); err != nil {
		t.Fatalf("idle pool rejected a 10-cell batch with depth 3: %v", err)
	}
	if n.Load() != 10 {
		t.Fatalf("ran %d cells, want 10", n.Load())
	}
}

// TestPoolClosedRejects: Execute after Close fails with ErrClosed.
func TestPoolClosedRejects(t *testing.T) {
	p := NewPool(1, 4)
	p.Close()
	if err := p.Execute(0, [][]func(){{func() {}}}); err != ErrClosed {
		t.Fatalf("Execute after Close = %v, want ErrClosed", err)
	}
}

// TestPoolHigherPriorityPreemptsQueuedGroup: a high-priority single cell
// submitted after a large low-priority group overtakes the group's queued
// remainder (it cannot preempt the cell already running).
func TestPoolHigherPriorityPreemptsQueuedGroup(t *testing.T) {
	p := NewPool(1, 0)
	defer p.Close()

	release := make(chan struct{})
	first := make(chan struct{})
	var mu sync.Mutex
	var order []string
	low := make([]func(), 6)
	for i := range low {
		name := rune('a' + i)
		i := i
		low[i] = func() {
			if i == 0 {
				close(first)
				<-release
			}
			mu.Lock()
			order = append(order, string(name))
			mu.Unlock()
		}
	}
	lowDone := make(chan error, 1)
	go func() { lowDone <- p.Execute(0, [][]func(){low}) }()
	<-first // low group admitted, first cell is running

	hiDone := execAsync(t, p, 10, func() {
		mu.Lock()
		order = append(order, "HIGH")
		mu.Unlock()
	})
	waitPending(t, p, 6) // 5 queued low cells + the high cell

	close(release)
	if err := <-hiDone; err != nil {
		t.Fatal(err)
	}
	if err := <-lowDone; err != nil {
		t.Fatal(err)
	}
	if len(order) != 7 || order[1] != "HIGH" {
		t.Fatalf("high-priority cell did not preempt the queued group: %v", order)
	}
}

// TestPoolBatchStealAmortizesLockTraffic: under fine-grained load (one big
// group of tiny cells), Cilk-style half-deque stealing migrates cells in
// batches, so the lock acquisitions spent stealing stay far below the
// number of cells that changed workers. The pre-batch design took exactly
// one acquisition per stolen cell (StolenCells == Steals); the batch design
// must amortize by a wide factor.
func TestPoolBatchStealAmortizesLockTraffic(t *testing.T) {
	const workers = 4
	const cells = 4096
	p := NewPool(workers, 0)
	defer p.Close()

	var ran atomic.Int64
	group := make([]func(), cells)
	for i := range group {
		group[i] = func() { ran.Add(1) }
	}
	// One group: every cell lands on the admitting worker's deque, so all
	// other workers' work arrives exclusively by stealing.
	if err := p.Execute(0, [][]func(){group}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != cells {
		t.Fatalf("ran %d cells, want %d", ran.Load(), cells)
	}
	steals, stolen := p.Steals(), p.StolenCells()
	if stolen == 0 {
		t.Skip("no steals happened (single-threaded scheduling); nothing to amortize")
	}
	if steals > stolen/4 {
		t.Errorf("%d steal lock acquisitions for %d migrated cells: batch steal should amortize >= 4x (single-cell stealing would need %d)",
			steals, stolen, stolen)
	}
	t.Logf("steals=%d stolen=%d (%.1f cells per steal acquisition)", steals, stolen, float64(stolen)/float64(steals))
}

// TestPoolStealPreservesOrderWithinBatch: a thief runs its stolen half in
// the original submission order (recording locality depends on it).
func TestPoolStealPreservesOrderWithinBatch(t *testing.T) {
	d := &deque{}
	v := &deque{}
	for i := 0; i < 7; i++ {
		i := i
		v.buf = append(v.buf, cell{pri: 0, run: func() { _ = i }})
	}
	n := d.stealHalfFrom(v)
	if n != 4 || d.size() != 4 || v.size() != 3 {
		t.Fatalf("stole %d cells (thief %d, victim %d), want 4/4/3", n, d.size(), v.size())
	}
	// Victim keeps its front; nothing lost or duplicated.
	total := d.size() + v.size()
	if total != 7 {
		t.Fatalf("cells lost in steal: %d", total)
	}
}
