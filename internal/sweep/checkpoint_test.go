package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gals/internal/resultcache"
	"gals/internal/timing"
	"gals/internal/workload"
)

// openCkptCache installs a fresh on-disk persistent store for one test and
// returns it alongside its directory.
func openCkptCache(t *testing.T) (*resultcache.Cache, string) {
	t.Helper()
	dir := t.TempDir()
	c, err := resultcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	prev := SetPersist(c)
	t.Cleanup(func() { SetPersist(prev) })
	return c, dir
}

// cancelAfterCells returns a context that an observer on p cancels once n
// cells have finished executing: those n cells completed (and delivered)
// before the cancel, so an interrupted sweep's flushed checkpoint carries
// real progress.
func cancelAfterCells(t *testing.T, p *Pool, n int) context.Context {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	var seen atomic.Int64
	p.SetObserver(func(time.Duration) {
		if seen.Add(1) == int64(n) {
			cancel()
		}
	})
	return ctx
}

// TestCheckpointResumeBitIdenticalSummary is the crash-safety contract for
// MeasureSummary, in both aggregation modes: a sweep cancelled mid-flight
// flushes a progress checkpoint, the rerun restores it (skipping the
// completed cells), and the resumed summary is byte-identical — same JSON
// encoding, including tie-breaks and the sealed TopK ranking — to a sweep
// that was never interrupted.
func TestCheckpointResumeBitIdenticalSummary(t *testing.T) {
	specs := workload.Suite()[:3]
	cfgs := AdaptiveSpace()[:8]

	for _, tc := range []struct {
		name string
		topk int
	}{
		{"full-scores", 0},
		{"topk", 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o := Options{Window: 2_000, Workers: 2, TopK: tc.topk}

			// Cold baseline in its own store: never interrupted.
			ref, err := resultcache.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			prev := SetPersist(ref)
			want, err := MeasureSummary(specs, cfgs, o)
			SetPersist(prev)
			if err != nil {
				t.Fatal(err)
			}
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}

			c, _ := openCkptCache(t)
			p := NewPool(2, 1024)
			defer p.Close()
			oc := o
			oc.Exec = p
			oc.Ctx = cancelAfterCells(t, p, 5)
			if _, err := MeasureSummary(specs, cfgs, oc); !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted MeasureSummary = %v, want context.Canceled", err)
			}
			ckKey := o.WithDefaults().measureKey("sweepckpt", specs, cfgs)
			if !c.Has(ckKey) {
				t.Fatal("no checkpoint flushed by the cancelled sweep")
			}

			resumesBefore, cellsBefore := CheckpointsResumed(), ResumedCells()
			got, err := MeasureSummary(specs, cfgs, o)
			if err != nil {
				t.Fatalf("resumed MeasureSummary: %v", err)
			}
			if CheckpointsResumed() != resumesBefore+1 {
				t.Fatal("rerun did not restore the checkpoint")
			}
			if ResumedCells() <= cellsBefore {
				t.Fatal("resume skipped zero completed cells")
			}
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotJSON, wantJSON) {
				t.Fatalf("resumed summary not bit-identical to uninterrupted run:\n%s\n%s", gotJSON, wantJSON)
			}
			if c.Has(ckKey) {
				t.Fatal("checkpoint not garbage-collected after the summary landed")
			}
			// The persisted summary must serve the same bytes on the next call.
			var cached Summary
			if !c.Load(o.WithDefaults().measureKey("sweepsum", specs, cfgs), &cached) {
				t.Fatal("summary was not persisted after the resume")
			}
			cachedJSON, _ := json.Marshal(&cached)
			if !bytes.Equal(cachedJSON, wantJSON) {
				t.Fatal("persisted summary bytes differ from the uninterrupted run's")
			}
		})
	}
}

// TestCheckpointResumePhaseBitIdentical is the same contract for
// MeasurePhase: the per-benchmark Phase-Adaptive results after a
// kill-and-resume equal a never-interrupted run's exactly.
func TestCheckpointResumePhaseBitIdentical(t *testing.T) {
	specs := workload.Suite()[:4]
	o := Options{Window: 2_000, Workers: 2}

	ref, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prev := SetPersist(ref)
	want, err := MeasurePhase(specs, o)
	SetPersist(prev)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	c, _ := openCkptCache(t)
	p := NewPool(2, 1024)
	defer p.Close()
	oc := o
	oc.Exec = p
	oc.Ctx = cancelAfterCells(t, p, 2)
	if _, err := MeasurePhase(specs, oc); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted MeasurePhase = %v, want context.Canceled", err)
	}
	ckKey := o.WithDefaults().measureKey("phaseckpt", specs, nil)
	if !c.Has(ckKey) {
		t.Fatal("no checkpoint flushed by the cancelled phase run")
	}

	resumesBefore, cellsBefore := CheckpointsResumed(), ResumedCells()
	got, err := MeasurePhase(specs, o)
	if err != nil {
		t.Fatalf("resumed MeasurePhase: %v", err)
	}
	if CheckpointsResumed() != resumesBefore+1 || ResumedCells() <= cellsBefore {
		t.Fatal("rerun did not resume from the checkpoint")
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("resumed phase results not bit-identical to an uninterrupted run's")
	}
	if c.Has(ckKey) {
		t.Fatal("phase checkpoint not garbage-collected after the results landed")
	}
}

// TestCheckpointResumeCorruptFallsBackCold pins the degradation contract: a
// damaged or stale checkpoint is a miss, never a wrong answer — the sweep
// restarts cold and still produces the uninterrupted result.
func TestCheckpointResumeCorruptFallsBackCold(t *testing.T) {
	specs := workload.Suite()[:2]
	cfgs := AdaptiveSpace()[:6]
	o := Options{Window: 1_500, Workers: 2}

	ref, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prev := SetPersist(ref)
	want, err := MeasureSummary(specs, cfgs, o)
	SetPersist(prev)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)

	corrupt := map[string]func(t *testing.T, c *resultcache.Cache, dir, ckKey string){
		"garbage": func(t *testing.T, c *resultcache.Cache, dir, ckKey string) {
			blobs, _ := filepath.Glob(filepath.Join(dir, "sweepckpt", "*", "*.json"))
			if len(blobs) != 1 {
				t.Fatalf("found %d checkpoint blobs, want 1", len(blobs))
			}
			os.WriteFile(blobs[0], []byte("not json at all {{{"), 0o644)
		},
		"truncated": func(t *testing.T, c *resultcache.Cache, dir, ckKey string) {
			blobs, _ := filepath.Glob(filepath.Join(dir, "sweepckpt", "*", "*.json"))
			if len(blobs) != 1 {
				t.Fatalf("found %d checkpoint blobs, want 1", len(blobs))
			}
			fi, _ := os.Stat(blobs[0])
			os.Truncate(blobs[0], fi.Size()/2)
		},
		"stale-version": func(t *testing.T, c *resultcache.Cache, dir, ckKey string) {
			var ck sweepCheckpoint
			if !c.Load(ckKey, &ck) {
				t.Fatal("checkpoint unreadable before corruption")
			}
			ck.Version = ckptVersion + 1
			c.Store(ckKey, &ck)
		},
	}
	for name, damage := range corrupt {
		t.Run(name, func(t *testing.T) {
			c, dir := openCkptCache(t)
			p := NewPool(2, 1024)
			defer p.Close()
			oc := o
			oc.Exec = p
			oc.Ctx = cancelAfterCells(t, p, 4)
			if _, err := MeasureSummary(specs, cfgs, oc); !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted MeasureSummary = %v, want context.Canceled", err)
			}
			ckKey := o.WithDefaults().measureKey("sweepckpt", specs, cfgs)
			damage(t, c, dir, ckKey)

			resumesBefore := CheckpointsResumed()
			computesBefore := MeasureComputations()
			got, err := MeasureSummary(specs, cfgs, o)
			if err != nil {
				t.Fatalf("re-sweep after corruption: %v", err)
			}
			if CheckpointsResumed() != resumesBefore {
				t.Fatal("a corrupt checkpoint was resumed")
			}
			if MeasureComputations() != computesBefore+1 {
				t.Fatal("re-sweep did not recompute")
			}
			gotJSON, _ := json.Marshal(got)
			if !bytes.Equal(gotJSON, wantJSON) {
				t.Fatal("cold re-sweep after corruption diverged from the reference")
			}
		})
	}
}

// TestCheckpointResumeConcurrentSweepsShareKey runs two identical sweeps
// concurrently with checkpointing on every delivery: both race writes to
// the one shared checkpoint entry, and under -race this pins that the
// writer, the accumulator snapshots and the store's atomic rename publish
// only consistent states — both callers get the reference result.
func TestCheckpointResumeConcurrentSweepsShareKey(t *testing.T) {
	specs := workload.Suite()[:2]
	cfgs := AdaptiveSpace()[:4]
	o := Options{Window: 1_500, Workers: 2, CheckpointEvery: time.Nanosecond}

	ref, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prev := SetPersist(ref)
	want, err := MeasureSummary(specs, cfgs, Options{Window: 1_500, Workers: 2})
	SetPersist(prev)
	if err != nil {
		t.Fatal(err)
	}

	openCkptCache(t)
	var wg sync.WaitGroup
	results := make([]*Summary, 2)
	errs := make([]error, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = MeasureSummary(specs, cfgs, o)
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("concurrent sweep %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Fatalf("concurrent sweep %d diverged from the reference", i)
		}
	}
	if CheckpointsWritten() == 0 {
		t.Fatal("per-delivery checkpointing wrote nothing")
	}
}

// TestScrubCheckpointsReapsOnlyOrphans: the startup GC removes checkpoints
// whose parent summary already exists (a crash between the summary write
// and the checkpoint removal) and keeps live resume state.
func TestScrubCheckpointsReapsOnlyOrphans(t *testing.T) {
	c, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Live: the parent summary has not landed yet.
	liveParent := resultcache.Key("sweepsum", "unfinished")
	liveKey := resultcache.Key("sweepckpt", "unfinished")
	c.Store(liveKey, &sweepCheckpoint{Version: ckptVersion, SummaryKey: liveParent})

	// Orphans: their parents exist, sweep and phase flavors both.
	sumParent := resultcache.Key("sweepsum", "finished")
	c.Store(sumParent, &Summary{NumSpecs: 1, NumCfgs: 1, Best: -1, PerApp: []int{-1}, PerAppTimes: []timing.FS{0}})
	orphanSweep := resultcache.Key("sweepckpt", "finished")
	c.Store(orphanSweep, &sweepCheckpoint{Version: ckptVersion, SummaryKey: sumParent})

	phaseParent := resultcache.Key("phase", "finished")
	c.Store(phaseParent, []int{1})
	orphanPhase := resultcache.Key("phaseckpt", "finished")
	c.Store(orphanPhase, &phaseCheckpoint{Version: ckptVersion, SummaryKey: phaseParent})

	if n := ScrubCheckpoints(c); n != 2 {
		t.Fatalf("ScrubCheckpoints reaped %d, want 2", n)
	}
	if !c.Has(liveKey) {
		t.Fatal("live checkpoint (unfinished parent) was reaped")
	}
	if c.Has(orphanSweep) || c.Has(orphanPhase) {
		t.Fatal("orphaned checkpoint survived the scrub")
	}
	// A second pass finds nothing.
	if n := ScrubCheckpoints(c); n != 0 {
		t.Fatalf("second ScrubCheckpoints reaped %d, want 0", n)
	}
}
