// Package bpred implements the hybrid branch predictor of the adaptive
// GALS front end (paper Section 2.2): a gshare component, a local-history
// component, and a meta-predictor choosing between them (McFarling).
//
// Every I-cache configuration is paired with a predictor sized to operate
// at the cache's frequency (Tables 2 and 3); the geometry therefore comes
// from package timing. In the Phase-Adaptive machine all four geometries
// exist in hardware simultaneously (they are subarrays of the largest), so
// a Bank keeps each geometry trained while predictions come from the
// active one.
package bpred

import (
	"gals/internal/timing"
)

// Predictor is one fixed-geometry hybrid predictor.
type Predictor struct {
	geom timing.BPredGeom

	ghist     uint64   // global history register (low GShareBits bits used)
	gshareBHT []uint8  // 2-bit counters, 2^GShareBits entries
	metaBHT   []uint8  // 2-bit counters choosing gshare (>=2) vs local (<2)
	localPHT  []uint16 // per-branch local histories, LocalPHTEntries entries
	localBHT  []uint8  // 2-bit counters, 2^LocalBits entries
}

// New creates a predictor with the given geometry, with all counters in the
// weakly-not-taken state and empty histories.
func New(geom timing.BPredGeom) *Predictor {
	p := &Predictor{
		geom:      geom,
		gshareBHT: make([]uint8, geom.GShareEntries),
		metaBHT:   make([]uint8, geom.MetaEntries),
		localPHT:  make([]uint16, geom.LocalPHTEntries),
		localBHT:  make([]uint8, geom.LocalBHTEntries),
	}
	for i := range p.gshareBHT {
		p.gshareBHT[i] = 1 // weakly not taken
	}
	for i := range p.localBHT {
		p.localBHT[i] = 1
	}
	for i := range p.metaBHT {
		p.metaBHT[i] = 2 // weakly prefer gshare
	}
	return p
}

// Geom returns the predictor's geometry.
func (p *Predictor) Geom() timing.BPredGeom { return p.geom }

// pcHash spreads instruction addresses across table indices. Hardware uses
// plain low-order bits, which works because real branch addresses are
// irregular; synthetic traces lay code out at regular strides, so an
// un-hashed index would alias far more than reality. The multiplicative
// hash restores a realistic collision profile.
func pcHash(pc uint64) uint64 {
	return (pc >> 2) * 0x9e3779b97f4a7c15 >> 16
}

func (p *Predictor) gshareIndex(pc uint64) int {
	mask := uint64(p.geom.GShareEntries - 1)
	return int((pcHash(pc) ^ p.ghist) & mask)
}

// metaIndex is PC-indexed (not history-indexed): the chooser learns which
// component suits each branch, independent of the history context.
func (p *Predictor) metaIndex(pc uint64) int {
	mask := uint64(p.geom.MetaEntries - 1)
	return int(pcHash(pc) & mask)
}

func (p *Predictor) localPHTIndex(pc uint64) int {
	return int(pcHash(pc) & uint64(p.geom.LocalPHTEntries-1))
}

func (p *Predictor) localBHTIndex(pc uint64) int {
	hist := p.localPHT[p.localPHTIndex(pc)]
	return int(hist) & (p.geom.LocalBHTEntries - 1)
}

// Predict returns the predicted direction for a conditional branch at pc.
func (p *Predictor) Predict(pc uint64) bool {
	g := p.gshareBHT[p.gshareIndex(pc)] >= 2
	l := p.localBHT[p.localBHTIndex(pc)] >= 2
	if p.metaBHT[p.metaIndex(pc)] >= 2 {
		return g
	}
	return l
}

func bump(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Update trains the predictor with the actual outcome of the branch at pc.
// It must be called exactly once per predicted branch, after Predict.
func (p *Predictor) Update(pc uint64, taken bool) {
	gi, mi := p.gshareIndex(pc), p.metaIndex(pc)
	li := p.localBHTIndex(pc)

	g := p.gshareBHT[gi] >= 2
	l := p.localBHT[li] >= 2

	// Meta-predictor trains toward whichever component was right when they
	// disagree.
	if g != l {
		p.metaBHT[mi] = bump(p.metaBHT[mi], g == taken)
	}
	p.gshareBHT[gi] = bump(p.gshareBHT[gi], taken)
	p.localBHT[li] = bump(p.localBHT[li], taken)

	// Histories.
	bit := uint64(0)
	u16 := uint16(0)
	if taken {
		bit, u16 = 1, 1
	}
	p.ghist = ((p.ghist << 1) | bit) & ((1 << uint(p.geom.GShareBits)) - 1)
	phi := p.localPHTIndex(pc)
	p.localPHT[phi] = ((p.localPHT[phi] << 1) | u16) & ((1 << uint(p.geom.LocalBits)) - 1)
}

// Bank is the adaptive front end's set of jointly-resized predictors: one
// per I-cache configuration, all trained on every branch, with predictions
// served by the geometry matching the active cache configuration.
type Bank struct {
	preds  [timing.NumICacheConfigs]*Predictor
	active timing.ICacheConfig
}

// NewBank builds a predictor for each adaptive front-end configuration.
func NewBank(active timing.ICacheConfig) *Bank {
	b := &Bank{active: active}
	for _, cfg := range timing.ICacheConfigs() {
		b.preds[cfg] = New(cfg.Spec().BPred)
	}
	return b
}

// SetActive switches which geometry serves predictions.
func (b *Bank) SetActive(cfg timing.ICacheConfig) { b.active = cfg }

// Active returns the geometry currently serving predictions.
func (b *Bank) Active() timing.ICacheConfig { return b.active }

// Predict returns the active geometry's prediction for pc.
func (b *Bank) Predict(pc uint64) bool { return b.preds[b.active].Predict(pc) }

// Update trains every geometry with the branch outcome, keeping inactive
// subarrays warm across reconfigurations.
func (b *Bank) Update(pc uint64, taken bool) {
	for _, p := range b.preds {
		p.Update(pc, taken)
	}
}
