package bpred

import (
	"math/rand"
	"testing"

	"gals/internal/timing"
)

func geom() timing.BPredGeom { return timing.ICache16K1W.Spec().BPred }

// accuracy trains the predictor on a generated outcome stream and returns
// the fraction predicted correctly over the second half (post warmup).
func accuracy(t *testing.T, outcomes func(i int) (pc uint64, taken bool), n int) float64 {
	t.Helper()
	p := New(geom())
	correct, counted := 0, 0
	for i := 0; i < n; i++ {
		pc, taken := outcomes(i)
		pred := p.Predict(pc)
		if i >= n/2 {
			counted++
			if pred == taken {
				correct++
			}
		}
		p.Update(pc, taken)
	}
	return float64(correct) / float64(counted)
}

func TestLearnsAlwaysTaken(t *testing.T) {
	acc := accuracy(t, func(i int) (uint64, bool) { return 0x400100, true }, 1000)
	if acc < 0.999 {
		t.Errorf("always-taken accuracy %.3f, want ~1", acc)
	}
}

func TestLearnsPeriodicPattern(t *testing.T) {
	// TTTTTTTN: the local component learns the period.
	acc := accuracy(t, func(i int) (uint64, bool) { return 0x400200, i%8 < 7 }, 4000)
	if acc < 0.95 {
		t.Errorf("periodic-pattern accuracy %.3f, want > 0.95", acc)
	}
}

func TestLearnsInterleavedBranches(t *testing.T) {
	// 50 branches with different biases, round-robin.
	acc := accuracy(t, func(i int) (uint64, bool) {
		b := i % 50
		pc := uint64(0x400000 + b*36)
		period := 4 + b%5
		duty := period - 1
		if b%2 == 0 {
			duty = 1
		}
		return pc, (i/50)%period < duty
	}, 60_000)
	if acc < 0.9 {
		t.Errorf("interleaved accuracy %.3f, want > 0.9", acc)
	}
}

func TestRandomOutcomesNearChance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	acc := accuracy(t, func(i int) (uint64, bool) { return 0x400300, rng.Intn(2) == 0 }, 20_000)
	if acc < 0.4 || acc > 0.6 {
		t.Errorf("random-outcome accuracy %.3f, want ~0.5", acc)
	}
}

func TestGlobalCorrelation(t *testing.T) {
	// Branch B's outcome equals branch A's previous outcome: only the
	// global (gshare) component can capture this.
	rng := rand.New(rand.NewSource(9))
	last := false
	acc := accuracy(t, func(i int) (uint64, bool) {
		if i%2 == 0 {
			last = rng.Intn(2) == 0
			return 0x400400, last
		}
		return 0x400500, last
	}, 40_000)
	// Only the correlated branch (half the stream) is predictable: overall
	// accuracy should be well above chance (~0.75 ideal).
	if acc < 0.65 {
		t.Errorf("correlated accuracy %.3f, want > 0.65", acc)
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(geom()), New(geom())
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		pc := uint64(0x400000 + rng.Intn(200)*4)
		taken := rng.Intn(3) > 0
		if a.Predict(pc) != b.Predict(pc) {
			t.Fatal("identical predictors disagree")
		}
		a.Update(pc, taken)
		b.Update(pc, taken)
	}
}

func TestBiggerTablesHelpOnManyBranches(t *testing.T) {
	// Outcomes correlate with recent global history (learnable only by the
	// gshare side), across thousands of live branches: the 64KB-class
	// predictor (hg=16, 65536 entries) suffers far less aliasing than the
	// 4KB-class one (hg=12, 4096 entries).
	run := func(g timing.BPredGeom) float64 {
		p := New(g)
		correct, counted := 0, 0
		const branches = 2500
		cnt := make([]int, branches)
		n := 250_000
		for i := 0; i < n; i++ {
			b := i % branches // round-robin visit order, as in loopy code
			pc := uint64(0x400000 + b*28)
			// Per-branch periodic pattern (period 4..8, branch-dependent
			// duty): thousands of live patterns exceed the small
			// predictor's local tables but fit the large one's.
			period := 4 + b%5
			duty := period - 1
			if b%3 == 0 {
				duty = 1
			}
			taken := cnt[b]%period < duty
			cnt[b]++
			if i > n/2 {
				counted++
				if p.Predict(pc) == taken {
					correct++
				}
			}
			p.Update(pc, taken)
		}
		return float64(correct) / float64(counted)
	}
	small := run(timing.SyncICacheSpecs()[0].BPred) // 4KB-paired predictor
	i64, _ := timing.SyncICacheIndexByName("64k1W")
	big := run(timing.SyncICacheSpecs()[i64].BPred)
	if big <= small+0.02 {
		t.Errorf("big predictor (%.3f) not clearly better than small (%.3f)", big, small)
	}
}

func TestBankTrainsAllGeometries(t *testing.T) {
	b := NewBank(timing.ICache16K1W)
	if b.Active() != timing.ICache16K1W {
		t.Fatalf("active = %v, want 16k1W", b.Active())
	}
	// Train an always-taken branch while the small geometry is active.
	for i := 0; i < 200; i++ {
		b.Predict(0x400700)
		b.Update(0x400700, true)
	}
	// Switch: the larger geometry was trained in the shadow and predicts
	// immediately.
	b.SetActive(timing.ICache64K4W)
	if !b.Predict(0x400700) {
		t.Error("inactive geometry was not kept warm")
	}
}
