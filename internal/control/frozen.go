package control

import "gals/internal/queue"

// frozenPolicy never reconfigures anything: the Phase-Adaptive machine kept
// at its base configuration for the whole run. Against "paper" it isolates
// what adaptation itself buys, net of the multiple-clock-domain
// synchronization overhead both share — the MCD-overhead-only baseline the
// paper's Table 9 discussion implies. It also skips the ILP tracker, so a
// frozen run carries no decision-hardware cost at all.
type frozenPolicy struct{}

func (frozenPolicy) Info() Info {
	return Info{
		Name:        "frozen",
		Description: "never reconfigures: the base MCD machine with controllers off, isolating multiple-clock-domain overhead from adaptation benefit",
	}
}

func (frozenPolicy) NewController(map[string]float64, Init) Controller { return frozenCtl{} }

type frozenCtl struct{}

func (frozenCtl) CacheInterval() int64                             { return 0 }
func (frozenCtl) NeedsIQ() bool                                    { return false }
func (frozenCtl) IQWindows() [4]int                                { return queue.DefaultWindowSizes() }
func (frozenCtl) DecideCaches(_ CacheObs, b []Reconfig) []Reconfig { return b }
func (frozenCtl) DecideIQs(_ IQObs, b []Reconfig) []Reconfig       { return b }
