// The "feedback" policy: a PI-style closed-loop controller in the spirit of
// the GALS feedback-control literature (PAPERS.md: *Control Loop Feedback
// Mechanism for GALS CMP*). Where the paper's controllers re-derive an
// absolute best configuration from each interval's accounting statistics,
// the feedback controller regulates an error signal: the deviation of the
// observed cache pressure (fraction of accesses not served by the fast A
// partition, misses weighted by their relative cost) and of the observed
// issue-queue ILP from a setpoint. Each structure carries a continuous
// control level; every interval the level moves by kp*error + ki*integral,
// with the integral clamped (anti-windup) and frozen while the level is
// saturated, and the rounded level selects the configuration.
//
// The controller also closes the loop on its own cadence: intervals whose
// errors all sit inside the deadband double the accounting interval (up to
// 8x the base), and any excursion snaps it back — quiet phases are measured
// lazily, transitions quickly. The machine re-reads CacheInterval after
// every decision, which is what makes this legal.
package control

import (
	"fmt"
	"math"

	"gals/internal/queue"
	"gals/internal/timing"
)

// Feedback parameter defaults. Errors are relative to the setpoint, so one
// set of gains covers both the cache and the queue loops.
const (
	feedbackKP            = 0.5
	feedbackKI            = 0.1
	feedbackClamp         = 2.0
	feedbackCacheSetpoint = 0.05
	feedbackILPSetpoint   = 6.0
	feedbackDeadband      = 0.25
	feedbackMaxStretch    = 8
)

// missWeight is the cache-pressure weight of a true miss relative to a
// B-partition hit: a miss costs a next-level round trip, several times a B
// probe. Fixed, not a parameter — it shapes the signal, not the loop.
const missWeight = 4

// feedbackPolicy registers from paper.go's init so the registry lists the
// built-ins in presentation order (paper first).
type feedbackPolicy struct{}

func (feedbackPolicy) Info() Info {
	return Info{
		Name:        "feedback",
		Description: "PI closed-loop controller: drives structure sizes and its own decision cadence from the error between observed cache pressure / issue-queue ILP and a setpoint",
		Params: []ParamInfo{
			{Name: "interval", Default: PaperCacheInterval,
				Description: "base accounting-cache decision interval in committed instructions (0 freezes the cache loop); quiet phases stretch it up to 8x"},
			{Name: "kp", Default: feedbackKP,
				Description: "proportional gain on the relative error (<= 100)"},
			{Name: "ki", Default: feedbackKI,
				Description: "integral gain on the accumulated relative error (<= 100)"},
			{Name: "clamp", Default: feedbackClamp,
				Description: "anti-windup clamp: the error integral is held inside +/- this many relative-error units (<= 100)"},
			{Name: "cache_setpoint", Default: feedbackCacheSetpoint,
				Description: "marginal cache-pressure setpoint: the per-access pressure one upsizing step must absorb to be worth its frequency cost (0 < v <= 10)"},
			{Name: "ilp_setpoint", Default: feedbackILPSetpoint,
				Description: "target issue-queue ILP (instructions per dependence-chain step) the queue loops regulate toward (0 < v <= 64)"},
			{Name: "deadband", Default: feedbackDeadband,
				Description: "relative-error band treated as on-target; intervals with every loop inside it stretch the decision cadence (<= 10)"},
		},
	}
}

// ValidateParams applies the loop-stability bounds: gains, clamp and
// deadband are bounded above, and setpoints must be strictly positive
// (errors are measured relative to them).
func (feedbackPolicy) ValidateParams(vals map[string]float64) error {
	bounds := map[string]float64{
		"kp": 100, "ki": 100, "clamp": 100, "deadband": 10,
		"cache_setpoint": 10, "ilp_setpoint": 64, "interval": 1e9,
	}
	for name, hi := range bounds {
		if v, ok := vals[name]; ok && v > hi {
			return fmt.Errorf("parameter %s=%v above %v", name, v, hi)
		}
	}
	for _, name := range []string{"cache_setpoint", "ilp_setpoint"} {
		if v, ok := vals[name]; ok && v <= 0 {
			return fmt.Errorf("parameter %s=%v must be positive (errors are relative to it)", name, v)
		}
	}
	return nil
}

func (feedbackPolicy) NewController(params map[string]float64, init Init) Controller {
	c := &feedbackCtl{
		base:     int64(Param(params, "interval", PaperCacheInterval)),
		kp:       Param(params, "kp", feedbackKP),
		ki:       Param(params, "ki", feedbackKI),
		clamp:    Param(params, "clamp", feedbackClamp),
		cacheSP:  Param(params, "cache_setpoint", feedbackCacheSetpoint),
		ilpSP:    Param(params, "ilp_setpoint", feedbackILPSetpoint),
		deadband: Param(params, "deadband", feedbackDeadband),
	}
	c.interval = c.base
	c.fe = loop{level: float64(init.ICache)}
	c.ls = loop{level: float64(init.DCache)}
	c.intQ = loop{level: float64(timing.IQIndex(init.IntIQ))}
	c.fpQ = loop{level: float64(timing.IQIndex(init.FPIQ))}
	return c
}

// loop is one structure's PI state: a continuous control level over the
// four configuration indices and the clamped error integral.
type loop struct {
	level float64 // in [0, 3]; round(level) is the wanted config index
	integ float64
}

// step advances the loop by one interval's relative error and returns the
// wanted configuration index. Anti-windup is two-fold: the integral is
// clamped to +/- clamp, and it does not accumulate while the level is
// pinned at a bound with the error still pushing outward.
func (l *loop) step(err, kp, ki, clamp float64) int {
	saturated := (l.level <= 0 && err < 0) || (l.level >= 3 && err > 0)
	if !saturated {
		l.integ += err
		if l.integ > clamp {
			l.integ = clamp
		} else if l.integ < -clamp {
			l.integ = -clamp
		}
	}
	l.level += kp*err + ki*l.integ
	if l.level < 0 {
		l.level = 0
	} else if l.level > 3 {
		l.level = 3
	}
	return int(math.Floor(l.level + 0.5))
}

// feedbackCtl is the per-run controller state.
type feedbackCtl struct {
	base     int64
	interval int64
	kp, ki   float64
	clamp    float64
	cacheSP  float64
	ilpSP    float64
	deadband float64

	fe, ls, intQ, fpQ loop
}

func (c *feedbackCtl) CacheInterval() int64 { return c.interval }
func (c *feedbackCtl) NeedsIQ() bool        { return true }
func (c *feedbackCtl) IQWindows() [4]int    { return queue.DefaultWindowSizes() }

// pressure computes the cache-pressure signal from reconstructed interval
// counts: the fraction of accesses not served by the A partition, misses
// weighted by their relative cost.
func pressure(bHits, misses, accesses uint64) float64 {
	if accesses == 0 {
		return 0
	}
	return (float64(bHits) + missWeight*float64(misses)) / float64(accesses)
}

// relErr is the loop's error signal: the deviation of the observation from
// the setpoint, in units of the setpoint.
func relErr(observed, setpoint float64) float64 {
	return (observed - setpoint) / setpoint
}

// marginalErr computes a structure's error signal from its pressure curve
// p(config index): the pressure the next size up would absorb above the
// setpoint (up-force) plus the shortfall of the pressure one size down
// would re-admit below it (down-force). The dead zone — growing absorbs
// less than the setpoint AND shrinking would re-admit more — is exactly
// "this size is right", and a capacity-bound phase whose misses no size
// absorbs generates no up-force at all (where a naive absolute-pressure
// regulator would pin the structure at its largest, slowest size forever).
func marginalErr(p func(int) float64, cur int, sp float64) float64 {
	var e float64
	if cur < 3 {
		if up := (p(cur) - p(cur+1)) / sp; up > 1 {
			e += up - 1
		}
	}
	if cur > 0 {
		if dn := (p(cur-1) - p(cur)) / sp; dn < 1 {
			e += dn - 1
		}
	}
	return e
}

// DecideCaches runs both cache-domain PI loops over the interval just ended
// and retunes the decision cadence from the resulting errors.
func (c *feedbackCtl) DecideCaches(obs CacheObs, buf []Reconfig) []Reconfig {
	quiet := true
	evaluated := false

	if !obs.FEPending && obs.ICache.Accesses > 0 {
		evaluated = true
		p := func(idx int) float64 {
			_, b, miss := obs.ICache.Reconstruct(idx+1, true)
			return pressure(b, miss, obs.ICache.Accesses)
		}
		e := marginalErr(p, int(obs.ICfg), c.cacheSP)
		if math.Abs(e) > c.deadband {
			quiet = false
		}
		if want := c.fe.step(e, c.kp, c.ki, c.clamp); want != int(obs.ICfg) {
			buf = append(buf, Reconfig{Kind: ICache, Target: want})
		}
	}

	if !obs.LSPending && obs.DCacheL1.Accesses > 0 {
		evaluated = true
		acc := obs.DCacheL1.Accesses
		_, _, curMiss := obs.DCacheL1.Reconstruct(obs.DCfg.Spec().Assoc, true)
		p := func(idx int) float64 {
			ways := timing.DCacheConfig(idx).Spec().Assoc
			_, b1, m1 := obs.DCacheL1.Reconstruct(ways, true)
			_, _, m2 := obs.L2.Reconstruct(ways, true)
			// The L2 counters were collected under the current L1 miss
			// stream; scale them to the candidate's, as the paper does, and
			// fold the full-memory round trips into the same access base.
			if curMiss > 0 {
				m2 = uint64(float64(m2) * float64(m1) / float64(curMiss))
			}
			return pressure(b1, m1, acc) + missWeight*float64(m2)/float64(acc)
		}
		e := marginalErr(p, int(obs.DCfg), c.cacheSP)
		if math.Abs(e) > c.deadband {
			quiet = false
		}
		if want := c.ls.step(e, c.kp, c.ki, c.clamp); want != int(obs.DCfg) {
			buf = append(buf, Reconfig{Kind: DCache, Target: want})
		}
	}

	// Closed-loop cadence: on-target intervals decide half as often (up to
	// 8x the base interval); any excursion snaps back to the base. An
	// interval where neither loop could evaluate (reconfigs in flight, no
	// accesses) is evidence of nothing — the cadence holds, so the
	// follow-up measurement after a PLL lock still arrives at the base
	// interval rather than a stretched one.
	switch {
	case !evaluated:
	case quiet:
		if c.interval < c.base*feedbackMaxStretch {
			c.interval *= 2
		}
	default:
		c.interval = c.base
	}
	return buf
}

// DecideIQs runs the two issue-queue PI loops on the completed ILP-tracking
// interval. The observed ILP is the type's instruction count per
// dependence-chain step in the largest tracked window — the same
// measurement the paper's Choose scales by frequency, here regulated
// against a setpoint instead of maximized.
func (c *feedbackCtl) DecideIQs(obs IQObs, buf []Reconfig) []Reconfig {
	s := obs.Samples[3]
	if s.M == 0 {
		return buf
	}
	if !obs.IntPending {
		e := relErr(float64(s.IntCount)/float64(s.M), c.ilpSP)
		if want := c.intQ.step(e, c.kp, c.ki, c.clamp); want != timing.IQIndex(obs.IntIQ) {
			buf = append(buf, Reconfig{Kind: IntIQ, Target: int(timing.IQSizes()[want])})
		}
	}
	if !obs.FPPending {
		e := relErr(float64(s.FPCount)/float64(s.M), c.ilpSP)
		if want := c.fpQ.step(e, c.kp, c.ki, c.clamp); want != timing.IQIndex(obs.FPIQ) {
			buf = append(buf, Reconfig{Kind: FPIQ, Target: int(timing.IQSizes()[want])})
		}
	}
	return buf
}
