// The paper's controllers (Sections 3.1-3.2), extracted verbatim from the
// machine. Both the "paper" and "interval" policies run this decision
// logic; "interval" merely exposes the two hard-wired constants — the
// accounting-cache decision interval and the issue-queue hysteresis — as
// parameters. With the defaults they are one and the same controller, so
// the parity guarantee pinned for "paper" extends to "interval" at its
// defaults.
package control

import (
	"gals/internal/cache"
	"gals/internal/queue"
	"gals/internal/timing"
)

// PaperCacheInterval is the Accounting Cache decision interval of paper
// Section 3.1: every 15K committed instructions.
const PaperCacheInterval = 15_000

// paperHysteresis is the default issue-queue anti-thrash hysteresis: two
// agreeing intervals before a resize.
const paperHysteresis = 2

func init() {
	Register(paperPolicy{})
	Register(intervalPolicy{})
	Register(frozenPolicy{})
	Register(feedbackPolicy{})
}

// paperPolicy is the exact pre-extraction controller: Section 3.1 accounting
// caches on a fixed 15K-instruction interval, Section 3.2 ILP-tracked issue
// queues with the machine-configured hysteresis.
type paperPolicy struct{}

func (paperPolicy) Info() Info {
	return Info{
		Name:        "paper",
		Description: "the paper's exact controllers: Section 3.1 accounting-cache interval decisions and Section 3.2 ILP-driven issue-queue resizing",
	}
}

func (paperPolicy) NewController(_ map[string]float64, init Init) Controller {
	return newIntervalCtl(PaperCacheInterval, initHysteresis(init), init)
}

// intervalPolicy is the paper controller with its two constants sweepable.
type intervalPolicy struct{}

func (intervalPolicy) Info() Info {
	return Info{
		Name:        "interval",
		Description: "the paper's controllers with tunable decision cadence: the accounting-cache interval length and the issue-queue hysteresis are parameters",
		Params: []ParamInfo{
			{Name: "interval", Default: PaperCacheInterval,
				Description: "accounting-cache decision interval in committed instructions (0 freezes the cache controllers)"},
			{Name: "hysteresis", Default: paperHysteresis,
				Description: "consecutive agreeing ILP intervals required before an issue-queue resize (0 freezes the queue controllers; omitted inherits Config.IQHysteresis, like the paper policy)"},
		},
	}
}

func (intervalPolicy) NewController(params map[string]float64, init Init) Controller {
	interval := int64(Param(params, "interval", PaperCacheInterval))
	// An omitted hysteresis inherits Config.IQHysteresis exactly as the
	// paper policy does — the defaults equivalence "interval == paper" must
	// hold for every machine configuration, not just IQHysteresis 0.
	h := initHysteresis(init)
	if v, explicit := params["hysteresis"]; explicit {
		h = int(v)
	}
	if h <= 0 {
		// hysteresis=0 freezes the queues: the cleanest "cache-only"
		// expression. (The machine-level DisableIQAdapt flag remains the
		// ablation switch for the paper policy itself.)
		return &intervalCtl{interval: interval}
	}
	return newIntervalCtl(interval, h, init)
}

// initHysteresis resolves core.Config.IQHysteresis exactly as the
// pre-extraction machine did: values <= 0 mean the paper default of 2.
func initHysteresis(init Init) int {
	if init.IQHysteresis <= 0 {
		return paperHysteresis
	}
	return init.IQHysteresis
}

// intervalCtl is the shared controller state: the issue-queue hysteresis
// trackers (nil when queue adaptation is off) and the cache decision
// cadence.
type intervalCtl struct {
	interval int64
	intCtl   *queue.Controller
	fpCtl    *queue.Controller
}

func newIntervalCtl(interval int64, hysteresis int, init Init) *intervalCtl {
	return &intervalCtl{
		interval: interval,
		intCtl:   queue.NewController(false, init.IntIQ, hysteresis),
		fpCtl:    queue.NewController(true, init.FPIQ, hysteresis),
	}
}

func (c *intervalCtl) CacheInterval() int64 { return c.interval }
func (c *intervalCtl) NeedsIQ() bool        { return c.intCtl != nil }
func (c *intervalCtl) IQWindows() [4]int    { return queue.DefaultWindowSizes() }

// DecideCaches runs the Section 3.1 interval decision for the front end and
// the load/store pair. The arithmetic is the pre-extraction machine's,
// moved: candidate costs reconstructed from one interval's MRU statistics,
// no exploration.
func (c *intervalCtl) DecideCaches(obs CacheObs, buf []Reconfig) []Reconfig {
	buf = c.decideICache(obs, buf)
	buf = c.decideDCache(obs, buf)
	return buf
}

// decideICache picks the front-end configuration minimizing modeled access
// cost over the interval just ended.
func (c *intervalCtl) decideICache(obs CacheObs, buf []Reconfig) []Reconfig {
	if obs.FEPending {
		return buf // a change is already in flight
	}
	stats := obs.ICache
	if stats.Accesses == 0 {
		return buf
	}
	// Miss service estimate: L2 A access plus a round trip of domain
	// crossings at current frequencies.
	missPenalty := timing.FS(obs.DCfg.Spec().L2ALat)*obs.LSPeriod + obs.FEPeriod + obs.LSPeriod

	best, bestCost := obs.ICfg, timing.FS(1<<62)
	for _, cand := range timing.ICacheConfigs() {
		spec := cand.Spec()
		aH, bH, miss := stats.Reconstruct(int(cand)+1, true)
		cost := cache.Cost(aH, bH, miss, cand != timing.ICache64K4W, cache.CostParams{
			ALat: spec.ALat, BLat: spec.BLat,
			Period:      cand.AdaptPeriod(),
			MissPenalty: missPenalty,
		})
		if cost < bestCost {
			best, bestCost = cand, cost
		}
	}
	if best == obs.ICfg {
		return buf
	}
	return append(buf, Reconfig{Kind: ICache, Target: int(best)})
}

// decideDCache picks the joint L1-D/L2 configuration minimizing the
// combined modeled access cost.
func (c *intervalCtl) decideDCache(obs CacheObs, buf []Reconfig) []Reconfig {
	if obs.LSPending {
		return buf
	}
	l1 := obs.DCacheL1
	l2 := obs.L2
	if l1.Accesses == 0 {
		return buf
	}
	_, _, curMiss := l1.Reconstruct(obs.DCfg.Spec().Assoc, true)

	memPenalty := timing.MemLatency(obs.L2LineBytes) + 2*obs.LSPeriod

	best, bestCost := obs.DCfg, timing.FS(1<<62)
	for _, cand := range timing.DCacheConfigs() {
		spec := cand.Spec()
		ways := cand.Spec().Assoc
		period := cand.AdaptPeriod()
		hasB := cand != timing.DCache256K8W

		a1, b1, miss1 := l1.Reconstruct(ways, hasB)
		cost := cache.Cost(a1, b1, miss1, hasB, cache.CostParams{
			ALat: spec.L1ALat, BLat: spec.L1BLat, Period: period,
		})

		// The L2 counters were collected under the current configuration's
		// L1 miss stream; scale them to the candidate's L1 miss rate.
		a2, b2, miss2 := l2.Reconstruct(ways, hasB)
		if curMiss > 0 {
			f := float64(miss1) / float64(curMiss)
			a2 = uint64(float64(a2) * f)
			b2 = uint64(float64(b2) * f)
			miss2 = uint64(float64(miss2) * f)
		}
		cost += cache.Cost(a2, b2, miss2, hasB, cache.CostParams{
			ALat: spec.L2ALat, BLat: spec.L2BLat, Period: period,
			MissPenalty: memPenalty,
		})
		if cost < bestCost {
			best, bestCost = cand, cost
		}
	}
	if best == obs.DCfg {
		return buf
	}
	return append(buf, Reconfig{Kind: DCache, Target: int(best)})
}

// DecideIQs feeds a completed ILP-tracking interval to both issue-queue
// hysteresis controllers (Section 3.2). A queue with a resize in flight is
// skipped entirely — its hysteresis state does not observe the interval,
// exactly as in the pre-extraction machine.
func (c *intervalCtl) DecideIQs(obs IQObs, buf []Reconfig) []Reconfig {
	if c.intCtl == nil {
		return buf
	}
	if !obs.IntPending {
		if size, resize := c.intCtl.Decide(obs.Samples); resize {
			buf = append(buf, Reconfig{Kind: IntIQ, Target: int(size)})
		}
	}
	if !obs.FPPending {
		if size, resize := c.fpCtl.Decide(obs.Samples); resize {
			buf = append(buf, Reconfig{Kind: FPIQ, Target: int(size)})
		}
	}
	return buf
}
