package control

import (
	"reflect"
	"strings"
	"testing"

	"gals/internal/queue"
	"gals/internal/timing"
)

func TestRegistryBuiltins(t *testing.T) {
	want := []string{"paper", "interval", "frozen", "feedback"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		p, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missed", name)
		}
		if p.Info().Name != name {
			t.Errorf("policy %q reports name %q", name, p.Info().Name)
		}
	}
	if p, ok := Lookup(""); !ok || p.Info().Name != DefaultPolicy {
		t.Error("empty name did not resolve to the default policy")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown policy resolved")
	}
	infos := Infos()
	if len(infos) != len(want) {
		t.Fatalf("Infos() has %d entries, want %d", len(infos), len(want))
	}
	for _, in := range infos {
		if in.Description == "" {
			t.Errorf("policy %q has no description", in.Name)
		}
	}
}

func TestParseAndFormatParams(t *testing.T) {
	got, err := ParseParams(" interval=7500, hysteresis = 1 ")
	if err != nil {
		t.Fatal(err)
	}
	if want := map[string]float64{"interval": 7500, "hysteresis": 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseParams = %v, want %v", got, want)
	}
	if s := FormatParams(got); s != "hysteresis=1,interval=7500" {
		t.Errorf("FormatParams = %q", s)
	}
	if m, err := ParseParams(""); err != nil || len(m) != 0 {
		t.Errorf("empty params: %v, %v", m, err)
	}
	for _, bad := range []string{"=1", "x", "k=v", "a=1,a=2"} {
		if _, err := ParseParams(bad); err == nil {
			t.Errorf("ParseParams(%q) accepted", bad)
		}
	}
}

func TestValidateResolvesDefaults(t *testing.T) {
	full, err := ResolveParams("interval", "hysteresis=3")
	if err != nil {
		t.Fatal(err)
	}
	if full["interval"] != PaperCacheInterval || full["hysteresis"] != 3 {
		t.Fatalf("defaults not filled: %v", full)
	}
	if err := Validate("interval", "interval=-5"); err == nil {
		t.Error("negative interval validated")
	}
	if err := Validate("paper", "interval=1"); err == nil {
		t.Error("paper accepted a parameter it does not declare")
	}
	if err := Validate("frozen", ""); err != nil {
		t.Errorf("frozen rejected: %v", err)
	}
	if err := Validate("", ""); err != nil {
		t.Errorf("default policy rejected: %v", err)
	}
	if err := Validate("nope", ""); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("unknown policy error = %v", err)
	}
}

func TestFrozenControllerDecidesNothing(t *testing.T) {
	c, err := New("frozen", "", Init{IntIQ: timing.IQ16, FPIQ: timing.IQ16})
	if err != nil {
		t.Fatal(err)
	}
	if c.CacheInterval() != 0 || c.NeedsIQ() {
		t.Error("frozen controller wants decision intervals")
	}
	var buf [4]Reconfig
	if out := c.DecideCaches(CacheObs{}, buf[:0]); len(out) != 0 {
		t.Errorf("frozen decided caches: %v", out)
	}
	if out := c.DecideIQs(IQObs{}, buf[:0]); len(out) != 0 {
		t.Errorf("frozen decided queues: %v", out)
	}
}

func TestIntervalControllerCadence(t *testing.T) {
	c, err := New("interval", "interval=7500", Init{IntIQ: timing.IQ16, FPIQ: timing.IQ16})
	if err != nil {
		t.Fatal(err)
	}
	if c.CacheInterval() != 7500 {
		t.Errorf("interval = %d, want 7500", c.CacheInterval())
	}
	if !c.NeedsIQ() {
		t.Error("default hysteresis should keep queue adaptation on")
	}
	// hysteresis=0 freezes the queues but keeps the cache cadence.
	c0, err := New("interval", "interval=7500,hysteresis=0", Init{})
	if err != nil {
		t.Fatal(err)
	}
	if c0.NeedsIQ() {
		t.Error("hysteresis=0 should disable queue adaptation")
	}
	if c0.CacheInterval() != 7500 {
		t.Error("hysteresis=0 must not change the cache cadence")
	}
	if out := c0.DecideIQs(IQObs{}, nil); len(out) != 0 {
		t.Errorf("frozen queues decided: %v", out)
	}
}

// TestPaperIQDecisionSkipsPendingQueue pins the pre-refactor subtlety that a
// queue with a resize in flight does not feed its hysteresis tracker.
func TestPaperIQDecisionSkipsPendingQueue(t *testing.T) {
	// A samples vector whose Choose outcome is a 64-entry integer queue:
	// high ILP at every window size.
	var samples [4]queue.Sample
	for i, n := range []int{16, 32, 48, 64} {
		samples[i] = queue.Sample{N: n, M: 2, IntCount: n, FPCount: 0}
	}
	mk := func() Controller {
		c, err := New("paper", "", Init{IntIQ: timing.IQ16, FPIQ: timing.IQ16, IQHysteresis: 1})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	free := mk()
	got := free.DecideIQs(IQObs{Samples: samples}, nil)
	if len(got) != 1 || got[0].Kind != IntIQ || got[0].Target != 64 {
		t.Fatalf("unblocked decision = %v, want one int-iq resize to 64", got)
	}

	blocked := mk()
	if out := blocked.DecideIQs(IQObs{Samples: samples, IntPending: true}, nil); len(out) != 0 {
		t.Fatalf("pending queue still decided: %v", out)
	}
	// The blocked interval must not have advanced the hysteresis streak:
	// the next unblocked interval decides exactly as the first would have.
	got = blocked.DecideIQs(IQObs{Samples: samples}, nil)
	if len(got) != 1 || got[0].Target != 64 {
		t.Fatalf("post-pending decision = %v, want one int-iq resize to 64", got)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{ICache: "icache", DCache: "dcache", IntIQ: "int-iq", FPIQ: "fp-iq", Kind(9): "?"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
