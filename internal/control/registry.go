package control

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// DefaultPolicy is the policy an empty name resolves to: the paper's exact
// controllers.
const DefaultPolicy = "paper"

// ParamInfo describes one policy parameter for registry listings.
type ParamInfo struct {
	// Name is the parameter key as written in a params string.
	Name string `json:"name"`
	// Default is the declared default: the value an omitted parameter
	// resolves to (possibly indirectly — see ResolveParams).
	Default float64 `json:"default"`
	// Description says what the parameter does (units included).
	Description string `json:"description"`
}

// Info describes one registered policy.
type Info struct {
	// Name is the registry key (core.Config.Policy).
	Name string `json:"name"`
	// Description is a one-line summary.
	Description string `json:"description"`
	// Params lists the accepted parameters; policies reject unknown keys.
	Params []ParamInfo `json:"params,omitempty"`
	// RequiresBlob marks policies whose controllers are built from a
	// structured artifact (core.Config.PolicyBlob) in addition to the flat
	// float parameters — e.g. the "learned" policy's trained weights. Such
	// policies cannot be selected without an artifact, and defaulting layers
	// (a phase sweep with no explicit policy list) skip them.
	RequiresBlob bool `json:"requires_blob,omitempty"`
}

var (
	regMu    sync.RWMutex
	registry = map[string]Policy{}
	regOrder []string
)

// Register adds a policy under its Info().Name. It panics on an empty or
// duplicate name — registration is an init-time, programmer-error surface.
func Register(p Policy) {
	name := p.Info().Name
	if name == "" {
		panic("control: policy with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("control: duplicate policy " + name)
	}
	registry[name] = p
	regOrder = append(regOrder, name)
}

// Lookup resolves a policy name ("" means DefaultPolicy).
func Lookup(name string) (Policy, bool) {
	if name == "" {
		name = DefaultPolicy
	}
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// Names lists the registered policy names in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regOrder...)
}

// Infos lists the registered policies in registration order.
func Infos() []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Info, 0, len(regOrder))
	for _, name := range regOrder {
		out = append(out, registry[name].Info())
	}
	return out
}

// ParseParams parses a "key=value[,key=value...]" parameter string into a
// map. An empty string parses to an empty map. Keys must be non-empty and
// unique; values must parse as floats (integers included).
func ParseParams(s string) (map[string]float64, error) {
	out := map[string]float64{}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		k = strings.TrimSpace(k)
		if !ok || k == "" {
			return nil, fmt.Errorf("control: malformed parameter %q (want key=value)", part)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return nil, fmt.Errorf("control: parameter %s: %v", k, err)
		}
		if _, dup := out[k]; dup {
			return nil, fmt.Errorf("control: duplicate parameter %q", k)
		}
		out[k] = f
	}
	return out, nil
}

// FormatParams renders a parameter map in the canonical "k=v,k=v" form
// (keys sorted), the inverse of ParseParams up to ordering and whitespace.
func FormatParams(p map[string]float64) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", k, strconv.FormatFloat(p[k], 'g', -1, 64))
	}
	return b.String()
}

// resolve looks up the policy and parses+validates params and the blob
// artifact against its declared ParamInfos. The returned map holds only the
// explicitly given keys — a policy must be able to tell "omitted" from "set
// to the declared default", because some defaults resolve through Init
// (e.g. "interval"'s hysteresis inherits Config.IQHysteresis when not
// given, exactly like "paper").
func resolve(name, params, blob string) (Policy, map[string]float64, error) {
	p, got, err := resolveParams(name, params)
	if err != nil {
		return nil, nil, err
	}
	info := p.Info()
	switch bv, hasBV := p.(BlobValidator); {
	case blob == "" && info.RequiresBlob:
		return nil, nil, fmt.Errorf("control: policy %q requires a blob artifact (none given)", info.Name)
	case blob != "" && !info.RequiresBlob && !hasBV:
		return nil, nil, fmt.Errorf("control: policy %q takes no blob artifact", info.Name)
	case blob != "" && hasBV:
		if err := bv.ValidateBlob(blob); err != nil {
			return nil, nil, fmt.Errorf("control: policy %q: %w", info.Name, err)
		}
	}
	return p, got, nil
}

// resolveParams is resolve without the blob artifact rules: lookup, parse,
// unknown-key rejection, generic bounds and the policy's own tighter
// ParamValidator bounds.
func resolveParams(name, params string) (Policy, map[string]float64, error) {
	p, ok := Lookup(name)
	if !ok {
		return nil, nil, fmt.Errorf("control: unknown policy %q (have %v)", name, Names())
	}
	got, err := ParseParams(params)
	if err != nil {
		return nil, nil, err
	}
	info := p.Info()
	allowed := map[string]bool{}
	for _, pi := range info.Params {
		allowed[pi.Name] = true
	}
	for k := range got {
		if !allowed[k] {
			return nil, nil, fmt.Errorf("control: policy %q has no parameter %q (accepts %v)",
				info.Name, k, paramNames(info.Params))
		}
	}
	if err := validateValues(info, got); err != nil {
		return nil, nil, err
	}
	if v, ok := p.(ParamValidator); ok {
		if err := v.ValidateParams(got); err != nil {
			return nil, nil, fmt.Errorf("control: policy %q: %w", info.Name, err)
		}
	}
	return p, got, nil
}

// ParamValidator is an optional Policy extension applying bounds tighter
// than the generic finite-and-non-negative rule — e.g. the feedback
// policy's gain and setpoint ranges. It sees only the explicitly given
// values.
type ParamValidator interface {
	ValidateParams(vals map[string]float64) error
}

// BlobValidator is the optional Policy extension for policies constructed
// from a structured blob artifact (Info.RequiresBlob): it must reject any
// blob NewController could not deterministically build a controller from.
type BlobValidator interface {
	ValidateBlob(blob string) error
}

// BlobDigest returns the canonical digest of a policy blob artifact (the
// sha-256 hex of its bytes), or "" for an empty blob. Cache and memo key
// payloads embed this digest rather than the artifact itself, so keys stay
// sound — two runs agree on a key if and only if they agree on the exact
// artifact bytes — without blobs inflating every request payload.
func BlobDigest(blob string) string {
	if blob == "" {
		return ""
	}
	h := sha256.Sum256([]byte(blob))
	return hex.EncodeToString(h[:])
}

func paramNames(ps []ParamInfo) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// validateValues applies the cross-policy sanity rules to the explicitly
// given values: every built-in parameter is a count or an instruction
// interval, so values must be finite and non-negative.
func validateValues(info Info, vals map[string]float64) error {
	for _, pi := range info.Params {
		v, ok := vals[pi.Name]
		if !ok {
			continue
		}
		if !(v >= 0) || v > 1e15 { // negated form rejects NaN too
			return fmt.Errorf("control: policy %q parameter %s=%v out of range", info.Name, pi.Name, v)
		}
	}
	return nil
}

// Param returns the explicitly given value for name, or def when omitted.
func Param(params map[string]float64, name string, def float64) float64 {
	if v, ok := params[name]; ok {
		return v
	}
	return def
}

// Validate reports whether name/params select a registered policy with a
// well-formed parameter assignment and no blob artifact. Blob-requiring
// policies fail here by construction; use ValidateSelection where an
// artifact can legitimately appear.
func Validate(name, params string) error {
	return ValidateSelection(name, params, "")
}

// ValidateSelection reports whether name/params/blob select a registered
// policy with a well-formed parameter assignment and (when the policy
// requires or accepts one) a well-formed blob artifact. It is what
// core.Config.Validate calls.
func ValidateSelection(name, params, blob string) error {
	_, _, err := resolve(name, params, blob)
	return err
}

// ResolveParams returns the declared parameter assignment — the policy's
// Info defaults overlaid with the explicit values — for introspection and
// reporting. It does not require a blob artifact even for blob-requiring
// policies: the float parameters resolve independently of the artifact.
// Note a declared default can itself be indirect (the "interval" policy's
// hysteresis inherits Config.IQHysteresis when not explicitly given; 2 is
// the value that resolution bottoms out at).
func ResolveParams(name, params string) (map[string]float64, error) {
	p, got, err := resolveParams(name, params)
	if err != nil {
		return nil, err
	}
	full := make(map[string]float64)
	for _, pi := range p.Info().Params {
		full[pi.Name] = Param(got, pi.Name, pi.Default)
	}
	return full, nil
}

// New builds a controller for the named policy ("" selects DefaultPolicy)
// with the given parameter string and construction state (including any
// blob artifact in Init.Blob).
func New(name, params string, init Init) (Controller, error) {
	p, full, err := resolve(name, params, init.Blob)
	if err != nil {
		return nil, err
	}
	return p.NewController(full, init), nil
}
