// Package control is the pluggable adaptation-policy layer of the adaptive
// GALS processor: the paper's whole contribution is the control algorithm —
// accounting-cache interval decisions (Section 3.1), ILP-driven issue-queue
// resizing (Section 3.2), and PLL-lock-delayed commits (Section 3.3) — and
// this package extracts those decisions out of the machine into named,
// parameterized policies so alternatives can be expressed, swept and served
// like any other design-space dimension.
//
// The split is mechanism vs. decision. The machine (internal/core) owns the
// mechanism: it snapshots per-domain observations at interval boundaries,
// hands them to the run's Controller, and commits whatever Reconfig actions
// come back — transitional (smaller) configuration during the PLL lock,
// frequency change at lock completion, event recording. A Controller owns
// only the decision: which configuration each domain should move to, if
// any. Controllers are single-machine state (hysteresis streaks live here)
// and need not be safe for concurrent use; Policies are immutable factories
// and must be.
//
// Built-in policies:
//
//   - "paper": the exact controllers of Sections 3.1-3.2, bit-identical to
//     the pre-extraction machine (pinned by golden-trace parity tests).
//   - "interval": the same decision logic with the accounting-cache
//     interval length and the issue-queue hysteresis exposed as sweepable
//     parameters (defaults reproduce "paper").
//   - "frozen": never reconfigures — a clean baseline that isolates the
//     multiple-clock-domain overhead from any adaptation benefit (the
//     comparison the paper's Table 9 discussion implies).
//   - "feedback": a PI-style closed-loop controller (after the GALS-CMP
//     feedback-control literature) that drives structure sizes and its own
//     decision cadence from the error between observed cache pressure /
//     issue-queue ILP and a setpoint, with gains and anti-windup clamps as
//     sweepable parameters.
//
// A fifth policy, "learned" (internal/learn), registers itself on import:
// a deterministic linear predictor whose weights are a trained blob
// artifact (core.Config.PolicyBlob) rather than float parameters.
//
// Policy selection rides on core.Config (Policy / PolicyParams /
// PolicyBlob) and from there through every layer: sweep axes, experiment
// options, the service's request schemas and the galsd /v1/policies
// endpoint.
package control

import (
	"gals/internal/cache"
	"gals/internal/queue"
	"gals/internal/timing"
)

// Kind names the reconfigurable structure (and with it the clock domain) a
// Reconfig targets.
type Kind int

const (
	// ICache is the front-end I-cache/branch-predictor pair.
	ICache Kind = iota
	// DCache is the joint L1-D/L2 pair in the load/store domain.
	DCache
	// IntIQ and FPIQ are the issue queues.
	IntIQ
	// FPIQ is the floating-point issue queue.
	FPIQ
)

// String names the kind with the machine's ReconfigEvent vocabulary.
func (k Kind) String() string {
	switch k {
	case ICache:
		return "icache"
	case DCache:
		return "dcache"
	case IntIQ:
		return "int-iq"
	case FPIQ:
		return "fp-iq"
	}
	return "?"
}

// Reconfig is one decision: move the Kind structure to the Target
// configuration. The machine commits it with the paper's Section 3.3
// mechanics — run the simpler of (current, target) during the PLL lock,
// switch the domain clock at lock completion. Target is the destination
// timing.ICacheConfig / timing.DCacheConfig ordinal for the cache kinds and
// the destination queue size in entries (16/32/48/64) for the queue kinds.
type Reconfig struct {
	Kind   Kind
	Target int
}

// CacheObs is the accounting-cache interval observation handed to
// Controller.DecideCaches: the interval statistics of all three caches plus
// the machine state the Section 3.1 cost model reads. Stats snapshots are
// taken before any decision commits, and the machine resets the interval
// statistics after the call regardless of what was decided.
type CacheObs struct {
	// ICache, DCacheL1 and L2 are the interval statistics (MRU position
	// hits, directory misses) of the three accounting caches.
	ICache, DCacheL1, L2 cache.Stats
	// ICfg and DCfg are the current (committed) configurations.
	ICfg timing.ICacheConfig
	DCfg timing.DCacheConfig
	// FEPeriod and LSPeriod are the current front-end and load/store clock
	// periods.
	FEPeriod, LSPeriod timing.FS
	// FEPending and LSPending report an in-flight reconfiguration (PLL
	// still locking) in the respective domain; the paper's controllers skip
	// a domain whose change has not yet committed.
	FEPending, LSPending bool
	// L2LineBytes is the L2 line size (the unit of the memory round trip in
	// the D/L2 cost model).
	L2LineBytes int
}

// IQObs is the completed ILP-tracking interval handed to
// Controller.DecideIQs (Section 3.2).
type IQObs struct {
	// Samples are the tracker's measurements for the four window sizes.
	Samples [4]queue.Sample
	// IntIQ and FPIQ are the machine's current (committed) queue sizes.
	IntIQ, FPIQ timing.IQSize
	// IntPending and FPPending report an in-flight resize; a pending queue
	// takes no new decision and its hysteresis state does not observe the
	// interval (exactly the pre-extraction machine's behaviour).
	IntPending, FPPending bool
}

// Init carries the per-run construction state a Controller needs from the
// machine configuration.
type Init struct {
	// IntIQ and FPIQ are the initial issue-queue sizes.
	IntIQ, FPIQ timing.IQSize
	// ICache and DCache are the initial cache-domain configurations
	// (closed-loop policies seed their control state from them; the paper's
	// controllers re-derive absolutes each interval and ignore them).
	ICache timing.ICacheConfig
	DCache timing.DCacheConfig
	// IQHysteresis is core.Config.IQHysteresis: the number of consecutive
	// agreeing ILP intervals before a queue resize; values <= 0 mean the
	// paper's default of 2. Policies with their own hysteresis parameter
	// let the parameter override this.
	IQHysteresis int
	// Blob is core.Config.PolicyBlob: the structured artifact of policies
	// whose decision state cannot be expressed as flat float parameters
	// (e.g. the "learned" policy's trained weights). Already validated by
	// the time NewController sees it.
	Blob string
}

// Controller is one run's decision state, created by a Policy and bound to
// a single machine. The machine calls the Decide hooks at interval
// boundaries and commits the returned actions in order (each commit draws
// one PLL lock time, so action order is part of behavioural identity).
// Controllers are not safe for concurrent use; a machine is single-threaded.
type Controller interface {
	// CacheInterval returns the accounting-cache decision interval in
	// committed instructions; 0 disables cache decisions entirely. The
	// machine re-reads it after every DecideCaches call, so a closed-loop
	// policy may retune its own cadence between intervals (the paper's
	// controllers return a constant).
	CacheInterval() int64
	// NeedsIQ reports whether the machine should run the per-instruction
	// ILP tracker and deliver IQObs intervals. False disables issue-queue
	// adaptation (and its tracking overhead) entirely.
	NeedsIQ() bool
	// IQWindows returns the ILP tracker's measured window sizes, read once
	// at machine construction like CacheInterval — the tracking-hardware
	// analogue of the accounting interval. Sizes must be positive, strictly
	// increasing and at most 64; policies without an opinion return
	// queue.DefaultWindowSizes() (the paper's 16/32/48/64). Only consulted
	// when NeedsIQ is true.
	IQWindows() [4]int
	// DecideCaches consumes one accounting interval and appends to buf the
	// cache-domain reconfigurations to initiate, in commit order.
	DecideCaches(obs CacheObs, buf []Reconfig) []Reconfig
	// DecideIQs consumes one completed ILP-tracking interval and appends
	// the issue-queue resizes to initiate, in commit order.
	DecideIQs(obs IQObs, buf []Reconfig) []Reconfig
}

// Policy is a named, registered adaptation policy: an immutable factory for
// per-run Controllers. Implementations must be safe for concurrent use (one
// Policy value serves every machine in a sweep).
type Policy interface {
	// Info describes the policy and its parameters for registry listings
	// (galsd's /v1/policies, gals.Policies).
	Info() Info
	// NewController builds one run's controller. params holds only the
	// explicitly given (already validated) parameters — read them with
	// Param(params, name, default), so an omitted key can resolve through
	// Init where the policy's semantics call for it.
	NewController(params map[string]float64, init Init) Controller
}
