package control

import (
	"strings"
	"testing"

	"gals/internal/cache"
	"gals/internal/queue"
	"gals/internal/timing"
)

func TestFeedbackParamBounds(t *testing.T) {
	for _, ok := range []string{
		"", "kp=2,ki=0.5", "interval=7500,clamp=10",
		"cache_setpoint=0.2,ilp_setpoint=8,deadband=1",
	} {
		if err := Validate("feedback", ok); err != nil {
			t.Errorf("Validate(feedback, %q) = %v", ok, err)
		}
	}
	for _, bad := range []string{
		"kp=200",           // gain above the stability bound
		"ki=101",           // gain above the stability bound
		"kp=-1",            // negative (generic rule)
		"clamp=1000",       // clamp above bound
		"deadband=11",      // deadband above bound
		"cache_setpoint=0", // setpoint must be positive (relative errors)
		"ilp_setpoint=0",   // setpoint must be positive
		"ilp_setpoint=65",  // above the largest window
		"interval=2e9",     // above bound
		"gain=1",           // unknown parameter
	} {
		if err := Validate("feedback", bad); err == nil {
			t.Errorf("Validate(feedback, %q) accepted", bad)
		}
	}
}

// feStats builds front-end accounting statistics with the given hit counts
// per MRU position and directory misses.
func feStats(pos [4]uint64, misses uint64) cache.Stats {
	s := cache.Stats{PosHits: pos[:], DirMisses: misses}
	for _, n := range pos {
		s.Accesses += n
	}
	s.Accesses += misses
	return s
}

func newFeedback(t *testing.T, params string) Controller {
	t.Helper()
	c, err := New("feedback", params, Init{IntIQ: timing.IQ16, FPIQ: timing.IQ16})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFeedbackUpsizesOnAbsorbablePressure: an interval whose B-partition
// traffic the next size up would absorb drives the front-end loop upward.
func TestFeedbackUpsizesOnAbsorbablePressure(t *testing.T) {
	c := newFeedback(t, "kp=4")
	// Half the accesses hit MRU position 1 — outside the 1-way A partition,
	// fully absorbed by the 2-way configuration.
	obs := CacheObs{
		ICache: feStats([4]uint64{500, 500, 0, 0}, 0),
		ICfg:   timing.ICache16K1W, DCfg: timing.DCache32K1W,
		FEPeriod: timing.PeriodFS(1000), LSPeriod: timing.PeriodFS(1000),
	}
	out := c.DecideCaches(obs, nil)
	if len(out) != 1 || out[0].Kind != ICache || out[0].Target <= 0 {
		t.Fatalf("absorbable pressure decided %v, want a front-end upsize", out)
	}
}

// TestFeedbackHoldsWhenCapacityBound: pressure that no configuration
// absorbs (pure directory misses) generates no up-force — the failure mode
// that distinguishes the marginal error signal from a naive absolute
// regulator, which would pin the cache at its largest, slowest size.
func TestFeedbackHoldsWhenCapacityBound(t *testing.T) {
	c := newFeedback(t, "kp=4")
	obs := CacheObs{
		ICache: feStats([4]uint64{500, 0, 0, 0}, 500),
		ICfg:   timing.ICache16K1W, DCfg: timing.DCache32K1W,
		FEPeriod: timing.PeriodFS(1000), LSPeriod: timing.PeriodFS(1000),
	}
	for i := 0; i < 5; i++ {
		if out := c.DecideCaches(obs, nil); len(out) != 0 {
			t.Fatalf("capacity-bound interval %d decided %v", i, out)
		}
	}
}

// TestFeedbackCadenceStretchesWhenQuiet: on-target intervals double the
// decision interval up to 8x the base; an excursion snaps it back.
func TestFeedbackCadenceStretchesWhenQuiet(t *testing.T) {
	c := newFeedback(t, "interval=1000")
	if c.CacheInterval() != 1000 {
		t.Fatalf("base interval = %d", c.CacheInterval())
	}
	quiet := CacheObs{ // A-partition hits only: zero pressure everywhere
		ICache: feStats([4]uint64{1000, 0, 0, 0}, 0),
		ICfg:   timing.ICache16K1W, DCfg: timing.DCache32K1W,
		FEPeriod: timing.PeriodFS(1000), LSPeriod: timing.PeriodFS(1000),
	}
	for i, want := range []int64{2000, 4000, 8000, 8000} {
		c.DecideCaches(quiet, nil)
		if got := c.CacheInterval(); got != want {
			t.Fatalf("after %d quiet intervals CacheInterval = %d, want %d", i+1, got, want)
		}
	}
	loud := quiet
	loud.ICache = feStats([4]uint64{0, 1000, 0, 0}, 0)
	c.DecideCaches(loud, nil)
	if got := c.CacheInterval(); got != 1000 {
		t.Fatalf("excursion left CacheInterval at %d, want the base 1000", got)
	}
}

// TestFeedbackAntiWindup: with the loop saturated at the smallest
// configuration, a long run of negative error must not wind the integral
// past the clamp — a subsequent genuine up-force must move the level within
// a few intervals, not after unwinding an unbounded backlog.
func TestFeedbackAntiWindup(t *testing.T) {
	c := newFeedback(t, "kp=1,ki=1,clamp=1")
	quiet := CacheObs{
		ICache: feStats([4]uint64{1000, 0, 0, 0}, 0),
		ICfg:   timing.ICache16K1W, DCfg: timing.DCache32K1W,
		FEPeriod: timing.PeriodFS(1000), LSPeriod: timing.PeriodFS(1000),
	}
	// Zero error at the floor: nothing accumulates, nothing decided.
	for i := 0; i < 50; i++ {
		c.DecideCaches(quiet, nil)
	}
	pressured := quiet
	pressured.ICache = feStats([4]uint64{200, 800, 0, 0}, 0)
	out := c.DecideCaches(pressured, nil)
	if len(out) != 1 || out[0].Kind != ICache {
		t.Fatalf("post-saturation pressure decided %v, want an immediate upsize", out)
	}
}

// TestFeedbackIQLoopFollowsILP: sustained ILP far above the setpoint grows
// the integer queue; the FP queue (no FP instructions) stays put.
func TestFeedbackIQLoopFollowsILP(t *testing.T) {
	c := newFeedback(t, "kp=2,ilp_setpoint=2")
	var samples [4]queue.Sample
	for i, n := range []int{16, 32, 48, 64} {
		samples[i] = queue.Sample{N: n, M: 2, IntCount: n, FPCount: 0}
	}
	obs := IQObs{Samples: samples, IntIQ: timing.IQ16, FPIQ: timing.IQ16}
	out := c.DecideIQs(obs, nil)
	if len(out) != 1 || out[0].Kind != IntIQ || out[0].Target <= int(timing.IQ16) {
		t.Fatalf("high-ILP interval decided %v, want one integer-queue upsize", out)
	}
}

// TestFeedbackRegistered pins the registry entry: parameters listed,
// no blob.
func TestFeedbackRegistered(t *testing.T) {
	p, ok := Lookup("feedback")
	if !ok {
		t.Fatal("feedback not registered")
	}
	in := p.Info()
	if in.RequiresBlob {
		t.Error("feedback should not require a blob artifact")
	}
	if len(in.Params) != 7 {
		t.Errorf("feedback lists %d params, want 7", len(in.Params))
	}
	if err := ValidateSelection("feedback", "", "{}"); err == nil ||
		!strings.Contains(err.Error(), "takes no blob") {
		t.Errorf("feedback accepted a blob artifact: %v", err)
	}
}
