// Package resultcache is a persistent, content-addressed store for
// simulation results. The paper burned ~300 CPU-months sweeping the GALS
// design space; every layer above the simulator (the suite memo, the sweep
// matrices, the service's single runs) keys its outputs by a hash of the
// normalized request plus a schema version, so identical work is computed
// once per cache directory — across processes, not just within one.
//
// Layout: a key has the form "<kind>/<64 hex sha-256 chars>" and is stored
// at <dir>/<kind>/<hh>/<hash>.json, where <hh> is the first two hash chars
// (fanout, so directories stay small). Blobs are plain JSON, written via a
// temp file and an atomic rename, so concurrent writers of the same key are
// safe and a crash can never leave a truncated entry behind.
//
// Invalidation is by construction: Key mixes SchemaVersion into every hash,
// so bumping it (whenever the simulator's timing semantics change) orphans
// every old entry rather than serving stale results. Orphans are plain
// files; `rm -r <dir>` is always safe.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"gals/internal/faultinject"
)

// SchemaVersion is mixed into every cache key. Bump it whenever a change
// anywhere in the simulator can alter results for an identical request
// (timing model, workload generation, controller behaviour, ...): old
// entries then simply stop matching instead of being served stale.
//
// v2: the adaptation-policy layer (internal/control) added Policy and
// PolicyParams to core.Config and the sweep/experiment/service request
// shapes. The "paper" default is pinned bit-identical to v1 behaviour by
// parity tests, but every key payload's encoding changed, so v1 entries are
// orphaned wholesale rather than left to alias by accident.
//
// v3: the closed-loop/learned adaptation subsystem added blob policy
// parameters (core.Config.PolicyBlob, keyed by canonical digest), the
// "feedback" and "learned" policies, the "policyblob" sidecar kind for
// trained weights, and the machine's dynamic decision cadence (the
// controller's CacheInterval is re-read after every decision). The "paper"
// default remains pinned bit-identical by parity tests; every key payload's
// encoding changed again, so v2 entries are orphaned wholesale.
const SchemaVersion = "gals-results-v3"

// Store is the persistence interface consumed by the compute layers
// (experiment's suite memo, sweep's measure matrices, the service's runs).
// Implementations must be safe for concurrent use. Load reports whether the
// key was found and v filled in; Store is best-effort — persistence is an
// accelerator, never a correctness dependency, so I/O errors are counted
// but not propagated.
type Store interface {
	Load(key string, v any) bool
	Store(key string, v any)
}

// Remover is the optional deletion side of a Store. Consumers that garbage-
// collect their own entries (the sweep layer removes a checkpoint once its
// parent summary is durable) type-assert for it, so plain map-backed test
// stores keep working unchanged.
type Remover interface {
	Remove(key string)
}

// Key builds a cache key for a request of the given kind. The request is
// canonicalized by its JSON encoding (struct fields in declaration order,
// map keys sorted), hashed together with SchemaVersion and the kind.
// Requests must therefore be plain data — normalized option structs, not
// pointers to live state.
func Key(kind string, req any) string {
	blob, err := json.Marshal(req)
	if err != nil {
		// Marshal of a plain option struct cannot fail; if a caller passes
		// something exotic (NaN floats, channels), hash the Go-syntax dump
		// instead — it still includes every field value, so distinct
		// requests cannot collide on the shared error string.
		blob = []byte(fmt.Sprintf("unmarshalable (%v): %#v", err, req))
	}
	h := sha256.New()
	h.Write([]byte(SchemaVersion))
	h.Write([]byte{0})
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(blob)
	return kind + "/" + hex.EncodeToString(h.Sum(nil))
}

// Stats are a cache's lifetime counters.
type Stats struct {
	// Hits and Misses count Load outcomes.
	Hits, Misses int64
	// Puts counts successful Store writes; PutBytes their total payload.
	Puts     int64
	PutBytes int64
	// Errors counts I/O or decode failures (treated as misses).
	Errors int64
	// Corrupt counts blobs that existed but failed to decode — the
	// corrupt-entry-recovered-as-miss path specifically, a subset of
	// Errors. A rising Corrupt with flat Errors-elsewhere means the disk
	// (or an injected fault) is damaging blobs, not that I/O is failing.
	Corrupt int64
	// Evictions and EvictedBytes count files removed by Prune passes in
	// this process (LRU evictions plus stale temp/lock debris).
	Evictions    int64
	EvictedBytes int64
}

// Cache is the on-disk Store implementation. The zero value is not usable;
// create with Open. A nil *Cache ignores Stores and misses every Load, so
// callers can hold one unconditionally.
type Cache struct {
	dir string

	hits, misses, puts, errs           atomic.Int64
	putBytes, corrupt, evicts, evBytes atomic.Int64
}

// Open creates (if needed) and returns a cache rooted at dir.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// path maps a key to its blob file. Keys are produced by Key, but a
// malformed one degrades to a flat file under dir rather than escaping it.
func (c *Cache) path(key string) string {
	kind, hash, ok := strings.Cut(key, "/")
	if !ok || len(hash) < 2 || strings.ContainsAny(key, `\.`) {
		return filepath.Join(c.dir, "misc", hex.EncodeToString([]byte(key))+".json")
	}
	return filepath.Join(c.dir, kind, hash[:2], hash+".json")
}

// Load reads the entry for key into v, reporting whether it was found.
func (c *Cache) Load(key string, v any) bool {
	if c == nil {
		return false
	}
	if err := faultinject.Err(faultinject.ResultCacheRead); err != nil {
		c.errs.Add(1)
		c.misses.Add(1)
		return false
	}
	blob, err := os.ReadFile(c.path(key))
	if err != nil {
		if !os.IsNotExist(err) {
			c.errs.Add(1)
		}
		c.misses.Add(1)
		return false
	}
	blob = faultinject.Mutate(faultinject.ResultCacheRead, blob)
	if err := json.Unmarshal(blob, v); err != nil {
		// Corrupt or schema-incompatible entry: treat as a miss; the
		// caller's Store will overwrite it with a fresh blob.
		c.errs.Add(1)
		c.corrupt.Add(1)
		c.misses.Add(1)
		return false
	}
	// Mark the entry recently used so Prune's LRU order reflects reads,
	// not just writes. Best-effort: a failed touch only skews eviction.
	now := time.Now()
	os.Chtimes(c.path(key), now, now)
	c.hits.Add(1)
	return true
}

// Store writes the entry for key. Best-effort: errors are counted, not
// returned — a failed write costs a recompute next time, nothing more.
func (c *Cache) Store(key string, v any) {
	if c == nil {
		return
	}
	if err := faultinject.Err(faultinject.ResultCacheWrite); err != nil {
		c.errs.Add(1)
		return
	}
	blob, err := json.Marshal(v)
	if err != nil {
		c.errs.Add(1)
		return
	}
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		c.errs.Add(1)
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+filepath.Base(p)+".tmp*")
	if err != nil {
		c.errs.Add(1)
		return
	}
	_, werr := tmp.Write(blob)
	// Sync before the rename: without it a crash can publish an entry whose
	// data blocks never hit the disk — Load would then read a valid-looking
	// file of zeros instead of a missing one.
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		c.errs.Add(1)
		return
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		c.errs.Add(1)
		return
	}
	c.puts.Add(1)
	c.putBytes.Add(int64(len(blob)))
}

// Has reports whether an entry for key exists on disk, without reading or
// decoding it (and so without touching hit/miss counters or mtimes). A
// present-but-corrupt blob still counts as existing; Scrub is what retires
// those.
func (c *Cache) Has(key string) bool {
	if c == nil {
		return false
	}
	_, err := os.Stat(c.path(key))
	return err == nil
}

// Remove deletes the entry for key. Best-effort like Store: a failure means
// the entry survives until the next Remove, Prune or Scrub.
func (c *Cache) Remove(key string) {
	if c == nil {
		return
	}
	if err := os.Remove(c.path(key)); err != nil && !os.IsNotExist(err) {
		c.errs.Add(1)
	}
}

// Keys lists every stored key of the given kind, in unspecified order.
// Intended for maintenance passes (checkpoint GC), not the hot path — it
// walks the kind's whole subtree.
func (c *Cache) Keys(kind string) []string {
	if c == nil {
		return nil
	}
	var keys []string
	filepath.WalkDir(filepath.Join(c.dir, kind), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		name := d.Name()
		if strings.HasPrefix(name, ".") || !strings.HasSuffix(name, ".json") {
			return nil
		}
		keys = append(keys, kind+"/"+strings.TrimSuffix(name, ".json"))
		return nil
	})
	return keys
}

// staleTempAge is how old a dot-prefixed temp file or .lock must be before
// Prune treats it as debris from a crashed writer and deletes it; live
// writes and recordings finish (or refresh their lock) well inside this.
const staleTempAge = time.Hour

// PruneStats reports one Prune pass.
type PruneStats struct {
	// RemovedFiles and RemovedBytes count what was deleted.
	RemovedFiles int   `json:"removed_files"`
	RemovedBytes int64 `json:"removed_bytes"`
	// RemainingBytes is the cache's size after the pass.
	RemainingBytes int64 `json:"remaining_bytes"`
}

// Prune deletes least-recently-used cache files until the directory's total
// size fits in maxBytes. "Used" is file mtime: Store writes and Load hits
// both refresh it, so hot sweep matrices and recordings survive while stale
// schema-orphaned blobs go first. In-flight temp files and lock files are
// skipped; a pruned entry is simply recomputed (or re-recorded) on next
// use, and deleting a currently-mmap'd recording is safe — the mapping
// keeps its pages. Note the disk-space corollary: a slab still mapped by a
// live process keeps its blocks allocated until that process exits, so
// RemovedBytes (file sizes unlinked) can lead `df` by the mapped set; the
// cap is re-enforced on the next pass once those processes are gone.
// maxBytes <= 0 prunes everything.
func (c *Cache) Prune(maxBytes int64) (PruneStats, error) {
	if c == nil {
		return PruneStats{}, nil
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []entry
	var total int64
	st := PruneStats{}
	// Every return path folds what the pass removed (LRU evictions plus
	// stale temp/lock debris) into the lifetime eviction counters.
	defer func() {
		c.evicts.Add(int64(st.RemovedFiles))
		c.evBytes.Add(st.RemovedBytes)
	}()
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil // unreadable subtrees are simply not pruned
		}
		name := d.Name()
		fi, err := d.Info()
		if err != nil {
			return nil
		}
		if strings.HasPrefix(name, ".") || strings.HasSuffix(name, ".lock") {
			// In-flight temp files and recorder locks are not LRU
			// candidates — but ones a crashed writer abandoned are debris
			// that would otherwise accumulate outside the cap forever.
			if time.Since(fi.ModTime()) > staleTempAge && os.Remove(path) == nil {
				st.RemovedFiles++
				st.RemovedBytes += fi.Size()
			}
			return nil
		}
		files = append(files, entry{path: path, size: fi.Size(), mtime: fi.ModTime()})
		total += fi.Size()
		return nil
	})
	st.RemainingBytes = total
	if err != nil {
		return st, fmt.Errorf("resultcache: %w", err)
	}
	if total <= maxBytes {
		return st, nil
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if st.RemainingBytes <= maxBytes {
			break
		}
		if err := os.Remove(f.path); err != nil {
			if os.IsNotExist(err) {
				// A concurrent Prune (another galsd on the same cache dir)
				// or an operator's rm got there first; the bytes are gone
				// either way.
				st.RemainingBytes -= f.size
				continue
			}
			c.errs.Add(1)
			continue
		}
		st.RemovedFiles++
		st.RemovedBytes += f.size
		st.RemainingBytes -= f.size
	}
	return st, nil
}

// quarantineDir is the top-level subdirectory Scrub moves undecodable
// blobs into. Quarantined files keep their content for post-mortem but no
// longer match any key, so a fresh recompute overwrites the slot cleanly.
const quarantineDir = "quarantine"

// ScrubStats reports one Scrub pass.
type ScrubStats struct {
	// TempFiles and LockFiles count crashed-writer debris removed: in-flight
	// dot-prefixed temps and recorder .lock files respectively.
	TempFiles int `json:"temp_files"`
	LockFiles int `json:"lock_files"`
	// Quarantined counts blobs that existed but failed to decode and were
	// moved aside; QuarantinedBytes their total size.
	Quarantined      int   `json:"quarantined"`
	QuarantinedBytes int64 `json:"quarantined_bytes"`
}

// Scrub is the startup-recovery pass: it reaps crashed-writer debris and
// quarantines damaged blobs so a restarted daemon begins from a clean
// store. Unlike Prune's conservative stale-age rule, Scrub assumes the
// caller has exclusive use of the directory (galsd runs it before serving),
// so every temp and lock file is debris by definition and is removed
// regardless of age. JSON blobs that fail to decode as JSON at all are
// moved to <dir>/quarantine/ — kept for post-mortem, invisible to Load.
// The recordings subtree has its own binary format and its own scrub
// (recstore.Scrub); it and the quarantine itself are skipped here.
func (c *Cache) Scrub() (ScrubStats, error) {
	st := ScrubStats{}
	if c == nil {
		return st, nil
	}
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil // unreadable subtrees are simply not scrubbed
		}
		if d.IsDir() {
			if path != c.dir {
				switch filepath.Base(path) {
				case quarantineDir, "recordings":
					return filepath.SkipDir
				}
			}
			return nil
		}
		name := d.Name()
		switch {
		case strings.HasSuffix(name, ".lock"):
			if os.Remove(path) == nil {
				st.LockFiles++
			}
		case strings.HasPrefix(name, "."):
			if os.Remove(path) == nil {
				st.TempFiles++
			}
		case strings.HasSuffix(name, ".json"):
			blob, rerr := os.ReadFile(path)
			if rerr != nil {
				c.errs.Add(1)
				return nil
			}
			if json.Valid(blob) {
				return nil
			}
			q := filepath.Join(c.dir, quarantineDir)
			if os.MkdirAll(q, 0o755) != nil {
				c.errs.Add(1)
				return nil
			}
			// Prefix with the kind so same-hash blobs of different kinds
			// (impossible today, cheap to be safe about) cannot collide.
			rel, _ := filepath.Rel(c.dir, path)
			dst := filepath.Join(q, strings.ReplaceAll(rel, string(filepath.Separator), "_"))
			if os.Rename(path, dst) != nil {
				c.errs.Add(1)
				return nil
			}
			st.Quarantined++
			st.QuarantinedBytes += int64(len(blob))
		}
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("resultcache: %w", err)
	}
	return st, nil
}

// Stats returns the cache's counters so far.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Puts:         c.puts.Load(),
		PutBytes:     c.putBytes.Load(),
		Errors:       c.errs.Load(),
		Corrupt:      c.corrupt.Load(),
		Evictions:    c.evicts.Load(),
		EvictedBytes: c.evBytes.Load(),
	}
}
