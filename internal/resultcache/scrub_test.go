package resultcache

import (
	"os"
	"path/filepath"
	"testing"
)

// TestScrubReapsDebrisAndQuarantines pins the startup-recovery pass: every
// temp and lock file goes regardless of age, undecodable blobs move to the
// quarantine (invisible to Load, preserved for post-mortem), and healthy
// entries plus the recordings subtree are untouched.
func TestScrubReapsDebrisAndQuarantines(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	goodKey := Key("runres", "healthy")
	c.Store(goodKey, map[string]int{"x": 1})

	// Crashed-writer debris: a fresh in-flight temp and a recorder lock,
	// both younger than Prune's stale-age rule would ever touch.
	kindDir := filepath.Join(dir, "runres", "ab")
	if err := os.MkdirAll(kindDir, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(kindDir, ".blob.json.tmp123")
	lock := filepath.Join(kindDir, "abcd.lock")
	bad := filepath.Join(kindDir, "deadbeef.json")
	os.WriteFile(tmp, []byte("partial"), 0o644)
	os.WriteFile(lock, []byte(""), 0o644)
	os.WriteFile(bad, []byte("not json {{{"), 0o644)

	// The recordings subtree belongs to recstore's scrub, not this one.
	recDir := filepath.Join(dir, "recordings", "cd")
	os.MkdirAll(recDir, 0o755)
	recJunk := filepath.Join(recDir, "junk.json")
	os.WriteFile(recJunk, []byte("also not json {{{"), 0o644)

	st, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if st.TempFiles != 1 || st.LockFiles != 1 {
		t.Fatalf("scrub stats %+v, want 1 temp and 1 lock reaped", st)
	}
	if st.Quarantined != 1 || st.QuarantinedBytes != int64(len("not json {{{")) {
		t.Fatalf("scrub stats %+v, want 1 blob quarantined", st)
	}
	for _, p := range []string{tmp, lock, bad} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s survived the scrub", p)
		}
	}
	if _, err := os.Stat(recJunk); err != nil {
		t.Fatal("scrub reached into the recordings subtree")
	}
	q, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
	if len(q) != 1 {
		t.Fatalf("quarantine holds %v, want exactly the bad blob", q)
	}
	var v map[string]int
	if !c.Load(goodKey, &v) || v["x"] != 1 {
		t.Fatal("healthy entry damaged by the scrub")
	}

	// Quarantined blobs are out of every key's way: a second pass is a no-op.
	st2, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if st2 != (ScrubStats{}) {
		t.Fatalf("second scrub found %+v, want a clean store", st2)
	}

	// A nil cache scrubs to zero without erroring.
	var nilc *Cache
	if st, err := nilc.Scrub(); err != nil || st != (ScrubStats{}) {
		t.Fatalf("nil cache Scrub = %+v, %v", st, err)
	}
}
