package resultcache

import (
	"os"
	"path/filepath"
	"testing"

	"gals/internal/faultinject"
)

// TestInjectedReadFaultIsAMiss pins the cache's degradation contract under
// every read-side fault mode: an injected error, a corrupted blob and a
// truncated blob are all misses — never a decode of damaged data, never a
// propagated error — and once the fault clears the original entry (error
// mode) or a re-store (mutation modes) serves hits again.
func TestInjectedReadFaultIsAMiss(t *testing.T) {
	defer faultinject.Disable()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("run", payload{Name: "art", Times: []int64{7}})
	c.Store(key, payload{Name: "art", Times: []int64{7}})

	for _, mode := range []string{"error", "corrupt", "truncate"} {
		if err := faultinject.Enable("resultcache.read=" + mode); err != nil {
			t.Fatal(err)
		}
		var got payload
		if c.Load(key, &got) {
			t.Fatalf("mode %s: Load returned a hit through an injected fault", mode)
		}
		faultinject.Disable()

		if mode != "error" {
			// The mutation modes damage the blob in memory only; the file
			// on disk is untouched, so the entry must still be readable.
			got = payload{}
			if !c.Load(key, &got) || got.Name != "art" {
				t.Fatalf("mode %s: entry unreadable after fault cleared: %+v", mode, got)
			}
		}
	}

	// error mode counts an error; the mutation modes are plain misses.
	if s := c.Stats(); s.Errors == 0 {
		t.Fatalf("stats %+v, want Errors > 0 from injected read error", s)
	}
}

// TestInjectedWriteFaultDegradesToRecompute pins the write side: an
// injected store failure (ENOSPC) loses the entry — the next Load is a
// miss, the caller recomputes — but never corrupts the cache or errors the
// request, and the store works again once space returns.
func TestInjectedWriteFaultDegradesToRecompute(t *testing.T) {
	defer faultinject.Disable()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("run", payload{Name: "gcc"})

	if err := faultinject.Enable("resultcache.write=enospc"); err != nil {
		t.Fatal(err)
	}
	c.Store(key, payload{Name: "gcc", Times: []int64{1}})
	faultinject.Disable()

	var got payload
	if c.Load(key, &got) {
		t.Fatal("Load hit an entry whose write was injected to fail")
	}
	if s := c.Stats(); s.Errors == 0 {
		t.Fatalf("stats %+v, want Errors > 0 from injected write fault", s)
	}

	c.Store(key, payload{Name: "gcc", Times: []int64{1}})
	got = payload{}
	if !c.Load(key, &got) || got.Name != "gcc" {
		t.Fatalf("store did not recover after fault cleared: %+v", got)
	}
}

// TestPruneToleratesConcurrentDeletes pins Prune against another process
// (or operator rm) racing it on the same directory: files that vanish
// between the scan and the unlink are treated as already-pruned bytes, not
// errors.
func TestPruneToleratesConcurrentDeletes(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		c.Store(Key("run", payload{Name: "bench", Times: []int64{int64(i)}}),
			payload{Name: "bench", Times: make([]int64, 256)})
	}

	var entries []string
	filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			entries = append(entries, p)
		}
		return nil
	})
	if len(entries) != 8 {
		t.Fatalf("expected 8 cache files, found %d", len(entries))
	}

	// Two prunes racing on the same directory: run them concurrently; every
	// unlink one of them loses must land in the IsNotExist branch of the
	// other, and both must return without error.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Prune(0)
			errs <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("racing Prune: %v", err)
		}
	}
	st, err := c.Prune(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.RemainingBytes != 0 {
		t.Fatalf("cache not empty after prunes: %d bytes remain", st.RemainingBytes)
	}
	if s := c.Stats(); s.Errors != 0 {
		t.Fatalf("concurrent deletes were counted as errors: %+v", s)
	}
}

// TestStoreSyncsBeforeRename documents the durability half of Store: the
// temp file is fsynced before the rename, so a publish is never a rename
// of unwritten pages. The property itself needs a crash to observe; what a
// test can pin is that the Sync call is in the path and a synced store
// round-trips.
func TestStoreSyncsBeforeRename(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("run", payload{Name: "synced"})
	c.Store(key, payload{Name: "synced", Times: []int64{42}})
	var got payload
	if !c.Load(key, &got) || got.Name != "synced" {
		t.Fatalf("synced entry failed to round-trip: %+v", got)
	}
	if s := c.Stats(); s.Errors != 0 {
		t.Fatalf("Store with Sync reported errors: %+v", s)
	}
}
