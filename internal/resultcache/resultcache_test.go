package resultcache

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

type payload struct {
	Name  string
	Times []int64
}

func TestKeyStableAndDiscriminating(t *testing.T) {
	a := Key("run", payload{Name: "gcc", Times: []int64{1, 2}})
	b := Key("run", payload{Name: "gcc", Times: []int64{1, 2}})
	if a != b {
		t.Fatalf("identical requests hashed differently: %q vs %q", a, b)
	}
	if !strings.HasPrefix(a, "run/") || len(a) != len("run/")+64 {
		t.Fatalf("unexpected key shape %q", a)
	}
	if c := Key("run", payload{Name: "gcc", Times: []int64{1, 3}}); c == a {
		t.Fatalf("different requests collided on %q", c)
	}
	if c := Key("sweep", payload{Name: "gcc", Times: []int64{1, 2}}); c == a {
		t.Fatalf("different kinds collided on %q", c)
	}
}

// TestKeyUnmarshalableRequestsStayDistinct: the marshal-failure fallback
// must still discriminate between requests (a shared error string must not
// alias two different NaN-carrying option sets onto one cache entry).
func TestKeyUnmarshalableRequestsStayDistinct(t *testing.T) {
	type opts struct {
		Scale  float64
		Window int64
	}
	nan := math.NaN()
	a := Key("suite", opts{Scale: nan, Window: 1_000})
	b := Key("suite", opts{Scale: nan, Window: 50_000})
	if a == b {
		t.Fatalf("distinct unmarshalable requests collided on %q", a)
	}
	if a != Key("suite", opts{Scale: nan, Window: 1_000}) {
		t.Fatal("unmarshalable-request keys are not stable")
	}
}

func TestRoundTripAndStats(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("run", payload{Name: "art", Times: []int64{7}})

	var got payload
	if c.Load(key, &got) {
		t.Fatal("Load hit on empty cache")
	}
	c.Store(key, payload{Name: "art", Times: []int64{7}})
	if !c.Load(key, &got) || got.Name != "art" || len(got.Times) != 1 || got.Times[0] != 7 {
		t.Fatalf("round trip failed: %+v", got)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 || s.Errors != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put / 0 errors", s)
	}
}

func TestPersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("suite", payload{Name: "warm"})
	c1.Store(key, payload{Name: "warm", Times: []int64{1, 2, 3}})

	// A second Open models a new process reusing the same directory.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	if !c2.Load(key, &got) || got.Name != "warm" {
		t.Fatalf("entry did not survive reopen: %+v", got)
	}
}

func TestCorruptEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("run", payload{Name: "x"})
	c.Store(key, payload{Name: "x"})

	// Truncate the blob on disk.
	var blobPath string
	filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(p, ".json") {
			blobPath = p
		}
		return nil
	})
	if blobPath == "" {
		t.Fatal("no blob written")
	}
	if err := os.WriteFile(blobPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var got payload
	if c.Load(key, &got) {
		t.Fatal("corrupt entry served as a hit")
	}
	if s := c.Stats(); s.Errors == 0 {
		t.Fatalf("corrupt entry not counted as error: %+v", s)
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	c.Store("run/abc", payload{})
	var got payload
	if c.Load("run/abc", &got) {
		t.Fatal("nil cache reported a hit")
	}
	if c.Stats() != (Stats{}) || c.Dir() != "" {
		t.Fatal("nil cache not inert")
	}
}

func TestConcurrentSameKey(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("run", payload{Name: "contended"})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Store(key, payload{Name: "contended", Times: []int64{42}})
			var got payload
			if c.Load(key, &got) && got.Name != "contended" {
				t.Errorf("torn read: %+v", got)
			}
		}()
	}
	wg.Wait()
	var got payload
	if !c.Load(key, &got) || len(got.Times) != 1 || got.Times[0] != 42 {
		t.Fatalf("final read failed: %+v", got)
	}
}

// TestPruneLRU: Prune deletes least-recently-used entries first (mtime,
// refreshed by Load hits), stops once under the cap, and skips temp files.
func TestPruneLRU(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 4)
	for i := range keys {
		keys[i] = Key("run", payload{Name: fmt.Sprintf("p%d", i)})
		c.Store(keys[i], payload{Name: fmt.Sprintf("p%d", i), Times: []int64{1, 2, 3}})
	}
	var size int64
	var paths []string
	filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			fi, _ := d.Info()
			size += fi.Size()
			paths = append(paths, p)
		}
		return nil
	})
	if len(paths) != 4 {
		t.Fatalf("stored %d files, want 4", len(paths))
	}
	per := size / 4

	// Age entries 0..3 oldest-first, then touch entry 0 via a Load hit so
	// it becomes the most recently used.
	for i, k := range keys {
		mt := time.Now().Add(-time.Duration(10-i) * time.Minute)
		if err := os.Chtimes(c.path(k), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	var got payload
	if !c.Load(keys[0], &got) {
		t.Fatal("load miss")
	}

	// Cap at ~2 entries: the two oldest non-touched entries (1, 2) go.
	st, err := c.Prune(2 * per)
	if err != nil {
		t.Fatal(err)
	}
	if st.RemovedFiles != 2 || st.RemainingBytes > 2*per {
		t.Fatalf("prune stats %+v, want 2 files removed under %d bytes", st, 2*per)
	}
	for i, k := range keys {
		hit := c.Load(k, &got)
		want := i == 0 || i == 3
		if hit != want {
			t.Fatalf("entry %d present=%v, want %v", i, hit, want)
		}
	}

	// Prune to zero clears everything; a nil cache is inert.
	st, err = c.Prune(0)
	if err != nil || st.RemainingBytes != 0 {
		t.Fatalf("full prune: %v %+v", err, st)
	}
	var nilCache *Cache
	if _, err := nilCache.Prune(0); err != nil {
		t.Fatal("nil cache prune errored")
	}
}
