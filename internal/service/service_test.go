package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gals/internal/experiment"
	"gals/internal/resultcache"
	"gals/internal/sweep"
)

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestRunRequestValidation(t *testing.T) {
	cases := []RunRequest{
		{},                              // missing bench
		{Bench: "no-such-benchmark"},    // unknown bench
		{Bench: "gcc", Mode: "quantum"}, // unknown mode
		{Bench: "gcc", Window: -5},      // negative window
		{Bench: "gcc", JitterFrac: 0.5}, // jitter out of range
		{Bench: "gcc", Mode: "sync", ICache: "nope"}, // unknown i-cache
		{Bench: "gcc", IntIQ: 17},                    // invalid queue size
	}
	for _, req := range cases {
		if _, err := req.normalize(); err == nil {
			t.Errorf("request %+v validated, want error", req)
		}
	}
	if n, err := (RunRequest{Bench: "gcc"}).normalize(); err != nil {
		t.Fatalf("minimal request rejected: %v", err)
	} else if n.Mode != "phase" || n.Window != 100_000 || n.Seed != 42 || n.PLLScale != 0.1 {
		t.Errorf("defaults not resolved: %+v", n)
	}
}

func TestRunAndPersistentCacheAcrossServices(t *testing.T) {
	dir := t.TempDir()
	req := RunRequest{Bench: "gcc", Mode: "phase", Window: 3_000}

	s1 := newTestService(t, Config{CacheDir: dir, Workers: 2})
	r1, err := s1.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached || r1.TimeFS <= 0 || r1.Instructions != 3_000 {
		t.Fatalf("cold run wrong: %+v", r1)
	}
	if got := s1.Stats().Simulations; got != 1 {
		t.Fatalf("cold run executed %d simulations, want 1", got)
	}
	// Same request again within the same service: persistent hit, no sim.
	r1b, err := s1.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !r1b.Cached || s1.Stats().Simulations != 1 {
		t.Fatalf("warm same-service run re-simulated: %+v", r1b)
	}
	s1.Close()

	// A fresh service on the same directory models a second process.
	s2 := newTestService(t, Config{CacheDir: dir, Workers: 2})
	r2, err := s2.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatalf("second process missed the persistent cache: %+v", r2)
	}
	if r2.TimeFS != r1.TimeFS || r2.Instructions != r1.Instructions {
		t.Fatalf("cached result differs: %+v vs %+v", r2, r1)
	}
	if got := s2.Stats().Simulations; got != 0 {
		t.Fatalf("second process ran %d simulations, want 0", got)
	}
	// Priority must not split the cache key.
	r3, err := s2.Run(context.Background(), RunRequest{Bench: "gcc", Mode: "phase", Window: 3_000, Priority: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Cached || s2.Stats().Simulations != 0 {
		t.Fatal("priority changed the cache key")
	}
}

func TestConcurrentIdenticalRunsDedupeToOneSimulation(t *testing.T) {
	s := newTestService(t, Config{CacheDir: t.TempDir(), Workers: 4})
	req := RunRequest{Bench: "art", Mode: "phase", Window: 20_000}

	const callers = 8
	var wg sync.WaitGroup
	results := make([]RunResult, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Run(context.Background(), req)
		}(i)
	}
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
	}
	st := s.Stats()
	if st.Simulations != 1 {
		t.Fatalf("%d concurrent identical requests ran %d simulations, want 1", callers, st.Simulations)
	}
	for i := 1; i < callers; i++ {
		if results[i].TimeFS != results[0].TimeFS {
			t.Fatalf("caller %d saw a different result", i)
		}
	}
	if st.DedupHits == 0 && st.Cache.Hits == 0 {
		t.Fatalf("no dedup or cache hit recorded: %+v", st)
	}
}

// TestSuiteSecondInvocationServedFromDisk is the PR's acceptance check: a
// second cmd/experiments-equivalent invocation (fresh process-local memo,
// fresh service, same cache directory) must be served entirely from the
// persistent cache — zero new pipeline computations, verified through the
// same counter the stats endpoint reports.
func TestSuiteSecondInvocationServedFromDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("suite pipeline in -short mode")
	}
	dir := t.TempDir()
	req := SuiteRequest{Window: 1_200}

	s1 := newTestService(t, Config{CacheDir: dir})
	before := s1.Stats().SuiteComputations
	sum1, err := s1.Suite(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	after := s1.Stats().SuiteComputations
	if after != before+1 {
		t.Fatalf("cold suite ran %d pipelines, want 1", after-before)
	}
	if len(sum1.Benchmarks) != 40 || sum1.BestSync == "" {
		t.Fatalf("suite summary malformed: %+v", sum1)
	}
	s1.Close()

	// "Second process": drop the process-local memo, open a new service on
	// the same directory.
	experiment.ResetSuiteMemo()
	s2 := newTestService(t, Config{CacheDir: dir})
	sum2, err := s2.Suite(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().SuiteComputations; got != after {
		t.Fatalf("second invocation recomputed the pipeline (%d -> %d computations)", after, got)
	}
	if got := s2.Stats().Simulations; got != 0 {
		t.Fatalf("second invocation ran %d simulations, want 0", got)
	}
	if !reflect.DeepEqual(sum1, sum2) {
		t.Fatalf("persistent suite differs:\n%+v\nvs\n%+v", sum1, sum2)
	}
	// The figure6 experiment derives from the same restored memo entry.
	tbl, err := s2.Experiment(context.Background(), ExperimentRequest{ID: "figure6", SuiteRequest: req})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 40 {
		t.Fatalf("figure6 from restored memo has %d rows, want 40", len(tbl.Rows))
	}
	if got := s2.Stats().SuiteComputations; got != after {
		t.Fatal("figure6 after restore recomputed the pipeline")
	}
}

// TestSuiteRequestValidation: out-of-range suite parameters must come back
// as errors — before this check existed, a bad jitter reached clock.New on
// a worker goroutine and panicked the whole server.
func TestSuiteRequestValidation(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	for _, req := range []SuiteRequest{
		{JitterFrac: 0.5},
		{JitterFrac: -0.1},
		{Window: -100},
		{PLLScale: -1},
	} {
		if _, err := s.Suite(context.Background(), req); err == nil {
			t.Errorf("Suite(%+v) succeeded, want validation error", req)
		}
		if _, err := s.Experiment(context.Background(), ExperimentRequest{ID: "figure6", SuiteRequest: req}); err == nil {
			t.Errorf("Experiment(%+v) succeeded, want validation error", req)
		}
	}
}

// TestSharedPoolBoundsMixedLoad is the PR's scheduler acceptance check,
// meant to run under -race: concurrent sweeps, single runs and batches all
// share the service's one cell pool, so the number of simultaneously
// executing cells never exceeds the configured workers, nothing errors, and
// every response is consistent with its duplicates.
func TestSharedPoolBoundsMixedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-load sweep in -short mode")
	}
	const workers = 3
	s := newTestService(t, Config{CacheDir: t.TempDir(), Workers: workers})

	// Sample the in-flight gauge while the load runs: the work-stealing
	// pool is the only execution path, so it can never exceed workers.
	stop := make(chan struct{})
	var maxInFlight atomic.Int64
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if n := s.pool.InFlight(); n > maxInFlight.Load() {
					maxInFlight.Store(n)
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	// Two sweeps (one duplicated — must dedup), a stream of runs, a batch.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.Sweep(context.Background(), SweepRequest{Space: "adaptive", Bench: "art", Window: 700})
			if err != nil {
				errc <- err
				return
			}
			if res.Configs != 256 || len(res.PerApp) != 1 {
				errc <- fmt.Errorf("sweep result malformed: %+v", res)
			}
		}()
	}
	runResults := make([]RunResult, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bench := []string{"gcc", "art", "gcc"}[i%3]
			r, err := s.Run(context.Background(), RunRequest{Bench: bench, Window: 2_000, Priority: i % 2 * 10})
			if err != nil {
				errc <- err
				return
			}
			runResults[i] = r
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		items := s.RunBatch(context.Background(), []RunRequest{
			{Bench: "em3d", Window: 1_500},
			{Bench: "em3d", Window: 1_500}, // same recording lane
			{Bench: "apsi", Window: 1_500},
			{Bench: "does-not-exist"},
		})
		for i, it := range items[:3] {
			if it.Result == nil {
				errc <- fmt.Errorf("batch item %d failed: %s", i, it.Error)
			}
		}
		if items[3].Error == "" {
			errc <- fmt.Errorf("invalid batch item succeeded")
		}
		if items[0].Result.TimeFS != items[1].Result.TimeFS {
			errc <- fmt.Errorf("same-lane batch items disagree")
		}
	}()
	wg.Wait()
	close(stop)
	sampler.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	if got := maxInFlight.Load(); got > workers {
		t.Fatalf("observed %d cells in flight, pool is bounded at %d", got, workers)
	}
	// Identical runs must agree bit-for-bit regardless of scheduling.
	if runResults[0].TimeFS != runResults[2].TimeFS {
		t.Fatal("identical concurrent runs diverged")
	}
	st := s.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("work left behind: %+v", st)
	}
	if st.Recordings.Recorded == 0 {
		t.Fatalf("no recordings written by the mixed load: %+v", st.Recordings)
	}
}

// TestCachePruneEndpointAndCap: the admin endpoint prunes the persistent
// cache LRU-first, and a service configured with CacheMaxBytes prunes at
// startup.
func TestCachePruneEndpointAndCap(t *testing.T) {
	dir := t.TempDir()
	s := newTestService(t, Config{CacheDir: dir, Workers: 2})
	if _, err := s.Run(context.Background(), RunRequest{Bench: "gcc", Window: 2_000}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/cache/prune", "application/json", strings.NewReader(`{"max_bytes": 0}`))
	if err != nil {
		t.Fatal(err)
	}
	var st resultcache.PruneStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || st.RemovedFiles == 0 || st.RemainingBytes != 0 {
		t.Fatalf("prune: %d %+v", resp.StatusCode, st)
	}
	// Pruned result is recomputed, not an error.
	r, err := s.Run(context.Background(), RunRequest{Bench: "gcc", Window: 2_000})
	if err != nil || r.TimeFS <= 0 {
		t.Fatalf("run after prune: %v %+v", err, r)
	}

	// A fresh service with a tiny cap prunes at startup.
	s.Close()
	s2 := newTestService(t, Config{CacheDir: dir, Workers: 1, CacheMaxBytes: 1})
	if got := dirSize(t, dir); got > 1 {
		t.Fatalf("startup prune left %d bytes, cap 1", got)
	}
	_ = s2
}

func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			if fi, err := d.Info(); err == nil {
				total += fi.Size()
			}
		}
		return nil
	})
	return total
}

// TestPoolSurvivesPanickingCellThroughService: a panic inside a cell
// becomes the request's error; later requests keep working (the contract
// the PR-2 scheduler test pinned, now via the shared pool).
func TestPoolSurvivesPanickingCellThroughService(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	if err := s.pool.Execute(PriorityNormal, [][]func(){{func() { panic("boom") }}}); err == nil ||
		!strings.Contains(err.Error(), "boom") {
		t.Fatalf("panicking cell returned %v, want wrapped panic", err)
	}
	if r, err := s.Run(context.Background(), RunRequest{Bench: "gcc", Window: 1_000}); err != nil || r.TimeFS <= 0 {
		t.Fatalf("service dead after cell panic: %v %+v", err, r)
	}
}

// TestCloseRestoresPreviousPersistStore: a service taking over the global
// persist hooks must hand back whatever was installed before it (e.g. by
// gals.UsePersistentCache), not wipe it.
func TestCloseRestoresPreviousPersistStore(t *testing.T) {
	prior, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if p := experiment.SetSuitePersist(prior); p != nil {
		defer experiment.SetSuitePersist(p)
	} else {
		defer experiment.SetSuitePersist(nil)
	}
	sweep.SetPersist(prior)
	defer sweep.SetPersist(nil)

	s, err := New(Config{CacheDir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	if got := experiment.SetSuitePersist(prior); got != resultcache.Store(prior) {
		t.Fatalf("suite persist after Close = %v, want the prior store restored", got)
	}
	if got := sweep.SetPersist(prior); got != resultcache.Store(prior) {
		t.Fatalf("sweep persist after Close = %v, want the prior store restored", got)
	}
}

// TestQueueFullSurfacesAs503: a service whose cell queue is saturated
// rejects new requests with ErrQueueFull, which HTTP maps to 503. (The
// priority/backpressure ordering contract itself is pinned by the pool's
// own tests in internal/sweep.)
func TestQueueFullSurfacesAs503(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 1})
	gate := make(chan struct{})
	defer func() { close(gate) }()
	started := make(chan struct{})
	go s.pool.Execute(PriorityNormal, [][]func(){{func() { close(started); <-gate }}})
	<-started
	// Worker occupied; fill the 1-cell queue, then overflow it.
	go s.pool.Execute(PriorityNormal, [][]func(){{func() {}}})
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.Pending() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := s.Run(context.Background(), RunRequest{Bench: "gcc", Window: 1_000})
	if err != ErrQueueFull {
		t.Fatalf("overflowing run returned %v, want ErrQueueFull", err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	blob, _ := json.Marshal(RunRequest{Bench: "art", Window: 1_000})
	resp, err := http.Post(srv.URL+"/v1/run", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queue-full HTTP status %d, want 503", resp.StatusCode)
	}
}

func TestRunBatchShapesAndErrors(t *testing.T) {
	s := newTestService(t, Config{CacheDir: t.TempDir(), Workers: 2})
	items := s.RunBatch(context.Background(), []RunRequest{
		{Bench: "gcc", Window: 2_000},
		{Bench: "does-not-exist"},
		{Bench: "gcc", Window: 2_000}, // identical to the first: shared/cached
	})
	if len(items) != 3 {
		t.Fatalf("got %d items, want 3", len(items))
	}
	if items[0].Result == nil || items[0].Error != "" {
		t.Fatalf("item 0 failed: %+v", items[0])
	}
	if items[1].Result != nil || items[1].Error == "" {
		t.Fatalf("item 1 should have failed: %+v", items[1])
	}
	if items[2].Result == nil || items[2].Result.TimeFS != items[0].Result.TimeFS {
		t.Fatalf("identical batch entries disagree: %+v vs %+v", items[2], items[0])
	}
	if got := s.Stats().Simulations; got != 1 {
		t.Fatalf("batch ran %d simulations, want 1", got)
	}
}

// TestRunBatchDedupsWithoutCache: identical batch items must collapse to
// one simulation even with persistence disabled — the lane planner runs
// them back-to-back (no in-flight twin for singleflight), so the lane
// itself reuses the first result.
func TestRunBatchDedupsWithoutCache(t *testing.T) {
	s := newTestService(t, Config{Workers: 2}) // no CacheDir
	items := s.RunBatch(context.Background(), []RunRequest{
		{Bench: "gcc", Window: 2_000},
		{Bench: "gcc", Window: 2_000, Priority: 5}, // same result, other priority
		{Bench: "gcc", Window: 2_000},
	})
	for i, it := range items {
		if it.Result == nil {
			t.Fatalf("item %d failed: %s", i, it.Error)
		}
		if it.Result.TimeFS != items[0].Result.TimeFS {
			t.Fatalf("item %d diverged", i)
		}
	}
	if !items[1].Result.Deduped || !items[2].Result.Deduped {
		t.Fatalf("duplicates not marked deduped: %+v %+v", items[1].Result, items[2].Result)
	}
	if got := s.Stats().Simulations; got != 1 {
		t.Fatalf("cacheless batch ran %d simulations, want 1", got)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := newTestService(t, Config{CacheDir: t.TempDir(), Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) (*http.Response, []byte) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.Bytes()
	}
	post := func(path string, body any) (*http.Response, []byte) {
		blob, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.Bytes()
	}

	if resp, body := get("/healthz"); resp.StatusCode != 200 || !bytes.Contains(body, []byte("ok")) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	resp, body := get("/v1/workloads")
	if resp.StatusCode != 200 {
		t.Fatalf("workloads: %d %s", resp.StatusCode, body)
	}
	var wls []map[string]string
	if err := json.Unmarshal(body, &wls); err != nil || len(wls) != 40 {
		t.Fatalf("workloads decode: %v (%d entries)", err, len(wls))
	}

	resp, body = post("/v1/run", RunRequest{Bench: "gcc", Window: 2_000})
	if resp.StatusCode != 200 {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}
	var rr RunResult
	if err := json.Unmarshal(body, &rr); err != nil || rr.TimeFS <= 0 {
		t.Fatalf("run decode: %v %+v", err, rr)
	}

	if resp, body := post("/v1/run", RunRequest{Bench: "gcc", Mode: "quantum"}); resp.StatusCode != 400 || !bytes.Contains(body, []byte("error")) {
		t.Fatalf("bad mode: %d %s", resp.StatusCode, body)
	}
	if resp, _ := post("/v1/batch", map[string]any{"runs": []RunRequest{}}); resp.StatusCode != 400 {
		t.Fatalf("empty batch accepted: %d", resp.StatusCode)
	}
	if resp, body := post("/v1/experiment", map[string]any{"id": "no-such-figure"}); resp.StatusCode != 400 {
		t.Fatalf("unknown experiment: %d %s", resp.StatusCode, body)
	}

	resp, body = post("/v1/experiment", map[string]any{"id": "table1"})
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte("Rows")) {
		t.Fatalf("table1: %d %s", resp.StatusCode, body)
	}

	resp, body = get("/v1/stats")
	if resp.StatusCode != 200 {
		t.Fatalf("stats: %d %s", resp.StatusCode, body)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Simulations != 1 || st.Workers != 2 {
		t.Fatalf("stats content: %+v", st)
	}
}

// TestHTTPConcurrentIdenticalRequests drives the dedup acceptance check
// through the real HTTP surface: identical concurrent POST /v1/run bodies
// collapse to one underlying simulation.
func TestHTTPConcurrentIdenticalRequests(t *testing.T) {
	s := newTestService(t, Config{CacheDir: t.TempDir(), Workers: 4})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	blob, _ := json.Marshal(RunRequest{Bench: "em3d", Mode: "phase", Window: 15_000})
	const callers = 6
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/run", "application/json", bytes.NewReader(blob))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.Stats().Simulations; got != 1 {
		t.Fatalf("%d identical HTTP requests ran %d simulations, want 1", callers, got)
	}
}

func TestSweepSmallAdaptiveSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	s := newTestService(t, Config{CacheDir: t.TempDir()})
	res, err := s.Sweep(context.Background(), SweepRequest{Space: "adaptive", Bench: "art", Window: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Configs != 256 || res.Benchmarks != 1 || res.Best == "" || len(res.PerApp) != 1 {
		t.Fatalf("sweep result malformed: %+v", res)
	}
	before := s.Stats().SweepComputations

	// Same sweep again: the measure layer serves the matrix from disk.
	res2, err := s.Sweep(context.Background(), SweepRequest{Space: "adaptive", Bench: "art", Window: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().SweepComputations; got != before {
		t.Fatalf("warm sweep recomputed (%d -> %d)", before, got)
	}
	if res2.Best != res.Best || res2.PerApp[0].TimeFS != res.PerApp[0].TimeFS {
		t.Fatalf("warm sweep differs: %+v vs %+v", res2, res)
	}
}
