package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"gals/internal/experiment"
	"gals/internal/resultcache"
	"gals/internal/sweep"
)

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestRunRequestValidation(t *testing.T) {
	cases := []RunRequest{
		{},                              // missing bench
		{Bench: "no-such-benchmark"},    // unknown bench
		{Bench: "gcc", Mode: "quantum"}, // unknown mode
		{Bench: "gcc", Window: -5},      // negative window
		{Bench: "gcc", JitterFrac: 0.5}, // jitter out of range
		{Bench: "gcc", Mode: "sync", ICache: "nope"}, // unknown i-cache
		{Bench: "gcc", IntIQ: 17},                    // invalid queue size
	}
	for _, req := range cases {
		if _, err := req.normalize(); err == nil {
			t.Errorf("request %+v validated, want error", req)
		}
	}
	if n, err := (RunRequest{Bench: "gcc"}).normalize(); err != nil {
		t.Fatalf("minimal request rejected: %v", err)
	} else if n.Mode != "phase" || n.Window != 100_000 || n.Seed != 42 || n.PLLScale != 0.1 {
		t.Errorf("defaults not resolved: %+v", n)
	}
}

func TestRunAndPersistentCacheAcrossServices(t *testing.T) {
	dir := t.TempDir()
	req := RunRequest{Bench: "gcc", Mode: "phase", Window: 3_000}

	s1 := newTestService(t, Config{CacheDir: dir, Workers: 2})
	r1, err := s1.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached || r1.TimeFS <= 0 || r1.Instructions != 3_000 {
		t.Fatalf("cold run wrong: %+v", r1)
	}
	if got := s1.Stats().Simulations; got != 1 {
		t.Fatalf("cold run executed %d simulations, want 1", got)
	}
	// Same request again within the same service: persistent hit, no sim.
	r1b, err := s1.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if !r1b.Cached || s1.Stats().Simulations != 1 {
		t.Fatalf("warm same-service run re-simulated: %+v", r1b)
	}
	s1.Close()

	// A fresh service on the same directory models a second process.
	s2 := newTestService(t, Config{CacheDir: dir, Workers: 2})
	r2, err := s2.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatalf("second process missed the persistent cache: %+v", r2)
	}
	if r2.TimeFS != r1.TimeFS || r2.Instructions != r1.Instructions {
		t.Fatalf("cached result differs: %+v vs %+v", r2, r1)
	}
	if got := s2.Stats().Simulations; got != 0 {
		t.Fatalf("second process ran %d simulations, want 0", got)
	}
	// Priority must not split the cache key.
	r3, err := s2.Run(RunRequest{Bench: "gcc", Mode: "phase", Window: 3_000, Priority: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Cached || s2.Stats().Simulations != 0 {
		t.Fatal("priority changed the cache key")
	}
}

func TestConcurrentIdenticalRunsDedupeToOneSimulation(t *testing.T) {
	s := newTestService(t, Config{CacheDir: t.TempDir(), Workers: 4})
	req := RunRequest{Bench: "art", Mode: "phase", Window: 20_000}

	const callers = 8
	var wg sync.WaitGroup
	results := make([]RunResult, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Run(req)
		}(i)
	}
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
	}
	st := s.Stats()
	if st.Simulations != 1 {
		t.Fatalf("%d concurrent identical requests ran %d simulations, want 1", callers, st.Simulations)
	}
	for i := 1; i < callers; i++ {
		if results[i].TimeFS != results[0].TimeFS {
			t.Fatalf("caller %d saw a different result", i)
		}
	}
	if st.DedupHits == 0 && st.Cache.Hits == 0 {
		t.Fatalf("no dedup or cache hit recorded: %+v", st)
	}
}

// TestSuiteSecondInvocationServedFromDisk is the PR's acceptance check: a
// second cmd/experiments-equivalent invocation (fresh process-local memo,
// fresh service, same cache directory) must be served entirely from the
// persistent cache — zero new pipeline computations, verified through the
// same counter the stats endpoint reports.
func TestSuiteSecondInvocationServedFromDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("suite pipeline in -short mode")
	}
	dir := t.TempDir()
	req := SuiteRequest{Window: 1_200}

	s1 := newTestService(t, Config{CacheDir: dir})
	before := s1.Stats().SuiteComputations
	sum1, err := s1.Suite(req)
	if err != nil {
		t.Fatal(err)
	}
	after := s1.Stats().SuiteComputations
	if after != before+1 {
		t.Fatalf("cold suite ran %d pipelines, want 1", after-before)
	}
	if len(sum1.Benchmarks) != 40 || sum1.BestSync == "" {
		t.Fatalf("suite summary malformed: %+v", sum1)
	}
	s1.Close()

	// "Second process": drop the process-local memo, open a new service on
	// the same directory.
	experiment.ResetSuiteMemo()
	s2 := newTestService(t, Config{CacheDir: dir})
	sum2, err := s2.Suite(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().SuiteComputations; got != after {
		t.Fatalf("second invocation recomputed the pipeline (%d -> %d computations)", after, got)
	}
	if got := s2.Stats().Simulations; got != 0 {
		t.Fatalf("second invocation ran %d simulations, want 0", got)
	}
	if !reflect.DeepEqual(sum1, sum2) {
		t.Fatalf("persistent suite differs:\n%+v\nvs\n%+v", sum1, sum2)
	}
	// The figure6 experiment derives from the same restored memo entry.
	tbl, err := s2.Experiment(ExperimentRequest{ID: "figure6", SuiteRequest: req})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 40 {
		t.Fatalf("figure6 from restored memo has %d rows, want 40", len(tbl.Rows))
	}
	if got := s2.Stats().SuiteComputations; got != after {
		t.Fatal("figure6 after restore recomputed the pipeline")
	}
}

// TestSuiteRequestValidation: out-of-range suite parameters must come back
// as errors — before this check existed, a bad jitter reached clock.New on
// a worker goroutine and panicked the whole server.
func TestSuiteRequestValidation(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	for _, req := range []SuiteRequest{
		{JitterFrac: 0.5},
		{JitterFrac: -0.1},
		{Window: -100},
		{PLLScale: -1},
	} {
		if _, err := s.Suite(req); err == nil {
			t.Errorf("Suite(%+v) succeeded, want validation error", req)
		}
		if _, err := s.Experiment(ExperimentRequest{ID: "figure6", SuiteRequest: req}); err == nil {
			t.Errorf("Experiment(%+v) succeeded, want validation error", req)
		}
	}
}

// TestSchedulerSurvivesPanickingJob: a panic inside a job becomes the
// submitting caller's error; the worker (and later jobs) keep running.
func TestSchedulerSurvivesPanickingJob(t *testing.T) {
	s := newScheduler(1, 8)
	defer s.close()

	err := s.do(PriorityNormal, func() { panic("boom") })
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panicking job returned %v, want wrapped panic", err)
	}
	ran := false
	if err := s.do(PriorityNormal, func() { ran = true }); err != nil || !ran {
		t.Fatalf("worker dead after panic: err=%v ran=%v", err, ran)
	}
}

// TestCloseRestoresPreviousPersistStore: a service taking over the global
// persist hooks must hand back whatever was installed before it (e.g. by
// gals.UsePersistentCache), not wipe it.
func TestCloseRestoresPreviousPersistStore(t *testing.T) {
	prior, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if p := experiment.SetSuitePersist(prior); p != nil {
		defer experiment.SetSuitePersist(p)
	} else {
		defer experiment.SetSuitePersist(nil)
	}
	sweep.SetPersist(prior)
	defer sweep.SetPersist(nil)

	s, err := New(Config{CacheDir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	if got := experiment.SetSuitePersist(prior); got != resultcache.Store(prior) {
		t.Fatalf("suite persist after Close = %v, want the prior store restored", got)
	}
	if got := sweep.SetPersist(prior); got != resultcache.Store(prior) {
		t.Fatalf("sweep persist after Close = %v, want the prior store restored", got)
	}
}

func TestSchedulerPriorityAndBackpressure(t *testing.T) {
	s := newScheduler(1, 4)
	defer s.close()

	gate := make(chan struct{})
	started := make(chan struct{})
	if err := s.submit(PriorityNormal, func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started // worker is now occupied; everything below queues

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	enqueue := func(name string, pri Priority) {
		wg.Add(1)
		if err := s.submit(pri, func() {
			defer wg.Done()
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	enqueue("low", PriorityLow)
	enqueue("normal-1", PriorityNormal)
	enqueue("high", PriorityHigh)
	enqueue("normal-2", PriorityNormal)

	// Queue is at its bound of 4 now.
	if err := s.submit(PriorityHigh, func() {}); err != ErrQueueFull {
		t.Fatalf("over-bound submit returned %v, want ErrQueueFull", err)
	}
	if s.rejected.Load() != 1 {
		t.Fatalf("rejected = %d, want 1", s.rejected.Load())
	}

	close(gate)
	wg.Wait()
	want := []string{"high", "normal-1", "normal-2", "low"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("execution order %v, want %v", order, want)
	}
}

func TestRunBatchShapesAndErrors(t *testing.T) {
	s := newTestService(t, Config{CacheDir: t.TempDir(), Workers: 2})
	items := s.RunBatch([]RunRequest{
		{Bench: "gcc", Window: 2_000},
		{Bench: "does-not-exist"},
		{Bench: "gcc", Window: 2_000}, // identical to the first: shared/cached
	})
	if len(items) != 3 {
		t.Fatalf("got %d items, want 3", len(items))
	}
	if items[0].Result == nil || items[0].Error != "" {
		t.Fatalf("item 0 failed: %+v", items[0])
	}
	if items[1].Result != nil || items[1].Error == "" {
		t.Fatalf("item 1 should have failed: %+v", items[1])
	}
	if items[2].Result == nil || items[2].Result.TimeFS != items[0].Result.TimeFS {
		t.Fatalf("identical batch entries disagree: %+v vs %+v", items[2], items[0])
	}
	if got := s.Stats().Simulations; got != 1 {
		t.Fatalf("batch ran %d simulations, want 1", got)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := newTestService(t, Config{CacheDir: t.TempDir(), Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) (*http.Response, []byte) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.Bytes()
	}
	post := func(path string, body any) (*http.Response, []byte) {
		blob, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.Bytes()
	}

	if resp, body := get("/healthz"); resp.StatusCode != 200 || !bytes.Contains(body, []byte("ok")) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	resp, body := get("/v1/workloads")
	if resp.StatusCode != 200 {
		t.Fatalf("workloads: %d %s", resp.StatusCode, body)
	}
	var wls []map[string]string
	if err := json.Unmarshal(body, &wls); err != nil || len(wls) != 40 {
		t.Fatalf("workloads decode: %v (%d entries)", err, len(wls))
	}

	resp, body = post("/v1/run", RunRequest{Bench: "gcc", Window: 2_000})
	if resp.StatusCode != 200 {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}
	var rr RunResult
	if err := json.Unmarshal(body, &rr); err != nil || rr.TimeFS <= 0 {
		t.Fatalf("run decode: %v %+v", err, rr)
	}

	if resp, body := post("/v1/run", RunRequest{Bench: "gcc", Mode: "quantum"}); resp.StatusCode != 400 || !bytes.Contains(body, []byte("error")) {
		t.Fatalf("bad mode: %d %s", resp.StatusCode, body)
	}
	if resp, _ := post("/v1/batch", map[string]any{"runs": []RunRequest{}}); resp.StatusCode != 400 {
		t.Fatalf("empty batch accepted: %d", resp.StatusCode)
	}
	if resp, body := post("/v1/experiment", map[string]any{"id": "no-such-figure"}); resp.StatusCode != 400 {
		t.Fatalf("unknown experiment: %d %s", resp.StatusCode, body)
	}

	resp, body = post("/v1/experiment", map[string]any{"id": "table1"})
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte("Rows")) {
		t.Fatalf("table1: %d %s", resp.StatusCode, body)
	}

	resp, body = get("/v1/stats")
	if resp.StatusCode != 200 {
		t.Fatalf("stats: %d %s", resp.StatusCode, body)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Simulations != 1 || st.Workers != 2 {
		t.Fatalf("stats content: %+v", st)
	}
}

// TestHTTPConcurrentIdenticalRequests drives the dedup acceptance check
// through the real HTTP surface: identical concurrent POST /v1/run bodies
// collapse to one underlying simulation.
func TestHTTPConcurrentIdenticalRequests(t *testing.T) {
	s := newTestService(t, Config{CacheDir: t.TempDir(), Workers: 4})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	blob, _ := json.Marshal(RunRequest{Bench: "em3d", Mode: "phase", Window: 15_000})
	const callers = 6
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/run", "application/json", bytes.NewReader(blob))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.Stats().Simulations; got != 1 {
		t.Fatalf("%d identical HTTP requests ran %d simulations, want 1", callers, got)
	}
}

func TestSweepSmallAdaptiveSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	s := newTestService(t, Config{CacheDir: t.TempDir()})
	res, err := s.Sweep(SweepRequest{Space: "adaptive", Bench: "art", Window: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Configs != 256 || res.Benchmarks != 1 || res.Best == "" || len(res.PerApp) != 1 {
		t.Fatalf("sweep result malformed: %+v", res)
	}
	before := s.Stats().SweepComputations

	// Same sweep again: the measure layer serves the matrix from disk.
	res2, err := s.Sweep(SweepRequest{Space: "adaptive", Bench: "art", Window: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().SweepComputations; got != before {
		t.Fatalf("warm sweep recomputed (%d -> %d)", before, got)
	}
	if res2.Best != res.Best || res2.PerApp[0].TimeFS != res.PerApp[0].TimeFS {
		t.Fatalf("warm sweep differs: %+v vs %+v", res2, res)
	}
}
