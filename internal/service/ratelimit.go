package service

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// rateLimiter is a per-client token-bucket admission controller for the
// compute endpoints: each client (bearer token, or remote host when
// unauthenticated) accrues Config.RateLimit tokens per second up to a burst
// cap, and a request that finds the bucket empty is refused with 429 and a
// Retry-After telling the client when a token will exist. Hand-rolled (no
// golang.org/x/time dependency); a single mutex is plenty at request rates.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu        sync.Mutex
	buckets   map[string]*bucket
	lastSweep time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst <= 0 {
		burst = int(math.Ceil(rate))
		if burst < 1 {
			burst = 1
		}
	}
	return &rateLimiter{
		rate: rate, burst: float64(burst),
		buckets: make(map[string]*bucket), lastSweep: time.Now(),
	}
}

// allow takes one token from key's bucket, reporting success and, on
// refusal, how long until the next token accrues.
func (l *rateLimiter) allow(key string, now time.Time) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Forget buckets idle long enough to have refilled completely, so the
	// map stays bounded by the recently active client set rather than
	// growing with every token ever presented.
	if now.Sub(l.lastSweep) > time.Minute {
		full := time.Duration(l.burst / l.rate * float64(time.Second))
		for k, b := range l.buckets {
			if now.Sub(b.last) > full {
				delete(l.buckets, k)
			}
		}
		l.lastSweep = now
	}
	b := l.buckets[key]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// limit is the admission-control middleware: POST /v1/* (the endpoints that
// consume simulation capacity) spends one token per request; reads —
// /healthz, stats, the registries — stay free so an operator can observe a
// saturated server.
func (s *Service) limit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		if ok, wait := s.limiter.allow(clientKey(r), time.Now()); !ok {
			secs := int(math.Ceil(wait.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			s.rateLimited.Inc()
			writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "rate limit exceeded"})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// clientKey identifies the caller for admission control: the bearer token
// when one was presented (authentication has already run, so a present
// token is a valid one), else the remote host — so one flooding token
// cannot starve the others, closing the per-token rate-limit follow-up.
func clientKey(r *http.Request) string {
	if tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer "); ok && tok != "" {
		return "tok:" + tok
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return "addr:" + r.RemoteAddr
	}
	return "addr:" + host
}
