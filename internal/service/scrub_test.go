// Startup-recovery tests for the service's scrub pass — the layer galsd's
// -scrub flag drives before serving.
package service_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"gals/internal/service"
)

// TestServiceScrubRecoversCrashDebris seeds a cache directory with the
// debris a crashed galsd leaves behind — writer temps, a recorder lock, an
// undecodable result blob, a truncated recording slab — and pins the
// aggregate recovery pass: everything is reaped or quarantined, the counts
// surface in the report and in /v1/stats, and the store serves normally
// afterwards.
func TestServiceScrubRecoversCrashDebris(t *testing.T) {
	dir := t.TempDir()

	// A first service lifetime leaves real state behind.
	svc1, err := service.New(service.Config{CacheDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	req := service.RunRequest{Bench: "gcc", Window: 5_000}
	want, err := svc1.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	svc1.Close()

	// Crash debris on top of it.
	kindDir := filepath.Join(dir, "runres", "zz")
	os.MkdirAll(kindDir, 0o755)
	os.WriteFile(filepath.Join(kindDir, ".blob.json.tmp9"), []byte("partial"), 0o644)
	os.WriteFile(filepath.Join(kindDir, "cafe.json"), []byte("BAD {{{"), 0o644)
	recDir := filepath.Join(dir, "recordings", "zz")
	os.MkdirAll(recDir, 0o755)
	os.WriteFile(filepath.Join(recDir, "held.lock"), []byte(""), 0o644)
	os.WriteFile(filepath.Join(recDir, "torn.rec"), []byte("GALS"), 0o644)

	svc2 := newChaosService(t, service.Config{CacheDir: dir, Workers: 2})
	rep, err := svc2.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache.TempFiles != 1 || rep.Cache.Quarantined != 1 {
		t.Fatalf("cache scrub %+v, want 1 temp reaped and 1 blob quarantined", rep.Cache)
	}
	if rep.Recordings.LockFiles != 1 || rep.Recordings.BadSlabs != 1 {
		t.Fatalf("recording scrub %+v, want 1 lock and 1 bad slab reaped", rep.Recordings)
	}
	if st := svc2.Stats(); st.ScrubQuarantined != 1 {
		t.Fatalf("Stats().ScrubQuarantined = %d, want 1", st.ScrubQuarantined)
	}

	// The scrubbed store still serves the surviving state.
	got, err := svc2.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("run after scrub: %v", err)
	}
	if !got.Cached {
		t.Fatal("healthy cached result lost by the scrub")
	}
	if !sameRun(want, got) {
		t.Fatal("post-scrub result differs from the original")
	}

	// Without persistence there is nothing to scrub — that's an error, not
	// a silent no-op, so a misconfigured -scrub run is visible.
	svc3 := newChaosService(t, service.Config{Workers: 1})
	if _, err := svc3.Scrub(); err == nil {
		t.Fatal("Scrub without a cache dir did not error")
	}
}
