package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestGracefulShutdownAgainstLiveListener exercises the SIGINT/SIGTERM path
// of cmd/galsd against a real listener: a request in flight when Shutdown
// starts must complete, the pool must be drained and closed afterwards, new
// work must be refused, and the final cache-prune pass must have enforced
// the configured byte bound.
func TestGracefulShutdownAgainstLiveListener(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{CacheDir: dir, Workers: 2, CacheMaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// An in-flight request during shutdown: start it, give it a moment to
	// reach the pool, then shut down concurrently.
	inflight := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/v1/run", "application/json",
			strings.NewReader(`{"bench":"gcc","window":50000}`))
		if err != nil {
			inflight <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			inflight <- fmt.Errorf("in-flight run returned %d", resp.StatusCode)
			return
		}
		var rr RunResult
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			inflight <- err
			return
		}
		if rr.TimeFS <= 0 {
			inflight <- fmt.Errorf("in-flight run produced no result: %+v", rr)
			return
		}
		inflight <- nil
	}()
	// Wait until the server has actually accepted the request.
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.InFlight() == 0 && s.pool.Pending() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx, srv); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request not drained: %v", err)
	}

	// Stopped accepting: new connections must fail.
	if _, err := (&net.Dialer{Timeout: time.Second}).Dial("tcp", ln.Addr().String()); err == nil {
		t.Error("listener still accepting after shutdown")
	}
	// Pool drained and closed: no pending or running cells, new work refused.
	if p, f := s.pool.Pending(), s.pool.InFlight(); p != 0 || f != 0 {
		t.Errorf("pool not drained: pending %d, in flight %d", p, f)
	}
	if _, err := s.Run(context.Background(), RunRequest{Bench: "gcc", Window: 1000}); err == nil {
		t.Error("service accepted work after shutdown")
	}
	// Final prune enforced the 1-byte bound: no result blobs remain (lock
	// and temp debris aside, which the prune skips while fresh).
	var blobs int
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") {
			blobs++
		}
		return nil
	})
	if blobs != 0 {
		t.Errorf("%d cache blobs survived the shutdown prune with a 1-byte bound", blobs)
	}
}

// TestShutdownWithoutServer: Shutdown with a nil server is Close plus the
// prune pass (galsd before the listener ever started).
func TestShutdownWithoutServer(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background(), nil); err != nil {
		t.Fatalf("nil-server shutdown: %v", err)
	}
	if _, err := s.Run(context.Background(), RunRequest{Bench: "gcc", Window: 1000}); err == nil {
		t.Error("service accepted work after shutdown")
	}
}
