package service

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// knownEndpoints bounds the endpoint label's cardinality: a scraper must
// never see one series per scanned garbage path, so anything outside the
// served surface is folded into "other".
var knownEndpoints = map[string]bool{
	"/healthz":        true,
	"/metrics":        true,
	"/v1/stats":       true,
	"/v1/policies":    true,
	"/v1/workloads":   true,
	"/v1/run":         true,
	"/v1/batch":       true,
	"/v1/sweep":       true,
	"/v1/suite":       true,
	"/v1/experiment":  true,
	"/v1/cache/prune": true,
}

func endpointLabel(path string) string {
	if knownEndpoints[path] {
		return path
	}
	if len(path) >= len("/debug/pprof") && path[:len("/debug/pprof")] == "/debug/pprof" {
		return "/debug/pprof"
	}
	return "other"
}

// statusWriter captures the response status and size for the access log
// and the status-code counters.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// accessEntry is one structured access-log line.
type accessEntry struct {
	Time   string  `json:"ts"`
	ID     string  `json:"id"`
	Remote string  `json:"remote"`
	Method string  `json:"method"`
	Path   string  `json:"path"`
	Status int     `json:"status"`
	Bytes  int64   `json:"bytes"`
	DurMS  float64 `json:"dur_ms"`
}

// observe is the outermost HTTP middleware: it assigns (or propagates) a
// request ID, tracks the in-flight gauge, and on completion records the
// per-endpoint latency histogram, the status-code counter and — when
// Config.AccessLog is set — one JSON access-log line.
func (s *Service) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = s.runID + "-" + strconv.FormatInt(s.reqSeq.Add(1), 10)
		}
		w.Header().Set("X-Request-Id", id)

		ep := endpointLabel(r.URL.Path)
		s.httpRequests.With(ep).Inc()
		s.httpInFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			dur := time.Since(start)
			s.httpInFlight.Add(-1)
			if sw.status == 0 {
				// Handler wrote nothing (e.g. a hijacked or empty 200).
				sw.status = http.StatusOK
			}
			s.httpLatency.With(ep).Observe(dur.Seconds())
			s.httpStatus.With(strconv.Itoa(sw.status)).Inc()
			s.logAccess(accessEntry{
				Time:   start.UTC().Format(time.RFC3339Nano),
				ID:     id,
				Remote: r.RemoteAddr,
				Method: r.Method,
				Path:   r.URL.Path,
				Status: sw.status,
				Bytes:  sw.bytes,
				DurMS:  float64(dur.Microseconds()) / 1000,
			})
		}()
		next.ServeHTTP(sw, r)
	})
}

// logAccess writes one JSON line to the configured access-log writer. A
// mutex serializes lines so concurrent requests never interleave bytes.
func (s *Service) logAccess(e accessEntry) {
	if s.cfg.AccessLog == nil {
		return
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.logMu.Lock()
	s.cfg.AccessLog.Write(line)
	s.logMu.Unlock()
}
