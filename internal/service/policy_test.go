package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gals/internal/control"
)

func TestRunRequestPolicySelection(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})

	paper, err := s.Run(RunRequest{Bench: "apsi", Window: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := s.Run(RunRequest{Bench: "apsi", Window: 40_000, Policy: "frozen"})
	if err != nil {
		t.Fatal(err)
	}
	if frozen.Stats.Reconfigs != 0 {
		t.Errorf("frozen run reconfigured %d times", frozen.Stats.Reconfigs)
	}
	if paper.Stats.Reconfigs == 0 {
		t.Error("default policy run never reconfigured on apsi")
	}
	if paper.TimeFS == frozen.TimeFS {
		t.Error("policy selection did not change the run result")
	}
	if !strings.Contains(frozen.Config, "pol=frozen") {
		t.Errorf("frozen run label %q does not name the policy", frozen.Config)
	}

	// Policy validation surfaces as a request error.
	if _, err := s.Run(RunRequest{Bench: "gcc", Policy: "nope"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := s.Run(RunRequest{Bench: "gcc", Mode: "sync", Policy: "frozen"}); err == nil {
		t.Error("policy on a sync-mode run accepted")
	}
	if _, err := s.Run(RunRequest{Bench: "gcc", Policy: "interval", PolicyParams: "bogus=1"}); err == nil {
		t.Error("unknown policy parameter accepted")
	}
}

func TestSweepPhaseSpacePolicies(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})

	res, err := s.Sweep(SweepRequest{
		Space: "phase", Bench: "apsi", Window: 30_000,
		Policies: []PolicySetting{
			{Name: "paper"},
			{Name: "frozen"},
			{Name: "interval", Params: "interval=7500,hysteresis=1"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Configs != 3 || res.Benchmarks != 1 {
		t.Fatalf("phase sweep shape %d x %d, want 3 x 1", res.Configs, res.Benchmarks)
	}
	if res.Best == "" || len(res.PerApp) != 1 {
		t.Fatalf("phase sweep produced no winners: %+v", res)
	}

	// Defaulted policies: every registered policy at default parameters.
	all, err := s.Sweep(SweepRequest{Space: "phase", Bench: "gcc", Window: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(control.Names()); all.Configs != want {
		t.Errorf("defaulted phase sweep has %d configs, want %d", all.Configs, want)
	}

	// Policies are a phase-space-only axis.
	if _, err := s.Sweep(SweepRequest{Space: "sync", Policies: []PolicySetting{{Name: "paper"}}}); err == nil {
		t.Error("policies accepted on a sync sweep")
	}
	if _, err := s.Sweep(SweepRequest{Space: "phase", Policies: []PolicySetting{{Name: "nope"}}}); err == nil {
		t.Error("unknown policy accepted in a phase sweep")
	}
}

func TestHTTPPoliciesEndpointAndPolicySweep(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/policies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/policies returned %d", resp.StatusCode)
	}
	var infos []control.Info
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	var intervalParams int
	for _, in := range infos {
		names[in.Name] = true
		if in.Name == "interval" {
			intervalParams = len(in.Params)
		}
	}
	for _, want := range []string{"paper", "interval", "frozen"} {
		if !names[want] {
			t.Errorf("/v1/policies missing %q (got %v)", want, names)
		}
	}
	if intervalParams != 2 {
		t.Errorf("interval policy lists %d params, want 2", intervalParams)
	}

	// End-to-end POST /v1/sweep with a non-default policy with parameters.
	body := `{"space":"phase","bench":"apsi","window":20000,
		"policies":[{"name":"frozen"},{"name":"interval","params":"interval=7500"}]}`
	sresp, err := http.Post(srv.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/sweep (phase) returned %d", sresp.StatusCode)
	}
	var sres SweepResult
	if err := json.NewDecoder(sresp.Body).Decode(&sres); err != nil {
		t.Fatal(err)
	}
	if sres.Configs != 2 || sres.Best == "" {
		t.Fatalf("phase sweep over HTTP: %+v", sres)
	}
}
