package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gals/internal/control"
	"gals/internal/learn"
)

func TestRunRequestPolicySelection(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})

	paper, err := s.Run(context.Background(), RunRequest{Bench: "apsi", Window: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := s.Run(context.Background(), RunRequest{Bench: "apsi", Window: 40_000, Policy: "frozen"})
	if err != nil {
		t.Fatal(err)
	}
	if frozen.Stats.Reconfigs != 0 {
		t.Errorf("frozen run reconfigured %d times", frozen.Stats.Reconfigs)
	}
	if paper.Stats.Reconfigs == 0 {
		t.Error("default policy run never reconfigured on apsi")
	}
	if paper.TimeFS == frozen.TimeFS {
		t.Error("policy selection did not change the run result")
	}
	if !strings.Contains(frozen.Config, "pol=frozen") {
		t.Errorf("frozen run label %q does not name the policy", frozen.Config)
	}

	// Policy validation surfaces as a request error.
	if _, err := s.Run(context.Background(), RunRequest{Bench: "gcc", Policy: "nope"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := s.Run(context.Background(), RunRequest{Bench: "gcc", Mode: "sync", Policy: "frozen"}); err == nil {
		t.Error("policy on a sync-mode run accepted")
	}
	if _, err := s.Run(context.Background(), RunRequest{Bench: "gcc", Policy: "interval", PolicyParams: "bogus=1"}); err == nil {
		t.Error("unknown policy parameter accepted")
	}
}

func TestSweepPhaseSpacePolicies(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})

	res, err := s.Sweep(context.Background(), SweepRequest{
		Space: "phase", Bench: "apsi", Window: 30_000,
		Policies: []PolicySetting{
			{Name: "paper"},
			{Name: "frozen"},
			{Name: "interval", Params: "interval=7500,hysteresis=1"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Configs != 3 || res.Benchmarks != 1 {
		t.Fatalf("phase sweep shape %d x %d, want 3 x 1", res.Configs, res.Benchmarks)
	}
	if res.Best == "" || len(res.PerApp) != 1 {
		t.Fatalf("phase sweep produced no winners: %+v", res)
	}

	// Defaulted policies: every registered policy at default parameters,
	// minus blob-requiring ones (there is no artifact to default to).
	all, err := s.Sweep(context.Background(), SweepRequest{Space: "phase", Bench: "gcc", Window: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, in := range control.Infos() {
		if !in.RequiresBlob {
			want++
		}
	}
	if all.Configs != want {
		t.Errorf("defaulted phase sweep has %d configs, want %d", all.Configs, want)
	}

	// Policies are a phase-space-only axis.
	if _, err := s.Sweep(context.Background(), SweepRequest{Space: "sync", Policies: []PolicySetting{{Name: "paper"}}}); err == nil {
		t.Error("policies accepted on a sync sweep")
	}
	if _, err := s.Sweep(context.Background(), SweepRequest{Space: "phase", Policies: []PolicySetting{{Name: "nope"}}}); err == nil {
		t.Error("unknown policy accepted in a phase sweep")
	}
}

func TestHTTPPoliciesEndpointAndPolicySweep(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/policies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/policies returned %d", resp.StatusCode)
	}
	var infos []control.Info
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	var intervalParams int
	for _, in := range infos {
		names[in.Name] = true
		if in.Name == "interval" {
			intervalParams = len(in.Params)
		}
	}
	for _, want := range []string{"paper", "interval", "frozen"} {
		if !names[want] {
			t.Errorf("/v1/policies missing %q (got %v)", want, names)
		}
	}
	if intervalParams != 2 {
		t.Errorf("interval policy lists %d params, want 2", intervalParams)
	}

	// End-to-end POST /v1/sweep with a non-default policy with parameters.
	body := `{"space":"phase","bench":"apsi","window":20000,
		"policies":[{"name":"frozen"},{"name":"interval","params":"interval=7500"}]}`
	sresp, err := http.Post(srv.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/sweep (phase) returned %d", sresp.StatusCode)
	}
	var sres SweepResult
	if err := json.NewDecoder(sresp.Body).Decode(&sres); err != nil {
		t.Fatal(err)
	}
	if sres.Configs != 2 || sres.Best == "" {
		t.Fatalf("phase sweep over HTTP: %+v", sres)
	}
}

// httpPost posts a JSON body and returns the status code and decoded error
// message (if any).
func httpPost(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out.Error
}

// TestHTTPPolicyValidationSurfaces pins the satellite contract: unknown
// policies, malformed blob artifacts and out-of-range feedback gains all
// surface as 400s with an error body — never 500s, never a panic.
func TestHTTPPolicyValidationSurfaces(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	cases := map[string]struct{ path, body, wantErr string }{
		"unknown policy": {
			"/v1/run", `{"bench":"gcc","policy":"nope"}`, "unknown policy"},
		"policy on sync mode": {
			"/v1/run", `{"bench":"gcc","mode":"sync","policy":"frozen"}`, "PhaseAdaptive"},
		"malformed blob": {
			"/v1/run", `{"bench":"gcc","policy":"learned","policy_blob":"not json"}`, "malformed weights artifact"},
		"blob on blobless policy": {
			"/v1/run", `{"bench":"gcc","policy":"paper","policy_blob":"{}"}`, "takes no blob"},
		"learned without blob": {
			"/v1/run", `{"bench":"gcc","policy":"learned"}`, "requires a blob"},
		"feedback gain too high": {
			"/v1/run", `{"bench":"gcc","policy":"feedback","policy_params":"kp=500"}`, "kp=500"},
		"feedback negative gain": {
			"/v1/run", `{"bench":"gcc","policy":"feedback","policy_params":"ki=-2"}`, "out of range"},
		"feedback zero setpoint": {
			"/v1/run", `{"bench":"gcc","policy":"feedback","policy_params":"ilp_setpoint=0"}`, "must be positive"},
		"suite bad blob": {
			"/v1/suite", `{"window":1000,"policy":"learned","policy_blob":"{"}`, "malformed weights artifact"},
		"sweep bad policy blob": {
			"/v1/sweep", `{"space":"phase","policies":[{"name":"learned","blob":"[]"}]}`, "malformed weights artifact"},
		"experiment bad gains": {
			"/v1/experiment", `{"id":"figure6","policy":"feedback","policy_params":"clamp=1e6"}`, "clamp"},
	}
	for name, c := range cases {
		status, msg := httpPost(t, srv.URL+c.path, c.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d (%q), want 400", name, status, msg)
			continue
		}
		if !strings.Contains(msg, c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, msg, c.wantErr)
		}
	}
}

// TestBlobParamsRoundTripThroughCache: a learned run keyed by its weights
// artifact persists, is served from the cache on repetition, and never
// aliases a run with different weights.
func TestBlobParamsRoundTripThroughCache(t *testing.T) {
	blob, err := learn.Artifact(nil, learn.TrainOptions{Window: 4_000})
	if err != nil {
		t.Fatal(err)
	}
	m, err := learn.ParseModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	m.IntIQ[0] += 1
	blob2, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}

	s := newTestService(t, Config{Workers: 2, CacheDir: t.TempDir()})
	req := RunRequest{Bench: "mesa", Window: 20_000, Policy: "learned", PolicyBlob: blob}
	first, err := s.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first learned run reported cached")
	}
	again, err := s.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("identical learned run (same artifact bytes) missed the cache")
	}
	if again.TimeFS != first.TimeFS {
		t.Fatal("cached learned result differs")
	}

	other := req
	other.PolicyBlob = blob2
	second, err := s.Run(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Fatal("different artifact bytes aliased the cached entry")
	}
}
