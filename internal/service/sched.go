package service

import "gals/internal/sweep"

// Priority orders competing work on the service's shared cell pool: higher
// runs first, ties run in submission order (FIFO). Values outside the named
// constants are accepted — the pool only compares.
type Priority = int

// Named priority levels for requests.
const (
	PriorityLow    Priority = -10
	PriorityNormal Priority = 0
	PriorityHigh   Priority = 10
)

// Scheduling errors, surfaced from the shared work-stealing pool
// (internal/sweep): the service schedules every request — single runs,
// batches, sweeps, suite pipelines — as cells on one bounded pool, so these
// are the only overload signals. HTTP maps both to 503.
var (
	// ErrQueueFull is returned when admitting a request's cells would push
	// the pending-cell count past Config.QueueDepth; the server sheds load
	// instead of hoarding memory.
	ErrQueueFull = sweep.ErrQueueFull
	// ErrClosed is returned for submissions after Close.
	ErrClosed = sweep.ErrClosed
)
