package service

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Priority orders competing jobs in the scheduler: higher runs first, ties
// run in submission order (FIFO). Values outside the named constants are
// accepted — the scheduler only compares.
type Priority int

// Named priority levels for requests.
const (
	PriorityLow    Priority = -10
	PriorityNormal Priority = 0
	PriorityHigh   Priority = 10
)

// ErrQueueFull is returned by submissions when the scheduler's pending
// queue is at capacity; HTTP maps it to 503 so callers can back off.
var ErrQueueFull = errors.New("service: job queue full")

// ErrClosed is returned by submissions after Close.
var ErrClosed = errors.New("service: scheduler closed")

// schedJob is one queued unit of work.
type schedJob struct {
	pri Priority
	seq uint64 // submission order, for FIFO within a priority
	run func()
}

// jobQueue is a max-heap by (priority, -seq).
type jobQueue []*schedJob

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	if q[i].pri != q[j].pri {
		return q[i].pri > q[j].pri
	}
	return q[i].seq < q[j].seq
}
func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *jobQueue) Push(x any)   { *q = append(*q, x.(*schedJob)) }
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return j
}

// scheduler is a bounded worker pool draining a priority queue. Jobs beyond
// the queue bound are rejected (ErrQueueFull) rather than buffered without
// limit — under overload the server sheds load instead of hoarding memory.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   jobQueue
	seq     uint64
	depth   int
	closed  bool
	workers sync.WaitGroup

	nworkers  int
	inflight  atomic.Int64
	completed atomic.Int64
	rejected  atomic.Int64
}

// newScheduler starts a pool of `workers` goroutines with a pending-queue
// bound of `depth`.
func newScheduler(workers, depth int) *scheduler {
	s := &scheduler{depth: depth, nworkers: workers}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		s.workers.Add(1)
		go s.work()
	}
	return s
}

func (s *scheduler) work() {
	defer s.workers.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*schedJob)
		s.mu.Unlock()

		s.inflight.Add(1)
		runJob(j)
		s.inflight.Add(-1)
		s.completed.Add(1)
	}
}

// runJob isolates a job's panic to the job: a worker goroutine must never
// take the whole server down. Jobs submitted through do() convert their
// panics to errors before this backstop is reached.
func runJob(j *schedJob) {
	defer func() { recover() }()
	j.run()
}

// submit enqueues fn at the given priority.
func (s *scheduler) submit(pri Priority, fn func()) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if len(s.queue) >= s.depth {
		s.mu.Unlock()
		s.rejected.Add(1)
		return ErrQueueFull
	}
	s.seq++
	heap.Push(&s.queue, &schedJob{pri: pri, seq: s.seq, run: fn})
	s.mu.Unlock()
	s.cond.Signal()
	return nil
}

// do enqueues fn and blocks until it has run. A panic inside fn is
// returned as this caller's error instead of unwinding a worker.
func (s *scheduler) do(pri Priority, fn func()) error {
	done := make(chan struct{})
	var panicked any
	if err := s.submit(pri, func() {
		defer close(done)
		defer func() { panicked = recover() }()
		fn()
	}); err != nil {
		return err
	}
	<-done
	if panicked != nil {
		return fmt.Errorf("service: job panicked: %v", panicked)
	}
	return nil
}

// pending returns the current queue length.
func (s *scheduler) pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// close drains the queue (already-accepted jobs still run) and stops the
// workers. Subsequent submissions fail with ErrClosed.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.workers.Wait()
}
