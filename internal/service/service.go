// Package service is the concurrent simulation service behind cmd/galsd:
// every request — single runs, batches, design-space sweeps, whole suite
// pipelines — is decomposed into simulation cells executed on one shared
// bounded work-stealing pool (internal/sweep), with singleflight
// deduplication of identical concurrent requests, a persistent
// content-addressed result cache (internal/resultcache) and an mmap-backed
// recording store (internal/recstore) shared with the experiment and sweep
// layers.
//
// The paper's evaluation burned ~300 CPU-months exploring this design
// space; the service's job is to make sure no configuration point is ever
// simulated twice per cache directory — whether the repeat comes from a
// second process (persistent cache), a concurrent identical request
// (singleflight), or a higher experiment layer (the suite memo, wired
// through the same store) — and that total parallelism stays exactly at the
// configured worker count no matter how requests mix: a 12,800-cell sweep
// fans out cell by cell on the same pool a /v1/run cell waits on, instead
// of spawning its own worker fleet.
//
// Request structs double as the JSON wire format of cmd/galsd and as the
// cache-key payloads: a request is normalized (defaults resolved, result-
// neutral fields like Priority and Workers zeroed) before hashing, so
// requests that must produce identical results share one cache entry.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gals/internal/control"
	"gals/internal/core"
	"gals/internal/experiment"
	"gals/internal/faultinject"
	"gals/internal/metrics"
	"gals/internal/recstore"
	"gals/internal/resultcache"
	"gals/internal/sweep"
	"gals/internal/timing"
	"gals/internal/workload"
)

// Config configures a Service.
type Config struct {
	// CacheDir is the persistent cache directory: result blobs at the root
	// (internal/resultcache layout) and recorded instruction slabs under
	// "recordings/" (internal/recstore layout). "" disables persistence
	// (dedup and scheduling still work) and keeps recordings in heap.
	CacheDir string
	// Workers is the number of simulation workers (0 = GOMAXPROCS) — the
	// exact bound on concurrently executing cells across all requests.
	Workers int
	// QueueDepth bounds the pending-cell queue (0 = sweep.DefaultQueueDepth,
	// 65,536 cells); a request whose cells don't fit behind already-queued
	// work fails with ErrQueueFull. An idle pool admits a request of any
	// size — the bound sheds load, it does not cap sweep size.
	QueueDepth int
	// CacheMaxBytes, when > 0, prunes the persistent cache back under this
	// many bytes (least-recently-used files first) at startup and after
	// each computed sweep or suite.
	CacheMaxBytes int64
	// AuthToken, when non-empty, gates every /v1/* endpoint behind
	// "Authorization: Bearer <token>" (compared in constant time). The
	// /healthz liveness probe stays open. Empty disables authentication —
	// the historical lab-service behaviour.
	AuthToken string
	// RequestTimeout, when > 0, bounds every request's compute time: the
	// request context expires after this duration, the request's queued
	// cells are purged from the pool, running cells stop at their next
	// accounting-interval boundary, and HTTP maps the expiry to 504. A
	// client's timeout_ms can shorten the bound, never extend it. 0 leaves
	// requests unbounded (the historical behaviour).
	RequestTimeout time.Duration
	// RateLimit, when > 0, is the sustained request rate (requests/second)
	// each client — bearer token, or remote host when unauthenticated —
	// may submit to the compute endpoints (POST /v1/*); excess requests
	// are refused with 429 and a Retry-After header. RateBurst is the
	// bucket size (default ceil(RateLimit), minimum 1).
	RateLimit float64
	RateBurst int
	// EnablePprof mounts net/http/pprof's profiling handlers under
	// /debug/pprof/ (CPU and heap profiles, goroutine dumps, execution
	// traces). Off by default: profiling endpoints reveal internals and
	// cost CPU, so they are opt-in via galsd -pprof.
	EnablePprof bool
	// AccessLog, when non-nil, receives one JSON line per HTTP request
	// (request ID, method, path, status, bytes, duration). galsd wires
	// stderr behind -access-log.
	AccessLog io.Writer
	// TraceDir, when set, makes every /v1/run, /v1/sweep and /v1/suite
	// request record a span trace and write it as an indented-JSON file
	// into this directory (clients can also opt in per request with
	// ?trace=1, which returns the trace inline instead).
	TraceDir string
	// RunParallel enables intra-run stage parallelism (core.RunParallel)
	// for simulations whose moment of execution finds idle workers and an
	// empty queue — single /v1/run requests on a quiet server, and the
	// ragged tail of sweeps. The degree is chosen per run from the pool's
	// spare capacity, is bit-identity-preserving (core's parity contract),
	// and never enters cache keys: a result computed in parallel is served
	// to sequential requesters and vice versa. Off by default — a saturated
	// server gains nothing, and the knob exists to cut single-run latency.
	// galsd wires -run-parallel.
	RunParallel bool
	// TelemetryCap bounds each telemetry-enabled run's sample and event
	// rings (0 = core.DefaultTelemetryCap). A saturated ring keeps the most
	// recent entries and reports the rotation in the artifact's Dropped
	// counters. galsd wires -telemetry-cap.
	TelemetryCap int
	// CheckpointEvery, when > 0 and CacheDir is set, makes sweep and suite
	// requests persist crash-safe progress checkpoints at this interval
	// (sweep.Options.CheckpointEvery): a killed or cancelled request's rerun
	// then resumes from the last checkpoint, skipping completed cells, with
	// a bit-identical final result. Shutdown cancels in-flight requests and
	// lets them flush a final checkpoint before the workers stop. 0 disables
	// checkpointing (the historical behaviour). galsd wires
	// -checkpoint-interval (default 15s).
	CheckpointEvery time.Duration
}

// Service executes simulation requests. Create with New, stop with Close.
// All methods are safe for concurrent use.
type Service struct {
	cfg     Config
	cache   *resultcache.Cache
	recs    *recstore.Store
	pool    *sweep.Pool
	flight  flightGroup
	limiter *rateLimiter

	// prevSuite/prevSweep/prevRecs are the persist hooks that were
	// installed before this service took over; Close restores them.
	prevSuite resultcache.Store
	prevSweep resultcache.Store
	prevRecs  workload.Backing

	// tracePools are per-window thin views over the recording store,
	// shared by single runs, batches and sweeps at that window.
	poolMu     sync.Mutex
	tracePools map[int64]*workload.Pool

	pruneMu sync.Mutex

	// shutCtx is cancelled when Shutdown decides to stop waiting for
	// in-flight requests (its drain deadline expired): every dispatched
	// request context is a child, so cancelling it makes running sweeps
	// flush a final checkpoint and return instead of being killed cold by
	// the pool closing under them.
	shutCtx    context.Context
	shutCancel context.CancelFunc

	sims        atomic.Int64 // simulations actually executed by this service
	dedups      atomic.Int64 // requests served by joining an in-flight twin
	quarantined atomic.Int64 // blobs quarantined by Scrub passes

	// Observability surface (internal/metrics): the registry behind
	// GET /metrics plus the event-sourced instruments the request path
	// observes directly. See initMetrics for the full series catalogue.
	reg          *metrics.Registry
	runSeconds   *metrics.HistogramVec
	dwellHist    *metrics.HistogramVec
	httpLatency  *metrics.HistogramVec
	httpRequests *metrics.CounterVec
	httpStatus   *metrics.CounterVec
	httpInFlight *metrics.Gauge
	rateLimited  *metrics.Counter

	runID    string       // per-process prefix for generated request IDs
	reqSeq   atomic.Int64 // request-ID sequence
	traceSeq atomic.Int64 // trace-file sequence
	logMu    sync.Mutex   // serializes access-log lines
}

// New creates a service and, when cfg.CacheDir is set, opens the persistent
// result cache and the recording store and installs them behind the
// experiment suite memo and the sweep measurement layer — so
// gals.EvaluateSuite, sweep.MeasureSummary and every service endpoint share
// one store and one set of mmap'd recordings.
func New(cfg Config) (*Service, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	s := &Service{cfg: cfg, tracePools: make(map[int64]*workload.Pool)}
	s.shutCtx, s.shutCancel = context.WithCancel(context.Background())
	if cfg.CacheDir != "" {
		c, err := resultcache.Open(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		rs, err := recstore.Open(filepath.Join(cfg.CacheDir, recstore.Subdir))
		if err != nil {
			return nil, err
		}
		s.cache = c
		s.recs = rs
		s.prevSuite = experiment.SetSuitePersist(c)
		s.prevSweep = sweep.SetPersist(c)
		s.prevRecs = sweep.SetRecordings(rs)
	}
	if cfg.RateLimit > 0 {
		s.limiter = newRateLimiter(cfg.RateLimit, cfg.RateBurst)
	}
	s.pool = sweep.NewPool(cfg.Workers, cfg.QueueDepth)
	s.runID = fmt.Sprintf("%x", time.Now().UnixNano())
	s.initMetrics()
	s.maybePrune()
	return s, nil
}

// ---------------------------------------------------------------------------
// Request tracing. A tracer rides the request context so the compute
// layers (Run's cell, the sweep's measure stage, the suite pipeline) can
// attach spans without new parameters on every signature; requests
// without one pay a context lookup and nil checks, nothing more.

type tracerKey struct{}

// WithTracer attaches a span tracer to ctx.
func WithTracer(ctx context.Context, tr *metrics.Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, tr)
}

// tracerFrom extracts the request's tracer, nil when tracing is off.
func tracerFrom(ctx context.Context) *metrics.Tracer {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(tracerKey{}).(*metrics.Tracer)
	return tr
}

// Close stops the workers (accepted cells still finish), retires the
// per-window trace pools — returning their slab references so the recording
// store unmaps what no one else holds — and restores the persist hooks that
// were installed before this service took over (e.g. one installed by
// gals.UsePersistentCache).
func (s *Service) Close() {
	s.pool.Close()
	// The workers are stopped: no cell can still be replaying, so retiring
	// the pools (and unmapping their slabs) is safe.
	s.poolMu.Lock()
	pools := s.tracePools
	s.tracePools = make(map[int64]*workload.Pool)
	s.poolMu.Unlock()
	for _, p := range pools {
		p.Retire()
	}
	if s.cache != nil {
		experiment.SetSuitePersist(s.prevSuite)
		sweep.SetPersist(s.prevSweep)
		sweep.SetRecordings(s.prevRecs)
	}
}

// Shutdown is the graceful stop behind galsd's SIGINT/SIGTERM handling, in
// dependency order: the HTTP server stops accepting connections and drains
// in-flight requests (whose cells drain the pool with them, bounded by
// ctx), then Close stops the workers and restores the persist hooks, and
// finally one cache-prune pass enforces Config.CacheMaxBytes so the
// directory a stopped server leaves behind is within its configured bound.
// srv may be nil (no listener was started). The returned error is
// http.Server.Shutdown's (ctx expiry with requests still in flight).
func (s *Service) Shutdown(ctx context.Context, srv *http.Server) error {
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	if err != nil {
		// The drain deadline expired with requests still in flight: cancel
		// them all (a running sweep purges its queued cells, flushes a final
		// progress checkpoint and returns) and give the handlers a bounded
		// moment to finish those flushes while the persist hooks are still
		// installed — Close restores the hooks, after which a flush would
		// land in the wrong store.
		s.shutCancel()
		deadline := time.Now().Add(5 * time.Second)
		for s.httpInFlight.Value() > 0 && time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
		}
	}
	s.Close()
	s.maybePrune()
	return err
}

// Cache returns the persistent cache, or nil when persistence is disabled.
func (s *Service) Cache() *resultcache.Cache { return s.cache }

// Recordings returns the recording store, or nil when persistence is
// disabled.
func (s *Service) Recordings() *recstore.Store { return s.recs }

// tracePool returns the shared per-window trace pool (a thin view over the
// recording store), or nil when persistence is disabled — single runs then
// generate live traces and sweeps build transient in-memory pools, exactly
// as before the store existed.
func (s *Service) tracePool(window int64) *workload.Pool {
	if s.recs == nil || window <= 0 {
		return nil
	}
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	p := s.tracePools[window]
	if p == nil {
		p = workload.NewBackedPool(window, s.recs)
		s.tracePools[window] = p
	}
	return p
}

// maybePrune enforces Config.CacheMaxBytes on the persistent cache
// (including recordings — a pruned slab is simply re-recorded).
func (s *Service) maybePrune() {
	if s.cache == nil || s.cfg.CacheMaxBytes <= 0 {
		return
	}
	s.pruneMu.Lock()
	defer s.pruneMu.Unlock()
	s.cache.Prune(s.cfg.CacheMaxBytes)
}

// Prune removes least-recently-used cache files until the persistent cache
// fits in maxBytes (the admin surface behind POST /v1/cache/prune). It
// errors when persistence is disabled.
func (s *Service) Prune(maxBytes int64) (resultcache.PruneStats, error) {
	if s.cache == nil {
		return resultcache.PruneStats{}, fmt.Errorf("service: no persistent cache configured")
	}
	s.pruneMu.Lock()
	defer s.pruneMu.Unlock()
	return s.cache.Prune(maxBytes)
}

// ScrubReport aggregates one startup-recovery pass (galsd -scrub): the
// result cache's debris reaping and blob quarantine, the recording store's
// slab validation, and the checkpoint garbage collection.
type ScrubReport struct {
	Cache           resultcache.ScrubStats `json:"cache"`
	Recordings      recstore.ScrubStats    `json:"recordings"`
	CheckpointsGCed int                    `json:"checkpoints_gced"`
}

// Scrub runs the startup-recovery pass over the persistent store: crashed-
// writer temp files and locks are reaped, undecodable result blobs are
// quarantined, invalid recording slabs deleted, and checkpoints whose
// parent summary already exists garbage-collected. It assumes no other
// process is writing the cache directory (galsd runs it before serving);
// live checkpoints — resume state for unfinished sweeps — are kept. It
// errors when persistence is disabled.
func (s *Service) Scrub() (ScrubReport, error) {
	var r ScrubReport
	if s.cache == nil {
		return r, fmt.Errorf("service: no persistent cache configured")
	}
	var err error
	if r.Cache, err = s.cache.Scrub(); err != nil {
		return r, err
	}
	if s.recs != nil {
		if r.Recordings, err = s.recs.Scrub(); err != nil {
			return r, err
		}
	}
	r.CheckpointsGCed = sweep.ScrubCheckpoints(s.cache)
	s.quarantined.Add(int64(r.Cache.Quarantined))
	return r, nil
}

// contain runs fn and converts a panic into an error: one malformed request
// must never unwind a server goroutine.
func contain(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: job panicked: %v", r)
		}
	}()
	return fn()
}

// dispatch gates every compute request: an injected dispatch fault (chaos
// testing a refusing server — HTTP maps it to a retryable 503) rejects it
// up front, then the request context is bounded by the server's
// -request-timeout and the client's timeout_ms, whichever is shorter. The
// returned cancel must be called (normally deferred) so abandoned work is
// torn down as soon as the request finishes either way.
func (s *Service) dispatch(ctx context.Context, timeoutMS int64) (context.Context, context.CancelFunc, error) {
	if err := faultinject.Err(faultinject.ServiceDispatch); err != nil {
		return nil, nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	d := s.cfg.RequestTimeout
	if timeoutMS > 0 {
		if c := time.Duration(timeoutMS) * time.Millisecond; d <= 0 || c < d {
			d = c
		}
	}
	var bounded context.Context
	var cancel context.CancelFunc
	if d > 0 {
		bounded, cancel = context.WithTimeout(ctx, d)
	} else {
		bounded, cancel = context.WithCancel(ctx)
	}
	// Parent every request on the shutdown context too: a Shutdown that has
	// given up draining cancels s.shutCtx, which cancels the request here —
	// so a long sweep flushes its checkpoint and returns instead of being
	// abandoned when the pool closes under it.
	stop := context.AfterFunc(s.shutCtx, cancel)
	return bounded, func() { stop(); cancel() }, nil
}

// ---------------------------------------------------------------------------
// Single runs.

// RunRequest asks for one benchmark on one machine configuration. It is
// both the JSON body of POST /v1/run and, normalized with Priority zeroed,
// the cache-key payload.
type RunRequest struct {
	// Bench is the benchmark run name (e.g. "gcc", "adpcm decode").
	Bench string `json:"bench"`
	// Mode is "sync", "program" or "phase" (default "phase").
	Mode string `json:"mode,omitempty"`
	// ICache names the I-cache configuration: a Table 3 name in sync mode
	// (e.g. "64k1W"), a Table 2 name in adaptive modes (e.g. "16k1W").
	// Empty keeps the mode's default.
	ICache string `json:"icache,omitempty"`
	// DCache is the D/L2 configuration index 0..3 (Table 1).
	DCache int `json:"dcache,omitempty"`
	// IntIQ and FPIQ are issue-queue sizes (16/32/48/64; default 16).
	IntIQ int `json:"iq,omitempty"`
	FPIQ  int `json:"fq,omitempty"`
	// Window is the instruction window (default 100,000).
	Window int64 `json:"window,omitempty"`
	// Seed drives PLL lock times and jitter (default 42).
	Seed int64 `json:"seed,omitempty"`
	// JitterFrac enables per-edge clock jitter (0..0.05).
	JitterFrac float64 `json:"jitter,omitempty"`
	// PLLScale scales PLL lock times (default 0.1).
	PLLScale float64 `json:"pllscale,omitempty"`
	// Policy and PolicyParams select the adaptation policy for phase mode
	// (names from GET /v1/policies; params as "key=value,..."). Empty keeps
	// the paper controllers.
	Policy       string `json:"policy,omitempty"`
	PolicyParams string `json:"policy_params,omitempty"`
	// PolicyBlob carries the policy's structured artifact (the "learned"
	// policy's trained weights, as produced by the training pipeline).
	PolicyBlob string `json:"policy_blob,omitempty"`
	// Telemetry, when true, attaches a sampler to the run and persists its
	// adaptation series as a content-addressed "telemetry" artifact; the
	// response carries the artifact digest (RunResult.Telemetry) for
	// GET /v1/telemetry/<digest>. Result-neutral and excluded from the run
	// cache key: a telemetry run's Stats are bit-identical to a plain one.
	Telemetry bool `json:"telemetry,omitempty"`
	// Priority orders this request against others (higher first). It does
	// not affect the result and is excluded from the cache key.
	Priority int `json:"priority,omitempty"`
	// TimeoutMS, when > 0, bounds this request's compute time in
	// milliseconds; the effective deadline is the shorter of this and the
	// server's -request-timeout. Result-neutral: excluded from the cache
	// key (a timed-out request caches nothing; a completed one is
	// identical however long it was allowed to take).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// normalize resolves defaults and validates; the returned request is
// canonical (identical results <=> identical normalized requests).
func (r RunRequest) normalize() (RunRequest, error) {
	if r.Bench == "" {
		return r, fmt.Errorf("service: missing bench")
	}
	if _, ok := workload.ByName(r.Bench); !ok {
		return r, fmt.Errorf("service: unknown benchmark %q", r.Bench)
	}
	if r.Mode == "" {
		r.Mode = "phase"
	}
	switch r.Mode {
	case "sync", "program", "phase":
	default:
		return r, fmt.Errorf("service: unknown mode %q (want sync, program or phase)", r.Mode)
	}
	if r.Window == 0 {
		r.Window = 100_000
	}
	if r.Window < 0 {
		return r, fmt.Errorf("service: negative window %d", r.Window)
	}
	if r.IntIQ == 0 {
		r.IntIQ = 16
	}
	if r.FPIQ == 0 {
		r.FPIQ = 16
	}
	if r.Seed == 0 {
		r.Seed = 42
	}
	if r.PLLScale == 0 {
		r.PLLScale = 0.1
	}
	// Negated-range forms so NaN (possible from Go callers; JSON cannot
	// encode it) fails validation instead of slipping past `x < 0` checks.
	if !(r.JitterFrac >= 0 && r.JitterFrac <= 0.05) {
		return r, fmt.Errorf("service: jitter fraction %v out of range [0, 0.05]", r.JitterFrac)
	}
	if !(r.PLLScale > 0) {
		return r, fmt.Errorf("service: pll scale %v must be positive", r.PLLScale)
	}
	if r.TimeoutMS < 0 {
		return r, fmt.Errorf("service: negative timeout_ms %d", r.TimeoutMS)
	}
	if _, _, err := r.machine(); err != nil {
		return r, err
	}
	return r, nil
}

// machine resolves the normalized request into a runnable spec and config.
func (r RunRequest) machine() (workload.Spec, core.Config, error) {
	spec, ok := workload.ByName(r.Bench)
	if !ok {
		return workload.Spec{}, core.Config{}, fmt.Errorf("service: unknown benchmark %q", r.Bench)
	}
	var cfg core.Config
	switch r.Mode {
	case "sync":
		cfg = core.DefaultSync()
		if r.ICache != "" {
			idx, ok := timing.SyncICacheIndexByName(r.ICache)
			if !ok {
				return spec, cfg, fmt.Errorf("service: unknown sync i-cache %q", r.ICache)
			}
			cfg.SyncICache = idx
		}
	case "program", "phase":
		mode := core.ProgramAdaptive
		if r.Mode == "phase" {
			mode = core.PhaseAdaptive
		}
		cfg = core.DefaultAdaptive(mode)
		if r.ICache != "" {
			found := false
			for _, c := range timing.ICacheConfigs() {
				if strings.EqualFold(c.String(), r.ICache) {
					cfg.ICache = c
					found = true
					break
				}
			}
			if !found {
				return spec, cfg, fmt.Errorf("service: unknown adaptive i-cache %q", r.ICache)
			}
		}
	default:
		return spec, cfg, fmt.Errorf("service: unknown mode %q", r.Mode)
	}
	cfg.DCache = timing.DCacheConfig(r.DCache)
	cfg.IntIQ = timing.IQSize(r.IntIQ)
	cfg.FPIQ = timing.IQSize(r.FPIQ)
	cfg.Seed = r.Seed
	cfg.JitterFrac = r.JitterFrac
	cfg.PLLScale = r.PLLScale
	cfg.Policy = r.Policy
	cfg.PolicyParams = r.PolicyParams
	cfg.PolicyBlob = r.PolicyBlob
	if err := cfg.Validate(); err != nil {
		return spec, cfg, err
	}
	return spec, cfg, nil
}

// RunResult is the outcome of one run.
type RunResult struct {
	Workload     string     `json:"workload"`
	Config       string     `json:"config"`
	TimeFS       int64      `json:"time_fs"`
	IPnsec       float64    `json:"ip_nsec"`
	Instructions int64      `json:"instructions"`
	Stats        core.Stats `json:"stats"`
	// Telemetry is the run's telemetry artifact digest (set only when the
	// request asked for telemetry), retrievable via
	// GET /v1/telemetry/<digest>. Never persisted into the run blob, so
	// cached run results stay byte-identical whether or not telemetry was
	// ever requested.
	Telemetry string `json:"telemetry,omitempty"`
	// Cached is true when the result came from the persistent cache
	// without simulating.
	Cached bool `json:"cached,omitempty"`
	// Deduped is true when this caller joined an identical in-flight
	// request instead of starting its own.
	Deduped bool `json:"deduped,omitempty"`
}

// runOne executes one simulation, replaying the shared per-window recording
// when the store is available (bit-identical to live generation) and
// generating live otherwise. Cancellation is observed while a cold
// recording streams to the store (the slab is abandoned, not half-written)
// and at accounting-interval boundaries during simulation; a cancelled run
// returns ctx's error and no result.
func (s *Service) runOne(ctx context.Context, spec workload.Spec, cfg core.Config, window int64, tel *core.Telemetry) (*core.Result, error) {
	tr := tracerFrom(ctx)
	degree := s.runDegree()
	mode := "sequential"
	if degree > 1 {
		mode = "parallel"
	}
	var res *core.Result
	var err error
	start := time.Now()
	if p := s.tracePool(window); p != nil {
		recSpan := tr.Start("record", spec.Name)
		rec, rerr := p.GetContext(ctx, spec)
		recSpan.End()
		if rerr != nil {
			return nil, rerr
		}
		start = time.Now() // the histogram measures simulation, not recording
		simSpan := tr.Start("replay+measure", cfg.Label())
		res, err = core.RunSourceTelemetryContext(ctx, rec.Replay(), cfg, window, degree, tel)
		simSpan.End()
	} else {
		simSpan := tr.Start("generate+measure", cfg.Label())
		res, err = core.RunWorkloadTelemetryContext(ctx, spec, cfg, window, degree, tel)
		simSpan.End()
	}
	if err == nil {
		s.runSeconds.With(mode).Observe(time.Since(start).Seconds())
	}
	return res, err
}

// runDegree picks the intra-run parallelism for a simulation about to
// start: 1 (sequential) unless the server opted in via Config.RunParallel
// AND the pool has idle workers with nothing queued to claim them. runOne
// executes inside a pool cell, so the calling worker is already counted
// in-flight; idle slots are genuinely spare. Result-neutral by core's
// parity contract, so the choice never appears in cache keys.
func (s *Service) runDegree() int {
	if !s.cfg.RunParallel {
		return 1
	}
	idle := s.pool.IdleSlots()
	if idle <= 0 {
		return 1
	}
	return core.ParallelDegree(1 + idle)
}

// cacheKey returns the normalized request's persistent-cache key: Priority
// zeroed (result-neutral) and the blob artifact replaced by its canonical
// digest, so artifact size never inflates key payloads while distinct
// artifacts can never alias.
func (r RunRequest) cacheKey() string {
	r.Priority = 0
	r.TimeoutMS = 0
	r.Telemetry = false
	if r.PolicyBlob != "" {
		r.PolicyBlob = "digest:" + control.BlobDigest(r.PolicyBlob)
	}
	return resultcache.Key("run", r)
}

// telemetryKey returns the run's telemetry artifact key: the same
// normalized payload as cacheKey under the "telemetry" kind, so the
// artifact is content-addressed by the run identity that produced it and a
// given digest always names the series of exactly one normalized request.
func (r RunRequest) telemetryKey() string {
	r.Priority = 0
	r.TimeoutMS = 0
	r.Telemetry = false
	if r.PolicyBlob != "" {
		r.PolicyBlob = "digest:" + control.BlobDigest(r.PolicyBlob)
	}
	return resultcache.Key("telemetry", r)
}

// telemetryDigest extracts the hex digest a client uses against
// GET /v1/telemetry/<digest> from an artifact key ("telemetry/<digest>").
func telemetryDigest(key string) string {
	_, digest, _ := strings.Cut(key, "/")
	return digest
}

// persistTelemetry stores one sealed telemetry series under its artifact
// key and folds it into the observability surface: the process-wide
// artifact counters (runs, serialized bytes) and the per-structure dwell
// histogram. Returns false when persistence is disabled — the series then
// has no digest a client could fetch.
func (s *Service) persistTelemetry(key string, tel *core.Telemetry) bool {
	if s.cache == nil {
		return false
	}
	s.cache.Store(key, tel)
	blob, err := json.Marshal(tel)
	if err != nil {
		return false
	}
	core.NoteTelemetryArtifact(int64(len(blob)))
	s.observeDwell(tel)
	return true
}

// observeDwell feeds the reconfiguration dwell histogram: for every event,
// the number of decision intervals its structure spent in the previous
// configuration — cache structures dwell across accounting intervals,
// issue queues across ILP intervals. Computed from the artifact at persist
// time, never on the simulation path.
func (s *Service) observeDwell(tel *core.Telemetry) {
	// Boundary counts by kind, cumulative at each sample, let an event at
	// instruction i look up how many boundaries of its trigger kind have
	// passed; the difference between consecutive events of one structure is
	// its dwell in intervals.
	type mark struct {
		instr int64
		n     int64
	}
	counts := map[string][]mark{}
	var nCache, nIQ int64
	for i := range tel.Samples {
		sm := &tel.Samples[i]
		switch sm.Kind {
		case "cache":
			nCache++
			counts["cache-interval"] = append(counts["cache-interval"], mark{sm.Instr, nCache})
		case "iq":
			nIQ++
			counts["iq-interval"] = append(counts["iq-interval"], mark{sm.Instr, nIQ})
		}
	}
	intervalsAt := func(trigger string, instr int64) int64 {
		ms := counts[trigger]
		var n int64
		for _, m := range ms {
			if m.instr > instr {
				break
			}
			n = m.n
		}
		return n
	}
	last := map[string]int64{} // structure -> interval count at its last event
	for i := range tel.Events {
		ev := &tel.Events[i]
		at := intervalsAt(ev.Trigger, ev.Instr)
		s.dwellHist.With(ev.Structure).Observe(float64(at - last[ev.Structure]))
		last[ev.Structure] = at
	}
}

// Run executes (or serves from cache / an in-flight twin) one simulation,
// bounded by ctx, the server request timeout and the request's timeout_ms.
// A cancelled or expired run caches nothing and returns the context error;
// an identical later request recomputes and is bit-identical to what an
// unbounded run would have produced.
func (s *Service) Run(ctx context.Context, req RunRequest) (RunResult, error) {
	n, err := req.normalize()
	if err != nil {
		return RunResult{}, err
	}
	ctx, cancel, err := s.dispatch(ctx, n.TimeoutMS)
	if err != nil {
		return RunResult{}, err
	}
	defer cancel()
	key := n.cacheKey()

	// A telemetry request joins its own singleflight lane: an in-flight
	// plain twin computes no artifact, so joining it would return a digest
	// that was never persisted. The persistent-cache key stays shared — the
	// run result is identical either way.
	var telKey string
	flightKey := key
	if n.Telemetry {
		telKey = n.telemetryKey()
		flightKey = key + "+telemetry"
	}

	tr := tracerFrom(ctx)
	v, err, shared := s.flight.Do(ctx, flightKey, func() (any, error) {
		var out RunResult
		lookup := tr.Start("cache-lookup", "run")
		if s.cache.Load(key, &out) && (!n.Telemetry || s.cache.Has(telKey)) {
			lookup.Annotate("run: hit")
			lookup.End()
			out.Cached = true
			out.Telemetry = telemetryDigest(telKey)
			return out, nil
		}
		lookup.End()
		spec, cfg, err := n.machine()
		if err != nil {
			return RunResult{}, err
		}
		var tel *core.Telemetry
		if n.Telemetry {
			tel = core.NewTelemetry(s.cfg.TelemetryCap)
		}
		cell := func() {
			res, rerr := s.runOne(ctx, spec, cfg, n.Window, tel)
			if rerr != nil {
				// Cancelled mid-run: ExecuteContext reports the batch's
				// ctx error; nothing to deliver.
				return
			}
			s.sims.Add(1)
			out = RunResult{
				Workload:     res.Workload,
				Config:       res.Config.Label(),
				TimeFS:       res.TimeFS,
				IPnsec:       res.IPnsec(),
				Instructions: res.Stats.Instructions,
				Stats:        res.Stats,
			}
		}
		cellSpan := tr.Start("cell", n.Bench)
		if err := s.pool.ExecuteContext(ctx, n.Priority, [][]func(){{cell}}); err != nil {
			cellSpan.End()
			return RunResult{}, err
		}
		cellSpan.Annotate(fmt.Sprintf("%s: %d reconfigs", n.Bench, out.Stats.Reconfigs))
		cellSpan.End()
		persist := tr.Start("persist", "run")
		// The run blob is stored before the digest is attached, so cached
		// results stay byte-identical whether telemetry was requested.
		s.cache.Store(key, out)
		if tel != nil && s.persistTelemetry(telKey, tel) {
			out.Telemetry = telemetryDigest(telKey)
			persist.Annotate("run+telemetry: " + out.Telemetry)
		}
		persist.End()
		return out, nil
	})
	if err != nil {
		return RunResult{}, err
	}
	out := v.(RunResult)
	if shared {
		s.dedups.Add(1)
		out.Deduped = true
	}
	return out, nil
}

// BatchItem is one entry of a batched run response: a result or an error.
type BatchItem struct {
	Result *RunResult `json:"result,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// RunBatch executes the requests concurrently (bounded by the worker pool)
// and returns one item per request, in order. The batch is planned before
// it runs: items that normalize identically collapse to one simulation
// (the stragglers copy the representative's result — running them through
// the singleflight wouldn't help, since a planned batch need not have them
// in flight simultaneously), and distinct items sharing a benchmark and
// window replay one recording via the per-window trace pool regardless of
// which worker runs them.
func (s *Service) RunBatch(ctx context.Context, reqs []RunRequest) []BatchItem {
	out := make([]BatchItem, len(reqs))
	reps := make(map[string]int) // normalized key -> representative index
	dups := make([][2]int, 0)    // (duplicate index, representative index)
	var run []int                // indices that actually execute
	for i := range reqs {
		n, err := reqs[i].normalize()
		if err != nil {
			run = append(run, i) // let Run report the error per item
			continue
		}
		key := n.cacheKey()
		if rep, ok := reps[key]; ok {
			dups = append(dups, [2]int{i, rep})
			continue
		}
		reps[key] = i
		run = append(run, i)
	}
	var wg sync.WaitGroup
	for _, i := range run {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Run(ctx, reqs[i])
			if err != nil {
				out[i].Error = err.Error()
				return
			}
			out[i].Result = &r
		}(i)
	}
	wg.Wait()
	for _, d := range dups {
		i, rep := d[0], d[1]
		if out[rep].Result == nil {
			out[i].Error = out[rep].Error
			continue
		}
		r := *out[rep].Result
		r.Deduped = true
		s.dedups.Add(1)
		out[i].Result = &r
	}
	return out
}

// ---------------------------------------------------------------------------
// Design-space sweeps.

// PolicySetting pairs an adaptation-policy name with a parameter string in
// a phase-space sweep ({"name": "interval", "params": "interval=7500"}).
type PolicySetting = sweep.PolicySetting

// SweepRequest asks for a design-space sweep (paper Section 4).
type SweepRequest struct {
	// Space is "sync" (1,024 fully synchronous configurations), "adaptive"
	// (256 adaptive MCD configurations) or "phase" (Phase-Adaptive machines,
	// one per Policies entry — the adaptation-policy axis).
	Space string `json:"space"`
	// Bench optionally restricts the sweep to one benchmark.
	Bench string `json:"bench,omitempty"`
	// Quick prunes the sync space to its direct-mapped I-cache points.
	Quick bool `json:"quick,omitempty"`
	// Policies are the policy settings of a "phase" sweep (names from
	// GET /v1/policies). Empty defaults to every registered policy at its
	// default parameters. Rejected on other spaces.
	Policies []sweep.PolicySetting `json:"policies,omitempty"`
	// Window is the instruction window per run (default 30,000).
	Window int64 `json:"window,omitempty"`
	// Workers is accepted for wire compatibility but ignored: the sweep's
	// cells run on the service's shared pool, whose size is the -workers
	// flag (result-neutral either way).
	Workers int `json:"workers,omitempty"`
	// Seed, JitterFrac and PLLScale are as in RunRequest.
	Seed       int64   `json:"seed,omitempty"`
	JitterFrac float64 `json:"jitter,omitempty"`
	PLLScale   float64 `json:"pllscale,omitempty"`
	// Priority orders the sweep against other jobs (result-neutral).
	Priority int `json:"priority,omitempty"`
	// TimeoutMS, when > 0, bounds the sweep's compute time in milliseconds
	// (shorter of this and the server's -request-timeout). Result-neutral.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

func (r SweepRequest) normalize() (SweepRequest, error) {
	switch r.Space {
	case "sync", "adaptive":
		if len(r.Policies) > 0 {
			return r, fmt.Errorf("service: policies are a phase-space axis (got space %q)", r.Space)
		}
	case "phase":
		if len(r.Policies) == 0 {
			// Every registered policy at default parameters — except
			// blob-requiring ones, which cannot be defaulted (there is no
			// artifact to default to).
			for _, in := range control.Infos() {
				if in.RequiresBlob {
					continue
				}
				r.Policies = append(r.Policies, sweep.PolicySetting{Name: in.Name})
			}
		}
		for _, p := range r.Policies {
			if err := control.ValidateSelection(p.Name, p.Params, p.Blob); err != nil {
				return r, fmt.Errorf("service: %w", err)
			}
		}
	default:
		return r, fmt.Errorf("service: unknown sweep space %q (want sync, adaptive or phase)", r.Space)
	}
	if r.Bench != "" {
		if _, ok := workload.ByName(r.Bench); !ok {
			return r, fmt.Errorf("service: unknown benchmark %q", r.Bench)
		}
	}
	if r.Window < 0 {
		return r, fmt.Errorf("service: negative window %d", r.Window)
	}
	so := sweep.Options{Window: r.Window, Seed: r.Seed, JitterFrac: r.JitterFrac, PLLScale: r.PLLScale}.WithDefaults()
	r.Window, r.Seed, r.PLLScale = so.Window, so.Seed, so.PLLScale
	if !(r.JitterFrac >= 0 && r.JitterFrac <= 0.05) {
		return r, fmt.Errorf("service: jitter fraction %v out of range [0, 0.05]", r.JitterFrac)
	}
	if !(r.PLLScale > 0) {
		return r, fmt.Errorf("service: pll scale %v must be positive", r.PLLScale)
	}
	if r.TimeoutMS < 0 {
		return r, fmt.Errorf("service: negative timeout_ms %d", r.TimeoutMS)
	}
	return r, nil
}

// AppBest is one benchmark's best configuration in a sweep.
type AppBest struct {
	Bench  string `json:"bench"`
	Config string `json:"config"`
	TimeFS int64  `json:"time_fs"`
}

// SweepResult summarizes a sweep.
type SweepResult struct {
	Space      string `json:"space"`
	Configs    int    `json:"configs"`
	Benchmarks int    `json:"benchmarks"`
	Window     int64  `json:"window"`
	// Best is the best-overall configuration (lowest geometric-mean time).
	Best string `json:"best"`
	// PerApp is each benchmark's individually best configuration.
	PerApp  []AppBest `json:"per_app"`
	Deduped bool      `json:"deduped,omitempty"`
}

// Sweep measures a whole design space, streaming per-cell results into
// running best/mean accumulators (the full times matrix is never held).
// The summary is persisted by the sweep layer, so repeating a sweep (even
// from another process) reloads it instead of simulating.
func (s *Service) Sweep(ctx context.Context, req SweepRequest) (SweepResult, error) {
	n, err := req.normalize()
	if err != nil {
		return SweepResult{}, err
	}
	ctx, cancel, err := s.dispatch(ctx, n.TimeoutMS)
	if err != nil {
		return SweepResult{}, err
	}
	defer cancel()
	keyReq := n
	keyReq.Priority = 0
	keyReq.Workers = 0
	keyReq.TimeoutMS = 0
	if len(keyReq.Policies) > 0 {
		// Key policy-axis artifacts by canonical digest, like every other
		// blob-carrying key payload.
		ps := append([]sweep.PolicySetting(nil), keyReq.Policies...)
		for i := range ps {
			if ps[i].Blob != "" {
				ps[i].Blob = "digest:" + control.BlobDigest(ps[i].Blob)
			}
		}
		keyReq.Policies = ps
	}
	key := resultcache.Key("sweepreq", keyReq)

	v, err, shared := s.flight.Do(ctx, key, func() (any, error) {
		specs := workload.Suite()
		if n.Bench != "" {
			spec, _ := workload.ByName(n.Bench)
			specs = []workload.Spec{spec}
		}
		var cfgs []core.Config
		switch n.Space {
		case "sync":
			if n.Quick {
				cfgs = sweep.QuickSyncSpace()
			} else {
				cfgs = sweep.SyncSpace()
			}
		case "phase":
			cfgs = sweep.PhaseSpace(n.Policies)
		default:
			cfgs = sweep.AdaptiveSpace()
		}

		var out SweepResult
		err := contain(func() error {
			so := sweep.Options{
				Window: n.Window, Workers: n.Workers, Seed: n.Seed,
				JitterFrac: n.JitterFrac, PLLScale: n.PLLScale,
				Traces: s.tracePool(n.Window),
				Exec:   s.pool, Priority: n.Priority,
				Ctx:             ctx,
				Tracer:          tracerFrom(ctx),
				CheckpointEvery: s.cfg.CheckpointEvery,
			}
			if s.cfg.RunParallel {
				so.RunParallel = core.MaxParallelDegree
			}
			sum, err := sweep.MeasureSummary(specs, cfgs, so)
			if err != nil {
				return err
			}
			if sum.Best < 0 {
				return fmt.Errorf("service: sweep produced no finite run times")
			}
			out = SweepResult{
				Space: n.Space, Configs: len(cfgs), Benchmarks: len(specs),
				Window: n.Window, Best: cfgs[sum.Best].Label(),
			}
			for si, bi := range sum.PerApp {
				out.PerApp = append(out.PerApp, AppBest{
					Bench:  specs[si].Name,
					Config: cfgs[bi].Label(),
					TimeFS: sum.PerAppTimes[si],
				})
			}
			return nil
		})
		if err != nil {
			return SweepResult{}, err
		}
		s.maybePrune()
		return out, nil
	})
	if err != nil {
		return SweepResult{}, err
	}
	out := v.(SweepResult)
	if shared {
		s.dedups.Add(1)
		out.Deduped = true
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Suite evaluation and experiment regeneration.

// SuiteRequest asks for the full Figure-6 evaluation pipeline.
type SuiteRequest struct {
	Window        int64   `json:"window,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	FullSyncSpace bool    `json:"full_sync_space,omitempty"`
	PLLScale      float64 `json:"pllscale,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	JitterFrac    float64 `json:"jitter,omitempty"`
	// Policy and PolicyParams select the adaptation policy of the
	// pipeline's Phase-Adaptive stages (default: the paper controllers);
	// PolicyBlob carries a blob-requiring policy's artifact.
	Policy       string `json:"policy,omitempty"`
	PolicyParams string `json:"policy_params,omitempty"`
	PolicyBlob   string `json:"policy_blob,omitempty"`
	Priority     int    `json:"priority,omitempty"`
	// TimeoutMS, when > 0, bounds the pipeline's compute time in
	// milliseconds (shorter of this and the server's -request-timeout).
	// Result-neutral: never part of a cache key.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// validate rejects parameter values the simulator would panic on or
// produce garbage from; the zero value of every field is valid (defaults).
func (r SuiteRequest) validate() error {
	if r.Window < 0 {
		return fmt.Errorf("service: negative window %d", r.Window)
	}
	if !(r.JitterFrac >= 0 && r.JitterFrac <= 0.05) {
		return fmt.Errorf("service: jitter fraction %v out of range [0, 0.05]", r.JitterFrac)
	}
	if r.PLLScale != 0 && !(r.PLLScale > 0) {
		return fmt.Errorf("service: pll scale %v must be positive", r.PLLScale)
	}
	if r.Policy != "" || r.PolicyParams != "" || r.PolicyBlob != "" {
		if err := control.ValidateSelection(r.Policy, r.PolicyParams, r.PolicyBlob); err != nil {
			return fmt.Errorf("service: %w", err)
		}
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("service: negative timeout_ms %d", r.TimeoutMS)
	}
	return nil
}

func (r SuiteRequest) options() experiment.Options {
	o := experiment.DefaultOptions()
	if r.Window > 0 {
		o.Window = r.Window
	}
	o.Workers = r.Workers
	o.FullSyncSpace = r.FullSyncSpace
	if r.PLLScale != 0 {
		o.PLLScale = r.PLLScale
	}
	if r.Seed != 0 {
		o.Seed = r.Seed
	}
	o.JitterFrac = r.JitterFrac
	o.Policy = r.Policy
	o.PolicyParams = r.PolicyParams
	o.PolicyBlob = r.PolicyBlob
	return o
}

// SuiteBench is one benchmark row of a suite summary.
type SuiteBench struct {
	Name       string  `json:"name"`
	ProgPct    float64 `json:"prog_pct"`
	PhasePct   float64 `json:"phase_pct"`
	ProgConfig string  `json:"prog_config"`
}

// SuiteSummary is the JSON-friendly digest of experiment.SuiteResult.
type SuiteSummary struct {
	BestSync   string       `json:"best_sync"`
	MeanProg   float64      `json:"mean_prog_pct"`
	MeanPhase  float64      `json:"mean_phase_pct"`
	Benchmarks []SuiteBench `json:"benchmarks"`
	Deduped    bool         `json:"deduped,omitempty"`
}

// Suite runs (or serves from the memo / persistent cache) the evaluation
// pipeline behind Figure 6, Table 9 and Figure 7. The pipeline's cells run
// on the service's shared pool at the request's priority.
func (s *Service) Suite(ctx context.Context, req SuiteRequest) (SuiteSummary, error) {
	if err := req.validate(); err != nil {
		return SuiteSummary{}, err
	}
	ctx, cancel, err := s.dispatch(ctx, req.TimeoutMS)
	if err != nil {
		return SuiteSummary{}, err
	}
	defer cancel()
	o := req.options()
	keyReq := o
	keyReq.Workers = 0
	if keyReq.PolicyBlob != "" {
		keyReq.PolicyBlob = "digest:" + control.BlobDigest(keyReq.PolicyBlob)
	}
	key := resultcache.Key("suitereq", keyReq)

	v, err, shared := s.flight.Do(ctx, key, func() (any, error) {
		var r *experiment.SuiteResult
		if err := contain(func() (err error) {
			o.Exec = s.pool
			o.Priority = req.Priority
			o.Ctx = ctx
			o.Tracer = tracerFrom(ctx)
			o.CheckpointEvery = s.cfg.CheckpointEvery
			r, err = experiment.RunSuite(o)
			return err
		}); err != nil {
			return SuiteSummary{}, err
		}
		out := SuiteSummary{
			BestSync:  r.BestSync.Label(),
			MeanProg:  r.MeanProg,
			MeanPhase: r.MeanPhase,
		}
		for i, spec := range r.Specs {
			out.Benchmarks = append(out.Benchmarks, SuiteBench{
				Name:       spec.Name,
				ProgPct:    r.ProgImprovement(i),
				PhasePct:   r.PhaseImprovement(i),
				ProgConfig: r.ProgConfigs[i].Label(),
			})
		}
		s.maybePrune()
		return out, nil
	})
	if err != nil {
		return SuiteSummary{}, err
	}
	out := v.(SuiteSummary)
	if shared {
		s.dedups.Add(1)
		out.Deduped = true
	}
	return out, nil
}

// ExperimentRequest asks for one regenerated table or figure by ID.
type ExperimentRequest struct {
	ID string `json:"id"`
	SuiteRequest
}

// Experiment regenerates one of the paper's tables or figures.
func (s *Service) Experiment(ctx context.Context, req ExperimentRequest) (*experiment.Table, error) {
	if req.ID == "" {
		return nil, fmt.Errorf("service: missing experiment id")
	}
	if err := req.SuiteRequest.validate(); err != nil {
		return nil, err
	}
	ctx, cancel, err := s.dispatch(ctx, req.TimeoutMS)
	if err != nil {
		return nil, err
	}
	defer cancel()
	o := req.SuiteRequest.options()
	o.Exec = s.pool
	o.Priority = req.Priority
	o.Ctx = ctx
	o.CheckpointEvery = s.cfg.CheckpointEvery
	var t *experiment.Table
	if err := contain(func() (err error) {
		t, err = experiment.Run(req.ID, o)
		return err
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Introspection.

// Stats is the service's operational snapshot (GET /v1/stats).
type Stats struct {
	// Workers is the pool size; Queued the pending (admitted, not yet
	// running) cells; InFlight the executing cells.
	Workers  int   `json:"workers"`
	Queued   int   `json:"queued"`
	InFlight int64 `json:"in_flight"`
	// Completed counts finished cells; Rejected counts queue-full refusals;
	// Purged counts cells removed unrun when their request was cancelled.
	Completed int64 `json:"completed"`
	Rejected  int64 `json:"rejected"`
	Purged    int64 `json:"purged"`
	// Steals counts work-stealing events between workers; StolenCells the
	// cells they moved.
	Steals      int64 `json:"steals"`
	StolenCells int64 `json:"stolen_cells"`
	// RateLimited counts requests refused with 429 by admission control.
	RateLimited int64 `json:"rate_limited"`
	// Simulations counts single-run simulations this service executed
	// (cache hits and deduped joins don't increment it).
	Simulations int64 `json:"simulations"`
	// DedupHits counts requests served by joining an in-flight twin.
	DedupHits int64 `json:"dedup_hits"`
	// RunsParallel counts completed simulation runs that executed with
	// intra-run stage parallelism; ParallelDegree is the degree of the
	// most recent one (0 until any parallel run completes). Process-wide,
	// read from the same simulator-boundary atomics as /metrics.
	RunsParallel   int64 `json:"runs_parallel"`
	ParallelDegree int64 `json:"parallel_degree"`
	// SuiteComputations and SweepComputations are the process-wide
	// counters of actually-executed pipeline runs and sweep measurements.
	SuiteComputations int64 `json:"suite_computations"`
	SweepComputations int64 `json:"sweep_computations"`
	// CheckpointsWritten counts sweep/phase progress checkpoints persisted
	// (periodic plus cancellation flushes); CheckpointsResumed counts sweeps
	// that restored one instead of starting cold; ResumedCells the completed
	// cells those resumes skipped. Process-wide, like the computation
	// counters.
	CheckpointsWritten int64 `json:"checkpoints_written"`
	CheckpointsResumed int64 `json:"checkpoints_resumed"`
	ResumedCells       int64 `json:"resumed_cells"`
	// ScrubQuarantined counts undecodable cache blobs Scrub passes moved to
	// quarantine over this service's lifetime.
	ScrubQuarantined int64 `json:"scrub_quarantined"`
	// TelemetryRuns counts telemetry artifacts serialized in this process;
	// TelemetryBytes their total encoded size. Process-wide, read from the
	// same simulator-boundary atomics as /metrics.
	TelemetryRuns  int64 `json:"telemetry_runs"`
	TelemetryBytes int64 `json:"telemetry_bytes"`
	// Cache reports the persistent cache's counters; CacheDir its root
	// ("" when persistence is disabled).
	Cache    resultcache.Stats `json:"cache"`
	CacheDir string            `json:"cache_dir,omitempty"`
	// Recordings reports the recording store's counters.
	Recordings recstore.Stats `json:"recordings"`
}

// Stats returns a snapshot of the service's counters.
func (s *Service) Stats() Stats {
	st := Stats{
		Workers:            s.pool.Workers(),
		Queued:             s.pool.Pending(),
		InFlight:           s.pool.InFlight(),
		Completed:          s.pool.Completed(),
		Rejected:           s.pool.Rejected(),
		Purged:             s.pool.Purged(),
		Steals:             s.pool.Steals(),
		StolenCells:        s.pool.StolenCells(),
		RateLimited:        s.rateLimited.Value(),
		Simulations:        s.sims.Load(),
		DedupHits:          s.dedups.Load(),
		RunsParallel:       core.SimRunsParallel(),
		ParallelDegree:     core.SimParallelDegree(),
		SuiteComputations:  experiment.SuiteComputations(),
		SweepComputations:  sweep.MeasureComputations(),
		CheckpointsWritten: sweep.CheckpointsWritten(),
		CheckpointsResumed: sweep.CheckpointsResumed(),
		ResumedCells:       sweep.ResumedCells(),
		ScrubQuarantined:   s.quarantined.Load(),
		TelemetryRuns:      core.TelemetryRuns(),
		TelemetryBytes:     core.TelemetryBytes(),
		Cache:              s.cache.Stats(),
		CacheDir:           s.cache.Dir(),
	}
	if s.recs != nil {
		st.Recordings = s.recs.Stats()
	}
	return st
}
