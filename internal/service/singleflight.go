package service

import (
	"context"
	"sync"
)

// flightGroup deduplicates concurrent work by key: while a call for a key
// is in flight, later callers for the same key wait for — and share — its
// result instead of starting their own. This is the layer that turns N
// identical concurrent requests into one simulation; the persistent cache
// covers the sequential case.
//
// (A hand-rolled singleflight: the repo deliberately has no dependencies,
// and the few lines below are the whole contract we need.)
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when val/err are final
	val  any
	err  error
}

// Do runs fn once per key among concurrent callers. shared reports whether
// this caller joined an existing flight (true for every caller but the one
// that executed fn). A joiner whose ctx expires stops waiting and returns
// its own ctx error — its deadline must not be extended by an earlier
// caller's longer one — while the flight itself keeps running under the
// initiating caller's context.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-done:
			return nil, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	close(c.done)

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.val, c.err, false
}
