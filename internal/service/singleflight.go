package service

import "sync"

// flightGroup deduplicates concurrent work by key: while a call for a key
// is in flight, later callers for the same key wait for — and share — its
// result instead of starting their own. This is the layer that turns N
// identical concurrent requests into one simulation; the persistent cache
// covers the sequential case.
//
// (A hand-rolled singleflight: the repo deliberately has no dependencies,
// and the few lines below are the whole contract we need.)
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

// Do runs fn once per key among concurrent callers. shared reports whether
// this caller joined an existing flight (true for every caller but the one
// that executed fn).
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.val, c.err, false
}
