package service

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"gals/internal/core"
	"gals/internal/metrics"
)

// sumFamily totals every sample of one metric family across its label sets.
func sumFamily(sc *metrics.Scrape, name string) float64 {
	var total float64
	for _, s := range sc.Samples {
		if s.Name == name {
			total += s.Value
		}
	}
	return total
}

// TestTelemetryEndToEnd drives the whole artifact path over real HTTP
// (run under -race in CI): a "telemetry":true run returns a digest, the
// artifact fetched by that digest reconciles its event counts exactly with
// the run's Stats.Reconfigs AND with the gals_reconfig_events_total scrape
// delta, and the cached re-issue of the same request round-trips the same
// digest without recomputing.
func TestTelemetryEndToEnd(t *testing.T) {
	s := newTestService(t, Config{CacheDir: t.TempDir(), Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	before := scrape(t, srv.URL)

	body := `{"bench": "gcc", "window": 30000, "telemetry": true}`
	var run RunResult
	doJSON(t, http.MethodPost, srv.URL+"/v1/run", body, &run)
	if run.Telemetry == "" {
		t.Fatal("telemetry run returned no artifact digest")
	}
	if run.Cached {
		t.Fatal("first telemetry run claims to be cached")
	}
	if run.Stats.Reconfigs == 0 {
		t.Fatal("phase run committed no reconfigurations; the reconciliation below is vacuous")
	}

	after := scrape(t, srv.URL)

	var tel core.Telemetry
	code, _ := doJSON(t, http.MethodGet, srv.URL+"/v1/telemetry/"+run.Telemetry, "", &tel)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/telemetry/%s = %d", run.Telemetry, code)
	}
	if tel.Version != core.TelemetryVersion {
		t.Errorf("artifact version %d, want %d", tel.Version, core.TelemetryVersion)
	}
	if tel.Workload != "gcc" || tel.Window != 30000 {
		t.Errorf("artifact metadata: workload %q window %d", tel.Workload, tel.Window)
	}

	// Three-way reconciliation: artifact events == Stats.Reconfigs ==
	// scrape delta of gals_reconfig_events_total (only this run happened
	// in between, so the process-wide counter moved by exactly this run).
	eventTotal := int64(len(tel.Events)) + tel.DroppedEvents
	if eventTotal != run.Stats.Reconfigs {
		t.Errorf("artifact holds %d events, Stats.Reconfigs = %d", eventTotal, run.Stats.Reconfigs)
	}
	delta := sumFamily(after, "gals_reconfig_events_total") - sumFamily(before, "gals_reconfig_events_total")
	if int64(delta) != run.Stats.Reconfigs {
		t.Errorf("gals_reconfig_events_total moved by %.0f, Stats.Reconfigs = %d", delta, run.Stats.Reconfigs)
	}
	// Per-structure counts in the artifact must cover every committed event.
	var byStructure int64
	for _, n := range tel.EventsByStructure() {
		byStructure += n
	}
	if byStructure+tel.DroppedEvents != run.Stats.Reconfigs {
		t.Errorf("per-structure sum %d + dropped %d != Reconfigs %d", byStructure, tel.DroppedEvents, run.Stats.Reconfigs)
	}

	// Artifact accounting surfaced in /v1/stats and /metrics.
	var st Stats
	doJSON(t, http.MethodGet, srv.URL+"/v1/stats", "", &st)
	if st.TelemetryRuns < 1 || st.TelemetryBytes <= 0 {
		t.Errorf("stats report %d telemetry runs, %d bytes", st.TelemetryRuns, st.TelemetryBytes)
	}

	// Cached round-trip: same request, same digest, no recomputation.
	var again RunResult
	doJSON(t, http.MethodPost, srv.URL+"/v1/run", body, &again)
	if !again.Cached {
		t.Error("second identical telemetry run did not hit the cache")
	}
	if again.Telemetry != run.Telemetry {
		t.Errorf("cached run returned digest %q, first run %q", again.Telemetry, run.Telemetry)
	}
	if again.TimeFS != run.TimeFS || again.Stats.Reconfigs != run.Stats.Reconfigs {
		t.Error("cached telemetry run disagrees with the computed one")
	}
}

// TestTelemetryResultNeutral pins the exclusion rule at the HTTP layer: the
// same simulation with and without telemetry must return identical results,
// and the telemetry-off response must never carry a digest.
func TestTelemetryResultNeutral(t *testing.T) {
	s := newTestService(t, Config{CacheDir: t.TempDir(), Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var plain, telled RunResult
	doJSON(t, http.MethodPost, srv.URL+"/v1/run", `{"bench": "art", "window": 20000}`, &plain)
	doJSON(t, http.MethodPost, srv.URL+"/v1/run", `{"bench": "art", "window": 20000, "telemetry": true}`, &telled)

	if plain.Telemetry != "" {
		t.Errorf("telemetry-off run carries digest %q", plain.Telemetry)
	}
	if telled.Telemetry == "" {
		t.Error("telemetry-on run carries no digest")
	}
	if plain.TimeFS != telled.TimeFS || !reflect.DeepEqual(plain.Stats, telled.Stats) {
		t.Error("telemetry flag changed the simulation result")
	}
	// (The telemetry twin recomputes once — the plain run produced no
	// artifact — but its result blob lands under the SAME cache key.)

	// Exclusion rule, both directions: a plain re-issue hits the cache the
	// telemetry run just (re)wrote, and a telemetry re-issue hits both the
	// result and the artifact; neither simulates again.
	var plainAgain, telledAgain RunResult
	doJSON(t, http.MethodPost, srv.URL+"/v1/run", `{"bench": "art", "window": 20000}`, &plainAgain)
	doJSON(t, http.MethodPost, srv.URL+"/v1/run", `{"bench": "art", "window": 20000, "telemetry": true}`, &telledAgain)
	if !plainAgain.Cached {
		t.Error("plain re-issue missed the cache: the telemetry flag leaked into the run cache key")
	}
	if plainAgain.Telemetry != "" {
		t.Errorf("cached telemetry-off run carries digest %q", plainAgain.Telemetry)
	}
	if !telledAgain.Cached || telledAgain.Telemetry != telled.Telemetry {
		t.Errorf("telemetry re-issue: cached %v digest %q, want cached with digest %q",
			telledAgain.Cached, telledAgain.Telemetry, telled.Telemetry)
	}
	if !reflect.DeepEqual(plainAgain.Stats, telled.Stats) {
		t.Error("cached plain result differs from the telemetry run's")
	}
}

// TestTelemetryDigestValidation pins the endpoint's error contract.
func TestTelemetryDigestValidation(t *testing.T) {
	s := newTestService(t, Config{CacheDir: t.TempDir(), Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var out map[string]string
	if code, _ := doJSON(t, http.MethodGet, srv.URL+"/v1/telemetry/nope", "", &out); code != http.StatusBadRequest {
		t.Errorf("malformed digest returned %d, want 400", code)
	}
	unknown := "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"
	if code, _ := doJSON(t, http.MethodGet, srv.URL+"/v1/telemetry/"+unknown, "", &out); code != http.StatusNotFound {
		t.Errorf("unknown digest returned %d, want 404", code)
	}
}
