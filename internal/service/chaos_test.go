// Chaos tests: every failure mode galsd is documented to degrade through,
// driven end to end (HTTP in, HTTP out) and pinned to the degradation
// contract — corrupt state recomputes bit-identically, saturation sheds
// load with Retry-After, deadlines map to 504 within their bound, and
// nothing leaks. They live in an external test package so they can exercise
// gals/client against a real handler.
package service_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gals/client"
	"gals/internal/faultinject"
	"gals/internal/service"
)

func newChaosService(t *testing.T, cfg service.Config) *service.Service {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// sameRun strips the provenance flags (Cached/Deduped legitimately differ
// between a computed and a recovered run) and compares everything that is
// the result.
func sameRun(a, b service.RunResult) bool {
	a.Cached, a.Deduped = false, false
	b.Cached, b.Deduped = false, false
	return reflect.DeepEqual(a, b)
}

// waitSettled polls until the goroutine count returns to within slack of
// base — the hand-rolled leak check: anything still running after the
// deadline is a leaked worker or watcher.
func waitSettled(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base+slack {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", base, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosCorruptCacheBlobRecovers corrupts persisted result blobs on disk
// and verifies the contract: the damaged entries read as misses, the run
// recomputes, and the recomputed result is identical to the original.
func TestChaosCorruptCacheBlobRecovers(t *testing.T) {
	dir := t.TempDir()
	svc := newChaosService(t, service.Config{CacheDir: dir, Workers: 2})
	req := service.RunRequest{Bench: "gcc", Window: 10_000}

	first, err := svc.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := svc.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("second run was not a cache hit (test setup is wrong)")
	}

	// Overwrite every result blob (not the recordings) with garbage.
	blobs := 0
	filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.Contains(p, "recordings") {
			return nil
		}
		if werr := os.WriteFile(p, []byte("not json at all {{{"), 0o644); werr == nil {
			blobs++
		}
		return nil
	})
	if blobs == 0 {
		t.Fatal("no cache blobs found to corrupt")
	}

	got, err := svc.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("run against corrupt cache: %v", err)
	}
	if got.Cached {
		t.Fatal("corrupt blob served as a cache hit")
	}
	if !sameRun(first, got) {
		t.Fatalf("recomputed result differs from original:\n%+v\n%+v", got, first)
	}
}

// TestChaosInjectedCacheReadFaults drives the same recovery through the
// fault-injection hooks — error, corrupt and truncate modes — without
// touching the disk, and verifies the injection counters observe it.
func TestChaosInjectedCacheReadFaults(t *testing.T) {
	defer faultinject.Disable()
	svc := newChaosService(t, service.Config{CacheDir: t.TempDir(), Workers: 2})
	req := service.RunRequest{Bench: "art", Window: 10_000}

	first, err := svc.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"error", "corrupt", "truncate"} {
		if err := faultinject.Enable("resultcache.read=" + mode); err != nil {
			t.Fatal(err)
		}
		got, err := svc.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if got.Cached {
			t.Fatalf("mode %s: injected read fault still served a hit", mode)
		}
		if !sameRun(first, got) {
			t.Fatalf("mode %s: recomputed result differs from original", mode)
		}
		if faultinject.Injected(faultinject.ResultCacheRead) == 0 {
			t.Fatalf("mode %s: injection counter did not move", mode)
		}
		faultinject.Disable()
	}
}

// TestChaosTruncatedSlabRerecords truncates a recording slab between two
// service lifetimes sharing a cache directory: the second service must
// detect the damage, re-record, and produce an identical result.
func TestChaosTruncatedSlabRerecords(t *testing.T) {
	dir := t.TempDir()
	req := service.RunRequest{Bench: "apsi", Window: 8_000}

	svc1, err := service.New(service.Config{CacheDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	first, err := svc1.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	svc1.Close()

	var slabs int
	filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(p) == ".rec" {
			fi, _ := os.Stat(p)
			os.Truncate(p, fi.Size()/2)
			slabs++
		}
		return nil
	})
	if slabs == 0 {
		t.Fatal("no recording slabs found to truncate")
	}
	// Remove the result blobs too, so the second run must actually replay
	// the (re-recorded) trace rather than answering from the result cache.
	filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(p) == ".json" {
			os.Remove(p)
		}
		return nil
	})

	svc2 := newChaosService(t, service.Config{CacheDir: dir, Workers: 2})
	got, err := svc2.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("run against truncated slab: %v", err)
	}
	if !sameRun(first, got) {
		t.Fatal("re-recorded run differs from the original")
	}
	if s := svc2.Recordings().Stats(); s.Rerecorded == 0 {
		t.Fatalf("recstore stats %+v, want Rerecorded > 0", s)
	}
}

// TestChaosSaturatedQueueShedsWithRetryAfter fills a tiny pool over HTTP
// and verifies load shedding: excess requests get 503 + Retry-After (not
// hangs, not 500s), accepted ones complete, and no goroutine outlives the
// server — the hand-rolled leak check of the CI chaos job.
func TestChaosSaturatedQueueShedsWithRetryAfter(t *testing.T) {
	base := runtime.NumGoroutine()

	svc, err := service.New(service.Config{Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())

	cl := client.New(client.Options{BaseURL: ts.URL, MaxAttempts: 1})
	var (
		mu       sync.Mutex
		ok, shed int
	)
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			_, err := cl.Run(context.Background(),
				client.RunRequest{Bench: "gcc", Window: 200_000, Seed: seed})
			mu.Lock()
			defer mu.Unlock()
			var ae *client.APIError
			switch {
			case err == nil:
				ok++
			case errors.As(err, &ae) && ae.StatusCode == http.StatusServiceUnavailable:
				if ae.RetryAfter <= 0 {
					t.Error("503 without a Retry-After")
				}
				shed++
			default:
				t.Errorf("unexpected failure: %v", err)
			}
		}(int64(i + 1))
	}
	wg.Wait()

	if ok == 0 || shed == 0 {
		t.Fatalf("saturation did not split: %d completed, %d shed (want both > 0)", ok, shed)
	}
	ts.Close()
	svc.Close()
	waitSettled(t, base, 4)
}

// TestCancelRunDeadline504 pins the deadline contract end to end: a run
// whose compute exceeds the server's -request-timeout returns 504, and the
// response arrives within the timeout plus one cancellation quantum's worth
// of slack — not after the full window would have simulated.
func TestCancelRunDeadline504(t *testing.T) {
	svc := newChaosService(t, service.Config{Workers: 2, RequestTimeout: 300 * time.Millisecond})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	cl := client.New(client.Options{BaseURL: ts.URL, MaxAttempts: 1})

	start := time.Now()
	_, err := cl.Run(context.Background(),
		client.RunRequest{Bench: "gcc", Window: 2_000_000_000})
	elapsed := time.Since(start)

	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("Run = %v, want 504", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("504 took %v, want within the timeout plus scheduling slack", elapsed)
	}

	// The per-request timeout_ms field bounds a single request the same
	// way, without a server-wide deadline.
	svc2 := newChaosService(t, service.Config{Workers: 2})
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()
	cl2 := client.New(client.Options{BaseURL: ts2.URL, MaxAttempts: 1})
	_, err = cl2.Run(context.Background(),
		client.RunRequest{Bench: "gcc", Window: 2_000_000_000, TimeoutMS: 200})
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timeout_ms run = %v, want 504", err)
	}

	// With a cache directory the first request must also record the trace,
	// and a paper-scale recording dwarfs the deadline. The recording itself
	// observes cancellation, so the 504 still arrives promptly and the
	// abandoned slab never lands in the store.
	dir := t.TempDir()
	svc3 := newChaosService(t, service.Config{CacheDir: dir, Workers: 2, RequestTimeout: 300 * time.Millisecond})
	ts3 := httptest.NewServer(svc3.Handler())
	defer ts3.Close()
	cl3 := client.New(client.Options{BaseURL: ts3.URL, MaxAttempts: 1})
	start = time.Now()
	_, err = cl3.Run(context.Background(),
		client.RunRequest{Bench: "gcc", Window: 2_000_000_000})
	elapsed = time.Since(start)
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("cold-recording run = %v, want 504", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("cold-recording 504 took %v, want within the timeout plus slack", elapsed)
	}
	slabs, _ := filepath.Glob(filepath.Join(dir, "recordings", "*", "*.rec"))
	if len(slabs) != 0 {
		t.Fatalf("abandoned recording left slabs on disk: %v", slabs)
	}
}

// TestCancelMidSweepDrainsAndRecovers cancels a sweep mid-flight via its
// deadline and pins the teardown contract: queued cells are purged (the
// Stats counter moves), the pool drains to idle, nothing partial persists,
// and the identical sweep rerun afterwards completes with results equal to
// a never-cancelled service's.
func TestCancelMidSweepDrainsAndRecovers(t *testing.T) {
	sweepReq := service.SweepRequest{Space: "adaptive", Bench: "gcc", Window: 60_000}

	dir := t.TempDir()
	svc := newChaosService(t, service.Config{CacheDir: dir, Workers: 2})
	short := sweepReq
	short.TimeoutMS = 250
	if _, err := svc.Sweep(context.Background(), short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("sweep under 250ms deadline = %v, want DeadlineExceeded", err)
	}

	st := svc.Stats()
	if st.Purged == 0 {
		t.Fatalf("stats %+v, want Purged > 0 after mid-sweep cancel", st)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st = svc.Stats()
		if st.InFlight == 0 && st.Queued == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool did not drain after cancel: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	got, err := svc.Sweep(context.Background(), sweepReq)
	if err != nil {
		t.Fatalf("rerun after cancel: %v", err)
	}

	ref := newChaosService(t, service.Config{CacheDir: t.TempDir(), Workers: 2})
	want, err := ref.Sweep(context.Background(), sweepReq)
	if err != nil {
		t.Fatal(err)
	}
	got.Deduped, want.Deduped = false, false
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-cancel sweep differs from a clean service's:\n%+v\n%+v", got, want)
	}
}

// TestCancelRacesShutdown races expiring request deadlines against
// Shutdown: in-flight runs are cancelled while the service tears down its
// pools and slab references. Run under -race, this pins that the two
// teardown paths never double-release, and that the cache directory is
// left reusable.
func TestCancelRacesShutdown(t *testing.T) {
	dir := t.TempDir()
	svc, err := service.New(service.Config{
		CacheDir: dir, Workers: 2, RequestTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			// Windows far beyond the 50ms deadline: every one of these
			// dies by deadline or by Close, whether it was caught still
			// recording the shared trace or already simulating.
			svc.Run(context.Background(),
				service.RunRequest{Bench: "gcc", Window: 500_000, Seed: seed})
		}(int64(i + 1))
	}
	time.Sleep(20 * time.Millisecond) // let the runs start expiring
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx, nil); err != nil {
		t.Fatalf("shutdown racing cancellations: %v", err)
	}
	wg.Wait()

	// The directory the race left behind must serve a fresh service.
	svc2 := newChaosService(t, service.Config{CacheDir: dir, Workers: 2})
	if _, err := svc2.Run(context.Background(), service.RunRequest{Bench: "gcc", Window: 5_000}); err != nil {
		t.Fatalf("cache dir unusable after racing shutdown: %v", err)
	}
}

// TestChaosRetryingClientMixedWorkload is the acceptance scenario: a
// rate-limited, fault-injected galsd serving a mixed workload to the
// retrying client, which must finish it with zero non-retryable failures.
func TestChaosRetryingClientMixedWorkload(t *testing.T) {
	defer faultinject.Disable()
	if err := faultinject.Enable("service.dispatch=error:0.2"); err != nil {
		t.Fatal(err)
	}
	svc := newChaosService(t, service.Config{
		CacheDir:  t.TempDir(),
		Workers:   2,
		RateLimit: 50, RateBurst: 8,
		AuthToken: "chaos-token",
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	cl := client.New(client.Options{
		BaseURL:     ts.URL,
		Token:       "chaos-token",
		MaxAttempts: 10,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
	})

	type op func() error
	var ops []op
	for i := 0; i < 12; i++ {
		seed := int64(i%4 + 1) // repeats: some hit cache/dedup, some compute
		ops = append(ops, func() error {
			res, err := cl.Run(context.Background(),
				client.RunRequest{Bench: "gcc", Window: 5_000, Seed: seed})
			if err == nil && res.Workload == "" {
				return fmt.Errorf("empty result")
			}
			return err
		})
	}
	for i := 0; i < 4; i++ {
		ops = append(ops, func() error {
			_, err := cl.ServerStats(context.Background())
			return err
		})
	}
	ops = append(ops, func() error {
		// Batch items carry per-item errors inside a 200 response, so the
		// client's transport-level retry can't see them; a well-behaved
		// batch caller re-submits failed items itself.
		reqs := []client.RunRequest{
			{Bench: "art", Window: 5_000}, {Bench: "apsi", Window: 5_000},
		}
		for attempt := 0; attempt < 10; attempt++ {
			items, err := cl.RunBatch(context.Background(), reqs)
			if err != nil {
				return err
			}
			var failed []client.RunRequest
			for i, it := range items {
				if it.Error != "" {
					failed = append(failed, reqs[i])
				}
			}
			if len(failed) == 0 {
				return nil
			}
			reqs = failed
		}
		return fmt.Errorf("batch items still failing after 10 rounds")
	})

	var wg sync.WaitGroup
	errs := make(chan error, len(ops))
	sem := make(chan struct{}, 4)
	for _, o := range ops {
		wg.Add(1)
		go func(o op) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs <- o()
		}(o)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("mixed workload op failed through retries: %v", err)
		}
	}
}
