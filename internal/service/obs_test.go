package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gals/internal/metrics"
)

// doJSON posts body to url and decodes the response into out, failing the
// test on transport errors. Returns the response status and request ID.
func doJSON(t *testing.T, method, url, body string, out any) (int, string) {
	t.Helper()
	var resp *http.Response
	var err error
	if method == http.MethodGet {
		resp, err = http.Get(url)
	} else {
		resp, err = http.Post(url, "application/json", strings.NewReader(body))
	}
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s %s: %v", method, url, err)
		}
	}
	return resp.StatusCode, resp.Header.Get("X-Request-Id")
}

func scrape(t *testing.T, base string) *metrics.Scrape {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q, want text/plain", ct)
	}
	sc, err := metrics.Parse(resp.Body)
	if err != nil {
		t.Fatalf("exposition did not parse: %v", err)
	}
	return sc
}

// TestMetricsEndpoint drives real traffic and checks the scrape: the
// exposition parses, the per-endpoint latency histogram saw the requests,
// the cache counters moved, and the queue-depth gauge exists.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestService(t, Config{CacheDir: t.TempDir(), Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := `{"bench": "gcc", "window": 3000}`
	var run RunResult
	doJSON(t, http.MethodPost, srv.URL+"/v1/run", body, &run)
	doJSON(t, http.MethodPost, srv.URL+"/v1/run", body, &run) // cache hit
	if !run.Cached {
		t.Fatalf("second identical run not served from cache")
	}

	sc := scrape(t, srv.URL)
	if typ := sc.Types["gals_http_request_seconds"]; typ != "histogram" {
		t.Errorf("gals_http_request_seconds TYPE = %q, want histogram", typ)
	}
	buckets := sc.Buckets("gals_http_request_seconds", metrics.Label{Key: "endpoint", Value: "/v1/run"})
	if len(buckets) == 0 {
		t.Fatalf("no latency buckets for /v1/run")
	}
	last := buckets[len(buckets)-1]
	if last.CumulativeCount < 2 {
		t.Errorf("latency histogram counted %v requests, want >= 2", last.CumulativeCount)
	}
	if hits, ok := sc.Value("gals_cache_hits_total"); !ok || hits < 1 {
		t.Errorf("gals_cache_hits_total = %v (present %v), want >= 1", hits, ok)
	}
	if _, ok := sc.Value("gals_pool_queue_depth"); !ok {
		t.Errorf("gals_pool_queue_depth gauge missing")
	}
	if runs, ok := sc.Value("gals_sim_runs_total"); !ok || runs < 1 {
		t.Errorf("gals_sim_runs_total = %v (present %v), want >= 1", runs, ok)
	}
	if v, ok := sc.Value("gals_build_info"); !ok || v != 1 {
		t.Errorf("gals_build_info = %v (present %v), want 1", v, ok)
	}
	if code, ok := sc.Value("gals_http_responses_total", metrics.Label{Key: "code", Value: "200"}); !ok || code < 2 {
		t.Errorf("gals_http_responses_total{code=200} = %v (present %v), want >= 2", code, ok)
	}
}

// TestMetricsMatchStats pins the consistency satellite: every counter
// /v1/stats reports must agree with its /metrics series at rest (both
// read the same authoritative atomics).
func TestMetricsMatchStats(t *testing.T) {
	s := newTestService(t, Config{CacheDir: t.TempDir(), Workers: 2, RateLimit: 1000})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := `{"bench": "gcc", "window": 3000}`
	var run RunResult
	doJSON(t, http.MethodPost, srv.URL+"/v1/run", body, &run)
	doJSON(t, http.MethodPost, srv.URL+"/v1/run", body, &run)

	var st Stats
	doJSON(t, http.MethodGet, srv.URL+"/v1/stats", "", &st)
	sc := scrape(t, srv.URL)

	pairs := []struct {
		series string
		stat   int64
	}{
		{"gals_pool_cells_completed_total", st.Completed},
		{"gals_pool_cells_rejected_total", st.Rejected},
		{"gals_pool_cells_purged_total", st.Purged},
		{"gals_pool_steals_total", st.Steals},
		{"gals_pool_stolen_cells_total", st.StolenCells},
		{"gals_http_rate_limited_total", st.RateLimited},
		{"gals_dedup_hits_total", st.DedupHits},
		{"gals_simulations_total", st.Simulations},
		{"gals_sim_runs_parallel_total", st.RunsParallel},
		{"gals_sim_parallel_degree", st.ParallelDegree},
		{"gals_cache_hits_total", st.Cache.Hits},
		{"gals_cache_misses_total", st.Cache.Misses},
		{"gals_cache_puts_total", st.Cache.Puts},
		{"gals_cache_corrupt_total", st.Cache.Corrupt},
		{"gals_cache_evictions_total", st.Cache.Evictions},
		{"gals_recordings_recorded_total", st.Recordings.Recorded},
		{"gals_recordings_corrupt_total", st.Recordings.Corrupt},
		{"gals_checkpoints_written_total", st.CheckpointsWritten},
		{"gals_checkpoints_resumed_total", st.CheckpointsResumed},
		{"gals_resumed_cells_total", st.ResumedCells},
		{"gals_scrub_quarantined_total", st.ScrubQuarantined},
		{"gals_telemetry_runs_total", st.TelemetryRuns},
		{"gals_telemetry_bytes_total", st.TelemetryBytes},
	}
	for _, p := range pairs {
		v, ok := sc.Value(p.series)
		if !ok {
			t.Errorf("series %s missing from /metrics", p.series)
			continue
		}
		if int64(v) != p.stat {
			t.Errorf("%s = %v but /v1/stats reports %d", p.series, v, p.stat)
		}
	}
}

// TestParallelRunObservability pins the intra-run parallelism surface: a
// run on a quiet parallel-enabled server executes in parallel mode, and
// the parallel counters, the degree gauge and the per-mode run-duration
// histogram all report it — in /v1/stats and /metrics alike.
func TestParallelRunObservability(t *testing.T) {
	s := newTestService(t, Config{CacheDir: t.TempDir(), Workers: 4, RunParallel: true})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	before := s.Stats().RunsParallel
	var run RunResult
	doJSON(t, http.MethodPost, srv.URL+"/v1/run", `{"bench": "gcc", "window": 3000}`, &run)

	var st Stats
	doJSON(t, http.MethodGet, srv.URL+"/v1/stats", "", &st)
	if st.RunsParallel <= before {
		t.Errorf("runs_parallel = %d, want > %d after a parallel-enabled run", st.RunsParallel, before)
	}
	if st.ParallelDegree < 2 {
		t.Errorf("parallel_degree = %d, want >= 2 (3 idle workers were available)", st.ParallelDegree)
	}

	sc := scrape(t, srv.URL)
	if n, ok := sc.Value("gals_run_seconds_count", metrics.Label{Key: "mode", Value: "parallel"}); !ok || n < 1 {
		t.Errorf("gals_run_seconds_count{mode=parallel} = %v (present %v), want >= 1", n, ok)
	}
	// The sequential histogram child must not exist yet on this server: its
	// single run took the parallel path.
	if n, ok := sc.Value("gals_run_seconds_count", metrics.Label{Key: "mode", Value: "sequential"}); ok && n > 0 {
		t.Errorf("gals_run_seconds_count{mode=sequential} = %v, want absent on a parallel-only server", n)
	}
}

// TestRateLimitCounter pins the 429 accounting: refused requests land in
// both the stats field and the metric.
func TestRateLimitCounter(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, RateLimit: 0.001, RateBurst: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := `{"bench": "gcc", "window": 2000}`
	var saw429 bool
	for i := 0; i < 3; i++ {
		code, _ := doJSON(t, http.MethodPost, srv.URL+"/v1/run", body, nil)
		if code == http.StatusTooManyRequests {
			saw429 = true
		}
	}
	if !saw429 {
		t.Fatalf("no request was rate limited at 0.001 rps burst 1")
	}
	var st Stats
	doJSON(t, http.MethodGet, srv.URL+"/v1/stats", "", &st)
	if st.RateLimited < 1 {
		t.Errorf("stats.rate_limited = %d, want >= 1", st.RateLimited)
	}
	if v, _ := scrape(t, srv.URL).Value("gals_http_rate_limited_total"); int64(v) != st.RateLimited {
		t.Errorf("gals_http_rate_limited_total = %v, stats says %d", v, st.RateLimited)
	}
}

// TestTraceInline checks ?trace=1: the response wraps {"result","trace"}
// and the trace carries the run's span tree.
func TestTraceInline(t *testing.T) {
	s := newTestService(t, Config{CacheDir: t.TempDir(), Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var wrapped struct {
		Result RunResult          `json:"result"`
		Trace  *metrics.TraceDump `json:"trace"`
	}
	doJSON(t, http.MethodPost, srv.URL+"/v1/run?trace=1", `{"bench": "gcc", "window": 3000}`, &wrapped)
	if wrapped.Result.Workload == "" {
		t.Fatalf("traced response missing result: %+v", wrapped)
	}
	if wrapped.Trace == nil || wrapped.Trace.Name != "run" {
		t.Fatalf("traced response missing trace: %+v", wrapped.Trace)
	}
	var names []string
	for _, sp := range wrapped.Trace.Spans {
		names = append(names, sp.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"cache-lookup", "cell", "persist"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace spans %v missing %q", names, want)
		}
	}
	// A cached repeat yields an honest short trace: lookup hit, no cell.
	doJSON(t, http.MethodPost, srv.URL+"/v1/run?trace=1", `{"bench": "gcc", "window": 3000}`, &wrapped)
	if !wrapped.Result.Cached {
		t.Fatalf("repeat was not cached")
	}
	for _, sp := range wrapped.Trace.Spans {
		if sp.Name == "cell" {
			t.Errorf("cached run trace contains a cell span")
		}
	}
	// Untraced requests keep the bare response shape.
	var bare RunResult
	doJSON(t, http.MethodPost, srv.URL+"/v1/run", `{"bench": "gcc", "window": 3000}`, &bare)
	if bare.Workload == "" {
		t.Errorf("untraced response shape changed: %+v", bare)
	}
}

// TestTraceDir checks the server-side dump path: with Config.TraceDir
// every run leaves a trace-*.json file that decodes as a TraceDump.
func TestTraceDir(t *testing.T) {
	dir := t.TempDir()
	s := newTestService(t, Config{CacheDir: t.TempDir(), Workers: 1, TraceDir: dir})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var run RunResult
	doJSON(t, http.MethodPost, srv.URL+"/v1/run", `{"bench": "gcc", "window": 3000}`, &run)

	files, err := filepath.Glob(filepath.Join(dir, "trace-run-*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("trace files = %v (err %v), want exactly one", files, err)
	}
	blob, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var dump metrics.TraceDump
	if err := json.Unmarshal(blob, &dump); err != nil {
		t.Fatalf("trace file does not decode: %v", err)
	}
	if dump.Name != "run" || len(dump.Spans) == 0 {
		t.Errorf("trace dump %+v, want name run with spans", dump)
	}
}

// TestAccessLog checks the structured log: one JSON line per request with
// the response's request ID, and X-Request-Id propagation.
func TestAccessLog(t *testing.T) {
	var buf syncBuffer
	s := newTestService(t, Config{Workers: 1, AccessLog: &buf})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	_, id := doJSON(t, http.MethodGet, srv.URL+"/healthz", "", nil)
	if id == "" {
		t.Fatalf("no X-Request-Id on response")
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/stats", nil)
	req.Header.Set("X-Request-Id", "my-req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "my-req-42" {
		t.Errorf("client request ID not propagated: got %q", got)
	}

	// Wait for both lines to flush (the log write races the response).
	deadline := time.Now().Add(2 * time.Second)
	var lines []accessEntry
	for {
		lines = lines[:0]
		sc := bufio.NewScanner(strings.NewReader(buf.String()))
		for sc.Scan() {
			var e accessEntry
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				t.Fatalf("access log line is not JSON: %q", sc.Text())
			}
			lines = append(lines, e)
		}
		if len(lines) >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(lines) < 2 {
		t.Fatalf("access log has %d lines, want >= 2", len(lines))
	}
	byID := map[string]accessEntry{}
	for _, e := range lines {
		byID[e.ID] = e
	}
	e, ok := byID["my-req-42"]
	if !ok {
		t.Fatalf("no access-log line for propagated request ID: %+v", lines)
	}
	if e.Path != "/v1/stats" || e.Status != http.StatusOK || e.Method != http.MethodGet {
		t.Errorf("access entry %+v, want GET /v1/stats 200", e)
	}
}

// TestPprofGate: the profiling mux is absent by default, mounted with
// EnablePprof.
func TestPprofGate(t *testing.T) {
	off := newTestService(t, Config{Workers: 1})
	srvOff := httptest.NewServer(off.Handler())
	defer srvOff.Close()
	if code, _ := doJSON(t, http.MethodGet, srvOff.URL+"/debug/pprof/", "", nil); code != http.StatusNotFound {
		t.Errorf("pprof reachable without -pprof: %d", code)
	}

	on := newTestService(t, Config{Workers: 1, EnablePprof: true})
	srvOn := httptest.NewServer(on.Handler())
	defer srvOn.Close()
	resp, err := http.Get(srvOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index with -pprof: %d, want 200", resp.StatusCode)
	}
}

// syncBuffer is a mutex-guarded bytes buffer for concurrent log writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf []byte
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return string(b.buf)
}
