package service

import (
	"runtime/debug"
	"sort"
	"time"

	"gals/internal/core"
	"gals/internal/experiment"
	"gals/internal/metrics"
	"gals/internal/recstore"
	"gals/internal/sweep"
)

// The service's Prometheus surface. Two kinds of series live here:
//
//   - Event-sourced metrics (HTTP latency histograms, status counters, the
//     cell-execution histogram) observed on the request path — each
//     observation is a handful of lock-free atomic ops.
//   - Func-backed metrics whose source of truth is an atomic counter that
//     already exists (the pool's steal counts, the cache's hit counts, the
//     simulator-boundary totals): read at scrape time, zero new cost where
//     the events happen, and /metrics can never disagree with /v1/stats.
func (s *Service) initMetrics() {
	r := metrics.NewRegistry()
	s.reg = r

	// HTTP request path (observed by the access-log middleware).
	s.httpLatency = r.NewHistogramVec("gals_http_request_seconds",
		"HTTP request latency by endpoint.", "endpoint", nil)
	s.httpRequests = r.NewCounterVec("gals_http_requests_total",
		"HTTP requests received, by endpoint.", "endpoint")
	s.httpStatus = r.NewCounterVec("gals_http_responses_total",
		"HTTP responses sent, by status code.", "code")
	s.httpInFlight = r.NewGauge("gals_http_in_flight",
		"HTTP requests currently being served.")
	s.rateLimited = r.NewCounter("gals_http_rate_limited_total",
		"Requests refused with 429 by per-client admission control.")

	// Cell pool: the execution histogram is pushed by the pool's observer
	// hook (one Observe per finished cell); everything else reads the
	// pool's own counters at scrape time.
	cellSeconds := r.NewHistogram("gals_pool_cell_seconds",
		"Simulation cell execution latency.", nil)
	s.pool.SetObserver(func(d time.Duration) { cellSeconds.Observe(d.Seconds()) })
	r.NewGaugeFunc("gals_pool_workers",
		"Simulation worker count.",
		func() float64 { return float64(s.pool.Workers()) })
	r.NewGaugeFunc("gals_pool_queue_depth",
		"Cells admitted but not yet running.",
		func() float64 { return float64(s.pool.Pending()) })
	r.NewGaugeFunc("gals_pool_cells_in_flight",
		"Cells currently executing.",
		func() float64 { return float64(s.pool.InFlight()) })
	r.NewCounterFunc("gals_pool_cells_completed_total",
		"Cells that finished executing.",
		func() float64 { return float64(s.pool.Completed()) })
	r.NewCounterFunc("gals_pool_cells_rejected_total",
		"Cells refused because the queue was full.",
		func() float64 { return float64(s.pool.Rejected()) })
	r.NewCounterFunc("gals_pool_cells_purged_total",
		"Queued cells removed unrun when their request was cancelled.",
		func() float64 { return float64(s.pool.Purged()) })
	r.NewCounterFunc("gals_pool_steals_total",
		"Work-stealing events between workers.",
		func() float64 { return float64(s.pool.Steals()) })
	r.NewCounterFunc("gals_pool_stolen_cells_total",
		"Cells moved between workers by stealing.",
		func() float64 { return float64(s.pool.StolenCells()) })

	// Request dedup and computation counters owned by the service and the
	// compute layers.
	r.NewCounterFunc("gals_dedup_hits_total",
		"Requests served by joining an identical in-flight request.",
		func() float64 { return float64(s.dedups.Load()) })
	r.NewCounterFunc("gals_simulations_total",
		"Single-run simulations executed (cache hits and dedup joins excluded).",
		func() float64 { return float64(s.sims.Load()) })
	r.NewCounterFunc("gals_suite_computations_total",
		"Suite pipelines actually computed (memo hits excluded).",
		func() float64 { return float64(experiment.SuiteComputations()) })
	r.NewCounterFunc("gals_sweep_computations_total",
		"Sweep measurements actually computed (persisted summaries excluded).",
		func() float64 { return float64(sweep.MeasureComputations()) })

	// Crash-safety surface: checkpointed sweeps and the startup scrub.
	r.NewCounterFunc("gals_checkpoints_written_total",
		"Sweep progress checkpoints persisted (periodic and cancellation flushes).",
		func() float64 { return float64(sweep.CheckpointsWritten()) })
	r.NewCounterFunc("gals_checkpoints_resumed_total",
		"Sweeps that restored a progress checkpoint instead of starting cold.",
		func() float64 { return float64(sweep.CheckpointsResumed()) })
	r.NewCounterFunc("gals_resumed_cells_total",
		"Completed cells skipped by checkpoint resumes.",
		func() float64 { return float64(sweep.ResumedCells()) })
	r.NewCounterFunc("gals_scrub_quarantined_total",
		"Undecodable cache blobs moved to quarantine by scrub passes.",
		func() float64 { return float64(s.quarantined.Load()) })

	// Persistent result cache. A nil *Cache returns zero Stats, so these
	// are safe (and honest) with persistence disabled.
	r.NewCounterFunc("gals_cache_hits_total",
		"Result-cache loads served from disk.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	r.NewCounterFunc("gals_cache_misses_total",
		"Result-cache loads that found nothing usable.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	r.NewCounterFunc("gals_cache_puts_total",
		"Result-cache blobs written.",
		func() float64 { return float64(s.cache.Stats().Puts) })
	r.NewCounterFunc("gals_cache_put_bytes_total",
		"Total bytes of result-cache blobs written.",
		func() float64 { return float64(s.cache.Stats().PutBytes) })
	r.NewCounterFunc("gals_cache_errors_total",
		"Result-cache I/O or decode failures (treated as misses).",
		func() float64 { return float64(s.cache.Stats().Errors) })
	r.NewCounterFunc("gals_cache_corrupt_total",
		"Cache blobs that existed but failed to decode (recovered as misses).",
		func() float64 { return float64(s.cache.Stats().Corrupt) })
	r.NewCounterFunc("gals_cache_evictions_total",
		"Files removed by cache prune passes.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	r.NewCounterFunc("gals_cache_evicted_bytes_total",
		"Total bytes removed by cache prune passes.",
		func() float64 { return float64(s.cache.Stats().EvictedBytes) })

	// Recording store. Like the cache, nil-safe via recStats.
	r.NewCounterFunc("gals_recordings_mapped_total",
		"Recordings served by mapping an existing slab file.",
		func() float64 { return float64(s.recStats().Mapped) })
	r.NewCounterFunc("gals_recordings_recorded_total",
		"Recordings generated and written by this process.",
		func() float64 { return float64(s.recStats().Recorded) })
	r.NewCounterFunc("gals_recordings_rerecorded_total",
		"Slab files deleted and regenerated (corruption, stale format).",
		func() float64 { return float64(s.recStats().Rerecorded) })
	r.NewCounterFunc("gals_recordings_corrupt_total",
		"Slab loads rejected as corrupt.",
		func() float64 { return float64(s.recStats().Corrupt) })
	r.NewCounterFunc("gals_recordings_released_total",
		"Slab references dropped to zero and unmapped.",
		func() float64 { return float64(s.recStats().Released) })

	// Simulator boundary: folded once per completed run at result
	// construction, never inside the instruction loop.
	r.NewCounterFunc("gals_sim_runs_total",
		"Simulation runs completed in this process (live and replayed).",
		func() float64 { return float64(core.SimRuns()) })
	r.NewCounterFunc("gals_sim_instructions_total",
		"Instructions committed across all completed runs.",
		func() float64 { return float64(core.SimInstructions()) })
	r.NewCounterFunc("gals_sim_runs_parallel_total",
		"Simulation runs that executed with intra-run stage parallelism.",
		func() float64 { return float64(core.SimRunsParallel()) })
	r.NewGaugeFunc("gals_sim_parallel_degree",
		"Stage-pipeline degree of the most recent parallel run (0 = none yet).",
		func() float64 { return float64(core.SimParallelDegree()) })
	s.runSeconds = r.NewHistogramVec("gals_run_seconds",
		"Single-run simulation wall time by execution mode (sequential | parallel); recording time excluded.", "mode", nil)
	r.NewFunc("gals_reconfigurations_total",
		"On-line reconfigurations committed, by adaptation policy.",
		"counter", func() []metrics.Sample {
			byPol := core.ReconfigsByPolicy()
			keys := make([]string, 0, len(byPol))
			for k := range byPol {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			out := make([]metrics.Sample, 0, len(keys))
			for _, k := range keys {
				out = append(out, metrics.Sample{
					Labels: []metrics.Label{{Key: "policy", Value: k}},
					Value:  float64(byPol[k]),
				})
			}
			return out
		})

	// Run telemetry: artifact counters from the simulator-boundary atomics,
	// event counts by structure and direction, and the dwell histogram fed
	// at artifact-persist time.
	r.NewCounterFunc("gals_telemetry_runs_total",
		"Telemetry artifacts serialized (one per telemetry-enabled simulation).",
		func() float64 { return float64(core.TelemetryRuns()) })
	r.NewCounterFunc("gals_telemetry_bytes_total",
		"Total encoded bytes of telemetry artifacts serialized.",
		func() float64 { return float64(core.TelemetryBytes()) })
	r.NewFunc("gals_reconfig_events_total",
		"Reconfiguration events committed, by structure and direction (all runs, telemetry or not).",
		"counter", func() []metrics.Sample {
			byCell := core.ReconfigEventsByCell()
			cells := make([]core.ReconfigCell, 0, len(byCell))
			for c := range byCell {
				cells = append(cells, c)
			}
			sort.Slice(cells, func(i, j int) bool {
				if cells[i].Structure != cells[j].Structure {
					return cells[i].Structure < cells[j].Structure
				}
				return cells[i].Direction < cells[j].Direction
			})
			out := make([]metrics.Sample, 0, len(cells))
			for _, c := range cells {
				out = append(out, metrics.Sample{
					Labels: []metrics.Label{
						{Key: "structure", Value: c.Structure},
						{Key: "direction", Value: c.Direction},
					},
					Value: float64(byCell[c]),
				})
			}
			return out
		})
	s.dwellHist = r.NewHistogramVec("gals_reconfig_dwell_intervals",
		"Decision intervals a structure stayed in one configuration before reconfiguring (observed when telemetry artifacts persist).",
		"structure", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256})

	// Build identity, the standard always-1 info gauge.
	version, goVersion, revision := buildInfo()
	r.NewFunc("gals_build_info",
		"Build identity of the running binary; value is always 1.",
		"gauge", func() []metrics.Sample {
			return []metrics.Sample{{
				Labels: []metrics.Label{
					{Key: "version", Value: version},
					{Key: "go_version", Value: goVersion},
					{Key: "revision", Value: revision},
				},
				Value: 1,
			}}
		})
}

// Registry returns the service's metric registry (the collector behind
// GET /metrics), so embedders and tools can render or extend it.
func (s *Service) Registry() *metrics.Registry { return s.reg }

// recStats snapshots the recording store's counters, zero when persistence
// is disabled.
func (s *Service) recStats() recstore.Stats {
	if s.recs == nil {
		return recstore.Stats{}
	}
	return s.recs.Stats()
}

// buildInfo extracts the module version, toolchain and VCS revision from
// the binary's embedded build information ("unknown" where absent — e.g.
// test binaries, which carry no main module version).
func buildInfo() (version, goVersion, revision string) {
	version, goVersion, revision = "unknown", "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	goVersion = bi.GoVersion
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			revision = kv.Value
		}
	}
	return
}
