package service

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strings"

	"gals/internal/control"
	"gals/internal/core"
	"gals/internal/faultinject"
	"gals/internal/metrics"
	"gals/internal/workload"
)

// Handler returns the service's HTTP API:
//
//	GET  /healthz        liveness probe
//	GET  /v1/stats       scheduler, dedup and cache counters
//	GET  /v1/policies    the adaptation-policy registry (names, parameters)
//	GET  /v1/workloads   the benchmark suite
//	POST /v1/run         one simulation           (RunRequest -> RunResult)
//	GET  /v1/telemetry/<digest>  a telemetry artifact (core.Telemetry; digests from runs with telemetry:true)
//	POST /v1/batch       many simulations         ({"runs": [...]} -> {"results": [...]})
//	POST /v1/sweep       a design-space sweep     (SweepRequest -> SweepResult)
//	POST /v1/suite       the Figure-6 pipeline    (SuiteRequest -> SuiteSummary)
//	POST /v1/experiment  one table or figure      (ExperimentRequest -> experiment.Table)
//	POST /v1/cache/prune LRU-prune the cache      ({"max_bytes": N} -> resultcache.PruneStats)
//
// All bodies are JSON. Validation failures return 400, unknown experiment
// IDs 400, a full cell queue 503, all with {"error": "..."} bodies.
//
// When Config.AuthToken is set, every /v1/* endpoint requires
// "Authorization: Bearer <token>" and answers 401 otherwise; /healthz stays
// open so liveness probes need no credentials.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	// The Prometheus scrape endpoint. Open like /healthz: it carries
	// operational counters, not results, and a scraper should not need
	// compute credentials to watch a saturated server.
	mux.Handle("GET /metrics", s.reg.Handler())

	if s.cfg.EnablePprof {
		// Explicit wiring instead of net/http/pprof's init-time
		// DefaultServeMux registration, so profiling only exists on
		// servers that opted in with -pprof.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	mux.HandleFunc("GET /v1/policies", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, control.Infos())
	})

	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		type wl struct {
			Name   string `json:"name"`
			Suite  string `json:"suite"`
			Window string `json:"window"`
		}
		var out []wl
		for _, spec := range workload.Suite() {
			out = append(out, wl{Name: spec.Name, Suite: spec.Suite, Window: spec.Window})
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		var req RunRequest
		if !readJSON(w, r, &req) {
			return
		}
		ctx, tr := s.traceCtx(r, "run")
		res, err := s.Run(ctx, req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeTraced(w, r, res, s.finishTrace("run", tr))
	})

	mux.HandleFunc("GET /v1/telemetry/{digest}", func(w http.ResponseWriter, r *http.Request) {
		digest := r.PathValue("digest")
		if !validDigest(digest) {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed telemetry digest"})
			return
		}
		var tel core.Telemetry
		if s.cache == nil || !s.cache.Load("telemetry/"+digest, &tel) {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown telemetry digest"})
			return
		}
		writeJSON(w, http.StatusOK, &tel)
	})

	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Runs []RunRequest `json:"runs"`
		}
		if !readJSON(w, r, &req) {
			return
		}
		if len(req.Runs) == 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "empty batch"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": s.RunBatch(r.Context(), req.Runs)})
	})

	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		var req SweepRequest
		if !readJSON(w, r, &req) {
			return
		}
		ctx, tr := s.traceCtx(r, "sweep")
		res, err := s.Sweep(ctx, req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeTraced(w, r, res, s.finishTrace("sweep", tr))
	})

	mux.HandleFunc("POST /v1/suite", func(w http.ResponseWriter, r *http.Request) {
		var req SuiteRequest
		if !readJSON(w, r, &req) {
			return
		}
		ctx, tr := s.traceCtx(r, "suite")
		res, err := s.Suite(ctx, req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeTraced(w, r, res, s.finishTrace("suite", tr))
	})

	mux.HandleFunc("POST /v1/cache/prune", func(w http.ResponseWriter, r *http.Request) {
		// Admin endpoint: max_bytes overrides the server's -cache-max-bytes
		// for this pass (0 with no configured cap prunes everything).
		var req struct {
			MaxBytes *int64 `json:"max_bytes"`
		}
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil && err != io.EOF { // empty body = use the configured cap
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
			return
		}
		max := s.cfg.CacheMaxBytes
		if req.MaxBytes != nil {
			max = *req.MaxBytes
		} else if max <= 0 {
			// No explicit bound and no configured cap: refuse rather than
			// letting Prune(0) wipe the whole cache as a "default".
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": "no cache cap configured; pass {\"max_bytes\": N} explicitly (0 clears everything)",
			})
			return
		}
		st, err := s.Prune(max)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("POST /v1/experiment", func(w http.ResponseWriter, r *http.Request) {
		var req ExperimentRequest
		if !readJSON(w, r, &req) {
			return
		}
		res, err := s.Experiment(r.Context(), req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	var h http.Handler = mux
	if s.limiter != nil {
		h = s.limit(h)
	}
	if s.cfg.AuthToken != "" {
		// Authentication wraps admission control: a request is charged to
		// its (already verified) token's bucket, and invalid credentials
		// are rejected before they can consume anyone's tokens.
		h = s.authenticate(h)
	}
	// Observation is outermost so every request — including 401s and 429s
	// the inner middleware produced — lands in the latency histograms,
	// status counters and the access log.
	return s.observe(h)
}

// traceCtx attaches a fresh span tracer to the request context when the
// client asked for one (?trace=1) or the server traces everything
// (Config.TraceDir); otherwise the context is returned untouched and the
// whole request path pays nil checks only.
func (s *Service) traceCtx(r *http.Request, name string) (context.Context, *metrics.Tracer) {
	if r.URL.Query().Get("trace") != "1" && s.cfg.TraceDir == "" {
		return r.Context(), nil
	}
	tr := metrics.NewTracer(name)
	return WithTracer(r.Context(), tr), tr
}

// finishTrace seals the request's trace and, when Config.TraceDir is set,
// writes it as an indented-JSON file (trace-<name>-<seq>.json). Returns
// the dump for inline delivery, nil when tracing was off.
func (s *Service) finishTrace(name string, tr *metrics.Tracer) *metrics.TraceDump {
	if tr == nil {
		return nil
	}
	dump := tr.Finish()
	if dir := s.cfg.TraceDir; dir != "" {
		if blob, err := json.MarshalIndent(dump, "", "  "); err == nil {
			file := fmt.Sprintf("trace-%s-%s-%06d.json", name, s.runID, s.traceSeq.Add(1))
			os.MkdirAll(dir, 0o755)
			os.WriteFile(filepath.Join(dir, file), blob, 0o644)
		}
	}
	return dump
}

// writeTraced delivers a result, wrapping it as {"result":…, "trace":…}
// when the client asked for the trace inline with ?trace=1. Server-side
// trace-dir dumping alone does not change the response shape.
func writeTraced(w http.ResponseWriter, r *http.Request, res any, dump *metrics.TraceDump) {
	if dump != nil && r.URL.Query().Get("trace") == "1" {
		writeJSON(w, http.StatusOK, map[string]any{"result": res, "trace": dump})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// authenticate gates /v1/* behind the configured bearer token. The
// comparison is constant time, so the token cannot be guessed byte by byte
// from response latency.
func (s *Service) authenticate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(tok), []byte(s.cfg.AuthToken)) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="galsd"`)
			writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "missing or invalid bearer token"})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// validDigest accepts exactly the digests Run hands out: 64 lowercase hex
// characters (the sha256 half of a "telemetry/<digest>" cache key). Checked
// before the digest is spliced into a cache path.
func validDigest(d string) bool {
	if len(d) != 64 {
		return false
	}
	for i := 0; i < len(d); i++ {
		c := d[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return false
	}
	return true
}

// writeErr maps service errors onto the degradation contract: deadline
// expiry is 504 (the server worked, the time budget ran out), transient
// capacity and chaos conditions — queue full, pool closed, injected
// dispatch fault, a caller-side cancellation — are 503 with a Retry-After
// so well-behaved clients back off instead of hammering; everything else
// is a caller mistake, 400 with no retry invitation.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed),
		errors.Is(err, faultinject.ErrInjected), errors.Is(err, context.Canceled):
		w.Header().Set("Retry-After", "1")
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
