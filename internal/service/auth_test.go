package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestBearerTokenAuth pins the -auth-token contract: with a token
// configured, every /v1/* endpoint answers 401 without the exact bearer
// token, while /healthz stays open for liveness probes.
func TestBearerTokenAuth(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, AuthToken: "s3cret"})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string, hdr map[string]string) int {
		t.Helper()
		req, err := http.NewRequest("GET", srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/healthz", nil); got != http.StatusOK {
		t.Errorf("/healthz without a token returned %d, want 200", got)
	}
	for name, hdr := range map[string]map[string]string{
		"no header":    nil,
		"wrong scheme": {"Authorization": "Basic s3cret"},
		"wrong token":  {"Authorization": "Bearer nope"},
		"near miss":    {"Authorization": "Bearer s3cretX"},
	} {
		if got := get("/v1/policies", hdr); got != http.StatusUnauthorized {
			t.Errorf("%s: /v1/policies returned %d, want 401", name, got)
		}
	}
	if got := get("/v1/policies", map[string]string{"Authorization": "Bearer s3cret"}); got != http.StatusOK {
		t.Errorf("valid token returned %d, want 200", got)
	}

	// POST endpoints are behind the same gate.
	resp, err := http.Post(srv.URL+"/v1/run", "application/json",
		strings.NewReader(`{"bench":"gcc","window":1000}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated /v1/run returned %d, want 401", resp.StatusCode)
	}
	req, _ := http.NewRequest("POST", srv.URL+"/v1/run",
		strings.NewReader(`{"bench":"gcc","window":1000}`))
	req.Header.Set("Authorization", "Bearer s3cret")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("authenticated /v1/run returned %d, want 200", resp2.StatusCode)
	}
	var out RunResult
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil || out.TimeFS <= 0 {
		t.Errorf("authenticated run result malformed: %+v (%v)", out, err)
	}
}

// TestNoTokenMeansOpen: an empty AuthToken keeps the historical open
// behaviour.
func TestNoTokenMeansOpen(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/policies")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("open service returned %d, want 200", resp.StatusCode)
	}
}
