// The training pipeline: run the paper's controllers over recorded phase
// runs of the benchmark suite, record every (observation features, decision)
// pair they produce, and fit the four linear heads by structured perceptron
// to imitate them. Everything is deterministic — fixed benchmark order,
// fixed interval order, fixed epoch count, no randomness — so the same
// options always fit bit-identical weights, which is what lets the artifact
// live in the result cache as a content-addressed sidecar.
package learn

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gals/internal/control"
	"gals/internal/core"
	"gals/internal/resultcache"
	"gals/internal/sweep"
	"gals/internal/timing"
	"gals/internal/workload"
)

// TrainOptions scale the training pipeline. The zero value is usable:
// defaults match the sweep layer's (window 30,000, seed 42, PLL scale 0.1)
// plus 3 perceptron epochs.
type TrainOptions struct {
	// Window is the instruction window of each recorded phase run.
	Window int64 `json:"window"`
	// Seed and PLLScale configure the runs like sweep.Options.
	Seed     int64   `json:"seed"`
	PLLScale float64 `json:"pllscale"`
	// JitterFrac enables clock jitter in the training runs.
	JitterFrac float64 `json:"jitter,omitempty"`
	// Epochs is the number of perceptron passes over the decision dataset.
	Epochs int `json:"epochs"`
}

// withDefaults resolves zero fields; the result is the canonical artifact
// identity (resultcache key payload).
func (o TrainOptions) withDefaults() TrainOptions {
	if o.Window <= 0 {
		o.Window = 30_000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.PLLScale == 0 {
		o.PLLScale = 0.1
	}
	if o.Epochs <= 0 {
		o.Epochs = 3
	}
	return o
}

// TrainStats report one pipeline execution.
type TrainStats struct {
	// Benchmarks is the number of phase runs observed.
	Benchmarks int
	// Samples and Accuracy are per head (Head order): dataset size and the
	// fitted model's imitation accuracy over it.
	Samples  [NumHeads]int
	Accuracy [NumHeads]float64
}

// sample is one recorded decision: the candidate feature matrix and the
// index the paper's controller chose (the current one when it stood pat).
type sample struct {
	f     feats
	label int
}

// probe wraps the paper controller, forwarding every decision unchanged
// while recording (features, choice) pairs — so the observed run is
// bit-identical to a plain paper-policy run and the dataset reflects
// exactly the states that policy visits.
type probe struct {
	inner control.Controller
	ds    *[NumHeads][]sample
}

func (p *probe) CacheInterval() int64 { return p.inner.CacheInterval() }
func (p *probe) NeedsIQ() bool        { return p.inner.NeedsIQ() }
func (p *probe) IQWindows() [4]int    { return p.inner.IQWindows() }

// chosen extracts the decided target for kind from the controller's output,
// falling back to the current index when it stood pat.
func chosen(out []control.Reconfig, kind control.Kind, cur int) int {
	for _, r := range out {
		if r.Kind == kind {
			if kind == control.IntIQ || kind == control.FPIQ {
				return timing.IQIndex(timing.IQSize(r.Target))
			}
			return r.Target
		}
	}
	return cur
}

func (p *probe) DecideCaches(obs control.CacheObs, buf []control.Reconfig) []control.Reconfig {
	out := p.inner.DecideCaches(obs, buf)
	if !obs.FEPending && obs.ICache.Accesses > 0 {
		p.ds[HeadICache] = append(p.ds[HeadICache],
			sample{icacheFeatures(obs), chosen(out, control.ICache, int(obs.ICfg))})
	}
	if !obs.LSPending && obs.DCacheL1.Accesses > 0 {
		p.ds[HeadDCache] = append(p.ds[HeadDCache],
			sample{dcacheFeatures(obs, obs.L2LineBytes), chosen(out, control.DCache, int(obs.DCfg))})
	}
	return out
}

func (p *probe) DecideIQs(obs control.IQObs, buf []control.Reconfig) []control.Reconfig {
	out := p.inner.DecideIQs(obs, buf)
	if iqObsUsable(obs) {
		if !obs.IntPending {
			p.ds[HeadIntIQ] = append(p.ds[HeadIntIQ],
				sample{iqFeatures(obs, false), chosen(out, control.IntIQ, timing.IQIndex(obs.IntIQ))})
		}
		if !obs.FPPending {
			p.ds[HeadFPIQ] = append(p.ds[HeadFPIQ],
				sample{iqFeatures(obs, true), chosen(out, control.FPIQ, timing.IQIndex(obs.FPIQ))})
		}
	}
	return out
}

// Train runs the pipeline: one recorded phase run per suite benchmark under
// the paper policy (observed through a probe controller), then a structured
// perceptron fit per head. Deterministic: identical options produce a
// bit-identical model.
func Train(o TrainOptions) (*Model, TrainStats, error) {
	o = o.withDefaults()
	var ds [NumHeads][]sample
	pool := sweep.NewRecordingPool(o.Window)
	specs := workload.Suite()
	for _, spec := range specs {
		cfg := core.DefaultAdaptive(core.PhaseAdaptive)
		cfg.Seed = o.Seed
		cfg.PLLScale = o.PLLScale
		cfg.JitterFrac = o.JitterFrac
		inner, err := control.New(control.DefaultPolicy, "", control.Init{
			IntIQ: cfg.IntIQ, FPIQ: cfg.FPIQ,
			ICache: cfg.ICache, DCache: cfg.DCache,
		})
		if err != nil {
			return nil, TrainStats{}, fmt.Errorf("learn: %w", err)
		}
		core.NewMachineController(pool.Get(spec).Replay(), cfg, &probe{inner: inner, ds: &ds}).Run(o.Window)
	}
	pool.Retire()

	m := &Model{Version: ModelVersion, Features: NumFeatures}
	st := TrainStats{Benchmarks: len(specs)}
	for h := 0; h < NumHeads; h++ {
		w, acc := fit(ds[h], o.Epochs)
		switch h {
		case HeadICache:
			m.ICache = w
		case HeadDCache:
			m.DCache = w
		case HeadIntIQ:
			m.IntIQ = w
		case HeadFPIQ:
			m.FPIQ = w
		}
		st.Samples[h] = len(ds[h])
		st.Accuracy[h] = acc
	}
	return m, st, nil
}

// fit runs a structured perceptron over the dataset in its fixed order:
// when the model's argmax disagrees with the recorded choice, the weights
// move toward the chosen candidate's features and away from the predicted
// one's. It returns the weights and their final imitation accuracy.
func fit(ds []sample, epochs int) ([]float64, float64) {
	w := make([]float64, NumFeatures)
	for e := 0; e < epochs; e++ {
		for i := range ds {
			pred := argmax(w, &ds[i].f)
			if pred != ds[i].label {
				for j := 0; j < NumFeatures; j++ {
					w[j] += ds[i].f[ds[i].label][j] - ds[i].f[pred][j]
				}
			}
		}
	}
	if len(ds) == 0 {
		return w, 0
	}
	correct := 0
	for i := range ds {
		if argmax(w, &ds[i].f) == ds[i].label {
			correct++
		}
	}
	return w, float64(correct) / float64(len(ds))
}

// ---------------------------------------------------------------------------
// The sidecar artifact.

var (
	artifactMu   sync.Mutex
	artifactMemo = map[string]string{}
	trainings    atomic.Int64
)

// Trainings reports how many times the training pipeline actually executed
// (as opposed to being served from the memo or the persistent sidecar).
func Trainings() int64 { return trainings.Load() }

// ArtifactKey returns the result-cache key of the training options'
// sidecar artifact.
func ArtifactKey(o TrainOptions) string {
	return resultcache.Key("policyblob", o.withDefaults())
}

// Artifact returns the canonical weights artifact for the training options,
// training at most once per identity: first the process-local memo, then
// the sidecar entry in the persistent store (when one is given), then the
// pipeline — whose output is written back as the sidecar. The returned blob
// validates under the "learned" policy and is byte-stable across processes:
// a stored model decodes and re-encodes to exactly the trained bytes.
func Artifact(store resultcache.Store, o TrainOptions) (string, error) {
	key := ArtifactKey(o)
	artifactMu.Lock()
	defer artifactMu.Unlock()
	if blob, ok := artifactMemo[key]; ok {
		return blob, nil
	}
	if store != nil {
		var m Model
		if store.Load(key, &m) {
			if blob, err := m.Encode(); err == nil {
				if _, perr := ParseModel(blob); perr == nil {
					artifactMemo[key] = blob
					return blob, nil
				}
			}
			// A corrupt sidecar falls through to retraining and is
			// overwritten below.
		}
	}
	trainings.Add(1)
	m, _, err := Train(o)
	if err != nil {
		return "", err
	}
	blob, err := m.Encode()
	if err != nil {
		return "", err
	}
	if store != nil {
		store.Store(key, m)
	}
	artifactMemo[key] = blob
	return blob, nil
}

// ResetArtifactMemo drops the process-local artifact memo (tests and cache
// administration; the persistent sidecars are untouched).
func ResetArtifactMemo() {
	artifactMu.Lock()
	defer artifactMu.Unlock()
	artifactMemo = map[string]string{}
}
