package learn

import (
	"reflect"
	"strings"
	"testing"

	"gals/internal/control"
	"gals/internal/core"
	"gals/internal/resultcache"
	"gals/internal/sweep"
	"gals/internal/workload"
)

// trainOnce caches one small trained model per test binary — training is
// deterministic, so every test can share it.
var trainOnce = func() func(t *testing.T) (*Model, string) {
	var m *Model
	var blob string
	return func(t *testing.T) (*Model, string) {
		t.Helper()
		if m == nil {
			var err error
			m, _, err = Train(TrainOptions{Window: 20_000})
			if err != nil {
				t.Fatal(err)
			}
			blob, err = m.Encode()
			if err != nil {
				t.Fatal(err)
			}
		}
		return m, blob
	}
}()

func TestLearnedPolicyRegistered(t *testing.T) {
	p, ok := control.Lookup("learned")
	if !ok {
		t.Fatal("learned policy not registered")
	}
	if !p.Info().RequiresBlob {
		t.Error("learned policy does not declare RequiresBlob")
	}
	if err := control.ValidateSelection("learned", "", ""); err == nil ||
		!strings.Contains(err.Error(), "requires a blob") {
		t.Errorf("learned accepted an empty artifact: %v", err)
	}
}

func TestModelEncodeRoundTrip(t *testing.T) {
	m, blob := trainOnce(t)
	parsed, err := ParseModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, m) {
		t.Fatal("decode(encode(model)) != model")
	}
	again, err := parsed.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if again != blob {
		t.Fatal("encode(decode(blob)) != blob — the artifact is not canonical")
	}
}

func TestParseModelRejectsMalformedBlobs(t *testing.T) {
	_, good := trainOnce(t)
	for name, blob := range map[string]string{
		"empty":          "",
		"not json":       "weights",
		"wrong version":  strings.Replace(good, `"version":1`, `"version":99`, 1),
		"wrong features": strings.Replace(good, `"features":8`, `"features":3`, 1),
		"unknown field":  strings.Replace(good, `"version"`, `"extra":1,"version"`, 1),
		"short head":     `{"version":1,"features":8,"icache":[1],"dcache":[],"int_iq":[],"fp_iq":[]}`,
	} {
		if _, err := ParseModel(blob); err == nil {
			t.Errorf("%s: ParseModel accepted %q", name, blob)
		}
		if err := control.ValidateSelection("learned", "", blob); err == nil {
			t.Errorf("%s: registry validation accepted the artifact", name)
		}
	}
}

// TestTrainingDeterministic: the pipeline has no randomness — identical
// options must fit bit-identical artifacts.
func TestTrainingDeterministic(t *testing.T) {
	_, blob := trainOnce(t)
	m2, _, err := Train(TrainOptions{Window: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := m2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if blob2 != blob {
		t.Fatal("two trainings with identical options produced different artifacts")
	}
}

// TestLearnedPolicyDeterminism is the CI determinism gate (run under
// -race): given one persisted weights artifact and one seed, repeated
// learned-policy runs produce bit-identical reconfiguration traces and run
// times.
func TestLearnedPolicyDeterminism(t *testing.T) {
	_, blob := trainOnce(t)
	spec, _ := workload.ByName("mesa")
	run := func() *core.Result {
		cfg := core.DefaultAdaptive(core.PhaseAdaptive)
		cfg.PLLScale = 0.1
		cfg.RecordTrace = true
		cfg.Policy, cfg.PolicyBlob = "learned", blob
		return core.RunWorkload(spec, cfg, 50_000)
	}
	a, b := run(), run()
	if a.TimeFS != b.TimeFS {
		t.Fatalf("run times diverge: %d vs %d", a.TimeFS, b.TimeFS)
	}
	if !reflect.DeepEqual(a.Stats.ReconfigEvents, b.Stats.ReconfigEvents) {
		t.Fatal("reconfiguration traces diverge between identical learned runs")
	}
	if len(a.Stats.ReconfigEvents) == 0 {
		t.Error("learned policy never reconfigured on mesa (degenerate model?)")
	}
}

// TestArtifactSidecar: the trained weights persist as a result-cache
// sidecar — a second process (simulated by dropping the in-process memo)
// loads them instead of retraining, byte-identically.
func TestArtifactSidecar(t *testing.T) {
	store, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := TrainOptions{Window: 6_000}
	before := Trainings()
	blob, err := Artifact(store, o)
	if err != nil {
		t.Fatal(err)
	}
	if Trainings() != before+1 {
		t.Fatalf("first Artifact trained %d times, want 1", Trainings()-before)
	}
	if _, err := ParseModel(blob); err != nil {
		t.Fatalf("artifact does not validate: %v", err)
	}

	ResetArtifactMemo()
	t.Cleanup(ResetArtifactMemo)
	again, err := Artifact(store, o)
	if err != nil {
		t.Fatal(err)
	}
	if Trainings() != before+1 {
		t.Fatal("second Artifact retrained despite the persisted sidecar")
	}
	if again != blob {
		t.Fatal("sidecar round trip changed the artifact bytes")
	}

	// Distinct training options are distinct artifacts.
	if k1, k2 := ArtifactKey(o), ArtifactKey(TrainOptions{Window: 7_000}); k1 == k2 {
		t.Fatal("distinct training options share an artifact key")
	}
}

// TestBlobDigestKeysCache: two learned runs differing only in their weights
// artifact must never share a sweep-layer cache entry, and an identical
// artifact must be served from the persisted entry without re-simulating.
func TestBlobDigestKeysCache(t *testing.T) {
	_, blob := trainOnce(t)
	// A second, distinct-but-valid artifact: perturb one weight.
	m2, err := ParseModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	m2.ICache[0] += 1
	blob2, err := m2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if control.BlobDigest(blob) == control.BlobDigest(blob2) {
		t.Fatal("distinct artifacts share a digest")
	}

	cfg := core.DefaultAdaptive(core.PhaseAdaptive)
	cfg.Policy, cfg.PolicyBlob = "learned", blob
	cfg2 := cfg
	cfg2.PolicyBlob = blob2
	if cfg.Label() == cfg2.Label() {
		t.Error("distinct artifacts share a configuration label")
	}

	// Through the persistent sweep layer: artifact A computes, artifact B
	// computes again (no aliasing), artifact A repeats from the cache.
	store, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prev := sweep.SetPersist(store)
	defer sweep.SetPersist(prev)
	spec, _ := workload.ByName("mesa")
	specs := []workload.Spec{spec}
	opts := func(b string) sweep.Options {
		return sweep.Options{Window: 10_000, Policy: "learned", PolicyBlob: b}
	}

	before := sweep.MeasureComputations()
	ra, err := sweep.MeasurePhase(specs, opts(blob))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sweep.MeasurePhase(specs, opts(blob2))
	if err != nil {
		t.Fatal(err)
	}
	if got := sweep.MeasureComputations() - before; got != 2 {
		t.Fatalf("distinct artifacts shared a cache entry (%d computations, want 2)", got)
	}
	ra2, err := sweep.MeasurePhase(specs, opts(blob))
	if err != nil {
		t.Fatal(err)
	}
	if got := sweep.MeasureComputations() - before; got != 2 {
		t.Fatalf("identical artifact missed the cache (%d computations, want 2)", got)
	}
	if ra2[0].TimeFS != ra[0].TimeFS {
		t.Fatal("cached learned result differs from the computed one")
	}
	_ = rb
}
