// Package learn is the learned-adaptation subsystem: a deterministic
// linear predictor that maps per-interval controller observations to
// frequency/complexity decisions, plus the training pipeline that fits its
// weights by imitating the paper's controllers over recorded phase runs
// (after the learned-DFS literature in PAPERS.md: *A Unified Learning
// Platform for Dynamic Frequency Scaling*).
//
// The model is four independent linear scoring heads — front-end cache,
// D/L2 pair, integer queue, FP queue. Each head scores every candidate
// configuration of its structure with a dot product over a fixed feature
// vector derived from the same observation snapshot the paper's controllers
// see (reconstructed accounting-cache counts, ILP-tracker samples, candidate
// latencies and clock periods) and picks the argmax. Inference is pure
// float arithmetic over the observation — no randomness, no wall clock — so
// a run under a fixed weights artifact is bit-reproducible.
//
// The weights are not parameters in the registry's flat float sense: they
// travel as a structured blob artifact (core.Config.PolicyBlob), produced
// by Train/Artifact, persisted as a sidecar entry in the result cache
// (kind "policyblob"), and keyed into every downstream cache and memo entry
// by canonical digest. The "learned" policy registers itself in the
// internal/control registry on import.
package learn

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"gals/internal/control"
	"gals/internal/queue"
	"gals/internal/timing"
)

// ModelVersion is baked into every artifact. Bump it whenever the feature
// extraction or the decision rule changes: old artifacts then fail
// validation instead of silently driving different machines.
const ModelVersion = 1

// NumFeatures is the fixed per-candidate feature dimension shared by all
// four heads.
const NumFeatures = 8

// NumCandidates is the number of configurations each head chooses among
// (the four upsizing steps every resizable structure has).
const NumCandidates = 4

// Head indexes the four decision heads.
const (
	HeadICache = iota
	HeadDCache
	HeadIntIQ
	HeadFPIQ
	NumHeads
)

// HeadNames name the heads in Head order (reporting only).
var HeadNames = [NumHeads]string{"icache", "dcache", "int-iq", "fp-iq"}

// Model is the learned policy's weights artifact. Fields marshal in
// declaration order, so Encode is canonical: equal models encode to equal
// bytes, and an encode/decode round trip is the identity.
type Model struct {
	// Version pins the feature extraction this model was trained for.
	Version int `json:"version"`
	// Features is the per-candidate feature dimension (NumFeatures).
	Features int `json:"features"`
	// ICache, DCache, IntIQ and FPIQ are the per-head weight vectors.
	ICache []float64 `json:"icache"`
	DCache []float64 `json:"dcache"`
	IntIQ  []float64 `json:"int_iq"`
	FPIQ   []float64 `json:"fp_iq"`
}

// head returns the weight vector of the given head.
func (m *Model) head(h int) []float64 {
	switch h {
	case HeadICache:
		return m.ICache
	case HeadDCache:
		return m.DCache
	case HeadIntIQ:
		return m.IntIQ
	default:
		return m.FPIQ
	}
}

// Encode renders the model as its canonical JSON artifact.
func (m *Model) Encode() (string, error) {
	blob, err := json.Marshal(m)
	if err != nil {
		return "", fmt.Errorf("learn: %w", err)
	}
	return string(blob), nil
}

// ParseModel decodes and validates a weights artifact: strict JSON, the
// current version, and four finite weight vectors of the right dimension.
func ParseModel(blob string) (*Model, error) {
	dec := json.NewDecoder(strings.NewReader(blob))
	dec.DisallowUnknownFields()
	var m Model
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("learn: malformed weights artifact: %w", err)
	}
	if m.Version != ModelVersion {
		return nil, fmt.Errorf("learn: weights artifact version %d, want %d", m.Version, ModelVersion)
	}
	if m.Features != NumFeatures {
		return nil, fmt.Errorf("learn: weights artifact has %d features, want %d", m.Features, NumFeatures)
	}
	for h := 0; h < NumHeads; h++ {
		w := m.head(h)
		if len(w) != NumFeatures {
			return nil, fmt.Errorf("learn: head %s has %d weights, want %d", HeadNames[h], len(w), NumFeatures)
		}
		for _, v := range w {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("learn: head %s has a non-finite weight", HeadNames[h])
			}
		}
	}
	return &m, nil
}

// feats is one observation's candidate feature matrix for one head.
type feats [NumCandidates][NumFeatures]float64

// argmax returns the candidate with the highest score under w; ties break
// toward the lower (smaller, faster) index, matching the paper's tie rule.
func argmax(w []float64, f *feats) int {
	best, bestScore := 0, math.Inf(-1)
	for c := 0; c < NumCandidates; c++ {
		score := 0.0
		for j := 0; j < NumFeatures; j++ {
			score += w[j] * f[c][j]
		}
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	return best
}

// nsOf converts a femtosecond quantity to nanoseconds — the scale that
// keeps latency-derived features O(1).
func nsOf(t timing.FS) float64 { return float64(t) / float64(timing.FemtosPerNano) }

// ratioOf guards the per-access normalizations against an empty interval.
func ratioOf(n, accesses uint64) float64 {
	if accesses == 0 {
		return 0
	}
	return float64(n) / float64(accesses)
}

// icacheFeatures builds the front-end head's candidate features from one
// accounting interval: the candidate's reconstructed hit distribution, its
// clock period, and the modeled miss cost — the same quantities the paper's
// Section 3.1 cost model consumes, exposed as a feature basis instead of
// being combined by a fixed formula.
func icacheFeatures(obs control.CacheObs) feats {
	var f feats
	acc := obs.ICache.Accesses
	missPenalty := timing.FS(obs.DCfg.Spec().L2ALat)*obs.LSPeriod + obs.FEPeriod + obs.LSPeriod
	for c := 0; c < NumCandidates; c++ {
		cand := timing.ICacheConfig(c)
		a, b, miss := obs.ICache.Reconstruct(c+1, true)
		f[c] = [NumFeatures]float64{
			1,
			ratioOf(a, acc),
			ratioOf(b, acc),
			ratioOf(miss, acc),
			nsOf(cand.AdaptPeriod()),
			float64(c-int(obs.ICfg)) / 3,
			boolFeat(c == int(obs.ICfg)),
			ratioOf(miss, acc) * nsOf(missPenalty),
		}
	}
	return f
}

// dcacheFeatures builds the D/L2 head's candidate features. The L2 counters
// are scaled to the candidate's L1 miss stream exactly as the paper's
// controller scales them.
func dcacheFeatures(obs control.CacheObs, l2LineBytes int) feats {
	var f feats
	acc := obs.DCacheL1.Accesses
	_, _, curMiss := obs.DCacheL1.Reconstruct(obs.DCfg.Spec().Assoc, true)
	memPenalty := timing.MemLatency(l2LineBytes) + 2*obs.LSPeriod
	for c := 0; c < NumCandidates; c++ {
		cand := timing.DCacheConfig(c)
		ways := cand.Spec().Assoc
		hasB := cand != timing.DCache256K8W
		a1, b1, m1 := obs.DCacheL1.Reconstruct(ways, hasB)
		_, _, m2 := obs.L2.Reconstruct(ways, hasB)
		if curMiss > 0 {
			m2 = uint64(float64(m2) * float64(m1) / float64(curMiss))
		}
		f[c] = [NumFeatures]float64{
			1,
			ratioOf(a1, acc),
			ratioOf(b1, acc),
			ratioOf(m1, acc),
			nsOf(cand.AdaptPeriod()),
			float64(c-int(obs.DCfg)) / 3,
			boolFeat(c == int(obs.DCfg)),
			ratioOf(m2, acc) * nsOf(memPenalty),
		}
	}
	return f
}

// iqFeatures builds an issue-queue head's candidate features from the ILP
// tracker's four window samples: fill fraction, raw ILP, the candidate
// frequency, the paper's stifling condition and its frequency-scaled
// effective-ILP score.
func iqFeatures(obs control.IQObs, fp bool) feats {
	var f feats
	cur := obs.IntIQ
	if fp {
		cur = obs.FPIQ
	}
	curIdx := timing.IQIndex(cur)
	for c := 0; c < NumCandidates; c++ {
		s := obs.Samples[c]
		count := s.IntCount
		if fp {
			count = s.FPCount
		}
		ilp := 0.0
		if s.M > 0 {
			ilp = float64(count) / float64(s.M)
		}
		freq := timing.IQFreqMHz(s.N)
		f[c] = [NumFeatures]float64{
			1,
			float64(count) / float64(s.N),
			ilp / 8,
			freq / 1000,
			boolFeat(c > 0 && count < s.N),
			float64(c-curIdx) / 3,
			boolFeat(c == curIdx),
			s.EffectiveILP(fp, freq) / 1e4,
		}
	}
	return f
}

func boolFeat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// iqObsUsable reports whether a completed ILP interval carries a usable
// measurement (a zero chain depth means the tracker saw nothing). Shared by
// inference and training so the learned controller decides on exactly the
// intervals it was trained on.
func iqObsUsable(obs control.IQObs) bool { return obs.Samples[3].M > 0 }

// ---------------------------------------------------------------------------
// The "learned" registry policy.

func init() { control.Register(learnedPolicy{}) }

type learnedPolicy struct{}

func (learnedPolicy) Info() control.Info {
	return control.Info{
		Name:         "learned",
		Description:  "deterministic linear predictor over controller observations, trained by imitation from recorded phase runs; weights travel as a blob artifact (see the training pipeline)",
		RequiresBlob: true,
		Params: []control.ParamInfo{
			{Name: "interval", Default: control.PaperCacheInterval,
				Description: "accounting-cache decision interval in committed instructions (0 freezes the cache heads)"},
		},
	}
}

// ValidateBlob rejects any artifact NewController could not build a
// controller from, so malformed weights surface as request/config errors
// rather than machine panics.
func (learnedPolicy) ValidateBlob(blob string) error {
	_, err := ParseModel(blob)
	return err
}

func (learnedPolicy) NewController(params map[string]float64, init control.Init) control.Controller {
	m, err := ParseModel(init.Blob)
	if err != nil {
		panic(err) // unreachable: the registry validated the blob
	}
	return &learnedCtl{
		model:    m,
		interval: int64(control.Param(params, "interval", control.PaperCacheInterval)),
	}
}

// learnedCtl is the per-run inference state: the shared immutable model and
// the decision cadence. All decision inputs come from the observation, so
// the controller itself is stateless across intervals.
type learnedCtl struct {
	model    *Model
	interval int64
}

func (c *learnedCtl) CacheInterval() int64 { return c.interval }
func (c *learnedCtl) NeedsIQ() bool        { return true }
func (c *learnedCtl) IQWindows() [4]int    { return queue.DefaultWindowSizes() }

func (c *learnedCtl) DecideCaches(obs control.CacheObs, buf []Reconfig) []Reconfig {
	if !obs.FEPending && obs.ICache.Accesses > 0 {
		f := icacheFeatures(obs)
		if want := argmax(c.model.ICache, &f); want != int(obs.ICfg) {
			buf = append(buf, Reconfig{Kind: control.ICache, Target: want})
		}
	}
	if !obs.LSPending && obs.DCacheL1.Accesses > 0 {
		f := dcacheFeatures(obs, obs.L2LineBytes)
		if want := argmax(c.model.DCache, &f); want != int(obs.DCfg) {
			buf = append(buf, Reconfig{Kind: control.DCache, Target: want})
		}
	}
	return buf
}

func (c *learnedCtl) DecideIQs(obs control.IQObs, buf []Reconfig) []Reconfig {
	if !iqObsUsable(obs) {
		return buf
	}
	if !obs.IntPending {
		f := iqFeatures(obs, false)
		if want := argmax(c.model.IntIQ, &f); want != timing.IQIndex(obs.IntIQ) {
			buf = append(buf, Reconfig{Kind: control.IntIQ, Target: int(timing.IQSizes()[want])})
		}
	}
	if !obs.FPPending {
		f := iqFeatures(obs, true)
		if want := argmax(c.model.FPIQ, &f); want != timing.IQIndex(obs.FPIQ) {
			buf = append(buf, Reconfig{Kind: control.FPIQ, Target: int(timing.IQSizes()[want])})
		}
	}
	return buf
}

// Reconfig aliases the control type for local brevity.
type Reconfig = control.Reconfig
