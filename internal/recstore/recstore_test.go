package recstore

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"gals/internal/core"
	"gals/internal/isa"
	"gals/internal/workload"
)

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// slabPath returns the single .rec file under the store (the tests record
// one benchmark at a time).
func slabPath(t *testing.T, dir string) string {
	t.Helper()
	var found string
	filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(p) == ".rec" {
			found = p
		}
		return nil
	})
	if found == "" {
		t.Fatal("no .rec slab found")
	}
	return found
}

// TestStoreReplayBitIdentical is the tentpole property test: for a spread
// of workloads (integer, FP, phase-cycling), the store's mmap'd replay is
// instruction-for-instruction identical to both live generation and the
// in-memory Recording.
func TestStoreReplayBitIdentical(t *testing.T) {
	st := openStore(t, t.TempDir())
	const n = 4000
	for _, name := range []string{"gcc", "apsi", "art", "adpcm decode"} {
		spec, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("missing benchmark %q", name)
		}
		rec, err := st.Recording(spec, n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rec.Len() != n {
			t.Fatalf("%s: stored %d instructions, want %d", name, rec.Len(), n)
		}
		live := spec.NewTrace()
		mem := spec.Record(n).Replay()
		disk := rec.Replay()
		var a, b, c isa.Inst
		for i := 0; i < n; i++ {
			live.Next(&a)
			mem.Next(&b)
			disk.Next(&c)
			if a != c || b != c {
				t.Fatalf("%s: instruction %d differs: live %v, memory %v, store %v", name, i, a, b, c)
			}
		}
		// Reading past the stored window falls back to live continuation.
		live.Next(&a)
		disk.Next(&c)
		if a != c {
			t.Fatalf("%s: overrun instruction differs: live %v, store %v", name, a, c)
		}
	}
}

// TestStoreReplayIdenticalResultsAcrossModes runs full simulations from
// live traces and from store-backed replays on all three machine modes and
// requires identical run times and stats.
func TestStoreReplayIdenticalResultsAcrossModes(t *testing.T) {
	st := openStore(t, t.TempDir())
	spec, _ := workload.ByName("em3d")
	const n = 6000
	rec, err := st.Recording(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []core.Config{
		core.DefaultSync(),
		core.DefaultAdaptive(core.ProgramAdaptive),
		core.DefaultAdaptive(core.PhaseAdaptive),
	}
	for _, cfg := range cfgs {
		cfg.Seed = 42
		cfg.PLLScale = 0.1
		want := core.RunWorkload(spec, cfg, n)
		got := core.RunSource(rec.Replay(), cfg, n)
		if got.TimeFS != want.TimeFS || got.Stats.Instructions != want.Stats.Instructions ||
			got.Stats.Mispredicts != want.Stats.Mispredicts || got.Stats.DCacheMiss != want.Stats.DCacheMiss {
			t.Fatalf("mode %v: store-backed run diverges: %d vs %d fs", cfg.Mode, got.TimeFS, want.TimeFS)
		}
	}
}

// TestStoreServesExistingSlabWithoutRerecording: a second store on the same
// directory (a second process) maps the existing slab instead of
// regenerating, and hands back the same instructions.
func TestStoreServesExistingSlabWithoutRerecording(t *testing.T) {
	dir := t.TempDir()
	spec, _ := workload.ByName("gcc")
	const n = 2000

	st1 := openStore(t, dir)
	rec1, err := st1.Recording(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	if s := st1.Stats(); s.Recorded != 1 || s.Mapped != 0 {
		t.Fatalf("first store stats %+v, want 1 recorded", s)
	}
	// Same store: one shared mapping, not a second load.
	again, _ := st1.Recording(spec, n)
	if again != rec1 {
		t.Fatal("same store returned a different recording instance")
	}

	st2 := openStore(t, dir)
	rec2, err := st2.Recording(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	if s := st2.Stats(); s.Recorded != 0 || s.Mapped != 1 {
		t.Fatalf("second store stats %+v, want 1 mapped / 0 recorded", s)
	}
	r1, r2 := rec1.Replay(), rec2.Replay()
	var a, b isa.Inst
	for i := 0; i < n; i++ {
		r1.Next(&a)
		r2.Next(&b)
		if a != b {
			t.Fatalf("instruction %d differs across processes", i)
		}
	}
}

// TestCorruptSlabIsRerecorded: a truncated or bit-flipped slab must degrade
// to re-recording with correct results, never to a crash or a stale replay.
func TestCorruptSlabIsRerecorded(t *testing.T) {
	spec, _ := workload.ByName("art")
	const n = 1500
	want := spec.Record(n)

	corruptions := map[string]func(p string){
		"truncated": func(p string) {
			fi, _ := os.Stat(p)
			os.Truncate(p, fi.Size()/2)
		},
		"bad magic": func(p string) {
			f, _ := os.OpenFile(p, os.O_WRONLY, 0)
			f.WriteAt([]byte("NOTAREC!"), 0)
			f.Close()
		},
		"wrong spec digest": func(p string) {
			f, _ := os.OpenFile(p, os.O_WRONLY, 0)
			f.WriteAt(make([]byte, 32), 24)
			f.Close()
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			st1 := openStore(t, dir)
			if _, err := st1.Recording(spec, n); err != nil {
				t.Fatal(err)
			}
			corrupt(slabPath(t, dir))

			st2 := openStore(t, dir)
			rec, err := st2.Recording(spec, n)
			if err != nil {
				t.Fatalf("corrupt slab was not re-recorded: %v", err)
			}
			if s := st2.Stats(); s.Rerecorded != 1 {
				t.Fatalf("stats %+v, want 1 re-recorded", s)
			}
			rp, wp := rec.Replay(), want.Replay()
			var a, b isa.Inst
			for i := 0; i < n; i++ {
				rp.Next(&a)
				wp.Next(&b)
				if a != b {
					t.Fatalf("re-recorded slab differs at instruction %d", i)
				}
			}
		})
	}
}

// TestStaleLockDoesNotWedge: a lock file left behind by a crashed recorder
// must not block a fresh store forever.
func TestStaleLockDoesNotWedge(t *testing.T) {
	dir := t.TempDir()
	spec, _ := workload.ByName("gcc")
	const n = 500

	// Pre-create the lock the recorder would take, with an old mtime.
	st := openStore(t, dir)
	digest, err := specDigest(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := st.path(key(digest, n))
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	lock := p + ".lock"
	if err := os.WriteFile(lock, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	old := os.Chtimes(lock, ancient(), ancient())
	if old != nil {
		t.Fatal(old)
	}

	rec, err := st.Recording(spec, n)
	if err != nil {
		t.Fatalf("stale lock wedged the store: %v", err)
	}
	if rec.Len() != n {
		t.Fatalf("recorded %d instructions, want %d", rec.Len(), n)
	}
}

func ancient() (t time.Time) { return time.Now().Add(-time.Hour) }

// TestDistinctWindowsDistinctSlabs: the same benchmark at two windows is
// two slabs; neither replay truncates or pads the other.
func TestDistinctWindowsDistinctSlabs(t *testing.T) {
	st := openStore(t, t.TempDir())
	spec, _ := workload.ByName("gcc")
	short, err := st.Recording(spec, 300)
	if err != nil {
		t.Fatal(err)
	}
	long, err := st.Recording(spec, 900)
	if err != nil {
		t.Fatal(err)
	}
	if short.Len() != 300 || long.Len() != 900 {
		t.Fatalf("window mix-up: %d / %d", short.Len(), long.Len())
	}
	// The short slab is a strict prefix of the long one.
	sp, lp := short.Replay(), long.Replay()
	var a, b isa.Inst
	for i := 0; i < 300; i++ {
		sp.Next(&a)
		lp.Next(&b)
		if a != b {
			t.Fatalf("prefix property violated at instruction %d", i)
		}
	}
}

// TestReleaseOnPoolRetire pins the mapping-lifetime contract: retiring a
// backed trace pool returns its slab references, the store unmaps and
// forgets the slab on the last one, and a later request simply remaps the
// file — so a multi-window corpus cannot accumulate mappings forever.
func TestReleaseOnPoolRetire(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := workload.ByName("gcc")
	const window = 400

	pool := workload.NewBackedPool(window, st)
	rec := pool.Get(spec)
	// Drain a replay fully before retirement (the quiescence contract: no
	// replay may touch the slab after its last reference is released), and
	// keep the decoded stream for the post-remap comparison.
	first := make([]isa.Inst, window)
	rp := rec.Replay()
	for i := range first {
		rp.Next(&first[i])
	}
	if got := st.Stats(); got.Released != 0 {
		t.Fatalf("premature release: %+v", got)
	}

	// A second pool holds its own reference: one retirement must not unmap.
	pool2 := workload.NewBackedPool(window, st)
	pool2.Get(spec)
	pool.Retire()
	if got := st.Stats(); got.Released != 0 {
		t.Fatalf("release with a live second reference: %+v", got)
	}
	pool2.Retire()
	if got := st.Stats(); got.Released != 1 {
		t.Fatalf("last reference did not release the slab: %+v", got)
	}

	// The slab is gone from the in-process cache, not from disk: the next
	// request maps the existing file again, bit-identically.
	before := st.Stats().Mapped
	rec2 := pool.Get(spec)
	if got := st.Stats(); got.Mapped != before+1 || got.Recorded != 1 {
		t.Fatalf("post-release request did not remap the existing slab: %+v", got)
	}
	b := rec2.Replay()
	var ib isa.Inst
	for i := 0; i < window; i++ {
		b.Next(&ib)
		if first[i] != ib {
			t.Fatalf("remapped slab diverges at instruction %d", i)
		}
	}
	pool.Retire()
}

// TestReleaseIgnoresUnknownAndUnbalanced: releasing a never-acquired or
// already-released slab is a no-op, never a panic or a counter skew.
func TestReleaseIgnoresUnknownAndUnbalanced(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := workload.ByName("art")
	st.Release(spec, 500) // never acquired
	if _, err := st.Recording(spec, 500); err != nil {
		t.Fatal(err)
	}
	st.Release(spec, 500)
	st.Release(spec, 500) // unbalanced
	if got := st.Stats(); got.Released != 1 {
		t.Fatalf("unbalanced release skewed the counter: %+v", got)
	}
}
