//go:build !unix

package recstore

import (
	"errors"
	"os"
)

// mapSlab reports that mmap is unavailable on this platform; the caller
// falls back to reading the slab into heap, which is correct but loses the
// file-backed-pages memory behaviour.
func mapSlab(f *os.File, size int) ([]byte, error) {
	return nil, errors.New("recstore: mmap unavailable on this platform")
}

// unmapSlab is a no-op on platforms without mmap.
func unmapSlab([]byte) {}
