//go:build !unix

package recstore

import (
	"errors"
	"os"
)

// mapPayload reports that mmap is unavailable on this platform; the caller
// falls back to reading the slab into heap, which is correct but loses the
// file-backed-pages memory behaviour.
func mapPayload(f *os.File, size int) ([]byte, error) {
	return nil, errors.New("recstore: mmap unavailable on this platform")
}
