//go:build unix

package recstore

import (
	"os"
	"syscall"
)

// mapSlab maps the whole slab file read-only and returns the full mapping
// (header included; the caller slices the payload off). The mapping lives
// until the store's refcount for the slab drops to zero (Release), at which
// point it is unmapped; until then the pages are file-backed, so the kernel
// reclaims them under pressure without any heap involvement. Unlinking a
// mapped file (cache pruning) is safe — established mappings keep their
// pages.
func mapSlab(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// unmapSlab releases a mapping returned by mapSlab. The caller must
// guarantee no live replay still reads it.
func unmapSlab(data []byte) {
	syscall.Munmap(data)
}
