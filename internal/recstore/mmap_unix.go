//go:build unix

package recstore

import (
	"os"
	"syscall"
)

// mapPayload maps the whole slab file read-only and returns the payload
// view past the header. The mapping lives for the process: recordings are
// cached per store and shared by every pool, and the pages are file-backed,
// so the kernel reclaims them under pressure without any heap involvement.
// Unlinking a mapped file (cache pruning) is safe — established mappings
// keep their pages.
func mapPayload(f *os.File, size int) ([]byte, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return data[headerSize:], nil
}
