package recstore

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gals/internal/faultinject"
	"gals/internal/isa"
	"gals/internal/workload"
)

// TestInjectedOpenFaultRerecords pins the degradation path behind
// faultinject.RecstoreOpen: an injected open failure is treated exactly
// like a corrupt slab — counted, deleted, re-recorded — and the replay
// after recovery is bit-identical to a clean recording.
func TestInjectedOpenFaultRerecords(t *testing.T) {
	defer faultinject.Disable()
	spec, _ := workload.ByName("art")
	const n = 1500
	want := spec.Record(n)

	dir := t.TempDir()
	st1 := openStore(t, dir)
	if _, err := st1.Recording(spec, n); err != nil {
		t.Fatal(err)
	}

	// A fresh store with the fault armed at rate 1 (a full disk outage):
	// the healthy slab fails to open, is counted corrupt and re-recorded —
	// and the re-recorded slab's verification load fails too, so the call
	// errors rather than looping forever.
	if err := faultinject.Enable("recstore.open=error:1"); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir)
	if _, err := st2.Recording(spec, n); err == nil {
		t.Fatal("Recording succeeded under a total open outage")
	}
	s := st2.Stats()
	if s.Corrupt == 0 {
		t.Fatalf("stats %+v, want Corrupt > 0", s)
	}
	if s.Rerecorded == 0 {
		t.Fatalf("stats %+v, want Rerecorded > 0", s)
	}

	// Outage over: the same store instance recovers on the next request and
	// replays bit-identically.
	faultinject.Disable()
	rec, err := st2.Recording(spec, n)
	if err != nil {
		t.Fatalf("store did not recover once the fault cleared: %v", err)
	}
	rp, wp := rec.Replay(), want.Replay()
	var a, b isa.Inst
	for i := 0; i < n; i++ {
		rp.Next(&a)
		wp.Next(&b)
		if a != b {
			t.Fatalf("post-fault recording differs at instruction %d", i)
		}
	}
}

// TestInjectedMmapFaultFallsBackToHeap pins the other recstore fault hook:
// a failed mmap degrades to a heap-resident read of the same slab — same
// bytes, no error, no re-record.
func TestInjectedMmapFaultFallsBackToHeap(t *testing.T) {
	defer faultinject.Disable()
	spec, _ := workload.ByName("gcc")
	const n = 1200
	want := spec.Record(n)

	dir := t.TempDir()
	st1 := openStore(t, dir)
	if _, err := st1.Recording(spec, n); err != nil {
		t.Fatal(err)
	}

	if err := faultinject.Enable("recstore.mmap=error:1"); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir)
	rec, err := st2.Recording(spec, n)
	faultinject.Disable()
	if err != nil {
		t.Fatalf("mmap fault was not degraded to a heap read: %v", err)
	}
	if s := st2.Stats(); s.Rerecorded != 0 {
		t.Fatalf("heap fallback re-recorded the slab: %+v", s)
	}
	rp, wp := rec.Replay(), want.Replay()
	var a, b isa.Inst
	for i := 0; i < n; i++ {
		rp.Next(&a)
		wp.Next(&b)
		if a != b {
			t.Fatalf("heap-fallback recording differs at instruction %d", i)
		}
	}
}

// TestInjectedFaultDoesNotPoisonStore pins the recovery contract: after a
// transient open fault, the store's next request for the same recording
// succeeds — the failed entry must not be cached forever.
func TestInjectedFaultDoesNotPoisonStore(t *testing.T) {
	defer faultinject.Disable()
	spec, _ := workload.ByName("apsi")
	const n = 800

	dir := t.TempDir()
	st1 := openStore(t, dir)
	if _, err := st1.Recording(spec, n); err != nil {
		t.Fatal(err)
	}

	// Remove write permission so the armed fault cannot be repaired by
	// re-recording: Recording must return the error...
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if err := faultinject.Enable("recstore.open=error:1"); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir)
	if _, err := st2.Recording(spec, n); err == nil {
		// Re-record succeeded despite the read-only dir (running as root,
		// perhaps): the poisoning property is still covered below.
		t.Log("re-record succeeded under read-only dir; continuing")
	}

	// ...and once the fault clears (and the directory is writable again),
	// the same store instance must recover.
	faultinject.Disable()
	os.Chmod(dir, 0o755)
	rec, err := st2.Recording(spec, n)
	if err != nil {
		t.Fatalf("store did not recover after transient fault: %v", err)
	}
	if rec == nil {
		t.Fatal("nil recording after recovery")
	}
}

// TestCancelledRecordingLeavesNoSlab expires a requester's ctx while the
// slab stream is being written: the acquisition returns the ctx error, no
// slab (or temp file) lands in the store directory, and the same store
// instance serves the identical request cleanly afterwards.
func TestCancelledRecordingLeavesNoSlab(t *testing.T) {
	spec, _ := workload.ByName("art")
	const n = 2_000_000
	dir := t.TempDir()
	st := openStore(t, dir)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	if _, err := st.RecordingContext(ctx, spec, n); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RecordingContext = %v, want DeadlineExceeded", err)
	}
	var leftovers []string
	filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			leftovers = append(leftovers, p)
		}
		return nil
	})
	if len(leftovers) != 0 {
		t.Fatalf("cancelled recording left files behind: %v", leftovers)
	}

	rec, err := st.RecordingContext(context.Background(), spec, n)
	if err != nil {
		t.Fatalf("recording after cancellation: %v", err)
	}
	defer st.Release(spec, n)
	if rec.Len() != n {
		t.Fatalf("recovered recording holds %d instructions, want %d", rec.Len(), n)
	}
	want := spec.Record(1000)
	rp, wp := rec.Replay(), want.Replay()
	var got, ref isa.Inst
	for i := 0; i < 1000; i++ {
		rp.Next(&got)
		wp.Next(&ref)
		if got != ref {
			t.Fatalf("recovered slab diverges from live stream at %d", i)
		}
	}
}
