// Package recstore persists recorded benchmark instruction streams as
// compact binary slabs and replays them via mmap, so paper-scale simulation
// windows (millions of instructions x 40 benchmarks) cost file-backed pages
// instead of heap. It is the disk tier under workload.Pool: a backed pool
// asks the store for each benchmark's recording, the store serves an
// existing slab (one mmap per process at a time, shared by every pool and
// replay, reference counted so retiring pools return their address space —
// see Release) or records it exactly once per directory — a lock file
// serializes recorders across processes, so concurrent sweeps on one cache
// directory never duplicate the generation work.
//
// Layout: <dir>/<hh>/<hash>.rec, where <hash> is the sha-256 of the format
// version, the window and the canonical spec JSON, and <hh> its first two
// hex chars (directory fanout). Each file is a 64-byte header (magic,
// version, instruction size, count, spec digest) followed by
// count x workload.EncodedInstSize payload bytes, written via a temp file
// and an atomic rename. Invalidation is by construction: any change to the
// encoding or the workload generator bumps formatVersion, orphaning old
// files rather than replaying stale streams; a corrupt or truncated file is
// deleted and re-recorded, never served.
package recstore

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gals/internal/faultinject"
	"gals/internal/workload"
)

// formatVersion is baked into file names and headers. Bump it whenever the
// wire encoding or the deterministic workload generator changes: old slabs
// then stop matching instead of replaying a stale stream.
const formatVersion = 1

const (
	headerSize = 64
	magic      = "GALSREC\x00"

	// lockPoll is the waiters' check interval for a recording in progress;
	// lockStale is how old an un-refreshed lock must be before waiters
	// treat its holder as crashed (holders refresh every lockStale/4).
	lockPoll  = 50 * time.Millisecond
	lockStale = 10 * time.Minute
)

// Subdir is the conventional recording-store location inside a shared
// cache directory — the single definition behind gals.UsePersistentCache,
// the service and cmd/sweep, so every entry point shares one slab corpus.
const Subdir = "recordings"

// ErrCorrupt marks a slab that exists on disk but cannot be served: wrong
// size (a truncated write from a crashed recorder), a stale or foreign
// header, or an undecodable payload. The store never surfaces it from
// Recording — a corrupt slab is deleted and re-recorded — but load errors
// wrap it so Stats.Corrupt can count the events and tests can assert the
// degradation path with errors.Is.
var ErrCorrupt = errors.New("recstore: corrupt slab")

// Stats are a store's lifetime counters.
type Stats struct {
	// Mapped counts recordings served from existing files; Recorded counts
	// recordings generated and written by this process.
	Mapped, Recorded int64
	// Rerecorded counts files that were deleted and regenerated for any
	// reason (corruption, stale format, injected faults).
	Rerecorded int64
	// Corrupt counts slab loads rejected with ErrCorrupt specifically —
	// the operator-facing "disk is damaging my slabs" signal, a subset of
	// Rerecorded's triggers.
	Corrupt int64
	// Released counts slab references dropped to zero (Release): the
	// mapping, when one existed, was unmapped and the cache entry forgotten.
	Released int64
}

// Store is an on-disk recording store. Create with Open. It implements
// workload.Backing and workload.Releaser; all methods are safe for
// concurrent use.
//
// Slab lifetime is reference counted: every successful Recording call takes
// one reference, every Release drops one, and the mapping is unmapped (the
// entry forgotten) when the count reaches zero — so a retired trace pool
// (workload.Pool.Retire) returns its windows' address space instead of
// accumulating mappings across a multi-window corpus for the process
// lifetime. A later Recording for the same slab simply remaps it.
type Store struct {
	dir string

	mu      sync.Mutex
	entries map[string]*entry

	mapped, recorded, rerecorded, corrupt, released atomic.Int64
}

type entry struct {
	once sync.Once
	rec  *workload.Recording
	// mapping is the full mmap (header included) backing rec, nil when the
	// slab was heap-read instead.
	mapping []byte
	err     error

	// refs and released are guarded by Store.mu.
	refs     int
	released bool
}

// Open creates (if needed) and returns a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("recstore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recstore: %w", err)
	}
	return &Store{dir: dir, entries: make(map[string]*entry)}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Stats returns the store's counters so far.
func (st *Store) Stats() Stats {
	return Stats{
		Mapped:     st.mapped.Load(),
		Recorded:   st.recorded.Load(),
		Rerecorded: st.rerecorded.Load(),
		Corrupt:    st.corrupt.Load(),
		Released:   st.released.Load(),
	}
}

// Live returns the number of slab entries currently cached (each holding a
// mapping or heap slab with a non-zero reference count, or mid-acquire).
// Chaos tests assert it reaches zero after every pool retires.
func (st *Store) Live() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries)
}

// specDigest canonicalizes a spec for identity checks. Spec is plain data,
// so its JSON encoding is stable.
func specDigest(s workload.Spec) ([32]byte, error) {
	blob, err := json.Marshal(s)
	if err != nil {
		return [32]byte{}, fmt.Errorf("recstore: unmarshalable spec: %w", err)
	}
	return sha256.Sum256(blob), nil
}

// key derives the file-name hash for (spec, window).
func key(digest [32]byte, window int64) string {
	h := sha256.New()
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], formatVersion)
	binary.LittleEndian.PutUint32(hdr[4:], workload.EncodedInstSize)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(window))
	h.Write(hdr[:])
	h.Write(digest[:])
	return hex.EncodeToString(h.Sum(nil))
}

// ScrubStats reports one Scrub pass.
type ScrubStats struct {
	// TempFiles and LockFiles count crashed-recorder debris removed.
	TempFiles int `json:"temp_files"`
	LockFiles int `json:"lock_files"`
	// BadSlabs counts .rec files deleted for failing cheap validation
	// (size/magic/version mismatch — a truncated write or stale format);
	// BadSlabBytes their total size.
	BadSlabs     int   `json:"bad_slabs"`
	BadSlabBytes int64 `json:"bad_slab_bytes"`
}

// Scrub is the startup-recovery pass: it assumes the caller has exclusive
// use of the directory (galsd runs it before serving), so every temp and
// lock file is crashed-recorder debris and is removed regardless of age —
// unlike the stale-age rule live waiters apply. Slab files failing cheap
// header validation (wrong size for their declared window, foreign magic,
// stale format) are deleted too; they would be delete-and-re-recorded on
// first touch anyway, but reaping them up front reclaims the disk and
// surfaces the count to the operator.
func (st *Store) Scrub() (ScrubStats, error) {
	sc := ScrubStats{}
	err := filepath.WalkDir(st.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		name := d.Name()
		switch {
		case strings.HasSuffix(name, ".lock"):
			if os.Remove(path) == nil {
				sc.LockFiles++
			}
		case strings.HasPrefix(name, "."):
			if os.Remove(path) == nil {
				sc.TempFiles++
			}
		case strings.HasSuffix(name, ".rec"):
			size, ok := slabShapeOK(path)
			if ok {
				return nil
			}
			if os.Remove(path) == nil {
				sc.BadSlabs++
				sc.BadSlabBytes += size
				st.rerecorded.Add(1)
			}
		}
		return nil
	})
	if err != nil {
		return sc, fmt.Errorf("recstore: %w", err)
	}
	return sc, nil
}

// slabShapeOK is the spec-independent subset of load's validation: header
// magic, format version, instruction size, and that the file length matches
// the window the header declares. It cannot check the spec digest (Scrub
// has no spec in hand), so a shape-valid slab with a wrong digest is still
// caught — and re-recorded — by load on first use.
func slabShapeOK(p string) (size int64, ok bool) {
	f, err := os.Open(p)
	if err != nil {
		return 0, true // unreadable is not provably corrupt; leave it to load
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, true
	}
	size = fi.Size()
	var hdr [headerSize]byte
	if size < headerSize {
		return size, false
	}
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return size, true
	}
	if string(hdr[0:8]) != magic ||
		binary.LittleEndian.Uint32(hdr[8:]) != formatVersion ||
		binary.LittleEndian.Uint32(hdr[12:]) != workload.EncodedInstSize {
		return size, false
	}
	window := int64(binary.LittleEndian.Uint64(hdr[16:]))
	if window <= 0 || size != headerSize+window*workload.EncodedInstSize {
		return size, false
	}
	return size, true
}

// Recording returns the benchmark's recording of exactly window
// instructions, mapping an existing slab or recording one (once per
// directory, across processes). The returned recording is shared: repeated
// calls for the same (spec, window) return the same mapping, and each call
// takes one slab reference, returned by Release. It implements
// workload.Backing.
func (st *Store) Recording(s workload.Spec, window int64) (*workload.Recording, error) {
	return st.RecordingContext(nil, s, window)
}

// RecordingContext is Recording bounded by ctx: a slab that has to be
// generated observes cancellation while the stream is written (the temp
// file is removed, nothing lands in the store), and a waiter on another
// process's in-progress recording stops polling when ctx expires. A
// cancelled acquisition never poisons the (spec, window): the entry is
// forgotten and the next request records afresh. It implements
// workload.ContextBacking; a nil ctx is Recording.
func (st *Store) RecordingContext(ctx context.Context, s workload.Spec, window int64) (*workload.Recording, error) {
	if window <= 0 {
		return nil, fmt.Errorf("recstore: non-positive window %d", window)
	}
	digest, err := specDigest(s)
	if err != nil {
		return nil, err
	}
	k := key(digest, window)

	for {
		st.mu.Lock()
		e := st.entries[k]
		if e == nil {
			e = &entry{}
			st.entries[k] = e
		}
		st.mu.Unlock()

		e.once.Do(func() { e.rec, e.mapping, e.err = st.acquire(ctx, s, window, digest, k) })
		if e.err != nil {
			// A failed acquire (disk hiccup, injected fault) must not
			// poison the (spec, window) for the process lifetime: forget
			// the entry so the next Recording call retries from disk.
			st.mu.Lock()
			if st.entries[k] == e {
				delete(st.entries, k)
			}
			st.mu.Unlock()
			return nil, e.err
		}
		st.mu.Lock()
		if e.released || st.entries[k] != e {
			// Raced with a Release that dropped the last reference between
			// our map lookup and now: remap through a fresh entry.
			st.mu.Unlock()
			continue
		}
		e.refs++
		st.mu.Unlock()
		return e.rec, nil
	}
}

// Release returns one Recording reference for (spec, window). When the last
// reference drops, the slab's mapping (if any) is unmapped and the cache
// entry forgotten — the caller must guarantee that no replay created from
// any of the released references is still live. Unbalanced or unknown
// releases are ignored. It implements workload.Releaser, which is how a
// retiring trace pool returns its slabs.
func (st *Store) Release(s workload.Spec, window int64) {
	digest, err := specDigest(s)
	if err != nil {
		return
	}
	k := key(digest, window)

	st.mu.Lock()
	e := st.entries[k]
	if e == nil || e.refs == 0 {
		st.mu.Unlock()
		return
	}
	if e.refs--; e.refs > 0 {
		st.mu.Unlock()
		return
	}
	delete(st.entries, k)
	e.released = true
	mapping := e.mapping
	e.mapping = nil
	e.rec = nil
	st.mu.Unlock()

	if mapping != nil {
		unmapSlab(mapping)
	}
	st.released.Add(1)
}

// path maps a key hash to its slab file.
func (st *Store) path(k string) string {
	return filepath.Join(st.dir, k[:2], k+".rec")
}

// acquire loads or records one slab, returning the recording and the full
// mmap backing it (nil when the slab was heap-read).
func (st *Store) acquire(ctx context.Context, s workload.Spec, window int64, digest [32]byte, k string) (*workload.Recording, []byte, error) {
	p := st.path(k)
	if rec, mapping, err := st.load(s, window, digest, p); err == nil {
		st.mapped.Add(1)
		// Refresh the slab's mtime so a size-capped LRU prune
		// (resultcache.Prune over the shared cache root) evicts cold slabs
		// before ones this process is actively replaying.
		now := time.Now()
		os.Chtimes(p, now, now)
		return rec, mapping, nil
	} else if !os.IsNotExist(err) {
		// Anything on disk that is not a valid slab — truncated write from
		// a crashed recorder, bit rot, a stale format — is deleted and
		// regenerated rather than replayed.
		if errors.Is(err, ErrCorrupt) {
			st.corrupt.Add(1)
		}
		os.Remove(p)
		st.rerecorded.Add(1)
	}
	if err := st.record(ctx, s, window, digest, p); err != nil {
		return nil, nil, err
	}
	st.recorded.Add(1)
	rec, mapping, err := st.load(s, window, digest, p)
	if err != nil {
		return nil, nil, fmt.Errorf("recstore: freshly recorded slab unreadable: %w", err)
	}
	return rec, mapping, nil
}

// load validates and maps an existing slab file.
func (st *Store) load(s workload.Spec, window int64, digest [32]byte, p string) (*workload.Recording, []byte, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	// An injected open fault is indistinguishable from an unreadable slab:
	// surface it as corruption so the delete-and-re-record path runs.
	if ferr := faultinject.Err(faultinject.RecstoreOpen); ferr != nil {
		return nil, nil, fmt.Errorf("%w: %w", ErrCorrupt, ferr)
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	want := headerSize + window*workload.EncodedInstSize
	if fi.Size() != want {
		return nil, nil, fmt.Errorf("%w: %s is %d bytes, want %d", ErrCorrupt, p, fi.Size(), want)
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, nil, err
	}
	if string(hdr[0:8]) != magic ||
		binary.LittleEndian.Uint32(hdr[8:]) != formatVersion ||
		binary.LittleEndian.Uint32(hdr[12:]) != workload.EncodedInstSize ||
		int64(binary.LittleEndian.Uint64(hdr[16:])) != window ||
		[32]byte(hdr[24:56]) != digest {
		return nil, nil, fmt.Errorf("%w: %s has a stale or foreign header", ErrCorrupt, p)
	}
	var mapping []byte
	raw, err := mapSlab(f, int(fi.Size()))
	if err == nil {
		if ferr := faultinject.Err(faultinject.RecstoreMap); ferr != nil {
			unmapSlab(raw)
			raw, err = nil, ferr
		}
	}
	if err != nil {
		// No mmap on this platform (or the map failed): fall back to a
		// plain read — correct, just heap-resident.
		blob, rerr := os.ReadFile(p)
		if rerr != nil {
			return nil, nil, rerr
		}
		raw = blob
	} else {
		mapping = raw
	}
	rec, err := workload.RecordingFromEncoded(s, raw[headerSize:])
	if err != nil {
		if mapping != nil {
			unmapSlab(mapping)
		}
		return nil, nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	return rec, mapping, nil
}

// record generates the slab under a cross-process lock: the first recorder
// streams the trace to a temp file and renames it into place; others wait
// for the rename instead of regenerating. A recorder that crashes leaves
// the lock behind — waiters treat a lock older than lockStale as abandoned
// and record themselves (the rename is idempotent: every recorder writes
// identical bytes).
func (st *Store) record(ctx context.Context, s workload.Spec, window int64, digest [32]byte, p string) error {
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("recstore: %w", err)
	}
	lock := p + ".lock"
	lf, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err == nil {
		lf.Close()
		defer os.Remove(lock)
		// Keep the lock fresh while recording: a paper-scale slab can take
		// longer than lockStale to generate, and waiters must not conclude
		// the lock is abandoned while the stream is still being written.
		stop := make(chan struct{})
		refreshed := make(chan struct{})
		go func() {
			defer close(refreshed)
			t := time.NewTicker(lockStale / 4)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					now := time.Now()
					os.Chtimes(lock, now, now)
				}
			}
		}()
		err := st.write(ctx, s, window, digest, p)
		close(stop)
		<-refreshed
		return err
	}
	if !os.IsExist(err) {
		return fmt.Errorf("recstore: %w", err)
	}
	// Another process is recording: wait for the slab to land.
	for {
		if _, err := os.Stat(p); err == nil {
			return nil
		}
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		fi, err := os.Stat(lock)
		if err != nil || time.Since(fi.ModTime()) > lockStale {
			// Lock released without a slab, or abandoned: record ourselves.
			return st.write(ctx, s, window, digest, p)
		}
		time.Sleep(lockPoll)
	}
}

// write streams the slab to a temp file and renames it into place. A ctx
// cancellation mid-stream aborts the write and removes the temp file.
func (st *Store) write(ctx context.Context, s workload.Spec, window int64, digest [32]byte, p string) error {
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+filepath.Base(p)+".tmp*")
	if err != nil {
		return fmt.Errorf("recstore: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	var hdr [headerSize]byte
	copy(hdr[0:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:], formatVersion)
	binary.LittleEndian.PutUint32(hdr[12:], workload.EncodedInstSize)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(window))
	copy(hdr[24:56], digest[:])

	w := bufio.NewWriterSize(tmp, 1<<20)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("recstore: %w", err)
	}
	if err := s.RecordToContext(ctx, w, window); err != nil {
		if ctx != nil && errors.Is(err, ctx.Err()) {
			return err
		}
		return fmt.Errorf("recstore: %w", err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("recstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		tmp = nil
		return fmt.Errorf("recstore: %w", err)
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, p); err != nil {
		os.Remove(name)
		return fmt.Errorf("recstore: %w", err)
	}
	return nil
}
