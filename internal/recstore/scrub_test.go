package recstore

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"gals/internal/workload"
)

// TestScrubReapsBadSlabsAndDebris pins the recording store's startup
// recovery: temps and locks are removed regardless of age, slabs failing
// the spec-independent shape check (truncated, foreign magic, size not
// matching the declared window) are deleted and counted as re-records, and
// a healthy slab replays untouched afterwards.
func TestScrubReapsBadSlabsAndDebris(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)

	spec := workload.Suite()[0]
	if _, err := st.Recording(spec, 500); err != nil {
		t.Fatal(err)
	}
	good := slabPath(t, dir)
	st.Release(spec, 500)

	sub := filepath.Join(dir, "ab")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(sub, ".slab.rec.tmp1"), []byte("partial"), 0o644)
	os.WriteFile(filepath.Join(sub, "slab.lock"), []byte(""), 0o644)
	// Truncated: shorter than the header.
	trunc := filepath.Join(sub, "1truncated.rec")
	os.WriteFile(trunc, []byte("GALSREC"), 0o644)
	// Foreign magic with a plausible size.
	foreign := filepath.Join(sub, "2foreign.rec")
	os.WriteFile(foreign, make([]byte, headerSize+workload.EncodedInstSize), 0o644)
	// Valid header, but the file length contradicts the declared window.
	short := filepath.Join(sub, "3short.rec")
	hdr := make([]byte, headerSize+workload.EncodedInstSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[8:], formatVersion)
	binary.LittleEndian.PutUint32(hdr[12:], workload.EncodedInstSize)
	binary.LittleEndian.PutUint64(hdr[16:], 500) // claims 500 instructions
	os.WriteFile(short, hdr, 0o644)

	sc, err := st.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if sc.TempFiles != 1 || sc.LockFiles != 1 {
		t.Fatalf("scrub stats %+v, want 1 temp and 1 lock reaped", sc)
	}
	if sc.BadSlabs != 3 || sc.BadSlabBytes == 0 {
		t.Fatalf("scrub stats %+v, want 3 bad slabs reaped", sc)
	}
	if st.Stats().Rerecorded != 3 {
		t.Fatalf("Rerecorded = %d, want 3", st.Stats().Rerecorded)
	}
	for _, p := range []string{trunc, foreign, short} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s survived the scrub", p)
		}
	}
	if _, err := os.Stat(good); err != nil {
		t.Fatal("healthy slab reaped by the scrub")
	}

	// The survivor still serves: same slab, no re-record.
	if _, err := st.Recording(spec, 500); err != nil {
		t.Fatalf("post-scrub Recording: %v", err)
	}
	defer st.Release(spec, 500)
	if st.Stats().Mapped == 0 {
		t.Fatal("post-scrub load did not map the existing slab")
	}

	// A second pass over the now-clean store finds nothing.
	if sc, err := st.Scrub(); err != nil || sc != (ScrubStats{}) {
		t.Fatalf("second Scrub = %+v, %v", sc, err)
	}
}
