package timing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPeriodFreqRoundTrip(t *testing.T) {
	f := func(mhz uint16) bool {
		m := float64(mhz%4000) + 100 // 100..4099 MHz
		p := PeriodFS(m)
		back := FreqMHz(p)
		return math.Abs(back-m)/m < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeriodFSPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive frequency")
		}
	}()
	PeriodFS(0)
}

func TestFreqMHzPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive period")
		}
	}()
	FreqMHz(0)
}

func TestDCacheTable1Shape(t *testing.T) {
	cfgs := DCacheConfigs()
	if len(cfgs) != NumDCacheConfigs {
		t.Fatalf("got %d configs, want %d", len(cfgs), NumDCacheConfigs)
	}
	wantL1 := []int{32, 64, 128, 256}
	wantL2 := []int{256, 512, 1024, 2048}
	wantAssoc := []int{1, 2, 4, 8}
	for i, c := range cfgs {
		s := c.Spec()
		if s.L1SizeKB != wantL1[i] || s.L2SizeKB != wantL2[i] || s.Assoc != wantAssoc[i] {
			t.Errorf("config %d: got %d/%d/%d-way, want %d/%d/%d-way",
				i, s.L1SizeKB, s.L2SizeKB, s.Assoc, wantL1[i], wantL2[i], wantAssoc[i])
		}
		// Adaptive sub-banking replicates the base way (Table 1).
		if s.L1SubBanksAdapt != 32 || s.L2SubBanksAdapt != 8 {
			t.Errorf("config %d: adaptive sub-banks %d/%d, want 32/8", i, s.L1SubBanksAdapt, s.L2SubBanksAdapt)
		}
	}
}

func TestDCacheFrequenciesMonotone(t *testing.T) {
	prevA, prevO := math.Inf(1), math.Inf(1)
	for _, c := range DCacheConfigs() {
		s := c.Spec()
		if s.AdaptMHz >= prevA && c != DCache32K1W {
			t.Errorf("%v: adaptive frequency %v not below previous %v", c, s.AdaptMHz, prevA)
		}
		if s.OptimalMHz >= prevO && c != DCache32K1W {
			t.Errorf("%v: optimal frequency %v not below previous %v", c, s.OptimalMHz, prevO)
		}
		if s.OptimalMHz < s.AdaptMHz {
			t.Errorf("%v: optimal %v slower than adaptive %v", c, s.OptimalMHz, s.AdaptMHz)
		}
		prevA, prevO = s.AdaptMHz, s.OptimalMHz
	}
}

func TestDCacheLatenciesFollowTable5(t *testing.T) {
	wantL1B := []int{8, 5, 2, 0}
	wantL2B := []int{43, 27, 12, 0}
	for i, c := range DCacheConfigs() {
		s := c.Spec()
		if s.L1ALat != 2 || s.L2ALat != 12 {
			t.Errorf("%v: A latencies %d/%d, want 2/12", c, s.L1ALat, s.L2ALat)
		}
		if s.L1BLat != wantL1B[i] || s.L2BLat != wantL2B[i] {
			t.Errorf("%v: B latencies %d/%d, want %d/%d", c, s.L1BLat, s.L2BLat, wantL1B[i], wantL2B[i])
		}
	}
}

func TestICacheDMto2WayDrop(t *testing.T) {
	// Paper Section 2.2: ~31% frequency loss from direct-mapped to 2-way.
	a := ICache16K1W.Spec().AdaptMHz
	b := ICache32K2W.Spec().AdaptMHz
	drop := 1 - b/a
	if drop < 0.28 || drop > 0.34 {
		t.Errorf("DM->2-way drop %.1f%%, want ~31%%", drop*100)
	}
}

func TestOptimal64KBDMGap(t *testing.T) {
	// Paper Section 4: the optimized 64KB DM cache is 27% faster than the
	// adaptive 64KB 4-way configuration.
	idx, ok := SyncICacheIndexByName("64k1W")
	if !ok {
		t.Fatal("missing 64k1W in Table 3")
	}
	gap := SyncICacheSpecs()[idx].MHz/ICache64K4W.Spec().AdaptMHz - 1
	if gap < 0.24 || gap > 0.30 {
		t.Errorf("optimal 64KB DM gap %.1f%%, want ~27%%", gap*100)
	}
}

func TestSyncICacheTable3Complete(t *testing.T) {
	specs := SyncICacheSpecs()
	if len(specs) != 16 {
		t.Fatalf("Table 3 has %d rows, want 16", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate Table 3 entry %q", s.Name)
		}
		seen[s.Name] = true
		if s.MHz <= 0 || s.SizeKB <= 0 || s.Assoc < 1 || s.Assoc > 4 {
			t.Errorf("implausible Table 3 row %+v", s)
		}
		if s.BPred.GShareEntries != 1<<uint(s.BPred.GShareBits) {
			t.Errorf("%s: gshare entries %d != 2^%d", s.Name, s.BPred.GShareEntries, s.BPred.GShareBits)
		}
	}
	if _, ok := SyncICacheIndexByName("no-such"); ok {
		t.Error("lookup of bogus name succeeded")
	}
}

func TestICacheTable2PredictorGeometry(t *testing.T) {
	for _, c := range ICacheConfigs() {
		bp := c.Spec().BPred
		if bp.GShareEntries != 1<<uint(bp.GShareBits) {
			t.Errorf("%v: gshare entries %d != 2^%d", c, bp.GShareEntries, bp.GShareBits)
		}
		if bp.LocalBHTEntries != 1<<uint(bp.LocalBits) {
			t.Errorf("%v: local BHT %d != 2^%d", c, bp.LocalBHTEntries, bp.LocalBits)
		}
	}
}

func TestIQFrequencyCliff(t *testing.T) {
	// Paper Figure 4: a 16-entry queue has 2 levels of selection logic and
	// is much faster than any larger queue (3 levels), with a gentle
	// decline from 20 to 64 entries.
	f16 := IQFreqMHz(16)
	f20 := IQFreqMHz(20)
	f64 := IQFreqMHz(64)
	if cliff := 1 - f20/f16; cliff < 0.15 {
		t.Errorf("16->20 entry cliff only %.1f%%, want a pronounced drop", cliff*100)
	}
	if tail := 1 - f64/f20; tail > 0.15 {
		t.Errorf("20->64 decline %.1f%%, want gentle", tail*100)
	}
	prev := math.Inf(1)
	for n := 16; n <= 64; n += 4 {
		f := IQFreqMHz(n)
		if f >= prev && n != 16 {
			t.Errorf("IQ frequency not monotone at %d entries", n)
		}
		prev = f
	}
}

func TestIQFreqPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{0, 15, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("IQFreqMHz(%d) did not panic", n)
				}
			}()
			IQFreqMHz(n)
		}()
	}
}

func TestIQIndex(t *testing.T) {
	for i, s := range IQSizes() {
		if IQIndex(s) != i {
			t.Errorf("IQIndex(%d) = %d, want %d", s, IQIndex(s), i)
		}
	}
}

func TestMemLatency(t *testing.T) {
	if got := MemLatency(0); got != 0 {
		t.Errorf("MemLatency(0) = %d, want 0", got)
	}
	// One chunk: just the first-access latency.
	if got := MemLatency(16); got != MemFirstAccess {
		t.Errorf("MemLatency(16) = %d, want %d", got, MemFirstAccess)
	}
	// A 128-byte L2 line: 8 chunks.
	want := MemFirstAccess + 7*MemNextAccess
	if got := MemLatency(128); got != want {
		t.Errorf("MemLatency(128) = %d, want %d", got, want)
	}
	// Partial chunks round up.
	if got := MemLatency(17); got != MemFirstAccess+MemNextAccess {
		t.Errorf("MemLatency(17) = %d, want %d", got, MemFirstAccess+MemNextAccess)
	}
}

func TestMemLatencyMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a%4096), int(b%4096)
		if x > y {
			x, y = y, x
		}
		return MemLatency(x) <= MemLatency(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
