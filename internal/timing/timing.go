// Package timing provides the circuit-timing model of the adaptive GALS
// processor: the maximum clock frequency of every resizable-structure
// configuration, and the cache access latencies of the A and B partitions.
//
// The paper derives these numbers from CACTI 3.1 (caches, Section 2.1-2.2)
// and from the Palacharla/Jouppi model (issue queues, Section 2.3). Neither
// tool is available here, so this package implements an analytical model
// calibrated so that every ratio the paper reports holds exactly enough to
// drive the same conclusions:
//
//   - Figure 2: D-cache/L2 frequency falls from ~1.79 GHz (32KB/256KB
//     direct mapped) to ~0.76 GHz (256KB/2MB 8-way); the "optimal"
//     (non-resizable) organization is ~5% faster at upsized points.
//   - Figure 3: the adaptive I-cache loses ~31% frequency from direct
//     mapped to 2-way; the optimal 64KB direct-mapped cache is 27% faster
//     than the adaptive 64KB 4-way configuration.
//   - Figure 4: issue queues drop sharply from 16 entries (2 levels of
//     log4 selection logic) to 20..64 entries (3 levels), then decline
//     gently with capacity.
//
// Frequencies are expressed in MHz and periods in femtoseconds so that all
// downstream arithmetic is exact integer math.
package timing

import "fmt"

// FS is one femtosecond. Simulation time is measured in integer
// femtoseconds throughout the simulator.
type FS = int64

const (
	// FemtosPerNano is the number of femtoseconds in a nanosecond.
	FemtosPerNano FS = 1_000_000
	// FemtosPerMicro is the number of femtoseconds in a microsecond.
	FemtosPerMicro FS = 1_000_000_000
)

// PeriodFS converts a frequency in MHz to a clock period in femtoseconds.
func PeriodFS(mhz float64) FS {
	if mhz <= 0 {
		panic(fmt.Sprintf("timing: non-positive frequency %v MHz", mhz))
	}
	return FS(1e9/mhz + 0.5)
}

// FreqMHz converts a period in femtoseconds to a frequency in MHz.
func FreqMHz(period FS) float64 {
	if period <= 0 {
		panic(fmt.Sprintf("timing: non-positive period %d fs", period))
	}
	return 1e9 / float64(period)
}

// ---------------------------------------------------------------------------
// Load/store domain: joint L1-D / L2 configurations (paper Table 1).

// DCacheConfig indexes the four joint L1-D/L2 configurations of Table 1.
// The pair is always resized together, by ways.
type DCacheConfig int

const (
	// DCache32K1W is 32KB direct-mapped L1-D with 256KB direct-mapped L2:
	// the base (smallest, fastest) configuration.
	DCache32K1W DCacheConfig = iota
	// DCache64K2W is 64KB 2-way L1-D with 512KB 2-way L2.
	DCache64K2W
	// DCache128K4W is 128KB 4-way L1-D with 1MB 4-way L2.
	DCache128K4W
	// DCache256K8W is 256KB 8-way L1-D with 2MB 8-way L2.
	DCache256K8W
	// NumDCacheConfigs is the number of joint D/L2 configurations.
	NumDCacheConfigs = int(DCache256K8W) + 1
)

// DCacheSpec describes one row of Table 1.
type DCacheSpec struct {
	// Name is the compact label used in the paper's figures,
	// e.g. "32k1W/256k1W".
	Name string
	// L1SizeKB and L2SizeKB are the total capacities enabled.
	L1SizeKB, L2SizeKB int
	// Assoc is the associativity of both caches (ways enabled).
	Assoc int
	// L1SubBanksAdapt and L1SubBanksOpt are CACTI sub-bank counts for the
	// adaptive and optimal organizations (Table 1).
	L1SubBanksAdapt, L1SubBanksOpt int
	// L2SubBanksAdapt and L2SubBanksOpt are sub-banks per Table 1.
	L2SubBanksAdapt, L2SubBanksOpt int
	// AdaptMHz is the domain frequency of the adaptive organization.
	AdaptMHz float64
	// OptimalMHz is the frequency of the fixed optimal organization of the
	// same capacity/associativity (used by fully synchronous designs).
	OptimalMHz float64
	// L1ALat is the L1 A-partition latency in cycles, and L1BLat the
	// additional B-partition latency (0 when no B partition exists).
	// Paper Table 5: L1 "2/8, 2/5, 2/2, or 2/-".
	L1ALat, L1BLat int
	// L2ALat / L2BLat follow Table 5: "12/43, 12/27, 12/12, or 12/-".
	L2ALat, L2BLat int
}

// dcacheSpecs is calibrated to Figure 2 (y-axis 0.4-1.8 GHz) and Table 1.
var dcacheSpecs = [NumDCacheConfigs]DCacheSpec{
	{"32k1W/256k1W", 32, 256, 1, 32, 32, 8, 8, 1790, 1790, 2, 8, 12, 43},
	{"64k2W/512k2W", 64, 512, 2, 32, 8, 8, 4, 1300, 1345, 2, 5, 12, 27},
	{"128k4W/1024k4W", 128, 1024, 4, 32, 16, 8, 4, 1000, 1015, 2, 2, 12, 12},
	{"256k8W/2048k8W", 256, 2048, 8, 32, 4, 8, 4, 760, 800, 2, 0, 12, 0},
}

// Spec returns the Table 1 row for the configuration.
func (c DCacheConfig) Spec() DCacheSpec { return dcacheSpecs[c] }

// String returns the paper's label for the configuration.
func (c DCacheConfig) String() string { return dcacheSpecs[c].Name }

// AdaptPeriod returns the adaptive-organization clock period.
func (c DCacheConfig) AdaptPeriod() FS { return PeriodFS(dcacheSpecs[c].AdaptMHz) }

// OptimalPeriod returns the optimal-organization clock period.
func (c DCacheConfig) OptimalPeriod() FS { return PeriodFS(dcacheSpecs[c].OptimalMHz) }

// DCacheConfigs lists all four configurations in upsizing order.
func DCacheConfigs() []DCacheConfig {
	return []DCacheConfig{DCache32K1W, DCache64K2W, DCache128K4W, DCache256K8W}
}

// ---------------------------------------------------------------------------
// Front end domain: joint I-cache / branch predictor configurations
// (paper Tables 2 and 3).

// BPredGeom sizes the McFarling hybrid predictor attached to an I-cache
// configuration (Tables 2 and 3 share this shape).
type BPredGeom struct {
	// GShareBits is hg: the global history length; the gshare BHT and the
	// meta-predictor each have 2^GShareBits two-bit counters.
	GShareBits int
	// GShareEntries and MetaEntries are the corresponding table sizes.
	GShareEntries, MetaEntries int
	// LocalBits is hl: the local history width; the local BHT has
	// 2^LocalBits two-bit counters.
	LocalBits int
	// LocalBHTEntries is the local second-level table size.
	LocalBHTEntries int
	// LocalPHTEntries is the per-branch pattern history table size.
	LocalPHTEntries int
}

// ICacheConfig indexes the four adaptive I-cache/branch-predictor
// configurations of Table 2.
type ICacheConfig int

const (
	// ICache16K1W is the 16KB direct-mapped base configuration.
	ICache16K1W ICacheConfig = iota
	// ICache32K2W is 32KB 2-way.
	ICache32K2W
	// ICache48K3W is 48KB 3-way.
	ICache48K3W
	// ICache64K4W is 64KB 4-way.
	ICache64K4W
	// NumICacheConfigs is the number of adaptive front-end configurations.
	NumICacheConfigs = int(ICache64K4W) + 1
)

// ICacheSpec describes one row of Table 2 plus the calibrated frequency.
type ICacheSpec struct {
	// Name is a compact label, e.g. "16k1W".
	Name string
	// SizeKB is the enabled capacity; Assoc the enabled ways.
	SizeKB, Assoc int
	// SubBanks is the CACTI sub-bank count (32 for every adaptive row).
	SubBanks int
	// BPred is the jointly sized branch predictor.
	BPred BPredGeom
	// AdaptMHz is the front-end domain frequency with this configuration.
	AdaptMHz float64
	// ALat is the A-partition latency in cycles; BLat the additional
	// B-partition latency (0 when the full cache is enabled).
	ALat, BLat int
}

// icacheSpecs is calibrated to Figure 3: a ~31% drop from direct-mapped to
// 2-way, and 64KB 4-way 27% slower than the optimal 64KB direct-mapped.
var icacheSpecs = [NumICacheConfigs]ICacheSpec{
	{"16k1W", 16, 1, 32, BPredGeom{14, 16384, 16384, 11, 2048, 1024}, 1770, 2, 8},
	{"32k2W", 32, 2, 32, BPredGeom{15, 32768, 32768, 12, 4096, 1024}, 1220, 2, 5},
	{"48k3W", 48, 3, 32, BPredGeom{15, 32768, 32768, 12, 4096, 1024}, 1080, 2, 2},
	{"64k4W", 64, 4, 32, BPredGeom{16, 65536, 65536, 13, 8192, 1024}, 953, 2, 0},
}

// Spec returns the Table 2 row for the configuration.
func (c ICacheConfig) Spec() ICacheSpec { return icacheSpecs[c] }

// String returns the compact label for the configuration.
func (c ICacheConfig) String() string { return icacheSpecs[c].Name }

// AdaptPeriod returns the front-end clock period for the configuration.
func (c ICacheConfig) AdaptPeriod() FS { return PeriodFS(icacheSpecs[c].AdaptMHz) }

// ICacheConfigs lists all four configurations in upsizing order.
func ICacheConfigs() []ICacheConfig {
	return []ICacheConfig{ICache16K1W, ICache32K2W, ICache48K3W, ICache64K4W}
}

// SyncICacheSpec describes one row of Table 3: an optimized, non-resizable
// I-cache/branch-predictor organization available to the fully synchronous
// design-space sweep.
type SyncICacheSpec struct {
	// Name is a compact label, e.g. "64k1W".
	Name string
	// SizeKB, Assoc and SubBanks follow Table 3.
	SizeKB, Assoc, SubBanks int
	// BPred is the jointly sized predictor.
	BPred BPredGeom
	// MHz is the calibrated maximum frequency of the organization.
	MHz float64
	// ALat is the access latency in cycles (optimized caches have no B
	// partition).
	ALat int
}

// syncICacheSpecs lists all 16 rows of Table 3. Frequencies are calibrated
// so that direct-mapped organizations are markedly faster than set
// associative ones at equal capacity (Section 2.2) and so the 64KB
// direct-mapped entry is 27% faster than the adaptive 64KB 4-way.
var syncICacheSpecs = []SyncICacheSpec{
	{"4k1W", 4, 1, 2, BPredGeom{12, 4096, 4096, 10, 1024, 512}, 2100, 2},
	{"8k1W", 8, 1, 4, BPredGeom{13, 8192, 8192, 10, 1024, 1024}, 1950, 2},
	{"16k1W", 16, 1, 16, BPredGeom{14, 16384, 16384, 11, 2048, 1024}, 1770, 2},
	{"32k1W", 32, 1, 32, BPredGeom{15, 32768, 32768, 12, 4096, 1024}, 1520, 2},
	{"64k1W", 64, 1, 32, BPredGeom{16, 65536, 65536, 13, 8192, 1024}, 1210, 2},
	{"4k2W", 4, 2, 8, BPredGeom{12, 4096, 4096, 10, 1024, 512}, 1800, 2},
	{"8k2W", 8, 2, 16, BPredGeom{13, 8192, 8192, 10, 1024, 1024}, 1650, 2},
	{"16k2W", 16, 2, 32, BPredGeom{14, 16384, 16384, 11, 2048, 1024}, 1500, 2},
	{"32k2W", 32, 2, 32, BPredGeom{15, 32768, 32768, 12, 4096, 1024}, 1350, 2},
	{"64k2W", 64, 2, 32, BPredGeom{16, 65536, 65536, 13, 8192, 1024}, 1100, 2},
	{"12k3W", 12, 3, 16, BPredGeom{13, 8192, 8192, 10, 1024, 1024}, 1520, 2},
	{"16k4W", 16, 4, 16, BPredGeom{14, 16384, 16384, 11, 2048, 1024}, 1400, 2},
	{"24k3W", 24, 3, 32, BPredGeom{14, 16384, 16384, 11, 2048, 1024}, 1360, 2},
	{"32k4W", 32, 4, 2, BPredGeom{15, 32768, 32768, 12, 4096, 1024}, 1230, 2},
	{"48k3W", 48, 3, 32, BPredGeom{15, 32768, 32768, 12, 4096, 1024}, 1150, 2},
	{"64k4W", 64, 4, 16, BPredGeom{16, 65536, 65536, 13, 8192, 1024}, 1050, 2},
}

// SyncICacheSpecs returns all 16 optimized front-end organizations of
// Table 3 (the fully synchronous design space sweeps every one of them).
func SyncICacheSpecs() []SyncICacheSpec {
	out := make([]SyncICacheSpec, len(syncICacheSpecs))
	copy(out, syncICacheSpecs)
	return out
}

// SyncICacheIndexByName finds a Table 3 row by its compact label.
func SyncICacheIndexByName(name string) (int, bool) {
	for i, s := range syncICacheSpecs {
		if s.Name == name {
			return i, true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Integer and floating point domains: issue queues (paper Figure 4).

// IQSize is an issue queue capacity in entries.
type IQSize int

// Issue queue capacities considered by the adaptive machine (Section 2.3).
const (
	IQ16 IQSize = 16
	IQ32 IQSize = 32
	IQ48 IQSize = 48
	IQ64 IQSize = 64
)

// IQSizes lists the four adaptive issue queue capacities in upsizing order.
func IQSizes() []IQSize { return []IQSize{IQ16, IQ32, IQ48, IQ64} }

// IQIndex returns the 0..3 upsizing index of a queue size.
func IQIndex(s IQSize) int {
	switch s {
	case IQ16:
		return 0
	case IQ32:
		return 1
	case IQ48:
		return 2
	case IQ64:
		return 3
	}
	panic(fmt.Sprintf("timing: invalid issue queue size %d", s))
}

// selectionLevels returns the number of levels of log4 selection logic for
// an n-entry queue: ceil(log4(n)). A 16-entry queue needs 2 levels; every
// larger queue up to 64 entries needs 3 (Section 2.3).
func selectionLevels(n int) int {
	levels := 0
	for span := 1; span < n; span *= 4 {
		levels++
	}
	return levels
}

// IQFreqMHz returns the maximum frequency of an n-entry issue queue, for
// any n in [16, 64]. The curve reproduces Figure 4: a cliff between 16 and
// 20 entries where the selection tree gains a third level, then a gentle
// wire-dominated decline.
func IQFreqMHz(n int) float64 {
	if n < 16 || n > 64 {
		panic(fmt.Sprintf("timing: issue queue size %d out of modeled range [16,64]", n))
	}
	// Selection delay dominates and is proportional to the number of levels;
	// wakeup adds a small per-entry wire term. Calibrated to Figure 4:
	// ~1.45 GHz at 16 entries — comfortably above the 1.21 GHz 64KB
	// direct-mapped front end that limits the best synchronous design
	// (Section 4), which is exactly the headroom the MCD integer domain
	// exploits — ~1.05 GHz at 32 entries once the third selection-logic
	// level appears, ~0.95 at 64.
	const (
		levelPS = 211.5 // per selection-logic level
		entryPS = 3.16  // per queue entry (wakeup broadcast wire)
		basePS  = 216.0 // latches and clock skew budget
	)
	ps := basePS + levelPS*float64(selectionLevels(n)) + entryPS*float64(n)
	return 1e6 / ps
}

// IQPeriod returns the issue queue clock period for one of the four
// adaptive capacities.
func IQPeriod(s IQSize) FS { return PeriodFS(IQFreqMHz(int(s))) }

// ---------------------------------------------------------------------------
// Main memory (fixed fifth domain).

// Memory timing, paper Table 5: 80ns for the first access and 2ns for each
// subsequent (pipelined) chunk of the same transfer.
const (
	// MemFirstAccess is the latency of the first chunk of a memory access.
	MemFirstAccess FS = 80 * FemtosPerNano
	// MemNextAccess is the latency of each subsequent chunk.
	MemNextAccess FS = 2 * FemtosPerNano
	// MemChunkBytes is the memory bus width per chunk.
	MemChunkBytes = 16
)

// MemLatency returns the total latency to transfer size bytes from main
// memory (first chunk at MemFirstAccess, the rest pipelined).
func MemLatency(size int) FS {
	if size <= 0 {
		return 0
	}
	chunks := (size + MemChunkBytes - 1) / MemChunkBytes
	return MemFirstAccess + FS(chunks-1)*MemNextAccess
}

// ---------------------------------------------------------------------------
// Sets-based adaptive I-cache (paper Section 7 future work).
//
// The paper observes (Section 5.1) that several applications need 64KB of
// instruction-cache *capacity* but not associativity, and the ways-based
// adaptive front end cannot offer that without the 2-way/4-way frequency
// penalty; it proposes resizing by sets instead, keeping every
// configuration direct mapped. This reproduction implements that extension
// for Program-Adaptive machines.

// SetsICacheSpec describes one direct-mapped, sets-resized front-end
// configuration: the same capacities as Table 2 but direct mapped at the
// (slightly derated) optimal direct-mapped frequencies. The resizing
// muxes cost ~3% versus the fixed optimal organizations of Table 3.
type SetsICacheSpec struct {
	// Name labels the configuration, e.g. "16k1W-sets".
	Name string
	// SizeKB is the enabled capacity; Sets the enabled set count.
	SizeKB, Sets int
	// BPred is the jointly sized predictor (shared with Table 2's size
	// class).
	BPred BPredGeom
	// MHz is the front-end frequency with this configuration.
	MHz float64
	// ALat is the access latency in cycles.
	ALat int
}

// setsICacheSpecs derates the Table 3 direct-mapped curve by ~3% for the
// resizing support (except the base size, which is the layout anchor).
var setsICacheSpecs = [NumICacheConfigs]SetsICacheSpec{
	{"16k1W-sets", 16, 256, BPredGeom{14, 16384, 16384, 11, 2048, 1024}, 1770, 2},
	{"32k1W-sets", 32, 512, BPredGeom{15, 32768, 32768, 12, 4096, 1024}, 1475, 2},
	{"48k1W-sets", 48, 768, BPredGeom{15, 32768, 32768, 12, 4096, 1024}, 1310, 2},
	{"64k1W-sets", 64, 1024, BPredGeom{16, 65536, 65536, 13, 8192, 1024}, 1175, 2},
}

// SetsICacheSpec returns the sets-resized front-end configuration for the
// same size class as the ways-based configuration c.
func (c ICacheConfig) SetsSpec() SetsICacheSpec { return setsICacheSpecs[c] }

// SetsPeriod returns the front-end clock period of the sets-resized
// configuration in c's size class.
func (c ICacheConfig) SetsPeriod() FS { return PeriodFS(setsICacheSpecs[c].MHz) }
