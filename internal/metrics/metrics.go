// Package metrics is a dependency-free instrumentation layer: atomic
// counters, gauges and fixed-bucket latency histograms with Prometheus
// text-format exposition (version 0.0.4, the format every scraper speaks).
//
// The design constraint is the simulator's hot path: nothing in this
// package takes a lock on the observation side. Counters and gauges are
// single atomic adds; a histogram observation is one atomic add into its
// bucket plus a CAS loop folding the value into the sum — lock-free and
// allocation-free, so instrumented layers (the cell pool, the HTTP
// service) pay nanoseconds per event. All locking lives on the scrape
// side, where a registry snapshot is read perhaps once per second.
//
// Metrics whose source of truth already exists as an atomic counter
// elsewhere (the pool's steal counts, the result cache's hit counts) are
// exported as *Func variants that read the authoritative value at scrape
// time — zero new cost on the owning code path, and the JSON stats
// surface and /metrics can never disagree.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Registry holds named metrics and renders them in Prometheus text
// format. The zero value is not usable; create with NewRegistry. All
// methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	names   map[string]bool
	metrics []collector
}

// collector is anything that can emit its samples into an exposition.
type collector interface {
	describe() (name, help, typ string)
	collect() []Sample
}

// A Sample is one exposition line: a metric name (possibly suffixed, for
// histogram series), an optional rendered label set and a value.
type Sample struct {
	// Suffix is appended to the metric family name ("_bucket", "_sum",
	// "_count" for histograms; "" for scalar metrics).
	Suffix string
	// Labels are the sample's label pairs in render order.
	Labels []Label
	// Value is the sample value.
	Value float64
}

// Label is one label pair.
type Label struct{ Key, Value string }

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) add(c collector) {
	name, _, _ := c.describe()
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", name))
	}
	r.names[name] = true
	r.metrics = append(r.metrics, c)
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	return validName(name) && !strings.Contains(name, ":")
}

// WriteTo renders every registered metric in Prometheus text format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	ms := append([]collector(nil), r.metrics...)
	r.mu.Unlock()

	out := &countingWriter{w: w}
	b := bufio.NewWriter(out)
	for _, m := range ms {
		name, help, typ := m.describe()
		fmt.Fprintf(b, "# HELP %s %s\n", name, escapeHelp(help))
		fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
		for _, s := range m.collect() {
			b.WriteString(name)
			b.WriteString(s.Suffix)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(l.Key)
					b.WriteString(`="`)
					b.WriteString(escapeLabel(l.Value))
					b.WriteByte('"')
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatValue(s.Value))
			b.WriteByte('\n')
		}
	}
	err := b.Flush()
	return out.n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Handler serves the registry as text/plain (the Prometheus scrape
// endpoint behind GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatValue renders a sample value the way Prometheus expects: integers
// without an exponent, +Inf spelled out.
func formatValue(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ---------------------------------------------------------------------------
// Counters.

// A Counter is a monotonically increasing value. Increment with Add/Inc
// (one atomic add); read with Value.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// NewCounter registers a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.add(c)
	return c
}

// Inc adds 1. Nil-safe, so call sites need no wiring guards.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (which must be >= 0; a counter never decreases).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) describe() (string, string, string) { return c.name, c.help, "counter" }
func (c *Counter) collect() []Sample                  { return []Sample{{Value: float64(c.v.Load())}} }

// ---------------------------------------------------------------------------
// Gauges.

// A Gauge is a value that can go up and down.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// NewGauge registers a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.add(g)
	return g
}

// Set stores v. Add adds delta (negative allowed). Both nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) describe() (string, string, string) { return g.name, g.help, "gauge" }
func (g *Gauge) collect() []Sample                  { return []Sample{{Value: float64(g.v.Load())}} }

// ---------------------------------------------------------------------------
// Func-backed metrics: exposition over counters that live elsewhere.

type funcMetric struct {
	name, help, typ string
	fn              func() []Sample
}

func (f *funcMetric) describe() (string, string, string) { return f.name, f.help, f.typ }
func (f *funcMetric) collect() []Sample                  { return f.fn() }

// NewCounterFunc registers a counter whose value is read at scrape time —
// the bridge for code paths that already keep an authoritative atomic
// counter (pool steals, cache hits): zero new cost where events happen.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.add(&funcMetric{name: name, help: help, typ: "counter",
		fn: func() []Sample { return []Sample{{Value: fn()}} }})
}

// NewGaugeFunc registers a gauge read at scrape time (queue depths,
// in-flight counts owned by the pool).
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.add(&funcMetric{name: name, help: help, typ: "gauge",
		fn: func() []Sample { return []Sample{{Value: fn()}} }})
}

// NewFunc registers a fully general collector: fn returns one sample per
// label set at scrape time (e.g. per-policy reconfiguration counts whose
// label space grows at run time). typ must be "counter" or "gauge".
func (r *Registry) NewFunc(name, help, typ string, fn func() []Sample) {
	if typ != "counter" && typ != "gauge" {
		panic(fmt.Sprintf("metrics: NewFunc type %q (want counter or gauge)", typ))
	}
	r.add(&funcMetric{name: name, help: help, typ: typ, fn: fn})
}

// ---------------------------------------------------------------------------
// Histograms.

// DefBuckets are the default latency buckets in seconds: 100µs to 2min in
// roughly-2.5x steps — wide enough for a cached run (sub-millisecond) and
// a cold paper-scale suite stage (minutes) on one scale.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// A Histogram counts observations into fixed buckets. Observe is lock-free:
// one atomic add into the bucket, one CAS fold into the running sum.
type Histogram struct {
	name, help string
	bounds     []float64 // ascending upper bounds; +Inf bucket is implicit
	counts     []atomic.Int64
	sumBits    atomic.Uint64 // float64 bits of the observation sum
	count      atomic.Int64
	labels     []Label // fixed label pairs rendered on every series
}

// NewHistogram registers a histogram with the given upper bounds
// (ascending; nil selects DefBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(name, help, bounds, nil)
	r.add(h)
	return h
}

func newHistogram(name, help string, bounds []float64, labels []Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets not ascending", name))
		}
	}
	return &Histogram{
		name: name, help: help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
		labels: labels,
	}
}

// Observe records one value (for latency histograms, seconds).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (~20) and the scan is branch-
	// predictable; a binary search saves nothing at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Snapshot returns the cumulative bucket counts (one per bound, plus the
// +Inf bucket last) as rendered in the exposition.
func (h *Histogram) Snapshot() (bounds []float64, cumulative []int64) {
	bounds = append([]float64(nil), h.bounds...)
	bounds = append(bounds, math.Inf(+1))
	cumulative = make([]int64, len(h.counts))
	var c int64
	for i := range h.counts {
		c += h.counts[i].Load()
		cumulative[i] = c
	}
	return bounds, cumulative
}

func (h *Histogram) describe() (string, string, string) { return h.name, h.help, "histogram" }

func (h *Histogram) collect() []Sample {
	bounds, cum := h.Snapshot()
	out := make([]Sample, 0, len(cum)+2)
	for i, b := range bounds {
		le := "+Inf"
		if !math.IsInf(b, +1) {
			le = strconv.FormatFloat(b, 'g', -1, 64)
		}
		labels := append(append([]Label(nil), h.labels...), Label{"le", le})
		out = append(out, Sample{Suffix: "_bucket", Labels: labels, Value: float64(cum[i])})
	}
	out = append(out,
		Sample{Suffix: "_sum", Labels: h.labels, Value: h.Sum()},
		Sample{Suffix: "_count", Labels: h.labels, Value: float64(h.Count())})
	return out
}

// ---------------------------------------------------------------------------
// Labeled vectors. One label dimension covers every consumer in this repo
// (endpoint, status code, policy); the children map is read-locked on the
// first observation per label value only — steady-state lookups are one
// RLock around a map read, and the returned child is cacheable by callers
// that want even that gone.

// A CounterVec is a counter family partitioned by one label.
type CounterVec struct {
	name, help, label string
	mu                sync.RWMutex
	children          map[string]*Counter
}

// NewCounterVec registers a counter family with one label dimension.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	if !validLabelName(label) {
		panic(fmt.Sprintf("metrics: invalid label name %q", label))
	}
	v := &CounterVec{name: name, help: help, label: label, children: make(map[string]*Counter)}
	r.add(v)
	return v
}

// With returns the child counter for the label value, creating it on first
// use.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.children[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[value]; c == nil {
		c = &Counter{name: v.name}
		v.children[value] = c
	}
	return c
}

func (v *CounterVec) describe() (string, string, string) { return v.name, v.help, "counter" }

func (v *CounterVec) collect() []Sample {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	out := make([]Sample, 0, len(keys))
	for _, k := range keys {
		v.mu.RLock()
		c := v.children[k]
		v.mu.RUnlock()
		out = append(out, Sample{Labels: []Label{{v.label, k}}, Value: float64(c.Value())})
	}
	return out
}

// A HistogramVec is a histogram family partitioned by one label.
type HistogramVec struct {
	name, help, label string
	bounds            []float64
	mu                sync.RWMutex
	children          map[string]*Histogram
}

// NewHistogramVec registers a histogram family with one label dimension
// (nil bounds selects DefBuckets).
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if !validLabelName(label) {
		panic(fmt.Sprintf("metrics: invalid label name %q", label))
	}
	v := &HistogramVec{name: name, help: help, label: label, bounds: bounds, children: make(map[string]*Histogram)}
	r.add(v)
	return v
}

// With returns the child histogram for the label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	h := v.children[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.children[value]; h == nil {
		h = newHistogram(v.name, v.help, v.bounds, []Label{{v.label, value}})
		v.children[value] = h
	}
	return h
}

func (v *HistogramVec) describe() (string, string, string) { return v.name, v.help, "histogram" }

func (v *HistogramVec) collect() []Sample {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	var out []Sample
	for _, k := range keys {
		v.mu.RLock()
		h := v.children[k]
		v.mu.RUnlock()
		out = append(out, h.collect()...)
	}
	return out
}
