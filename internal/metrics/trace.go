// The sweep tracer: span-style wall-time attribution for one request.
// Metrics answer "how is the service doing"; a trace answers "where did
// THIS sweep's 40 seconds go" — per-cell spans (record → replay/measure,
// then the sweep-level persist), nested under the stage that ran them, and
// dumpable as JSON via galsd's ?trace=1 query or -trace-dir flag.
//
// Tracing is strictly opt-in and nil-safe: every method on a nil *Tracer
// or zero Span is a no-op, so instrumented layers thread a possibly-nil
// tracer without guards and untraced requests pay a nil check per span
// site, nothing more.
package metrics

import (
	"encoding/json"
	"sync"
	"time"
)

// A Tracer collects one request's span tree. Create with NewTracer;
// concurrent Span/Child/End calls are safe (sweep cells run on many
// workers at once).
type Tracer struct {
	mu   sync.Mutex
	root *SpanData
	t0   time.Time
	now  func() time.Time // test seam; nil means time.Now
}

// SpanData is the serialized form of one span. StartUS is relative to the
// trace's start, so dumps are stable and diffable across runs.
type SpanData struct {
	Name     string      `json:"name"`
	Detail   string      `json:"detail,omitempty"`
	StartUS  int64       `json:"start_us"`
	DurUS    int64       `json:"dur_us"`
	Children []*SpanData `json:"children,omitempty"`
}

// TraceDump is the on-the-wire shape of a finished trace (the "trace"
// field of a ?trace=1 response, and the content of a -trace-dir file).
type TraceDump struct {
	Name    string    `json:"name"`
	Started time.Time `json:"started"`
	// DurUS is the root span's duration: trace creation to Finish.
	DurUS int64       `json:"dur_us"`
	Spans []*SpanData `json:"spans,omitempty"`
}

// A Span is a handle on one in-progress span. The zero Span is a no-op.
type Span struct {
	tr    *Tracer
	d     *SpanData
	start time.Time
}

// NewTracer starts a trace whose root is named name.
func NewTracer(name string) *Tracer {
	t := &Tracer{now: time.Now}
	t.t0 = t.now()
	t.root = &SpanData{Name: name}
	return t
}

// newTracerAt is the test constructor with an injected clock.
func newTracerAt(name string, now func() time.Time) *Tracer {
	t := &Tracer{now: now}
	t.t0 = t.now()
	t.root = &SpanData{Name: name}
	return t
}

// Start opens a top-level span (a direct child of the root).
func (t *Tracer) Start(name, detail string) Span {
	if t == nil {
		return Span{}
	}
	return t.child(t.root, name, detail)
}

func (t *Tracer) child(parent *SpanData, name, detail string) Span {
	now := t.now()
	d := &SpanData{Name: name, Detail: detail, StartUS: now.Sub(t.t0).Microseconds()}
	t.mu.Lock()
	parent.Children = append(parent.Children, d)
	t.mu.Unlock()
	return Span{tr: t, d: d, start: now}
}

// Child opens a sub-span of s. Safe to call from multiple goroutines on
// the same parent (concurrent cells under one stage).
func (s Span) Child(name, detail string) Span {
	if s.tr == nil {
		return Span{}
	}
	return s.tr.child(s.d, name, detail)
}

// End closes the span, recording its duration. Ending twice keeps the
// later (longer) duration; ending a zero Span is a no-op.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	dur := s.tr.now().Sub(s.start).Microseconds()
	s.tr.mu.Lock()
	s.d.DurUS = dur
	s.tr.mu.Unlock()
}

// Annotate replaces the span's detail string (e.g. marking a cache hit
// after the lookup resolved).
func (s Span) Annotate(detail string) {
	if s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	s.d.Detail = detail
	s.tr.mu.Unlock()
}

// Finish seals the trace and returns its dump. Spans still open keep
// whatever duration they last recorded (zero if never ended).
func (t *Tracer) Finish() *TraceDump {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return &TraceDump{
		Name:    t.root.Name,
		Started: t.t0,
		DurUS:   t.now().Sub(t.t0).Microseconds(),
		Spans:   t.root.Children,
	}
}

// JSON renders the finished trace as indented JSON (the -trace-dir file
// format).
func (t *Tracer) JSON() ([]byte, error) {
	return json.MarshalIndent(t.Finish(), "", "  ")
}
