package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a deterministic amount per call, so span timings in
// tests are exact.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(f.step)
	return f.t
}

func TestTraceJSONRoundTrip(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0), step: time.Millisecond}
	tr := newTracerAt("sweep", clk.now)
	stage := tr.Start("measure", "sync space")
	cell := stage.Child("cell", "64k1W/gcc")
	rec := cell.Child("record", "gcc")
	rec.End()
	sim := cell.Child("replay+measure", "")
	sim.End()
	cell.End()
	stage.End()
	persist := tr.Start("persist", "")
	persist.End()

	blob, err := tr.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var dump TraceDump
	if err := json.Unmarshal(blob, &dump); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if dump.Name != "sweep" {
		t.Errorf("name = %q", dump.Name)
	}
	if len(dump.Spans) != 2 {
		t.Fatalf("top-level spans = %d, want 2", len(dump.Spans))
	}
	m := dump.Spans[0]
	if m.Name != "measure" || m.Detail != "sync space" {
		t.Errorf("stage span = %+v", m)
	}
	if len(m.Children) != 1 || m.Children[0].Name != "cell" {
		t.Fatalf("cell children = %+v", m.Children)
	}
	cellD := m.Children[0]
	if len(cellD.Children) != 2 || cellD.Children[0].Name != "record" || cellD.Children[1].Name != "replay+measure" {
		t.Fatalf("cell sub-spans = %+v", cellD.Children)
	}
	// With a 1ms-per-observation clock, every span's recorded duration is
	// the number of clock reads between its start and end, exactly.
	if cellD.Children[0].DurUS != 1000 {
		t.Errorf("record span dur = %dus, want 1000", cellD.Children[0].DurUS)
	}
	// The cell span covers both sub-spans plus their bookkeeping reads.
	if cellD.DurUS <= cellD.Children[0].DurUS {
		t.Errorf("cell (%dus) should outlast its record child (%dus)", cellD.DurUS, cellD.Children[0].DurUS)
	}
	// Children start at or after their parent.
	if cellD.Children[0].StartUS < cellD.StartUS || m.Children[0].StartUS < m.StartUS {
		t.Error("child starts before parent")
	}
	// Serialize again: byte-stable output for identical data.
	blob2, _ := json.MarshalIndent(&dump, "", "  ")
	var dump2 TraceDump
	if err := json.Unmarshal(blob2, &dump2); err != nil {
		t.Fatalf("second round trip: %v", err)
	}
	if len(dump2.Spans) != len(dump.Spans) {
		t.Error("span count changed across round trips")
	}
}

// TestTraceConcurrentChildren attaches children to one parent from many
// goroutines — the sweep shape, where cells of one stage finish on
// different workers. Run under -race.
func TestTraceConcurrentChildren(t *testing.T) {
	tr := NewTracer("sweep")
	stage := tr.Start("measure", "")
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := stage.Child("cell", "")
			sub := c.Child("replay+measure", "")
			sub.End()
			c.End()
		}()
	}
	wg.Wait()
	stage.End()
	dump := tr.Finish()
	if len(dump.Spans) != 1 || len(dump.Spans[0].Children) != n {
		t.Fatalf("got %d cells, want %d", len(dump.Spans[0].Children), n)
	}
	for _, c := range dump.Spans[0].Children {
		if len(c.Children) != 1 {
			t.Fatalf("cell missing sub-span: %+v", c)
		}
	}
}

// TestNilTracerNoops: every call site threads a possibly-nil tracer; the
// whole surface must be safe on nil.
func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x", "y")
	c := s.Child("z", "")
	c.Annotate("detail")
	c.End()
	s.End()
	if tr.Finish() != nil {
		t.Error("nil tracer Finish should be nil")
	}
}
