// Prometheus text-format parsing: the read side of the exposition. It
// exists so the repo can close its own loop — the exposition tests parse
// every line the registry writes, the service's stats-consistency test
// cross-checks /metrics against /v1/stats, and cmd/galsload reads its
// latency percentiles back out of the scraped histograms — without an
// external client library.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParsedSample is one non-comment exposition line.
type ParsedSample struct {
	// Name is the full sample name (histogram series keep their
	// _bucket/_sum/_count suffix).
	Name string
	// Labels are the sample's label pairs ("" keys impossible; empty map
	// for unlabeled samples).
	Labels map[string]string
	// Value is the parsed value (+Inf allowed).
	Value float64
}

// Label returns the sample's value for the label key ("" when absent).
func (s ParsedSample) Label(key string) string { return s.Labels[key] }

// Scrape is a parsed exposition: samples in document order plus the
// families' declared types.
type Scrape struct {
	Samples []ParsedSample
	// Types maps family name -> declared TYPE ("counter", "gauge",
	// "histogram", "untyped").
	Types map[string]string
}

// Value returns the first sample matching name and every given label pair,
// and whether one was found.
func (sc *Scrape) Value(name string, labels ...Label) (float64, bool) {
	for _, s := range sc.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for _, l := range labels {
			if s.Labels[l.Key] != l.Value {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// Buckets extracts a histogram's cumulative buckets for the series
// matching the given label pairs (matched in addition to "le"), sorted by
// ascending bound.
func (sc *Scrape) Buckets(family string, labels ...Label) []Bucket {
	var out []Bucket
	for _, s := range sc.Samples {
		if s.Name != family+"_bucket" {
			continue
		}
		ok := true
		for _, l := range labels {
			if s.Labels[l.Key] != l.Value {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		le := s.Labels["le"]
		var bound float64
		if le == "+Inf" {
			bound = math.Inf(+1)
		} else {
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			bound = b
		}
		out = append(out, Bucket{UpperBound: bound, CumulativeCount: s.Value})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UpperBound < out[j].UpperBound })
	return out
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	UpperBound      float64
	CumulativeCount float64
}

// Quantile estimates the q-quantile (0 <= q <= 1) from cumulative buckets
// by linear interpolation within the bucket containing the target rank —
// the same estimate Prometheus's histogram_quantile produces. It returns
// NaN when the buckets are empty or malformed.
func Quantile(q float64, buckets []Bucket) float64 {
	if len(buckets) < 2 || q < 0 || q > 1 {
		return math.NaN()
	}
	total := buckets[len(buckets)-1].CumulativeCount
	if total == 0 {
		return math.NaN()
	}
	rank := q * total
	for i, b := range buckets {
		if b.CumulativeCount >= rank {
			if math.IsInf(b.UpperBound, +1) {
				// The target falls in the overflow bucket: the best bounded
				// estimate is the highest finite bound.
				return buckets[len(buckets)-2].UpperBound
			}
			lo, clo := 0.0, 0.0
			if i > 0 {
				lo, clo = buckets[i-1].UpperBound, buckets[i-1].CumulativeCount
			}
			if b.CumulativeCount == clo {
				return b.UpperBound
			}
			return lo + (b.UpperBound-lo)*(rank-clo)/(b.CumulativeCount-clo)
		}
	}
	return buckets[len(buckets)-1].UpperBound
}

// Parse reads a Prometheus text-format exposition, validating the line
// grammar as it goes: HELP/TYPE comments, sample lines with optional label
// sets, numeric values. Unknown comment lines error (the format has only
// HELP and TYPE); blank lines are allowed.
func Parse(r io.Reader) (*Scrape, error) {
	sc := &Scrape{Types: make(map[string]string)}
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for scan.Scan() {
		lineNo++
		line := scan.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := sc.parseComment(line); err != nil {
				return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		sc.Samples = append(sc.Samples, s)
	}
	if err := scan.Err(); err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return sc, nil
}

func (sc *Scrape) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch fields[1] {
	case "HELP":
		if !validName(fields[2]) {
			return fmt.Errorf("HELP for invalid metric name %q", fields[2])
		}
		return nil
	case "TYPE":
		if !validName(fields[2]) {
			return fmt.Errorf("TYPE for invalid metric name %q", fields[2])
		}
		if len(fields) != 4 {
			return fmt.Errorf("TYPE line %q missing type", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q", fields[3])
		}
		if _, dup := sc.Types[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %q", fields[2])
		}
		sc.Types[fields[2]] = fields[3]
		return nil
	default:
		return fmt.Errorf("unknown comment %q", line)
	}
}

func parseSample(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	if rest[i] == '{' {
		rest = rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return s, fmt.Errorf("malformed label set in %q", line)
			}
			key := strings.TrimSpace(rest[:eq])
			if !validLabelName(key) {
				return s, fmt.Errorf("invalid label name %q", key)
			}
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				return s, fmt.Errorf("unquoted label value in %q", line)
			}
			rest = rest[1:]
			var val strings.Builder
			for {
				if rest == "" {
					return s, fmt.Errorf("unterminated label value in %q", line)
				}
				c := rest[0]
				rest = rest[1:]
				if c == '\\' {
					if rest == "" {
						return s, fmt.Errorf("dangling escape in %q", line)
					}
					switch rest[0] {
					case 'n':
						val.WriteByte('\n')
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					default:
						return s, fmt.Errorf("bad escape \\%c in %q", rest[0], line)
					}
					rest = rest[1:]
					continue
				}
				if c == '"' {
					break
				}
				val.WriteByte(c)
			}
			if _, dup := s.Labels[key]; dup {
				return s, fmt.Errorf("duplicate label %q in %q", key, line)
			}
			s.Labels[key] = val.String()
			rest = strings.TrimLeft(rest, " ")
			rest = strings.TrimPrefix(rest, ",")
		}
	} else {
		rest = rest[i:]
	}
	rest = strings.TrimSpace(rest)
	// An optional timestamp may follow the value; the registry never emits
	// one, but accept it to stay a real parser of the format.
	valueField := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		valueField = rest[:sp]
		if _, err := strconv.ParseInt(strings.TrimSpace(rest[sp+1:]), 10, 64); err != nil {
			return s, fmt.Errorf("malformed timestamp in %q", line)
		}
	}
	v, err := parseFloat(valueField)
	if err != nil {
		return s, fmt.Errorf("malformed value %q in %q", valueField, line)
	}
	s.Value = v
	return s, nil
}

func parseFloat(f string) (float64, error) {
	switch f {
	case "+Inf", "Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(f, 64)
}
