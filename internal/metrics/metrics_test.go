package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestExpositionParses is the format-validity gate: a registry exercising
// every metric type must render an exposition our own strict parser
// accepts line by line, with matching TYPE declarations.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "operations so far")
	c.Add(3)
	g := r.NewGauge("test_depth", "current queue depth")
	g.Set(-2)
	r.NewCounterFunc("test_func_total", "func-backed counter", func() float64 { return 7 })
	r.NewGaugeFunc("test_func_gauge", "func-backed gauge", func() float64 { return 1.5 })
	r.NewFunc("test_labeled_total", "per-policy counts", "counter", func() []Sample {
		return []Sample{
			{Labels: []Label{{"policy", "paper"}}, Value: 4},
			{Labels: []Label{{"policy", `we"ird\pol`}}, Value: 1},
		}
	})
	h := r.NewHistogram("test_latency_seconds", "request latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.5)
	h.Observe(50)
	cv := r.NewCounterVec("test_status_total", "responses by code", "code")
	cv.With("200").Add(9)
	cv.With("503").Inc()
	hv := r.NewHistogramVec("test_endpoint_seconds", "latency by endpoint", "endpoint", []float64{0.1, 1})
	hv.With("/v1/run").Observe(0.05)
	hv.With("/v1/sweep").Observe(2)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	text := b.String()
	sc, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}

	wantTypes := map[string]string{
		"test_ops_total":        "counter",
		"test_depth":            "gauge",
		"test_func_total":       "counter",
		"test_func_gauge":       "gauge",
		"test_labeled_total":    "counter",
		"test_latency_seconds":  "histogram",
		"test_status_total":     "counter",
		"test_endpoint_seconds": "histogram",
	}
	for name, typ := range wantTypes {
		if got := sc.Types[name]; got != typ {
			t.Errorf("TYPE %s = %q, want %q", name, got, typ)
		}
	}
	if v, ok := sc.Value("test_ops_total"); !ok || v != 3 {
		t.Errorf("test_ops_total = %v, %v", v, ok)
	}
	if v, ok := sc.Value("test_depth"); !ok || v != -2 {
		t.Errorf("test_depth = %v, %v", v, ok)
	}
	if v, ok := sc.Value("test_labeled_total", Label{"policy", `we"ird\pol`}); !ok || v != 1 {
		t.Errorf("escaped label roundtrip = %v, %v", v, ok)
	}
	if v, ok := sc.Value("test_status_total", Label{"code", "503"}); !ok || v != 1 {
		t.Errorf("test_status_total{code=503} = %v, %v", v, ok)
	}
	if v, ok := sc.Value("test_endpoint_seconds_count", Label{"endpoint", "/v1/sweep"}); !ok || v != 1 {
		t.Errorf("endpoint histogram count = %v, %v", v, ok)
	}
}

// TestHistogramBuckets pins the cumulative-bucket semantics: each bucket
// counts observations <= its bound, the +Inf bucket equals _count, and
// _sum is the exact observation sum.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h_seconds", "test", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 3.0, 10.0} {
		h.Observe(v)
	}
	bounds, cum := h.Snapshot()
	wantBounds := []float64{1, 2, 5, math.Inf(+1)}
	wantCum := []int64{2, 4, 5, 6} // <=1: {0.5,1.0}; <=2: +{1.5,2.0}; <=5: +{3.0}; +Inf: +{10}
	for i := range wantBounds {
		if bounds[i] != wantBounds[i] || cum[i] != wantCum[i] {
			t.Fatalf("bucket %d: (%v, %d), want (%v, %d)", i, bounds[i], cum[i], wantBounds[i], wantCum[i])
		}
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 18.0; got != want {
		t.Errorf("Sum = %v, want %v", got, want)
	}

	// The same numbers must survive the text round trip.
	var b strings.Builder
	r.WriteTo(&b)
	sc, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	bk := sc.Buckets("h_seconds")
	if len(bk) != 4 || bk[3].CumulativeCount != 6 || bk[1].CumulativeCount != 4 {
		t.Fatalf("parsed buckets = %+v", bk)
	}
	if v, ok := sc.Value("h_seconds_sum"); !ok || v != 18 {
		t.Errorf("parsed sum = %v, %v", v, ok)
	}
}

// TestQuantile pins the interpolation against hand-computed values.
func TestQuantile(t *testing.T) {
	buckets := []Bucket{
		{UpperBound: 1, CumulativeCount: 10},
		{UpperBound: 2, CumulativeCount: 30},
		{UpperBound: 4, CumulativeCount: 40},
		{UpperBound: math.Inf(+1), CumulativeCount: 40},
	}
	cases := []struct{ q, want float64 }{
		{0.25, 1}, // rank 10 is exactly the first bound
		{0.5, 1.5},
		{0.75, 2},
		{1.0, 4},
	}
	for _, c := range cases {
		if got := Quantile(c.q, buckets); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Overflow bucket holds the target: clamp to the highest finite bound.
	buckets[3].CumulativeCount = 100
	if got := Quantile(0.99, buckets); got != 4 {
		t.Errorf("overflow quantile = %v, want 4", got)
	}
	if !math.IsNaN(Quantile(0.5, nil)) {
		t.Error("empty buckets should be NaN")
	}
}

// TestConcurrentObserve hammers one histogram, one counter, one vec and
// one gauge from many goroutines while a scraper renders in a loop; run
// under -race this is the lock-free-soundness gate, and the final counts
// must be exact (no lost updates).
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("c_seconds", "t", []float64{0.001, 1})
	c := r.NewCounter("c_total", "t")
	cv := r.NewCounterVec("c_by_code", "t", "code")
	g := r.NewGauge("c_gauge", "t")

	const workers, per = 8, 5000
	var writers, scraper sync.WaitGroup
	stop := make(chan struct{})
	scraper.Add(1)
	go func() { // concurrent scraper: every mid-flight render must parse
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				r.WriteTo(&b)
				if _, err := Parse(strings.NewReader(b.String())); err != nil {
					t.Errorf("mid-flight exposition invalid: %v", err)
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			code := "200"
			if w%2 == 1 {
				code = "503"
			}
			child := cv.With(code)
			for i := 0; i < per; i++ {
				h.Observe(float64(i%3) * 0.75)
				c.Inc()
				child.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	scraper.Wait()

	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := cv.With("200").Value() + cv.With("503").Value(); got != workers*per {
		t.Errorf("vec total = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	_, cum := h.Snapshot()
	if cum[len(cum)-1] != int64(workers*per) {
		t.Errorf("+Inf bucket = %d, want %d", cum[len(cum)-1], workers*per)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "t")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewGauge("dup_total", "t")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid name did not panic")
		}
	}()
	r.NewCounter("bad-name", "t")
}

func TestParseRejectsGarbage(t *testing.T) {
	bad := []string{
		"# BOGUS foo bar",
		"# TYPE foo flute",
		`metric{label=unquoted} 1`,
		`metric{l="open 1`,
		"metric one",
		"0leading 1",
	}
	for _, line := range bad {
		if _, err := Parse(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("Parse accepted %q", line)
		}
	}
	good := "m_total{a=\"b\",c=\"d\"} 1 1700000000000\nplain 2.5\ninf_val +Inf\n"
	if _, err := Parse(strings.NewReader(good)); err != nil {
		t.Errorf("Parse rejected valid input: %v", err)
	}
}
