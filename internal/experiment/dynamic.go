// Dynamic experiments: the headline performance comparison (Figure 6), the
// Program-Adaptive configuration distribution (Table 9), and the
// reconfiguration traces (Figure 7). These run the simulator through the
// design-space sweeps of paper Section 4.
package experiment

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gals/internal/core"
	"gals/internal/resultcache"
	"gals/internal/sweep"
	"gals/internal/timing"
	"gals/internal/workload"
)

// SuiteResult holds everything the Figure 6 / Table 9 pipeline produces:
// the best fully synchronous machine, the per-application Program-Adaptive
// selections, and the Phase-Adaptive runs.
type SuiteResult struct {
	// Specs are the benchmark runs, in Figure 6 order.
	Specs []workload.Spec
	// BestSync is the best-overall fully synchronous configuration.
	BestSync core.Config
	// SyncTimes are each benchmark's run times on BestSync.
	SyncTimes []timing.FS
	// ProgConfigs and ProgTimes are the per-application best adaptive
	// configurations and their run times (Program-Adaptive).
	ProgConfigs []core.Config
	ProgTimes   []timing.FS
	// PhaseResults are the Phase-Adaptive runs (controllers on).
	PhaseResults []*core.Result
	// MeanProg and MeanPhase are the suite-mean percent improvements.
	MeanProg, MeanPhase float64
}

// ProgImprovement returns benchmark i's Program-Adaptive improvement in
// percent over the best synchronous machine.
func (r *SuiteResult) ProgImprovement(i int) float64 {
	return sweep.Improvement(r.SyncTimes[i], r.ProgTimes[i])
}

// PhaseImprovement returns benchmark i's Phase-Adaptive improvement.
func (r *SuiteResult) PhaseImprovement(i int) float64 {
	return sweep.Improvement(r.SyncTimes[i], r.PhaseResults[i].TimeFS)
}

var (
	suiteMu       sync.Mutex
	suiteCache    = map[Options]*SuiteResult{}
	suitePersist  resultcache.Store
	suiteComputes atomic.Int64
)

// SetSuitePersist installs a second-level store behind the process-local
// suite memo: on a memo miss RunSuite consults it before simulating, and
// every computed suite is written back. Keys derive from the normalized
// Options plus resultcache.SchemaVersion, so repeated invocations of
// cmd/experiments (or any EvaluateSuite caller) become incremental across
// processes. Pass nil to detach. It returns the previously installed
// store so temporary owners (a service's lifetime, a test) can restore it
// rather than clobber it. A persistent hit does not count as a suite
// computation.
func SetSuitePersist(s resultcache.Store) (prev resultcache.Store) {
	suiteMu.Lock()
	defer suiteMu.Unlock()
	prev = suitePersist
	suitePersist = s
	return prev
}

// ResetSuiteMemo drops the process-local suite memo (the persistent store,
// if any, is untouched). Intended for tests and cache administration: after
// a reset, the next RunSuite must come from the persistent layer or be
// recomputed.
func ResetSuiteMemo() {
	suiteMu.Lock()
	defer suiteMu.Unlock()
	suiteCache = map[Options]*SuiteResult{}
}

// memoKey normalizes an Options value into the suite-cache key: defaulted
// fields are resolved (so Window 0 and the explicit default window share
// one entry) and result-neutral fields (Workers) are dropped. Seed and
// PLLScale resolve through sweep.Options.WithDefaults — the same defaulting
// the runs themselves get — so the key can never alias two option sets that
// compute different results. Window resolves to the experiment default
// (sweep's shorter default window never applies in the suite pipeline).
func (o Options) memoKey() Options {
	if o.Window <= 0 {
		o.Window = DefaultOptions().Window
	}
	so := o.sweepOptions().WithDefaults()
	o.Seed = so.Seed
	o.PLLScale = so.PLLScale
	o.Workers = 0 // parallelism does not change results
	o.Exec = nil  // nor does the pool the cells run on
	o.Priority = 0
	o.Ctx = nil           // nor does the deadline the caller ran under
	o.CheckpointEvery = 0 // nor does crash-safety cadence
	return o
}

// SuiteComputations reports how many times the full evaluation pipeline has
// actually been executed (as opposed to served from the memo). Tests and
// benchmarks use it to verify that figure6/table9/figure7 share one sweep.
func SuiteComputations() int64 { return suiteComputes.Load() }

// RunSuite executes the full evaluation pipeline (memoized per normalized
// Options within the process: Figure 6, Table 9, Figure 7 and callers like
// the benchmark harness share one best-synchronous sweep and one set of
// Program-Adaptive searches).
func RunSuite(o Options) (*SuiteResult, error) {
	workers, exec, pri, ctx, ckpt := o.Workers, o.Exec, o.Priority, o.Ctx, o.CheckpointEvery
	o = o.memoKey()
	suiteMu.Lock()
	defer suiteMu.Unlock()
	if r, ok := suiteCache[o]; ok {
		return r, nil
	}
	key := resultcache.Key("suite", o)
	if suitePersist != nil {
		var cached SuiteResult
		if suitePersist.Load(key, &cached) {
			suiteCache[o] = &cached
			return &cached, nil
		}
	}
	suiteComputes.Add(1)
	specs := workload.Suite()
	so := o.sweepOptions()
	so.Workers, so.Exec, so.Priority, so.Ctx = workers, exec, pri, ctx
	so.CheckpointEvery = ckpt
	// One recorded-trace pool shared by the synchronous sweep, the adaptive
	// sweep and the Phase-Adaptive runs; scoped to this computation so
	// in-memory slabs (~megabytes per benchmark) are released once
	// memoized. With a recording store installed (gals.UsePersistentCache,
	// the service), the slabs are mmap'd files instead of heap, and
	// retiring the pool on the way out returns its slab references so a
	// multi-window run sequence cannot accumulate mappings.
	so.Traces = sweep.NewRecordingPool(o.Window)
	defer so.Traces.Retire()

	syncCfgs := sweep.SyncSpace()
	if !o.FullSyncSpace {
		syncCfgs = sweep.QuickSyncSpace()
	}
	// Streaming summaries instead of full matrices: the pipeline only needs
	// the winners, so memory stays O(configs + benchmarks) at any window.
	syncSum, err := sweep.MeasureSummary(specs, syncCfgs, so)
	if err != nil {
		return nil, err
	}
	if syncSum.Best < 0 {
		return nil, fmt.Errorf("experiment: synchronous sweep produced no finite run times")
	}

	adCfgs := sweep.AdaptiveSpace()
	adSum, err := sweep.MeasureSummary(specs, adCfgs, so)
	if err != nil {
		return nil, err
	}

	phase, err := sweep.MeasurePhase(specs, so)
	if err != nil {
		return nil, err
	}

	r := &SuiteResult{
		Specs:        specs,
		BestSync:     syncCfgs[syncSum.Best],
		SyncTimes:    syncSum.BestTimes,
		PhaseResults: phase,
	}
	for si := range specs {
		r.ProgConfigs = append(r.ProgConfigs, adCfgs[adSum.PerApp[si]])
		r.ProgTimes = append(r.ProgTimes, adSum.PerAppTimes[si])
	}
	for i := range specs {
		r.MeanProg += r.ProgImprovement(i)
		r.MeanPhase += r.PhaseImprovement(i)
	}
	r.MeanProg /= float64(len(specs))
	r.MeanPhase /= float64(len(specs))
	suiteCache[o] = r
	if suitePersist != nil {
		suitePersist.Store(key, r)
	}
	return r, nil
}

// cachedSuite returns the memoized suite for o, or nil without computing
// anything.
func cachedSuite(o Options) *SuiteResult {
	suiteMu.Lock()
	defer suiteMu.Unlock()
	return suiteCache[o.memoKey()]
}

// Figure6 regenerates paper Figure 6: per-application percent run-time
// improvement of Program-Adaptive and Phase-Adaptive over the best fully
// synchronous design.
func Figure6(o Options) (*Table, error) {
	r, err := RunSuite(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "figure6",
		Title:  "Performance improvement of Program- and Phase-Adaptive MCD over fully synchronous",
		Header: []string{"benchmark", "program-adaptive %", "phase-adaptive %", "program config"},
	}
	for i, s := range r.Specs {
		t.AddRow(s.Name,
			fmt.Sprintf("%+.1f", r.ProgImprovement(i)),
			fmt.Sprintf("%+.1f", r.PhaseImprovement(i)),
			r.ProgConfigs[i].Label())
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("best synchronous: %s (global clock %.2f GHz)",
			r.BestSync.Label(), timing.FreqMHz(r.BestSync.GlobalPeriod())/1000),
		fmt.Sprintf("mean improvement: program-adaptive %+.1f%%, phase-adaptive %+.1f%% (paper: +17.6%% / +20.4%%)",
			r.MeanProg, r.MeanPhase),
	)
	return t, nil
}

// Table9 regenerates paper Table 9: the distribution of Program-Adaptive
// configuration choices across the suite, per structure.
func Table9(o Options) (*Table, error) {
	r, err := RunSuite(o)
	if err != nil {
		return nil, err
	}
	n := float64(len(r.Specs))
	var iq, fq [4]int
	var dc [timing.NumDCacheConfigs]int
	var ic [timing.NumICacheConfigs]int
	for _, cfg := range r.ProgConfigs {
		iq[timing.IQIndex(cfg.IntIQ)]++
		fq[timing.IQIndex(cfg.FPIQ)]++
		dc[cfg.DCache]++
		ic[cfg.ICache]++
	}
	t := &Table{
		ID:     "table9",
		Title:  "Distribution of adaptive architecture choices for Program-Adaptive",
		Header: []string{"structure", "config 0", "config 1", "config 2", "config 3"},
	}
	pct := func(c int) string { return fmt.Sprintf("%.0f%%", 100*float64(c)/n) }
	t.AddRow("Integer IQ (16/32/48/64)", pct(iq[0]), pct(iq[1]), pct(iq[2]), pct(iq[3]))
	t.AddRow("FP IQ (16/32/48/64)", pct(fq[0]), pct(fq[1]), pct(fq[2]), pct(fq[3]))
	t.AddRow("D-cache (32k1W/64k2W/128k4W/256k8W)", pct(dc[0]), pct(dc[1]), pct(dc[2]), pct(dc[3]))
	t.AddRow("I-cache (16k1W/32k2W/48k3W/64k4W)", pct(ic[0]), pct(ic[1]), pct(ic[2]), pct(ic[3]))
	t.Notes = append(t.Notes,
		"paper: IQ 85/5/5/5, FP IQ 73/15/8/5, D 50/18/23/10, I 55/18/8/20 (percent)")
	return t, nil
}

// Figure7 regenerates paper Figure 7: sample reconfiguration traces for
// the Phase-Adaptive machine — apsi's D/L2 pair and art's integer issue
// queue, both of which cycle with the applications' phases. When the suite
// pipeline has already run for these Options (e.g. after figure6/table9),
// its Phase-Adaptive results are reused verbatim — reconfiguration events
// are always recorded there — so no simulation runs at all; otherwise only
// the two sampled benchmarks run, replaying the shared trace pool.
func Figure7(o Options) (*Table, error) {
	o = o.memoKey()
	t := &Table{
		ID:     "figure7",
		Title:  "Sample reconfiguration traces (Phase-Adaptive)",
		Header: []string{"benchmark", "structure", "instr (K)", "new configuration"},
	}
	traces := []struct {
		bench string
		kind  string
	}{
		{"apsi", "dcache"},
		{"art", "int-iq"},
	}
	suite := cachedSuite(o)
	for _, tr := range traces {
		spec, ok := workload.ByName(tr.bench)
		if !ok {
			return nil, fmt.Errorf("experiment: missing benchmark %q", tr.bench)
		}
		var res *core.Result
		if suite != nil {
			for i := range suite.Specs {
				if suite.Specs[i].Name == tr.bench {
					res = suite.PhaseResults[i]
					break
				}
			}
		}
		if res == nil {
			cfg := core.DefaultAdaptive(core.PhaseAdaptive)
			cfg.Seed = o.Seed
			cfg.PLLScale = o.PLLScale
			cfg.JitterFrac = o.JitterFrac
			cfg.Policy = o.Policy
			cfg.PolicyParams = o.PolicyParams
			cfg.RecordTrace = true
			res = core.RunWorkload(spec, cfg, o.Window)
		}
		events := 0
		for _, e := range res.Stats.ReconfigEvents {
			if e.Kind != tr.kind {
				continue
			}
			t.AddRow(tr.bench, e.Kind, fmt.Sprintf("%.1f", float64(e.Instr)/1000), e.Config)
			events++
		}
		if events == 0 {
			t.AddRow(tr.bench, tr.kind, "-", "no reconfigurations in window")
		}
	}
	t.Notes = append(t.Notes,
		"paper Figure 7(a): apsi's D/L2 pair oscillates 32k1W <-> 128k4W with its working-set phases",
		"paper Figure 7(b): art's integer queue cycles through its sizes with its ILP phases")
	return t, nil
}

// PolicyCompare quantifies what adaptation itself buys (the comparison the
// paper's Table 9 discussion implies): every benchmark runs the
// Phase-Adaptive machine under the "frozen" policy — never reconfiguring,
// so the run carries the multiple-clock-domain overhead and nothing else —
// and under the selected adaptation policy (Options.Policy, default the
// paper controllers). The improvement column is adaptation's net benefit on
// top of the MCD overhead both runs share.
func PolicyCompare(o Options) (*Table, error) {
	workers, exec, pri, ctx, ckpt := o.Workers, o.Exec, o.Priority, o.Ctx, o.CheckpointEvery
	o = o.memoKey()
	so := o.sweepOptions()
	so.Workers, so.Exec, so.Priority, so.Ctx = workers, exec, pri, ctx
	so.CheckpointEvery = ckpt
	// One recorded-trace pool for both policy runs of every benchmark,
	// retired (slab references returned) when the comparison is done.
	so.Traces = sweep.NewRecordingPool(o.Window)
	defer so.Traces.Retire()
	specs := workload.Suite()

	polName := o.Policy
	if polName == "" {
		polName = "paper"
	}
	frozenOpts := so
	frozenOpts.Policy, frozenOpts.PolicyParams = "frozen", ""
	frozen, err := sweep.MeasurePhase(specs, frozenOpts)
	if err != nil {
		return nil, err
	}
	adapted, err := sweep.MeasurePhase(specs, so)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "policies",
		Title: fmt.Sprintf("Adaptation benefit over the frozen MCD baseline (policy %q)", polName),
		Header: []string{"benchmark", "t_frozen(us)", "t_" + polName + "(us)",
			"improvement %", "reconfigs"},
	}
	var mean float64
	for i, spec := range specs {
		imp := sweep.Improvement(frozen[i].TimeFS, adapted[i].TimeFS)
		mean += imp
		t.AddRow(spec.Name,
			fmt.Sprintf("%.2f", float64(frozen[i].TimeFS)/1e9),
			fmt.Sprintf("%.2f", float64(adapted[i].TimeFS)/1e9),
			fmt.Sprintf("%+.1f", imp),
			fmt.Sprint(adapted[i].Stats.Reconfigs))
	}
	mean /= float64(len(specs))
	t.Notes = append(t.Notes,
		"frozen = Phase-Adaptive machine that never reconfigures: pure multiple-clock-domain overhead, no adaptation",
		fmt.Sprintf("mean improvement of %q over frozen: %+.1f%%", polName, mean),
	)
	return t, nil
}
