// The "controllers" experiment: the adaptation-policy families
// head-to-head. Where "policies" asks what one policy buys over the frozen
// baseline, this experiment lines up the paper's open-loop interval
// controllers, the closed-loop feedback controller and the learned
// predictor on every benchmark — all four sharing one recorded trace per
// benchmark and the frozen run as the common MCD-overhead baseline — and
// then crosses the policy axis against initial structure sizes
// (sweep.CrossPhaseSpace) to report how sensitive each family is to where
// adaptation starts.
package experiment

import (
	"fmt"
	"math"

	"gals/internal/control"
	"gals/internal/core"
	"gals/internal/learn"
	"gals/internal/sweep"
	"gals/internal/timing"
	"gals/internal/workload"
)

// controllerSettings are the compared policy families, frozen baseline
// first. The learned entry's blob is filled per invocation.
func controllerSettings(blob string) []sweep.PolicySetting {
	return []sweep.PolicySetting{
		{Name: "frozen"},
		{Name: "paper"},
		{Name: "feedback"},
		{Name: "learned", Blob: blob},
	}
}

// learnedArtifact resolves the weights artifact for the experiment's
// options: an explicitly provided blob wins (supplied=true); otherwise the
// training pipeline's sidecar for this window/seed (trained at most once
// per cache directory, via the sweep layer's persistent store when one is
// installed).
func learnedArtifact(o Options) (blob string, supplied bool, err error) {
	if o.PolicyBlob != "" {
		return o.PolicyBlob, true, nil
	}
	blob, err = learn.Artifact(sweep.PersistStore(), learn.TrainOptions{
		Window:     o.Window,
		Seed:       o.Seed,
		PLLScale:   o.PLLScale,
		JitterFrac: o.JitterFrac,
	})
	return blob, false, err
}

// Controllers regenerates the adaptation-benefit comparison: per benchmark,
// the percent run-time improvement of the paper, feedback and learned
// policies over the frozen MCD baseline, with per-policy reconfiguration
// totals and a start-sensitivity note from the policy x initial-size
// product space.
func Controllers(o Options) (*Table, error) {
	workers, exec, pri, ctx := o.Workers, o.Exec, o.Priority, o.Ctx
	o = o.memoKey()
	so := o.sweepOptions()
	so.Workers, so.Exec, so.Priority, so.Ctx = workers, exec, pri, ctx
	// One recorded-trace pool for every run of every policy family; retired
	// (slab references returned) once the experiment's cells finish.
	so.Traces = sweep.NewRecordingPool(o.Window)
	defer so.Traces.Retire()
	specs := workload.Suite()

	blob, supplied, err := learnedArtifact(o)
	if err != nil {
		return nil, err
	}
	settings := controllerSettings(blob)

	// Per-benchmark runs of each family from the common base configuration.
	runs := make([][]*core.Result, len(settings))
	for i, ps := range settings {
		pso := so
		pso.Policy, pso.PolicyParams, pso.PolicyBlob = ps.Name, ps.Params, ps.Blob
		rs, err := sweep.MeasurePhase(specs, pso)
		if err != nil {
			return nil, err
		}
		runs[i] = rs
	}
	frozen := runs[0]

	t := &Table{
		ID:    "controllers",
		Title: "Adaptation benefit of the controller families over the frozen MCD baseline",
		Header: []string{"benchmark", "t_frozen(us)",
			"paper %", "feedback %", "learned %"},
	}
	means := make([]float64, len(settings))
	reconfigs := make([]int64, len(settings))
	for si, spec := range specs {
		row := []any{spec.Name, fmt.Sprintf("%.2f", float64(frozen[si].TimeFS)/1e9)}
		for pi := 1; pi < len(settings); pi++ {
			imp := sweep.Improvement(frozen[si].TimeFS, runs[pi][si].TimeFS)
			means[pi] += imp
			row = append(row, fmt.Sprintf("%+.1f", imp))
		}
		for pi := range settings {
			reconfigs[pi] += runs[pi][si].Stats.Reconfigs
		}
		t.AddRow(row...)
	}
	n := float64(len(specs))
	t.Notes = append(t.Notes,
		"frozen = Phase-Adaptive machine that never reconfigures: pure multiple-clock-domain overhead, no adaptation",
		fmt.Sprintf("mean improvement over frozen: paper %+.1f%%, feedback %+.1f%%, learned %+.1f%%",
			means[1]/n, means[2]/n, means[3]/n),
		fmt.Sprintf("total reconfigurations: paper %d, feedback %d, learned %d",
			reconfigs[1], reconfigs[2], reconfigs[3]),
		learnedProvenance(blob, supplied, o),
	)

	// Start sensitivity: cross the policy axis against the largest/slowest
	// initial configuration (the policy x config product space) and compare
	// each family's geomean against its smallest-start geomean — which the
	// per-benchmark runs above already measured, so only the large-start
	// half of the product simulates.
	large := core.DefaultAdaptive(core.PhaseAdaptive)
	large.ICache = timing.ICache64K4W
	large.DCache = timing.DCache256K8W
	large.IntIQ, large.FPIQ = timing.IQ64, timing.IQ64
	cross := sweep.CrossPhaseSpace(settings, []core.Config{large})
	sum, err := sweep.MeasureSummary(specs, cross, so)
	if err != nil {
		return nil, err
	}
	for pi, ps := range settings {
		smallScore, ok := 0.0, true
		for si := range specs {
			if tfs := runs[pi][si].TimeFS; tfs > 0 {
				smallScore += math.Log(float64(tfs))
			} else {
				ok = false
			}
		}
		if !ok || sum.Invalid[pi] {
			continue
		}
		rel := geomeanUS(sum.Scores[pi], n)/geomeanUS(smallScore, n) - 1
		t.Notes = append(t.Notes, fmt.Sprintf(
			"start sensitivity %s: geomean %.2fus from the smallest start, %+.1f%% from the largest",
			ps.Name, geomeanUS(smallScore, n), rel*100))
	}
	return t, nil
}

// geomeanUS converts a sum-of-log-femtosecond score over n benchmarks to a
// geometric-mean run time in microseconds.
func geomeanUS(score float64, n float64) float64 {
	return math.Exp(score/n) / 1e9
}

// learnedProvenance renders the artifact note: a caller-supplied blob is of
// unknown origin, a pipeline-trained one carries its training identity.
func learnedProvenance(blob string, supplied bool, o Options) string {
	if supplied {
		return fmt.Sprintf("learned weights artifact %s (caller-supplied)", control.BlobDigest(blob)[:12])
	}
	return fmt.Sprintf("learned weights artifact %s (trained by imitation at window %d, seed %d)",
		control.BlobDigest(blob)[:12], o.Window, o.Seed)
}
