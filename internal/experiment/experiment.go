// Package experiment regenerates every table and figure of the paper's
// evaluation: the configuration tables (Tables 1-3), the hardware-cost
// estimate (Table 4), the machine parameters (Table 5), the benchmark
// suites (Tables 6-8), the frequency curves (Figures 2-4), the headline
// performance comparison (Figure 6), the configuration distribution
// (Table 9), and the reconfiguration traces (Figure 7).
//
// Each experiment produces a Table: a titled grid of rows with notes
// comparing measured values against the paper's reported ones. Static
// experiments read the timing model; dynamic experiments run the
// simulator, scaled by Options.
package experiment

import (
	"context"
	"fmt"
	"strings"
	"time"

	"gals/internal/metrics"
	"gals/internal/sweep"
)

// Options scale the dynamic experiments.
type Options struct {
	// Window is the instruction window per simulation run.
	Window int64
	// Workers is the sweep parallelism (0 = GOMAXPROCS).
	Workers int
	// FullSyncSpace sweeps all 1,024 synchronous configurations (as the
	// paper did); false prunes to the 320 direct-mapped-I-cache points,
	// which is where the contest is decided, for 3x faster runs.
	FullSyncSpace bool
	// PLLScale scales PLL lock times for the shortened windows.
	PLLScale float64
	// Seed drives PLL lock times and jitter.
	Seed int64
	// JitterFrac enables per-edge clock jitter.
	JitterFrac float64
	// Exec optionally routes the pipeline's simulation cells to a shared
	// work-stealing pool (the service installs its own, so suite work and
	// single runs share one parallelism bound). Result-neutral: excluded
	// from the memo and every cache key.
	Exec *sweep.Pool `json:"-"`
	// Priority orders the pipeline's cells on that pool. Result-neutral.
	Priority int `json:"-"`
	// Ctx bounds the pipeline's simulation work (see sweep.Options.Ctx).
	// Result-neutral: excluded from the memo and every cache key.
	Ctx context.Context `json:"-"`
	// Tracer optionally records span-style timings for the pipeline's
	// stages (see sweep.Options.Tracer). Result-neutral.
	Tracer *metrics.Tracer `json:"-"`
	// CheckpointEvery enables periodic crash-safe checkpointing of the
	// pipeline's sweeps (see sweep.Options.CheckpointEvery). Result-neutral:
	// excluded from the memo and every cache key.
	CheckpointEvery time.Duration `json:"-"`
	// Policy and PolicyParams select the adaptation policy
	// (internal/control registry) of the Phase-Adaptive stages; "" keeps
	// the paper controllers. Result-relevant: part of the suite memo and
	// every cache key.
	Policy       string
	PolicyParams string
	// PolicyBlob is the policy's structured weights artifact (the "learned"
	// policy). Result-relevant like Policy. The "controllers" experiment
	// trains one automatically when it is empty.
	PolicyBlob string
}

// DefaultOptions match the calibration runs recorded in EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{Window: 100_000, PLLScale: 0.1, Seed: 42}
}

func (o Options) sweepOptions() sweep.Options {
	so := sweep.Options{
		Window:          o.Window,
		Workers:         o.Workers,
		Seed:            o.Seed,
		JitterFrac:      o.JitterFrac,
		PLLScale:        o.PLLScale,
		Exec:            o.Exec,
		Priority:        o.Priority,
		Ctx:             o.Ctx,
		Tracer:          o.Tracer,
		CheckpointEvery: o.CheckpointEvery,
		Policy:          o.Policy,
		PolicyParams:    o.PolicyParams,
	}
	// A blob with no explicit policy selection parameterizes only the
	// controllers experiment's learned column (learnedArtifact); the
	// default paper stages must not inherit an artifact they cannot take.
	if o.Policy != "" {
		so.PolicyBlob = o.PolicyBlob
	}
	return so
}

// Table is one regenerated table or figure (figures are rendered as their
// data series).
type Table struct {
	// ID is the registry key, e.g. "table1" or "figure6".
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the cells.
	Rows [][]string
	// Notes carry paper-vs-measured commentary.
	Notes []string
}

// AddRow appends a row built from values formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render formats the table as aligned monospace text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", strings.ToUpper(t.ID[:1])+t.ID[1:], t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner produces one experiment.
type Runner func(Options) (*Table, error)

var registry = map[string]Runner{}
var order []string

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiment: duplicate id " + id)
	}
	registry[id] = r
	order = append(order, id)
}

// IDs lists the registered experiments in registration (paper) order.
func IDs() []string {
	return append([]string(nil), order...)
}

// Run executes one experiment by ID.
func Run(id string, o Options) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown id %q (have %v)", id, IDs())
	}
	return r(o)
}

func init() {
	register("table1", func(o Options) (*Table, error) { return Table1(), nil })
	register("figure2", func(o Options) (*Table, error) { return Figure2(), nil })
	register("table2", func(o Options) (*Table, error) { return Table2(), nil })
	register("table3", func(o Options) (*Table, error) { return Table3(), nil })
	register("figure3", func(o Options) (*Table, error) { return Figure3(), nil })
	register("figure4", func(o Options) (*Table, error) { return Figure4(), nil })
	register("table4", func(o Options) (*Table, error) { return Table4(), nil })
	register("table5", func(o Options) (*Table, error) { return Table5(), nil })
	register("table6", func(o Options) (*Table, error) { return Benchmarks("MediaBench"), nil })
	register("table7", func(o Options) (*Table, error) { return Benchmarks("Olden"), nil })
	register("table8", func(o Options) (*Table, error) { return Benchmarks("SPEC2000"), nil })
	register("figure6", func(o Options) (*Table, error) { return Figure6(o) })
	register("table9", func(o Options) (*Table, error) { return Table9(o) })
	register("figure7", func(o Options) (*Table, error) { return Figure7(o) })
	register("policies", func(o Options) (*Table, error) { return PolicyCompare(o) })
	register("controllers", func(o Options) (*Table, error) { return Controllers(o) })
}
