package experiment

import (
	"strings"
	"testing"

	"gals/internal/learn"
	"gals/internal/resultcache"
	"gals/internal/sweep"
)

// TestControllersExperiment runs the four-family comparison at a tiny
// window: shape, per-policy columns, the trained-artifact provenance note
// and the policy x start product-space notes.
func TestControllersExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("controller comparison in -short mode")
	}
	o := Options{Window: 3_000, PLLScale: 0.1, Seed: 42}
	tab, err := Run("controllers", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 40 {
		t.Fatalf("controllers table has %d rows, want 40", len(tab.Rows))
	}
	if want := []string{"benchmark", "t_frozen(us)", "paper %", "feedback %", "learned %"}; len(tab.Header) != len(want) {
		t.Fatalf("header %v, want %v", tab.Header, want)
	}
	rendered := tab.Render()
	for _, want := range []string{
		"mean improvement over frozen",
		"total reconfigurations",
		"learned weights artifact",
		"start sensitivity frozen",
		"start sensitivity learned",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}

// TestControllersReusesSidecarArtifact: with a persistent store installed,
// the experiment's training runs once; a repeat (memo dropped) loads the
// sidecar instead of retraining.
func TestControllersReusesSidecarArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("controller comparison in -short mode")
	}
	c, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prev := sweep.SetPersist(c)
	defer sweep.SetPersist(prev)
	learn.ResetArtifactMemo()
	t.Cleanup(learn.ResetArtifactMemo)

	o := Options{Window: 2_000, PLLScale: 0.1, Seed: 43}
	before := learn.Trainings()
	if _, err := Run("controllers", o); err != nil {
		t.Fatal(err)
	}
	if learn.Trainings() != before+1 {
		t.Fatalf("first controllers run trained %d times, want 1", learn.Trainings()-before)
	}
	learn.ResetArtifactMemo()
	if _, err := Run("controllers", o); err != nil {
		t.Fatal(err)
	}
	if learn.Trainings() != before+1 {
		t.Fatal("second controllers run retrained despite the persisted sidecar artifact")
	}
}
