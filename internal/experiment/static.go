// Static experiments: configuration tables and frequency curves that read
// the calibrated timing model directly (paper Tables 1-5 and Figures 2-4)
// plus the benchmark-suite listings (Tables 6-8).
package experiment

import (
	"fmt"

	"gals/internal/core"
	"gals/internal/timing"
	"gals/internal/workload"
)

// Table1 regenerates paper Table 1: the joint L1-D/L2 configurations.
func Table1() *Table {
	t := &Table{
		ID:     "table1",
		Title:  "L1 data and L2 cache configurations",
		Header: []string{"L1-D size", "assoc", "L1 sub-banks (adapt)", "L1 sub-banks (opt)", "L2 size", "L2 sub-banks (adapt)", "L2 sub-banks (opt)"},
	}
	for _, c := range timing.DCacheConfigs() {
		s := c.Spec()
		t.AddRow(
			fmt.Sprintf("%d KB", s.L1SizeKB), s.Assoc,
			s.L1SubBanksAdapt, s.L1SubBanksOpt,
			fmt.Sprintf("%d KB", s.L2SizeKB),
			s.L2SubBanksAdapt, s.L2SubBanksOpt,
		)
	}
	t.Notes = append(t.Notes,
		"sub-bank organizations follow the paper exactly: each adaptive way replicates the base way's banking")
	return t
}

// Figure2 regenerates paper Figure 2: D-cache/L2 frequency versus
// configuration, adaptive and optimal organizations.
func Figure2() *Table {
	t := &Table{
		ID:     "figure2",
		Title:  "D-cache/L2 frequency versus configuration (GHz)",
		Header: []string{"configuration", "adaptive GHz", "optimal GHz", "optimal/adaptive"},
	}
	for _, c := range timing.DCacheConfigs() {
		s := c.Spec()
		t.AddRow(s.Name, s.AdaptMHz/1000, s.OptimalMHz/1000, s.OptimalMHz/s.AdaptMHz)
	}
	t.Notes = append(t.Notes,
		"paper: ~1.8 GHz at the base configuration falling below 0.8 GHz at 256k8W; optimal a few percent faster when upsized")
	return t
}

// Table2 regenerates paper Table 2: adaptive I-cache / branch predictor
// configurations.
func Table2() *Table {
	t := &Table{
		ID:     "table2",
		Title:  "Adaptive instruction cache / branch predictor configurations",
		Header: []string{"size", "assoc", "sub-banks", "hg", "gshare PHT", "meta", "hl", "local BHT", "local PHT"},
	}
	for _, c := range timing.ICacheConfigs() {
		s := c.Spec()
		bp := s.BPred
		t.AddRow(fmt.Sprintf("%d KB", s.SizeKB), s.Assoc, s.SubBanks,
			fmt.Sprintf("%d bits", bp.GShareBits), bp.GShareEntries, bp.MetaEntries,
			fmt.Sprintf("%d bits", bp.LocalBits), bp.LocalBHTEntries, bp.LocalPHTEntries)
	}
	return t
}

// Table3 regenerates paper Table 3: the optimized I-cache / predictor
// organizations available to the fully synchronous design space.
func Table3() *Table {
	t := &Table{
		ID:     "table3",
		Title:  "Optimized instruction cache / branch predictor configurations",
		Header: []string{"size", "assoc", "sub-banks", "hg", "gshare PHT", "meta", "hl", "local BHT", "local PHT"},
	}
	for _, s := range timing.SyncICacheSpecs() {
		bp := s.BPred
		t.AddRow(fmt.Sprintf("%d KB", s.SizeKB), s.Assoc, s.SubBanks,
			fmt.Sprintf("%d bits", bp.GShareBits), bp.GShareEntries, bp.MetaEntries,
			fmt.Sprintf("%d bits", bp.LocalBits), bp.LocalBHTEntries, bp.LocalPHTEntries)
	}
	return t
}

// Figure3 regenerates paper Figure 3: I-cache frequency versus size for the
// adaptive and the optimal direct-mapped organizations.
func Figure3() *Table {
	t := &Table{
		ID:     "figure3",
		Title:  "I-cache frequency versus configuration (GHz)",
		Header: []string{"size", "adaptive (cfg)", "adaptive GHz", "optimal (DM)", "optimal GHz"},
	}
	optNames := []string{"16k1W", "32k1W", "48k3W", "64k1W"}
	for i, c := range timing.ICacheConfigs() {
		s := c.Spec()
		idx, _ := timing.SyncICacheIndexByName(optNames[i])
		opt := timing.SyncICacheSpecs()[idx]
		t.AddRow(fmt.Sprintf("%d KB", s.SizeKB), s.Name, s.AdaptMHz/1000, opt.Name, opt.MHz/1000)
	}
	a := timing.ICache16K1W.Spec().AdaptMHz
	b := timing.ICache32K2W.Spec().AdaptMHz
	t.Notes = append(t.Notes,
		fmt.Sprintf("direct-mapped to 2-way frequency drop: %.0f%% (paper: ~31%%)", (1-b/a)*100))
	i64, _ := timing.SyncICacheIndexByName("64k1W")
	opt64 := timing.SyncICacheSpecs()[i64].MHz
	ad64 := timing.ICache64K4W.Spec().AdaptMHz
	t.Notes = append(t.Notes,
		fmt.Sprintf("optimal 64KB DM is %.0f%% faster than adaptive 64KB 4-way (paper: 27%%)", (opt64/ad64-1)*100))
	return t
}

// Figure4 regenerates paper Figure 4: issue queue frequency versus size,
// for every size from 16 to 64 entries in steps of 4.
func Figure4() *Table {
	t := &Table{
		ID:     "figure4",
		Title:  "Issue queue frequency versus size (GHz)",
		Header: []string{"entries", "GHz", "selection levels"},
	}
	for n := 16; n <= 64; n += 4 {
		levels := 2
		if n > 16 {
			levels = 3
		}
		t.AddRow(n, timing.IQFreqMHz(n)/1000, levels)
	}
	t.Notes = append(t.Notes,
		"the log4 selection tree gains a third level beyond 16 entries, producing the paper's frequency cliff")
	return t
}

// table4Component is one row of the paper's hardware-cost estimate.
type table4Component struct {
	name    string
	count   int
	width   int // bits
	perBit  int // equivalent gates per bit
	formula string
}

// Table4 regenerates paper Table 4: the gate-count estimate of the
// Phase-Adaptive cache control hardware (per adaptable cache pair).
func Table4() *Table {
	comps := []table4Component{
		{"24 MRU and Hit Counters (15-bit)", 24, 15, 7, "3n (HA) + 4n (DFF) = 7n"},
		{"11 Adders (15-bit)", 11, 15, 7, "7n (FA) = 7n"},
		{"2 8x28-bit Multipliers (36-bit result)", 2, 36, 5, "1n (Mult) + 4n (DFF) = 5n"},
		{"1 Final Adder (36-bit)", 1, 36, 7, "7n (FA) = 7n"},
		{"Result Register (36-bit)", 1, 36, 4, "4n (DFF) = 4n"},
		{"Comparator (36-bit)", 1, 36, 6, "6n (Comparator) = 6n"},
	}
	t := &Table{
		ID:     "table4",
		Title:  "Phase-Adaptive cache control hardware estimate (per cache pair)",
		Header: []string{"component", "estimate", "equivalent gates"},
	}
	total := 0
	for _, c := range comps {
		gates := c.count * c.width * c.perBit
		total += gates
		t.AddRow(c.name, c.formula+" each", gates)
	}
	t.AddRow("Total", "", total)
	t.Notes = append(t.Notes, "paper total: 4,647 equivalent gates")
	return t
}

// Table5 regenerates paper Table 5: the simulated machine parameters.
func Table5() *Table {
	t := &Table{
		ID:     "table5",
		Title:  "Architectural parameters for the simulated processor",
		Header: []string{"parameter", "value"},
	}
	d := timing.DCache32K1W.Spec()
	rows := [][2]string{
		{"Fetch queue", fmt.Sprintf("%d entries", core.FetchQueueEntries)},
		{"Branch mispredict penalty", fmt.Sprintf("%d front-end + %d integer cycles (%d + %d for adaptive MCD)",
			core.SyncMispredictFE, core.SyncMispredictInt, core.AdaptMispredictFE, core.AdaptMispredictInt)},
		{"Decode, issue, retire widths", fmt.Sprintf("%d, %d, %d instructions", core.DecodeWidth, core.IssueWidth, core.RetireWidth)},
		{"L1 cache latency (I and D)", "2/8, 2/5, 2/2 or 2/- cycles for A and B partitions"},
		{"L2 cache latency", fmt.Sprintf("%d/43, %d/27, %d/12 or %d/- cycles", d.L2ALat, d.L2ALat, d.L2ALat, d.L2ALat)},
		{"Memory latency", "80 ns (first access), 2 ns (subsequent)"},
		{"Integer ALUs", fmt.Sprintf("%d + %d mult/div unit", core.IntALUs, core.IntMulDivs)},
		{"FP ALUs", fmt.Sprintf("%d + %d mult/div/sqrt unit", core.FPALUs, core.FPMulDivs)},
		{"Load/store queue", fmt.Sprintf("%d entries", core.LSQEntries)},
		{"Physical register file", fmt.Sprintf("%d integer, %d FP", core.PhysIntRegs, core.PhysFPRegs)},
		{"Reorder buffer", fmt.Sprintf("%d entries", core.ROBEntries)},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1])
	}
	return t
}

// Benchmarks regenerates Tables 6-8: the benchmark runs of a suite family
// ("MediaBench", "Olden", or the prefix "SPEC2000").
func Benchmarks(family string) *Table {
	id := map[string]string{"MediaBench": "table6", "Olden": "table7", "SPEC2000": "table8"}[family]
	t := &Table{
		ID:     id,
		Title:  family + " benchmark applications (synthetic workload models)",
		Header: []string{"benchmark", "suite", "paper window", "code KB", "hot code KB", "data KB", "FP frac"},
	}
	for _, s := range workload.Suite() {
		if family == "SPEC2000" {
			if s.Suite != "SPEC2000-Int" && s.Suite != "SPEC2000-FP" {
				continue
			}
		} else if s.Suite != family {
			continue
		}
		p := s.Base
		t.AddRow(s.Name, s.Suite, s.Window, p.CodeKB, p.HotKB, p.DataKB, p.FPFrac)
	}
	t.Notes = append(t.Notes,
		"windows are the paper's; this reproduction replays deterministic synthetic models of each run (see DESIGN.md)")
	return t
}
