package experiment

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "figure2", "table2", "table3", "figure3", "figure4",
		"table4", "table5", "table6", "table7", "table8",
		"figure6", "table9", "figure7", "policies", "controllers",
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("IDs()[%d] = %q, want %q", i, ids[i], id)
		}
	}
	if _, err := Run("nope", Options{}); err == nil {
		t.Error("unknown experiment did not error")
	}
}

func TestStaticTablesRender(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3", "table4", "table5",
		"table6", "table7", "table8", "figure2", "figure3", "figure4"} {
		tab, err := Run(id, Options{})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
		out := tab.Render()
		if !strings.Contains(out, tab.Title) {
			t.Errorf("%s: render missing title", id)
		}
	}
}

func TestTable3Has16Rows(t *testing.T) {
	tab := Table3()
	if len(tab.Rows) != 16 {
		t.Errorf("Table 3 has %d rows, want 16", len(tab.Rows))
	}
}

func TestTable4MatchesPaperTotal(t *testing.T) {
	tab := Table4()
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "Total" || last[2] != "4647" {
		t.Errorf("Table 4 total row = %v, want Total/4647 (paper)", last)
	}
}

func TestBenchmarkTablesPartitionSuite(t *testing.T) {
	n := len(Benchmarks("MediaBench").Rows) + len(Benchmarks("Olden").Rows) + len(Benchmarks("SPEC2000").Rows)
	if n != 40 {
		t.Errorf("benchmark tables cover %d runs, want 40", n)
	}
}

func TestFigure7SmallWindow(t *testing.T) {
	o := Options{Window: 40_000, PLLScale: 0.1, Seed: 42}
	tab, err := Figure7(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Error("Figure 7 produced no trace rows")
	}
}

// TestSuiteMemoization verifies the evaluation pipeline is memoized per
// normalized Options: after figure6 runs the sweep once, table9 and
// figure7 with identical Options are served from the memo without
// re-running the synchronous sweep or the Program-Adaptive searches.
func TestSuiteMemoization(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	o := Options{Window: 1_500, PLLScale: 0.1, Seed: 42}
	before := SuiteComputations()
	f6, err := Run("figure6", o)
	if err != nil {
		t.Fatal(err)
	}
	after6 := SuiteComputations()
	if after6 != before+1 {
		t.Fatalf("figure6 ran the pipeline %d times, want 1", after6-before)
	}
	t9, err := Run("table9", o)
	if err != nil {
		t.Fatal(err)
	}
	f7, err := Run("figure7", o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSuite(o); err != nil {
		t.Fatal(err)
	}
	// Workers-only and zero-field variants hit the same memo entry.
	alt := o
	alt.Workers = 2
	if _, err := RunSuite(alt); err != nil {
		t.Fatal(err)
	}
	if got := SuiteComputations(); got != after6 {
		t.Fatalf("table9/figure7/RunSuite re-ran the pipeline (%d extra computations)", got-after6)
	}
	if len(f6.Rows) != 40 || len(t9.Rows) != 4 || len(f7.Rows) == 0 {
		t.Errorf("memoized tables malformed: %d/%d/%d rows", len(f6.Rows), len(t9.Rows), len(f7.Rows))
	}
}

// TestMemoKeyNormalization: zero-valued fields resolve to the defaults, and
// parallelism never splits the memo.
func TestMemoKeyNormalization(t *testing.T) {
	def := DefaultOptions()
	zero := Options{}
	if zero.memoKey() != def.memoKey() {
		t.Errorf("zero Options normalize to %+v, want %+v", zero.memoKey(), def.memoKey())
	}
	w := def
	w.Workers = 7
	if w.memoKey() != def.memoKey() {
		t.Error("Workers should not affect the memo key")
	}
	j := def
	j.JitterFrac = 0.01
	if j.memoKey() == def.memoKey() {
		t.Error("JitterFrac must affect the memo key")
	}
}

// TestSuitePipelineSmall runs the full Figure-6 pipeline at a tiny window:
// it validates plumbing (and Table 9 derivation), not calibration.
func TestSuitePipelineSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	o := Options{Window: 2_000, PLLScale: 0.1, Seed: 42}
	r, err := RunSuite(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Specs) != 40 || len(r.ProgTimes) != 40 || len(r.PhaseResults) != 40 {
		t.Fatalf("pipeline shapes wrong: %d/%d/%d", len(r.Specs), len(r.ProgTimes), len(r.PhaseResults))
	}
	for i := range r.Specs {
		if r.SyncTimes[i] <= 0 || r.ProgTimes[i] <= 0 {
			t.Fatalf("%s: non-positive times", r.Specs[i].Name)
		}
		// Program-Adaptive picked the per-app best: it can never lose to
		// the base adaptive configuration by definition of the search.
		if r.ProgConfigs[i].Mode.String() != "program-adaptive" {
			t.Fatalf("%s: wrong mode in program config", r.Specs[i].Name)
		}
	}

	// The cached pipeline feeds both figure6 and table9.
	f6, err := Figure6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Rows) != 40 {
		t.Errorf("figure6 has %d rows, want 40", len(f6.Rows))
	}
	t9, err := Table9(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(t9.Rows) != 4 {
		t.Errorf("table9 has %d rows, want 4", len(t9.Rows))
	}
	// Distribution rows sum to ~100%.
	for _, row := range t9.Rows {
		sum := 0
		for _, cell := range row[1:] {
			var v int
			if _, err := fmtSscanf(cell, &v); err != nil {
				t.Fatalf("bad percentage cell %q", cell)
			}
			sum += v
		}
		if sum < 98 || sum > 102 {
			t.Errorf("%s: distribution sums to %d%%", row[0], sum)
		}
	}
}

// fmtSscanf parses "NN%" cells.
func fmtSscanf(cell string, v *int) (int, error) {
	cell = strings.TrimSuffix(cell, "%")
	n, err := parseInt(cell)
	*v = n
	return n, err
}

func parseInt(s string) (int, error) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, &parseErr{s}
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}

type parseErr struct{ s string }

func (e *parseErr) Error() string { return "bad int " + e.s }
