package experiment

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The goldens under testdata are the rendered figure6/table9/figure7
// outputs of the pre-refactor pipeline — generated immediately before the
// controller logic moved out of core.Machine into internal/control. These
// tests pin the default ("paper") policy byte-identical through the whole
// experiment stack. Regenerate with -update only for a deliberate,
// SchemaVersion-bumping behaviour change.
var updateGoldens = flag.Bool("update", false, "rewrite golden parity files from current behaviour")

func checkGolden(t *testing.T, id string, o Options) {
	t.Helper()
	tab, err := Run(id, o)
	if err != nil {
		t.Fatal(err)
	}
	got := tab.Render()
	path := filepath.Join("testdata", "parity_"+id+".golden")
	if *updateGoldens {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("%s diverged from the pre-refactor pipeline\n got:\n%s\nwant:\n%s", id, got, want)
	}
}

func TestParityFigure6AndTable9QuickSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-suite pipeline in -short mode")
	}
	o := Options{Window: 2_000, PLLScale: 0.1, Seed: 42}
	checkGolden(t, "figure6", o)
	checkGolden(t, "table9", o) // shares the suite memo with figure6
}

func TestParityFigure7(t *testing.T) {
	if testing.Short() {
		t.Skip("figure7 simulation in -short mode")
	}
	checkGolden(t, "figure7", Options{Window: 40_000, PLLScale: 0.1, Seed: 42})
}

// TestPolicyCompareExperiment runs the frozen-vs-paper comparison at a
// phased-workload window: adaptation must help on at least one benchmark,
// and the frozen column must show zero reconfigurations implicitly (its
// runs never emit events — checked at the sweep layer; here we check the
// report's shape and that the two columns actually differ).
func TestPolicyCompareExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("policy comparison sweep in -short mode")
	}
	o := Options{Window: 20_000, PLLScale: 0.1, Seed: 42}
	tab, err := Run("policies", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 40 {
		t.Fatalf("policies table has %d rows, want 40", len(tab.Rows))
	}
	differ := false
	for _, row := range tab.Rows {
		if row[1] != row[2] {
			differ = true
			break
		}
	}
	if !differ {
		t.Error("frozen and paper produced identical times on every benchmark")
	}
	foundMean := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "mean improvement") {
			foundMean = true
		}
	}
	if !foundMean {
		t.Error("policies table missing the mean-improvement note")
	}
}

// TestSuitePolicyChangesMemoIdentity pins that the policy selection is part
// of the suite's memo key: a frozen-policy suite must not be served from a
// paper-policy suite's memo entry (stale-result hazard).
func TestSuitePolicyChangesMemoIdentity(t *testing.T) {
	a := Options{Window: 1_500, PLLScale: 0.1, Seed: 42}
	b := a
	b.Policy = "frozen"
	if a.memoKey() == b.memoKey() {
		t.Fatal("policy selection not part of the suite memo key")
	}
}
