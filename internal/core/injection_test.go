package core

import (
	"reflect"
	"testing"

	"gals/internal/control"
	"gals/internal/queue"
	"gals/internal/workload"
)

// forwarder is a pass-through controller wrapping another (the shape the
// learned-policy training probe uses).
type forwarder struct{ inner control.Controller }

func (f forwarder) CacheInterval() int64 { return f.inner.CacheInterval() }
func (f forwarder) NeedsIQ() bool        { return f.inner.NeedsIQ() }
func (f forwarder) IQWindows() [4]int    { return f.inner.IQWindows() }
func (f forwarder) DecideCaches(o control.CacheObs, b []control.Reconfig) []control.Reconfig {
	return f.inner.DecideCaches(o, b)
}
func (f forwarder) DecideIQs(o control.IQObs, b []control.Reconfig) []control.Reconfig {
	return f.inner.DecideIQs(o, b)
}

// TestInjectedControllerMatchesRegistryRun pins the training-pipeline
// contract: a machine driven by an explicitly injected (pass-through
// wrapped) paper controller is bit-identical to the registry-built paper
// machine — observing a policy's decisions must not perturb the run.
func TestInjectedControllerMatchesRegistryRun(t *testing.T) {
	spec, _ := workload.ByName("apsi")
	cfg := DefaultAdaptive(PhaseAdaptive)
	cfg.PLLScale = 0.1
	cfg.RecordTrace = true

	want := NewMachineSource(spec.NewTrace(), cfg).Run(40_000)

	inner, err := control.New("paper", "", control.Init{
		IntIQ: cfg.IntIQ, FPIQ: cfg.FPIQ, ICache: cfg.ICache, DCache: cfg.DCache,
		IQHysteresis: cfg.IQHysteresis,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := NewMachineController(spec.NewTrace(), cfg, forwarder{inner}).Run(40_000)

	if got.TimeFS != want.TimeFS {
		t.Fatalf("injected run time %d != registry run time %d", got.TimeFS, want.TimeFS)
	}
	if !reflect.DeepEqual(got.Stats, want.Stats) {
		t.Fatal("injected run statistics diverge from the registry run")
	}
}

func TestInjectedControllerRejectsConflicts(t *testing.T) {
	spec, _ := workload.ByName("gcc")
	ctl, _ := control.New("frozen", "", control.Init{})
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	sync := DefaultSync()
	mustPanic("non-phase mode", func() { NewMachineController(spec.NewTrace(), sync, ctl) })
	named := DefaultAdaptive(PhaseAdaptive).WithPolicy("frozen", "")
	mustPanic("config-selected policy", func() { NewMachineController(spec.NewTrace(), named, ctl) })
	mustPanic("nil controller", func() { NewMachineController(spec.NewTrace(), DefaultAdaptive(PhaseAdaptive), nil) })
}

// cadenceCtl decides nothing but halves then doubles its own interval; the
// machine must honour the new cadence after every decision.
type cadenceCtl struct {
	intervals []int64 // successive CacheInterval values to serve
	calls     int
}

func (c *cadenceCtl) CacheInterval() int64 {
	i := c.calls
	if i >= len(c.intervals) {
		i = len(c.intervals) - 1
	}
	return c.intervals[i]
}
func (c *cadenceCtl) NeedsIQ() bool     { return false }
func (c *cadenceCtl) IQWindows() [4]int { return queue.DefaultWindowSizes() }
func (c *cadenceCtl) DecideCaches(control.CacheObs, []control.Reconfig) []control.Reconfig {
	c.calls++
	return nil
}
func (c *cadenceCtl) DecideIQs(control.IQObs, []control.Reconfig) []control.Reconfig { return nil }

// TestDynamicCacheInterval pins the closed-loop cadence mechanism: the
// machine re-reads CacheInterval after each decision, so a policy that
// stretches its interval gets proportionally fewer decisions.
func TestDynamicCacheInterval(t *testing.T) {
	spec, _ := workload.ByName("gcc")
	cfg := DefaultAdaptive(PhaseAdaptive)
	cfg.PLLScale = 0.1

	// Fixed 1000-instruction cadence: ~40 decisions in 40K instructions.
	fixed := &cadenceCtl{intervals: []int64{1000}}
	NewMachineController(spec.NewTrace(), cfg, fixed).Run(40_000)
	if fixed.calls != 40 {
		t.Fatalf("fixed cadence decided %d times, want 40", fixed.calls)
	}

	// Self-stretching cadence: 1000, then 4000 from the first decision on.
	stretching := &cadenceCtl{intervals: []int64{1000, 4000}}
	NewMachineController(spec.NewTrace(), cfg, stretching).Run(40_000)
	// One decision at 1000, then every 4000: 1 + floor(39000/4000) = 10.
	if stretching.calls != 10 {
		t.Fatalf("stretching cadence decided %d times, want 10", stretching.calls)
	}
}
