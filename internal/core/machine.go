package core

import (
	"fmt"
	"math/bits"

	"gals/internal/bpred"
	"gals/internal/cache"
	"gals/internal/clock"
	"gals/internal/control"
	"gals/internal/isa"
	"gals/internal/mem"
	"gals/internal/queue"
	"gals/internal/timing"
	"gals/internal/workload"
)

// window enforces a fixed-occupancy structural constraint: an instruction
// may claim a slot only after the instruction n slots earlier released its
// slot. push records a release time; floor(n) returns the release time of
// the n-th most recent push (or 0 when fewer than n pushes have happened).
//
// The ring position is maintained with a compare-and-wrap instead of a
// modulo: push/floor run tens of times per simulated instruction and the
// int64 divisions dominated the simulator's profile. Unpushed slots hold
// the zero value, which floor naturally reports as "no constraint", so no
// separate fill counter is needed. floor requires 0 < n <= capacity (every
// call site passes a structure capacity bounded by the window's).
type window struct {
	buf  []timing.FS
	head int // next write position
}

func newWindow(capacity int) *window {
	return &window{buf: make([]timing.FS, capacity)}
}

func (w *window) push(t timing.FS) {
	h := w.head
	w.buf[h] = t
	h++
	if h == len(w.buf) {
		h = 0
	}
	w.head = h
}

func (w *window) floor(n int) timing.FS {
	i := w.head - n
	if i < 0 {
		i += len(w.buf)
	}
	return w.buf[i]
}

// fuPool models a set of identical functional units. A uint64 free-list
// tracks units that have never been booked (avail == 0): while any bit is
// set, acquire takes the lowest free unit via bits.TrailingZeros64 without
// scanning availability times. The booked units' avail values are strictly
// positive (busy times are clock edges after time 0), so a free unit is
// always the global minimum and the lowest-set-bit choice reproduces the
// linear scan's first-smallest-index selection exactly — the fast path is
// bit-identical to the scan, it just skips it. Once all units have been
// booked (a few dozen instructions into a run for the ALU pools; much
// later, or never, for the 1-wide mul/div pools on workloads light in
// those classes), the exact argmin scan takes over.
type fuPool struct {
	avail []timing.FS
	free  uint64 // bit i set <=> avail[i] == 0 (unit never booked)
}

func newFUPool(n int) *fuPool {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("core: fuPool size %d out of range [1, 64]", n))
	}
	return &fuPool{avail: make([]timing.FS, n), free: (uint64(1) << n) - 1}
}

// acquire returns the earliest start time >= t on any unit and books the
// unit until busyUntil(start). The free-list take lives in its own
// function so the saturated path's codegen stays as tight as the plain
// scan (measured: folding the take inline cost ~5% at simulator level).
func (f *fuPool) acquire(t timing.FS, busy func(start timing.FS) timing.FS) timing.FS {
	if f.free != 0 {
		return f.acquireFree(t, busy)
	}
	best := 0
	for i := 1; i < len(f.avail); i++ {
		if f.avail[i] < f.avail[best] {
			best = i
		}
	}
	start := t
	if f.avail[best] > start {
		start = f.avail[best]
	}
	f.avail[best] = busy(start)
	return start
}

// acquireFree books the lowest never-booked unit: its avail of 0 is the
// pool-wide minimum (booked units are strictly positive), and the lowest
// set bit matches the scan's first-smallest-index tie-break, so the result
// is bit-identical to scanning.
//
//go:noinline
func (f *fuPool) acquireFree(t timing.FS, busy func(start timing.FS) timing.FS) timing.FS {
	i := bits.TrailingZeros64(f.free)
	f.free &^= 1 << i
	f.avail[i] = busy(t)
	return t
}

// storeEntry is one slot of the store-forwarding table.
type storeEntry struct {
	addr  uint64
	seq   int64 // memory-op sequence number of the store
	ready timing.FS
}

const storeTableSize = 1024

// reconfigKind tags reconfiguration events for Figure 7 traces.
type reconfigKind int

const (
	reconfigDCache reconfigKind = iota
	reconfigICache
	reconfigIntIQ
	reconfigFPIQ
)

// ReconfigEvent records one phase-controller decision (Figure 7).
type ReconfigEvent struct {
	// Instr is the committed-instruction count at the decision.
	Instr int64
	// Kind names the resized structure: "dcache", "icache", "int-iq",
	// "fp-iq".
	Kind string
	// Config is the new configuration label (e.g. "128k4W/1024k4W", "32").
	Config string
	// Index is the new configuration's upsizing index (0..3).
	Index int
}

// InstSource is a stream of dynamic instructions: either a live generator
// (*workload.Trace) or a recorded replay (*workload.Replay). The simulator
// is source-agnostic — a recording replays bit-identically to live
// generation, so sweeps share one immutable recording per benchmark across
// all configuration runs.
type InstSource interface {
	// Next fills in with the next dynamic instruction.
	Next(in *isa.Inst)
	// Spec returns the benchmark description.
	Spec() workload.Spec
}

// Machine is one configured processor instance bound to one workload
// instruction source. Create with NewMachine or NewMachineSource, drive
// with Run.
type Machine struct {
	cfg   Config
	trace InstSource

	clocks [clock.NumDomains]*clock.Clock
	// syncPaths memoize Sync's per-pair period lookups between
	// reconfigurations (indexed [producer][consumer]).
	syncPaths [clock.NumDomains][clock.NumDomains]*clock.SyncPath
	pll       *clock.PLL

	icache *cache.AccountingCache
	dcache *cache.AccountingCache
	l2     *cache.AccountingCache
	memc   *mem.Controller

	bank     *bpred.Bank      // adaptive modes
	syncPred *bpred.Predictor // synchronous mode

	// Current adaptive configuration state.
	iCfg     timing.ICacheConfig
	dCfg     timing.DCacheConfig
	intIQ    timing.IQSize
	fpIQ     timing.IQSize
	fePeriod timing.FS
	lsPeriod timing.FS

	// Structural windows.
	rob      *window // commit times; ROBEntries
	fetchQ   *window // rename times; FetchQueueEntries
	intQ     *window // issue times of int-queue ops; capacity 64
	fpQ      *window // issue times of fp-queue ops; capacity 64
	lsq      *window // commit times of memory ops; LSQEntries
	intRegs  *window // commit times of int-dest ops; PhysIntRegs-NumIntRegs
	fpRegs   *window // commit times of fp-dest ops
	fetchBW  *window // fetch group starts (1 line/cycle)
	renameBW *window // rename grants; DecodeWidth per cycle
	intIssue *window // issue grants; IssueWidth per cycle
	fpIssue  *window
	commitBW *window // commit grants; RetireWidth per cycle
	dports   *window // D-cache port grants; DCachePorts per cycle
	mshr     *window // outstanding-miss completion times

	intFU  *fuPool // IntALU
	intMul *fuPool
	fpFU   *fuPool
	fpMul  *fuPool

	// Register scoreboard: ready time and producing domain per logical reg.
	regReady  [64]timing.FS
	regDomain [64]clock.Domain

	// Store-forwarding table.
	stores  [storeTableSize]storeEntry
	memSeq  int64 // memory-op sequence counter
	loadSeq int64

	// Fetch state.
	curLine     uint64
	lineLeft    int // fetch-group slots left in the current line group
	groupReady  timing.FS
	nextLineAt  timing.FS // earliest start of the next line access
	minFetch    timing.FS // redirect floor after mispredictions
	minIntIssue timing.FS // integer-side mispredict floor
	lastCommit  timing.FS
	lastRename  timing.FS

	// Adaptation policy (PhaseAdaptive): the run's decision state, plus the
	// machine-side mechanism bookkeeping. cacheEvery caches the policy's
	// accounting interval (0 disables); actBuf backs the per-decision action
	// slice so interval boundaries allocate nothing.
	ctl           control.Controller
	cacheEvery    int64
	actBuf        [4]control.Reconfig
	tracker       *queue.Tracker
	intervalStart int64
	pendingFE     *pendingReconfig
	pendingLS     *pendingReconfig
	pendingIntIQ  *pendingIQ
	pendingFPIQ   *pendingIQ

	stats Stats
	count int64

	// tel is the run's telemetry sampler (SetTelemetry); nil by default,
	// costing one predictable branch per decision boundary and nothing in
	// the instruction loop.
	tel *Telemetry
	// dirCounts accumulates committed reconfigurations by
	// [reconfigKind][direction index] for the process-wide
	// structure/direction metric, folded once at result construction.
	dirCounts [4][3]int64

	// par is the intra-run parallel execution state; nil during sequential
	// runs, making every parallel gate in step() one predictable branch.
	par *parState
}

// pendingReconfig is an in-flight cache-domain frequency change.
type pendingReconfig struct {
	at    timing.FS // PLL lock completion
	final int       // target config index
}

// pendingIQ is an in-flight issue-queue resize.
type pendingIQ struct {
	at    timing.FS
	final timing.IQSize
}

// Stats accumulates run statistics.
type Stats struct {
	Instructions int64
	Branches     int64
	Mispredicts  int64
	Loads        int64
	Stores       int64
	FPOps        int64

	ICacheA, ICacheB, ICacheMiss int64
	DCacheA, DCacheB, DCacheMiss int64
	L2A, L2B, L2Miss             int64
	MemAccesses                  int64

	Reconfigs      int64
	ReconfigEvents []ReconfigEvent

	// ConfigInstrs accumulates committed instructions spent in each
	// configuration index per structure (for distribution reporting).
	ICacheInstrs [timing.NumICacheConfigs]int64
	DCacheInstrs [timing.NumDCacheConfigs]int64
	IntIQInstrs  [4]int64
	FPIQInstrs   [4]int64
}

// Result summarizes one run.
type Result struct {
	Workload string
	Config   Config
	// TimeFS is the total execution time of the window.
	TimeFS timing.FS
	Stats  Stats
}

// Seconds returns the run time in seconds.
func (r *Result) Seconds() float64 { return float64(r.TimeFS) * 1e-15 }

// IPnsec returns committed instructions per nanosecond (the throughput
// metric the paper's "performance improvement" compares).
func (r *Result) IPnsec() float64 {
	if r.TimeFS == 0 {
		return 0
	}
	return float64(r.Stats.Instructions) / (float64(r.TimeFS) / float64(timing.FemtosPerNano))
}

// NewMachine builds a machine for cfg bound to a fresh live trace of spec.
func NewMachine(spec workload.Spec, cfg Config) *Machine {
	return NewMachineSource(spec.NewTrace(), cfg)
}

// NewMachineSource builds a machine for cfg bound to an existing
// instruction source (a live trace or a recorded replay). The source must
// be positioned at the start of the stream and must not be shared with
// another machine.
func NewMachineSource(src InstSource, cfg Config) *Machine {
	m := newMachine(src, cfg)
	if cfg.Mode == PhaseAdaptive {
		ctl, err := control.New(cfg.Policy, cfg.PolicyParams, m.controlInit())
		if err != nil {
			panic(err) // Validate() in newMachine rejects unknown policies/params
		}
		m.installController(ctl)
	}
	return m
}

// NewMachineController builds a PhaseAdaptive machine driven by an
// explicitly constructed controller instead of the config's registry
// selection — the hook behind the learned-policy training pipeline, which
// wraps a registered policy's controller to observe its decisions. The
// config's own Policy/PolicyParams/PolicyBlob must be empty (the injected
// controller is the decision-maker; a config that also names one would give
// the run two conflicting identities).
func NewMachineController(src InstSource, cfg Config, ctl control.Controller) *Machine {
	if cfg.Mode != PhaseAdaptive {
		panic("core: NewMachineController requires PhaseAdaptive mode")
	}
	if cfg.Policy != "" || cfg.PolicyParams != "" || cfg.PolicyBlob != "" {
		panic("core: NewMachineController config must not also select a registry policy")
	}
	if ctl == nil {
		panic("core: NewMachineController requires a controller")
	}
	m := newMachine(src, cfg)
	m.installController(ctl)
	return m
}

// controlInit assembles the per-run construction state handed to the
// policy layer.
func (m *Machine) controlInit() control.Init {
	return control.Init{
		IntIQ:        m.cfg.IntIQ,
		FPIQ:         m.cfg.FPIQ,
		ICache:       m.cfg.ICache,
		DCache:       m.cfg.DCache,
		IQHysteresis: m.cfg.IQHysteresis,
		Blob:         m.cfg.PolicyBlob,
	}
}

// installController binds the run's decision state and the mechanism
// bookkeeping it implies (decision cadence, ILP tracking hardware).
func (m *Machine) installController(ctl control.Controller) {
	m.ctl = ctl
	m.cacheEvery = ctl.CacheInterval()
	if ctl.NeedsIQ() {
		m.tracker = queue.NewTrackerSizes(ctl.IQWindows())
	}
}

// newMachine builds the mechanism: clocks, caches, windows and pools. The
// PhaseAdaptive decision state is installed separately (installController).
func newMachine(src InstSource, cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		cfg:   cfg,
		trace: src,
		memc:  mem.New(),
		pll:   clock.NewPLL(cfg.Seed ^ 0x9e37),
		iCfg:  cfg.ICache,
		dCfg:  cfg.DCache,
		intIQ: cfg.IntIQ,
		fpIQ:  cfg.FPIQ,
	}

	// Clocks.
	if cfg.Mode == Synchronous {
		g := clock.New(clock.FrontEnd, cfg.GlobalPeriod(), uint64(cfg.Seed), cfg.JitterFrac)
		for d := 0; d < clock.NumDomains; d++ {
			m.clocks[d] = g // one shared clock: Sync() is the identity
		}
	} else {
		fePeriod := cfg.ICache.AdaptPeriod()
		if cfg.ICacheBySets {
			fePeriod = cfg.ICache.SetsPeriod()
		}
		m.clocks[clock.FrontEnd] = clock.New(clock.FrontEnd, fePeriod, uint64(cfg.Seed), cfg.JitterFrac)
		m.clocks[clock.Integer] = clock.New(clock.Integer, timing.IQPeriod(cfg.IntIQ), uint64(cfg.Seed), cfg.JitterFrac)
		m.clocks[clock.FloatingPoint] = clock.New(clock.FloatingPoint, timing.IQPeriod(cfg.FPIQ), uint64(cfg.Seed), cfg.JitterFrac)
		m.clocks[clock.LoadStore] = clock.New(clock.LoadStore, cfg.DCache.AdaptPeriod(), uint64(cfg.Seed), cfg.JitterFrac)
		m.clocks[clock.Memory] = clock.New(clock.Memory, timing.PeriodFS(MemFreqMHz), uint64(cfg.Seed), cfg.JitterFrac)
	}
	for p := 0; p < clock.NumDomains; p++ {
		for c := 0; c < clock.NumDomains; c++ {
			m.syncPaths[p][c] = clock.NewSyncPath(m.clocks[p], m.clocks[c])
		}
	}
	m.fePeriod = m.clocks[clock.FrontEnd].CurrentPeriod()
	m.lsPeriod = m.clocks[clock.LoadStore].CurrentPeriod()

	// Caches and predictor.
	if cfg.Mode == Synchronous {
		ic := timing.SyncICacheSpecs()[cfg.SyncICache]
		m.icache = cache.New(cache.Geometry{
			Name: "L1I", Sets: ic.SizeKB * 1024 / LineBytes / ic.Assoc,
			Ways: ic.Assoc, LineBytes: LineBytes,
		})
		ds := cfg.DCache.Spec()
		m.dcache = cache.New(cache.Geometry{
			Name: "L1D", Sets: ds.L1SizeKB * 1024 / LineBytes / ds.Assoc,
			Ways: ds.Assoc, LineBytes: LineBytes,
		})
		m.l2 = cache.New(cache.Geometry{
			Name: "L2", Sets: ds.L2SizeKB * 1024 / L2LineBytes / ds.Assoc,
			Ways: ds.Assoc, LineBytes: L2LineBytes,
		})
		m.syncPred = bpred.New(ic.BPred)
	} else {
		// Adaptive geometry: physically maximal, partitioned by ways; the
		// sets-resized front-end variant is direct mapped at the selected
		// set count instead.
		if cfg.ICacheBySets {
			ss := cfg.ICache.SetsSpec()
			m.icache = cache.New(cache.Geometry{Name: "L1I", Sets: ss.Sets, Ways: 1, LineBytes: LineBytes})
		} else {
			m.icache = cache.New(cache.Geometry{Name: "L1I", Sets: 16 * 1024 / LineBytes, Ways: 4, LineBytes: LineBytes})
		}
		m.dcache = cache.New(cache.Geometry{Name: "L1D", Sets: 32 * 1024 / LineBytes, Ways: 8, LineBytes: LineBytes})
		m.l2 = cache.New(cache.Geometry{Name: "L2", Sets: 256 * 1024 / L2LineBytes, Ways: 8, LineBytes: L2LineBytes})
		ab := cfg.Mode == PhaseAdaptive
		if !cfg.ICacheBySets {
			m.icache.Configure(int(cfg.ICache)+1, ab)
		}
		m.dcache.Configure(dcacheWaysA(cfg.DCache), ab)
		m.l2.Configure(dcacheWaysA(cfg.DCache), ab)
		m.bank = bpred.NewBank(cfg.ICache)
	}

	// Windows and pools.
	m.rob = newWindow(ROBEntries)
	m.fetchQ = newWindow(FetchQueueEntries)
	m.intQ = newWindow(64)
	m.fpQ = newWindow(64)
	m.lsq = newWindow(LSQEntries)
	m.intRegs = newWindow(PhysIntRegs - 32)
	m.fpRegs = newWindow(PhysFPRegs - 32)
	m.fetchBW = newWindow(1)
	m.renameBW = newWindow(DecodeWidth)
	m.intIssue = newWindow(IssueWidth)
	m.fpIssue = newWindow(IssueWidth)
	m.commitBW = newWindow(RetireWidth)
	m.dports = newWindow(DCachePorts)
	m.mshr = newWindow(MSHREntries)
	m.intFU = newFUPool(IntALUs)
	m.intMul = newFUPool(IntMulDivs)
	m.fpFU = newFUPool(FPALUs)
	m.fpMul = newFUPool(FPMulDivs)

	return m
}

// dcacheWaysA maps a Table 1 configuration to the number of A-partition
// ways in the physically 8-way adaptive caches.
func dcacheWaysA(c timing.DCacheConfig) int { return c.Spec().Assoc }

// Source returns the bound instruction source.
func (m *Machine) Source() InstSource { return m.trace }

// Clock returns a domain clock (for tests).
func (m *Machine) Clock(d clock.Domain) *clock.Clock { return m.clocks[d] }
