package core

import (
	"context"
	"reflect"
	"testing"

	"gals/internal/control"
	"gals/internal/workload"
)

const telTestWindow = 30_000

// TestTelemetryParity pins the tentpole's invisibility contract: attaching
// a telemetry sampler must not change a single simulated bit. For every
// registered adaptation policy (blob-requiring ones excluded — they need a
// trained artifact) the telemetry-on run must produce identical Stats
// (recorded reconfiguration trace included) and identical wall time, and
// the artifact's event total must reconcile exactly with Stats.Reconfigs.
func TestTelemetryParity(t *testing.T) {
	spec, ok := workload.ByName("gcc")
	if !ok {
		t.Fatal("no gcc workload")
	}
	cfgs := map[string]Config{"sync": DefaultSync(), "program": DefaultAdaptive(ProgramAdaptive)}
	for _, in := range control.Infos() {
		if in.RequiresBlob {
			continue
		}
		cfg := DefaultAdaptive(PhaseAdaptive)
		cfg.PLLScale = 0.1
		cfg.Policy = in.Name
		cfg.RecordTrace = true
		cfgs["phase/"+in.Name] = cfg
	}

	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			off := RunWorkloadParallel(spec, cfg, telTestWindow, 1)

			tel := NewTelemetry(0)
			on := RunWorkloadTelemetry(spec, cfg, telTestWindow, tel)

			if !reflect.DeepEqual(off.Stats, on.Stats) {
				t.Errorf("telemetry changed Stats:\noff %+v\non  %+v", off.Stats, on.Stats)
			}
			if off.TimeFS != on.TimeFS {
				t.Errorf("telemetry changed simulated time: off %d on %d", off.TimeFS, on.TimeFS)
			}
			if got, want := tel.EventTotal(), on.Stats.Reconfigs; got != want {
				t.Errorf("artifact holds %d events, Stats.Reconfigs = %d", got, want)
			}
			if tel.Reconfigs != on.Stats.Reconfigs || tel.Window != telTestWindow {
				t.Errorf("sealed metadata off: reconfigs %d (want %d), window %d",
					tel.Reconfigs, on.Stats.Reconfigs, tel.Window)
			}
		})
	}
}

// TestTelemetryParallelParity pins the series itself, not just the Stats:
// the sampler rides the timing stage, so every RunParallel degree must
// record the bit-identical sample and event sequence.
func TestTelemetryParallelParity(t *testing.T) {
	spec, _ := workload.ByName("gcc")
	cfg := DefaultAdaptive(PhaseAdaptive)
	cfg.PLLScale = 0.1

	seq := NewTelemetry(0)
	res := RunWorkloadTelemetry(spec, cfg, telTestWindow, seq)

	for degree := 2; degree <= 3; degree++ {
		tel := NewTelemetry(0)
		resD, err := RunWorkloadTelemetryContext(context.Background(), spec, cfg, telTestWindow, degree, tel)
		if err != nil {
			t.Fatalf("degree %d: %v", degree, err)
		}
		if !reflect.DeepEqual(res.Stats, resD.Stats) {
			t.Errorf("degree %d changed Stats", degree)
		}
		if !reflect.DeepEqual(seq.Samples, tel.Samples) {
			t.Errorf("degree %d recorded a different sample series (%d vs %d samples)",
				degree, len(tel.Samples), len(seq.Samples))
		}
		if !reflect.DeepEqual(seq.Events, tel.Events) {
			t.Errorf("degree %d recorded a different event series (%d vs %d events)",
				degree, len(tel.Events), len(seq.Events))
		}
	}
}

// TestTelemetryRingOverflow pins the bounded-ring contract: a tiny
// capacity drops the OLDEST entries (the kept window is chronological and
// ends at the run's end), counts every drop, and the event total still
// reconciles with Stats.Reconfigs.
func TestTelemetryRingOverflow(t *testing.T) {
	spec, _ := workload.ByName("gcc")
	cfg := DefaultAdaptive(PhaseAdaptive)
	cfg.PLLScale = 0.1

	full := NewTelemetry(0)
	RunWorkloadTelemetry(spec, cfg, telTestWindow, full)
	if len(full.Samples) >= DefaultTelemetryCap {
		t.Fatalf("test window overflows the default ring (%d samples): shrink it", len(full.Samples))
	}
	if full.DroppedSamples != 0 || full.DroppedEvents != 0 {
		t.Fatalf("default-cap run dropped entries: %d/%d", full.DroppedSamples, full.DroppedEvents)
	}

	const tiny = 8
	small := NewTelemetry(tiny)
	res := RunWorkloadTelemetry(spec, cfg, telTestWindow, small)

	if len(small.Samples) != tiny {
		t.Errorf("ring kept %d samples, capacity %d", len(small.Samples), tiny)
	}
	if small.DroppedSamples != int64(len(full.Samples)-tiny) {
		t.Errorf("DroppedSamples = %d, want %d", small.DroppedSamples, len(full.Samples)-tiny)
	}
	if got, want := small.EventTotal(), res.Stats.Reconfigs; got != want {
		t.Errorf("EventTotal %d != Reconfigs %d after overflow", got, want)
	}
	// The kept tail must be the chronological END of the full series.
	tail := full.Samples[len(full.Samples)-tiny:]
	if !reflect.DeepEqual(small.Samples, tail) {
		t.Errorf("overflowed ring does not hold the newest %d samples in order", tiny)
	}
	if len(small.Events) > 0 && len(full.Events) >= len(small.Events) {
		wantEvents := full.Events[len(full.Events)-len(small.Events):]
		if !reflect.DeepEqual(small.Events, wantEvents) {
			t.Errorf("overflowed event ring does not hold the newest events in order")
		}
	}
}

// TestTelemetryDirectionAccounting cross-checks the per-direction process
// counters against the artifact: the delta the run contributed must match
// the artifact's per-structure/direction event counts exactly.
func TestTelemetryDirectionAccounting(t *testing.T) {
	spec, _ := workload.ByName("gcc")
	cfg := DefaultAdaptive(PhaseAdaptive)
	cfg.PLLScale = 0.1

	before := ReconfigEventsByCell()
	tel := NewTelemetry(0)
	res := RunWorkloadTelemetry(spec, cfg, telTestWindow, tel)
	after := ReconfigEventsByCell()

	if res.Stats.Reconfigs == 0 {
		t.Fatal("phase-adaptive gcc run committed no reconfigurations; the cross-check is vacuous")
	}
	var deltaTotal int64
	fromArtifact := map[ReconfigCell]int64{}
	for _, ev := range tel.Events {
		fromArtifact[ReconfigCell{Structure: ev.Structure, Direction: ev.Direction}]++
	}
	for cell, n := range after {
		if d := n - before[cell]; d != 0 {
			deltaTotal += d
			if fromArtifact[cell] != d {
				t.Errorf("cell %+v: process counter delta %d, artifact holds %d", cell, d, fromArtifact[cell])
			}
		}
	}
	if deltaTotal != res.Stats.Reconfigs {
		t.Errorf("process counters gained %d events, Stats.Reconfigs = %d", deltaTotal, res.Stats.Reconfigs)
	}
}
