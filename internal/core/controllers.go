package core

import (
	"fmt"

	"gals/internal/cache"
	"gals/internal/clock"
	"gals/internal/timing"
	"gals/internal/workload"
)

// lockTime draws one PLL lock duration, scaled for shortened simulation
// windows (Config.PLLScale).
func (m *Machine) lockTime() timing.FS {
	d := m.pll.LockTime()
	scale := m.cfg.PLLScale
	if scale <= 0 {
		scale = 1
	}
	return timing.FS(float64(d) * scale)
}

// applyPending commits any reconfigurations whose PLL lock completed before
// the pipeline's current position.
func (m *Machine) applyPending() {
	now := m.lastCommit
	if p := m.pendingFE; p != nil && now >= p.at {
		m.iCfg = timing.ICacheConfig(p.final)
		m.icache.Configure(p.final+1, true)
		m.bank.SetActive(m.iCfg)
		m.fePeriod = m.clocks[clock.FrontEnd].CurrentPeriod()
		m.pendingFE = nil
	}
	if p := m.pendingLS; p != nil && now >= p.at {
		m.dCfg = timing.DCacheConfig(p.final)
		ways := dcacheWaysA(m.dCfg)
		m.dcache.Configure(ways, true)
		m.l2.Configure(ways, true)
		m.lsPeriod = m.clocks[clock.LoadStore].CurrentPeriod()
		m.pendingLS = nil
	}
	if p := m.pendingIntIQ; p != nil && now >= p.at {
		m.intIQ = p.final
		m.pendingIntIQ = nil
	}
	if p := m.pendingFPIQ; p != nil && now >= p.at {
		m.fpIQ = p.final
		m.pendingFPIQ = nil
	}
}

// record notes a reconfiguration event for Figure 7 traces.
func (m *Machine) record(kind reconfigKind, label string, index int) {
	m.stats.Reconfigs++
	if !m.cfg.RecordTrace {
		return
	}
	names := [...]string{"dcache", "icache", "int-iq", "fp-iq"}
	m.stats.ReconfigEvents = append(m.stats.ReconfigEvents, ReconfigEvent{
		Instr:  m.count,
		Kind:   names[kind],
		Config: label,
		Index:  index,
	})
}

// cacheDecide runs the Accounting Cache interval decision (Section 3.1)
// for the front end and the load/store pair, at commit time `now`.
func (m *Machine) cacheDecide(now timing.FS) {
	m.decideICache(now)
	m.decideDCache(now)
	m.icache.ResetStats()
	m.dcache.ResetStats()
	m.l2.ResetStats()
}

// decideICache picks the front-end configuration minimizing modeled access
// cost over the interval just ended.
func (m *Machine) decideICache(now timing.FS) {
	if m.pendingFE != nil {
		return // a change is already in flight
	}
	stats := m.icache.Stats()
	if stats.Accesses == 0 {
		return
	}
	// Miss service estimate: L2 A access plus a round trip of domain
	// crossings at current frequencies.
	missPenalty := timing.FS(m.dCfg.Spec().L2ALat)*m.lsPeriod + m.fePeriod + m.lsPeriod

	best, bestCost := m.iCfg, timing.FS(1<<62)
	for _, cand := range timing.ICacheConfigs() {
		spec := cand.Spec()
		aH, bH, miss := stats.Reconstruct(int(cand)+1, true)
		cost := cache.Cost(aH, bH, miss, cand != timing.ICache64K4W, cache.CostParams{
			ALat: spec.ALat, BLat: spec.BLat,
			Period:      cand.AdaptPeriod(),
			MissPenalty: missPenalty,
		})
		if cost < bestCost {
			best, bestCost = cand, cost
		}
	}
	if best == m.iCfg {
		return
	}
	// Run the simpler (smaller) configuration during the PLL lock:
	// downsize at the start when speeding up, upsize at the end when
	// slowing down (Section 3.1).
	trans := best
	if m.iCfg < trans {
		trans = m.iCfg
	}
	m.icache.Configure(int(trans)+1, true)
	m.bank.SetActive(trans)
	lockDone := now + m.lockTime()
	m.clocks[clock.FrontEnd].SetPeriodAt(lockDone, best.AdaptPeriod())
	m.pendingFE = &pendingReconfig{at: lockDone, final: int(best)}
	m.record(reconfigICache, best.String(), int(best))
}

// decideDCache picks the joint L1-D/L2 configuration minimizing the
// combined modeled access cost.
func (m *Machine) decideDCache(now timing.FS) {
	if m.pendingLS != nil {
		return
	}
	l1 := m.dcache.Stats()
	l2 := m.l2.Stats()
	if l1.Accesses == 0 {
		return
	}
	_, _, curMiss := l1.Reconstruct(dcacheWaysA(m.dCfg), true)

	memPenalty := timing.MemLatency(L2LineBytes) + 2*m.lsPeriod

	best, bestCost := m.dCfg, timing.FS(1<<62)
	for _, cand := range timing.DCacheConfigs() {
		spec := cand.Spec()
		ways := dcacheWaysA(cand)
		period := cand.AdaptPeriod()
		hasB := cand != timing.DCache256K8W

		a1, b1, miss1 := l1.Reconstruct(ways, hasB)
		cost := cache.Cost(a1, b1, miss1, hasB, cache.CostParams{
			ALat: spec.L1ALat, BLat: spec.L1BLat, Period: period,
		})

		// The L2 counters were collected under the current configuration's
		// L1 miss stream; scale them to the candidate's L1 miss rate.
		a2, b2, miss2 := l2.Reconstruct(ways, hasB)
		if curMiss > 0 {
			f := float64(miss1) / float64(curMiss)
			a2 = uint64(float64(a2) * f)
			b2 = uint64(float64(b2) * f)
			miss2 = uint64(float64(miss2) * f)
		}
		cost += cache.Cost(a2, b2, miss2, hasB, cache.CostParams{
			ALat: spec.L2ALat, BLat: spec.L2BLat, Period: period,
			MissPenalty: memPenalty,
		})
		if cost < bestCost {
			best, bestCost = cand, cost
		}
	}
	if best == m.dCfg {
		return
	}
	trans := best
	if m.dCfg < trans {
		trans = m.dCfg
	}
	ways := dcacheWaysA(trans)
	m.dcache.Configure(ways, true)
	m.l2.Configure(ways, true)
	lockDone := now + m.lockTime()
	m.clocks[clock.LoadStore].SetPeriodAt(lockDone, best.AdaptPeriod())
	m.pendingLS = &pendingReconfig{at: lockDone, final: int(best)}
	m.record(reconfigDCache, best.String(), int(best))
}

// iqDecide feeds a completed ILP-tracking interval to both issue-queue
// controllers (Section 3.2), at rename time `now`.
func (m *Machine) iqDecide(now timing.FS) {
	samples := m.tracker.Samples()

	if m.pendingIntIQ == nil {
		if size, resize := m.intCtl.Decide(samples); resize {
			trans := size
			if m.intIQ < trans {
				trans = m.intIQ
			}
			m.intIQ = trans
			lockDone := now + m.lockTime()
			m.clocks[clock.Integer].SetPeriodAt(lockDone, timing.IQPeriod(size))
			m.pendingIntIQ = &pendingIQ{at: lockDone, final: size}
			m.record(reconfigIntIQ, fmt.Sprintf("%d", size), timing.IQIndex(size))
		}
	}
	if m.pendingFPIQ == nil {
		if size, resize := m.fpCtl.Decide(samples); resize {
			trans := size
			if m.fpIQ < trans {
				trans = m.fpIQ
			}
			m.fpIQ = trans
			lockDone := now + m.lockTime()
			m.clocks[clock.FloatingPoint].SetPeriodAt(lockDone, timing.IQPeriod(size))
			m.pendingFPIQ = &pendingIQ{at: lockDone, final: size}
			m.record(reconfigFPIQ, fmt.Sprintf("%d", size), timing.IQIndex(size))
		}
	}
}

// RunWorkload builds a machine for spec and cfg and runs a window of n
// instructions on a live trace.
func RunWorkload(spec workload.Spec, cfg Config, n int64) *Result {
	return NewMachine(spec, cfg).Run(n)
}

// RunSource builds a machine for cfg over an existing instruction source (a
// live trace or a recorded replay) and runs a window of n instructions.
// Replaying a recording produces a Result bit-identical to RunWorkload on
// the same spec and configuration.
func RunSource(src InstSource, cfg Config, n int64) *Result {
	return NewMachineSource(src, cfg).Run(n)
}
