// Reconfiguration mechanism (paper Section 3.3). The decisions themselves —
// which configuration each domain moves to — live in the pluggable policy
// layer (internal/control); the machine snapshots per-domain observations at
// interval boundaries, hands them to the run's controller, and commits the
// returned actions: the simpler of (current, target) configuration runs
// during the PLL lock, the domain clock switches at lock completion, and
// applyPending installs the final configuration once the pipeline passes
// that time.
package core

import (
	"context"
	"fmt"

	"gals/internal/clock"
	"gals/internal/control"
	"gals/internal/queue"
	"gals/internal/timing"
	"gals/internal/workload"
)

// lockTime draws one PLL lock duration, scaled for shortened simulation
// windows (Config.PLLScale).
func (m *Machine) lockTime() timing.FS {
	d := m.pll.LockTime()
	scale := m.cfg.PLLScale
	if scale <= 0 {
		scale = 1
	}
	return timing.FS(float64(d) * scale)
}

// applyPending commits any reconfigurations whose PLL lock completed before
// the pipeline's current position.
func (m *Machine) applyPending() {
	now := m.lastCommit
	if p := m.pendingFE; p != nil && now >= p.at {
		m.iCfg = timing.ICacheConfig(p.final)
		m.configureI(p.final+1, true)
		m.bank.SetActive(m.iCfg)
		m.fePeriod = m.clocks[clock.FrontEnd].CurrentPeriod()
		m.pendingFE = nil
	}
	if p := m.pendingLS; p != nil && now >= p.at {
		m.dCfg = timing.DCacheConfig(p.final)
		m.configureD(dcacheWaysA(m.dCfg), true)
		m.lsPeriod = m.clocks[clock.LoadStore].CurrentPeriod()
		m.pendingLS = nil
	}
	if p := m.pendingIntIQ; p != nil && now >= p.at {
		m.intIQ = p.final
		m.pendingIntIQ = nil
	}
	if p := m.pendingFPIQ; p != nil && now >= p.at {
		m.fpIQ = p.final
		m.pendingFPIQ = nil
	}
}

// reconfigNames names the resized structures, indexed by reconfigKind.
var reconfigNames = [...]string{"dcache", "icache", "int-iq", "fp-iq"}

// record notes a reconfiguration event: the run's Stats counter, the
// per-direction fold for the process-wide metric, the telemetry event when
// a sampler is attached, and the Figure 7 trace when requested. from is the
// structure's configuration index before this decision.
func (m *Machine) record(kind reconfigKind, label string, index, from int) {
	m.stats.Reconfigs++
	m.dirCounts[kind][directionIndex(from, index)]++
	if t := m.tel; t != nil {
		t.noteReconfig(m, reconfigNames[kind], label, index, from)
	}
	if !m.cfg.RecordTrace {
		return
	}
	m.stats.ReconfigEvents = append(m.stats.ReconfigEvents, ReconfigEvent{
		Instr:  m.count,
		Kind:   reconfigNames[kind],
		Config: label,
		Index:  index,
	})
}

// configureI applies an I-cache partitioning: directly in sequential mode,
// onto the timing stage's shadow configuration in parallel mode (the cache
// object belongs to the functional stage for the duration of the run).
func (m *Machine) configureI(waysA int, b bool) {
	if p := m.par; p != nil {
		p.setI(waysA, b)
		return
	}
	m.icache.Configure(waysA, b)
}

// configureD applies the paired L1-D/L2 partitioning; see configureI.
func (m *Machine) configureD(waysA int, b bool) {
	if p := m.par; p != nil {
		p.setD(waysA, b)
		return
	}
	m.dcache.Configure(waysA, b)
	m.l2.Configure(waysA, b)
}

// cacheDecide snapshots one completed accounting interval (Section 3.1),
// lets the policy decide, commits the decisions at commit time `now`, and
// resets the interval statistics.
func (m *Machine) cacheDecide(now timing.FS) {
	st := parStats{i: m.icache.Stats(), d: m.dcache.Stats(), l2: m.l2.Stats()}
	m.cacheDecideStats(now, &st)
	m.icache.ResetStats()
	m.dcache.ResetStats()
	m.l2.ResetStats()
}

// cacheDecideStats is cacheDecide on an already-taken statistics snapshot —
// the form the parallel machine uses, where the snapshot and reset happened
// on the functional stage at this exact instruction.
func (m *Machine) cacheDecideStats(now timing.FS, st *parStats) {
	if t := m.tel; t != nil {
		t.noteCacheInterval(m, st)
	}
	obs := control.CacheObs{
		ICache:      st.i,
		DCacheL1:    st.d,
		L2:          st.l2,
		ICfg:        m.iCfg,
		DCfg:        m.dCfg,
		FEPeriod:    m.fePeriod,
		LSPeriod:    m.lsPeriod,
		FEPending:   m.pendingFE != nil,
		LSPending:   m.pendingLS != nil,
		L2LineBytes: L2LineBytes,
	}
	for _, a := range m.ctl.DecideCaches(obs, m.actBuf[:0]) {
		m.commitReconfig(a, now)
	}
}

// iqDecide hands a completed ILP-tracking interval (Section 3.2) to the
// policy and commits its resizes, at rename time `now`.
func (m *Machine) iqDecide(now timing.FS) {
	m.iqDecideSamples(now, m.tracker.Samples())
}

// iqDecideSamples is iqDecide on explicitly provided samples — the form the
// parallel machine uses, where the tracker ran on the functional stage.
func (m *Machine) iqDecideSamples(now timing.FS, samples [4]queue.Sample) {
	if t := m.tel; t != nil {
		t.noteIQInterval(m, samples)
	}
	obs := control.IQObs{
		Samples:    samples,
		IntIQ:      m.intIQ,
		FPIQ:       m.fpIQ,
		IntPending: m.pendingIntIQ != nil,
		FPPending:  m.pendingFPIQ != nil,
	}
	for _, a := range m.ctl.DecideIQs(obs, m.actBuf[:0]) {
		m.commitReconfig(a, now)
	}
}

// commitReconfig initiates one policy decision: the transitional (simpler)
// configuration takes effect immediately, the domain clock is scheduled to
// switch when the PLL locks, and applyPending finalizes. A decision for a
// domain whose previous change is still locking is dropped — SetPeriodAt
// cannot rewrite scheduled clock history — and an out-of-range target is a
// policy bug, reported by panic.
func (m *Machine) commitReconfig(a control.Reconfig, now timing.FS) {
	switch a.Kind {
	case control.ICache:
		if m.pendingFE != nil {
			return
		}
		if a.Target < 0 || a.Target >= timing.NumICacheConfigs {
			panic(fmt.Sprintf("core: policy %q targets i-cache config %d", m.cfg.Policy, a.Target))
		}
		best := timing.ICacheConfig(a.Target)
		from := int(m.iCfg)
		trans := best
		if m.iCfg < trans {
			trans = m.iCfg
		}
		// Run the simpler (smaller) configuration during the PLL lock:
		// downsize at the start when speeding up, upsize at the end when
		// slowing down (Section 3.1).
		m.configureI(int(trans)+1, true)
		m.bank.SetActive(trans)
		lockDone := now + m.lockTime()
		m.clocks[clock.FrontEnd].SetPeriodAt(lockDone, best.AdaptPeriod())
		m.pendingFE = &pendingReconfig{at: lockDone, final: int(best)}
		m.record(reconfigICache, best.String(), int(best), from)

	case control.DCache:
		if m.pendingLS != nil {
			return
		}
		if a.Target < 0 || a.Target >= timing.NumDCacheConfigs {
			panic(fmt.Sprintf("core: policy %q targets d-cache config %d", m.cfg.Policy, a.Target))
		}
		best := timing.DCacheConfig(a.Target)
		from := int(m.dCfg)
		trans := best
		if m.dCfg < trans {
			trans = m.dCfg
		}
		m.configureD(dcacheWaysA(trans), true)
		lockDone := now + m.lockTime()
		m.clocks[clock.LoadStore].SetPeriodAt(lockDone, best.AdaptPeriod())
		m.pendingLS = &pendingReconfig{at: lockDone, final: int(best)}
		m.record(reconfigDCache, best.String(), int(best), from)

	case control.IntIQ:
		if m.pendingIntIQ != nil {
			return
		}
		size := timing.IQSize(a.Target)
		from := timing.IQIndex(m.intIQ)
		trans := size
		if m.intIQ < trans {
			trans = m.intIQ
		}
		m.intIQ = trans
		lockDone := now + m.lockTime()
		m.clocks[clock.Integer].SetPeriodAt(lockDone, timing.IQPeriod(size))
		m.pendingIntIQ = &pendingIQ{at: lockDone, final: size}
		m.record(reconfigIntIQ, fmt.Sprintf("%d", size), timing.IQIndex(size), from)

	case control.FPIQ:
		if m.pendingFPIQ != nil {
			return
		}
		size := timing.IQSize(a.Target)
		from := timing.IQIndex(m.fpIQ)
		trans := size
		if m.fpIQ < trans {
			trans = m.fpIQ
		}
		m.fpIQ = trans
		lockDone := now + m.lockTime()
		m.clocks[clock.FloatingPoint].SetPeriodAt(lockDone, timing.IQPeriod(size))
		m.pendingFPIQ = &pendingIQ{at: lockDone, final: size}
		m.record(reconfigFPIQ, fmt.Sprintf("%d", size), timing.IQIndex(size), from)

	default:
		panic(fmt.Sprintf("core: policy %q returned unknown reconfig kind %d", m.cfg.Policy, a.Kind))
	}
}

// RunWorkload builds a machine for spec and cfg and runs a window of n
// instructions on a live trace.
func RunWorkload(spec workload.Spec, cfg Config, n int64) *Result {
	return NewMachine(spec, cfg).Run(n)
}

// RunSource builds a machine for cfg over an existing instruction source (a
// live trace or a recorded replay) and runs a window of n instructions.
// Replaying a recording produces a Result bit-identical to RunWorkload on
// the same spec and configuration.
func RunSource(src InstSource, cfg Config, n int64) *Result {
	return NewMachineSource(src, cfg).Run(n)
}

// RunWorkloadContext is RunWorkload with cooperative cancellation; see
// Machine.RunContext for the contract.
func RunWorkloadContext(ctx context.Context, spec workload.Spec, cfg Config, n int64) (*Result, error) {
	return NewMachine(spec, cfg).RunContext(ctx, n)
}

// RunSourceContext is RunSource with cooperative cancellation; see
// Machine.RunContext for the contract.
func RunSourceContext(ctx context.Context, src InstSource, cfg Config, n int64) (*Result, error) {
	return NewMachineSource(src, cfg).RunContext(ctx, n)
}
