package core

import (
	"testing"

	"gals/internal/timing"
)

// linearFUPool is the pre-free-list implementation, kept as the benchmark
// baseline: an unconditional argmin scan over unit availability.
type linearFUPool struct {
	avail []timing.FS
}

func (f *linearFUPool) acquire(t timing.FS, busy func(start timing.FS) timing.FS) timing.FS {
	best := 0
	for i := 1; i < len(f.avail); i++ {
		if f.avail[i] < f.avail[best] {
			best = i
		}
	}
	start := t
	if f.avail[best] > start {
		start = f.avail[best]
	}
	f.avail[best] = busy(start)
	return start
}

// TestFUPoolFreeListMatchesScan pins the free-list fast path to the linear
// scan: identical start times and identical unit bookkeeping through the
// cold (free units remain) and warm (all booked) regimes, including
// non-monotonic acquire times.
func TestFUPoolFreeListMatchesScan(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		a := newFUPool(n)
		b := &linearFUPool{avail: make([]timing.FS, n)}
		ts := []timing.FS{0, 3, 1, 7, 7, 2, 40, 12, 13, 99, 5, 100, 101, 250, 60}
		for i, at := range ts {
			busy := func(s timing.FS) timing.FS { return s + 5 }
			ga, gb := a.acquire(at, busy), b.acquire(at, busy)
			if ga != gb {
				t.Fatalf("n=%d step %d: free-list start %d, scan start %d", n, i, ga, gb)
			}
			for u := range a.avail {
				if a.avail[u] != b.avail[u] {
					t.Fatalf("n=%d step %d: unit %d avail diverged (%d vs %d)", n, i, u, a.avail[u], b.avail[u])
				}
			}
		}
	}
}

var sinkFS timing.FS

// BenchmarkFUPoolAcquire compares the bitmask free-list against the linear
// scan in both regimes. "cold" re-creates the pool every width acquires, so
// every call takes the TrailingZeros64 path (the regime of the 1-wide
// mul/div pools on integer-heavy workloads, and of every pool at run
// start); "warm" saturates the pool first, so every call falls through to
// the exact argmin scan (the steady-state ALU-pool regime — the free-list
// costs one branch there).
func BenchmarkFUPoolAcquire(b *testing.B) {
	const width = 4
	busy := func(s timing.FS) timing.FS { return s + 3 }

	b.Run("freelist/cold", func(b *testing.B) {
		p := newFUPool(width)
		for i := 0; i < b.N; i++ {
			if i%width == 0 {
				p.free = (1 << width) - 1
				for u := range p.avail {
					p.avail[u] = 0
				}
			}
			sinkFS = p.acquire(timing.FS(i), busy)
		}
	})
	b.Run("linear/cold", func(b *testing.B) {
		p := &linearFUPool{avail: make([]timing.FS, width)}
		for i := 0; i < b.N; i++ {
			if i%width == 0 {
				for u := range p.avail {
					p.avail[u] = 0
				}
			}
			sinkFS = p.acquire(timing.FS(i), busy)
		}
	})
	b.Run("freelist/warm", func(b *testing.B) {
		p := newFUPool(width)
		for u := 0; u < width; u++ {
			p.acquire(0, busy)
		}
		for i := 0; i < b.N; i++ {
			sinkFS = p.acquire(timing.FS(i), busy)
		}
	})
	b.Run("linear/warm", func(b *testing.B) {
		p := &linearFUPool{avail: make([]timing.FS, width)}
		for u := 0; u < width; u++ {
			p.acquire(0, busy)
		}
		for i := 0; i < b.N; i++ {
			sinkFS = p.acquire(timing.FS(i), busy)
		}
	})
}
