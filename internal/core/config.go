// Package core implements the adaptive GALS (MCD) processor model: a
// trace-driven, cycle-level timing simulator with four independently
// clocked domains plus fixed-frequency main memory, resizable structures in
// every domain, inter-domain synchronization costs, and the paper's
// Program-Adaptive and Phase-Adaptive control modes (paper Sections 2-3).
//
// The pipeline model is a one-pass timestamp simulation: each dynamic
// instruction's lifecycle times (fetch, rename, issue, complete, commit)
// are computed from dependence, resource-window, bandwidth and latency
// constraints, every event quantized to the owning domain's clock edges.
// This style processes each instruction exactly once, making the exhaustive
// design-space sweeps of Section 4 tractable while preserving the relative
// timing behaviour the paper's conclusions rest on.
package core

import (
	"fmt"

	"gals/internal/control"
	"gals/internal/timing"
)

// Mode selects the machine organization under test.
type Mode int

const (
	// Synchronous is a fully synchronous processor: one global clock at
	// the slowest structure's frequency, optimized (non-resizable)
	// structures from Tables 1 and 3, and the shorter mispredict penalty.
	Synchronous Mode = iota
	// ProgramAdaptive is the adaptive MCD machine locked to one
	// configuration for the whole run (chosen offline by exhaustive
	// search, Section 4); caches run A-only.
	ProgramAdaptive
	// PhaseAdaptive is the adaptive MCD machine with the on-line
	// controllers of Section 3 enabled: Accounting Caches in A/B mode and
	// ILP-tracked issue queues, reconfiguring at run time.
	PhaseAdaptive
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Synchronous:
		return "synchronous"
	case ProgramAdaptive:
		return "program-adaptive"
	case PhaseAdaptive:
		return "phase-adaptive"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Fixed microarchitectural parameters (paper Table 5).
const (
	FetchQueueEntries = 16
	DecodeWidth       = 8
	IssueWidth        = 6
	RetireWidth       = 11
	LSQEntries        = 64
	PhysIntRegs       = 96
	PhysFPRegs        = 96
	ROBEntries        = 256

	IntALUs    = 4
	IntMulDivs = 1
	FPALUs     = 4
	FPMulDivs  = 1

	// Mispredict penalties: front-end + integer cycles (Table 5). The
	// adaptive machine is over-pipelined at its lower frequencies and
	// pays one extra front-end and two extra integer cycles.
	SyncMispredictFE   = 9
	SyncMispredictInt  = 7
	AdaptMispredictFE  = 10
	AdaptMispredictInt = 9

	// frontDepth is the fetch-to-dispatch latency in front-end cycles
	// (steady-state fill only; refill after flushes is charged through
	// the mispredict penalty).
	frontDepth = 2

	// DCachePorts is the number of L1-D accesses per load/store cycle.
	DCachePorts = 2
	// MSHREntries bounds outstanding misses (memory-level parallelism).
	MSHREntries = 8

	// CacheIntervalInstrs is the paper's Accounting Cache decision interval
	// (Section 3.1: every 15K instructions). The machine no longer hard-wires
	// it — the run's policy sets the cadence — but the "paper" and "interval"
	// defaults resolve to this value.
	CacheIntervalInstrs = control.PaperCacheInterval

	// MemFreqMHz is the fixed frequency of the memory interface domain.
	MemFreqMHz = 1000

	// LineBytes is the L1 line size; L2LineBytes the L2 line size.
	LineBytes   = 64
	L2LineBytes = 128
)

// Config selects one machine point. The zero value is not valid; start
// from DefaultSync or DefaultAdaptive.
type Config struct {
	// Mode picks the organization.
	Mode Mode

	// SyncICache indexes timing.SyncICacheSpecs() (Table 3) and is used
	// only in Synchronous mode.
	SyncICache int
	// ICache is the adaptive front-end configuration (Table 2), used in
	// the adaptive modes (initial configuration for PhaseAdaptive).
	ICache timing.ICacheConfig
	// ICacheBySets selects the sets-resized (always direct-mapped) front
	// end of the paper's Section 7 future work instead of the ways-based
	// Table 2 design. ICache then selects the size class. Supported in
	// ProgramAdaptive mode (the Accounting Cache's exploration-free
	// statistics do not extend to index-changing resizes, so the
	// PhaseAdaptive front-end controller requires the ways-based design).
	ICacheBySets bool
	// DCache is the joint L1-D/L2 configuration (Table 1). In
	// Synchronous mode the optimal organization of the same shape is
	// used; in adaptive modes the adaptive organization.
	DCache timing.DCacheConfig
	// IntIQ and FPIQ are the issue queue sizes (initial sizes for
	// PhaseAdaptive).
	IntIQ, FPIQ timing.IQSize

	// Seed drives the PLL lock-time draw and clock jitter.
	Seed int64
	// JitterFrac is the per-edge clock jitter as a fraction of the
	// period (0 disables).
	JitterFrac float64
	// PLLScale scales the PLL lock-time distribution. The paper's 10-20us
	// lock times suit its 100M-instruction windows; scaled-down windows
	// (Section 4 of DESIGN.md) scale the lock proportionally. 0 means 1.0.
	PLLScale float64
	// IQHysteresis is the number of consecutive agreeing ILP intervals
	// required before an issue queue resize (PhaseAdaptive); 0 means 1.
	IQHysteresis int
	// DisableCacheAdapt and DisableIQAdapt freeze the respective
	// controllers in PhaseAdaptive mode (for ablation studies).
	DisableCacheAdapt bool
	DisableIQAdapt    bool
	// RecordTrace enables reconfiguration-event recording (Figure 7).
	RecordTrace bool

	// Policy names the adaptation policy driving PhaseAdaptive
	// reconfiguration decisions; "" selects "paper", the exact Section 3
	// controllers. See internal/control for the registry ("paper",
	// "interval", "frozen", "feedback", plus "learned" from internal/learn)
	// and gals.Policies for discovery. Valid only in PhaseAdaptive mode —
	// the other modes take no decisions.
	Policy string
	// PolicyParams parameterizes the policy as "key=value[,key=value...]"
	// (e.g. "interval=7500,hysteresis=1" for the "interval" policy).
	// Omitted keys take the policy's declared defaults.
	PolicyParams string
	// PolicyBlob is the structured artifact of policies whose state is not
	// expressible as flat floats — the "learned" policy's trained weights,
	// produced by the training pipeline (internal/learn, galsim
	// -train-policy) and persisted as a sidecar entry in the result cache.
	// Its canonical digest (control.BlobDigest) is part of every cache and
	// memo key a config reaches, so two runs share an entry only when they
	// agree on the exact artifact bytes.
	PolicyBlob string `json:",omitempty"`
}

// WithPolicy returns a copy of c selecting the named adaptation policy with
// the given "key=value,..." parameters (both may be empty for the paper
// defaults). The copy still needs Validate before use.
func (c Config) WithPolicy(name, params string) Config {
	c.Policy, c.PolicyParams = name, params
	return c
}

// DefaultSync returns the best-overall fully synchronous configuration
// found by this reproduction's design-space sweep: 16-entry queues and a
// 64KB direct-mapped I-cache as in the paper (Section 4), with the
// 64KB/512KB 2-way cache hierarchy — one step above the paper's 32KB/256KB
// direct-mapped pair; the global clock (1.21 GHz, set by the I-cache) is
// identical either way. See EXPERIMENTS.md for the deviation note.
func DefaultSync() Config {
	idx, _ := timing.SyncICacheIndexByName("64k1W")
	return Config{
		Mode:       Synchronous,
		SyncICache: idx,
		DCache:     timing.DCache64K2W,
		IntIQ:      timing.IQ16,
		FPIQ:       timing.IQ16,
		Seed:       42,
	}
}

// DefaultAdaptive returns the adaptive MCD base configuration: every
// structure at its smallest size and highest clock rate (Section 2).
func DefaultAdaptive(mode Mode) Config {
	if mode == Synchronous {
		panic("core: DefaultAdaptive requires an adaptive mode")
	}
	return Config{
		Mode:   mode,
		ICache: timing.ICache16K1W,
		DCache: timing.DCache32K1W,
		IntIQ:  timing.IQ16,
		FPIQ:   timing.IQ16,
		Seed:   42,
	}
}

// GlobalPeriod returns the single clock period of a Synchronous config:
// the slowest of its structures' optimal organizations.
func (c Config) GlobalPeriod() timing.FS {
	if c.Mode != Synchronous {
		panic("core: GlobalPeriod on non-synchronous config")
	}
	f := timing.SyncICacheSpecs()[c.SyncICache].MHz
	if d := c.DCache.Spec().OptimalMHz; d < f {
		f = d
	}
	if q := timing.IQFreqMHz(int(c.IntIQ)); q < f {
		f = q
	}
	if q := timing.IQFreqMHz(int(c.FPIQ)); q < f {
		f = q
	}
	return timing.PeriodFS(f)
}

// Label returns a compact description of the configuration for tables.
func (c Config) Label() string {
	switch c.Mode {
	case Synchronous:
		return fmt.Sprintf("sync[i$=%s d$=%s iq=%d fq=%d]",
			timing.SyncICacheSpecs()[c.SyncICache].Name, c.DCache, c.IntIQ, c.FPIQ)
	default:
		ic := c.ICache.String()
		if c.ICacheBySets {
			ic = c.ICache.SetsSpec().Name
		}
		pol := ""
		if p := c.policyLabel(); p != "" {
			pol = " pol=" + p
		}
		return fmt.Sprintf("%s[i$=%s d$=%s iq=%d fq=%d%s]", c.Mode, ic, c.DCache, c.IntIQ, c.FPIQ, pol)
	}
}

// policyLabel renders the non-default policy selection for Label: "" for
// the default paper controllers (so pre-existing labels are unchanged),
// otherwise the name with any explicit parameters in braces and, for
// blob-carrying policies, a short artifact digest — two learned machines
// with different weights must label differently.
func (c Config) policyLabel() string {
	name := c.Policy
	if (name == "" || name == control.DefaultPolicy) && c.PolicyParams == "" && c.PolicyBlob == "" {
		return ""
	}
	if name == "" {
		name = control.DefaultPolicy
	}
	if c.PolicyParams != "" {
		name += "{" + c.PolicyParams + "}"
	}
	if c.PolicyBlob != "" {
		name += "#" + control.BlobDigest(c.PolicyBlob)[:8]
	}
	return name
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Mode == Synchronous {
		if c.SyncICache < 0 || c.SyncICache >= len(timing.SyncICacheSpecs()) {
			return fmt.Errorf("core: sync i-cache index %d out of range", c.SyncICache)
		}
	} else {
		if c.ICache < 0 || int(c.ICache) >= timing.NumICacheConfigs {
			return fmt.Errorf("core: i-cache config %d out of range", c.ICache)
		}
		if c.ICacheBySets && c.Mode == PhaseAdaptive {
			return fmt.Errorf("core: sets-resized i-cache requires ProgramAdaptive mode")
		}
	}
	if c.DCache < 0 || int(c.DCache) >= timing.NumDCacheConfigs {
		return fmt.Errorf("core: d-cache config %d out of range", c.DCache)
	}
	for _, s := range []timing.IQSize{c.IntIQ, c.FPIQ} {
		switch s {
		case timing.IQ16, timing.IQ32, timing.IQ48, timing.IQ64:
		default:
			return fmt.Errorf("core: issue queue size %d invalid", s)
		}
	}
	if c.Mode == PhaseAdaptive {
		if err := control.ValidateSelection(c.Policy, c.PolicyParams, c.PolicyBlob); err != nil {
			return err
		}
	} else if c.Policy != "" || c.PolicyParams != "" || c.PolicyBlob != "" {
		return fmt.Errorf("core: adaptation policy %q set on %s config (policies decide only in PhaseAdaptive mode)", c.Policy, c.Mode)
	}
	return nil
}
