package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gals/internal/clock"
	"gals/internal/isa"
	"gals/internal/timing"
	"gals/internal/workload"
)

const testWindow = 20_000

func bench(t *testing.T, name string) workload.Spec {
	t.Helper()
	s, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("missing benchmark %q", name)
	}
	return s
}

func phaseCfg() Config {
	cfg := DefaultAdaptive(PhaseAdaptive)
	cfg.PLLScale = 0.1
	return cfg
}

func TestWindowFloorSemantics(t *testing.T) {
	w := newWindow(4)
	if w.floor(4) != 0 {
		t.Error("empty window floor not 0")
	}
	for i := 1; i <= 6; i++ {
		w.push(timing.FS(i * 100))
	}
	// 4 pushes ago (of 6) is value 300.
	if got := w.floor(4); got != 300 {
		t.Errorf("floor(4) = %d, want 300", got)
	}
	if got := w.floor(2); got != 500 {
		t.Errorf("floor(2) = %d, want 500", got)
	}
}

func TestWindowFloorProperty(t *testing.T) {
	// floor(n) equals the value pushed n pushes ago, for any push pattern.
	f := func(vals []int16, n uint8) bool {
		depth := int(n%8) + 1
		w := newWindow(8)
		var history []timing.FS
		for _, v := range vals {
			tv := timing.FS(v)
			w.push(tv)
			history = append(history, tv)
		}
		want := timing.FS(0)
		if len(history) >= depth {
			want = history[len(history)-depth]
		}
		return w.floor(depth) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFUPoolPicksEarliest(t *testing.T) {
	p := newFUPool(2)
	busy := func(until timing.FS) func(timing.FS) timing.FS {
		return func(s timing.FS) timing.FS { return s + until }
	}
	s1 := p.acquire(100, busy(50))
	s2 := p.acquire(100, busy(50))
	if s1 != 100 || s2 != 100 {
		t.Fatalf("two units should both start at 100: got %d, %d", s1, s2)
	}
	// Both busy until 150: a third op waits.
	if s3 := p.acquire(100, busy(50)); s3 != 150 {
		t.Errorf("third op started at %d, want 150", s3)
	}
}

func TestRunDeterministic(t *testing.T) {
	spec := bench(t, "gcc")
	for _, cfg := range []Config{DefaultSync(), DefaultAdaptive(ProgramAdaptive), phaseCfg()} {
		a := RunWorkload(spec, cfg, testWindow)
		b := RunWorkload(spec, cfg, testWindow)
		if a.TimeFS != b.TimeFS {
			t.Errorf("%v: nondeterministic run time: %d vs %d", cfg.Mode, a.TimeFS, b.TimeFS)
		}
		if a.Stats.Mispredicts != b.Stats.Mispredicts || a.Stats.DCacheMiss != b.Stats.DCacheMiss ||
			a.Stats.Reconfigs != b.Stats.Reconfigs || a.Stats.MemAccesses != b.Stats.MemAccesses {
			t.Errorf("%v: nondeterministic statistics", cfg.Mode)
		}
	}
}

func TestRunBasicInvariants(t *testing.T) {
	spec := bench(t, "gzip")
	for _, cfg := range []Config{DefaultSync(), DefaultAdaptive(ProgramAdaptive), phaseCfg()} {
		r := RunWorkload(spec, cfg, testWindow)
		s := r.Stats
		if s.Instructions != testWindow {
			t.Fatalf("%v: committed %d, want %d", cfg.Mode, s.Instructions, testWindow)
		}
		if r.TimeFS <= 0 {
			t.Fatalf("%v: non-positive run time", cfg.Mode)
		}
		if s.Mispredicts > s.Branches {
			t.Errorf("%v: more mispredicts (%d) than branches (%d)", cfg.Mode, s.Mispredicts, s.Branches)
		}
		if s.Branches == 0 || s.Loads == 0 || s.Stores == 0 {
			t.Errorf("%v: degenerate mix %+v", cfg.Mode, s)
		}
		ipc := r.IPnsec()
		if ipc < 0.02 || ipc > 20 {
			t.Errorf("%v: implausible throughput %.3f instr/ns", cfg.Mode, ipc)
		}
		// Cache access accounting is self-consistent: every L2 access
		// comes from an L1I or L1D miss (plus write allocations).
		l2 := s.L2A + s.L2B + s.L2Miss
		if l2 > s.ICacheMiss+s.DCacheMiss {
			t.Errorf("%v: more L2 accesses (%d) than L1 misses (%d)", cfg.Mode, l2, s.ICacheMiss+s.DCacheMiss)
		}
		if s.MemAccesses != s.L2Miss {
			t.Errorf("%v: memory accesses %d != L2 misses %d", cfg.Mode, s.MemAccesses, s.L2Miss)
		}
	}
}

func TestCommitTimesMonotone(t *testing.T) {
	spec := bench(t, "art")
	m := NewMachine(spec, phaseCfg())
	prev := timing.FS(0)
	var in isa.Inst
	for i := 0; i < 5000; i++ {
		m.trace.Next(&in)
		m.step(&in)
		if m.lastCommit < prev {
			t.Fatalf("commit time went backwards at %d", i)
		}
		prev = m.lastCommit
	}
}

func TestConfigHistogramsSumToWindow(t *testing.T) {
	spec := bench(t, "apsi")
	r := RunWorkload(spec, phaseCfg(), testWindow)
	sum := func(a []int64) (s int64) {
		for _, v := range a {
			s += v
		}
		return
	}
	if got := sum(r.Stats.ICacheInstrs[:]); got != testWindow {
		t.Errorf("i-cache histogram sums to %d, want %d", got, testWindow)
	}
	if got := sum(r.Stats.DCacheInstrs[:]); got != testWindow {
		t.Errorf("d-cache histogram sums to %d, want %d", got, testWindow)
	}
	if got := sum(r.Stats.IntIQInstrs[:]); got != testWindow {
		t.Errorf("int-IQ histogram sums to %d, want %d", got, testWindow)
	}
}

func TestPhaseControllersReconfigure(t *testing.T) {
	// apsi's phase schedule must trigger D-cache reconfigurations.
	spec := bench(t, "apsi")
	cfg := phaseCfg()
	cfg.RecordTrace = true
	r := RunWorkload(spec, cfg, 60_000)
	if r.Stats.Reconfigs == 0 {
		t.Fatal("no reconfigurations on a phased workload")
	}
	kinds := map[string]int{}
	for _, e := range r.Stats.ReconfigEvents {
		kinds[e.Kind]++
		if e.Instr <= 0 || e.Instr > 60_000 {
			t.Errorf("event at instruction %d outside window", e.Instr)
		}
	}
	if kinds["dcache"] == 0 {
		t.Error("apsi produced no d-cache reconfigurations (paper Figure 7a)")
	}
}

func TestArtCyclesIntegerQueue(t *testing.T) {
	spec := bench(t, "art")
	cfg := phaseCfg()
	cfg.RecordTrace = true
	r := RunWorkload(spec, cfg, 80_000)
	iqEvents := 0
	for _, e := range r.Stats.ReconfigEvents {
		if e.Kind == "int-iq" {
			iqEvents++
		}
	}
	if iqEvents == 0 {
		t.Error("art produced no integer-queue reconfigurations (paper Figure 7b)")
	}
}

func TestDisableControllers(t *testing.T) {
	spec := bench(t, "apsi")
	cfg := phaseCfg()
	cfg.DisableCacheAdapt = true
	cfg.DisableIQAdapt = true
	cfg.RecordTrace = true
	r := RunWorkload(spec, cfg, 50_000)
	if r.Stats.Reconfigs != 0 {
		t.Errorf("controllers disabled but %d reconfigurations happened", r.Stats.Reconfigs)
	}
}

func TestPhaseModeUsesBPartitions(t *testing.T) {
	spec := bench(t, "em3d")
	prog := RunWorkload(spec, DefaultAdaptive(ProgramAdaptive), testWindow)
	if prog.Stats.DCacheB != 0 || prog.Stats.ICacheB != 0 {
		t.Error("program-adaptive mode produced B hits (should be A-only)")
	}
	ph := RunWorkload(spec, phaseCfg(), testWindow)
	if ph.Stats.DCacheB == 0 {
		t.Error("phase-adaptive em3d produced no D-cache B hits")
	}
}

func TestSyncModeSingleClock(t *testing.T) {
	spec := bench(t, "gzip")
	m := NewMachine(spec, DefaultSync())
	g := m.Clock(clock.FrontEnd)
	for d := clock.Domain(0); int(d) < clock.NumDomains; d++ {
		if m.Clock(d) != g {
			t.Errorf("sync machine domain %v has its own clock", d)
		}
	}
	if got := g.CurrentPeriod(); got != DefaultSync().GlobalPeriod() {
		t.Errorf("sync clock period %d, want %d", got, DefaultSync().GlobalPeriod())
	}
}

func TestAdaptiveModeDomainClocks(t *testing.T) {
	spec := bench(t, "gzip")
	cfg := DefaultAdaptive(ProgramAdaptive)
	cfg.DCache = timing.DCache128K4W
	m := NewMachine(spec, cfg)
	if m.Clock(clock.FrontEnd) == m.Clock(clock.Integer) {
		t.Error("adaptive machine shares clocks across domains")
	}
	if got := m.Clock(clock.LoadStore).CurrentPeriod(); got != timing.DCache128K4W.AdaptPeriod() {
		t.Errorf("LS period %d, want %d", got, timing.DCache128K4W.AdaptPeriod())
	}
	if got := m.Clock(clock.Integer).CurrentPeriod(); got != timing.IQPeriod(timing.IQ16) {
		t.Errorf("INT period %d, want %d", got, timing.IQPeriod(timing.IQ16))
	}
}

func TestBiggerDataCacheHelpsMemoryBound(t *testing.T) {
	// em3d (768KB working set) must run faster with the upsized hierarchy
	// despite the slower load/store clock: the paper's headline tradeoff.
	spec := bench(t, "em3d")
	small := DefaultAdaptive(ProgramAdaptive)
	big := DefaultAdaptive(ProgramAdaptive)
	big.DCache = timing.DCache128K4W
	ts := RunWorkload(spec, small, 60_000).TimeFS
	tb := RunWorkload(spec, big, 60_000).TimeFS
	if tb >= ts {
		t.Errorf("em3d: 128k4W (%d) not faster than 32k1W (%d)", tb, ts)
	}
}

func TestSmallestConfigBestForKernel(t *testing.T) {
	// adpcm-style kernels want the smallest/fastest configuration.
	spec := bench(t, "adpcm encode")
	small := DefaultAdaptive(ProgramAdaptive)
	big := DefaultAdaptive(ProgramAdaptive)
	big.ICache = timing.ICache64K4W
	big.DCache = timing.DCache256K8W
	big.IntIQ = timing.IQ64
	ts := RunWorkload(spec, small, 40_000).TimeFS
	tb := RunWorkload(spec, big, 40_000).TimeFS
	if ts >= tb {
		t.Errorf("adpcm: smallest config (%d) not faster than largest (%d)", ts, tb)
	}
}

func TestMispredictPenaltyCharged(t *testing.T) {
	// White-box: a mispredicted branch floors subsequent fetch at
	// resolve + penalty cycles in the right domains (Table 5).
	spec := bench(t, "gzip")

	// Synchronous machine: 9 front-end + 7 integer cycles on one clock.
	ms := NewMachine(spec, DefaultSync())
	period := ms.Clock(clock.FrontEnd).CurrentPeriod()
	resolve := ms.Clock(clock.FrontEnd).EdgeAtOrAfter(100 * period)
	in := isa.Inst{PC: 0x400040, Class: isa.Branch}
	in.Taken = !ms.syncPred.Predict(in.PC) // force a mispredict
	ms.resolveBranch(&in, resolve)
	if want := resolve + SyncMispredictFE*period; ms.minFetch != want {
		t.Errorf("sync minFetch = %d, want %d", ms.minFetch, want)
	}
	if want := resolve + SyncMispredictInt*period; ms.minIntIssue != want {
		t.Errorf("sync minIntIssue = %d, want %d", ms.minIntIssue, want)
	}
	if ms.stats.Mispredicts != 1 {
		t.Errorf("mispredicts = %d, want 1", ms.stats.Mispredicts)
	}

	// Adaptive machine: 10 front-end + 9 integer cycles, each at its own
	// domain clock, with the redirect crossing into the front end.
	ma := NewMachine(spec, DefaultAdaptive(ProgramAdaptive))
	fe := ma.Clock(clock.FrontEnd)
	ic := ma.Clock(clock.Integer)
	resolve = ic.EdgeAtOrAfter(100 * ic.CurrentPeriod())
	in.Taken = !ma.bank.Predict(in.PC)
	ma.resolveBranch(&in, resolve)
	if want := fe.After(clock.Sync(ic, fe, resolve), AdaptMispredictFE); ma.minFetch != want {
		t.Errorf("adaptive minFetch = %d, want %d", ma.minFetch, want)
	}
	if want := ic.After(resolve, AdaptMispredictInt); ma.minIntIssue != want {
		t.Errorf("adaptive minIntIssue = %d, want %d", ma.minIntIssue, want)
	}

	// A correctly predicted branch charges nothing.
	before := ms.minFetch
	in.Taken = ms.syncPred.Predict(in.PC)
	ms.resolveBranch(&in, resolve+1000*period)
	if ms.minFetch != before {
		t.Error("correct prediction moved the fetch floor")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Mode: Synchronous, SyncICache: -1, DCache: 0, IntIQ: 16, FPIQ: 16},
		{Mode: Synchronous, SyncICache: 99, DCache: 0, IntIQ: 16, FPIQ: 16},
		{Mode: ProgramAdaptive, ICache: 7, DCache: 0, IntIQ: 16, FPIQ: 16},
		{Mode: ProgramAdaptive, DCache: 9, IntIQ: 16, FPIQ: 16},
		{Mode: ProgramAdaptive, IntIQ: 17, FPIQ: 16},
		{Mode: ProgramAdaptive, IntIQ: 16, FPIQ: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	if err := DefaultSync().Validate(); err != nil {
		t.Errorf("DefaultSync invalid: %v", err)
	}
	if err := DefaultAdaptive(PhaseAdaptive).Validate(); err != nil {
		t.Errorf("DefaultAdaptive invalid: %v", err)
	}
}

func TestModeAndLabelStrings(t *testing.T) {
	if Synchronous.String() != "synchronous" || PhaseAdaptive.String() != "phase-adaptive" {
		t.Error("mode names wrong")
	}
	if DefaultSync().Label() == "" || DefaultAdaptive(ProgramAdaptive).Label() == "" {
		t.Error("empty config labels")
	}
}

func TestGlobalPeriodIsSlowestStructure(t *testing.T) {
	cfg := DefaultSync() // 64k1W I$ at 1210 MHz is the limiter
	idx, _ := timing.SyncICacheIndexByName("64k1W")
	cfg.SyncICache = idx
	want := timing.PeriodFS(timing.SyncICacheSpecs()[idx].MHz)
	if got := cfg.GlobalPeriod(); got != want {
		t.Errorf("global period %d, want %d (I-cache bound)", got, want)
	}
	// With a tiny I-cache the 16-entry queues become the limiter.
	idx4, _ := timing.SyncICacheIndexByName("4k1W")
	cfg.SyncICache = idx4
	cfg.DCache = timing.DCache32K1W
	want = timing.PeriodFS(timing.IQFreqMHz(16))
	if got := cfg.GlobalPeriod(); got != want {
		t.Errorf("global period %d, want %d (queue bound)", got, want)
	}
}

func TestDefaultAdaptivePanicsOnSyncMode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DefaultAdaptive(Synchronous) did not panic")
		}
	}()
	DefaultAdaptive(Synchronous)
}

func TestJitterChangesTimingSlightly(t *testing.T) {
	spec := bench(t, "gzip")
	base := DefaultAdaptive(ProgramAdaptive)
	jit := base
	jit.JitterFrac = 0.01
	tb := RunWorkload(spec, base, testWindow).TimeFS
	tj := RunWorkload(spec, jit, testWindow).TimeFS
	if tb == tj {
		t.Error("jitter had no effect at all")
	}
	rel := float64(tj-tb) / float64(tb)
	if rel < -0.05 || rel > 0.05 {
		t.Errorf("jitter moved run time by %.1f%%, want small", rel*100)
	}
}

func TestPLLScaleShortensLocks(t *testing.T) {
	spec := bench(t, "apsi")
	slow := phaseCfg()
	slow.PLLScale = 1.0
	fast := phaseCfg()
	fast.PLLScale = 0.01
	rs := RunWorkload(spec, slow, 60_000)
	rf := RunWorkload(spec, fast, 60_000)
	// With near-instant locks the controller completes more transitions.
	if rf.Stats.Reconfigs < rs.Stats.Reconfigs {
		t.Errorf("fast PLL produced fewer reconfigs (%d) than slow (%d)",
			rf.Stats.Reconfigs, rs.Stats.Reconfigs)
	}
}

func TestSetsBasedICache(t *testing.T) {
	// The Section 7 extension: a sets-resized, always direct-mapped front
	// end. For a big-code, associativity-averse application (vpr), the
	// 64KB sets-based configuration must beat the 64KB 4-way ways-based
	// one: capacity without the associativity frequency penalty.
	spec := bench(t, "vpr")
	ways := DefaultAdaptive(ProgramAdaptive)
	ways.ICache = timing.ICache64K4W
	sets := ways
	sets.ICacheBySets = true
	tw := RunWorkload(spec, ways, 60_000).TimeFS
	ts := RunWorkload(spec, sets, 60_000).TimeFS
	if ts >= tw {
		t.Errorf("vpr: sets-based 64KB DM (%d) not faster than ways-based 64KB 4W (%d)", ts, tw)
	}

	// Validation: the phase controller cannot drive index-changing
	// resizes.
	bad := DefaultAdaptive(PhaseAdaptive)
	bad.ICacheBySets = true
	if err := bad.Validate(); err == nil {
		t.Error("sets-based phase-adaptive config validated")
	}

	// Labels distinguish the variant.
	if sets.Label() == ways.Label() {
		t.Error("sets-based config label identical to ways-based")
	}
}

// TestRandomWorkloadsNeverWedge is a robustness property: machines in all
// three modes must make monotone forward progress on arbitrary workload
// parameterizations (no deadlocks, no time reversal, exact commit counts).
func TestRandomWorkloadsNeverWedge(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 20; trial++ {
		p := workload.Defaults()
		p.CodeKB = 4 + rng.Intn(96)
		p.HotKB = 2 + rng.Intn(p.CodeKB)
		p.DataKB = 8 + rng.Intn(1024)
		p.AvgBlock = 3 + rng.Intn(10)
		p.FnBlocks = 4 + rng.Intn(12)
		p.LoopFrac = rng.Float64() * 0.5
		p.LoopMeanTrips = 1 + rng.Intn(40)
		p.NoiseFrac = rng.Float64() * 0.5
		p.FPFrac = rng.Float64() * 0.6
		p.LoadFrac = 0.1 + rng.Float64()*0.3
		p.StoreFrac = 0.05 + rng.Float64()*0.15
		p.SerialFrac = rng.Float64() * 0.7
		p.MaxDepDist = 1 + rng.Intn(64)
		p.StrideFrac = rng.Float64() * 0.8
		p.StackFrac = rng.Float64() * (1 - p.StrideFrac) * 0.5
		p.HotDataFrac = rng.Float64()
		p.HotDataKB = 4 + rng.Intn(64)
		spec := workload.Spec{Name: "fuzz", Seed: int64(trial + 1), Base: p}

		cfgs := []Config{DefaultSync(), DefaultAdaptive(ProgramAdaptive), phaseCfg()}
		cfg := cfgs[trial%3]
		// Randomize the adaptive structure choices too.
		if cfg.Mode != Synchronous {
			cfg.ICache = timing.ICacheConfig(rng.Intn(4))
			cfg.DCache = timing.DCacheConfig(rng.Intn(4))
			cfg.IntIQ = timing.IQSizes()[rng.Intn(4)]
			cfg.FPIQ = timing.IQSizes()[rng.Intn(4)]
			if cfg.Mode == ProgramAdaptive {
				cfg.ICacheBySets = rng.Intn(2) == 0
			}
		}
		r := RunWorkload(spec, cfg, 8000)
		if r.Stats.Instructions != 8000 {
			t.Fatalf("trial %d (%s): committed %d", trial, cfg.Label(), r.Stats.Instructions)
		}
		if r.TimeFS <= 0 {
			t.Fatalf("trial %d (%s): non-positive time", trial, cfg.Label())
		}
		perInstr := float64(r.TimeFS) / 8000 / 1e6 // ns
		if perInstr > 200 {
			t.Fatalf("trial %d (%s): %.1f ns/instr looks wedged", trial, cfg.Label(), perInstr)
		}
	}
}
