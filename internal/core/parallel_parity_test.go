package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"gals/internal/timing"
	"gals/internal/workload"
)

// The parallel machine's contract is bit-identity: RunParallel must produce
// the same Result — time, statistics, reconfiguration event sequence — as
// Run, for every mode, policy and configuration. These tests are the gate:
// directed cases over the golden benchmarks and a randomized sweep over
// (benchmark, mode, policy, configuration, jitter, window, degree). They
// run under -race via `make parity`, which also checks the stage pipeline
// for data races.

// runPair executes the same (spec, cfg, window) sequentially and in
// parallel and requires deeply equal results.
func runPair(t *testing.T, label string, spec workload.Spec, cfg Config, n int64, degree int) {
	t.Helper()
	seq := NewMachine(spec, cfg).Run(n)
	par := NewMachine(spec, cfg).RunParallel(n, degree)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("%s: parallel (degree %d) diverged from sequential:\nseq: time=%d stats=%+v\npar: time=%d stats=%+v",
			label, degree, seq.TimeFS, seq.Stats, par.TimeFS, par.Stats)
	}
}

func TestParityParallelMatchesSequentialGoldenBenches(t *testing.T) {
	for _, benchName := range []string{"apsi", "art", "mst"} {
		spec := bench(t, benchName)
		for _, degree := range []int{2, 3} {
			t.Run(fmt.Sprintf("%s/degree%d", benchName, degree), func(t *testing.T) {
				cfg := parityCfg()
				runPair(t, benchName, spec, cfg, parityWindow, degree)
			})
		}
	}
}

func TestParityParallelAllModes(t *testing.T) {
	spec := bench(t, "gcc")
	cases := []struct {
		name string
		cfg  Config
	}{
		{"synchronous", DefaultSync()},
		{"program-adaptive", DefaultAdaptive(ProgramAdaptive)},
		{"phase-adaptive", parityCfg()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			runPair(t, c.name, spec, c.cfg, 40_000, 3)
		})
	}
}

func TestParityParallelAllPolicies(t *testing.T) {
	spec := bench(t, "equake")
	for _, policy := range []string{"paper", "interval", "frozen", "feedback"} {
		t.Run(policy, func(t *testing.T) {
			cfg := parityCfg()
			cfg.Policy = policy
			runPair(t, policy, spec, cfg, 40_000, 3)
		})
	}
}

// TestParityParallelFuzz sweeps randomized configurations. The generator is
// seeded, so a failure reproduces; raise fuzzCases locally to hunt.
func TestParityParallelFuzz(t *testing.T) {
	const fuzzCases = 14
	rng := rand.New(rand.NewSource(20260807))
	names := workload.Names()
	policies := []string{"", "paper", "interval", "frozen", "feedback"}
	params := []string{"", "", "interval=7500,hysteresis=1", "", ""}

	for i := 0; i < fuzzCases; i++ {
		benchName := names[rng.Intn(len(names))]
		spec := bench(t, benchName)

		var cfg Config
		var policy string
		switch rng.Intn(6) {
		case 0:
			cfg = DefaultSync()
			cfg.DCache = timing.DCacheConfig(rng.Intn(timing.NumDCacheConfigs))
		case 1:
			cfg = DefaultAdaptive(ProgramAdaptive)
			cfg.ICacheBySets = rng.Intn(2) == 0
		default: // the adaptive controllers are the interesting surface
			cfg = DefaultAdaptive(PhaseAdaptive)
			j := rng.Intn(len(policies))
			policy = policies[j]
			cfg.Policy, cfg.PolicyParams = policy, params[j]
			cfg.IQHysteresis = rng.Intn(3)
			cfg.DisableCacheAdapt = rng.Intn(8) == 0
			cfg.DisableIQAdapt = rng.Intn(8) == 0
			cfg.PLLScale = 0.1
		}
		if cfg.Mode != Synchronous {
			cfg.ICache = timing.ICacheConfig(rng.Intn(timing.NumICacheConfigs))
			cfg.DCache = timing.DCacheConfig(rng.Intn(timing.NumDCacheConfigs))
			if cfg.ICacheBySets {
				cfg.ICache = timing.ICache16K1W // size classes share the index space
			}
		}
		sizes := timing.IQSizes()
		cfg.IntIQ = sizes[rng.Intn(len(sizes))]
		cfg.FPIQ = sizes[rng.Intn(len(sizes))]
		cfg.Seed = int64(rng.Intn(1000))
		cfg.JitterFrac = []float64{0, 0, 0.01, 0.03}[rng.Intn(4)]
		cfg.RecordTrace = true
		window := int64(8_000 + rng.Intn(32_000))
		degree := 2 + rng.Intn(3) // 4 exercises the >3 clamp

		label := fmt.Sprintf("case %d: bench=%s mode=%v policy=%q window=%d degree=%d seed=%d",
			i, benchName, cfg.Mode, policy, window, degree, cfg.Seed)
		runPair(t, label, spec, cfg, window, degree)
	}
}

// TestParityParallelRecordedReplay pins replay equivalence: a parallel run
// over a recorded source must equal a sequential run over the same
// recording (and, transitively, the live run that produced it).
func TestParityParallelRecordedReplay(t *testing.T) {
	spec := bench(t, "em3d")
	cfg := parityCfg()
	const n = 40_000
	rec := spec.Record(n)
	seq := RunSource(rec.Replay(), cfg, n)
	par := RunSourceParallel(rec.Replay(), cfg, n, 3)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel replay diverged: seq time=%d par time=%d", seq.TimeFS, par.TimeFS)
	}
	live := RunWorkloadParallel(spec, cfg, n, 2)
	if !reflect.DeepEqual(seq, live) {
		t.Fatalf("parallel live run diverged from recorded: seq time=%d live time=%d", seq.TimeFS, live.TimeFS)
	}
}

// TestParityParallelContext pins the context variant: a never-cancelled
// context is bit-identical, and cancellation tears the pipeline down
// without wedging.
func TestParityParallelContext(t *testing.T) {
	spec := bench(t, "art")
	cfg := parityCfg()
	const n = 30_000

	seq := NewMachine(spec, cfg).Run(n)
	res, err := NewMachine(spec, cfg).RunParallelContext(context.Background(), n, 3)
	if err != nil {
		t.Fatalf("RunParallelContext: %v", err)
	}
	if !reflect.DeepEqual(seq, res) {
		t.Fatalf("RunParallelContext diverged from sequential")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewMachine(spec, cfg).RunParallelContext(ctx, n, 3); err != context.Canceled {
		t.Fatalf("cancelled RunParallelContext: got %v, want context.Canceled", err)
	}

	// Mid-run cancellation: must return promptly with ctx.Err and leave no
	// stage goroutine blocked (the -race runner would flag a leak-induced
	// deadlock as a timeout).
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := NewMachine(spec, cfg).RunParallelContext(ctx2, 50_000_000, 3)
		if err != context.Canceled {
			t.Errorf("mid-run cancel: got %v, want context.Canceled", err)
		}
	}()
	cancel2()
	<-done
}

func TestParityParallelDegreeResolution(t *testing.T) {
	if got := ParallelDegree(5); got != 3 {
		t.Fatalf("ParallelDegree(5) = %d, want 3", got)
	}
	if got := ParallelDegree(2); got != 2 {
		t.Fatalf("ParallelDegree(2) = %d, want 2", got)
	}
	if got := ParallelDegree(0); got < 1 || got > 3 {
		t.Fatalf("ParallelDegree(0) = %d, want 1..3", got)
	}
	// Degree 1 (and below) must be plain sequential execution.
	spec := bench(t, "mst")
	cfg := DefaultAdaptive(PhaseAdaptive)
	cfg.PLLScale = 0.1
	seq := NewMachine(spec, cfg).Run(20_000)
	one := NewMachine(spec, cfg).RunParallel(20_000, 1)
	if !reflect.DeepEqual(seq, one) {
		t.Fatalf("RunParallel(degree 1) diverged from Run")
	}
}
