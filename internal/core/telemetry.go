// Run telemetry: the per-interval, per-domain adaptation time-series behind
// Figure 7. A Telemetry sampler attached to a Machine records one sample at
// every controller decision boundary (cache accounting intervals and ILP
// tracking intervals) plus one event per committed reconfiguration — never
// inside the instruction loop, the same discipline as noteRun in obs.go. A
// nil sampler costs one predictable branch per decision boundary (a few per
// 10k instructions); the A/B bench in PERFORMANCE.md pins the budget.
//
// All hooks run on the timing stage, which owns the decision state in both
// sequential and parallel execution, so an attached sampler observes
// bit-identical series in either mode and never perturbs results: nothing
// telemetry touches feeds back into simulation state or Stats.
package core

import (
	"context"

	"gals/internal/clock"
	"gals/internal/queue"
	"gals/internal/timing"
	"gals/internal/workload"
)

// TelemetryVersion is the artifact schema version, serialized with every
// series so readers can reject payloads written by a different layout.
const TelemetryVersion = 1

// DefaultTelemetryCap is the default ring capacity (samples and events
// each). At the paper's 10k-instruction accounting interval it covers runs
// past 40M instructions before the ring wraps.
const DefaultTelemetryCap = 4096

// TelemetryIQWindow is one ILP-tracker window measurement: the tracked
// window size, the peak ILP observed within it, and the int/fp occupancy
// split (queue.Sample, serialized).
type TelemetryIQWindow struct {
	Window int `json:"window"`
	MaxILP int `json:"max_ilp"`
	IntOcc int `json:"int_occ"`
	FPOcc  int `json:"fp_occ"`
}

// TelemetrySample is one decision-boundary observation: the configuration
// and effective frequency of every domain, the interval's IPC, and the
// boundary kind's own signal (cache hit/miss deltas or issue-queue
// occupancy).
type TelemetrySample struct {
	// Instr is the committed-instruction count at the boundary; TimeFS the
	// pipeline's commit time.
	Instr  int64 `json:"instr"`
	TimeFS int64 `json:"time_fs"`
	// Kind is "cache" (accounting interval) or "iq" (ILP interval).
	Kind string `json:"kind"`

	// Structure sizes at the boundary (post-decision state is visible in
	// the next sample; events carry the transitions).
	ICache      string `json:"icache"`
	ICacheIndex int    `json:"icache_index"`
	DCache      string `json:"dcache"`
	DCacheIndex int    `json:"dcache_index"`
	IntIQ       int    `json:"int_iq"`
	FPIQ        int    `json:"fp_iq"`

	// Effective domain frequencies (current clock periods, so an in-flight
	// PLL lock shows the pre-switch frequency until it completes).
	FEMHz  float64 `json:"fe_mhz"`
	LSMHz  float64 `json:"ls_mhz"`
	IntMHz float64 `json:"int_mhz"`
	FPMHz  float64 `json:"fp_mhz"`

	// IPC is committed instructions per nanosecond since the previous
	// boundary of the same kind (0 for a zero-length interval).
	IPC float64 `json:"ipc"`

	// Cache-interval deltas (Kind "cache"): the accounting hardware's hit
	// counts reconstructed for the configuration the interval ran under.
	ICacheHitsA  uint64 `json:"icache_hits_a,omitempty"`
	ICacheHitsB  uint64 `json:"icache_hits_b,omitempty"`
	ICacheMisses uint64 `json:"icache_misses,omitempty"`
	DCacheHitsA  uint64 `json:"dcache_hits_a,omitempty"`
	DCacheHitsB  uint64 `json:"dcache_hits_b,omitempty"`
	DCacheMisses uint64 `json:"dcache_misses,omitempty"`
	L2HitsA      uint64 `json:"l2_hits_a,omitempty"`
	L2HitsB      uint64 `json:"l2_hits_b,omitempty"`
	L2Misses     uint64 `json:"l2_misses,omitempty"`

	// Queue occupancy (Kind "iq"): the four tracker windows.
	IQ []TelemetryIQWindow `json:"iq,omitempty"`
}

// TelemetryEvent is one committed reconfiguration: which structure moved,
// which way, and which decision boundary triggered it.
type TelemetryEvent struct {
	Instr  int64 `json:"instr"`
	TimeFS int64 `json:"time_fs"`
	// Structure is "icache", "dcache", "int-iq" or "fp-iq".
	Structure string `json:"structure"`
	// Direction is "up" (larger/more complex), "down", or "same" (a policy
	// re-targeting the current configuration).
	Direction string `json:"direction"`
	// From and To are configuration indices (0..3); Config the new label.
	From   int    `json:"from"`
	To     int    `json:"to"`
	Config string `json:"config"`
	// Trigger is the boundary kind that produced the decision:
	// "cache-interval" or "iq-interval".
	Trigger string `json:"trigger"`
}

// Telemetry is both the sampler a Machine writes into and the versioned
// series it serializes to: rings are preallocated at construction, hooks
// append without allocating, and Seal fixes the metadata and chronology at
// run completion. The zero value is not usable; construct with NewTelemetry.
type Telemetry struct {
	Version  int    `json:"version"`
	Workload string `json:"workload"`
	Config   string `json:"config"`
	Policy   string `json:"policy"`
	// Window is the committed-instruction count of the run; TimeFS its
	// total execution time; Reconfigs the run's Stats.Reconfigs (equal to
	// len(Events)+DroppedEvents).
	Window    int64             `json:"window"`
	TimeFS    int64             `json:"time_fs"`
	Reconfigs int64             `json:"reconfigs"`
	Samples   []TelemetrySample `json:"samples"`
	Events    []TelemetryEvent  `json:"events"`
	// Dropped* count ring overwrites: the series keeps the most recent
	// cap entries and these record how many older ones rotated out.
	DroppedSamples int64 `json:"dropped_samples,omitempty"`
	DroppedEvents  int64 `json:"dropped_events,omitempty"`

	// Ring heads (oldest entry once the ring has wrapped).
	sampleHead int
	eventHead  int
	// trigger is the decision boundary currently executing, read by the
	// reconfig hook; single-goroutine (timing stage), no lock needed.
	trigger string
	// Per-kind previous boundary markers for interval IPC.
	lastCacheInstr int64
	lastCacheTime  timing.FS
	lastIQInstr    int64
	lastIQTime     timing.FS
	sealed         bool
}

// NewTelemetry returns a sampler with preallocated sample and event rings
// of the given capacity each (<= 0 selects DefaultTelemetryCap).
func NewTelemetry(capacity int) *Telemetry {
	if capacity <= 0 {
		capacity = DefaultTelemetryCap
	}
	return &Telemetry{
		Version: TelemetryVersion,
		Samples: make([]TelemetrySample, 0, capacity),
		Events:  make([]TelemetryEvent, 0, capacity),
	}
}

// SetTelemetry attaches a sampler to the machine. Attach before the first
// Run call; a nil sampler (the default) disables telemetry at the cost of
// one branch per decision boundary.
func (m *Machine) SetTelemetry(t *Telemetry) { m.tel = t }

func (t *Telemetry) pushSample(s TelemetrySample) {
	if len(t.Samples) < cap(t.Samples) {
		t.Samples = append(t.Samples, s)
		return
	}
	if cap(t.Samples) == 0 {
		t.DroppedSamples++
		return
	}
	t.Samples[t.sampleHead] = s
	t.sampleHead++
	if t.sampleHead == len(t.Samples) {
		t.sampleHead = 0
	}
	t.DroppedSamples++
}

func (t *Telemetry) pushEvent(e TelemetryEvent) {
	if len(t.Events) < cap(t.Events) {
		t.Events = append(t.Events, e)
		return
	}
	if cap(t.Events) == 0 {
		t.DroppedEvents++
		return
	}
	t.Events[t.eventHead] = e
	t.eventHead++
	if t.eventHead == len(t.Events) {
		t.eventHead = 0
	}
	t.DroppedEvents++
}

// base fills the fields every sample shares: position, configuration state
// and effective frequencies.
func (t *Telemetry) base(m *Machine, kind string) TelemetrySample {
	return TelemetrySample{
		Instr:       m.count,
		TimeFS:      int64(m.lastCommit),
		Kind:        kind,
		ICache:      m.iCfg.String(),
		ICacheIndex: int(m.iCfg),
		DCache:      m.dCfg.String(),
		DCacheIndex: int(m.dCfg),
		IntIQ:       int(m.intIQ),
		FPIQ:        int(m.fpIQ),
		FEMHz:       mhz(m.clocks[clock.FrontEnd].CurrentPeriod()),
		LSMHz:       mhz(m.clocks[clock.LoadStore].CurrentPeriod()),
		IntMHz:      mhz(m.clocks[clock.Integer].CurrentPeriod()),
		FPMHz:       mhz(m.clocks[clock.FloatingPoint].CurrentPeriod()),
	}
}

// mhz converts a clock period in femtoseconds to MHz (0 for a zero period).
func mhz(p timing.FS) float64 {
	if p <= 0 {
		return 0
	}
	return 1e9 / float64(p)
}

// intervalIPC computes committed instructions per nanosecond between two
// boundary markers.
func intervalIPC(dInstr int64, dTime timing.FS) float64 {
	if dTime <= 0 {
		return 0
	}
	return float64(dInstr) / (float64(dTime) / float64(timing.FemtosPerNano))
}

// noteCacheInterval records one completed accounting interval: the shared
// state plus the interval's reconstructed hit/miss counts for the
// configuration it ran under. Called by cacheDecideStats before the policy
// decides, so the sample reflects exactly what the policy saw.
func (t *Telemetry) noteCacheInterval(m *Machine, st *parStats) {
	t.trigger = "cache-interval"
	s := t.base(m, "cache")
	s.IPC = intervalIPC(m.count-t.lastCacheInstr, m.lastCommit-t.lastCacheTime)
	t.lastCacheInstr, t.lastCacheTime = m.count, m.lastCommit
	s.ICacheHitsA, s.ICacheHitsB, s.ICacheMisses = st.i.Reconstruct(int(m.iCfg)+1, true)
	s.DCacheHitsA, s.DCacheHitsB, s.DCacheMisses = st.d.Reconstruct(dcacheWaysA(m.dCfg), true)
	s.L2HitsA, s.L2HitsB, s.L2Misses = st.l2.Reconstruct(dcacheWaysA(m.dCfg), true)
	t.pushSample(s)
}

// noteIQInterval records one completed ILP-tracking interval with the four
// tracker window occupancies the policy is about to decide on.
func (t *Telemetry) noteIQInterval(m *Machine, samples [4]queue.Sample) {
	t.trigger = "iq-interval"
	s := t.base(m, "iq")
	s.IPC = intervalIPC(m.count-t.lastIQInstr, m.lastCommit-t.lastIQTime)
	t.lastIQInstr, t.lastIQTime = m.count, m.lastCommit
	iq := make([]TelemetryIQWindow, len(samples))
	for i, w := range samples {
		iq[i] = TelemetryIQWindow{Window: w.N, MaxILP: w.M, IntOcc: w.IntCount, FPOcc: w.FPCount}
	}
	s.IQ = iq
	t.pushSample(s)
}

// noteReconfig records one committed reconfiguration, tagged with the
// boundary that triggered it.
func (t *Telemetry) noteReconfig(m *Machine, structure, label string, to, from int) {
	t.pushEvent(TelemetryEvent{
		Instr:     m.count,
		TimeFS:    int64(m.lastCommit),
		Structure: structure,
		Direction: reconfigDirections[directionIndex(from, to)],
		From:      from,
		To:        to,
		Config:    label,
		Trigger:   t.trigger,
	})
}

// reconfigDirections indexes directionIndex results.
var reconfigDirections = [3]string{"up", "down", "same"}

// directionIndex classifies a from->to index move: 0 up, 1 down, 2 same.
func directionIndex(from, to int) int {
	switch {
	case to > from:
		return 0
	case to < from:
		return 1
	default:
		return 2
	}
}

// Seal fixes the series at run completion: metadata from the finished
// machine, rings rotated into chronological order. Called once by result();
// further runs of the same machine keep appending but never re-rotate.
func (t *Telemetry) Seal(m *Machine) {
	t.Version = TelemetryVersion
	t.Workload = m.trace.Spec().Name
	t.Config = m.cfg.Label()
	t.Policy = policyLabel(m.cfg)
	t.Window = m.count
	t.TimeFS = int64(m.lastCommit)
	t.Reconfigs = m.stats.Reconfigs
	if t.sealed {
		return
	}
	t.sealed = true
	rotateSamples(t.Samples, t.sampleHead)
	rotateEvents(t.Events, t.eventHead)
	t.sampleHead, t.eventHead = 0, 0
}

func rotateSamples(s []TelemetrySample, head int) {
	if head == 0 {
		return
	}
	reverseSamples(s[:head])
	reverseSamples(s[head:])
	reverseSamples(s)
}

func reverseSamples(s []TelemetrySample) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func rotateEvents(e []TelemetryEvent, head int) {
	if head == 0 {
		return
	}
	reverseEvents(e[:head])
	reverseEvents(e[head:])
	reverseEvents(e)
}

func reverseEvents(e []TelemetryEvent) {
	for i, j := 0, len(e)-1; i < j; i, j = i+1, j-1 {
		e[i], e[j] = e[j], e[i]
	}
}

// EventTotal returns the number of reconfiguration events the run
// committed, including any rotated out of a saturated ring — the figure
// that must equal the run's Stats.Reconfigs.
func (t *Telemetry) EventTotal() int64 { return int64(len(t.Events)) + t.DroppedEvents }

// EventsByStructure counts the recorded events per structure name.
func (t *Telemetry) EventsByStructure() map[string]int64 {
	out := make(map[string]int64, 4)
	for i := range t.Events {
		out[t.Events[i].Structure]++
	}
	return out
}

// RunWorkloadTelemetry runs spec under cfg for n instructions with the
// sampler attached (nil runs plain) and returns the result; the sampler is
// sealed and readable afterwards.
func RunWorkloadTelemetry(spec workload.Spec, cfg Config, n int64, t *Telemetry) *Result {
	m := NewMachine(spec, cfg)
	m.SetTelemetry(t)
	return m.Run(n)
}

// RunWorkloadTelemetryContext is RunWorkloadTelemetry with cooperative
// cancellation and optional intra-run parallelism (degree <= 1 sequential).
func RunWorkloadTelemetryContext(ctx context.Context, spec workload.Spec, cfg Config, n int64, degree int, t *Telemetry) (*Result, error) {
	m := NewMachine(spec, cfg)
	m.SetTelemetry(t)
	return m.RunParallelContext(ctx, n, degree)
}

// RunSourceTelemetryContext is RunWorkloadTelemetryContext over an existing
// instruction source (live trace or recorded replay).
func RunSourceTelemetryContext(ctx context.Context, src InstSource, cfg Config, n int64, degree int, t *Telemetry) (*Result, error) {
	m := NewMachineSource(src, cfg)
	m.SetTelemetry(t)
	return m.RunParallelContext(ctx, n, degree)
}
