package core

import (
	"reflect"
	"testing"

	"gals/internal/workload"
)

// TestRecordedRunsBitIdentical verifies that replaying a recorded trace
// produces a Result bit-identical to running the live generator, across
// three workloads and all three machine modes (the sweeps rely on this to
// share one recording per benchmark).
func TestRecordedRunsBitIdentical(t *testing.T) {
	const window = 6000
	configs := map[string]Config{
		"synchronous":      DefaultSync(),
		"program-adaptive": DefaultAdaptive(ProgramAdaptive),
		"phase-adaptive": func() Config {
			c := DefaultAdaptive(PhaseAdaptive)
			c.PLLScale = 0.1
			return c
		}(),
	}
	for _, name := range []string{"gcc", "em3d", "apsi"} {
		spec, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("missing benchmark %q", name)
		}
		rec := spec.Record(window)
		for mode, cfg := range configs {
			live := RunWorkload(spec, cfg, window)
			replay := RunSource(rec.Replay(), cfg, window)
			if live.TimeFS != replay.TimeFS {
				t.Errorf("%s/%s: TimeFS live %d != replay %d", name, mode, live.TimeFS, replay.TimeFS)
			}
			if !reflect.DeepEqual(live, replay) {
				t.Errorf("%s/%s: results differ beyond TimeFS", name, mode)
			}
		}
	}
}

// TestRunSourceSharedRecordingConcurrent replays one recording from many
// goroutines at once; every run must agree (the recording is immutable).
func TestRunSourceSharedRecordingConcurrent(t *testing.T) {
	const window = 3000
	spec, _ := workload.ByName("gcc")
	rec := spec.Record(window)
	cfg := DefaultAdaptive(ProgramAdaptive)
	want := RunSource(rec.Replay(), cfg, window).TimeFS
	const workers = 8
	got := make(chan int64, workers)
	for i := 0; i < workers; i++ {
		go func() {
			got <- int64(RunSource(rec.Replay(), cfg, window).TimeFS)
		}()
	}
	for i := 0; i < workers; i++ {
		if g := <-got; g != int64(want) {
			t.Fatalf("concurrent replay run %d: TimeFS %d, want %d", i, g, want)
		}
	}
}
