package core

import (
	"context"

	"gals/internal/cache"
	"gals/internal/clock"
	"gals/internal/isa"
	"gals/internal/timing"
)

func maxFS(a, b timing.FS) timing.FS {
	if a > b {
		return a
	}
	return b
}

// srcReady returns the time operand r is usable in the consumer domain,
// including cross-domain synchronization cost.
func (m *Machine) srcReady(r isa.Reg, consumer clock.Domain) timing.FS {
	if !r.Valid() {
		return 0
	}
	t := m.regReady[r]
	if t == 0 {
		return 0
	}
	prod := m.regDomain[r]
	if prod == consumer {
		return t
	}
	return m.syncPaths[prod][consumer].Sync(t)
}

// writeDest records a register result produced in domain d at time t.
func (m *Machine) writeDest(r isa.Reg, d clock.Domain, t timing.FS) {
	if r.Valid() {
		m.regReady[r] = t
		m.regDomain[r] = d
	}
}

// mispredictPenalties returns the (front-end, integer) cycle penalties for
// the machine's organization (Table 5).
func (m *Machine) mispredictPenalties() (int, int) {
	if m.cfg.Mode == Synchronous {
		return SyncMispredictFE, SyncMispredictInt
	}
	return AdaptMispredictFE, AdaptMispredictInt
}

// icacheLatencies returns the A latency and extra B latency of the current
// front-end configuration.
func (m *Machine) icacheLatencies() (int, int) {
	if m.cfg.Mode == Synchronous {
		return timing.SyncICacheSpecs()[m.cfg.SyncICache].ALat, 0
	}
	if m.cfg.ICacheBySets {
		return m.iCfg.SetsSpec().ALat, 0
	}
	s := m.iCfg.Spec()
	return s.ALat, s.BLat
}

// dcacheLatencies returns (L1 A, L1 extra B, L2 A, L2 extra B) latencies of
// the current load/store configuration.
func (m *Machine) dcacheLatencies() (int, int, int, int) {
	s := m.dCfg.Spec()
	if m.cfg.Mode == Synchronous {
		return s.L1ALat, 0, s.L2ALat, 0
	}
	return s.L1ALat, s.L1BLat, s.L2ALat, s.L2BLat
}

// l2AccessI performs the unified-L2 access for an I-side line fill: the
// functional access live in sequential mode, classification of the shipped
// MRU position under the shadow configuration in parallel mode.
func (m *Machine) l2AccessI(addr uint64, t timing.FS) timing.FS {
	if p := m.par; p != nil {
		return m.l2Timed(p.classL2(p.cur.iL2), t)
	}
	return m.l2Timed(m.l2.Access(addr, false), t)
}

// l2AccessD is l2AccessI for D-side line fills (loads and store
// write-allocates).
func (m *Machine) l2AccessD(addr uint64, t timing.FS, write bool) timing.FS {
	if p := m.par; p != nil {
		return m.l2Timed(p.classL2(p.cur.dL2), t)
	}
	return m.l2Timed(m.l2.Access(addr, write), t)
}

// l2Timed applies the timing of a unified-L2 access of the given class for
// a line fill request arriving in the load/store domain at time t (already
// synchronized), returning the completion time in the load/store domain.
func (m *Machine) l2Timed(cls cache.Class, t timing.FS) timing.FS {
	ls := m.clocks[clock.LoadStore]
	_, _, l2A, l2B := m.dcacheLatencies()
	switch cls {
	case cache.AHit:
		m.stats.L2A++
		return ls.After(t, l2A)
	case cache.BHit:
		m.stats.L2B++
		return ls.After(t, l2A+l2B)
	default:
		m.stats.L2Miss++
		// Miss-under-probe: the B-partition probe overlaps the memory
		// request, so a full miss pays only the A latency here.
		miss := ls.After(t, l2A)
		// Bounded number of outstanding misses.
		miss = maxFS(miss, m.mshr.floor(MSHREntries))
		memClk := m.clocks[clock.Memory]
		ms := m.syncPaths[clock.LoadStore][clock.Memory].Sync(miss)
		mdone := m.memc.Access(ms, L2LineBytes)
		m.stats.MemAccesses++
		done := m.syncPaths[clock.Memory][clock.LoadStore].Sync(memClk.EdgeAtOrAfter(mdone))
		m.mshr.push(done)
		return done
	}
}

// step advances the machine by one dynamic instruction.
func (m *Machine) step(in *isa.Inst) {
	fe := m.clocks[clock.FrontEnd]
	m.applyPending()

	// ------------------------------------------------------------------
	// Fetch. Each basic block occupies one I-cache line; a new line (or
	// exhausting the group's decode slots) starts a new fetch group.
	line := in.PC >> 6
	if line != m.curLine || m.lineLeft == 0 {
		start := maxFS(m.nextLineAt, m.minFetch)
		start = maxFS(start, m.fetchQ.floor(FetchQueueEntries))
		start = fe.EdgeAtOrAfter(start)
		if line != m.curLine {
			aLat, bLat := m.icacheLatencies()
			var icls cache.Class
			if p := m.par; p != nil {
				icls = p.classI(p.cur.iPos)
			} else {
				icls = m.icache.Access(in.PC, false)
			}
			switch icls {
			case cache.AHit:
				m.stats.ICacheA++
				m.groupReady = fe.After(start, aLat)
				m.nextLineAt = fe.NextEdge(start) // pipelined hit path
			case cache.BHit:
				m.stats.ICacheB++
				m.groupReady = fe.After(start, aLat+bLat)
				m.nextLineAt = m.groupReady // cache busy during B access
			default:
				m.stats.ICacheMiss++
				// Miss-under-probe: B probe overlaps the L2 request.
				req := m.syncPaths[clock.FrontEnd][clock.LoadStore].Sync(fe.After(start, aLat))
				done := m.l2AccessI(in.PC&^uint64(L2LineBytes-1), req)
				m.groupReady = fe.EdgeAtOrAfter(m.syncPaths[clock.LoadStore][clock.FrontEnd].Sync(done))
				m.nextLineAt = m.groupReady
			}
		} else {
			// Same line, next decode group: line buffer hit.
			m.groupReady = fe.After(start, 1)
			m.nextLineAt = fe.NextEdge(start)
		}
		m.curLine = line
		m.lineLeft = DecodeWidth
	}
	m.lineLeft--
	fetch := maxFS(m.groupReady, m.fetchQ.floor(FetchQueueEntries))

	// ------------------------------------------------------------------
	// Rename / dispatch (front-end domain, in order).
	rn := fe.After(fetch, frontDepth)
	rn = maxFS(rn, m.lastRename)
	rn = maxFS(rn, fe.NextEdge(m.renameBW.floor(DecodeWidth)))
	rn = maxFS(rn, m.rob.floor(ROBEntries))
	if in.Dest.Valid() {
		if in.Dest.IsFP() {
			rn = maxFS(rn, m.fpRegs.floor(PhysFPRegs-isa.NumFPRegs))
		} else {
			rn = maxFS(rn, m.intRegs.floor(PhysIntRegs-isa.NumIntRegs))
		}
	}
	// Issue-queue and LSQ backpressure propagates to rename.
	if in.Class.IsFP() {
		rn = maxFS(rn, clock.Align(m.clocks[clock.FloatingPoint], fe, m.fpQ.floor(int(m.fpIQ))))
	} else if in.Class != isa.Jump {
		rn = maxFS(rn, clock.Align(m.clocks[clock.Integer], fe, m.intQ.floor(int(m.intIQ))))
	}
	if in.Class.IsMem() {
		rn = maxFS(rn, m.lsq.floor(LSQEntries))
	}
	rn = fe.EdgeAtOrAfter(rn)
	m.lastRename = rn
	m.renameBW.push(rn)
	m.fetchQ.push(rn)

	// ILP tracking happens at rename (Section 3.2). In parallel mode the
	// functional stage ran the tracker; a fired interval's samples arrive
	// through the ring and the decision commits here, at the same point.
	if p := m.par; p != nil {
		if p.cur.fire {
			m.iqDecideSamples(rn, p.popSamples())
		}
	} else if m.tracker != nil && !m.cfg.DisableIQAdapt {
		if m.tracker.Observe(in) {
			m.iqDecide(rn)
			m.tracker.Reset()
		}
	}

	// ------------------------------------------------------------------
	// Execute by class.
	var complete timing.FS
	var execDomain clock.Domain

	switch {
	case in.Class == isa.Jump:
		// Resolved at decode; no queue or execution resources.
		complete, execDomain = rn, clock.FrontEnd

	case in.Class.IsFP():
		complete = m.execCompute(in, clock.FloatingPoint)
		execDomain = clock.FloatingPoint
		m.stats.FPOps++

	case in.Class == isa.Load:
		complete = m.execLoad(in)
		execDomain = clock.LoadStore
		m.stats.Loads++

	case in.Class == isa.Store:
		complete = m.execStore(in)
		execDomain = clock.LoadStore
		m.stats.Stores++

	default: // integer compute and branches
		complete = m.execCompute(in, clock.Integer)
		execDomain = clock.Integer
		if in.Class == isa.Branch {
			m.resolveBranch(in, complete)
		}
	}
	m.writeDest(in.Dest, execDomain, complete)

	// ------------------------------------------------------------------
	// Commit (in order, retire width per front-end cycle).
	c := maxFS(clock.Align(m.clocks[execDomain], fe, complete), m.lastCommit)
	c = maxFS(c, fe.NextEdge(m.commitBW.floor(RetireWidth)))
	c = fe.After(c, 1)
	m.lastCommit = c
	m.commitBW.push(c)
	m.rob.push(c)
	if in.Class.IsMem() {
		m.lsq.push(c)
	}
	if in.Dest.Valid() {
		if in.Dest.IsFP() {
			m.fpRegs.push(c)
		} else {
			m.intRegs.push(c)
		}
	}

	// ------------------------------------------------------------------
	// Bookkeeping and phase controllers.
	m.count++
	m.stats.Instructions++
	if m.cfg.Mode != Synchronous {
		m.stats.ICacheInstrs[m.iCfg]++
		m.stats.DCacheInstrs[m.dCfg]++
		m.stats.IntIQInstrs[timing.IQIndex(m.intIQ)]++
		m.stats.FPIQInstrs[timing.IQIndex(m.fpIQ)]++
	}
	if m.cacheEvery > 0 && !m.cfg.DisableCacheAdapt &&
		m.count-m.intervalStart >= m.cacheEvery {
		if p := m.par; p != nil {
			// The functional stage snapshotted and reset the caches at this
			// exact instruction; decide on its snapshot, then tell it when
			// the next boundary falls.
			st := p.popStats()
			m.cacheDecideStats(c, &st)
			m.intervalStart = m.count
			m.cacheEvery = m.ctl.CacheInterval()
			p.publishBoundary(m.nextBoundary())
		} else {
			m.cacheDecide(c)
			m.intervalStart = m.count
			// Closed-loop policies may retune their own cadence between
			// intervals (the paper's controllers return a constant).
			m.cacheEvery = m.ctl.CacheInterval()
		}
	}
}

// execCompute models dispatch, wakeup/select, and execution of a compute
// operation (or branch) in the given domain.
func (m *Machine) execCompute(in *isa.Inst, dom clock.Domain) timing.FS {
	fe := m.clocks[clock.FrontEnd]
	ck := m.clocks[dom]
	enter := clock.Align(fe, ck, m.lastRename) // queue write: sync hidden

	ready := ck.After(enter, 1) // wakeup
	ready = maxFS(ready, m.srcReady(in.Src1, dom))
	ready = maxFS(ready, m.srcReady(in.Src2, dom))

	var issueBW, qWin *window
	var alu, mul *fuPool
	if dom == clock.FloatingPoint {
		issueBW, qWin, alu, mul = m.fpIssue, m.fpQ, m.fpFU, m.fpMul
	} else {
		issueBW, qWin, alu, mul = m.intIssue, m.intQ, m.intFU, m.intMul
		ready = maxFS(ready, m.minIntIssue)
	}
	ready = maxFS(ready, ck.NextEdge(issueBW.floor(IssueWidth)))
	ready = ck.EdgeAtOrAfter(ready)

	pool := alu
	switch in.Class {
	case isa.IntMult, isa.IntDiv, isa.FPMult, isa.FPDiv, isa.FPSqrt:
		pool = mul
	}
	lat := in.Class.Latency()
	start := pool.acquire(ready, func(s timing.FS) timing.FS {
		if in.Class.Pipelined() {
			return ck.After(s, 1)
		}
		return ck.After(s, lat)
	})
	issueBW.push(start)
	qWin.push(start)
	return ck.After(start, lat)
}

// resolveBranch checks the prediction and charges the mispredict penalty.
func (m *Machine) resolveBranch(in *isa.Inst, resolve timing.FS) {
	m.stats.Branches++
	var pred bool
	if m.cfg.Mode == Synchronous {
		pred = m.syncPred.Predict(in.PC)
		m.syncPred.Update(in.PC, in.Taken)
	} else {
		pred = m.bank.Predict(in.PC)
		m.bank.Update(in.PC, in.Taken)
	}
	if pred == in.Taken {
		return
	}
	m.stats.Mispredicts++
	fe := m.clocks[clock.FrontEnd]
	ic := m.clocks[clock.Integer]
	penFE, penInt := m.mispredictPenalties()
	m.minFetch = maxFS(m.minFetch, fe.After(m.syncPaths[clock.Integer][clock.FrontEnd].Sync(resolve), penFE))
	m.minIntIssue = maxFS(m.minIntIssue, ic.After(resolve, penInt))
}

// execLoad models address generation in the integer domain followed by the
// data-cache hierarchy access in the load/store domain, including
// store-to-load forwarding.
func (m *Machine) execLoad(in *isa.Inst) timing.FS {
	agDone := m.addrGen(in)
	ls := m.clocks[clock.LoadStore]
	req := clock.Align(m.clocks[clock.Integer], ls, agDone) // LSQ insert: sync hidden
	req = maxFS(req, ls.NextEdge(m.dports.floor(DCachePorts)))
	req = ls.EdgeAtOrAfter(req)
	m.dports.push(req)

	m.memSeq++
	// Store-to-load forwarding from the youngest older store to the same
	// dword still in the LSQ window.
	var fwd timing.FS
	dword := in.Addr &^ 7
	if e := &m.stores[storeHash(dword)]; e.addr == dword && e.seq >= m.memSeq-LSQEntries {
		fwd = ls.After(maxFS(req, e.ready), 1)
	}

	l1A, l1B, _, _ := m.dcacheLatencies()
	var done timing.FS
	var dcls cache.Class
	if p := m.par; p != nil {
		dcls = p.classD(p.cur.dPos)
	} else {
		dcls = m.dcache.Access(in.Addr, false)
	}
	switch dcls {
	case cache.AHit:
		m.stats.DCacheA++
		done = ls.After(req, l1A)
	case cache.BHit:
		m.stats.DCacheB++
		done = ls.After(req, l1A+l1B)
	default:
		m.stats.DCacheMiss++
		// Miss-under-probe: B probe overlaps the L2 request.
		done = m.l2AccessD(in.Addr, ls.After(req, l1A), false)
	}
	if fwd != 0 && fwd < done {
		done = fwd
	}
	return done
}

// execStore models address generation and data delivery to the LSQ; the
// cache write happens post-commit and is off the critical path, but the
// functional access keeps contents and accounting statistics exact.
func (m *Machine) execStore(in *isa.Inst) timing.FS {
	agDone := m.addrGen(in)
	ls := m.clocks[clock.LoadStore]
	addrAt := clock.Align(m.clocks[clock.Integer], ls, agDone) // LSQ insert: sync hidden
	dataAt := m.srcReady(in.Src1, clock.LoadStore)
	ready := maxFS(addrAt, dataAt)

	m.memSeq++
	dword := in.Addr &^ 7
	m.stores[storeHash(dword)] = storeEntry{addr: dword, seq: m.memSeq, ready: ready}

	// Post-commit write: functional update now (program order), port use
	// booked at the earliest write time.
	m.dports.push(ready)
	var scls cache.Class
	if p := m.par; p != nil {
		scls = p.classD(p.cur.dPos)
	} else {
		scls = m.dcache.Access(in.Addr, true)
	}
	if scls == cache.Miss {
		m.stats.DCacheMiss++
		// Write-allocate: fetch the line through L2.
		m.l2AccessD(in.Addr, ready, true)
	} else {
		m.stats.DCacheA++
	}
	return ready
}

// addrGen issues the address computation through the integer scheduler.
func (m *Machine) addrGen(in *isa.Inst) timing.FS {
	fe := m.clocks[clock.FrontEnd]
	ck := m.clocks[clock.Integer]
	enter := clock.Align(fe, ck, m.lastRename) // queue write: sync hidden
	ready := ck.After(enter, 1)
	base := in.Src1
	if in.Class == isa.Store {
		base = in.Src2
	}
	ready = maxFS(ready, m.srcReady(base, clock.Integer))
	ready = maxFS(ready, m.minIntIssue)
	ready = maxFS(ready, ck.NextEdge(m.intIssue.floor(IssueWidth)))
	ready = ck.EdgeAtOrAfter(ready)
	start := m.intFU.acquire(ready, func(s timing.FS) timing.FS { return ck.After(s, 1) })
	m.intIssue.push(start)
	m.intQ.push(start)
	return ck.After(start, 1)
}

func storeHash(dword uint64) int {
	z := dword * 0x9e3779b97f4a7c15
	return int((z >> 48) & (storeTableSize - 1))
}

// Run executes n instructions and returns the result.
func (m *Machine) Run(n int64) *Result {
	var in isa.Inst
	for i := int64(0); i < n; i++ {
		m.trace.Next(&in)
		m.step(&in)
	}
	return m.result()
}

func (m *Machine) result() *Result {
	noteRun(m.cfg, &m.stats)
	noteReconfigDirections(&m.dirCounts)
	if t := m.tel; t != nil {
		t.Seal(m)
	}
	return &Result{
		Workload: m.trace.Spec().Name,
		Config:   m.cfg,
		TimeFS:   m.lastCommit,
		Stats:    m.stats,
	}
}

// cancelQuantum is how many instructions RunContext executes between
// cancellation checks: the default accounting interval, so a deadline adds
// at most ~one adaptation decision's worth of work and the check amortizes
// to one channel poll per 10k steps (unmeasurable against step cost).
const cancelQuantum = 10_000

// RunContext is Run with cooperative cancellation at quantum boundaries.
// The instruction-level execution is the plain Run loop — a completed
// RunContext result is bit-identical to Run's — and a ctx that can never be
// cancelled delegates to Run outright. On cancellation the partial result
// is discarded and ctx.Err() returned.
func (m *Machine) RunContext(ctx context.Context, n int64) (*Result, error) {
	if ctx == nil || ctx.Done() == nil {
		return m.Run(n), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var in isa.Inst
	for done := int64(0); done < n; {
		q := n - done
		if q > cancelQuantum {
			q = cancelQuantum
		}
		for i := int64(0); i < q; i++ {
			m.trace.Next(&in)
			m.step(&in)
		}
		done += q
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
	}
	return m.result(), nil
}
