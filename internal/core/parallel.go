// Intra-run parallel execution: one simulated machine decomposed into a
// software pipeline of up to three stages connected by single-producer/
// single-consumer rings, producing results bit-identical to Machine.Run.
//
// The decomposition leans on the Accounting Cache's defining property
// (paper Section 3.1): MRU state evolution is configuration independent.
// cache.AccessPos performs the full functional update and returns only the
// MRU position; cache.ClassifyPos recovers the timing class for any
// partitioning. A functional stage can therefore run arbitrarily far ahead
// of the timing stage — it never needs to know the configuration in force
// when the access is eventually timed. The timing stage classifies shipped
// positions under *shadow* configurations that replicate, in exact commit
// order, every Configure call the sequential machine would have made.
//
// Stage assignment by degree (requested degrees above 3 clamp to 3 — the
// pipeline has no fourth stage to split out):
//
//	degree 2:  [generate + functional] → [timing]
//	degree 3:  [generate] → [functional] → [timing]
//
// The generate stage drives the instruction source. The functional stage
// owns the three accounting caches and the ILP tracker; per instruction it
// ships the MRU positions of the accesses the timing stage will need, the
// tracker's interval-complete flag, and — at accounting-interval
// boundaries — the cache statistics snapshot the controller consumes. The
// timing stage is the caller's goroutine running the ordinary step() loop
// with m.par-gated access points; it owns everything else: clocks, windows,
// functional-unit pools, branch predictors, the controller, PLL draws and
// all of Stats. One copy of the timing logic serves both modes.
//
// Whether the functional stage must also touch the L2 for a given L1 miss
// is decided by a mode-dependent rule proven equivalent to the timing
// stage's classification: in PhaseAdaptive mode every Configure call in the
// machine passes bEnabled=true (forced false only when waysA equals the
// physical way count, where no position can classify as Miss), so an access
// misses iff its MRU position is -1; in the static modes the configuration
// never changes after construction, so the run-start classification is
// exact. Shipped sentinel positions are defensive: consuming one panics,
// turning any violation of this invariant into a loud failure instead of a
// silent divergence.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gals/internal/cache"
	"gals/internal/isa"
	"gals/internal/queue"
	"gals/internal/workload"
)

// maxParallelDegree is the deepest stage decomposition the machine supports.
const maxParallelDegree = 3

// MaxParallelDegree is the deepest stage decomposition RunParallel
// supports — the largest value ParallelDegree can return. Callers sizing a
// degree cap from external capacity (pool slots, CPU budget) can pass it
// as the "no cap" upper bound.
const MaxParallelDegree = maxParallelDegree

// ParallelDegree resolves a requested intra-run parallelism degree: values
// above the pipeline depth clamp to maxParallelDegree, and a requested
// degree <= 0 means "auto" — use the host's CPU count (clamped the same
// way). RunParallel itself performs no CPU-count clamping, so an explicit
// degree exercises the full parallel machinery even on a single-core host.
func ParallelDegree(requested int) int {
	if requested <= 0 {
		requested = runtime.NumCPU()
	}
	if requested > maxParallelDegree {
		requested = maxParallelDegree
	}
	if requested < 1 {
		requested = 1
	}
	return requested
}

const (
	// parRingCap is the instruction-record ring capacity: the functional
	// stage's maximum lead over the timing stage, in instructions.
	parRingCap = 4096
	// parRingBatch is how many slots a ring cursor advances before it is
	// published; batching keeps the per-instruction atomic traffic amortized.
	parRingBatch = 64
	// parNoAccess marks a position field whose access never happened.
	// Consuming it is a pipeline-desync bug and panics.
	parNoAccess = int8(-2)
)

// parRec is one instruction in flight between the functional and timing
// stages: the decoded instruction plus the MRU positions of every cache
// access the timing stage will classify, and the tracker's interval flag.
type parRec struct {
	in   isa.Inst
	iPos int8 // I-cache access position, or parNoAccess
	iL2  int8 // L2 position of the I-side line fill, or parNoAccess
	dPos int8 // D-cache access position (loads and stores), or parNoAccess
	dL2  int8 // L2 position of the D-side line fill, or parNoAccess
	fire bool // ILP tracker completed its interval at this instruction
}

// parStats is one accounting-interval snapshot of the three caches, taken
// by the functional stage at the exact boundary instruction.
type parStats struct {
	i, d, l2 cache.Stats
}

// parIdle backs a ring wait: yield the processor so the peer stage can run
// (essential when hardware parallelism is scarce), falling back to a short
// sleep once yielding has clearly not helped.
func parIdle(spin int) {
	if spin < 256 {
		runtime.Gosched()
	} else {
		time.Sleep(5 * time.Microsecond)
	}
}

// spscRing is a bounded single-producer/single-consumer ring with batched
// cursor publication. Slot data is written before the head store and read
// before the tail store, so the atomic cursors carry the happens-before
// edges; both sides keep cached copies of the remote cursor and touch the
// shared line only when the cache runs out. Waits are abortable.
type spscRing[T any] struct {
	buf   []T
	mask  int64
	abort *atomic.Bool
	// onProdWait / onConsWait run once when the respective side starts
	// waiting: the hook where a stage flushes its *other* rings so the peer
	// it is waiting on can make progress (deadlock freedom).
	onProdWait func()
	onConsWait func()

	_    [64]byte
	head atomic.Int64 // producer: slots below head are published
	_    [64]byte
	tail atomic.Int64 // consumer: slots below tail are released
	_    [64]byte

	pHead, pPub, cachedTail int64 // producer-local
	cTail, cPub, cachedHead int64 // consumer-local
}

func newRing[T any](capacity int, abort *atomic.Bool) *spscRing[T] {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic(fmt.Sprintf("core: ring capacity %d not a positive power of two", capacity))
	}
	return &spscRing[T]{buf: make([]T, capacity), mask: int64(capacity - 1), abort: abort}
}

// reserve returns the next slot to fill, waiting for space if the ring is
// full. Returns false only on abort.
func (r *spscRing[T]) reserve() (*T, bool) {
	if r.pHead-r.cachedTail >= int64(len(r.buf)) {
		r.cachedTail = r.tail.Load()
		if r.pHead-r.cachedTail >= int64(len(r.buf)) {
			r.flushProducer() // the consumer may be starved of these
			if r.onProdWait != nil {
				r.onProdWait()
			}
			for spin := 0; ; spin++ {
				if r.abort.Load() {
					return nil, false
				}
				r.cachedTail = r.tail.Load()
				if r.pHead-r.cachedTail < int64(len(r.buf)) {
					break
				}
				parIdle(spin)
			}
		}
	}
	return &r.buf[r.pHead&r.mask], true
}

// advance publishes the slot returned by reserve, batched.
func (r *spscRing[T]) advance() {
	r.pHead++
	if r.pHead-r.pPub >= parRingBatch {
		r.head.Store(r.pHead)
		r.pPub = r.pHead
	}
}

// flushProducer publishes every reserved-and-advanced slot immediately.
func (r *spscRing[T]) flushProducer() {
	if r.pHead != r.pPub {
		r.head.Store(r.pHead)
		r.pPub = r.pHead
	}
}

// next returns the oldest unconsumed slot, waiting for data if the ring is
// empty. Returns false only on abort.
func (r *spscRing[T]) next() (*T, bool) {
	if r.cTail == r.cachedHead {
		r.cachedHead = r.head.Load()
		if r.cTail == r.cachedHead {
			r.flushConsumer() // the producer may be starved of space
			if r.onConsWait != nil {
				r.onConsWait()
			}
			for spin := 0; ; spin++ {
				if r.abort.Load() {
					return nil, false
				}
				r.cachedHead = r.head.Load()
				if r.cTail != r.cachedHead {
					break
				}
				parIdle(spin)
			}
		}
	}
	return &r.buf[r.cTail&r.mask], true
}

// release frees the slot returned by next, batched.
func (r *spscRing[T]) release() {
	r.cTail++
	if r.cTail-r.cPub >= parRingBatch {
		r.tail.Store(r.cTail)
		r.cPub = r.cTail
	}
}

// flushConsumer releases every consumed slot immediately.
func (r *spscRing[T]) flushConsumer() {
	if r.cTail != r.cPub {
		r.tail.Store(r.cTail)
		r.cPub = r.cTail
	}
}

// push appends one value with immediate publication (low-rate rings).
func (r *spscRing[T]) push(v T) bool {
	s, ok := r.reserve()
	if !ok {
		return false
	}
	*s = v
	r.advance()
	r.flushProducer()
	return true
}

// pop removes one value with immediate release (low-rate rings).
func (r *spscRing[T]) pop() (T, bool) {
	var zero T
	s, ok := r.next()
	if !ok {
		return zero, false
	}
	v := *s
	r.release()
	r.flushConsumer()
	return v, true
}

// parAbort unwinds the timing stage's step loop when the run is torn down
// mid-flight (context cancellation or a worker panic); runParallel recovers
// it at the loop boundary.
type parAbort struct{}

// parState is the per-run parallel execution state hung off Machine.par; a
// nil par means sequential execution and every gate in step() compiles to
// one predictable branch.
type parState struct {
	abort atomic.Bool

	recs    *spscRing[parRec]          // functional → timing: instructions
	gen     *spscRing[isa.Inst]        // generate → functional (degree 3)
	samples *spscRing[[4]queue.Sample] // functional → timing: tracker fires
	stats   *spscRing[parStats]        // functional → timing: interval snapshots
	bounds  *spscRing[int64]           // timing → functional: next boundary count

	// cur is the record the timing stage is currently executing.
	cur *parRec

	// Shadow configurations: the timing stage's view of the three caches'
	// partitioning, updated wherever the sequential machine would call
	// Configure. The cache objects themselves belong to the functional
	// stage for the duration of the run.
	iWaysA, dWaysA, l2WaysA int
	iB, dB, l2B             bool
	iWays, dWays, l2Ways    int // physical way counts (the forcing rule)

	wg      sync.WaitGroup
	panicMu sync.Mutex
	panics  []any
}

// setI mirrors icache.Configure onto the shadow, including the validation
// panic and the waysA==Ways forcing rule.
func (p *parState) setI(waysA int, b bool) {
	if waysA < 1 || waysA > p.iWays {
		panic(fmt.Sprintf("cache L1I: A partition %d ways out of range 1..%d", waysA, p.iWays))
	}
	if waysA == p.iWays {
		b = false
	}
	p.iWaysA, p.iB = waysA, b
}

// setD mirrors the paired dcache.Configure / l2.Configure onto the shadows.
func (p *parState) setD(waysA int, b bool) {
	if waysA < 1 || waysA > p.dWays {
		panic(fmt.Sprintf("cache L1D: A partition %d ways out of range 1..%d", waysA, p.dWays))
	}
	db := b
	if waysA == p.dWays {
		db = false
	}
	p.dWaysA, p.dB = waysA, db
	if waysA < 1 || waysA > p.l2Ways {
		panic(fmt.Sprintf("cache L2: A partition %d ways out of range 1..%d", waysA, p.l2Ways))
	}
	lb := b
	if waysA == p.l2Ways {
		lb = false
	}
	p.l2WaysA, p.l2B = waysA, lb
}

func (p *parState) classI(pos int8) cache.Class {
	if pos == parNoAccess {
		panic("core: parallel desync: I-cache class consumed with no shipped access")
	}
	return cache.ClassifyPos(int(pos), p.iWaysA, p.iB)
}

func (p *parState) classD(pos int8) cache.Class {
	if pos == parNoAccess {
		panic("core: parallel desync: D-cache class consumed with no shipped access")
	}
	return cache.ClassifyPos(int(pos), p.dWaysA, p.dB)
}

func (p *parState) classL2(pos int8) cache.Class {
	if pos == parNoAccess {
		panic("core: parallel desync: L2 class consumed with no shipped access")
	}
	return cache.ClassifyPos(int(pos), p.l2WaysA, p.l2B)
}

// guard runs one worker stage, converting a panic into an abort that the
// other stages (and the caller) observe.
func (p *parState) guard(f func()) {
	defer func() {
		if e := recover(); e != nil {
			p.panicMu.Lock()
			p.panics = append(p.panics, e)
			p.panicMu.Unlock()
			p.abort.Store(true)
		}
		p.wg.Done()
	}()
	f()
}

// startParallel builds the rings and launches the worker stages. The
// caller's goroutine becomes the timing stage.
func (m *Machine) startParallel(n int64, degree int) *parState {
	p := &parState{}
	p.recs = newRing[parRec](parRingCap, &p.abort)
	p.samples = newRing[[4]queue.Sample](2048, &p.abort)
	p.stats = newRing[parStats](64, &p.abort)
	p.bounds = newRing[int64](8, &p.abort)

	// Before the functional stage blocks on any secondary ring it must
	// publish its produced instruction records — they are what lets the
	// timing stage reach the point that unblocks it.
	flushRecs := p.recs.flushProducer
	p.samples.onProdWait = flushRecs
	p.stats.onProdWait = flushRecs
	p.bounds.onConsWait = flushRecs

	p.iWays, p.iWaysA, p.iB = m.icache.Geometry().Ways, m.icache.WaysA(), m.icache.BEnabled()
	p.dWays, p.dWaysA, p.dB = m.dcache.Geometry().Ways, m.dcache.WaysA(), m.dcache.BEnabled()
	p.l2Ways, p.l2WaysA, p.l2B = m.l2.Geometry().Ways, m.l2.WaysA(), m.l2.BEnabled()

	// Seed the functional stage's first accounting boundary (-1: never).
	first := int64(-1)
	if m.cacheEvery > 0 && !m.cfg.DisableCacheAdapt {
		first = m.intervalStart + m.cacheEvery
	}
	p.bounds.push(first)

	m.par = p
	if degree >= 3 {
		p.gen = newRing[isa.Inst](parRingCap, &p.abort)
		p.gen.onConsWait = flushRecs
		p.wg.Add(1)
		go p.guard(func() { m.genLoop(p, n) })
	}
	p.wg.Add(1)
	go p.guard(func() { m.funcLoop(p, n) })
	return p
}

// genLoop is the generate stage: it drives the instruction source.
func (m *Machine) genLoop(p *parState, n int64) {
	g := p.gen
	for i := int64(0); i < n; i++ {
		if p.abort.Load() {
			return
		}
		slot, ok := g.reserve()
		if !ok {
			return
		}
		m.trace.Next(slot)
		g.advance()
	}
	g.flushProducer()
}

// funcLoop is the functional stage: it evolves the three accounting caches
// and the ILP tracker in exact instruction order, shipping per-access MRU
// positions and interval events to the timing stage.
func (m *Machine) funcLoop(p *parState, n int64) {
	icache, dcache, l2 := m.icache, m.dcache, m.l2
	tracker := m.tracker
	trackIQ := tracker != nil && !m.cfg.DisableIQAdapt
	phase := m.cfg.Mode == PhaseAdaptive

	// Static-mode classification state for the L2-occurrence rule; in
	// PhaseAdaptive mode the rule is simply pos < 0 (see package comment).
	iW, iB := icache.WaysA(), icache.BEnabled()
	dW, dB := dcache.WaysA(), dcache.BEnabled()

	// miss reports whether the timing stage will classify this position as
	// a Miss — i.e. whether the next-level access happens functionally.
	miss := func(pos, waysA int, b bool) bool {
		if phase {
			return pos < 0
		}
		return cache.ClassifyPos(pos, waysA, b) == cache.Miss
	}

	// Replica of the timing stage's fetch-group state machine (a pure
	// function of the PC stream), deciding when the I-cache is accessed.
	var curLine uint64
	lineLeft := 0

	nextB, ok := p.bounds.pop()
	if !ok {
		return
	}

	for count := int64(1); count <= n; count++ {
		if p.abort.Load() {
			return
		}
		rec, ok := p.recs.reserve()
		if !ok {
			return
		}
		if p.gen != nil {
			src, ok := p.gen.next()
			if !ok {
				return
			}
			rec.in = *src
			p.gen.release()
		} else {
			m.trace.Next(&rec.in)
		}
		in := &rec.in
		rec.iPos, rec.iL2, rec.dPos, rec.dL2, rec.fire = parNoAccess, parNoAccess, parNoAccess, parNoAccess, false

		// Fetch: a new line accesses the I-cache (and the L2 on a miss).
		line := in.PC >> 6
		if line != curLine || lineLeft == 0 {
			if line != curLine {
				pos := icache.AccessPos(in.PC, false)
				rec.iPos = int8(pos)
				if miss(pos, iW, iB) {
					rec.iL2 = int8(l2.AccessPos(in.PC&^uint64(L2LineBytes-1), false))
				}
			}
			curLine = line
			lineLeft = DecodeWidth
		}
		lineLeft--

		// ILP tracking at rename.
		if trackIQ && tracker.Observe(in) {
			if !p.samples.push(tracker.Samples()) {
				return
			}
			tracker.Reset()
			rec.fire = true
		}

		// Memory operations: L1D access, L2 on a (timed) miss. Stores are
		// write-allocate through the L2, matching execStore.
		switch in.Class {
		case isa.Load:
			pos := dcache.AccessPos(in.Addr, false)
			rec.dPos = int8(pos)
			if miss(pos, dW, dB) {
				rec.dL2 = int8(l2.AccessPos(in.Addr, false))
			}
		case isa.Store:
			pos := dcache.AccessPos(in.Addr, true)
			rec.dPos = int8(pos)
			if miss(pos, dW, dB) {
				rec.dL2 = int8(l2.AccessPos(in.Addr, true))
			}
		}
		p.recs.advance()

		// Accounting-interval boundary: snapshot and reset at the exact
		// instruction the timing stage will decide on, then learn the next
		// boundary (published by the timing stage after its decision).
		if count == nextB {
			if !p.stats.push(parStats{i: icache.Stats(), d: dcache.Stats(), l2: l2.Stats()}) {
				return
			}
			icache.ResetStats()
			dcache.ResetStats()
			l2.ResetStats()
			nextB, ok = p.bounds.pop()
			if !ok {
				return
			}
		}
	}
	p.recs.flushProducer()
}

// popSamples hands the timing stage the tracker samples for a fired
// interval; called from step() at the firing instruction's rename.
func (p *parState) popSamples() [4]queue.Sample {
	s, ok := p.samples.pop()
	if !ok {
		panic(parAbort{})
	}
	return s
}

// popStats hands the timing stage the cache statistics snapshot for the
// accounting boundary it just reached.
func (p *parState) popStats() parStats {
	s, ok := p.stats.pop()
	if !ok {
		panic(parAbort{})
	}
	return s
}

// publishBoundary tells the functional stage the next accounting boundary
// (in committed instructions; -1 means none will ever come).
func (p *parState) publishBoundary(count int64) {
	p.bounds.push(count) // only fails on abort, which unwinds elsewhere
}

// nextBoundary computes the instruction count of the next accounting
// decision from the just-re-read interval, or -1 when decisions are off.
func (m *Machine) nextBoundary() int64 {
	if m.cacheEvery > 0 && !m.cfg.DisableCacheAdapt {
		return m.intervalStart + m.cacheEvery
	}
	return -1
}

// RunParallel executes n instructions with intra-run parallelism of the
// given degree and returns a Result bit-identical to Run's. Degree <= 1
// runs sequentially; degrees above the pipeline depth clamp to 3. The
// degree is an execution-engine knob only: it never appears in the Result.
func (m *Machine) RunParallel(n int64, degree int) *Result {
	res, err := m.runParallel(nil, n, degree)
	if err != nil {
		panic(err) // unreachable: no context, and worker panics propagate
	}
	return res
}

// RunParallelContext is RunParallel with cooperative cancellation at the
// same quantum granularity as RunContext. On cancellation the pipeline is
// torn down, the partial result discarded and ctx.Err() returned.
func (m *Machine) RunParallelContext(ctx context.Context, n int64, degree int) (*Result, error) {
	if degree > maxParallelDegree {
		degree = maxParallelDegree
	}
	if degree <= 1 {
		return m.RunContext(ctx, n)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return m.runParallel(ctx, n, degree)
}

// runParallel drives the timing stage on the caller's goroutine and joins
// the worker stages before returning.
func (m *Machine) runParallel(ctx context.Context, n int64, degree int) (*Result, error) {
	if degree > maxParallelDegree {
		degree = maxParallelDegree
	}
	if degree <= 1 {
		if ctx != nil {
			return m.RunContext(ctx, n)
		}
		return m.Run(n), nil
	}
	p := m.startParallel(n, degree)

	var err error
	var timingPanic any
	func() {
		defer func() {
			if e := recover(); e != nil {
				if _, ok := e.(parAbort); !ok {
					timingPanic = e
				}
				p.abort.Store(true)
			}
		}()
		checkCtx := ctx != nil && ctx.Done() != nil
		for done := int64(0); done < n; {
			q := n - done
			if q > cancelQuantum {
				q = cancelQuantum
			}
			for i := int64(0); i < q; i++ {
				rec, ok := p.recs.next()
				if !ok {
					panic(parAbort{})
				}
				p.cur = rec
				m.step(&rec.in)
				p.recs.release()
			}
			done += q
			if checkCtx {
				select {
				case <-ctx.Done():
					err = ctx.Err()
					panic(parAbort{})
				default:
				}
			}
		}
		p.recs.flushConsumer()
	}()

	p.wg.Wait()
	m.par = nil
	if timingPanic != nil {
		panic(timingPanic)
	}
	if len(p.panics) > 0 {
		panic(p.panics[0])
	}
	if err != nil {
		return nil, err
	}

	// Fold the final shadow configurations back onto the cache objects so
	// the post-run machine state matches a sequential run's.
	m.icache.Configure(p.iWaysA, p.iB)
	m.dcache.Configure(p.dWaysA, p.dB)
	m.l2.Configure(p.l2WaysA, p.l2B)

	noteParallelRun(degree)
	return m.result(), nil
}

// RunWorkloadParallel is RunWorkload with intra-run parallelism.
func RunWorkloadParallel(spec workload.Spec, cfg Config, n int64, degree int) *Result {
	return NewMachine(spec, cfg).RunParallel(n, degree)
}

// RunSourceParallel is RunSource with intra-run parallelism.
func RunSourceParallel(src InstSource, cfg Config, n int64, degree int) *Result {
	return NewMachineSource(src, cfg).RunParallel(n, degree)
}

// RunWorkloadParallelContext is RunWorkloadContext with intra-run
// parallelism.
func RunWorkloadParallelContext(ctx context.Context, spec workload.Spec, cfg Config, n int64, degree int) (*Result, error) {
	return NewMachine(spec, cfg).RunParallelContext(ctx, n, degree)
}

// RunSourceParallelContext is RunSourceContext with intra-run parallelism.
func RunSourceParallelContext(ctx context.Context, src InstSource, cfg Config, n int64, degree int) (*Result, error) {
	return NewMachineSource(src, cfg).RunParallelContext(ctx, n, degree)
}
