package core

import (
	"testing"

	"gals/internal/clock"
	"gals/internal/isa"
	"gals/internal/timing"
	"gals/internal/workload"
)

// runInstrs drives a machine n instructions forward.
func runInstrs(m *Machine, n int) {
	var in isa.Inst
	for i := 0; i < n; i++ {
		m.trace.Next(&in)
		m.step(&in)
	}
}

func TestCacheDecideUpsizesUnderPressure(t *testing.T) {
	// A large, low-locality working set must push the D/L2 controller off
	// the base configuration within a few intervals.
	spec := bench(t, "em3d")
	m := NewMachine(spec, phaseCfg())
	runInstrs(m, 4*CacheIntervalInstrs)
	if m.dCfg == timing.DCache32K1W && m.pendingLS == nil {
		t.Errorf("em3d left the D-cache at the base configuration after 4 intervals")
	}
}

func TestCacheDecideStaysSmallWithoutPressure(t *testing.T) {
	spec := bench(t, "adpcm encode")
	m := NewMachine(spec, phaseCfg())
	runInstrs(m, 4*CacheIntervalInstrs)
	if m.dCfg != timing.DCache32K1W {
		t.Errorf("adpcm moved the D-cache to %v despite an 8KB working set", m.dCfg)
	}
	if m.iCfg != timing.ICache16K1W {
		t.Errorf("adpcm moved the I-cache to %v despite a 4KB kernel", m.iCfg)
	}
}

func TestPendingReconfigAppliesAfterLock(t *testing.T) {
	spec := bench(t, "em3d")
	cfg := phaseCfg()
	m := NewMachine(spec, cfg)
	// Run until a D-cache reconfiguration is initiated.
	var in isa.Inst
	for i := 0; i < 10*CacheIntervalInstrs && m.pendingLS == nil; i++ {
		m.trace.Next(&in)
		m.step(&in)
	}
	if m.pendingLS == nil {
		t.Skip("no reconfiguration initiated in window")
	}
	lockDone := m.pendingLS.at
	final := timing.DCacheConfig(m.pendingLS.final)
	// During the lock the transitional (smaller) configuration rules.
	if m.dCfg != timing.DCache32K1W {
		t.Errorf("transitional config %v, want base (simpler) during lock", m.dCfg)
	}
	// Advance past the lock completion.
	for i := 0; i < 20*CacheIntervalInstrs && m.pendingLS != nil; i++ {
		m.trace.Next(&in)
		m.step(&in)
	}
	if m.pendingLS != nil {
		t.Fatal("pending reconfiguration never applied")
	}
	if m.dCfg != final {
		t.Errorf("applied config %v, want %v", m.dCfg, final)
	}
	if m.lastCommit < lockDone {
		t.Error("pending applied before the PLL lock completed")
	}
	// The load/store clock now runs at the new configuration's period.
	if got := m.clocks[clock.LoadStore].CurrentPeriod(); got != final.AdaptPeriod() {
		t.Errorf("LS period %d, want %d", got, final.AdaptPeriod())
	}
}

func TestOnlyOneInFlightChangePerDomain(t *testing.T) {
	spec := bench(t, "apsi")
	m := NewMachine(spec, phaseCfg())
	var in isa.Inst
	for i := 0; i < 8*CacheIntervalInstrs; i++ {
		m.trace.Next(&in)
		m.step(&in)
		// While a change is pending, decide() must not start another:
		// SetPeriodAt would otherwise try to rewrite clock history.
		if m.pendingLS != nil && m.pendingLS.at < m.lastCommit {
			m.applyPending()
			if m.pendingLS != nil {
				t.Fatal("pending change survived applyPending past its time")
			}
		}
	}
}

func TestIntervalStatsResetEachDecision(t *testing.T) {
	spec := bench(t, "gzip")
	m := NewMachine(spec, phaseCfg())
	runInstrs(m, CacheIntervalInstrs+10)
	// Just past the first decision: the caches' interval stats restarted.
	if acc := m.icache.Stats().Accesses; acc > uint64(CacheIntervalInstrs) {
		t.Errorf("i-cache stats not reset: %d accesses", acc)
	}
}

func TestLockTimeScaling(t *testing.T) {
	spec := bench(t, "gzip")
	cfg := phaseCfg()
	cfg.PLLScale = 0.5
	m := NewMachine(spec, cfg)
	d := m.lockTime()
	if d < timing.FS(float64(clock.PLLLockMin)*0.5) || d > timing.FS(float64(clock.PLLLockMax)*0.5) {
		t.Errorf("scaled lock %d outside 0.5x[%d, %d]", d, clock.PLLLockMin, clock.PLLLockMax)
	}
	cfg.PLLScale = 0 // zero means unscaled
	m2 := NewMachine(spec, cfg)
	d2 := m2.lockTime()
	if d2 < clock.PLLLockMin || d2 > clock.PLLLockMax {
		t.Errorf("unscaled lock %d outside [%d, %d]", d2, clock.PLLLockMin, clock.PLLLockMax)
	}
}

func TestMSTPhaseFlipping(t *testing.T) {
	// mst's bursty phases make the cache controller flip configurations
	// (paper Section 5.1 explains why Phase-Adaptive trails
	// Program-Adaptive there).
	spec := bench(t, "mst")
	cfg := phaseCfg()
	cfg.RecordTrace = true
	r := RunWorkload(spec, cfg, 100_000)
	dcacheEvents := 0
	for _, e := range r.Stats.ReconfigEvents {
		if e.Kind == "dcache" {
			dcacheEvents++
		}
	}
	if dcacheEvents < 2 {
		t.Errorf("mst produced %d d-cache reconfigurations, want flipping behaviour", dcacheEvents)
	}
}

func TestStoreForwarding(t *testing.T) {
	// A load that hits a recent store's address must not be slower than
	// the same load without the store (forwarding, not ordering stalls).
	mkSpec := func(name string, seed int64) workload.Spec {
		p := workload.Defaults()
		p.DataKB = 8
		p.StrideFrac, p.StackFrac = 0, 1 // all accesses in the hot stack
		return workload.Spec{Name: name, Seed: seed, Base: p}
	}
	r := RunWorkload(mkSpec("fwd", 3), DefaultSync(), 20_000)
	if r.Stats.Loads == 0 {
		t.Fatal("no loads")
	}
	// With an 8KB region and a 4KB stack, everything hits L1 after
	// warmup; forwarding must never make loads slower than cache hits,
	// so throughput should be healthy.
	if ipc := r.IPnsec(); ipc < 0.3 {
		t.Errorf("stack-heavy workload throughput %.3f instr/ns: forwarding path suspect", ipc)
	}
}

func TestRecordTraceGating(t *testing.T) {
	spec := bench(t, "apsi")
	cfg := phaseCfg()
	cfg.RecordTrace = false
	r := RunWorkload(spec, cfg, 60_000)
	if len(r.Stats.ReconfigEvents) != 0 {
		t.Error("events recorded with RecordTrace=false")
	}
	if r.Stats.Reconfigs == 0 {
		t.Error("reconfig counter should still count with RecordTrace=false")
	}
}
