package core

import (
	"sync"
	"sync/atomic"
)

// Simulator-boundary observability: process-wide counters folded in ONCE
// per completed run, at result construction — never inside the
// instruction loop, so the hot path's cost is untouched (the A/B bench in
// PERFORMANCE.md pins the overhead under 1%). The service exports these
// as /metrics series; CLI tools share the same process-wide truth.

var (
	simRuns      atomic.Int64
	simInstrs    atomic.Int64
	simRunsPar   atomic.Int64
	simParDegree atomic.Int64

	reconfigMu       sync.Mutex
	reconfigByPolicy map[string]int64

	reconfigDirMu sync.Mutex
	reconfigByDir map[ReconfigCell]int64

	telemetryRuns  atomic.Int64
	telemetryBytes atomic.Int64
)

// ReconfigCell keys the process-wide reconfiguration-event counters: one
// cell per (structure, direction) pair, the label set of the
// gals_reconfig_events_total metric.
type ReconfigCell struct {
	Structure string
	Direction string
}

// noteRun folds one completed run into the boundary counters: a handful of
// atomic adds plus, only when the run reconfigured, one short mutex
// section on a policy-keyed map (runs are 0.1ms+; this is noise).
func noteRun(cfg Config, st *Stats) {
	simRuns.Add(1)
	simInstrs.Add(st.Instructions)
	if st.Reconfigs == 0 {
		return
	}
	pol := policyLabel(cfg)
	reconfigMu.Lock()
	if reconfigByPolicy == nil {
		reconfigByPolicy = make(map[string]int64)
	}
	reconfigByPolicy[pol] += st.Reconfigs
	reconfigMu.Unlock()
}

// policyLabel names the adaptation policy a run executed under for the
// per-policy reconfiguration metric: the explicit registry name when one
// was selected, the paper controllers ("paper") for a default
// Phase-Adaptive run, "none" otherwise (sync and program-adaptive
// machines never reconfigure on-line).
func policyLabel(cfg Config) string {
	if cfg.Policy != "" {
		return cfg.Policy
	}
	if cfg.Mode == PhaseAdaptive {
		return "paper"
	}
	return "none"
}

// noteReconfigDirections folds a completed run's per-structure,
// per-direction reconfiguration counts into the process-wide map, then
// zeroes them so a machine driven in multiple Run calls folds each
// completion's delta exactly once. Runs that never reconfigured pay only
// the array scan.
func noteReconfigDirections(counts *[4][3]int64) {
	var locked bool
	for k := range counts {
		for d := range counts[k] {
			n := counts[k][d]
			if n == 0 {
				continue
			}
			if !locked {
				reconfigDirMu.Lock()
				locked = true
				if reconfigByDir == nil {
					reconfigByDir = make(map[ReconfigCell]int64)
				}
			}
			reconfigByDir[ReconfigCell{reconfigNames[k], reconfigDirections[d]}] += n
			counts[k][d] = 0
		}
	}
	if locked {
		reconfigDirMu.Unlock()
	}
}

// ReconfigEventsByCell snapshots the process-wide reconfiguration-event
// counts by (structure, direction).
func ReconfigEventsByCell() map[ReconfigCell]int64 {
	reconfigDirMu.Lock()
	defer reconfigDirMu.Unlock()
	out := make(map[ReconfigCell]int64, len(reconfigByDir))
	for k, v := range reconfigByDir {
		out[k] = v
	}
	return out
}

// NoteTelemetryArtifact folds one serialized telemetry artifact into the
// process-wide counters (called by whoever persists the artifact, at
// artifact granularity — never on a simulation path).
func NoteTelemetryArtifact(bytes int64) {
	telemetryRuns.Add(1)
	telemetryBytes.Add(bytes)
}

// TelemetryRuns reports how many telemetry artifacts this process has
// serialized; TelemetryBytes their total encoded size.
func TelemetryRuns() int64  { return telemetryRuns.Load() }
func TelemetryBytes() int64 { return telemetryBytes.Load() }

// noteParallelRun folds one completed intra-run-parallel run into the
// boundary counters (the run itself is also counted by noteRun).
func noteParallelRun(degree int) {
	simRunsPar.Add(1)
	simParDegree.Store(int64(degree))
}

// SimRunsParallel reports how many completed runs in this process used
// intra-run parallel execution (RunParallel with an effective degree >= 2).
func SimRunsParallel() int64 { return simRunsPar.Load() }

// SimParallelDegree reports the effective stage count of the most recent
// parallel run (0 until one completes) — the process-level gauge behind
// the service's parallel-degree metric.
func SimParallelDegree() int64 { return simParDegree.Load() }

// SimRuns reports the number of simulation runs completed in this process
// (live and replayed; cache hits never reach the simulator and do not
// count).
func SimRuns() int64 { return simRuns.Load() }

// SimInstructions reports the total instructions committed across all
// completed runs in this process.
func SimInstructions() int64 { return simInstrs.Load() }

// ReconfigsByPolicy snapshots the total on-line reconfigurations committed
// per adaptation policy.
func ReconfigsByPolicy() map[string]int64 {
	reconfigMu.Lock()
	defer reconfigMu.Unlock()
	out := make(map[string]int64, len(reconfigByPolicy))
	for k, v := range reconfigByPolicy {
		out[k] = v
	}
	return out
}
