package workload

import (
	"bytes"
	"testing"

	"gals/internal/isa"
)

// TestCodecRoundTrip: every field of every instruction of a recorded
// stream survives encode -> decode exactly.
func TestCodecRoundTrip(t *testing.T) {
	spec, _ := ByName("apsi") // phase-cycling, FP-heavy: exercises all classes
	tr := spec.NewTrace()
	var in, out isa.Inst
	buf := make([]byte, 0, EncodedInstSize)
	for i := 0; i < 20_000; i++ {
		tr.Next(&in)
		buf = appendInst(buf[:0], &in)
		if len(buf) != EncodedInstSize {
			t.Fatalf("encoded %d bytes, want %d", len(buf), EncodedInstSize)
		}
		decodeInst(buf, &out)
		if in != out {
			t.Fatalf("instruction %d did not round-trip: %v vs %v", i, in, out)
		}
	}
}

// TestRecordToMatchesRecord: the streaming encoder produces exactly the
// slab that RecordingFromEncoded replays, bit-identical to Spec.Record.
func TestRecordToMatchesRecord(t *testing.T) {
	spec, _ := ByName("gcc")
	const n = 3000
	var blob bytes.Buffer
	if err := spec.RecordTo(&blob, n); err != nil {
		t.Fatal(err)
	}
	if blob.Len() != n*EncodedInstSize {
		t.Fatalf("streamed %d bytes, want %d", blob.Len(), n*EncodedInstSize)
	}
	enc, err := RecordingFromEncoded(spec, blob.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if enc.Len() != n {
		t.Fatalf("encoded recording length %d, want %d", enc.Len(), n)
	}
	mem := spec.Record(n)
	a, b := enc.Replay(), mem.Replay()
	var x, y isa.Inst
	for i := 0; i < n+100; i++ { // +100 crosses into the live-tail fallback
		a.Next(&x)
		b.Next(&y)
		if x != y {
			t.Fatalf("encoded replay differs at instruction %d", i)
		}
	}
}

// TestRecordingFromEncodedRejectsRaggedSlabs: a slab that is not a whole
// number of instructions is an error, not a silent truncation.
func TestRecordingFromEncodedRejectsRaggedSlabs(t *testing.T) {
	spec, _ := ByName("gcc")
	if _, err := RecordingFromEncoded(spec, make([]byte, EncodedInstSize+7)); err == nil {
		t.Error("ragged slab accepted")
	}
	if _, err := RecordingFromEncoded(spec, nil); err == nil {
		t.Error("empty slab accepted")
	}
}

// fakeBacking serves pre-encoded slabs and counts calls.
type fakeBacking struct {
	calls int
	fail  bool
}

func (f *fakeBacking) Recording(s Spec, window int64) (*Recording, error) {
	f.calls++
	if f.fail {
		return nil, bytes.ErrTooLarge
	}
	var blob bytes.Buffer
	if err := s.RecordTo(&blob, window); err != nil {
		return nil, err
	}
	return RecordingFromEncoded(s, blob.Bytes())
}

// TestBackedPool: a backed pool asks the backing once per benchmark and the
// result replays identically to an in-memory pool; a failing backing
// degrades to in-memory recording.
func TestBackedPool(t *testing.T) {
	spec, _ := ByName("em3d")
	const n = 800

	fb := &fakeBacking{}
	p := NewBackedPool(n, fb)
	rec := p.Get(spec)
	if fb.calls != 1 {
		t.Fatalf("backing called %d times, want 1", fb.calls)
	}
	if p.Get(spec) != rec {
		t.Fatal("backed pool did not share the recording")
	}
	if fb.calls != 1 {
		t.Fatalf("backing re-called on a cached benchmark (%d calls)", fb.calls)
	}
	want := NewPool(n).Get(spec)
	a, b := rec.Replay(), want.Replay()
	var x, y isa.Inst
	for i := 0; i < n; i++ {
		a.Next(&x)
		b.Next(&y)
		if x != y {
			t.Fatalf("backed replay differs at instruction %d", i)
		}
	}

	bad := NewBackedPool(n, &fakeBacking{fail: true})
	rec2 := bad.Get(spec)
	if rec2 == nil || rec2.Len() != n {
		t.Fatal("failing backing did not degrade to in-memory recording")
	}
	c := rec2.Replay()
	d := want.Replay()
	for i := 0; i < n; i++ {
		c.Next(&x)
		d.Next(&y)
		if x != y {
			t.Fatalf("degraded replay differs at instruction %d", i)
		}
	}
}
