package workload

import (
	"sync"
	"testing"

	"gals/internal/isa"
)

// TestRecordingMatchesLiveStream verifies a recording is instruction-for-
// instruction identical to the live generator.
func TestRecordingMatchesLiveStream(t *testing.T) {
	for _, name := range []string{"gcc", "em3d", "apsi"} {
		spec, ok := ByName(name)
		if !ok {
			t.Fatalf("missing benchmark %q", name)
		}
		const n = 5000
		rec := spec.Record(n)
		if rec.Len() != n {
			t.Fatalf("%s: recorded %d instructions, want %d", name, rec.Len(), n)
		}
		live := spec.NewTrace()
		rp := rec.Replay()
		var a, b isa.Inst
		for i := 0; i < n; i++ {
			live.Next(&a)
			rp.Next(&b)
			if a != b {
				t.Fatalf("%s: instruction %d differs: live %v, replay %v", name, i, a, b)
			}
		}
	}
}

// TestReplayOverrunFallsBackToLive checks that reading past the recorded
// window continues with exactly the instructions a live trace would have
// produced.
func TestReplayOverrunFallsBackToLive(t *testing.T) {
	spec, _ := ByName("gcc")
	const recorded, total = 1000, 2500
	rp := spec.Record(recorded).Replay()
	live := spec.NewTrace()
	var a, b isa.Inst
	for i := 0; i < total; i++ {
		live.Next(&a)
		rp.Next(&b)
		if a != b {
			t.Fatalf("instruction %d differs past recording end: live %v, replay %v", i, a, b)
		}
	}
	if rp.Count() != total {
		t.Errorf("Count = %d, want %d", rp.Count(), total)
	}
}

// TestReplaysAreIndependent runs two replays of one recording interleaved.
func TestReplaysAreIndependent(t *testing.T) {
	spec, _ := ByName("art")
	rec := spec.Record(100)
	p1, p2 := rec.Replay(), rec.Replay()
	var a, b isa.Inst
	p1.Next(&a)
	p1.Next(&a)
	p2.Next(&b)
	first := rec.insts[0]
	if b != first {
		t.Errorf("second replay did not start at instruction 0")
	}
	if p1.Count() != 2 || p2.Count() != 1 {
		t.Errorf("cursor counts %d/%d, want 2/1", p1.Count(), p2.Count())
	}
}

// TestPoolSharesOneRecording checks the pool records each benchmark once
// and hands every requester the same slab, including under concurrency.
func TestPoolSharesOneRecording(t *testing.T) {
	spec, _ := ByName("gcc")
	pool := NewPool(500)
	if pool.Window() != 500 {
		t.Fatalf("Window = %d, want 500", pool.Window())
	}
	first := pool.Get(spec)
	const workers = 16
	got := make([]*Recording, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = pool.Get(spec)
		}(i)
	}
	wg.Wait()
	for i, r := range got {
		if r != first {
			t.Fatalf("requester %d got a different recording", i)
		}
	}
	if pool.Size() != 1 {
		t.Errorf("pool recorded %d benchmarks, want 1", pool.Size())
	}
}

// TestPoolNameCollisionFallsBack: a caller-constructed Spec that reuses a
// cached name but differs otherwise must not be served the cached slab.
func TestPoolNameCollisionFallsBack(t *testing.T) {
	orig, _ := ByName("gcc")
	pool := NewPool(200)
	shared := pool.Get(orig)
	variant := orig
	variant.Seed = orig.Seed + 999
	private := pool.Get(variant)
	if private == shared {
		t.Fatal("colliding spec was served the cached recording")
	}
	// The fallback recording is the variant's own stream.
	live := variant.NewTrace()
	rp := private.Replay()
	var a, b isa.Inst
	for i := 0; i < 200; i++ {
		live.Next(&a)
		rp.Next(&b)
		if a != b {
			t.Fatalf("fallback recording differs from variant's live trace at %d", i)
		}
	}
	// The original keeps hitting the shared slab.
	if pool.Get(orig) != shared {
		t.Error("original spec no longer shares its recording")
	}
}

// TestNilPoolAccessors ensures the nil-pool conveniences hold.
func TestNilPoolAccessors(t *testing.T) {
	var p *Pool
	if p.Window() != 0 || p.Size() != 0 {
		t.Error("nil pool should report zero window and size")
	}
}
