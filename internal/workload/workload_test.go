package workload

import (
	"testing"

	"gals/internal/isa"
)

func testSpec() Spec {
	return Spec{Name: "test", Seed: 123, Base: Defaults()}
}

func TestDeterministicReplay(t *testing.T) {
	a := testSpec().NewTrace()
	b := testSpec().NewTrace()
	var x, y isa.Inst
	for i := 0; i < 50_000; i++ {
		a.Next(&x)
		b.Next(&y)
		if x != y {
			t.Fatalf("traces diverge at %d: %v vs %v", i, x, y)
		}
	}
	if a.Count() != 50_000 {
		t.Errorf("Count = %d, want 50000", a.Count())
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := testSpec().NewTrace()
	s := testSpec()
	s.Seed = 999
	b := s.NewTrace()
	var x, y isa.Inst
	same := 0
	for i := 0; i < 1000; i++ {
		a.Next(&x)
		b.Next(&y)
		if x == y {
			same++
		}
	}
	if same == 1000 {
		t.Error("different seeds produced identical traces")
	}
}

func TestInstructionMix(t *testing.T) {
	p := Defaults()
	p.LoadFrac, p.StoreFrac = 0.3, 0.1
	p.FPFrac = 0.4
	tr := (Spec{Name: "mix", Seed: 7, Base: p}).NewTrace()
	var in isa.Inst
	counts := map[isa.OpClass]int{}
	n := 200_000
	for i := 0; i < n; i++ {
		tr.Next(&in)
		counts[in.Class]++
	}
	loadFrac := float64(counts[isa.Load]) / float64(n)
	storeFrac := float64(counts[isa.Store]) / float64(n)
	// Body instructions carry the mix; control ops dilute it slightly.
	if loadFrac < 0.2 || loadFrac > 0.32 {
		t.Errorf("load fraction %.3f, want ~0.26 (0.3 of body)", loadFrac)
	}
	if storeFrac < 0.06 || storeFrac > 0.12 {
		t.Errorf("store fraction %.3f, want ~0.086", storeFrac)
	}
	fp := counts[isa.FPAdd] + counts[isa.FPMult] + counts[isa.FPDiv] + counts[isa.FPSqrt]
	if fp == 0 {
		t.Error("no FP operations generated with FPFrac 0.4")
	}
	if counts[isa.Branch] == 0 || counts[isa.Jump] == 0 {
		t.Error("no control flow generated")
	}
}

func TestPCsWithinCodeFootprint(t *testing.T) {
	p := Defaults()
	p.CodeKB = 16
	tr := (Spec{Name: "pcs", Seed: 9, Base: p}).NewTrace()
	var in isa.Inst
	lo, hi := uint64(codeBase), uint64(codeBase+16*1024)
	for i := 0; i < 100_000; i++ {
		tr.Next(&in)
		if in.PC < lo || in.PC >= hi {
			t.Fatalf("PC %#x outside code region [%#x, %#x)", in.PC, lo, hi)
		}
		if in.PC%4 != 0 {
			t.Fatalf("unaligned PC %#x", in.PC)
		}
	}
}

func TestAddressesInRegions(t *testing.T) {
	p := Defaults()
	p.DataKB = 64
	tr := (Spec{Name: "addr", Seed: 11, Base: p}).NewTrace()
	var in isa.Inst
	for i := 0; i < 100_000; i++ {
		tr.Next(&in)
		if !in.Class.IsMem() {
			continue
		}
		a := in.Addr
		okData := a >= dataBase && a < dataBase+64*1024
		okHot := a >= hotBase && a < hotBase+uint64(p.HotDataKB)*1024
		okStack := a >= stackBase && a < stackBase+stackKB*1024
		if !okData && !okStack && !okHot {
			t.Fatalf("address %#x outside data/stack/hot regions", a)
		}
		if a%8 != 0 && in.Size == 8 {
			t.Fatalf("unaligned dword address %#x", a)
		}
	}
}

func TestBranchesEndBlocks(t *testing.T) {
	tr := testSpec().NewTrace()
	var in isa.Inst
	var prevCtrl bool
	linePCs := map[uint64]bool{}
	for i := 0; i < 50_000; i++ {
		tr.Next(&in)
		if prevCtrl {
			// After control flow, the next instruction starts a block
			// (offset 0 within its line).
			if in.PC%blockSpacing != 0 {
				t.Fatalf("post-branch PC %#x not block-aligned", in.PC)
			}
		}
		prevCtrl = in.Class.IsCtrl()
		if in.Class == isa.Branch && in.Taken && in.Target == in.PC+4 {
			t.Fatalf("taken branch with fall-through target at %#x", in.PC)
		}
		linePCs[in.PC>>6] = true
	}
	if len(linePCs) < 10 {
		t.Errorf("only %d distinct lines touched", len(linePCs))
	}
}

func TestPhasesChangeBehaviour(t *testing.T) {
	small := with(Defaults(), func(p *Params) { p.DataKB = 16; p.FPFrac = 0 })
	big := with(Defaults(), func(p *Params) { p.DataKB = 512; p.FPFrac = 0.5 })
	spec := Spec{
		Name: "phases", Seed: 13, Base: small,
		Phases: []Phase{phase(10_000, small), phase(10_000, big)},
	}
	tr := spec.NewTrace()
	var in isa.Inst
	fpIn := func(n int) int {
		c := 0
		for i := 0; i < n; i++ {
			tr.Next(&in)
			if in.Class.IsFP() {
				c++
			}
		}
		return c
	}
	phase1 := fpIn(10_000)
	phase2 := fpIn(10_000)
	if phase1 >= phase2 {
		t.Errorf("phase FP counts %d vs %d: phase schedule not applied", phase1, phase2)
	}
	// Phases cycle back.
	phase3 := fpIn(10_000)
	if phase3 >= phase2/2 {
		t.Errorf("phase 3 FP count %d did not return to the low phase (phase2=%d)", phase3, phase2)
	}
}

func TestSuiteRegistry(t *testing.T) {
	suite := Suite()
	if len(suite) != 40 {
		t.Fatalf("suite has %d runs, want 40 (Tables 6-8)", len(suite))
	}
	seen := map[string]bool{}
	families := map[string]int{}
	for _, s := range suite {
		if seen[s.Name] {
			t.Errorf("duplicate run %q", s.Name)
		}
		seen[s.Name] = true
		families[s.Suite]++
		if s.Window == "" || s.Seed == 0 {
			t.Errorf("%s: missing window or seed", s.Name)
		}
		if s.Base.CodeKB <= 0 || s.Base.DataKB <= 0 {
			t.Errorf("%s: implausible footprints %+v", s.Name, s.Base)
		}
	}
	if families["MediaBench"] != 16 {
		t.Errorf("MediaBench has %d runs, want 16", families["MediaBench"])
	}
	if families["Olden"] != 9 {
		t.Errorf("Olden has %d runs, want 9", families["Olden"])
	}
	if families["SPEC2000-Int"]+families["SPEC2000-FP"] != 15 {
		t.Errorf("SPEC2000 has %d runs, want 15", families["SPEC2000-Int"]+families["SPEC2000-FP"])
	}
	if _, ok := ByName("gcc"); !ok {
		t.Error("ByName(gcc) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
	if len(Names()) != 40 {
		t.Error("Names() length mismatch")
	}
}

func TestEveryBenchmarkGenerates(t *testing.T) {
	for _, s := range Suite() {
		tr := s.NewTrace()
		var in isa.Inst
		branches := 0
		for i := 0; i < 5000; i++ {
			tr.Next(&in)
			if in.Class == isa.Branch {
				branches++
			}
		}
		if branches == 0 {
			t.Errorf("%s: no branches in 5000 instructions", s.Name)
		}
	}
}

func TestNoisyBranchesAreNoisy(t *testing.T) {
	quiet := with(Defaults(), func(p *Params) { p.NoiseFrac = 0; p.LoopFrac = 0 })
	noisy := with(Defaults(), func(p *Params) { p.NoiseFrac = 1; p.LoopFrac = 0 })
	flipRate := func(p Params) float64 {
		tr := (Spec{Name: "n", Seed: 21, Base: p}).NewTrace()
		var in isa.Inst
		last := map[uint64]bool{}
		flips, total := 0, 0
		for i := 0; i < 100_000; i++ {
			tr.Next(&in)
			if in.Class != isa.Branch {
				continue
			}
			if prev, ok := last[in.PC]; ok {
				total++
				if prev != in.Taken {
					flips++
				}
			}
			last[in.PC] = in.Taken
		}
		return float64(flips) / float64(total)
	}
	q, n := flipRate(quiet), flipRate(noisy)
	if n < 2*q {
		t.Errorf("noisy flip rate %.3f not well above quiet %.3f", n, q)
	}
	if n < 0.3 {
		t.Errorf("fully-noisy flip rate %.3f, want ~0.5", n)
	}
}
