// Recorded traces: a benchmark's deterministic instruction stream captured
// once into an immutable slab and replayed by any number of concurrent
// simulation runs. The design-space sweeps of paper Section 4 run every
// configuration on the same dynamic instruction window, so regenerating the
// stream per run (12,800-40,960 times per sweep) is pure waste; a Recording
// amortizes the generation cost to once per benchmark.
//
// A Recording's slab takes one of two forms: a decoded []isa.Inst in heap
// (Spec.Record), or an encoded byte slab (RecordingFromEncoded) that may be
// an mmap'd file from internal/recstore — the latter is how paper-scale
// windows (millions of instructions x 40 benchmarks) fit in bounded memory.
// Replays of both forms are bit-identical to live generation.
package workload

import (
	"context"
	"fmt"
	"reflect"
	"sync"

	"gals/internal/isa"
)

// Recording is an immutable recorded prefix of a benchmark's trace. It is
// safe for concurrent use: every Replay carries its own cursor and only
// reads the shared slab.
type Recording struct {
	spec  Spec
	insts []isa.Inst // decoded slab (nil when raw-backed)
	raw   []byte     // encoded slab (mmap or heap backed; nil when decoded)
	count int64
}

// Record captures the first n instructions of the benchmark's deterministic
// stream. The result replays bit-identically to a live Trace.
func (s Spec) Record(n int64) *Recording {
	if n <= 0 {
		panic(fmt.Sprintf("workload: non-positive recording length %d", n))
	}
	rec, _ := s.RecordContext(nil, n)
	return rec
}

// RecordContext is Record bounded by ctx: cancellation is observed every
// 4096 instructions, and a cancelled capture returns ctx's error with no
// recording. A nil or never-cancellable ctx cannot fail (for positive n) and
// produces exactly what Record does.
func (s Spec) RecordContext(ctx context.Context, n int64) (*Recording, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: non-positive recording length %d", n)
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
		select {
		case <-done:
			// Check before committing n*40 bytes of heap to a doomed capture.
			return nil, ctx.Err()
		default:
		}
	}
	tr := s.NewTrace()
	insts := make([]isa.Inst, n)
	for i := range insts {
		if done != nil && i&4095 == 4095 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		tr.Next(&insts[i])
	}
	return &Recording{spec: s, insts: insts, count: n}, nil
}

// Spec returns the benchmark description.
func (r *Recording) Spec() Spec { return r.spec }

// Len returns the number of recorded instructions.
func (r *Recording) Len() int64 { return r.count }

// Replay returns a fresh cursor over the recording. Replays are cheap;
// create one per simulation run.
func (r *Recording) Replay() *Replay { return &Replay{rec: r} }

// replayChunk is the number of instructions a raw-backed replay decodes at
// a time: large enough to amortize the decode loop, small enough that a
// worker's cursor costs ~20 KB regardless of the recording's length.
const replayChunk = 512

// Replay streams a Recording from the beginning. Reading past the recorded
// window falls back to live generation (the generator is deterministic, so
// the continuation is exactly what a live Trace would have produced); the
// fallback regenerates and discards the recorded prefix once, so size
// recordings to the simulation window when that matters.
type Replay struct {
	rec  *Recording
	pos  int64
	tail *Trace

	// Decode window over a raw-backed slab: buf holds instructions
	// [bufStart, bufStart+len(buf)).
	buf      []isa.Inst
	bufStart int64
}

// Spec returns the benchmark description.
func (p *Replay) Spec() Spec { return p.rec.spec }

// Count returns the number of instructions replayed so far.
func (p *Replay) Count() int64 { return p.pos }

// Next fills in with the next dynamic instruction.
func (p *Replay) Next(in *isa.Inst) {
	if p.pos < p.rec.count {
		if p.rec.insts != nil {
			*in = p.rec.insts[p.pos]
			p.pos++
			return
		}
		if p.pos >= p.bufStart+int64(len(p.buf)) || p.pos < p.bufStart {
			p.fill()
		}
		*in = p.buf[p.pos-p.bufStart]
		p.pos++
		return
	}
	if p.tail == nil {
		p.tail = p.rec.spec.NewTrace()
		var skip isa.Inst
		for i := int64(0); i < p.rec.count; i++ {
			p.tail.Next(&skip)
		}
	}
	p.pos++
	p.tail.Next(in)
}

// fill decodes the next chunk of a raw-backed slab at the cursor.
func (p *Replay) fill() {
	n := p.rec.count - p.pos
	if n > replayChunk {
		n = replayChunk
	}
	if p.buf == nil {
		p.buf = make([]isa.Inst, replayChunk)
	}
	p.buf = p.buf[:n]
	src := p.rec.raw[p.pos*EncodedInstSize:]
	for i := range p.buf {
		decodeInst(src[i*EncodedInstSize:], &p.buf[i])
	}
	p.bufStart = p.pos
}

// Backing supplies recordings from somewhere other than live generation —
// internal/recstore implements it with mmap'd on-disk slabs. A Backing must
// be safe for concurrent use and must return recordings of exactly window
// instructions, bit-identical to Spec.Record(window).
type Backing interface {
	Recording(s Spec, window int64) (*Recording, error)
}

// Releaser is the optional Backing extension for stores whose recordings
// hold per-acquisition resources (recstore's slab mappings): Release
// returns one Recording reference, and the store reclaims the resource when
// the last reference drops. Pool.Retire calls it for every recording the
// pool obtained from its backing.
type Releaser interface {
	Release(s Spec, window int64)
}

// ContextBacking is the optional Backing extension for stores that can
// abandon an in-progress recording when the requester's deadline expires
// (recstore aborts the slab stream and removes the temp file).
// Pool.GetContext prefers it when the caller's ctx is cancellable.
type ContextBacking interface {
	RecordingContext(ctx context.Context, s Spec, window int64) (*Recording, error)
}

// Pool shares recordings across concurrent simulation runs: each benchmark
// is recorded at most once per pool, on first request. A nil *Pool reports
// Window 0 and Size 0, so callers can treat "no pool" uniformly.
type Pool struct {
	window  int64
	backing Backing
	mu      sync.Mutex
	recs    map[string]*poolEntry
}

type poolEntry struct {
	done   chan struct{} // closed once rec/err is settled
	rec    *Recording
	err    error
	backed bool // the recording came from (and is refcounted by) the backing
}

// NewPool creates a pool whose recordings cover window instructions.
func NewPool(window int64) *Pool { return NewBackedPool(window, nil) }

// NewBackedPool creates a pool that asks b for each benchmark's recording
// before recording in memory, making the pool a thin view over a shared
// (typically on-disk, mmap-backed) store. A nil Backing is the plain
// in-memory pool; a Backing error degrades to in-memory recording, never to
// a failure.
func NewBackedPool(window int64, b Backing) *Pool {
	if window <= 0 {
		panic(fmt.Sprintf("workload: non-positive pool window %d", window))
	}
	return &Pool{window: window, backing: b, recs: make(map[string]*poolEntry)}
}

// Window returns the recording length the pool was created with.
func (p *Pool) Window() int64 {
	if p == nil {
		return 0
	}
	return p.window
}

// Get returns the benchmark's shared recording, capturing it on first use.
// Distinct benchmarks record concurrently; a benchmark already being
// recorded blocks only its own requesters. Entries are keyed by Spec.Name;
// if a different Spec arrives under a cached name (caller-constructed specs
// colliding with the registry), Get falls back to a private, unshared
// recording so results stay correct — at full recording cost per call.
func (p *Pool) Get(s Spec) *Recording {
	rec, err := p.GetContext(nil, s)
	if err != nil {
		// Unreachable: with no cancellable ctx, a backing failure degrades
		// to in-memory recording, which cannot fail for a valid pool window.
		panic(fmt.Sprintf("workload: pool record failed without a context: %v", err))
	}
	return rec
}

// GetContext is Get bounded by ctx: a first-use capture (backing stream or
// in-memory recording) observes cancellation while it runs, and a waiter on
// someone else's in-progress capture stops waiting when its own ctx expires.
// A cancelled capture never poisons the pool — the entry is forgotten and
// the next requester records afresh. A nil ctx is Get.
func (p *Pool) GetContext(ctx context.Context, s Spec) (*Recording, error) {
	for {
		p.mu.Lock()
		e := p.recs[s.Name]
		if e == nil {
			// Leader: capture outside the pool lock, then settle the entry.
			e = &poolEntry{done: make(chan struct{})}
			p.recs[s.Name] = e
			p.mu.Unlock()
			rec, backed, err := p.capture(ctx, s)
			p.mu.Lock()
			if err != nil {
				if p.recs[s.Name] == e {
					delete(p.recs, s.Name)
				}
				e.err = err
				close(e.done)
				p.mu.Unlock()
				return nil, err
			}
			e.rec, e.backed = rec, backed
			close(e.done)
			p.mu.Unlock()
		} else {
			p.mu.Unlock()
			if ctx != nil {
				select {
				case <-e.done:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			} else {
				<-e.done
			}
			if e.err != nil {
				// The leader's capture was cancelled (its deadline, not
				// ours) and the entry forgotten: take over as leader.
				continue
			}
		}
		if !reflect.DeepEqual(e.rec.spec, s) {
			return s.RecordContext(ctx, p.window)
		}
		return e.rec, nil
	}
}

// capture obtains one recording for s: from the backing when available (and
// not itself cancelled), degrading to an in-memory capture on backing
// errors. Only ctx cancellation makes capture fail.
func (p *Pool) capture(ctx context.Context, s Spec) (rec *Recording, backed bool, err error) {
	if p.backing != nil {
		if cb, ok := p.backing.(ContextBacking); ok && ctx != nil {
			rec, err = cb.RecordingContext(ctx, s, p.window)
		} else {
			rec, err = p.backing.Recording(s, p.window)
		}
		if err == nil && rec.Len() == p.window {
			return rec, true, nil
		}
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, false, cerr
			}
		}
	}
	rec, err = s.RecordContext(ctx, p.window)
	return rec, false, err
}

// Retire drops the pool's recordings and, when the backing implements
// Releaser, returns each backing-obtained recording's reference so the
// store can reclaim its resources (recstore unmaps slabs on the last
// reference). The caller must guarantee the pool is quiescent: no
// concurrent Get, and no live Replay over any recording this pool handed
// out. A retired pool remains usable — the next Get simply re-acquires.
// A nil *Pool retires trivially.
func (p *Pool) Retire() {
	if p == nil {
		return
	}
	p.mu.Lock()
	recs := p.recs
	p.recs = make(map[string]*poolEntry)
	p.mu.Unlock()
	rel, ok := p.backing.(Releaser)
	if !ok {
		return
	}
	for _, e := range recs {
		if e.backed && e.rec != nil {
			rel.Release(e.rec.spec, p.window)
		}
	}
}

// Size returns the number of benchmarks recorded so far.
func (p *Pool) Size() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.recs)
}
