// Benchmark suite registry: one Spec per benchmark run of the paper's
// Tables 6-8 (16 MediaBench runs, 9 Olden runs, 15 SPEC2000 runs). Each
// parameterization encodes the workload properties the paper reports or
// that its results imply (Section 5): instruction/data footprints, ILP
// structure, branch behaviour, and phase schedules.
//
// The archetypes below drive the calibration:
//
//   - kernel: tiny hot loops, small data; wins on the adaptive machine's
//     higher base clocks (adpcm, g721, mpeg2 encode, gzip, art, ...).
//   - bigcode: instruction working sets of 40-100KB with little line
//     reuse; these force the fully synchronous sweep toward the large
//     direct-mapped I-cache and are the adaptive design's hard cases
//     (gsm, ghostscript, vpr, vortex, gcc, crafty, ...).
//   - membound: multi-hundred-KB low-locality data working sets that only
//     the upsized cache hierarchy holds (em3d, mst, equake, health, ...).
package workload

import "sync"

// with applies a mutation to a copy of p.
func with(p Params, f func(*Params)) Params {
	f(&p)
	return p
}

// phase builds one schedule step.
func phase(n int64, p Params) Phase { return Phase{Len: n, P: p} }

// kernel is the small-hot-loop archetype: high code locality, loopy,
// modest data with good locality.
func kernel(codeKB, hotKB, dataKB int) Params {
	return with(Defaults(), func(p *Params) {
		p.CodeKB, p.HotKB = codeKB, hotKB
		p.DataKB = dataKB
		p.LoopFrac, p.LoopMeanTrips = 0.3, 20
		p.StrideFrac, p.StackFrac = 0.6, 0.2
		p.HotDataFrac, p.HotDataKB = 0.7, 8
	})
}

// bigcode is the large-instruction-footprint archetype: long basic blocks
// with little loop-level line reuse (the code streams through its hot
// working set, as gcc/gsm/ghostscript-class programs do), so I-cache
// capacity below the hot set thrashes hard while 64KB captures it. Data
// pressure is kept light so these runs are front-end bound.
func bigcode(codeKB, hotKB, dataKB int) Params {
	return with(Defaults(), func(p *Params) {
		p.CodeKB, p.HotKB = codeKB, hotKB
		p.DataKB = dataKB
		p.AvgBlock = 13
		p.FnBlocks = 12
		p.LoopFrac, p.LoopMeanTrips = 0.02, 2
		p.ExcursionP = 0.012
		p.StrideFrac, p.StackFrac = 0.45, 0.3
		p.HotDataFrac, p.HotDataKB = 0.7, 16
	})
}

// membound is the pointer-chasing archetype: small code, large
// low-locality data working sets.
func membound(dataKB int) Params {
	return with(Defaults(), func(p *Params) {
		p.CodeKB, p.HotKB = 8, 5
		p.DataKB = dataKB
		p.LoadFrac, p.StoreFrac = 0.3, 0.1
		p.StrideFrac, p.StackFrac = 0.15, 0.1
		p.HotDataFrac, p.HotDataKB = 0.15, 32
	})
}

// fpstream is the scientific-loop archetype: FP-heavy, streaming.
func fpstream(codeKB, hotKB, dataKB int) Params {
	return with(Defaults(), func(p *Params) {
		p.CodeKB, p.HotKB = codeKB, hotKB
		p.DataKB = dataKB
		p.FPFrac = 0.42
		p.LoadFrac, p.StoreFrac = 0.3, 0.1
		p.StrideFrac, p.StackFrac = 0.6, 0.1
		p.HotDataFrac, p.HotDataKB = 0.5, 16
		p.LoopFrac, p.LoopMeanTrips = 0.3, 32
		p.NoiseFrac = 0.04
	})
}

// The suite is a fixed catalogue of immutable descriptors, but it used to
// be rebuilt — a few dozen allocations — on every call, and ByName sits on
// the service's warm request path (request validation). Build it once;
// Suite hands out defensive slice copies, ByName reads the cache directly.
var (
	suiteOnce  sync.Once
	suiteCache []Spec
	suiteIndex map[string]int
)

func suiteInit() {
	suiteOnce.Do(func() {
		suiteCache = buildSuite()
		suiteIndex = make(map[string]int, len(suiteCache))
		for i, s := range suiteCache {
			suiteIndex[s.Name] = i
		}
	})
}

// Suite returns the full benchmark suite in the paper's Figure 6 order.
// The returned slice is the caller's to keep; the Spec values (including
// any Phases slices) are shared immutable descriptors.
func Suite() []Spec {
	suiteInit()
	return append([]Spec(nil), suiteCache...)
}

func buildSuite() []Spec {
	var specs []Spec
	add := func(s Spec) { specs = append(specs, s) }

	// -----------------------------------------------------------------
	// MediaBench (Table 6).

	// adpcm: tiny kernel, tiny data, very high ILP; the best adaptive
	// configuration is the smallest/fastest everything.
	add(Spec{Name: "adpcm encode", Suite: "MediaBench", Window: "6.6M", Seed: 1001,
		Base: with(kernel(4, 3, 8), func(p *Params) {
			p.SerialFrac, p.MaxDepDist = 0.16, 44
			p.NoiseFrac = 0.05
		})})
	// adpcm decode: the adpcm_decoder() kernel's data-dependent branch
	// series (paper Section 5.1) makes branches near-random.
	add(Spec{Name: "adpcm decode", Suite: "MediaBench", Window: "5.5M", Seed: 1002,
		Base: with(kernel(4, 3, 8), func(p *Params) {
			p.SerialFrac, p.MaxDepDist = 0.2, 40
			p.NoiseFrac = 0.42
		})})
	add(Spec{Name: "epic encode", Suite: "MediaBench", Window: "53M", Seed: 1003,
		Base: with(kernel(24, 14, 320), func(p *Params) {
			p.FPFrac = 0.25
			p.StrideFrac = 0.7
			p.SerialFrac, p.MaxDepDist = 0.3, 32
		})})
	add(Spec{Name: "epic decode", Suite: "MediaBench", Window: "6.7M", Seed: 1004,
		Base: with(kernel(16, 9, 160), func(p *Params) {
			p.FPFrac = 0.2
			p.SerialFrac = 0.28
		})})
	add(Spec{Name: "jpeg compress", Suite: "MediaBench", Window: "15.5M", Seed: 1005,
		Base: with(bigcode(48, 46, 112), func(p *Params) {
			p.FPFrac = 0.1
			p.SerialFrac, p.MaxDepDist = 0.3, 36
		})})
	// jpeg decompress: instruction footprint wants 64KB of capacity with
	// little associativity need; one of the paper's Program-Adaptive
	// losses (-2.7%).
	add(Spec{Name: "jpeg decompress", Suite: "MediaBench", Window: "4.6M", Seed: 1006,
		Base: with(bigcode(62, 58, 64), func(p *Params) {
			p.FPFrac = 0.08
		})})
	add(Spec{Name: "g721 encode", Suite: "MediaBench", Window: "0-200M", Seed: 1007,
		Base: with(kernel(6, 4, 16), func(p *Params) {
			p.SerialFrac, p.MaxDepDist = 0.42, 24
		})})
	add(Spec{Name: "g721 decode", Suite: "MediaBench", Window: "0-200M", Seed: 1008,
		Base: with(kernel(6, 4, 16), func(p *Params) {
			p.SerialFrac, p.MaxDepDist = 0.44, 24
		})})
	// gsm: needs the full 64KB 4-way instruction cache (paper Section 5:
	// "similar performance for all configurations with a 64KB 4-Way
	// instruction cache"); encode is a wash vs the synchronous design.
	add(Spec{Name: "gsm encode", Suite: "MediaBench", Window: "0-200M", Seed: 1009,
		Base: with(bigcode(76, 62, 32), func(p *Params) {
			p.SerialFrac = 0.4
		})})
	add(Spec{Name: "gsm decode", Suite: "MediaBench", Window: "0-74M", Seed: 1010,
		Base: with(bigcode(66, 58, 24), func(p *Params) {
			p.SerialFrac = 0.36
		})})
	// ghostscript: performs well whenever the I-cache exceeds 32KB; a
	// slight Program-Adaptive loss in the paper (-1.8%).
	add(Spec{Name: "ghostscript", Suite: "MediaBench", Window: "0-200M", Seed: 1011,
		Base: with(bigcode(96, 56, 256), func(p *Params) {
			p.ExcursionP = 0.08
			p.HotDataFrac = 0.5
		})})
	// mesa mipmap: the paper's largest Program-Adaptive loss among
	// MediaBench (-4.9%): big, conflict-light instruction footprint.
	add(Spec{Name: "mesa mipmap", Suite: "MediaBench", Window: "44.7M", Seed: 1012,
		Base: with(bigcode(62, 58, 128), func(p *Params) {
			p.FPFrac = 0.3
		})})
	add(Spec{Name: "mesa osdemo", Suite: "MediaBench", Window: "7.6M", Seed: 1013,
		Base: with(bigcode(48, 46, 144), func(p *Params) {
			p.FPFrac = 0.35
			p.SerialFrac, p.MaxDepDist = 0.3, 32
		})})
	add(Spec{Name: "mesa texgen", Suite: "MediaBench", Window: "75.8M", Seed: 1014,
		Base: with(bigcode(50, 48, 208), func(p *Params) {
			p.FPFrac = 0.35
			p.SerialFrac, p.MaxDepDist = 0.26, 36
		})})
	// mpeg2 encode: small kernel, streaming, very high ILP -> smallest
	// configuration at the highest clock (paper Section 5).
	add(Spec{Name: "mpeg2 encode", Suite: "MediaBench", Window: "0-171M", Seed: 1015,
		Base: with(kernel(12, 6, 96), func(p *Params) {
			p.SerialFrac, p.MaxDepDist = 0.18, 48
			p.StrideFrac = 0.75
		})})
	add(Spec{Name: "mpeg2 decode", Suite: "MediaBench", Window: "0-200M", Seed: 1016,
		Base: with(kernel(20, 11, 160), func(p *Params) {
			p.SerialFrac, p.MaxDepDist = 0.24, 40
			p.StrideFrac = 0.7
		})})

	// -----------------------------------------------------------------
	// Olden (Table 7): pointer-intensive kernels; the memory-bound ones
	// are the adaptive design's biggest wins.

	add(Spec{Name: "bh", Suite: "Olden", Window: "0-200M", Seed: 2001,
		Base: with(membound(384), func(p *Params) {
			p.FPFrac = 0.22
			p.HotDataFrac = 0.4
		})})
	add(Spec{Name: "bisort", Suite: "Olden", Window: "entire (127M)", Seed: 2002,
		Base: with(membound(256), func(p *Params) {
			p.SerialFrac = 0.4
			p.HotDataFrac = 0.4
		})})
	// em3d: the paper's single largest win (+45/49%): irregular working
	// set that only the upsized hierarchy can hold.
	add(Spec{Name: "em3d", Suite: "Olden", Window: "70M-178M", Seed: 2003,
		Base: with(membound(768), func(p *Params) {
			p.SerialFrac, p.MaxDepDist = 0.5, 16
			p.LoadFrac = 0.34
		})})
	add(Spec{Name: "health", Suite: "Olden", Window: "80M-127M", Seed: 2004,
		Base: with(membound(400), func(p *Params) {
			p.SerialFrac = 0.45
		})})
	// mst: periodic short bursts of cache conflicts; the phase controller
	// flips configurations one interval too late (paper Section 5.1), so
	// Phase-Adaptive trails Program-Adaptive here.
	add(Spec{Name: "mst", Suite: "Olden", Window: "70M-170M", Seed: 2005,
		Base: membound(448),
		Phases: []Phase{
			phase(24000, membound(448)),
			phase(4000, with(membound(48), func(p *Params) {
				p.StrideFrac, p.StackFrac = 0.05, 0
				p.HotDataFrac = 0
			})),
		}})
	add(Spec{Name: "perimeter", Suite: "Olden", Window: "0-200M", Seed: 2006,
		Base: with(membound(384), func(p *Params) {
			p.SerialFrac = 0.42
			p.HotDataFrac = 0.35
		})})
	add(Spec{Name: "power", Suite: "Olden", Window: "0-200M", Seed: 2007,
		Base: with(kernel(8, 5, 96), func(p *Params) {
			p.FPFrac = 0.4
			p.SerialFrac, p.MaxDepDist = 0.3, 32
		})})
	add(Spec{Name: "treeadd", Suite: "Olden", Window: "entire (189M)", Seed: 2008,
		Base: with(membound(416), func(p *Params) {
			p.CodeKB, p.HotKB = 4, 3
			p.SerialFrac, p.MaxDepDist = 0.55, 12
			p.HotDataFrac = 0.3
		})})
	add(Spec{Name: "tsp", Suite: "Olden", Window: "0-200M", Seed: 2009,
		Base: with(membound(256), func(p *Params) {
			p.FPFrac = 0.18
			p.HotDataFrac = 0.45
		})})

	// -----------------------------------------------------------------
	// SPEC2000 integer (Table 8).

	// bzip2: moderate instruction appetite and high ILP at small queues;
	// the synchronous design's free large I-cache makes this one of the
	// paper's Program-Adaptive losses (-4.8%).
	add(Spec{Name: "bzip2", Suite: "SPEC2000-Int", Window: "1000M-1100M", Seed: 3001,
		Base: with(bigcode(28, 22, 192), func(p *Params) {
			p.NoiseFrac = 0.22
			p.SerialFrac, p.MaxDepDist = 0.25, 40
			p.StrideFrac = 0.55
		})})
	add(Spec{Name: "crafty", Suite: "SPEC2000-Int", Window: "1000M-1100M", Seed: 3002,
		Base: with(bigcode(64, 58, 128), func(p *Params) {
			p.NoiseFrac = 0.16
		})})
	add(Spec{Name: "eon", Suite: "SPEC2000-Int", Window: "1000M-1100M", Seed: 3003,
		Base: with(bigcode(60, 56, 64), func(p *Params) {
			p.FPFrac = 0.25
		})})
	// gcc: one of the paper's biggest wins (+41/45%): both instruction
	// and data working sets want the upsized configurations.
	add(Spec{Name: "gcc", Suite: "SPEC2000-Int", Window: "2000M-2100M", Seed: 3004,
		Base: with(bigcode(112, 54, 896), func(p *Params) {
			p.ExcursionP = 0.1
			p.StrideFrac, p.StackFrac = 0.3, 0.2
			p.HotDataFrac = 0.35
			p.SerialFrac = 0.4
		})})
	add(Spec{Name: "gzip", Suite: "SPEC2000-Int", Window: "1000M-1100M", Seed: 3005,
		Base: with(kernel(10, 6, 160), func(p *Params) {
			p.StrideFrac = 0.6
			p.SerialFrac, p.MaxDepDist = 0.3, 32
		})})
	// parser: alternating dictionary-lookup and parse phases; the phase
	// controller beats any single configuration.
	add(Spec{Name: "parser", Suite: "SPEC2000-Int", Window: "1000M-1100M", Seed: 3006,
		Base: bigcode(56, 50, 256),
		Phases: []Phase{
			phase(30000, with(bigcode(56, 50, 288), func(p *Params) {
				p.StrideFrac = 0.25
				p.HotDataFrac = 0.3
				p.SerialFrac = 0.45
			})),
			phase(30000, with(bigcode(56, 44, 24), func(p *Params) {
				p.StrideFrac = 0.5
				p.SerialFrac, p.MaxDepDist = 0.22, 40
			})),
		}})
	add(Spec{Name: "twolf", Suite: "SPEC2000-Int", Window: "1000M-1100M", Seed: 3007,
		Base: bigcode(56, 52, 224),
		Phases: []Phase{
			phase(40000, with(bigcode(56, 52, 224), func(p *Params) {
				p.StrideFrac = 0.25
				p.HotDataFrac = 0.35
				p.NoiseFrac = 0.14
			})),
			phase(25000, with(bigcode(56, 46, 32), func(p *Params) {
				p.StrideFrac = 0.45
				p.SerialFrac, p.MaxDepDist = 0.25, 36
			})),
		}})
	// vortex: large instruction AND data footprints: a big adaptive win
	// (+33%) from upsizing both hierarchies.
	add(Spec{Name: "vortex", Suite: "SPEC2000-Int", Window: "1000M-1100M", Seed: 3008,
		Base: with(bigcode(96, 56, 1088), func(p *Params) {
			p.StrideFrac = 0.3
			p.HotDataFrac = 0.3
		})})
	// vpr: the paper's worst Program-Adaptive loss (-6.6%): needs 64KB of
	// I-cache capacity but not associativity, which the adaptive front
	// end cannot offer without the 2-way/4-way frequency penalty.
	add(Spec{Name: "vpr", Suite: "SPEC2000-Int", Window: "1000M-1100M", Seed: 3009,
		Base: with(bigcode(68, 58, 96), func(p *Params) {
			p.NoiseFrac = 0.12
		})})

	// -----------------------------------------------------------------
	// SPEC2000 floating point (Table 8).

	// apsi: strongly periodic data working-set phases (paper Figure 7a):
	// the D/L2 pair oscillates between 32KB/256KB 1-way and 128KB/1MB
	// 4-way; Program-Adaptive is slightly negative (-1.9%).
	add(Spec{Name: "apsi", Suite: "SPEC2000-FP", Window: "1000M-1100M", Seed: 4001,
		Base: fpstream(24, 12, 96),
		Phases: []Phase{
			phase(30000, with(fpstream(24, 12, 20), func(p *Params) {
				p.StrideFrac = 0.7
			})),
			phase(30000, with(fpstream(24, 12, 112), func(p *Params) {
				p.StrideFrac = 0.2
				p.HotDataFrac = 0.2
				p.SerialFrac = 0.42
			})),
		}})
	// art: regular ILP phases cycling the integer issue queue through all
	// four sizes (paper Figure 7b).
	add(Spec{Name: "art", Suite: "SPEC2000-FP", Window: "300M-400M", Seed: 4002,
		Base: fpstream(10, 6, 448),
		Phases: []Phase{
			phase(25000, with(fpstream(10, 6, 448), func(p *Params) {
				p.StrideFrac = 0.35
				p.HotDataFrac = 0.2
				p.SerialFrac, p.MaxDepDist = 0.1, 56
			})),
			phase(25000, with(fpstream(10, 6, 448), func(p *Params) {
				p.StrideFrac = 0.45
				p.HotDataFrac = 0.2
				p.SerialFrac, p.MaxDepDist = 0.55, 10
			})),
		}})
	add(Spec{Name: "equake", Suite: "SPEC2000-FP", Window: "1000M-1100M", Seed: 4003,
		Base: with(fpstream(16, 8, 416), func(p *Params) {
			p.StrideFrac = 0.3
			p.HotDataFrac = 0.25
			p.SerialFrac = 0.45
		})})
	add(Spec{Name: "galgel", Suite: "SPEC2000-FP", Window: "1000M-1100M", Seed: 4004,
		Base: with(fpstream(18, 9, 256), func(p *Params) {
			p.FPFrac = 0.5
			p.SerialFrac, p.MaxDepDist = 0.2, 48
		})})
	add(Spec{Name: "mesa", Suite: "SPEC2000-FP", Window: "1000M-1100M", Seed: 4005,
		Base: with(bigcode(56, 52, 96), func(p *Params) {
			p.FPFrac = 0.3
			p.NoiseFrac = 0.06
		})})
	add(Spec{Name: "wupwise", Suite: "SPEC2000-FP", Window: "1000M-1100M", Seed: 4006,
		Base: with(fpstream(14, 7, 384), func(p *Params) {
			p.FPFrac = 0.5
			p.StrideFrac = 0.5
			p.SerialFrac, p.MaxDepDist = 0.3, 40
		})})

	return specs
}

// ByName finds a benchmark run in the suite. Allocation-free: it serves
// the service's request-validation hot path.
func ByName(name string) (Spec, bool) {
	suiteInit()
	i, ok := suiteIndex[name]
	if !ok {
		return Spec{}, false
	}
	return suiteCache[i], true
}

// Names lists the suite's run names in order.
func Names() []string {
	suiteInit()
	out := make([]string, len(suiteCache))
	for i, s := range suiteCache {
		out[i] = s.Name
	}
	return out
}
