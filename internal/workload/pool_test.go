package workload

import (
	"sync"
	"testing"

	"gals/internal/isa"
)

// TestPoolConcurrentAccess hammers one Pool from many goroutines (run
// under -race via `make race` / CI): every benchmark must be recorded
// exactly once, every Get must hand back the same shared recording, and
// concurrent replays must be bit-identical to live generation.
func TestPoolConcurrentAccess(t *testing.T) {
	const window = 2_000
	specs := Suite()[:6]
	pool := NewPool(window)

	// Live references, generated up front (the generator itself is
	// single-threaded; recordings are the concurrent-safe form).
	want := make(map[string][]isa.Inst, len(specs))
	for _, s := range specs {
		tr := s.NewTrace()
		ref := make([]isa.Inst, window)
		for i := range ref {
			tr.Next(&ref[i])
		}
		want[s.Name] = ref
	}

	const workersPerSpec = 8
	recs := make([][]*Recording, len(specs))
	for i := range recs {
		recs[i] = make([]*Recording, workersPerSpec)
	}
	var wg sync.WaitGroup
	for si, s := range specs {
		for w := 0; w < workersPerSpec; w++ {
			wg.Add(1)
			go func(si, w int, s Spec) {
				defer wg.Done()
				rec := pool.Get(s)
				recs[si][w] = rec

				// Replay concurrently with every other goroutine sharing
				// the recording and compare against live generation.
				rp := rec.Replay()
				ref := want[s.Name]
				var in isa.Inst
				for i := 0; i < window; i++ {
					rp.Next(&in)
					if in != ref[i] {
						t.Errorf("%s: replay diverges from live stream at %d", s.Name, i)
						return
					}
				}
			}(si, w, s)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// One recording per benchmark: every goroutine saw the same pointer.
	for si, s := range specs {
		for w := 1; w < workersPerSpec; w++ {
			if recs[si][w] != recs[si][0] {
				t.Fatalf("%s: goroutines received distinct recordings", s.Name)
			}
		}
	}
	if pool.Size() != len(specs) {
		t.Fatalf("pool recorded %d benchmarks, want %d", pool.Size(), len(specs))
	}
}
