package workload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gals/internal/isa"
)

// TestPoolConcurrentAccess hammers one Pool from many goroutines (run
// under -race via `make race` / CI): every benchmark must be recorded
// exactly once, every Get must hand back the same shared recording, and
// concurrent replays must be bit-identical to live generation.
func TestPoolConcurrentAccess(t *testing.T) {
	const window = 2_000
	specs := Suite()[:6]
	pool := NewPool(window)

	// Live references, generated up front (the generator itself is
	// single-threaded; recordings are the concurrent-safe form).
	want := make(map[string][]isa.Inst, len(specs))
	for _, s := range specs {
		tr := s.NewTrace()
		ref := make([]isa.Inst, window)
		for i := range ref {
			tr.Next(&ref[i])
		}
		want[s.Name] = ref
	}

	const workersPerSpec = 8
	recs := make([][]*Recording, len(specs))
	for i := range recs {
		recs[i] = make([]*Recording, workersPerSpec)
	}
	var wg sync.WaitGroup
	for si, s := range specs {
		for w := 0; w < workersPerSpec; w++ {
			wg.Add(1)
			go func(si, w int, s Spec) {
				defer wg.Done()
				rec := pool.Get(s)
				recs[si][w] = rec

				// Replay concurrently with every other goroutine sharing
				// the recording and compare against live generation.
				rp := rec.Replay()
				ref := want[s.Name]
				var in isa.Inst
				for i := 0; i < window; i++ {
					rp.Next(&in)
					if in != ref[i] {
						t.Errorf("%s: replay diverges from live stream at %d", s.Name, i)
						return
					}
				}
			}(si, w, s)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// One recording per benchmark: every goroutine saw the same pointer.
	for si, s := range specs {
		for w := 1; w < workersPerSpec; w++ {
			if recs[si][w] != recs[si][0] {
				t.Fatalf("%s: goroutines received distinct recordings", s.Name)
			}
		}
	}
	if pool.Size() != len(specs) {
		t.Fatalf("pool recorded %d benchmarks, want %d", pool.Size(), len(specs))
	}
}

// TestPoolCancelledCaptureDoesNotPoison pins the graceful-degradation
// contract on the pool itself: a leader whose ctx expires mid-capture gets
// the ctx error, the entry is forgotten rather than poisoned, and the next
// requester records afresh — bit-identical to an uncancelled capture.
func TestPoolCancelledCaptureDoesNotPoison(t *testing.T) {
	const window = 50_000
	spec := Suite()[0]
	pool := NewPool(window)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pool.GetContext(ctx, spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("GetContext with cancelled ctx = %v, want context.Canceled", err)
	}
	if pool.Size() != 0 {
		t.Fatalf("pool retained %d entries after a cancelled capture, want 0", pool.Size())
	}

	rec, err := pool.GetContext(context.Background(), spec)
	if err != nil {
		t.Fatalf("GetContext after recovery: %v", err)
	}
	want := spec.Record(window)
	rp, wp := rec.Replay(), want.Replay()
	var got, ref isa.Inst
	for i := 0; i < window; i++ {
		rp.Next(&got)
		wp.Next(&ref)
		if got != ref {
			t.Fatalf("recovered recording diverges at %d", i)
		}
	}
}

// gatedBacking blocks every Recording call until release is closed, then
// fails so the pool degrades to an in-memory capture — a deterministic way
// to hold a leader's capture in flight for exactly as long as a test needs.
type gatedBacking struct{ release chan struct{} }

func (g gatedBacking) Recording(s Spec, window int64) (*Recording, error) {
	<-g.release
	return nil, errors.New("gated backing has no slabs")
}

// TestPoolCancelledWaiterLeavesLeaderAlone cancels a waiter while another
// goroutine's capture is deterministically held in flight (gated backing):
// the waiter returns its own ctx error promptly, and the leader's recording
// still lands shared in the pool.
func TestPoolCancelledWaiterLeavesLeaderAlone(t *testing.T) {
	const window = 2_000
	spec := Suite()[0]
	gate := gatedBacking{release: make(chan struct{})}
	pool := NewBackedPool(window, gate)

	leaderDone := make(chan *Recording, 1)
	go func() {
		leaderDone <- pool.Get(spec)
	}()
	// Wait until the leader has registered its in-flight entry.
	for pool.Size() == 0 {
		time.Sleep(100 * time.Microsecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := pool.GetContext(ctx, spec); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter = %v, want DeadlineExceeded", err)
	}

	close(gate.release)
	rec := <-leaderDone
	again, err := pool.GetContext(context.Background(), spec)
	if err != nil {
		t.Fatalf("GetContext after leader finished: %v", err)
	}
	if again != rec {
		t.Fatalf("leader's recording was not retained as the shared entry")
	}
}
