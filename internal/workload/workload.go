// Package workload provides deterministic synthetic models of the paper's
// benchmark suite (MediaBench, Olden, SPEC2000; Tables 6-8).
//
// The paper runs Alpha binaries under SimpleScalar; those binaries and
// reference inputs are not available here, so each benchmark run is modeled
// as a parameterized instruction-stream generator that reproduces the
// workload properties the paper's adaptive tradeoffs depend on:
//
//   - instruction mix (integer/FP/load/store/branch),
//   - inherent ILP, via the dependence-distance structure of operands,
//   - branch predictability (loop branches, biased branches, and
//     data-dependent "noisy" branches as in adpcm decode),
//   - instruction-cache footprint (static code size and hot working set),
//   - data working-set size and access pattern (streaming, stack, random),
//   - program phases (periodic working-set or ILP shifts, as in apsi/art).
//
// A Trace is deterministic given the benchmark's seed: every machine
// configuration replays the identical dynamic instruction stream, mirroring
// the paper's fixed simulation windows.
package workload

import (
	"math/rand"

	"gals/internal/isa"
)

// Address-space layout for generated traces. The bases are deliberately
// offset by non-multiples of the largest cache-way size so the regions do
// not all collide on the same cache sets (real address-space layout gives
// regions effectively independent page colors).
const (
	codeBase  = 0x0040_0000
	dataBase  = 0x1000_0000
	stackBase = 0x7fff_4000 // +0x4000 offsets the stack by 256 L1 sets
	hotBase   = 0x2000_9000 // hot-data region, offset by 576 lines
	stackKB   = 4

	// blockSpacing is the static code laid out per basic block: one
	// 64-byte I-cache line per block, up to 16 four-byte instructions.
	blockSpacing = 64
	maxBlockLen  = 14
	ringSize     = 64
)

// Params control one phase of a generated workload. Fractions are in
// [0, 1]. The zero value is not useful; start from Defaults().
type Params struct {
	// CodeKB is the static code footprint; HotKB the hot instruction
	// working set that the walker loops within between slow drifts.
	CodeKB, HotKB int
	// AvgBlock is the mean basic-block length in instructions (3..14).
	AvgBlock int
	// FnBlocks is the number of basic blocks per function.
	FnBlocks int
	// ExcursionP is the probability that a function call targets cold
	// code outside the hot working set.
	ExcursionP float64
	// LoopFrac is the fraction of block-ending branches that are
	// loop-backs; LoopMeanTrips the mean trip count of a loop visit.
	LoopFrac      float64
	LoopMeanTrips int
	// NoiseFrac is the fraction of if-branches with ~50/50 outcomes
	// (data-dependent, unpredictable); the rest are biased at BiasedP.
	NoiseFrac float64
	BiasedP   float64

	// FPFrac is the fraction of compute operations that are floating
	// point; MulFrac and DivFrac split each type's compute into
	// multiply and divide/sqrt flavours.
	FPFrac, MulFrac, DivFrac float64
	// LoadFrac and StoreFrac are fractions of all instructions.
	LoadFrac, StoreFrac float64

	// SerialFrac is the fraction of compute operations chained directly
	// to the immediately preceding result (dependence distance 1);
	// other operands reach back uniformly up to MaxDepDist results.
	SerialFrac float64
	MaxDepDist int

	// DataKB is the data working set; StrideFrac the fraction of memory
	// accesses that stream sequentially; StackFrac the fraction hitting a
	// small hot stack region; the rest are spread over the working set
	// (pointer-chasing-like), of which HotDataFrac lands in a hot
	// HotDataKB subset (temporal locality).
	DataKB      int
	StrideFrac  float64
	StackFrac   float64
	HotDataFrac float64
	HotDataKB   int
}

// Defaults returns a mid-of-the-road integer workload parameterization.
func Defaults() Params {
	return Params{
		CodeKB: 16, HotKB: 8,
		AvgBlock: 7, FnBlocks: 8,
		ExcursionP: 0.03,
		LoopFrac:   0.25, LoopMeanTrips: 12,
		NoiseFrac: 0.08, BiasedP: 0.92,
		FPFrac: 0, MulFrac: 0.08, DivFrac: 0.01,
		LoadFrac: 0.26, StoreFrac: 0.12,
		SerialFrac: 0.35, MaxDepDist: 24,
		DataKB: 64, StrideFrac: 0.5, StackFrac: 0.2,
		HotDataFrac: 0.6, HotDataKB: 16,
	}
}

// Phase is one step of a cyclic phase schedule.
type Phase struct {
	// Len is the phase length in instructions.
	Len int64
	// P are the parameters in force during the phase.
	P Params
}

// Spec names one benchmark run of Tables 6-8.
type Spec struct {
	// Name is the paper's benchmark run name, e.g. "gcc" or
	// "adpcm decode".
	Name string
	// Suite is "MediaBench", "Olden", "SPEC2000-Int" or "SPEC2000-FP".
	Suite string
	// Window describes the paper's simulation window (Tables 6-8),
	// for documentation output.
	Window string
	// Seed makes the trace deterministic.
	Seed int64
	// Base are the parameters (first/only phase).
	Base Params
	// Phases, when non-empty, cycle; Base is ignored for phase fields
	// but still defines the static code layout.
	Phases []Phase
}

// loopRec tracks one active loop instance.
type loopRec struct {
	block     int // function-relative index of the loop branch's block
	remaining int
}

// Trace is a running workload generator. Create with Spec.NewTrace; fill
// instructions with Next.
type Trace struct {
	spec Spec
	p    Params
	rng  *rand.Rand

	phases    []Phase
	phaseIdx  int
	phaseLeft int64
	count     int64

	// Static layout, fixed by Base.CodeKB for the whole run.
	numBlocks int
	numFns    int
	fnBlocks  int

	// Walker state.
	fn          int
	blk         int // block index within function
	hotStart    int // first hot function
	hotPos      int // walker position within the hot set
	hotCount    int
	hotLeft     int // function executions until the hot window drifts
	returnFn    int // function to resume after an excursion (-1: none)
	loops       []loopRec
	pendingNext int // function-relative block to execute next (-1: compute)

	// Current block emission.
	blockID  int // global static block id
	blockLen int
	slot     int

	// Data-access state.
	seqAddr uint64

	// branchCnt approximates per-static-branch execution counters (used
	// to produce periodic, learnable outcome patterns); collisions are
	// harmless noise.
	branchCnt [4096]uint32

	// Register rings: recently written registers by type.
	intRing [ringSize]isa.Reg
	fpRing  [ringSize]isa.Reg
	intPos  int
	fpPos   int
	destInt int
	destFP  int
}

// NewTrace starts the benchmark's deterministic instruction stream.
func (s Spec) NewTrace() *Trace {
	t := &Trace{
		spec:     s,
		rng:      rand.New(rand.NewSource(s.Seed)),
		phases:   s.Phases,
		returnFn: -1,
	}
	base := s.Base
	t.fnBlocks = base.FnBlocks
	if t.fnBlocks <= 0 {
		t.fnBlocks = 8
	}
	t.numBlocks = base.CodeKB * 1024 / blockSpacing
	if t.numBlocks < t.fnBlocks {
		t.numBlocks = t.fnBlocks
	}
	t.numFns = t.numBlocks / t.fnBlocks
	if t.numFns < 1 {
		t.numFns = 1
	}
	for i := range t.intRing {
		t.intRing[i] = isa.IntReg(1 + i%28)
		t.fpRing[i] = isa.FPReg(1 + i%28)
	}
	t.setPhase(0)
	t.enterFunction(0)
	return t
}

// Spec returns the benchmark description.
func (t *Trace) Spec() Spec { return t.spec }

// Count returns the number of instructions generated so far.
func (t *Trace) Count() int64 { return t.count }

func (t *Trace) setPhase(idx int) {
	if len(t.phases) == 0 {
		t.p = t.spec.Base
		t.phaseLeft = 1 << 62
	} else {
		t.phaseIdx = idx % len(t.phases)
		ph := t.phases[t.phaseIdx]
		t.p = ph.P
		t.phaseLeft = ph.Len
	}
	t.hotCount = t.p.HotKB * 1024 / blockSpacing / t.fnBlocks
	if t.hotCount < 1 {
		t.hotCount = 1
	}
	if t.hotCount > t.numFns {
		t.hotCount = t.numFns
	}
	if t.hotLeft <= 0 {
		t.hotLeft = t.hotDwell()
	}
	if t.p.MaxDepDist < 1 {
		t.p.MaxDepDist = 1
	}
	if t.p.MaxDepDist > ringSize {
		t.p.MaxDepDist = ringSize
	}
}

// hotDwell is how many function executions happen before the hot window
// slides by one function (slow drift over the full footprint).
func (t *Trace) hotDwell() int { return t.hotCount * 24 }

// hash64 is a stateless mix used to derive stable per-static-block
// properties (length, branch kind, bias) from the block id and seed.
func (t *Trace) hash64(blockID int, salt uint64) uint64 {
	z := uint64(blockID)*0x9e3779b97f4a7c15 + uint64(t.spec.Seed) + salt*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (t *Trace) staticBlockLen(blockID int) int {
	avg := t.p.AvgBlock
	if avg < 3 {
		avg = 3
	}
	if avg > maxBlockLen-2 {
		avg = maxBlockLen - 2
	}
	span := avg - 2 // lengths in [avg-span/…]: keep within [3, maxBlockLen]
	n := avg - span/2 + int(t.hash64(blockID, 1)%uint64(span+1))
	if n < 3 {
		n = 3
	}
	if n > maxBlockLen {
		n = maxBlockLen
	}
	return n
}

func (t *Trace) enterFunction(fn int) {
	t.fn = fn
	t.blk = 0
	t.loops = t.loops[:0]
	t.startBlock()
}

func (t *Trace) startBlock() {
	t.blockID = t.fn*t.fnBlocks + t.blk
	t.blockLen = t.staticBlockLen(t.blockID)
	t.slot = 0
}

func (t *Trace) blockPC(blockID int) uint64 {
	return codeBase + uint64(blockID)*blockSpacing
}

// pickInt returns a recent integer result register at roughly the given
// dependence profile.
func (t *Trace) pickSrc(fp bool, serial bool) isa.Reg {
	ring, pos := &t.intRing, t.intPos
	if fp {
		ring, pos = &t.fpRing, t.fpPos
	}
	d := 1
	if !serial {
		d = 1 + t.rng.Intn(t.p.MaxDepDist)
	}
	return ring[(pos-d+2*ringSize)%ringSize]
}

func (t *Trace) pushDest(fp bool, r isa.Reg) {
	if fp {
		t.fpRing[t.fpPos] = r
		t.fpPos = (t.fpPos + 1) % ringSize
	} else {
		t.intRing[t.intPos] = r
		t.intPos = (t.intPos + 1) % ringSize
	}
}

func (t *Trace) newDest(fp bool) isa.Reg {
	if fp {
		t.destFP = (t.destFP + 1) % 28
		r := isa.FPReg(1 + t.destFP)
		t.pushDest(true, r)
		return r
	}
	t.destInt = (t.destInt + 1) % 28
	r := isa.IntReg(1 + t.destInt)
	t.pushDest(false, r)
	return r
}

// dataAddr draws one memory address from the phase's access pattern.
func (t *Trace) dataAddr() uint64 {
	u := t.rng.Float64()
	ws := uint64(t.p.DataKB) * 1024
	if ws < 4096 {
		ws = 4096
	}
	switch {
	case u < t.p.StrideFrac:
		// Streaming with tile reuse: real kernels process arrays in
		// blocks, re-touching recent elements, so the sweep front moves
		// much slower than one line per access (this keeps streaming
		// from evicting a direct-mapped cache's entire hot contents on
		// every pass).
		if t.rng.Float64() < 0.7 {
			tile := t.seqAddr &^ 1023
			return dataBase + tile + uint64(t.rng.Intn(1024))&^7
		}
		t.seqAddr += 8
		if t.seqAddr >= ws {
			t.seqAddr = 0
		}
		return dataBase + t.seqAddr
	case u < t.p.StrideFrac+t.p.StackFrac:
		return stackBase + uint64(t.rng.Intn(stackKB*1024))&^7
	default:
		// Irregular access: HotDataFrac of these show temporal locality
		// in a hot subset; the rest roam the full working set.
		hot := uint64(t.p.HotDataKB) * 1024
		if hot > 0 && hot < ws && t.rng.Float64() < t.p.HotDataFrac {
			return hotBase + uint64(t.rng.Int63n(int64(hot)))&^7
		}
		return dataBase + uint64(t.rng.Int63n(int64(ws)))&^7
	}
}

// Next fills in with the next dynamic instruction. It always succeeds
// (traces are unbounded); the caller decides the window length.
func (t *Trace) Next(in *isa.Inst) {
	t.count++
	if t.phaseLeft--; t.phaseLeft <= 0 && len(t.phases) > 0 {
		t.setPhase(t.phaseIdx + 1)
	}

	pc := t.blockPC(t.blockID) + uint64(t.slot)*4
	if t.slot < t.blockLen-1 {
		t.emitBody(in, pc)
		t.slot++
		return
	}
	t.emitControl(in, pc)
}

func (t *Trace) emitBody(in *isa.Inst, pc uint64) {
	u := t.rng.Float64()
	p := &t.p
	switch {
	case u < p.LoadFrac:
		fpDest := t.rng.Float64() < p.FPFrac
		*in = isa.Inst{
			PC:    pc,
			Class: isa.Load,
			Dest:  t.newDest(fpDest),
			Src1:  t.pickSrc(false, false), // address base
			Addr:  t.dataAddr(),
			Size:  8,
		}
	case u < p.LoadFrac+p.StoreFrac:
		fpData := t.rng.Float64() < p.FPFrac
		*in = isa.Inst{
			PC:    pc,
			Class: isa.Store,
			Dest:  isa.RegNone,
			Src1:  t.pickSrc(fpData, t.rng.Float64() < p.SerialFrac), // data
			Src2:  t.pickSrc(false, false),                           // base
			Addr:  t.dataAddr(),
			Size:  8,
		}
	default:
		fp := t.rng.Float64() < p.FPFrac
		var class isa.OpClass
		v := t.rng.Float64()
		switch {
		case fp && v < p.DivFrac/2:
			class = isa.FPSqrt
		case fp && v < p.DivFrac:
			class = isa.FPDiv
		case fp && v < p.DivFrac+p.MulFrac:
			class = isa.FPMult
		case fp:
			class = isa.FPAdd
		case v < p.DivFrac:
			class = isa.IntDiv
		case v < p.DivFrac+p.MulFrac:
			class = isa.IntMult
		default:
			class = isa.IntALU
		}
		serial := t.rng.Float64() < p.SerialFrac
		*in = isa.Inst{
			PC:    pc,
			Class: class,
			Src1:  t.pickSrc(fp, serial),
			Src2:  t.pickSrc(fp, false),
			Dest:  t.newDest(fp),
		}
	}
}

// branch kinds per static block.
const (
	kindIf = iota
	kindLoop
)

func (t *Trace) branchKind(blockID int) int {
	// The last block of a function always calls out, handled separately.
	if float64(t.hash64(blockID, 2)%1000)/1000 < t.p.LoopFrac {
		return kindLoop
	}
	return kindIf
}

// ifOutcome draws the outcome of an if-branch. A NoiseFrac share of static
// branches is data dependent: independent coin flips that no predictor can
// learn (as in the adpcm decoder kernel, paper Section 5.1). The rest
// follow a periodic pattern whose duty cycle matches the branch's bias,
// which history-based predictors learn after warmup, as with real code.
func (t *Trace) ifOutcome(blockID int) bool {
	h := t.hash64(blockID, 3)
	if float64(h%1000)/1000 < t.p.NoiseFrac {
		return t.rng.Float64() < 0.5
	}
	bias := t.p.BiasedP
	if h&1024 != 0 {
		bias = 1 - bias
	}
	period := uint32(4 + (h>>16)%5) // 4..8
	duty := uint32(float64(period)*bias + 0.5)
	cnt := t.branchCnt[blockID&4095]
	t.branchCnt[blockID&4095] = cnt + 1
	// Rare re-randomization keeps patterns from being perfectly static.
	if t.rng.Float64() < 0.01 {
		return t.rng.Float64() < bias
	}
	return cnt%period < duty
}

// loopTrips draws the trip count for one visit of a loop branch: stable per
// static site (so predictors can learn the exit) with mild variation.
func (t *Trace) loopTrips(blockID int) int {
	mean := t.p.LoopMeanTrips
	if mean < 1 {
		mean = 1
	}
	base := 1 + int(t.hash64(blockID, 5)%uint64(2*mean))
	jitter := 0
	if t.rng.Float64() < 0.2 {
		jitter = t.rng.Intn(3) - 1
	}
	trips := base + jitter
	if trips < 1 {
		trips = 1
	}
	return trips
}

func (t *Trace) emitControl(in *isa.Inst, pc uint64) {
	lastInFn := t.blk == t.fnBlocks-1
	if lastInFn {
		// Function end: unconditional jump (call/return) to the next
		// function chosen by the walker.
		next := t.nextFunction()
		*in = isa.Inst{
			PC:     pc,
			Class:  isa.Jump,
			Taken:  true,
			Target: t.blockPC(next * t.fnBlocks),
		}
		t.enterFunction(next)
		return
	}

	kind := t.branchKind(t.blockID)
	taken := false
	targetBlk := t.blk + 1 // fall through

	if kind == kindLoop && t.blk > 0 {
		// Loop-back branch over a small span of preceding blocks.
		span := 1 + int(t.hash64(t.blockID, 4)%3)
		if span > t.blk {
			span = t.blk
		}
		if n := len(t.loops); n > 0 && t.loops[n-1].block == t.blk {
			rec := &t.loops[n-1]
			if rec.remaining > 0 {
				rec.remaining--
				taken = true
				targetBlk = t.blk - span
			} else {
				t.loops = t.loops[:n-1]
			}
		} else if len(t.loops) < 4 {
			trips := t.loopTrips(t.blockID)
			if trips > 1 {
				t.loops = append(t.loops, loopRec{block: t.blk, remaining: trips - 1})
				taken = true
				targetBlk = t.blk - span
			}
		}
	} else {
		// If-branch: outcome drawn from the static branch's pattern;
		// taken skips the next block.
		if t.ifOutcome(t.blockID) {
			taken = true
			targetBlk = t.blk + 2
			if targetBlk >= t.fnBlocks {
				targetBlk = t.fnBlocks - 1
			}
		}
	}

	*in = isa.Inst{
		PC:     pc,
		Class:  isa.Branch,
		Src1:   t.pickSrc(false, true), // the compare feeding the branch
		Taken:  taken,
		Target: t.blockPC(t.fn*t.fnBlocks + targetBlk),
	}
	if !taken {
		in.Target = pc + 4
	}
	t.blk = targetBlk
	t.startBlock()
}

// nextFunction advances the instruction working-set walker.
func (t *Trace) nextFunction() int {
	if t.returnFn >= 0 {
		fn := t.returnFn
		t.returnFn = -1
		return fn
	}
	if t.numFns > t.hotCount && t.rng.Float64() < t.p.ExcursionP {
		// Excursion into cold code, then return to the hot set.
		t.returnFn = t.hotNext()
		cold := t.rng.Intn(t.numFns)
		return cold
	}
	return t.hotNext()
}

func (t *Trace) hotNext() int {
	t.hotLeft--
	if t.hotLeft <= 0 {
		t.hotStart = (t.hotStart + 1) % t.numFns
		t.hotLeft = t.hotDwell()
	}
	// Mostly sequential traversal of the hot set (call sequences in real
	// programs repeat, which keeps global branch history learnable), with
	// occasional jumps within the set.
	if t.rng.Float64() < 0.05 {
		t.hotPos = t.rng.Intn(t.hotCount)
	} else {
		t.hotPos = (t.hotPos + 1) % t.hotCount
	}
	return (t.hotStart + t.hotPos) % t.numFns
}
