// Fixed-width binary codec for recorded instruction slabs. The in-memory
// isa.Inst struct is 40 bytes with padding; the wire form packs the same
// nine fields into 30 bytes, so a paper-scale recording (millions of
// instructions per benchmark) costs 30 B/inst of file-backed pages instead
// of 40 B/inst of heap. Decode(Encode(x)) == x for every field, which is
// what keeps mmap replay bit-identical to live generation.
package workload

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"

	"gals/internal/isa"
)

// EncodedInstSize is the fixed wire size of one instruction.
const EncodedInstSize = 30

// appendInst appends the 30-byte encoding of in to dst.
func appendInst(dst []byte, in *isa.Inst) []byte {
	var buf [EncodedInstSize]byte
	binary.LittleEndian.PutUint64(buf[0:], in.PC)
	binary.LittleEndian.PutUint64(buf[8:], in.Addr)
	binary.LittleEndian.PutUint64(buf[16:], in.Target)
	buf[24] = byte(in.Class)
	buf[25] = byte(in.Dest)
	buf[26] = byte(in.Src1)
	buf[27] = byte(in.Src2)
	buf[28] = in.Size
	if in.Taken {
		buf[29] = 1
	}
	return append(dst, buf[:]...)
}

// decodeInst fills in from the 30-byte encoding at src[:EncodedInstSize].
func decodeInst(src []byte, in *isa.Inst) {
	_ = src[EncodedInstSize-1]
	in.PC = binary.LittleEndian.Uint64(src[0:])
	in.Addr = binary.LittleEndian.Uint64(src[8:])
	in.Target = binary.LittleEndian.Uint64(src[16:])
	in.Class = isa.OpClass(src[24])
	in.Dest = isa.Reg(src[25])
	in.Src1 = isa.Reg(src[26])
	in.Src2 = isa.Reg(src[27])
	in.Size = src[28]
	in.Taken = src[29] != 0
}

// RecordTo streams the first n instructions of the benchmark's deterministic
// trace to w in the fixed wire encoding, without ever materializing the
// slab: peak memory is one buffer, independent of n. The byte stream is
// exactly what RecordingFromEncoded replays.
func (s Spec) RecordTo(w io.Writer, n int64) error {
	return s.RecordToContext(nil, w, n)
}

// RecordToContext is RecordTo bounded by ctx: cancellation is observed once
// per buffer flush (4096 instructions), so a deadline aborts a paper-scale
// recording within microseconds rather than after the full stream. A nil or
// never-cancellable ctx costs one nil check per flush — the encoded bytes
// are identical either way.
func (s Spec) RecordToContext(ctx context.Context, w io.Writer, n int64) error {
	if n <= 0 {
		return fmt.Errorf("workload: non-positive recording length %d", n)
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	tr := s.NewTrace()
	var in isa.Inst
	buf := make([]byte, 0, 4096*EncodedInstSize)
	for i := int64(0); i < n; i++ {
		tr.Next(&in)
		buf = appendInst(buf, &in)
		if len(buf) == cap(buf) {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// RecordingFromEncoded wraps an encoded slab (produced by RecordTo) as a
// replayable Recording without decoding it up front: replays decode on the
// fly in small chunks, so an mmap'd slab costs file-backed pages plus one
// chunk buffer per replay cursor. raw must hold a whole number of encoded
// instructions and must not be mutated afterwards.
func RecordingFromEncoded(spec Spec, raw []byte) (*Recording, error) {
	if len(raw) == 0 || len(raw)%EncodedInstSize != 0 {
		return nil, fmt.Errorf("workload: encoded slab of %d bytes is not a whole number of %d-byte instructions", len(raw), EncodedInstSize)
	}
	return &Recording{spec: spec, raw: raw, count: int64(len(raw) / EncodedInstSize)}, nil
}
