package mem

import (
	"testing"

	"gals/internal/timing"
)

func TestSingleAccessLatency(t *testing.T) {
	m := New()
	done := m.Access(0, 128)
	if want := timing.MemLatency(128); done != want {
		t.Errorf("completion %d, want %d", done, want)
	}
	if m.Accesses() != 1 {
		t.Errorf("accesses = %d, want 1", m.Accesses())
	}
	if m.BusyTime() != timing.MemLatency(128) {
		t.Errorf("busy time %d, want %d", m.BusyTime(), timing.MemLatency(128))
	}
}

func TestBackToBackSerializesOnChannel(t *testing.T) {
	m := New()
	d1 := m.Access(0, 128)
	d2 := m.Access(0, 128)
	if d2 <= d1 {
		t.Errorf("second access (%d) not after first (%d)", d2, d1)
	}
	// The channel frees after the 8-chunk transfer window, so the second
	// access overlaps its row activation with the first's tail.
	if d2 >= 2*d1 {
		t.Errorf("no pipelining: second access at %d, first at %d", d2, d1)
	}
}

func TestIdleChannelNoQueueing(t *testing.T) {
	m := New()
	m.Access(0, 64)
	late := timing.FS(1_000_000_000) // long after the first completes
	done := m.Access(late, 64)
	if want := late + timing.MemLatency(64); done != want {
		t.Errorf("idle-channel completion %d, want %d", done, want)
	}
}
