// Package mem models main memory, the processor's fixed-frequency fifth
// domain (paper Section 2): 80ns for the first chunk of an access and 2ns
// for each subsequent chunk, with a single channel that serializes row
// activations but pipelines transfers.
package mem

import "gals/internal/timing"

// Controller is the main-memory interface. It is deliberately simple: a
// single channel whose next free time enforces bank occupancy, with
// chunked transfer timing from package timing.
type Controller struct {
	busFree timing.FS
	// accesses and busyTime accumulate utilization statistics.
	accesses int64
	busyTime timing.FS
}

// New returns an idle memory controller.
func New() *Controller { return &Controller{} }

// Access performs a transfer of size bytes requested at time t and returns
// the completion time. Requests serialize on the channel in arrival order.
func (m *Controller) Access(t timing.FS, size int) timing.FS {
	start := t
	if m.busFree > start {
		start = m.busFree
	}
	lat := timing.MemLatency(size)
	done := start + lat
	// The channel is occupied for the transfer portion; a following access
	// can overlap its row activation with the tail of this transfer.
	chunks := (size + timing.MemChunkBytes - 1) / timing.MemChunkBytes
	m.busFree = start + timing.FS(chunks)*timing.MemNextAccess
	m.accesses++
	m.busyTime += lat
	return done
}

// Accesses returns the number of transfers served.
func (m *Controller) Accesses() int64 { return m.accesses }

// BusyTime returns the cumulative transfer latency served (for utilization
// reporting).
func (m *Controller) BusyTime() timing.FS { return m.busyTime }
