package faultinject

import (
	"strings"
	"testing"
)

// TestCrashModeAbortsAtPoint pins the "crash" mode's contract in-process by
// swapping the exit hook: an armed crash plan calls the process-abort path
// with CrashExitCode exactly at its injection point, honors the
// deterministic rate schedule, and leaves unarmed points untouched.
func TestCrashModeAbortsAtPoint(t *testing.T) {
	defer Disable()
	var exits []int
	old := crashExit
	crashExit = func(code int) { exits = append(exits, code) }
	defer func() { crashExit = old }()

	if err := Enable("resultcache.read=crash"); err != nil {
		t.Fatal(err)
	}
	// An unarmed point never crashes.
	if err := Err(ServiceDispatch); err != nil || len(exits) != 0 {
		t.Fatalf("unarmed point: err=%v exits=%v", err, exits)
	}
	// The armed point aborts with the documented status. The swapped hook
	// returns (the real one never does), so Err falls through to nil.
	if err := Err(ResultCacheRead); err != nil {
		t.Fatalf("crash plan returned error %v", err)
	}
	if len(exits) != 1 || exits[0] != CrashExitCode {
		t.Fatalf("exits = %v, want one exit with code %d", exits, CrashExitCode)
	}
	if Injected(ResultCacheRead) != 1 {
		t.Fatalf("Injected = %d, want 1", Injected(ResultCacheRead))
	}

	// A fractional rate follows the floor(n*rate) schedule: rate 0.5
	// crashes calls 2, 4, 6, ... only.
	if err := Enable("recstore.open=crash:0.5"); err != nil {
		t.Fatal(err)
	}
	exits = nil
	for i := 0; i < 6; i++ {
		Err(RecstoreOpen)
	}
	if len(exits) != 3 {
		t.Fatalf("rate 0.5 over 6 calls crashed %d times, want 3", len(exits))
	}

	// The spec grammar rejects a crash delay no differently than other
	// modes accept one — but an unknown mode still names crash in its hint.
	err := Enable("recstore.open=explode")
	if err == nil || !strings.Contains(err.Error(), "crash") {
		t.Fatalf("unknown-mode error %v does not list crash", err)
	}
}
