// Package faultinject injects disk and dispatch faults at named hook
// points so the chaos tests (and an operator reproducing an incident) can
// exercise galsd's degradation paths on demand: corrupt result blobs,
// unreadable recording slabs, failed mmaps, ENOSPC on writes, slow I/O and
// per-call dispatch error rates.
//
// The package is off by default and zero-cost when disabled: every hook
// starts with one atomic load and returns immediately. Faults are enabled
// with Enable (a spec string, also read from $GALS_FAULTS at init, and
// exposed as galsd's -fault-inject flag) and are deterministic — a rate of
// 0.25 injects exactly every 4th call at the point, not a random sample —
// so chaos tests reproduce bit-identically.
//
// Spec grammar (comma-separated clauses):
//
//	<point>=<mode>[:<rate>[:<delay>]]
//
// where point is one of the Point constants, mode is "error", "enospc",
// "slow", "corrupt", "truncate" or "crash", rate is the injected fraction
// of calls in (0, 1] (default 1), and delay is a time.ParseDuration string
// for "slow" (default 10ms). "crash" aborts the whole process with
// os.Exit(3) at the scheduled hit — no deferred cleanup runs, exactly like
// a kill -9 at that point — so crash-recovery tests can die at a precise
// call site from a subprocess. Example:
//
//	resultcache.read=corrupt:1,service.dispatch=error:0.25,recstore.mmap=error:1
package faultinject

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one fault-injection hook site.
type Point string

// The wired hook points.
const (
	// ResultCacheRead covers resultcache.Cache.Load: "error" fails the
	// read, "corrupt"/"truncate" mutate the blob bytes before decoding
	// (the cache must treat either as a miss and recompute).
	ResultCacheRead Point = "resultcache.read"
	// ResultCacheWrite covers resultcache.Cache.Store: "error"/"enospc"
	// fail the write (the cache must degrade to a recompute next time,
	// never propagate).
	ResultCacheWrite Point = "resultcache.write"
	// RecstoreOpen covers recstore slab validation on open: an injected
	// error is indistinguishable from a corrupt slab, so the store must
	// delete and re-record (or degrade to in-memory recording).
	RecstoreOpen Point = "recstore.open"
	// RecstoreMap covers the slab mmap: an injected error must fall back
	// to a plain heap read, never fail the recording.
	RecstoreMap Point = "recstore.mmap"
	// ServiceDispatch covers service request dispatch: "error" refuses the
	// request (HTTP maps it to a retryable 503), "slow" stalls it.
	ServiceDispatch Point = "service.dispatch"
)

// ErrInjected is the root of every injected error; errors.Is(err,
// ErrInjected) distinguishes chaos from genuine faults.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrNoSpace is the injected ENOSPC variant.
var ErrNoSpace = fmt.Errorf("%w: no space left on device", ErrInjected)

var validModes = map[string]bool{
	"error": true, "enospc": true, "slow": true, "corrupt": true, "truncate": true,
	"crash": true,
}

var validPoints = map[Point]bool{
	ResultCacheRead: true, ResultCacheWrite: true,
	RecstoreOpen: true, RecstoreMap: true, ServiceDispatch: true,
}

type plan struct {
	mode  string
	rate  float64
	delay time.Duration

	calls    atomic.Uint64
	injected atomic.Uint64
}

// fire decides deterministically whether call number n injects: the count
// of injections after n calls is floor(n*rate), so a rate of 0.25 injects
// exactly calls 4, 8, 12, ... regardless of concurrency interleaving.
func (p *plan) fire() bool {
	n := p.calls.Add(1)
	if p.rate >= 1 || uint64(float64(n)*p.rate) > uint64(float64(n-1)*p.rate) {
		p.injected.Add(1)
		return true
	}
	return false
}

var (
	enabled atomic.Bool
	mu      sync.RWMutex
	plans   map[Point]*plan
)

func init() {
	if spec := os.Getenv("GALS_FAULTS"); spec != "" {
		if err := Enable(spec); err != nil {
			fmt.Fprintln(os.Stderr, "faultinject: ignoring $GALS_FAULTS:", err)
		}
	}
}

// Enable parses a fault spec and arms the hooks. It replaces any previous
// plan set wholesale; Enable("") is Disable.
func Enable(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		Disable()
		return nil
	}
	next := make(map[Point]*plan)
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		pt, rest, ok := strings.Cut(clause, "=")
		if !ok {
			return fmt.Errorf("faultinject: clause %q is not <point>=<mode>[:rate[:delay]]", clause)
		}
		point := Point(strings.TrimSpace(pt))
		if !validPoints[point] {
			return fmt.Errorf("faultinject: unknown point %q", point)
		}
		parts := strings.Split(rest, ":")
		p := &plan{mode: strings.TrimSpace(parts[0]), rate: 1, delay: 10 * time.Millisecond}
		if !validModes[p.mode] {
			return fmt.Errorf("faultinject: unknown mode %q (want error, enospc, slow, corrupt, truncate or crash)", p.mode)
		}
		if len(parts) > 1 && parts[1] != "" {
			r, err := strconv.ParseFloat(parts[1], 64)
			if err != nil || !(r > 0 && r <= 1) {
				return fmt.Errorf("faultinject: rate %q out of (0, 1]", parts[1])
			}
			p.rate = r
		}
		if len(parts) > 2 && parts[2] != "" {
			d, err := time.ParseDuration(parts[2])
			if err != nil || d < 0 {
				return fmt.Errorf("faultinject: bad delay %q", parts[2])
			}
			p.delay = d
		}
		if len(parts) > 3 {
			return fmt.Errorf("faultinject: clause %q has trailing fields", clause)
		}
		next[point] = p
	}
	mu.Lock()
	plans = next
	mu.Unlock()
	enabled.Store(len(next) > 0)
	return nil
}

// Disable disarms every hook; subsequent hook calls are one atomic load.
func Disable() {
	enabled.Store(false)
	mu.Lock()
	plans = nil
	mu.Unlock()
}

// Active reports whether any fault plan is armed.
func Active() bool { return enabled.Load() }

func lookup(pt Point) *plan {
	mu.RLock()
	defer mu.RUnlock()
	return plans[pt]
}

// CrashExitCode is the status a "crash" plan aborts the process with;
// subprocess harnesses assert on it to distinguish an injected crash from a
// genuine panic or test failure.
const CrashExitCode = 3

// crashExit is swapped out by tests that need to observe a crash without
// dying; everything else gets the real os.Exit — abrupt, no deferred
// cleanup, the closest in-process stand-in for kill -9.
var crashExit = os.Exit

// Err returns the injected error for the point's next call, or nil. "slow"
// plans sleep here and return nil; "corrupt"/"truncate" plans belong to
// Mutate and never error; "crash" plans never return at all — the process
// exits with CrashExitCode at the scheduled hit.
func Err(pt Point) error {
	if !enabled.Load() {
		return nil
	}
	p := lookup(pt)
	if p == nil {
		return nil
	}
	switch p.mode {
	case "slow":
		if p.fire() {
			time.Sleep(p.delay)
		}
	case "error":
		if p.fire() {
			return fmt.Errorf("%s: %w", pt, ErrInjected)
		}
	case "enospc":
		if p.fire() {
			return fmt.Errorf("%s: %w", pt, ErrNoSpace)
		}
	case "crash":
		if p.fire() {
			fmt.Fprintf(os.Stderr, "faultinject: crash at %s (call %d)\n", pt, p.calls.Load())
			crashExit(CrashExitCode)
		}
	}
	return nil
}

// Mutate returns the blob a reader at the point should see: unchanged
// without an armed corrupt/truncate plan, otherwise a damaged copy (the
// input is never modified in place — it may be an mmap).
func Mutate(pt Point, b []byte) []byte {
	if !enabled.Load() {
		return b
	}
	p := lookup(pt)
	if p == nil || (p.mode != "corrupt" && p.mode != "truncate") || len(b) == 0 || !p.fire() {
		return b
	}
	if p.mode == "truncate" {
		return b[:len(b)/2]
	}
	out := make([]byte, len(b))
	copy(out, b)
	// Flip bytes spread across the blob so both JSON decoders and binary
	// header checks notice.
	for i := 0; i < len(out); i += 1 + len(out)/8 {
		out[i] ^= 0xff
	}
	return out
}

// Injected reports how many faults the point has injected since its plan
// was armed (0 when unarmed) — the observability surface chaos tests and
// operators assert against.
func Injected(pt Point) uint64 {
	p := lookup(pt)
	if p == nil {
		return 0
	}
	return p.injected.Load()
}
