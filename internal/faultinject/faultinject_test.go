package faultinject

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestInjectSpecParsing(t *testing.T) {
	defer Disable()

	good := []string{
		"",
		"resultcache.read=error",
		"resultcache.read=corrupt:0.5",
		"service.dispatch=slow:1:50ms",
		"resultcache.read=truncate, recstore.open=error:0.25 ,recstore.mmap=error",
		"resultcache.write=enospc:0.1",
	}
	for _, spec := range good {
		if err := Enable(spec); err != nil {
			t.Errorf("Enable(%q) = %v, want nil", spec, err)
		}
	}

	bad := []string{
		"resultcache.read",                  // no mode
		"nosuch.point=error",                // unknown point
		"resultcache.read=explode",          // unknown mode
		"resultcache.read=error:0",          // rate out of (0,1]
		"resultcache.read=error:1.5",        // rate out of (0,1]
		"resultcache.read=error:x",          // unparsable rate
		"service.dispatch=slow:1:-5ms",      // negative delay
		"service.dispatch=slow:1:10ms:junk", // trailing fields
	}
	for _, spec := range bad {
		if err := Enable(spec); err == nil {
			t.Errorf("Enable(%q) = nil, want error", spec)
		}
	}
}

func TestInjectEnableDisable(t *testing.T) {
	defer Disable()

	if Active() {
		t.Fatal("Active() before Enable")
	}
	if err := Enable("service.dispatch=error"); err != nil {
		t.Fatal(err)
	}
	if !Active() {
		t.Fatal("Active() = false after Enable")
	}
	if err := Err(ServiceDispatch); !errors.Is(err, ErrInjected) {
		t.Fatalf("Err(ServiceDispatch) = %v, want ErrInjected", err)
	}
	if err := Err(ResultCacheRead); err != nil {
		t.Fatalf("Err on unarmed point = %v, want nil", err)
	}

	if err := Enable(""); err != nil { // Enable("") is Disable
		t.Fatal(err)
	}
	if Active() {
		t.Fatal("Active() after Enable(\"\")")
	}
	if err := Err(ServiceDispatch); err != nil {
		t.Fatalf("Err after disable = %v, want nil", err)
	}
	if got := Injected(ServiceDispatch); got != 0 {
		t.Fatalf("Injected after disable = %d, want 0", got)
	}
}

func TestInjectDeterministicRate(t *testing.T) {
	defer Disable()

	if err := Enable("service.dispatch=error:0.25"); err != nil {
		t.Fatal(err)
	}
	var pattern []bool
	fails := 0
	for i := 0; i < 100; i++ {
		err := Err(ServiceDispatch)
		pattern = append(pattern, err != nil)
		if err != nil {
			fails++
		}
	}
	if fails != 25 {
		t.Fatalf("rate 0.25 over 100 calls injected %d times, want exactly 25", fails)
	}
	if got := Injected(ServiceDispatch); got != 25 {
		t.Fatalf("Injected = %d, want 25", got)
	}
	// floor(n*0.25) increments at n = 4, 8, 12, ...
	for i, fired := range pattern {
		want := (i+1)%4 == 0
		if fired != want {
			t.Fatalf("call %d: injected=%v, want %v", i+1, fired, want)
		}
	}

	// Re-arming resets the schedule: the pattern replays identically.
	if err := Enable("service.dispatch=error:0.25"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if fired := Err(ServiceDispatch) != nil; fired != pattern[i] {
			t.Fatalf("replay diverged at call %d", i+1)
		}
	}
}

func TestInjectEnospc(t *testing.T) {
	defer Disable()

	if err := Enable("resultcache.write=enospc"); err != nil {
		t.Fatal(err)
	}
	err := Err(ResultCacheWrite)
	if !errors.Is(err, ErrNoSpace) || !errors.Is(err, ErrInjected) {
		t.Fatalf("Err = %v, want ErrNoSpace (wrapping ErrInjected)", err)
	}
	if !strings.Contains(err.Error(), "resultcache.write") {
		t.Fatalf("error %q does not name its point", err)
	}
}

func TestInjectMutateLeavesInputIntact(t *testing.T) {
	defer Disable()

	blob := []byte(`{"v":"some result blob with enough bytes to matter"}`)
	orig := append([]byte(nil), blob...)

	if got := Mutate(ResultCacheRead, blob); !bytes.Equal(got, blob) {
		t.Fatal("Mutate while disabled changed the blob")
	}

	if err := Enable("resultcache.read=corrupt"); err != nil {
		t.Fatal(err)
	}
	got := Mutate(ResultCacheRead, blob)
	if bytes.Equal(got, blob) {
		t.Fatal("corrupt Mutate returned the blob unchanged")
	}
	if !bytes.Equal(blob, orig) {
		t.Fatal("Mutate modified its input in place (it may be an mmap)")
	}

	if err := Enable("resultcache.read=truncate"); err != nil {
		t.Fatal(err)
	}
	if got := Mutate(ResultCacheRead, blob); len(got) != len(blob)/2 {
		t.Fatalf("truncate Mutate returned %d bytes, want %d", len(got), len(blob)/2)
	}
	if !bytes.Equal(blob, orig) {
		t.Fatal("truncate Mutate modified its input")
	}
}

func TestInjectSlowSleeps(t *testing.T) {
	defer Disable()

	if err := Enable("service.dispatch=slow:1:30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Err(ServiceDispatch); err != nil {
		t.Fatalf("slow plan returned error %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("slow plan slept %v, want >= 30ms", d)
	}
}
