// Package isa defines the synthetic RISC instruction set used by the
// adaptive GALS simulator.
//
// The paper evaluates on Alpha binaries run under SimpleScalar. This
// reproduction is trace driven: workload models (package workload) emit
// deterministic streams of dynamic instructions in this ISA, and the core
// pipeline model (package core) consumes them. The ISA therefore carries
// exactly the information the timing model needs: operation class, logical
// register operands, memory address and size for loads/stores, and control
// flow (target, outcome) for branches.
package isa

import "fmt"

// OpClass categorizes instructions by the functional unit and domain that
// execute them. The integer domain executes IntALU/IntMult/IntDiv and all
// branches as well as address generation for memory operations; the floating
// point domain executes FPAdd/FPMult/FPDiv/FPSqrt; loads and stores occupy
// the load/store domain after address generation.
type OpClass uint8

const (
	// IntALU is a single-cycle integer operation (add, logical, shift,
	// compare).
	IntALU OpClass = iota
	// IntMult is a pipelined integer multiply.
	IntMult
	// IntDiv is an unpipelined integer divide.
	IntDiv
	// FPAdd is a pipelined floating-point add/subtract/convert.
	FPAdd
	// FPMult is a pipelined floating-point multiply.
	FPMult
	// FPDiv is an unpipelined floating-point divide.
	FPDiv
	// FPSqrt is an unpipelined floating-point square root.
	FPSqrt
	// Load reads memory through the load/store domain.
	Load
	// Store writes memory through the load/store domain.
	Store
	// Branch is a conditional branch resolved in the integer domain.
	Branch
	// Jump is an unconditional direct jump (always taken, never
	// mispredicted, resolved at decode).
	Jump
	// NumOpClasses is the number of distinct operation classes.
	NumOpClasses = int(Jump) + 1
)

var opClassNames = [NumOpClasses]string{
	"IntALU", "IntMult", "IntDiv", "FPAdd", "FPMult", "FPDiv", "FPSqrt",
	"Load", "Store", "Branch", "Jump",
}

// String returns the mnemonic name of the operation class.
func (c OpClass) String() string {
	if int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return fmt.Sprintf("OpClass(%d)", uint8(c))
}

// IsFP reports whether the class executes in the floating-point domain.
func (c OpClass) IsFP() bool {
	return c == FPAdd || c == FPMult || c == FPDiv || c == FPSqrt
}

// IsInt reports whether the class executes in the integer domain
// (including branches; address generation for memory ops is accounted
// separately by the pipeline).
func (c OpClass) IsInt() bool {
	return c == IntALU || c == IntMult || c == IntDiv || c == Branch
}

// IsMem reports whether the class occupies the load/store queue.
func (c OpClass) IsMem() bool { return c == Load || c == Store }

// IsCtrl reports whether the class redirects control flow.
func (c OpClass) IsCtrl() bool { return c == Branch || c == Jump }

// Register file shape. The paper's machine has 32 logical integer and 32
// logical floating-point registers (Alpha), which the ILP tracking hardware
// in Section 3.2 depends on (4-6 bit timestamps on 64 logical registers).
const (
	// NumIntRegs is the number of logical integer registers.
	NumIntRegs = 32
	// NumFPRegs is the number of logical floating-point registers.
	NumFPRegs = 32
	// RegNone marks an absent register operand.
	RegNone = Reg(0xFF)
)

// Reg names a logical register. Integer registers are 0..31 and floating
// point registers are 32..63; RegNone marks an unused operand slot.
type Reg uint8

// IntReg returns the integer register with index i (0 <= i < NumIntRegs).
func IntReg(i int) Reg { return Reg(i) }

// FPReg returns the floating-point register with index i (0 <= i < NumFPRegs).
func FPReg(i int) Reg { return Reg(NumIntRegs + i) }

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r != RegNone && r >= NumIntRegs }

// Valid reports whether r names a register at all.
func (r Reg) Valid() bool { return r != RegNone }

// String returns the assembly-style name of the register.
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r.IsFP():
		return fmt.Sprintf("f%d", int(r)-NumIntRegs)
	default:
		return fmt.Sprintf("r%d", int(r))
	}
}

// Inst is one dynamic instruction in a workload trace.
//
// PC and Addr are byte addresses. Dynamic control-flow information (Taken,
// Target) records the trace's actual outcome; the branch predictor in the
// simulated front end produces its own prediction and the pipeline charges a
// misprediction penalty when they disagree.
type Inst struct {
	// PC is the instruction's address.
	PC uint64
	// Class selects the functional unit and domain.
	Class OpClass
	// Dest is the destination register, or RegNone.
	Dest Reg
	// Src1 and Src2 are source registers, or RegNone.
	Src1, Src2 Reg
	// Addr is the effective address for loads and stores.
	Addr uint64
	// Size is the access size in bytes for loads and stores.
	Size uint8
	// Taken is the actual outcome for branches (always true for jumps).
	Taken bool
	// Target is the actual next PC for taken control transfers.
	Target uint64
}

// Latency returns the execution latency of the class in cycles of its
// executing domain, matching the Alpha-21264-flavoured values used by the
// MCD simulator (memory classes return the address-generation latency; the
// cache hierarchy adds the access time).
func (c OpClass) Latency() int {
	switch c {
	case IntALU, Branch, Jump:
		return 1
	case IntMult:
		return 3
	case IntDiv:
		return 20
	case FPAdd:
		return 2
	case FPMult:
		return 4
	case FPDiv:
		return 12
	case FPSqrt:
		return 24
	case Load, Store:
		return 1 // address generation
	}
	return 1
}

// Pipelined reports whether the functional unit for the class accepts a new
// operation every cycle (true) or is busy for the full latency (false).
func (c OpClass) Pipelined() bool {
	switch c {
	case IntDiv, FPDiv, FPSqrt:
		return false
	}
	return true
}

// String formats the instruction for debugging.
func (in Inst) String() string {
	switch {
	case in.Class.IsMem():
		return fmt.Sprintf("%#x: %s %s,%s [%#x]", in.PC, in.Class, in.Dest, in.Src1, in.Addr)
	case in.Class.IsCtrl():
		return fmt.Sprintf("%#x: %s taken=%v -> %#x", in.PC, in.Class, in.Taken, in.Target)
	default:
		return fmt.Sprintf("%#x: %s %s,%s,%s", in.PC, in.Class, in.Dest, in.Src1, in.Src2)
	}
}
