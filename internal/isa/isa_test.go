package isa

import (
	"testing"
	"testing/quick"
)

func TestOpClassPredicates(t *testing.T) {
	cases := []struct {
		c                   OpClass
		fp, intg, mem, ctrl bool
	}{
		{IntALU, false, true, false, false},
		{IntMult, false, true, false, false},
		{IntDiv, false, true, false, false},
		{FPAdd, true, false, false, false},
		{FPMult, true, false, false, false},
		{FPDiv, true, false, false, false},
		{FPSqrt, true, false, false, false},
		{Load, false, false, true, false},
		{Store, false, false, true, false},
		{Branch, false, true, false, true},
		{Jump, false, false, false, true},
	}
	for _, c := range cases {
		if c.c.IsFP() != c.fp || c.c.IsInt() != c.intg || c.c.IsMem() != c.mem || c.c.IsCtrl() != c.ctrl {
			t.Errorf("%v: predicates fp=%v int=%v mem=%v ctrl=%v unexpected",
				c.c, c.c.IsFP(), c.c.IsInt(), c.c.IsMem(), c.c.IsCtrl())
		}
	}
}

func TestLatenciesPositive(t *testing.T) {
	for c := OpClass(0); int(c) < NumOpClasses; c++ {
		if c.Latency() < 1 {
			t.Errorf("%v latency %d < 1", c, c.Latency())
		}
		if c.String() == "" {
			t.Errorf("class %d has empty name", c)
		}
	}
	// Unpipelined units are exactly the long-latency dividers.
	for _, c := range []OpClass{IntDiv, FPDiv, FPSqrt} {
		if c.Pipelined() {
			t.Errorf("%v should be unpipelined", c)
		}
	}
	for _, c := range []OpClass{IntALU, IntMult, FPAdd, FPMult, Load, Store, Branch} {
		if !c.Pipelined() {
			t.Errorf("%v should be pipelined", c)
		}
	}
}

func TestRegisterHelpers(t *testing.T) {
	f := func(raw uint8) bool {
		i := int(raw % NumIntRegs)
		r := IntReg(i)
		fr := FPReg(i)
		return r.Valid() && !r.IsFP() && fr.Valid() && fr.IsFP() &&
			int(fr)-NumIntRegs == i && int(r) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if RegNone.Valid() {
		t.Error("RegNone reported valid")
	}
	if RegNone.String() != "-" {
		t.Errorf("RegNone string %q", RegNone.String())
	}
	if IntReg(3).String() != "r3" || FPReg(4).String() != "f4" {
		t.Error("register naming broken")
	}
}

func TestInstString(t *testing.T) {
	ld := Inst{PC: 0x400000, Class: Load, Dest: IntReg(1), Src1: IntReg(2), Addr: 0x1000}
	br := Inst{PC: 0x400004, Class: Branch, Taken: true, Target: 0x400100}
	alu := Inst{PC: 0x400008, Class: IntALU, Dest: IntReg(3), Src1: IntReg(1), Src2: IntReg(2)}
	for _, s := range []string{ld.String(), br.String(), alu.String()} {
		if s == "" {
			t.Error("empty instruction rendering")
		}
	}
}
