// Package cache implements the Accounting Cache of Dropsho et al. (paper
// Section 3.1), the reconfigurable cache used by every resizable cache in
// the adaptive GALS processor.
//
// An Accounting Cache is a set-associative cache partitioned by ways into
// an A (primary) partition and a B (secondary) partition. The A partition
// is accessed first; on an A miss the B partition is probed, and a B hit
// swaps the block into A. Because the swap policy is exactly
// most-recently-used ordering, the cache maintains full MRU state over all
// physical ways regardless of the active partitioning, and simple counts of
// hits per MRU position suffice to reconstruct the exact number of A hits,
// B hits, and misses that *any* partitioning would have produced over the
// same access stream. This is what lets the phase controller evaluate all
// configurations from a single interval without exploration.
//
// Two operating modes exist (paper Section 3.1):
//
//   - A/B mode (Phase-Adaptive): an A miss probes B; blocks swap.
//   - A-only mode (fully synchronous and Program-Adaptive): a miss in A
//     goes directly to the next level; ways outside A hold no data but
//     their tags keep collecting MRU statistics.
package cache

import (
	"fmt"

	"gals/internal/timing"
)

// invalidTag marks an empty way.
const invalidTag = ^uint64(0)

// Geometry fixes the physical shape of a cache: the maximum enabled
// configuration. Resizing selects how many ways are in the A partition.
type Geometry struct {
	// Name labels the cache in statistics output.
	Name string
	// Sets is the number of sets (constant across resizing: the paper's
	// adaptive caches grow by ways, each way an identical RAM).
	Sets int
	// Ways is the number of physical ways.
	Ways int
	// LineBytes is the cache line size.
	LineBytes int
}

// SizeKB returns the total capacity of the geometry in kilobytes.
func (g Geometry) SizeKB() int { return g.Sets * g.Ways * g.LineBytes / 1024 }

func (g Geometry) validate() error {
	if g.Sets <= 0 {
		return fmt.Errorf("cache %s: sets %d not positive", g.Name, g.Sets)
	}
	if g.Ways <= 0 {
		return fmt.Errorf("cache %s: ways %d not positive", g.Name, g.Ways)
	}
	if g.LineBytes <= 0 || g.LineBytes&(g.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a positive power of two", g.Name, g.LineBytes)
	}
	return nil
}

// Class is the timing outcome of one access.
type Class uint8

const (
	// AHit found the block in the A partition.
	AHit Class = iota
	// BHit found the block in the B partition (A/B mode only).
	BHit
	// Miss did not find the block in any enabled partition.
	Miss
)

// String names the access class.
func (c Class) String() string {
	switch c {
	case AHit:
		return "A-hit"
	case BHit:
		return "B-hit"
	default:
		return "miss"
	}
}

// Stats are the interval statistics the accounting hardware maintains: one
// hit counter per MRU position, plus a counter of true (directory) misses.
type Stats struct {
	// PosHits[p] counts accesses whose block was at MRU position p.
	PosHits []uint64
	// DirMisses counts accesses whose block was in no physical way.
	DirMisses uint64
	// Accesses counts all accesses in the interval.
	Accesses uint64
	// Writebacks counts dirty evictions (informational).
	Writebacks uint64
}

// Reconstruct computes the exact number of A hits, B hits, and misses this
// interval would have seen under a partitioning with waysA enabled in A and
// the B partition enabled or not. This is the Accounting Cache's core
// property: the counts are exact for every configuration because MRU state
// evolution is configuration independent.
func (s *Stats) Reconstruct(waysA int, bEnabled bool) (aHits, bHits, misses uint64) {
	for p, n := range s.PosHits {
		if p < waysA {
			aHits += n
		} else if bEnabled {
			bHits += n
		} else {
			misses += n
		}
	}
	misses += s.DirMisses
	return aHits, bHits, misses
}

// AccountingCache is one resizable cache. It is purely functional: it
// tracks contents and statistics; timing (latencies, clock periods) is
// applied by the pipeline using the access Class.
type AccountingCache struct {
	geo      Geometry
	lineBits uint
	setMask  uint64 // used when Sets is a power of two
	setMod   uint64 // used otherwise (sets-resized caches can be 3/4 size)

	// tags holds the per-set ways in MRU order (most recent first),
	// Sets*Ways entries. Tags are full line addresses.
	tags  []uint64
	dirty []bool

	waysA    int
	bEnabled bool

	stats Stats
}

// New creates an empty cache with the given physical geometry, initially
// configured with all ways in A and no B partition.
func New(geo Geometry) *AccountingCache {
	if err := geo.validate(); err != nil {
		panic(err)
	}
	c := &AccountingCache{
		geo:      geo,
		tags:     make([]uint64, geo.Sets*geo.Ways),
		dirty:    make([]bool, geo.Sets*geo.Ways),
		waysA:    geo.Ways,
		bEnabled: false,
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	c.stats.PosHits = make([]uint64, geo.Ways)
	for lb := geo.LineBytes; lb > 1; lb >>= 1 {
		c.lineBits++
	}
	if geo.Sets&(geo.Sets-1) == 0 {
		c.setMask = uint64(geo.Sets - 1)
	} else {
		c.setMod = uint64(geo.Sets)
	}
	return c
}

// setIndex maps a line address to its set.
func (c *AccountingCache) setIndex(line uint64) int {
	if c.setMod != 0 {
		return int(line % c.setMod)
	}
	return int(line & c.setMask)
}

// Geometry returns the cache's physical shape.
func (c *AccountingCache) Geometry() Geometry { return c.geo }

// Configure sets the A partition size (1..Ways) and whether the B partition
// is enabled. Contents and statistics are preserved: reconfiguration in the
// Accounting Cache design moves no data (the partition is a labeling of
// ways by MRU position).
func (c *AccountingCache) Configure(waysA int, bEnabled bool) {
	if waysA < 1 || waysA > c.geo.Ways {
		panic(fmt.Sprintf("cache %s: A partition %d ways out of range 1..%d", c.geo.Name, waysA, c.geo.Ways))
	}
	if waysA == c.geo.Ways {
		bEnabled = false // no ways remain for B
	}
	c.waysA = waysA
	c.bEnabled = bEnabled
}

// WaysA returns the current A partition size.
func (c *AccountingCache) WaysA() int { return c.waysA }

// BEnabled reports whether the B partition is active.
func (c *AccountingCache) BEnabled() bool { return c.bEnabled }

// LineAddr maps a byte address to its line address.
func (c *AccountingCache) LineAddr(addr uint64) uint64 { return addr >> c.lineBits }

// Access looks up addr, updates MRU state, statistics and contents, and
// returns the timing class of the access under the current configuration.
// Write accesses mark the line dirty. A Miss implies the block was (re)
// fetched from the next level and installed as MRU; the caller charges the
// next-level latency.
func (c *AccountingCache) Access(addr uint64, write bool) Class {
	return ClassifyPos(c.AccessPos(addr, write), c.waysA, c.bEnabled)
}

// AccessPos is Access without the classification: it performs the full
// state update (MRU move-to-front, statistics, contents, dirty bits) and
// returns the MRU position the block was found at, or -1 on a directory
// miss. The update is identical for every configuration — this is the
// Accounting Cache's defining property — so AccessPos needs no knowledge
// of the active partitioning. ClassifyPos(pos, waysA, bEnabled) recovers
// the timing class for any configuration; the parallel machine uses this
// split to evolve cache state ahead of the timing pipeline and classify
// later, under the configuration in force when the access is timed.
func (c *AccountingCache) AccessPos(addr uint64, write bool) int {
	line := c.LineAddr(addr)
	base := c.setIndex(line) * c.geo.Ways
	ways := c.tags[base : base+c.geo.Ways]

	c.stats.Accesses++

	pos := -1
	for i, t := range ways {
		if t == line {
			pos = i
			break
		}
	}

	// Move-to-front MRU update (this is exactly the A/B swap behaviour).
	if pos < 0 {
		c.stats.DirMisses++
		// Install new line; evict the LRU way.
		last := c.geo.Ways - 1
		if ways[last] != invalidTag && c.dirty[base+last] {
			c.stats.Writebacks++
		}
		copy(ways[1:], ways[:last])
		copy(c.dirty[base+1:base+c.geo.Ways], c.dirty[base:base+last])
		ways[0] = line
		c.dirty[base] = write
		return pos
	}
	c.stats.PosHits[pos]++
	wasDirty := c.dirty[base+pos]
	copy(ways[1:], ways[:pos])
	copy(c.dirty[base+1:base+pos+1], c.dirty[base:base+pos])
	ways[0] = line
	c.dirty[base] = wasDirty || write
	return pos
}

// ClassifyPos maps an AccessPos result to the timing class it would have
// under a partitioning with waysA primary ways and the B partition enabled
// or not. A position in a disabled way (pos >= waysA without B) is a miss
// for timing — the data is not resident — exactly as in Access.
func ClassifyPos(pos, waysA int, bEnabled bool) Class {
	switch {
	case pos < 0:
		return Miss
	case pos < waysA:
		return AHit
	case bEnabled:
		return BHit
	default:
		return Miss
	}
}

// Probe reports whether addr currently hits in the enabled partitions,
// without updating any state. Used by tests and by store-commit handling.
func (c *AccountingCache) Probe(addr uint64) (Class, bool) {
	line := c.LineAddr(addr)
	base := c.setIndex(line) * c.geo.Ways
	for i := 0; i < c.geo.Ways; i++ {
		if c.tags[base+i] == line {
			switch {
			case i < c.waysA:
				return AHit, true
			case c.bEnabled:
				return BHit, true
			default:
				return Miss, false
			}
		}
	}
	return Miss, false
}

// Stats returns a copy of the interval statistics.
func (c *AccountingCache) Stats() Stats {
	s := c.stats
	s.PosHits = append([]uint64(nil), c.stats.PosHits...)
	return s
}

// ResetStats clears the interval statistics (the controller does this every
// 15K-instruction interval).
func (c *AccountingCache) ResetStats() {
	for i := range c.stats.PosHits {
		c.stats.PosHits[i] = 0
	}
	c.stats.DirMisses = 0
	c.stats.Accesses = 0
	// Writebacks is cumulative/informational and intentionally survives.
}

// CostParams describe one candidate configuration for the interval cost
// model (paper Section 3.1): latencies in cycles, the candidate clock
// period, and the modeled time to service a miss at the next level.
type CostParams struct {
	// ALat and BLat are the A access latency and the *additional* B access
	// latency, in cycles of the candidate configuration's clock.
	ALat, BLat int
	// Period is the candidate configuration's clock period.
	Period timing.FS
	// MissPenalty is the modeled time for a next-level access.
	MissPenalty timing.FS
}

// Cost computes the total access time the interval would have incurred
// under a candidate configuration with the given reconstructed counts.
// Every access pays the A latency and B hits pay the additional B latency.
// On a full miss the B probe proceeds in parallel with the next-level
// request (miss-under-probe), so misses pay only the A latency plus the
// miss penalty; the pipeline model in package core uses the same rule.
func Cost(aHits, bHits, misses uint64, bEnabled bool, p CostParams) timing.FS {
	_ = bEnabled // B probes on misses are overlapped with the next level
	accesses := aHits + bHits + misses
	cycles := accesses*uint64(p.ALat) + bHits*uint64(p.BLat)
	return timing.FS(cycles)*p.Period + timing.FS(misses)*p.MissPenalty
}
