package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gals/internal/timing"
)

func testGeo() Geometry {
	return Geometry{Name: "test", Sets: 16, Ways: 4, LineBytes: 64}
}

func TestGeometryValidation(t *testing.T) {
	bad := []Geometry{
		{Name: "sets0", Sets: 0, Ways: 4, LineBytes: 64},
		{Name: "ways", Sets: 16, Ways: 0, LineBytes: 64},
		{Name: "line", Sets: 16, Ways: 4, LineBytes: 48},
	}
	for _, g := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %+v did not panic", g)
				}
			}()
			New(g)
		}()
	}
	if got := (Geometry{Sets: 512, Ways: 8, LineBytes: 64}).SizeKB(); got != 256 {
		t.Errorf("SizeKB = %d, want 256", got)
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := New(testGeo()) // full A, no B
	if cls := c.Access(0x1000, false); cls != Miss {
		t.Fatalf("first access: %v, want miss", cls)
	}
	if cls := c.Access(0x1000, false); cls != AHit {
		t.Fatalf("second access: %v, want A-hit", cls)
	}
	// Same set, different tags fill the other ways (set stride = 16*64).
	for i := 1; i <= 3; i++ {
		if cls := c.Access(uint64(0x1000+i*16*64), false); cls != Miss {
			t.Fatalf("fill way %d: %v, want miss", i, cls)
		}
	}
	// All four ways hit now.
	for i := 0; i <= 3; i++ {
		if cls := c.Access(uint64(0x1000+i*16*64), false); cls != AHit {
			t.Fatalf("way %d after fill: %v, want A-hit", i, cls)
		}
	}
	// A fifth line evicts the LRU (0x1000, accessed longest ago).
	c.Access(0x1000+4*16*64, false)
	if cls := c.Access(0x1000, false); cls != Miss {
		t.Fatalf("evicted line: %v, want miss", cls)
	}
}

func TestAOnlyModeDisabledWays(t *testing.T) {
	c := New(testGeo())
	c.Configure(1, false) // direct-mapped A partition, no B
	c.Access(0x2000, false)
	if cls := c.Access(0x2000, false); cls != AHit {
		t.Fatalf("MRU line: %v, want A-hit", cls)
	}
	// A second line in the same set displaces the first from the A way.
	c.Access(0x2000+16*64, false)
	// The first line's tag is still tracked (MRU position 1) but its data
	// is not resident: timing class is a miss.
	if cls := c.Access(0x2000, false); cls != Miss {
		t.Fatalf("displaced line in A-only mode: %v, want miss", cls)
	}
	// Statistics recorded it at MRU position 1, so Reconstruct for a
	// 2-way A partition counts it as an A hit.
	st := c.Stats()
	aH, _, misses := st.Reconstruct(2, false)
	if aH != 1+1 { // the two true A hits above... recompute below
		// Position accounting: access2 hit pos0; access3 (new line) miss;
		// access4 hit pos1. Reconstruct(2): posHits[0]+posHits[1] = 2.
		t.Fatalf("reconstructed 2-way A hits = %d, want 2", aH)
	}
	if misses != 2 { // two directory misses (cold)
		t.Fatalf("reconstructed misses = %d, want 2", misses)
	}
}

func TestABModeSwap(t *testing.T) {
	c := New(testGeo())
	c.Configure(1, true) // 1-way A, 3-way B
	c.Access(0x3000, false)
	c.Access(0x3000+16*64, false) // displaces first into B
	if cls := c.Access(0x3000, false); cls != BHit {
		t.Fatalf("displaced line with B enabled: %v, want B-hit", cls)
	}
	// The B hit swapped it back to MRU: now an A hit.
	if cls := c.Access(0x3000, false); cls != AHit {
		t.Fatalf("after swap: %v, want A-hit", cls)
	}
}

func TestConfigureFullCacheDisablesB(t *testing.T) {
	c := New(testGeo())
	c.Configure(4, true)
	if c.BEnabled() {
		t.Error("B partition enabled with all ways in A")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Configure(0) did not panic")
			}
		}()
		c.Configure(0, false)
	}()
}

// TestReconstructionExactness is the Accounting Cache's core property
// (paper Section 3.1): MRU-position counters collected under ANY
// configuration reconstruct the exact A/B/miss counts that EVERY
// configuration would have produced, because MRU state evolution is
// configuration independent. We verify by running the same random access
// stream through caches in different configurations and comparing actual
// outcome counts against reconstruction from a differently-configured
// cache's statistics.
func TestReconstructionExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	addrs := make([]uint64, 20_000)
	for i := range addrs {
		// 64 distinct lines over 16 sets: plenty of conflict.
		addrs[i] = uint64(rng.Intn(64)) * 64
	}

	// Reference: collect statistics under the 1-way A/B configuration.
	ref := New(testGeo())
	ref.Configure(1, true)
	for _, a := range addrs {
		ref.Access(a, false)
	}
	stats := ref.Stats()

	for waysA := 1; waysA <= 4; waysA++ {
		for _, bEnabled := range []bool{false, true} {
			if waysA == 4 && bEnabled {
				continue
			}
			c := New(testGeo())
			c.Configure(waysA, bEnabled)
			var aH, bH, miss uint64
			for _, a := range addrs {
				switch c.Access(a, false) {
				case AHit:
					aH++
				case BHit:
					bH++
				default:
					miss++
				}
			}
			ra, rb, rm := stats.Reconstruct(waysA, bEnabled)
			if ra != aH || rb != bH || rm != miss {
				t.Errorf("waysA=%d B=%v: reconstructed %d/%d/%d, actual %d/%d/%d",
					waysA, bEnabled, ra, rb, rm, aH, bH, miss)
			}
		}
	}
}

func TestReconstructionMonotone(t *testing.T) {
	// More A ways can only convert B hits/misses into A hits.
	rng := rand.New(rand.NewSource(5))
	c := New(testGeo())
	c.Configure(2, true)
	for i := 0; i < 5000; i++ {
		c.Access(uint64(rng.Intn(96))*64, rng.Intn(4) == 0)
	}
	s := c.Stats()
	prevA := uint64(0)
	for ways := 1; ways <= 4; ways++ {
		aH, _, _ := s.Reconstruct(ways, true)
		if aH < prevA {
			t.Errorf("A hits decreased from %d to %d at %d ways", prevA, aH, ways)
		}
		prevA = aH
	}
	// Total is conserved across all reconstructions.
	for ways := 1; ways <= 4; ways++ {
		aH, bH, miss := s.Reconstruct(ways, true)
		if aH+bH+miss != s.Accesses {
			t.Errorf("ways=%d: %d+%d+%d != %d accesses", ways, aH, bH, miss, s.Accesses)
		}
	}
}

func TestResetStats(t *testing.T) {
	c := New(testGeo())
	c.Access(0, false)
	c.Access(0, false)
	c.ResetStats()
	s := c.Stats()
	if s.Accesses != 0 || s.DirMisses != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
	// Contents survive reset.
	if cls := c.Access(0, false); cls != AHit {
		t.Errorf("contents lost on stats reset: %v", cls)
	}
}

func TestWritebacks(t *testing.T) {
	c := New(Geometry{Name: "wb", Sets: 1, Ways: 2, LineBytes: 64})
	c.Access(0*64, true)  // dirty
	c.Access(1*64, false) // clean
	c.Access(2*64, false) // evicts line 0 (dirty): writeback
	if got := c.Stats().Writebacks; got != 1 {
		t.Errorf("writebacks = %d, want 1", got)
	}
	// Dirty bit follows the line through MRU moves.
	c2 := New(Geometry{Name: "wb2", Sets: 1, Ways: 2, LineBytes: 64})
	c2.Access(0*64, true)
	c2.Access(1*64, false)
	c2.Access(0*64, false) // move dirty line back to MRU
	c2.Access(2*64, false) // evicts line 1 (clean)
	if got := c2.Stats().Writebacks; got != 0 {
		t.Errorf("writebacks = %d, want 0 (clean victim)", got)
	}
}

func TestProbe(t *testing.T) {
	c := New(testGeo())
	c.Configure(1, false)
	c.Access(0x4000, false)
	if cls, ok := c.Probe(0x4000); !ok || cls != AHit {
		t.Errorf("Probe resident = %v,%v, want A-hit,true", cls, ok)
	}
	if _, ok := c.Probe(0x9999999); ok {
		t.Error("Probe of absent line reported a hit")
	}
	// Probe must not disturb MRU state or stats.
	before := c.Stats().Accesses
	c.Probe(0x4000)
	if c.Stats().Accesses != before {
		t.Error("Probe changed access statistics")
	}
}

func TestCostModel(t *testing.T) {
	p := CostParams{ALat: 2, BLat: 8, Period: 1000, MissPenalty: 50_000}
	// 10 A hits only: 10*2 cycles * 1000 fs.
	if got := Cost(10, 0, 0, true, p); got != 20_000 {
		t.Errorf("A-only cost = %d, want 20000", got)
	}
	// B hits add the B latency.
	if got := Cost(0, 5, 0, true, p); got != 5*(2+8)*1000 {
		t.Errorf("B cost = %d, want %d", got, 5*(2+8)*1000)
	}
	// Misses pay A latency plus the penalty (B probe overlapped).
	if got := Cost(0, 0, 3, true, p); got != 3*2*1000+3*50_000 {
		t.Errorf("miss cost = %d, want %d", got, 3*2*1000+3*50_000)
	}
}

func TestCostMonotoneInCounts(t *testing.T) {
	p := CostParams{ALat: 2, BLat: 5, Period: timing.PeriodFS(1300), MissPenalty: 80 * timing.FemtosPerNano}
	f := func(a, b, m uint32) bool {
		base := Cost(uint64(a), uint64(b), uint64(m), true, p)
		return Cost(uint64(a)+1, uint64(b), uint64(m), true, p) >= base &&
			Cost(uint64(a), uint64(b)+1, uint64(m), true, p) >= base &&
			Cost(uint64(a), uint64(b), uint64(m)+1, true, p) >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClassString(t *testing.T) {
	if AHit.String() != "A-hit" || BHit.String() != "B-hit" || Miss.String() != "miss" {
		t.Error("Class.String mismatch")
	}
}

func TestNonPowerOfTwoSets(t *testing.T) {
	// Sets-resized caches can have 3/4 of the full set count (e.g. 48KB
	// direct-mapped out of a 64KB array): modulo indexing must behave.
	c := New(Geometry{Name: "mod", Sets: 768, Ways: 1, LineBytes: 64})
	for i := 0; i < 3000; i++ {
		c.Access(uint64(i%1000)*64, false)
	}
	s := c.Stats()
	if s.Accesses != 3000 {
		t.Fatalf("accesses = %d", s.Accesses)
	}
	// Lines 0..767 hit after warmup; 768..999 conflict with 0..231.
	if hits := s.PosHits[0]; hits == 0 {
		t.Error("no hits in a 768-set cache over a 1000-line footprint")
	}
}
