// Package clock models the clocking system of the adaptive GALS processor:
// one independent clock per domain, dynamic frequency changes with a PLL
// lock-time penalty, per-edge jitter, and the Sjogren-Myers synchronization
// circuit on every cross-domain communication path (paper Section 2).
//
// Simulation time is a global integer femtosecond timeline (timing.FS).
// Each domain's clock is a piecewise-uniform edge train: a sequence of
// epochs, each with a constant period, plus a small deterministic jitter on
// every edge. Frequency changes append a new epoch; the PLL model decides
// when the new epoch takes effect.
package clock

import (
	"fmt"
	"math/rand"

	"gals/internal/timing"
)

// Domain identifies one of the processor's clock domains (paper Figure 1).
type Domain int

const (
	// FrontEnd covers the L1 I-cache, branch predictor, rename, ROB and
	// dispatch.
	FrontEnd Domain = iota
	// Integer covers the integer issue queue, register file and units.
	Integer
	// FloatingPoint covers the FP issue queue, register file and units.
	FloatingPoint
	// LoadStore covers the load/store queue, L1 D-cache and L2 cache.
	LoadStore
	// Memory is the fixed-frequency external main memory interface.
	Memory
	// NumDomains is the number of clock domains.
	NumDomains = int(Memory) + 1
)

var domainNames = [NumDomains]string{"front-end", "integer", "floating-point", "load/store", "memory"}

// String returns the domain's name.
func (d Domain) String() string {
	if int(d) < len(domainNames) {
		return domainNames[d]
	}
	return fmt.Sprintf("Domain(%d)", int(d))
}

// SyncThreshold is the fraction of the faster clock's period within which
// two edges are considered "too close", forcing an extra consumer cycle of
// synchronization delay (Sjogren & Myers, as modeled by the MCD simulator).
const SyncThreshold = 0.3

// neverFast is a fastStart sentinel beyond any simulated time: assigning
// it disables the jitter-free inline fast paths (used when jitter is on).
const neverFast = timing.FS(1) << 62

// epoch is a run of uniform clock periods starting at a known edge.
type epoch struct {
	start  timing.FS // time of edge 0 of this epoch
	period timing.FS
	base   uint64 // global edge index of edge 0 (for jitter hashing)
}

// Clock is a single domain's clock. The zero value is not usable; use New.
type Clock struct {
	domain Domain
	epochs []epoch
	// finalStart/finalPeriod/finalBase cache the final epoch (the one
	// governing all future edges) so the hot query paths never rescan the
	// epoch slice: every call at or after the last reconfiguration — the
	// overwhelmingly common case — is answered from these scalars.
	// fastStart equals finalStart when jitter is disabled and neverFast
	// otherwise, folding the jitter test and the epoch test into one
	// comparison so the fast paths stay within the inlining budget.
	fastStart   timing.FS
	finalStart  timing.FS
	finalPeriod timing.FS
	finalBase   uint64
	// finalInv is 1/finalPeriod: the fast paths turn their period modulo
	// into a float multiply plus an exact integer correction (finalRem),
	// several times cheaper than a 64-bit divide on current hardware.
	finalInv float64
	// jitterFrac is the peak-to-peak jitter as a fraction of the period
	// (0 disables jitter).
	jitterFrac float64
	seed       uint64
	// gen counts accepted reconfigurations; SyncPath uses it to detect
	// that its cached per-pair threshold went stale.
	gen uint64
}

// New creates a clock for domain d with the given initial period. seed
// makes the jitter deterministic per run; jitterFrac is the peak jitter as
// a fraction of the period (e.g. 0.01 for 1%).
func New(d Domain, period timing.FS, seed uint64, jitterFrac float64) *Clock {
	if period <= 0 {
		panic(fmt.Sprintf("clock: non-positive period %d", period))
	}
	if jitterFrac < 0 || jitterFrac > 0.05 {
		panic(fmt.Sprintf("clock: jitter fraction %v out of range [0, 0.05]", jitterFrac))
	}
	c := &Clock{
		domain:      d,
		epochs:      []epoch{{start: 0, period: period, base: 0}},
		finalStart:  0,
		finalPeriod: period,
		finalBase:   0,
		jitterFrac:  jitterFrac,
		seed:        seed ^ (uint64(d) * 0x9e3779b97f4a7c15),
	}
	if jitterFrac != 0 {
		c.fastStart = neverFast
	}
	c.finalInv = 1 / float64(period)
	return c
}

// finalRem returns d mod finalPeriod (for d >= 0) via the precomputed
// reciprocal. The float quotient can be off by a few ulps, so the result is
// corrected back into [0, period) with cheap, well-predicted loops.
func (c *Clock) finalRem(d timing.FS) timing.FS {
	q := timing.FS(float64(d) * c.finalInv)
	r := d - q*c.finalPeriod
	for r < 0 {
		r += c.finalPeriod
	}
	for r >= c.finalPeriod {
		r -= c.finalPeriod
	}
	return r
}

// Domain returns the domain this clock drives.
func (c *Clock) Domain() Domain { return c.domain }

// Period returns the clock period in effect at time t.
func (c *Clock) Period(t timing.FS) timing.FS {
	if t >= c.finalStart {
		return c.finalPeriod
	}
	return c.epochAt(t).period
}

// CurrentPeriod returns the period of the most recent epoch (the one that
// governs all future edges).
func (c *Clock) CurrentPeriod() timing.FS { return c.finalPeriod }

// epochAt returns the epoch governing time t.
func (c *Clock) epochAt(t timing.FS) epoch {
	if t >= c.finalStart {
		return epoch{start: c.finalStart, period: c.finalPeriod, base: c.finalBase}
	}
	// Historical epochs are few (one per reconfiguration); scan from the
	// back. Index len-1 is the final epoch, already excluded above.
	for i := len(c.epochs) - 2; i > 0; i-- {
		if c.epochs[i].start <= t {
			return c.epochs[i]
		}
	}
	return c.epochs[0]
}

// jitter returns the deterministic jitter offset of global edge index n.
func (c *Clock) jitter(n uint64, period timing.FS) timing.FS {
	if c.jitterFrac == 0 {
		return 0
	}
	// splitmix64 hash of (seed, n): cheap, stateless, deterministic.
	z := c.seed + n*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	// Map to [-jitterFrac/2, +jitterFrac/2] of the period.
	frac := (float64(z>>11)/float64(1<<53) - 0.5) * c.jitterFrac
	return timing.FS(frac * float64(period))
}

// edgeTime returns the time of local edge n of epoch e.
func (c *Clock) edgeTime(e epoch, n uint64) timing.FS {
	t := e.start + timing.FS(n)*e.period
	return t + c.jitter(e.base+n, e.period)
}

// EdgeAtOrAfter returns the time of the first clock edge at or after t.
// With jitter disabled (the default) this is pure integer arithmetic: no
// hash, no probe loop, and — in the common case of t at or after the last
// reconfiguration — no epoch scan either. The common case is kept small
// enough to inline into the pipeline's hot loops.
func (c *Clock) EdgeAtOrAfter(t timing.FS) timing.FS {
	if t >= c.fastStart {
		if r := c.finalRem(t - c.fastStart); r != 0 {
			return t + c.finalPeriod - r
		}
		return t
	}
	return c.edgeAtOrAfterRare(t)
}

// edgeAtOrAfterRare handles jittered clocks and jitter-free queries into
// historical epochs (between a reconfiguration decision and its PLL lock).
func (c *Clock) edgeAtOrAfterRare(t timing.FS) timing.FS {
	if c.jitterFrac != 0 {
		return c.edgeAtOrAfterSlow(t)
	}
	e := c.epochAt(t)
	if t <= e.start {
		return e.start
	}
	if r := (t - e.start) % e.period; r != 0 {
		return t + e.period - r
	}
	return t
}

// edgeAtOrAfterSlow is the jittered path: locate the governing epoch, then
// probe around the nominal edge index for the first jittered edge >= t.
func (c *Clock) edgeAtOrAfterSlow(t timing.FS) timing.FS {
	e := c.epochAt(t)
	if t <= e.start {
		return c.edgeTime(e, 0)
	}
	n := uint64((t - e.start) / e.period)
	// Jitter can move edges slightly in either direction; probe around the
	// nominal index for the first edge >= t.
	if n > 0 {
		n--
	}
	for {
		if et := c.edgeTime(e, n); et >= t {
			return et
		}
		n++
	}
}

// NextEdge returns the time of the first clock edge strictly after t.
func (c *Clock) NextEdge(t timing.FS) timing.FS {
	if t >= c.fastStart {
		return t + c.finalPeriod - c.finalRem(t-c.fastStart)
	}
	return c.edgeAtOrAfterRare(t + 1)
}

// After returns the time of the edge n cycles after the first edge at or
// after t. After(t, 0) == EdgeAtOrAfter(t). It is the primary primitive for
// charging an n-cycle latency that begins at time t. Negative n panics.
func (c *Clock) After(t timing.FS, n int) timing.FS {
	if t >= c.fastStart && n >= 0 {
		r := c.finalRem(t - c.fastStart)
		if r != 0 {
			r = c.finalPeriod - r
		}
		return t + r + timing.FS(n)*c.finalPeriod
	}
	return c.afterRare(t, n)
}

// afterRare handles negative n (panics), jittered clocks, and jitter-free
// starts inside historical epochs.
func (c *Clock) afterRare(t timing.FS, n int) timing.FS {
	if n < 0 {
		panic("clock: negative cycle count")
	}
	if c.jitterFrac != 0 {
		return c.afterSlow(t, n)
	}
	return c.afterHistorical(t, n)
}

// afterHistorical charges n jitter-free cycles starting inside a historical
// epoch (between a reconfiguration decision and its PLL lock completion),
// walking epoch boundaries analytically. Each epoch's start lies on its
// predecessor's edge grid (SetPeriodAt places it with EdgeAtOrAfter), so
// the per-epoch cycle count is an exact division.
func (c *Clock) afterHistorical(t timing.FS, n int) timing.FS {
	i := c.epochIndexAt(t)
	e := c.epochs[i]
	tt := e.start
	if t > e.start {
		tt = t
		if r := (t - e.start) % e.period; r != 0 {
			tt += e.period - r
		}
	}
	for n > 0 && i < len(c.epochs)-1 {
		next := c.epochs[i+1].start
		k := int((next - tt) / c.epochs[i].period)
		if n <= k {
			return tt + timing.FS(n)*c.epochs[i].period
		}
		n -= k
		tt = next
		i++
	}
	return tt + timing.FS(n)*c.epochs[i].period
}

// epochIndexAt returns the index of the epoch governing time t.
func (c *Clock) epochIndexAt(t timing.FS) int {
	for i := len(c.epochs) - 1; i > 0; i-- {
		if c.epochs[i].start <= t {
			return i
		}
	}
	return 0
}

// afterSlow is the jittered path of After.
func (c *Clock) afterSlow(t timing.FS, n int) timing.FS {
	tt := c.EdgeAtOrAfter(t)
	for n > 0 {
		if tt >= c.finalStart {
			// Entirely inside the final epoch: jump analytically. The
			// index of tt within the epoch is recovered by rounding
			// (jitter is a small fraction of the period).
			k := uint64((tt - c.finalStart + c.finalPeriod/2) / c.finalPeriod)
			e := epoch{start: c.finalStart, period: c.finalPeriod, base: c.finalBase}
			return c.edgeTime(e, k+uint64(n))
		}
		// Near a historical epoch boundary (rare: only right around a
		// reconfiguration): step edge by edge.
		tt = c.NextEdge(tt)
		n--
	}
	return tt
}

// SetPeriodAt schedules a new period that takes effect at the first edge at
// or after time t. Calls must be monotonically increasing in t; attempting
// to change history panics.
func (c *Clock) SetPeriodAt(t timing.FS, period timing.FS) {
	if period <= 0 {
		panic(fmt.Sprintf("clock: non-positive period %d", period))
	}
	last := c.epochs[len(c.epochs)-1]
	start := c.EdgeAtOrAfter(t)
	if start < last.start {
		panic(fmt.Sprintf("clock: period change at %d precedes epoch start %d", start, last.start))
	}
	if period == last.period {
		return
	}
	elapsed := uint64(0)
	if start > last.start {
		elapsed = uint64((start - last.start + last.period - 1) / last.period)
	}
	c.epochs = append(c.epochs, epoch{start: start, period: period, base: last.base + elapsed})
	c.finalStart = start
	c.finalPeriod = period
	c.finalBase = last.base + elapsed
	c.finalInv = 1 / float64(period)
	c.gen++
	if c.jitterFrac == 0 {
		c.fastStart = start
	}
}

// Align returns the first consumer edge at which a value produced at tp in
// the producer domain can be consumed, without a metastability penalty.
// This models queue-mediated domain crossings (dispatch into the issue
// queues, load/store queue insertion, ROB completion): the inter-domain
// FIFOs of the MCD design hide the synchronizer there, so only clock-edge
// alignment is paid (Semeraro et al., "Hiding Synchronization Delays in a
// GALS Processor Microarchitecture"). Same-domain transfers are free.
func Align(producer, consumer *Clock, tp timing.FS) timing.FS {
	if producer == consumer {
		return tp
	}
	return consumer.EdgeAtOrAfter(tp)
}

// Sync models the inter-domain synchronization circuit on direct (bypass)
// paths: a value produced in the producer domain at time tp becomes usable
// in the consumer domain at the returned time. If the consumer's sampling
// edge falls within SyncThreshold of the faster clock's period after tp, an
// extra consumer cycle is charged (paper Section 2). Same-domain transfers
// are free.
func Sync(producer, consumer *Clock, tp timing.FS) timing.FS {
	if producer == consumer {
		return tp
	}
	tc := consumer.EdgeAtOrAfter(tp)
	fast := producer.Period(tp)
	if cp := consumer.Period(tp); cp < fast {
		fast = cp
	}
	if float64(tc-tp) < SyncThreshold*float64(fast) {
		tc = consumer.NextEdge(tc)
	}
	return tc
}

// SyncPath is a memoized Sync for one fixed (producer, consumer) pair. The
// threshold comparison needs both clocks' periods at the transfer time; a
// plain Sync looks both up on every call, but between reconfigurations the
// answer never changes — and cross-domain transfers are hot enough
// (several per simulated instruction) that the paper's sweeps pay for it
// millions of times. The path caches SyncThreshold * min(period) and
// revalidates with one generation comparison per call, falling back to the
// exact Sync for queries into historical epochs (between a reconfiguration
// decision and its PLL lock).
//
// A SyncPath is NOT safe for concurrent use; give each simulation its own
// (machines already own their clocks).
type SyncPath struct {
	producer, consumer *Clock
	// gen is the sum of both clocks' reconfiguration counts at the last
	// refresh; both only ever increment, so any change invalidates.
	gen uint64
	// validFrom is the earliest time the cached threshold applies to
	// (the later of the two final-epoch starts).
	validFrom timing.FS
	// threshold is SyncThreshold * min(final periods), in femtoseconds.
	threshold float64
}

// NewSyncPath creates the memoized path from producer to consumer.
// Same-clock paths are the identity, as with Sync.
func NewSyncPath(producer, consumer *Clock) *SyncPath {
	p := &SyncPath{producer: producer, consumer: consumer}
	if producer != consumer {
		p.refresh()
	}
	return p
}

func (p *SyncPath) refresh() {
	p.gen = p.producer.gen + p.consumer.gen
	p.validFrom = p.producer.finalStart
	if p.consumer.finalStart > p.validFrom {
		p.validFrom = p.consumer.finalStart
	}
	fast := p.producer.finalPeriod
	if cp := p.consumer.finalPeriod; cp < fast {
		fast = cp
	}
	p.threshold = SyncThreshold * float64(fast)
}

// Sync is equivalent to Sync(producer, consumer, tp) with the period
// lookups amortized across calls between reconfigurations.
func (p *SyncPath) Sync(tp timing.FS) timing.FS {
	if p.producer == p.consumer {
		return tp
	}
	if p.producer.gen+p.consumer.gen != p.gen {
		p.refresh()
	}
	if tp < p.validFrom {
		// Transfer inside a historical epoch: rare (only in the window
		// between a reconfiguration decision and its lock), so take the
		// exact per-call path.
		return Sync(p.producer, p.consumer, tp)
	}
	tc := p.consumer.EdgeAtOrAfter(tp)
	if float64(tc-tp) < p.threshold {
		tc = p.consumer.NextEdge(tc)
	}
	return tc
}

// PLL models the per-domain frequency synthesizer. Lock times are normally
// distributed with mean 15us, clipped to [10us, 20us] (paper Section 2),
// drawn from a deterministic per-run source.
type PLL struct {
	rng *rand.Rand
}

// PLL lock-time distribution parameters.
const (
	// PLLLockMean is the mean PLL lock time.
	PLLLockMean = 15 * timing.FemtosPerMicro
	// PLLLockMin and PLLLockMax clip the distribution's range.
	PLLLockMin = 10 * timing.FemtosPerMicro
	// PLLLockMax is the maximum lock time.
	PLLLockMax = 20 * timing.FemtosPerMicro
	// pllLockStdDev makes ~99.7% of the mass fall inside the clip range.
	pllLockStdDev = float64(PLLLockMax-PLLLockMean) / 3
)

// NewPLL creates a PLL lock-time source with a deterministic seed.
func NewPLL(seed int64) *PLL {
	return &PLL{rng: rand.New(rand.NewSource(seed))}
}

// LockTime draws one lock duration.
func (p *PLL) LockTime() timing.FS {
	d := timing.FS(p.rng.NormFloat64()*pllLockStdDev) + PLLLockMean
	if d < PLLLockMin {
		d = PLLLockMin
	}
	if d > PLLLockMax {
		d = PLLLockMax
	}
	return d
}
