package clock

import (
	"testing"
	"testing/quick"

	"gals/internal/timing"
)

func TestEdgeBasics(t *testing.T) {
	c := New(Integer, 1000, 1, 0) // 1ps period for easy arithmetic
	if got := c.EdgeAtOrAfter(0); got != 0 {
		t.Errorf("EdgeAtOrAfter(0) = %d, want 0", got)
	}
	if got := c.EdgeAtOrAfter(1); got != 1000 {
		t.Errorf("EdgeAtOrAfter(1) = %d, want 1000", got)
	}
	if got := c.EdgeAtOrAfter(1000); got != 1000 {
		t.Errorf("EdgeAtOrAfter(1000) = %d, want 1000", got)
	}
	if got := c.NextEdge(1000); got != 2000 {
		t.Errorf("NextEdge(1000) = %d, want 2000", got)
	}
	if got := c.After(0, 5); got != 5000 {
		t.Errorf("After(0,5) = %d, want 5000", got)
	}
	if got := c.After(999, 2); got != 3000 {
		t.Errorf("After(999,2) = %d, want 3000 (first edge 1000, +2 cycles)", got)
	}
}

func TestEdgeAtOrAfterProperty(t *testing.T) {
	c := New(FrontEnd, timing.PeriodFS(1770), 7, 0)
	f := func(raw uint32) bool {
		tt := timing.FS(raw)
		e := c.EdgeAtOrAfter(tt)
		return e >= tt && c.EdgeAtOrAfter(e) == e && c.NextEdge(e) > e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	const period = 1_000_000
	a := New(Integer, period, 42, 0.01)
	b := New(Integer, period, 42, 0.01)
	prev := timing.FS(-1)
	tt := timing.FS(0)
	for i := 0; i < 1000; i++ {
		ea, eb := a.NextEdge(tt), b.NextEdge(tt)
		if ea != eb {
			t.Fatalf("same-seed clocks disagree: %d vs %d", ea, eb)
		}
		// Jitter must stay within 1% of the nominal grid.
		nominal := (ea + period/2) / period * period
		if d := ea - nominal; d > period/100 || d < -period/100 {
			t.Fatalf("edge %d deviates %d fs from nominal (limit %d)", ea, d, period/100)
		}
		if ea <= prev {
			t.Fatalf("edges not strictly monotone: %d after %d", ea, prev)
		}
		prev, tt = ea, ea
	}
}

func TestSetPeriodAt(t *testing.T) {
	c := New(LoadStore, 1000, 3, 0)
	c.SetPeriodAt(10_500, 2000)
	// Before the change: old grid.
	if got := c.EdgeAtOrAfter(5000); got != 5000 {
		t.Errorf("pre-change edge = %d, want 5000", got)
	}
	// The new epoch starts at the first old edge >= 10500, i.e. 11000.
	if got := c.EdgeAtOrAfter(11_000); got != 11_000 {
		t.Errorf("boundary edge = %d, want 11000", got)
	}
	if got := c.NextEdge(11_000); got != 13_000 {
		t.Errorf("post-change edge = %d, want 13000", got)
	}
	if got := c.CurrentPeriod(); got != 2000 {
		t.Errorf("CurrentPeriod = %d, want 2000", got)
	}
	if got := c.Period(5000); got != 1000 {
		t.Errorf("Period(5000) = %d, want 1000", got)
	}
	// After spans the boundary correctly: edge at 10000, then 11000, 13000.
	if got := c.After(10_000, 2); got != 13_000 {
		t.Errorf("After(10000,2) = %d, want 13000", got)
	}
}

func TestSetPeriodNoOpOnSame(t *testing.T) {
	c := New(Integer, 1000, 0, 0)
	c.SetPeriodAt(5000, 1000)
	if got := c.NextEdge(5000); got != 6000 {
		t.Errorf("NextEdge after no-op change = %d, want 6000", got)
	}
}

func TestSyncSameDomainFree(t *testing.T) {
	c := New(Integer, 1000, 0, 0)
	if got := Sync(c, c, 12345); got != 12345 {
		t.Errorf("same-domain Sync = %d, want 12345", got)
	}
	if got := Align(c, c, 12345); got != 12345 {
		t.Errorf("same-domain Align = %d, want 12345", got)
	}
}

func TestSyncThresholdExtraCycle(t *testing.T) {
	prod := New(Integer, 1000, 0, 0)
	cons := New(LoadStore, 1000, 0, 0)
	// Producer edge at 10000 coincides with a consumer edge: distance 0 is
	// within 30% of the period, so the consumer pays one extra cycle.
	if got := Sync(prod, cons, 10_000); got != 11_000 {
		t.Errorf("coincident-edge Sync = %d, want 11000 (extra cycle)", got)
	}
	// 10500 is 500fs (50%) before the next consumer edge: safe, no extra.
	if got := Sync(prod, cons, 10_500); got != 11_000 {
		t.Errorf("mid-period Sync = %d, want 11000", got)
	}
	// 10800 is 200fs (20%) before the next edge: within threshold.
	if got := Sync(prod, cons, 10_800); got != 12_000 {
		t.Errorf("near-edge Sync = %d, want 12000 (extra cycle)", got)
	}
	// Align never pays the metastability cycle.
	if got := Align(prod, cons, 10_800); got != 11_000 {
		t.Errorf("near-edge Align = %d, want 11000", got)
	}
}

func TestSyncNeverEarly(t *testing.T) {
	prod := New(Integer, timing.PeriodFS(1449), 1, 0)
	cons := New(LoadStore, timing.PeriodFS(1790), 2, 0)
	f := func(raw uint32) bool {
		tp := timing.FS(raw)
		tc := Sync(prod, cons, tp)
		// Result is a consumer edge at or after tp, at most 2 cycles out.
		return tc >= tp && tc <= cons.EdgeAtOrAfter(tp)+cons.CurrentPeriod()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPLLLockDistribution(t *testing.T) {
	p := NewPLL(7)
	var sum timing.FS
	n := 2000
	for i := 0; i < n; i++ {
		d := p.LockTime()
		if d < PLLLockMin || d > PLLLockMax {
			t.Fatalf("lock time %d outside [%d, %d]", d, PLLLockMin, PLLLockMax)
		}
		sum += d
	}
	mean := float64(sum) / float64(n)
	if mean < 0.9*float64(PLLLockMean) || mean > 1.1*float64(PLLLockMean) {
		t.Errorf("mean lock %.0f fs, want ~%d", mean, PLLLockMean)
	}
	// Determinism.
	a, b := NewPLL(99), NewPLL(99)
	for i := 0; i < 10; i++ {
		if a.LockTime() != b.LockTime() {
			t.Fatal("same-seed PLLs disagree")
		}
	}
}

// multiEpoch builds a jitter-free clock with several reconfigurations, so
// queries exercise both the cached-final-epoch fast path and the historical
// scan.
func multiEpoch(jitterFrac float64) *Clock {
	c := New(LoadStore, timing.PeriodFS(1790), 11, jitterFrac)
	c.SetPeriodAt(40_000_000, timing.PeriodFS(1024))
	c.SetPeriodAt(90_000_000, timing.PeriodFS(1560))
	c.SetPeriodAt(200_000_000, timing.PeriodFS(890))
	return c
}

// TestFastSlowPathEquivalence proves the jitter-free integer fast paths of
// EdgeAtOrAfter/NextEdge/After agree with the generic probe-loop slow path
// on every query, across epochs.
func TestFastSlowPathEquivalence(t *testing.T) {
	c := multiEpoch(0)
	check := func(tt timing.FS, n int) bool {
		if c.EdgeAtOrAfter(tt) != c.edgeAtOrAfterSlow(tt) {
			t.Logf("EdgeAtOrAfter(%d): fast %d, slow %d", tt, c.EdgeAtOrAfter(tt), c.edgeAtOrAfterSlow(tt))
			return false
		}
		if c.NextEdge(tt) != c.edgeAtOrAfterSlow(tt+1) {
			return false
		}
		if c.After(tt, n) != c.afterSlow(tt, n) {
			t.Logf("After(%d, %d): fast %d, slow %d", tt, n, c.After(tt, n), c.afterSlow(tt, n))
			return false
		}
		return true
	}
	f := func(raw uint32, cycles uint16) bool {
		n := int(cycles % 600) // enough cycles to cross several epochs
		// Concentrate on the historical epochs and their boundaries
		// (0..250M fs) and also sample deep into the final epoch.
		return check(timing.FS(raw%250_000_000), n) && check(timing.FS(raw)*3, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Pin down the boundaries themselves.
	for _, b := range []timing.FS{0, 39_999_999, 40_000_000, 40_000_001, 89_999_999, 90_000_000, 200_000_000, 200_000_001} {
		for _, n := range []int{0, 1, 2, 1000, 1_000_000} {
			if !check(b, n) {
				t.Fatalf("fast/slow divergence at boundary t=%d n=%d", b, n)
			}
		}
	}
}

// TestVanishingJitterEquivalence drives the jittered path with a jitter
// fraction small enough that every offset truncates to zero femtoseconds:
// the jittered edges must coincide with the jitter-free fast path's
// (fast path vs. jittered path at jitterFrac -> 0).
func TestVanishingJitterEquivalence(t *testing.T) {
	fast := multiEpoch(0)
	slow := multiEpoch(1e-12) // jitter < 1 fs at any modeled period
	f := func(raw uint32, cycles uint8) bool {
		n := int(cycles % 40)
		for _, tt := range []timing.FS{timing.FS(raw % 250_000_000), timing.FS(raw) * 3} {
			if fast.EdgeAtOrAfter(tt) != slow.EdgeAtOrAfter(tt) ||
				fast.NextEdge(tt) != slow.NextEdge(tt) ||
				fast.After(tt, n) != slow.After(tt, n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFinalEpochCacheCoherent checks the cached final epoch tracks
// SetPeriodAt and never diverges from the epoch slice.
func TestFinalEpochCacheCoherent(t *testing.T) {
	c := multiEpoch(0)
	last := c.epochs[len(c.epochs)-1]
	if c.finalStart != last.start || c.finalPeriod != last.period || c.finalBase != last.base {
		t.Fatalf("final-epoch cache (%d,%d,%d) != last epoch (%d,%d,%d)",
			c.finalStart, c.finalPeriod, c.finalBase, last.start, last.period, last.base)
	}
	if got := c.CurrentPeriod(); got != last.period {
		t.Errorf("CurrentPeriod = %d, want %d", got, last.period)
	}
	// A no-op period change must not disturb the cache.
	c.SetPeriodAt(300_000_000, last.period)
	if c.finalPeriod != last.period || c.finalStart != last.start {
		t.Error("no-op SetPeriodAt disturbed the final-epoch cache")
	}
}

func TestDomainString(t *testing.T) {
	names := map[Domain]string{
		FrontEnd: "front-end", Integer: "integer", FloatingPoint: "floating-point",
		LoadStore: "load/store", Memory: "memory",
	}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("Domain(%d).String() = %q, want %q", d, d.String(), want)
		}
	}
}

func TestNewClockValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { New(Integer, 0, 0, 0) },
		func() { New(Integer, 1000, 0, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}
