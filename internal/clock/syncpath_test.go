package clock

import (
	"testing"

	"gals/internal/timing"
)

// TestSyncPathMatchesSync: the memoized per-pair path must agree with the
// stateless Sync at every time, across reconfigurations of either clock,
// with and without jitter — including queries into historical epochs.
func TestSyncPathMatchesSync(t *testing.T) {
	for _, jitter := range []float64{0, 0.01} {
		prod := New(Integer, 700_000, 7, jitter)
		cons := New(FrontEnd, 1_100_000, 7, jitter)
		fwd := NewSyncPath(prod, cons)
		rev := NewSyncPath(cons, prod)

		check := func(tp timing.FS) {
			t.Helper()
			if got, want := fwd.Sync(tp), Sync(prod, cons, tp); got != want {
				t.Fatalf("jitter=%v fwd.Sync(%d) = %d, want %d", jitter, tp, got, want)
			}
			if got, want := rev.Sync(tp), Sync(cons, prod, tp); got != want {
				t.Fatalf("jitter=%v rev.Sync(%d) = %d, want %d", jitter, tp, got, want)
			}
		}

		// Dense probe over the initial epochs.
		for tp := timing.FS(0); tp < 40_000_000; tp += 13_337 {
			check(tp)
		}

		// Reconfigure the producer, then the consumer, re-probing around
		// each boundary (historical-epoch queries included: SetPeriodAt at
		// 50ms leaves every earlier time in a historical epoch).
		prod.SetPeriodAt(50_000_000, 900_000)
		for tp := timing.FS(49_000_000); tp < 60_000_000; tp += 7_919 {
			check(tp)
		}
		cons.SetPeriodAt(70_000_000, 600_000)
		for tp := timing.FS(69_000_000); tp < 90_000_000; tp += 7_919 {
			check(tp)
		}
		// Queries far behind both final epochs still agree.
		for tp := timing.FS(0); tp < 2_000_000; tp += 111_111 {
			check(tp)
		}
	}
}

// TestSyncPathSameClockIdentity: same-domain paths are free, as with Sync.
func TestSyncPathSameClockIdentity(t *testing.T) {
	c := New(FrontEnd, 1_000_000, 1, 0)
	p := NewSyncPath(c, c)
	for _, tp := range []timing.FS{0, 1, 999_999, 1_000_000, 123_456_789} {
		if got := p.Sync(tp); got != tp {
			t.Fatalf("same-clock Sync(%d) = %d, want identity", tp, got)
		}
	}
}

// TestSyncPathThresholdRefresh: after a reconfiguration changes which clock
// is faster, the cached threshold must be recomputed, not reused.
func TestSyncPathThresholdRefresh(t *testing.T) {
	prod := New(Integer, 500_000, 3, 0)
	cons := New(FrontEnd, 2_000_000, 3, 0)
	p := NewSyncPath(prod, cons)
	p.Sync(1_000_000) // populate the cache with min-period 500_000

	// Slow the producer far past the consumer: min period becomes the
	// consumer's, and the threshold grows accordingly.
	prod.SetPeriodAt(10_000_000, 8_000_000)
	probe := prod.EdgeAtOrAfter(20_000_000)
	if got, want := p.Sync(probe), Sync(prod, cons, probe); got != want {
		t.Fatalf("after refresh Sync(%d) = %d, want %d", probe, got, want)
	}
	if want := SyncThreshold * float64(2_000_000); p.threshold != want {
		t.Fatalf("threshold = %v, want %v", p.threshold, want)
	}
}
