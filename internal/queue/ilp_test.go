package queue

import (
	"testing"

	"gals/internal/isa"
	"gals/internal/timing"
)

// serialInst builds a chain: each instruction consumes the previous dest.
func serialInst(i int) isa.Inst {
	return isa.Inst{
		Class: isa.IntALU,
		Dest:  isa.IntReg(1 + i%2),
		Src1:  isa.IntReg(1 + (i+1)%2),
	}
}

// parallelInst builds independent instructions across many registers.
func parallelInst(i int) isa.Inst {
	return isa.Inst{
		Class: isa.IntALU,
		Dest:  isa.IntReg(1 + i%24),
		Src1:  isa.IntReg(0), // r0, never written: timestamp stays 0
	}
}

func runTracker(t *testing.T, gen func(i int) isa.Inst) [4]Sample {
	t.Helper()
	tr := NewTracker()
	for i := 0; i < 10_000; i++ {
		in := gen(i)
		if tr.Observe(&in) {
			return tr.Samples()
		}
	}
	t.Fatal("tracking interval never completed")
	return [4]Sample{}
}

func TestSerialChainMeasuresLowILP(t *testing.T) {
	samples := runTracker(t, serialInst)
	for i, s := range samples {
		if s.N != []int{16, 32, 48, 64}[i] {
			t.Fatalf("sample %d has N=%d", i, s.N)
		}
		// A pure chain: M == number of instructions seen.
		if s.M < s.N-1 {
			t.Errorf("serial chain M=%d for N=%d, want ~N", s.M, s.N)
		}
	}
	if got := Choose(samples, false); got != timing.IQ16 {
		t.Errorf("serial code chose IQ%d, want 16 (frequency wins)", got)
	}
}

func TestParallelStreamMeasuresHighILP(t *testing.T) {
	samples := runTracker(t, parallelInst)
	// Fully independent: every timestamp is 1.
	for _, s := range samples {
		if s.M != 1 {
			t.Errorf("parallel stream M=%d for N=%d, want 1", s.M, s.N)
		}
	}
	// ILP estimate scales with N: the largest queue wins despite its
	// lower frequency.
	if got := Choose(samples, false); got != timing.IQ64 {
		t.Errorf("parallel code chose IQ%d, want 64", got)
	}
}

func TestSamplesMonotone(t *testing.T) {
	samples := runTracker(t, func(i int) isa.Inst {
		if i%3 == 0 {
			return serialInst(i)
		}
		return parallelInst(i)
	})
	for i := 1; i < len(samples); i++ {
		if samples[i].M < samples[i-1].M {
			t.Errorf("M not monotone: M[%d]=%d < M[%d]=%d", i, samples[i].M, i-1, samples[i-1].M)
		}
		if samples[i].IntCount < samples[i-1].IntCount {
			t.Error("IntCount not monotone")
		}
	}
}

func TestMinorityTypeStifled(t *testing.T) {
	// 10% FP: the FP queue can never fill beyond ~7 entries when the
	// integer side closes the interval, so larger FP sizes are stifled.
	samples := runTracker(t, func(i int) isa.Inst {
		if i%10 == 0 {
			return isa.Inst{Class: isa.FPAdd, Dest: isa.FPReg(1 + i%20), Src1: isa.FPReg(0)}
		}
		return parallelInst(i)
	})
	if got := Choose(samples, true); got != timing.IQ16 {
		t.Errorf("minority FP chose IQ%d, want 16 (stifled)", got)
	}
	// The integer side is parallel and majority: free to upsize.
	if got := Choose(samples, false); got != timing.IQ64 {
		t.Errorf("majority int chose IQ%d, want 64", got)
	}
}

func TestIntervalEndsOnEitherCount(t *testing.T) {
	// Pure FP stream: the FP counter must close the interval.
	tr := NewTracker()
	n := 0
	for i := 0; i < 1000; i++ {
		in := isa.Inst{Class: isa.FPMult, Dest: isa.FPReg(1 + i%20), Src1: isa.FPReg(0)}
		n++
		if tr.Observe(&in) {
			break
		}
	}
	if n != 64 {
		t.Errorf("interval closed after %d FP instructions, want 64", n)
	}
}

func TestTrackerReset(t *testing.T) {
	tr := NewTracker()
	in := serialInst(0)
	for i := 0; i < 100; i++ {
		in = serialInst(i)
		tr.Observe(&in)
	}
	tr.Reset()
	in = parallelInst(0)
	if tr.Observe(&in) {
		t.Fatal("interval completed after a single instruction")
	}
	if tr.curMax != 1 {
		t.Errorf("timestamps not cleared by Reset: max=%d", tr.curMax)
	}
}

func TestTimestampSaturation(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 500; i++ {
		in := serialInst(i)
		if tr.Observe(&in) {
			tr.Reset()
		}
	}
	// Never panics, and M stays within the saturating range.
	for _, s := range tr.samples {
		if s.M > maxTimestamp {
			t.Errorf("M=%d exceeds saturation %d", s.M, maxTimestamp)
		}
	}
}

func TestControllerHysteresis(t *testing.T) {
	// Craft samples that favor IQ64 for a parallel stream.
	up := runTracker(t, parallelInst)
	down := runTracker(t, serialInst)

	c := NewController(false, timing.IQ16, 2)
	if _, resize := c.Decide(up); resize {
		t.Fatal("resized after one interval despite hysteresis 2")
	}
	size, resize := c.Decide(up)
	if !resize || size != timing.IQ64 {
		t.Fatalf("second agreeing interval: resize=%v size=%d, want true/64", resize, size)
	}
	// A disagreeing interval resets the streak.
	if _, resize := c.Decide(down); resize {
		t.Fatal("single down interval resized immediately")
	}
	if _, resize := c.Decide(up); resize {
		t.Fatal("streak not reset by disagreement")
	}
	if c.Current() != timing.IQ64 {
		t.Errorf("current = %d, want 64", c.Current())
	}
}

func TestEffectiveILPZeroM(t *testing.T) {
	s := Sample{N: 16, M: 0, IntCount: 0, FPCount: 0}
	if got := s.EffectiveILP(false, 1500); got != 0 {
		t.Errorf("zero-M estimate = %v, want 0", got)
	}
}
