// Package queue implements the adaptive issue queue control algorithm of
// paper Section 3.2: a deterministic, exploration-free measurement of the
// inherent ILP of the instruction stream, used to choose among the four
// queue sizes (16, 32, 48, 64 entries) the one that maximizes effective
// ILP normalized to the frequency each size permits.
//
// The mechanism is register timestamping at rename: each logical register
// carries a small timestamp; an instruction's destination receives
// max(timestamps of its sources)+1, so the running maximum M measures the
// depth of the tightest dependence chain seen so far. After N instructions
// have been tracked the estimate of exploitable ILP inside an N-entry
// window is N/M_N. Tracking for window size N ends when *either* the
// integer or the floating-point instruction count reaches N, which
// naturally stifles consideration of queue sizes the less dominant
// instruction type could never fill.
package queue

import (
	"fmt"

	"gals/internal/isa"
	"gals/internal/timing"
)

// defaultWindowSizes are the paper's tracked queue capacities in upsizing
// order.
var defaultWindowSizes = [4]int{16, 32, 48, 64}

// DefaultWindowSizes returns the paper's tracked window sizes (16, 32, 48,
// 64): the default a controller's IQWindows should return unless it tunes
// the tracking hardware itself.
func DefaultWindowSizes() [4]int { return defaultWindowSizes }

// Sample is the tracker's measurement for one window size.
type Sample struct {
	// N is the window size (16, 32, 48 or 64).
	N int
	// M is the maximum dependence-chain timestamp when the window filled.
	M int
	// IntCount and FPCount are the per-type instruction counts when the
	// window filled (one of them equals N).
	IntCount, FPCount int
}

// EffectiveILP returns the frequency-scaled throughput estimate for a queue
// of the sampled size in the given domain: (count/M) * f(N), where count is
// the instruction count of the domain's type. The unit is arbitrary
// (instructions x MHz); only comparisons matter.
func (s Sample) EffectiveILP(fp bool, freqMHz float64) float64 {
	if s.M == 0 {
		return 0
	}
	count := s.IntCount
	if fp {
		count = s.FPCount
	}
	return float64(count) / float64(s.M) * freqMHz
}

// Tracker is the ILP tracking hardware: timestamp storage for all logical
// registers (4 bits per register for ILP16 up to 6 bits for ILP64 in the
// paper; modeled here with saturating integers) plus per-type counters.
// All four window sizes are tracked simultaneously, as in the paper's
// experiments.
type Tracker struct {
	ts      [isa.NumIntRegs + isa.NumFPRegs]uint8
	curMax  int
	nInt    int
	nFP     int
	next    int // index into sizes of the next threshold to record
	sizes   [4]int
	samples [4]Sample
}

// NewTracker returns a reset tracker with the paper's window sizes.
func NewTracker() *Tracker { return NewTrackerSizes(defaultWindowSizes) }

// NewTrackerSizes returns a reset tracker measuring the given window sizes,
// which must be positive, strictly increasing and at most 64 (the hardware
// timestamp saturation point). This is the controller-facing knob behind
// Controller.IQWindows — the decision ladder (timing.IQSizes) is unchanged;
// only the measurement thresholds move.
func NewTrackerSizes(sizes [4]int) *Tracker {
	prev := 0
	for _, n := range sizes {
		if n <= prev || n > maxTimestamp {
			panic(fmt.Sprintf("queue: window sizes %v must be strictly increasing in (0, %d]", sizes, maxTimestamp))
		}
		prev = n
	}
	t := &Tracker{sizes: sizes}
	t.Reset()
	return t
}

// Reset clears timestamps and counters, beginning a new tracking interval.
func (t *Tracker) Reset() {
	for i := range t.ts {
		t.ts[i] = 0
	}
	t.curMax = 0
	t.nInt = 0
	t.nFP = 0
	t.next = 0
	t.samples = [4]Sample{}
}

// maxTimestamp saturates at the largest window size: the hardware uses 6
// bits for ILP64 and deeper chains are indistinguishable from "serial".
const maxTimestamp = 64

// Observe feeds one renamed instruction through the tracking hardware and
// reports whether the full interval (all four window sizes) completed with
// this instruction. When it returns true the caller should read Samples
// and Reset for the next interval.
func (t *Tracker) Observe(in *isa.Inst) bool {
	// Timestamp propagation: the earliest a result can be ready is the
	// latest of its inputs plus one (all operations modeled as unit
	// latency, per the paper).
	var ts uint8
	if in.Src1.Valid() {
		ts = t.ts[in.Src1]
	}
	if in.Src2.Valid() {
		if s2 := t.ts[in.Src2]; s2 > ts {
			ts = s2
		}
	}
	if ts < maxTimestamp {
		ts++
	}
	if in.Dest.Valid() {
		t.ts[in.Dest] = ts
	}
	if int(ts) > t.curMax {
		t.curMax = int(ts)
	}

	// Count by execution type: FP operations count toward the FP queue,
	// everything else (integer ops, branches, memory address generation)
	// toward the integer queue.
	if in.Class.IsFP() {
		t.nFP++
	} else {
		t.nInt++
	}

	// Record thresholds: a window of size N has filled when either type's
	// count reaches N.
	for t.next < len(t.sizes) {
		n := t.sizes[t.next]
		if t.nInt < n && t.nFP < n {
			break
		}
		t.samples[t.next] = Sample{N: n, M: t.curMax, IntCount: t.nInt, FPCount: t.nFP}
		t.next++
	}
	return t.next == len(t.sizes)
}

// Samples returns the four completed measurements. Valid only after
// Observe returned true and before Reset.
func (t *Tracker) Samples() [4]Sample { return t.samples }

// Choose applies the control policy: among the four queue sizes, pick the
// one whose frequency-scaled effective ILP is highest for the given domain
// type. A size is considered only if the domain's instruction count could
// actually fill it — this is the paper's "stifling" of larger queue sizes
// that can never fill for the less dominant instruction type (Section
// 3.2). Ties break toward the smaller (faster) queue.
func Choose(samples [4]Sample, fp bool) timing.IQSize {
	best := timing.IQ16
	bestScore := -1.0
	for i, s := range samples {
		size := timing.IQSizes()[i]
		count := s.IntCount
		if fp {
			count = s.FPCount
		}
		if i > 0 && count < s.N {
			continue // the queue could never fill; stifle consideration
		}
		score := s.EffectiveILP(fp, timing.IQFreqMHz(s.N))
		if score > bestScore+1e-9 {
			best, bestScore = size, score
		}
	}
	return best
}

// Controller wraps the tracker with the resize decision policy for one
// issue queue (integer or floating point), including optional hysteresis:
// the choice must repeat for Hysteresis consecutive intervals before a
// resize is requested, which suppresses thrashing on noisy phases.
type Controller struct {
	// FP selects which instruction type this controller's queue serves.
	FP bool
	// Hysteresis is the number of consecutive agreeing intervals required
	// before switching (0 or 1 switches immediately).
	Hysteresis int

	current   timing.IQSize
	candidate timing.IQSize
	streak    int
}

// NewController creates a controller for a queue currently sized cur.
func NewController(fp bool, cur timing.IQSize, hysteresis int) *Controller {
	return &Controller{FP: fp, Hysteresis: hysteresis, current: cur, candidate: cur}
}

// Current returns the size the controller believes the queue has.
func (c *Controller) Current() timing.IQSize { return c.current }

// Decide consumes one completed interval's samples and returns the new
// size and whether a resize should be initiated now.
func (c *Controller) Decide(samples [4]Sample) (timing.IQSize, bool) {
	want := Choose(samples, c.FP)
	if want == c.current {
		c.candidate = want
		c.streak = 0
		return c.current, false
	}
	if want == c.candidate {
		c.streak++
	} else {
		c.candidate = want
		c.streak = 1
	}
	if c.streak >= c.Hysteresis {
		c.current = want
		c.streak = 0
		return want, true
	}
	return c.current, false
}
