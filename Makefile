# Build/test/bench targets for the GALS reproduction. `make bench` emits
# machine-readable results (go test -bench ... -benchmem | tee) so each PR
# can track the perf trajectory against the committed PERFORMANCE.md table.

GO        ?= go
BENCH     ?= BenchmarkSimulator|BenchmarkTrace|BenchmarkAccountingCache|BenchmarkBranchPredictor|BenchmarkFUPool
COUNT     ?= 5
BENCHOUT  ?= BENCH_latest.txt
MEMWINDOW ?= 60000
MEMCACHE  ?= /tmp/gals-bench-mem-cache

.PHONY: all build test test-short race vet parity determinism chaos crash obs bench bench-json bench-suite bench-mem bench-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-enabled run of the full test suite: the service, sweep and pool
# layers are concurrent by design, so this is the gate CI enforces.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Policy-parity gate (also a CI step): the "paper" adaptation policy must
# stay bit-identical to the pre-extraction machine — golden reconfiguration
# traces and rendered figure6/table9/figure7 outputs.
parity:
	$(GO) test -run Parity -race ./internal/control/... ./internal/core/... ./internal/experiment/...

# Learned-policy determinism gate (also a CI step): same seed + same
# persisted weights artifact => bit-identical reconfiguration traces.
determinism:
	$(GO) test -run 'Determinism|Deterministic' -race ./internal/learn/...

# Chaos gate (also a CI job): the fault-injection, cancellation and
# degradation tests — corrupt caches recompute bit-identically, truncated
# slabs re-record, saturation sheds with Retry-After, deadlines map to 504,
# cancelled sweeps drain without leaking goroutines — all under the race
# detector, since every one of these paths races teardown by design.
chaos:
	$(GO) test -race -run 'Chaos|Cancel|Inject' ./...

# Crash-recovery gate (also a CI job): the checkpoint/resume, startup-scrub
# and crash-injection tests — interrupted sweeps resume bit-identically from
# their persisted checkpoints, crashed-writer debris is reaped or
# quarantined, and a SIGKILLed galsd restarted over the same cache finishes
# the suite with strictly fewer simulations (real subprocess drill).
crash:
	$(GO) test -race -run 'Crash|Resume|Scrub' ./...

# Observability smoke (also a CI job): build galsd + galsload, then have
# galsload launch the daemon, drive a short mixed closed loop against it,
# scrape /metrics back and assert the instrumented loop is live (histogram
# populated, cache hits observed, cells completed). Exercises the whole
# metrics/trace/access-log stack end-to-end over real HTTP.
obs:
	mkdir -p bin
	$(GO) build -o bin/galsd ./cmd/galsd
	$(GO) build -o bin/galsload ./cmd/galsload
	./bin/galsload -launch -galsd-bin ./bin/galsd -duration 3s -concurrency 4 -assert

# Micro-benchmarks of the simulator's hot paths: fast enough to run on
# every PR. Results land in $(BENCHOUT) for before/after comparison
# (benchstat-compatible: COUNT=5 repetitions by default).
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(COUNT) . | tee $(BENCHOUT)

# Same micro-benchmarks, but the results also land as machine-readable JSON
# (BENCH_<timestamp>.json unless BENCHJSON overrides it): name, ns/op, B/op,
# allocs/op and any b.ReportMetric extras, one record per benchmark with
# -count repeats folded to the fastest run. CI uploads the file as a build
# artifact so perf history is diffable without parsing bench text.
BENCHJSON ?= BENCH_$(shell date +%Y%m%dT%H%M%S).json
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(COUNT) . | $(GO) run ./cmd/benchjson -o $(BENCHJSON)

# The full Figure-6 pipeline benchmark (minutes of wall time): the headline
# end-to-end number recorded in PERFORMANCE.md.
bench-suite:
	$(GO) test -run '^$$' -bench 'BenchmarkFigure6$$' -benchtime 1x . | tee BENCH_suite.txt

# Memory-scaling report for a fixed pruned synchronous sweep: peak Go heap
# and peak RSS (the delta is the mmap'd recording store's file-backed
# pages). Fresh cache dir each run so the recording cost is included.
bench-mem:
	rm -rf $(MEMCACHE)
	$(GO) run ./cmd/sweep -quick -window $(MEMWINDOW) -cache $(MEMCACHE) -memstats

# One-iteration pass over every benchmark so they cannot rot (the CI job).
# The shrunken window keeps the suite-pipeline benchmarks to smoke scale.
bench-smoke:
	GALS_BENCH_WINDOW=2000 $(GO) test -run '^$$' -bench . -benchtime 1x ./...

ci: build vet race bench-smoke
