# Build/test/bench targets for the GALS reproduction. `make bench` emits
# machine-readable results (go test -bench ... -benchmem | tee) so each PR
# can track the perf trajectory against the committed PERFORMANCE.md table.

GO       ?= go
BENCH    ?= BenchmarkSimulator|BenchmarkTrace|BenchmarkAccountingCache|BenchmarkBranchPredictor
COUNT    ?= 5
BENCHOUT ?= BENCH_latest.txt

.PHONY: all build test test-short race vet bench bench-suite ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-enabled run of the full test suite: the service, sweep and pool
# layers are concurrent by design, so this is the gate CI enforces.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Micro-benchmarks of the simulator's hot paths: fast enough to run on
# every PR. Results land in $(BENCHOUT) for before/after comparison
# (benchstat-compatible: COUNT=5 repetitions by default).
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(COUNT) . | tee $(BENCHOUT)

# The full Figure-6 pipeline benchmark (minutes of wall time): the headline
# end-to-end number recorded in PERFORMANCE.md.
bench-suite:
	$(GO) test -run '^$$' -bench 'BenchmarkFigure6$$' -benchtime 1x . | tee BENCH_suite.txt

ci: build vet race
