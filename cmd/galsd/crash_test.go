// Subprocess chaos test for galsd's crash recovery: a real server is
// SIGKILLed mid-suite, restarted over the same cache directory, and must
// finish the rerun from its persisted checkpoints — byte-identical to an
// uninterrupted run and with strictly fewer simulated cells.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// galsdProc is one launched server: its base URL and a hard-kill handle.
type galsdProc struct {
	base string
	cmd  *exec.Cmd
}

// kill SIGKILLs the server — the crash under test, not a graceful stop.
func (p *galsdProc) kill() {
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

// startGalsd launches bin over the given cache dir and waits for the
// "galsd: listening on" announcement that carries the bound port.
func startGalsd(t *testing.T, bin, cacheDir string) *galsdProc {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-cache", cacheDir,
		"-checkpoint-interval", "100ms",
	)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting galsd: %v", err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "galsd: listening on "); ok {
				addrc <- strings.Fields(rest)[0]
			}
		}
	}()
	select {
	case a := <-addrc:
		p := &galsdProc{base: "http://" + a, cmd: cmd}
		t.Cleanup(p.kill)
		return p
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("galsd did not announce a listen address within 30s")
		return nil
	}
}

// ckptStats is the slice of /v1/stats this test watches.
type ckptStats struct {
	Completed          int64 `json:"completed"`
	CheckpointsWritten int64 `json:"checkpoints_written"`
	CheckpointsResumed int64 `json:"checkpoints_resumed"`
	ResumedCells       int64 `json:"resumed_cells"`
}

func serverStats(base string) (ckptStats, error) {
	var st ckptStats
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// postSuite POSTs the suite request and returns the raw response body, so
// identity can be asserted byte for byte rather than field by field.
func postSuite(base string, body []byte) ([]byte, error) {
	resp, err := http.Post(base+"/v1/suite", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("suite: %s: %s", resp.Status, out)
	}
	return out, nil
}

// TestCrashResumeSIGKILLedServer is the end-to-end crash drill behind the
// checkpoint layer: SIGKILL a live galsd mid-suite, restart it over the
// same cache, and pin that the rerun (a) resumes from the flushed
// checkpoint, (b) simulates strictly fewer cells than a cold run, and
// (c) returns a byte-identical response body.
func TestCrashResumeSIGKILLedServer(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos drill is not a -short test")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH; cannot build the galsd subprocess")
	}
	bin := filepath.Join(t.TempDir(), "galsd")
	if out, err := exec.Command(goTool, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building galsd: %v\n%s", err, out)
	}
	suite := []byte(`{"window":600,"seed":7}`)

	// Cold baseline on its own cache: the uninterrupted answer and cost.
	coldDir := t.TempDir()
	cold := startGalsd(t, bin, coldDir)
	want, err := postSuite(cold.base, suite)
	if err != nil {
		t.Fatal(err)
	}
	coldStats, err := serverStats(cold.base)
	if err != nil {
		t.Fatal(err)
	}
	cold.kill()
	if coldStats.Completed == 0 {
		t.Fatal("cold run reports zero completed cells")
	}

	// Crash leg: same suite on a fresh cache, killed without warning once
	// at least one progress checkpoint has hit disk.
	warmDir := t.TempDir()
	victim := startGalsd(t, bin, warmDir)
	done := make(chan error, 1)
	go func() {
		_, err := postSuite(victim.base, suite)
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		select {
		case err := <-done:
			t.Fatalf("suite finished before a checkpoint landed (err=%v); raise the window", err)
		default:
		}
		st, err := serverStats(victim.base)
		if err == nil && st.CheckpointsWritten >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint written within 2m")
		}
		time.Sleep(20 * time.Millisecond)
	}
	victim.kill() // SIGKILL: no Shutdown, no final flush — only interval checkpoints survive

	// Restart over the crashed cache. The default -scrub pass runs first;
	// the orphaned checkpoint must survive it and feed the resume.
	revived := startGalsd(t, bin, warmDir)
	got, err := postSuite(revived.base, suite)
	if err != nil {
		t.Fatalf("rerun after crash: %v", err)
	}
	st, err := serverStats(revived.base)
	if err != nil {
		t.Fatal(err)
	}
	if st.CheckpointsResumed < 1 || st.ResumedCells < 1 {
		t.Fatalf("rerun stats %+v: did not resume from the crash checkpoint", st)
	}
	// The revived process starts its counters at zero, so Completed is
	// exactly the cells it simulated itself — strictly fewer than cold.
	if st.Completed >= coldStats.Completed {
		t.Fatalf("rerun simulated %d cells, cold run %d: checkpoint saved nothing",
			st.Completed, coldStats.Completed)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-crash suite response differs from the uninterrupted run:\n got: %s\nwant: %s", got, want)
	}
}
