// Command galsd serves the GALS simulator over HTTP/JSON: single runs,
// batched runs, design-space sweeps and experiment regeneration, backed by
// a bounded priority worker pool, singleflight deduplication of identical
// concurrent requests, and a persistent on-disk result cache shared with
// cmd/experiments and cmd/sweep.
//
// Usage:
//
//	galsd -addr :8347 -cache ~/.cache/gals
//	galsd -auth-token s3cret          # or GALSD_TOKEN=s3cret; gates /v1/*
//	galsd -request-timeout 2m         # 504 any request that computes longer
//	galsd -rate-limit 50 -rate-burst 100
//	galsd -tls-cert cert.pem -tls-key key.pem
//	galsd -fault-inject 'resultcache.read=corrupt:0.5'   # chaos drills
//	galsd -checkpoint-interval 15s    # crash-safe sweep progress (0 disables)
//	galsd -scrub=false                # skip the startup-recovery pass
//	galsd -telemetry-cap 8192         # ring capacity for "telemetry":true runs
//
// Endpoints (see README.md for request bodies):
//
//	GET  /healthz
//	GET  /v1/stats
//	GET  /v1/workloads
//	GET  /v1/telemetry/<digest>
//	POST /v1/run
//	POST /v1/batch
//	POST /v1/sweep
//	POST /v1/suite
//	POST /v1/experiment
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"gals/internal/faultinject"
	"gals/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8347", "listen address")
		cache     = flag.String("cache", defaultCacheDir(), "persistent result cache directory (empty disables)")
		workers   = flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "pending-cell queue bound (0 = 65536)")
		maxBytes  = flag.Int64("cache-max-bytes", 0, "LRU-prune the cache under this many bytes at startup and after computed sweeps/suites (0 = never)")
		token     = flag.String("auth-token", os.Getenv("GALSD_TOKEN"), "bearer token required on /v1/* endpoints (default $GALSD_TOKEN; empty disables auth)")
		reqTO     = flag.Duration("request-timeout", 0, "per-request compute deadline; expiry cancels the request's cells and returns 504 (0 = unbounded)")
		rateLimit = flag.Float64("rate-limit", 0, "per-client sustained rate on POST /v1/* in requests/second; excess gets 429 + Retry-After (0 = unlimited)")
		rateBurst = flag.Int("rate-burst", 0, "rate-limit burst size (0 = ceil(rate-limit))")
		tlsCert   = flag.String("tls-cert", "", "TLS certificate file; with -tls-key, serve HTTPS")
		tlsKey    = flag.String("tls-key", "", "TLS private key file")
		faults    = flag.String("fault-inject", os.Getenv("GALS_FAULTS"), "fault-injection spec, e.g. 'resultcache.read=corrupt:0.5,service.dispatch=error:0.1' (empty disables; see internal/faultinject)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
		accessLog = flag.Bool("access-log", false, "write one JSON access-log line per request to stderr")
		traceDir  = flag.String("trace-dir", "", "dump a span-trace JSON file per run/sweep/suite request into this directory")
		ckptEvery = flag.Duration("checkpoint-interval", 15*time.Second, "persist sweep/suite progress checkpoints this often so a killed server resumes warm (0 disables)")
		runPar    = flag.Bool("run-parallel", false, "let runs use idle workers for intra-run stage parallelism (bit-identical results, lower single-run latency on a quiet server)")
		telCap    = flag.Int("telemetry-cap", 0, "per-run telemetry ring capacity for runs requesting \"telemetry\":true — oldest samples/events are dropped beyond it (0 = default 4096)")
		scrub     = flag.Bool("scrub", true, "run a startup-recovery pass over the cache before serving: reap crashed-writer temp/lock files, quarantine undecodable blobs, drop invalid recording slabs, GC stale checkpoints")
	)
	flag.Parse()

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "galsd: -workers must be >= 0, got %d\n", *workers)
		os.Exit(2)
	}
	if *queue < 0 {
		fmt.Fprintf(os.Stderr, "galsd: -queue must be >= 0, got %d\n", *queue)
		os.Exit(2)
	}
	if *maxBytes < 0 {
		fmt.Fprintf(os.Stderr, "galsd: -cache-max-bytes must be >= 0, got %d\n", *maxBytes)
		os.Exit(2)
	}
	if *reqTO < 0 || *rateLimit < 0 || *rateBurst < 0 || *ckptEvery < 0 {
		fmt.Fprintln(os.Stderr, "galsd: -request-timeout, -rate-limit, -rate-burst and -checkpoint-interval must be >= 0")
		os.Exit(2)
	}
	if *telCap < 0 {
		fmt.Fprintf(os.Stderr, "galsd: -telemetry-cap must be >= 0, got %d\n", *telCap)
		os.Exit(2)
	}
	if (*tlsCert == "") != (*tlsKey == "") {
		fmt.Fprintln(os.Stderr, "galsd: -tls-cert and -tls-key must be set together")
		os.Exit(2)
	}
	if err := faultinject.Enable(*faults); err != nil {
		fmt.Fprintln(os.Stderr, "galsd:", err)
		os.Exit(2)
	}
	if faultinject.Active() {
		fmt.Fprintf(os.Stderr, "galsd: FAULT INJECTION ARMED (%s) — not for production service\n", *faults)
	}

	var logW io.Writer
	if *accessLog {
		logW = os.Stderr
	}
	svc, err := service.New(service.Config{
		CacheDir: *cache, Workers: *workers, QueueDepth: *queue,
		CacheMaxBytes: *maxBytes, AuthToken: *token,
		RequestTimeout: *reqTO, RateLimit: *rateLimit, RateBurst: *rateBurst,
		EnablePprof: *pprofOn, AccessLog: logW, TraceDir: *traceDir,
		CheckpointEvery: *ckptEvery, RunParallel: *runPar,
		TelemetryCap: *telCap,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "galsd:", err)
		os.Exit(1)
	}

	// Startup recovery: with a persistent cache, reap whatever a crashed
	// predecessor left behind before accepting traffic. The report is one
	// structured line so crash-loop debris growth is visible in logs.
	if *scrub && *cache != "" {
		rep, err := svc.Scrub()
		if err != nil {
			svc.Close()
			fmt.Fprintln(os.Stderr, "galsd: scrub:", err)
			os.Exit(1)
		}
		line, _ := json.Marshal(map[string]any{"msg": "galsd scrub", "report": rep})
		fmt.Println(string(line))
	}

	// WriteTimeout caps how long a response may take to compute AND write,
	// so it must sit above the compute deadline: -request-timeout plus
	// headroom for serialization and slow readers. With no request timeout
	// it stays unset — a suite request legitimately computes for minutes,
	// and an unconditional cap would kill it mid-flight.
	writeTO := time.Duration(0)
	if *reqTO > 0 {
		writeTO = *reqTO + 30*time.Second
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute, // a request body (batch of runs) is at most ~1 MiB: a minute is generous, a slow-loris gets cut
		WriteTimeout:      writeTO,
		IdleTimeout:       2 * time.Minute,
	}

	// Listen before serving so the ACTUAL bound address can be announced:
	// with -addr :0 the kernel picks the port, and tools that spawn a
	// throwaway galsd (galsload -launch) parse it from the startup line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		svc.Close()
		fmt.Fprintln(os.Stderr, "galsd:", err)
		os.Exit(1)
	}
	errc := make(chan error, 1)
	go func() {
		if *tlsCert != "" {
			errc <- srv.ServeTLS(ln, *tlsCert, *tlsKey)
			return
		}
		errc <- srv.Serve(ln)
	}()
	scheme := "http"
	if *tlsCert != "" {
		scheme = "https"
	}
	fmt.Printf("galsd: listening on %s (%s, cache %q)\n", ln.Addr(), scheme, *cache)

	// One structured line with the effective configuration, so a log
	// aggregator (or a human reading journald) sees exactly what this
	// instance is running with — including what the defaults resolved to.
	summary, _ := json.Marshal(map[string]any{
		"msg": "galsd started", "addr": ln.Addr().String(), "scheme": scheme,
		"cache": *cache, "workers": *workers, "queue": *queue,
		"cache_max_bytes": *maxBytes, "auth": *token != "",
		"request_timeout": reqTO.String(), "rate_limit": *rateLimit,
		"rate_burst": *rateBurst, "pprof": *pprofOn,
		"access_log": *accessLog, "trace_dir": *traceDir,
		"fault_injection":     faultinject.Active(),
		"checkpoint_interval": ckptEvery.String(), "scrub": *scrub,
		"telemetry_cap": *telCap,
	})
	fmt.Println(string(summary))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		svc.Close()
		fmt.Fprintln(os.Stderr, "galsd:", err)
		os.Exit(1)
	case sig := <-sigc:
		// Graceful stop: the listener closes and in-flight requests drain
		// (their simulation cells with them), then the pool stops and a
		// final prune pass leaves the cache within -cache-max-bytes.
		fmt.Printf("galsd: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx, srv); err != nil {
			// The drain deadline expired: Shutdown cancelled the stragglers
			// and flushed their progress checkpoints, so their reruns resume
			// warm. That is the designed outcome of a stop under load, not a
			// failure — report it and exit clean.
			fmt.Fprintln(os.Stderr, "galsd: shutdown: cancelled in-flight requests after drain deadline, progress checkpointed:", err)
		}
	}
}

// defaultCacheDir resolves the user cache directory, falling back to a
// local directory when the environment doesn't define one.
func defaultCacheDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return filepath.Join(dir, "gals")
	}
	return ".gals-cache"
}
