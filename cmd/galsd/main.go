// Command galsd serves the GALS simulator over HTTP/JSON: single runs,
// batched runs, design-space sweeps and experiment regeneration, backed by
// a bounded priority worker pool, singleflight deduplication of identical
// concurrent requests, and a persistent on-disk result cache shared with
// cmd/experiments and cmd/sweep.
//
// Usage:
//
//	galsd -addr :8347 -cache ~/.cache/gals
//	galsd -auth-token s3cret          # or GALSD_TOKEN=s3cret; gates /v1/*
//
// Endpoints (see README.md for request bodies):
//
//	GET  /healthz
//	GET  /v1/stats
//	GET  /v1/workloads
//	POST /v1/run
//	POST /v1/batch
//	POST /v1/sweep
//	POST /v1/suite
//	POST /v1/experiment
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"gals/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8347", "listen address")
		cache    = flag.String("cache", defaultCacheDir(), "persistent result cache directory (empty disables)")
		workers  = flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "pending-cell queue bound (0 = 65536)")
		maxBytes = flag.Int64("cache-max-bytes", 0, "LRU-prune the cache under this many bytes at startup and after computed sweeps/suites (0 = never)")
		token    = flag.String("auth-token", os.Getenv("GALSD_TOKEN"), "bearer token required on /v1/* endpoints (default $GALSD_TOKEN; empty disables auth)")
	)
	flag.Parse()

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "galsd: -workers must be >= 0, got %d\n", *workers)
		os.Exit(2)
	}
	if *queue < 0 {
		fmt.Fprintf(os.Stderr, "galsd: -queue must be >= 0, got %d\n", *queue)
		os.Exit(2)
	}
	if *maxBytes < 0 {
		fmt.Fprintf(os.Stderr, "galsd: -cache-max-bytes must be >= 0, got %d\n", *maxBytes)
		os.Exit(2)
	}

	svc, err := service.New(service.Config{
		CacheDir: *cache, Workers: *workers, QueueDepth: *queue,
		CacheMaxBytes: *maxBytes, AuthToken: *token,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "galsd:", err)
		os.Exit(1)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("galsd: listening on %s (cache %q)\n", *addr, *cache)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		svc.Close()
		fmt.Fprintln(os.Stderr, "galsd:", err)
		os.Exit(1)
	case sig := <-sigc:
		// Graceful stop: the listener closes and in-flight requests drain
		// (their simulation cells with them), then the pool stops and a
		// final prune pass leaves the cache within -cache-max-bytes.
		fmt.Printf("galsd: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx, srv); err != nil {
			fmt.Fprintln(os.Stderr, "galsd: shutdown:", err)
			os.Exit(1)
		}
	}
}

// defaultCacheDir resolves the user cache directory, falling back to a
// local directory when the environment doesn't define one.
func defaultCacheDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return filepath.Join(dir, "gals")
	}
	return ".gals-cache"
}
