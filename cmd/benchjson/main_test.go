package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkSimulatorPhaseAdaptive-8    \t 1000\t   1234.5 ns/op\t  56 B/op\t 7 allocs/op")
	if !ok {
		t.Fatal("standard -benchmem line did not parse")
	}
	if r.Name != "BenchmarkSimulatorPhaseAdaptive-8" || r.Iterations != 1000 {
		t.Fatalf("name/iterations = %q/%d", r.Name, r.Iterations)
	}
	if r.NsPerOp != 1234.5 || r.BytesPerOp != 56 || r.AllocsPerOp != 7 {
		t.Fatalf("values = %v/%v/%v", r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}

	r, ok = parseBenchLine("BenchmarkTelemetryOverhead-4  10  99 ns/op  0.42 overhead-%  88 off-ns/inst")
	if !ok {
		t.Fatal("ReportMetric line did not parse")
	}
	if r.Metrics["overhead-%"] != 0.42 || r.Metrics["off-ns/inst"] != 88 {
		t.Fatalf("custom metrics = %v", r.Metrics)
	}

	for _, bad := range []string{
		"ok  	gals	0.5s",
		"PASS",
		"goos: linux",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"BenchmarkNoPairs-8 1000",
	} {
		if _, ok := parseBenchLine(bad); ok {
			t.Errorf("line %q should not parse as a result", bad)
		}
	}
}

func TestParseBenchLineFoldsAreMinBased(t *testing.T) {
	a, _ := parseBenchLine("BenchmarkX-8 100 200 ns/op")
	b, _ := parseBenchLine("BenchmarkX-8 120 150 ns/op")
	// main() keeps the minimum-ns/op line when folding -count repeats;
	// verify the two lines carry what that fold relies on.
	if a.Name != b.Name || b.NsPerOp >= a.NsPerOp {
		t.Fatalf("fold precondition broken: %+v vs %+v", a, b)
	}
}
