// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON array. It reads the bench text on stdin, echoes
// every line through to stderr (so the human-readable stream survives the
// pipe), and at EOF writes one JSON document to the file named by -o (or
// stdout) with one record per benchmark result line:
//
//	{"name": "BenchmarkSimulatorPhaseAdaptive-8", "runs": 5,
//	 "ns_per_op": 1234.5, "b_per_op": 0, "allocs_per_op": 0,
//	 "metrics": {"overhead-%": 0.4}}
//
// Repeated lines for the same benchmark (-count > 1) fold into one record:
// runs accumulates and the numeric fields keep the minimum ns/op line's
// values, matching how humans read a -count series. Custom b.ReportMetric
// units land in "metrics" verbatim.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark's folded record.
type result struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file for the JSON document (empty = stdout)")
	flag.Parse()

	byName := map[string]*result{}
	var order []string

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		r, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		prev, seen := byName[r.Name]
		if !seen {
			byName[r.Name] = r
			order = append(order, r.Name)
			continue
		}
		prev.Runs += r.Runs
		if r.NsPerOp < prev.NsPerOp {
			prev.Iterations = r.Iterations
			prev.NsPerOp = r.NsPerOp
			prev.BytesPerOp = r.BytesPerOp
			prev.AllocsPerOp = r.AllocsPerOp
			prev.Metrics = r.Metrics
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	results := make([]*result, 0, len(order))
	for _, name := range order {
		results = append(results, byName[name])
	}
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}

// parseBenchLine decodes one standard bench result line:
//
//	BenchmarkName-8   1000   1234 ns/op   56 B/op   7 allocs/op   0.4 extra-unit
//
// The name must start with "Benchmark" and the line must carry at least an
// iteration count; value/unit pairs follow in any order.
func parseBenchLine(line string) (*result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return nil, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, false
	}
	r := &result{Name: fields[0], Runs: 1, Iterations: iters}
	any := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
		any = true
	}
	if !any {
		return nil, false
	}
	return r, true
}
