package main

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"gals/internal/core"
	"gals/internal/timing"
)

// writeTelemetry serializes a sealed telemetry artifact to path. A ".csv"
// suffix selects a flat samples+events table (one row per sample or event,
// ready for spreadsheet or gnuplot use); any other name gets the versioned
// JSON artifact, byte-compatible with the service's /v1/telemetry blobs.
func writeTelemetry(path string, t *core.Telemetry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = telemetryCSV(f, t)
	} else {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(t)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// telemetryCSV flattens samples and events into one chronological table.
// Sample rows carry the per-domain state at a decision boundary; event rows
// describe one committed reconfiguration.
func telemetryCSV(w io.Writer, t *core.Telemetry) error {
	cw := csv.NewWriter(w)
	header := []string{
		"kind", "instr", "time_fs",
		"icache", "dcache", "int_iq", "fp_iq",
		"fe_mhz", "ls_mhz", "int_mhz", "fp_mhz", "ipc",
		"detail",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := func(kind string, instr, timeFS int64, icache, dcache string, intIQ, fpIQ int, fe, ls, in, fp, ipc float64, detail string) []string {
		num := func(v float64) string {
			if v == 0 {
				return ""
			}
			return strconv.FormatFloat(v, 'f', -1, 64)
		}
		return []string{
			kind,
			strconv.FormatInt(instr, 10),
			strconv.FormatInt(timeFS, 10),
			icache, dcache,
			strconv.Itoa(intIQ), strconv.Itoa(fpIQ),
			num(fe), num(ls), num(in), num(fp), num(ipc),
			detail,
		}
	}
	si, ei := 0, 0
	for si < len(t.Samples) || ei < len(t.Events) {
		if ei >= len(t.Events) || (si < len(t.Samples) && t.Samples[si].Instr <= t.Events[ei].Instr) {
			s := t.Samples[si]
			si++
			var detail string
			switch s.Kind {
			case "cache":
				detail = fmt.Sprintf("l1i=%d/%d/%d l1d=%d/%d/%d l2=%d/%d/%d",
					s.ICacheHitsA, s.ICacheHitsB, s.ICacheMisses,
					s.DCacheHitsA, s.DCacheHitsB, s.DCacheMisses,
					s.L2HitsA, s.L2HitsB, s.L2Misses)
			case "iq":
				parts := make([]string, 0, len(s.IQ))
				for _, q := range s.IQ {
					parts = append(parts, fmt.Sprintf("w%d:ilp=%d,int=%d,fp=%d",
						q.Window, q.MaxILP, q.IntOcc, q.FPOcc))
				}
				detail = strings.Join(parts, " ")
			}
			if err := cw.Write(row("sample-"+s.Kind, s.Instr, s.TimeFS,
				s.ICache, s.DCache, s.IntIQ, s.FPIQ,
				s.FEMHz, s.LSMHz, s.IntMHz, s.FPMHz, s.IPC, detail)); err != nil {
				return err
			}
			continue
		}
		ev := t.Events[ei]
		ei++
		detail := fmt.Sprintf("%s %s %d->%d %s (%s)",
			ev.Structure, ev.Direction, ev.From, ev.To, ev.Config, ev.Trigger)
		if err := cw.Write(row("event", ev.Instr, ev.TimeFS,
			"", "", 0, 0, 0, 0, 0, 0, 0, detail)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// plotStructures orders the timeline tracks top to bottom.
var plotStructures = [...]string{"icache", "dcache", "int-iq", "fp-iq"}

// plotTelemetry renders a Figure-7-style adaptation timeline: one digit
// track per adaptive structure (the configuration index over the
// instruction axis, 0 = smallest/fastest, 3 = largest/slowest), a marker
// line flagging the columns where reconfigurations committed ('^' up,
// 'v' down, '*' both), and an IPC sparkline from the cache-interval
// samples.
func plotTelemetry(w io.Writer, t *core.Telemetry) {
	const width = 72
	fmt.Fprintf(w, "telemetry  %s  config %s  policy %s\n", t.Workload, t.Config, t.Policy)
	fmt.Fprintf(w, "window     %d instrs  %.3f us  %d reconfigs  %d samples",
		t.Window, float64(t.TimeFS)/float64(timing.FemtosPerMicro), t.Reconfigs, len(t.Samples))
	if t.DroppedSamples > 0 || t.DroppedEvents > 0 {
		fmt.Fprintf(w, "  (dropped %d samples, %d events)", t.DroppedSamples, t.DroppedEvents)
	}
	fmt.Fprintln(w)
	if t.Window <= 0 {
		return
	}
	perCol := t.Window / width
	if perCol <= 0 {
		perCol = 1
	}
	fmt.Fprintf(w, "scale      1 column = %d instrs; tracks show config index 0-3\n\n", perCol)

	col := func(instr int64) int {
		c := int(instr / perCol)
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}

	for _, structure := range plotStructures {
		track := make([]byte, width)
		marks := make([]byte, width)
		for i := range marks {
			marks[i] = ' '
		}
		cur := initialIndex(t, structure)
		ei := 0
		events := structureEvents(t, structure)
		for c := 0; c < width; c++ {
			// Apply every event that lands in this column, marking the
			// column with its direction ('*' when both fired in one cell).
			end := int64(c+1) * perCol
			for ei < len(events) && (events[ei].Instr < end || c == width-1) {
				ev := events[ei]
				ei++
				cur = ev.To
				mark := byte('^')
				if ev.Direction == "down" {
					mark = 'v'
				}
				if marks[c] != ' ' && marks[c] != mark {
					mark = '*'
				}
				marks[c] = mark
			}
			track[c] = digit(cur)
		}
		fmt.Fprintf(w, "%-8s %s\n", structure, track)
		if strings.TrimSpace(string(marks)) != "" {
			fmt.Fprintf(w, "%-8s %s\n", "", marks)
		}
	}

	// IPC sparkline from the cache-interval samples (the per-interval IPC
	// the cache controllers observed), binned onto the same columns.
	sum := make([]float64, width)
	cnt := make([]int, width)
	maxIPC := 0.0
	for _, s := range t.Samples {
		if s.Kind != "cache" || s.IPC <= 0 {
			continue
		}
		c := col(s.Instr)
		sum[c] += s.IPC
		cnt[c]++
	}
	for c := 0; c < width; c++ {
		if cnt[c] > 0 && sum[c]/float64(cnt[c]) > maxIPC {
			maxIPC = sum[c] / float64(cnt[c])
		}
	}
	if maxIPC > 0 {
		const levels = " .:-=+*#%@"
		line := make([]byte, width)
		for c := 0; c < width; c++ {
			if cnt[c] == 0 {
				line[c] = ' '
				continue
			}
			v := sum[c] / float64(cnt[c]) / maxIPC
			li := int(v * float64(len(levels)-1))
			if li >= len(levels) {
				li = len(levels) - 1
			}
			line[c] = levels[li]
		}
		fmt.Fprintf(w, "%-8s %s  (peak %.2f instr/cycle)\n", "ipc", line, maxIPC)
	}
}

// structureEvents filters the (chronological) event series down to one
// structure.
func structureEvents(t *core.Telemetry, structure string) []core.TelemetryEvent {
	var out []core.TelemetryEvent
	for _, ev := range t.Events {
		if ev.Structure == structure {
			out = append(out, ev)
		}
	}
	return out
}

// initialIndex recovers the configuration index a structure started the
// run with, from the artifact alone: the From of its first event if it
// ever reconfigured, otherwise the index held in the first sample.
func initialIndex(t *core.Telemetry, structure string) int {
	for _, ev := range t.Events {
		if ev.Structure == structure {
			return ev.From
		}
	}
	if len(t.Samples) == 0 {
		return 0
	}
	s := t.Samples[0]
	switch structure {
	case "icache":
		return s.ICacheIndex
	case "dcache":
		return s.DCacheIndex
	case "int-iq":
		return iqIndex(s.IntIQ)
	case "fp-iq":
		return iqIndex(s.FPIQ)
	}
	return 0
}

// iqIndex maps an issue-queue size (16/32/48/64) to its config index 0-3.
func iqIndex(size int) int {
	i := size/16 - 1
	if i < 0 {
		i = 0
	}
	if i > 3 {
		i = 3
	}
	return i
}

// digit renders a config index as a single track character.
func digit(i int) byte {
	if i < 0 || i > 9 {
		return '?'
	}
	return byte('0' + i)
}
