// Command galsim runs one benchmark on one machine configuration and
// prints run statistics.
//
// Usage:
//
//	galsim -bench gcc -mode phase -n 100000
//	galsim -bench em3d -mode sync -icache 64k1W -dcache 0 -iq 16 -fq 16
//	galsim -bench art -mode phase -trace
//	galsim -bench apsi -mode phase -policy interval -policy-params interval=7500
//	galsim -train-policy weights.json -n 30000
//	galsim -bench apsi -mode phase -policy learned -policy-blob weights.json
//	galsim -list-policies
//	galsim -bench gcc -mode phase -telemetry gcc.json
//	galsim -bench art -mode phase -telemetry art.csv -telemetry-plot
//
// Modes: sync (fully synchronous), program (Program-Adaptive MCD with the
// given fixed configuration), phase (Phase-Adaptive MCD with the on-line
// controllers enabled).
//
// -train-policy runs the learned-policy training pipeline (imitation of the
// paper's controllers over recorded phase runs of the whole suite at the
// given -n window and -seed) and writes the weights artifact to the given
// file; -policy-blob feeds such an artifact to a blob-requiring policy.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"gals/internal/control"
	"gals/internal/core"
	"gals/internal/learn"
	"gals/internal/timing"
	"gals/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "gcc", "benchmark run name (see -list)")
		mode    = flag.String("mode", "phase", "machine mode: sync, program, phase")
		n       = flag.Int64("n", 100_000, "instruction window length")
		icache  = flag.String("icache", "", "I-cache config: sync mode: Table 3 name (e.g. 64k1W); adaptive: 16k1W|32k2W|48k3W|64k4W")
		dcache  = flag.Int("dcache", 0, "D/L2 config index 0..3 (Table 1)")
		iq      = flag.Int("iq", 16, "integer issue queue size (16/32/48/64)")
		fq      = flag.Int("fq", 16, "FP issue queue size (16/32/48/64)")
		seed    = flag.Int64("seed", 42, "PLL/jitter seed")
		jitter  = flag.Float64("jitter", 0, "clock jitter fraction (e.g. 0.01)")
		pll     = flag.Float64("pllscale", 0.1, "PLL lock-time scale for shortened windows")
		doTrace = flag.Bool("trace", false, "print reconfiguration events (phase mode)")
		list    = flag.Bool("list", false, "list benchmark runs and exit")
		policy  = flag.String("policy", "", "adaptation policy for phase mode (see -list-policies); empty = paper")
		polPar  = flag.String("policy-params", "", "policy parameters as key=value[,key=value...]")
		polBlob = flag.String("policy-blob", "", "weights-artifact file for blob-requiring policies (e.g. learned; see -train-policy)")
		trainTo = flag.String("train-policy", "", "run the learned-policy training pipeline at the -n window and write the weights artifact to this file, then exit")
		listPol = flag.Bool("list-policies", false, "list adaptation policies and exit")
		par     = flag.Int("parallel", 1, "intra-run parallelism degree: 1 = sequential, 0 = auto (CPU count), capped at the machine's stage depth; results are bit-identical at any degree")
		telFile = flag.String("telemetry", "", "record run telemetry (per-interval adaptation series) and write it to this file: .csv writes a flat samples+events table, anything else the JSON artifact")
		telPlot = flag.Bool("telemetry-plot", false, "record run telemetry and print a Figure-7-style ASCII adaptation timeline (combinable with -telemetry)")
	)
	flag.Parse()

	if *listPol {
		for _, in := range control.Infos() {
			blob := ""
			if in.RequiresBlob {
				blob = " (requires a weights artifact: -policy-blob)"
			}
			fmt.Printf("%-10s %s%s\n", in.Name, in.Description, blob)
			for _, p := range in.Params {
				fmt.Printf("           %s (default %g): %s\n", p.Name, p.Default, p.Description)
			}
		}
		return
	}

	if *list {
		for _, s := range workload.Suite() {
			fmt.Printf("%-18s %-12s window %s\n", s.Name, s.Suite, s.Window)
		}
		return
	}

	if *n <= 0 {
		fmt.Fprintf(os.Stderr, "galsim: -n must be a positive instruction window, got %d\n", *n)
		os.Exit(2)
	}
	if !(*jitter >= 0 && *jitter <= 0.05) { // negated forms reject NaN too
		fmt.Fprintf(os.Stderr, "galsim: -jitter must be in [0, 0.05], got %g\n", *jitter)
		os.Exit(2)
	}
	if !(*pll >= 0) {
		fmt.Fprintf(os.Stderr, "galsim: -pllscale must be >= 0, got %g\n", *pll)
		os.Exit(2)
	}

	if *trainTo != "" {
		model, st, err := learn.Train(learn.TrainOptions{
			Window: *n, Seed: *seed, PLLScale: *pll, JitterFrac: *jitter,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "galsim:", err)
			os.Exit(1)
		}
		blob, err := model.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "galsim:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*trainTo, []byte(blob), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "galsim:", err)
			os.Exit(1)
		}
		fmt.Printf("trained %s (digest %s) from %d phase runs at window %d\n",
			*trainTo, control.BlobDigest(blob)[:12], st.Benchmarks, *n)
		for h := 0; h < learn.NumHeads; h++ {
			fmt.Printf("  %-7s %6d samples, imitation accuracy %.1f%%\n",
				learn.HeadNames[h], st.Samples[h], 100*st.Accuracy[h])
		}
		if st.Samples[learn.HeadICache] == 0 {
			fmt.Printf("  note: no cache-head samples — train with -n >= %d (the accounting interval) so cache decisions are observed\n",
				control.PaperCacheInterval)
		}
		return
	}

	spec, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "galsim: unknown benchmark %q (try -list)\n", *bench)
		os.Exit(1)
	}

	var cfg core.Config
	switch *mode {
	case "sync":
		cfg = core.DefaultSync()
		if *icache != "" {
			idx, ok := timing.SyncICacheIndexByName(*icache)
			if !ok {
				fmt.Fprintf(os.Stderr, "galsim: unknown sync i-cache %q\n", *icache)
				os.Exit(1)
			}
			cfg.SyncICache = idx
		}
	case "program":
		cfg = core.DefaultAdaptive(core.ProgramAdaptive)
		if *icache != "" {
			cfg.ICache = parseAdaptiveICache(*icache)
		}
	case "phase":
		cfg = core.DefaultAdaptive(core.PhaseAdaptive)
		if *icache != "" {
			cfg.ICache = parseAdaptiveICache(*icache)
		}
	default:
		fmt.Fprintf(os.Stderr, "galsim: unknown mode %q\n", *mode)
		os.Exit(1)
	}
	cfg.DCache = timing.DCacheConfig(*dcache)
	cfg.IntIQ = timing.IQSize(*iq)
	cfg.FPIQ = timing.IQSize(*fq)
	cfg.Seed = *seed
	cfg.JitterFrac = *jitter
	cfg.PLLScale = *pll
	cfg.RecordTrace = *doTrace
	cfg.Policy = *policy
	cfg.PolicyParams = *polPar
	if *polBlob != "" {
		blob, err := os.ReadFile(*polBlob)
		if err != nil {
			fmt.Fprintln(os.Stderr, "galsim:", err)
			os.Exit(1)
		}
		cfg.PolicyBlob = string(blob)
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "galsim:", err)
		os.Exit(1)
	}

	var tel *core.Telemetry
	if *telFile != "" || *telPlot {
		// The sampler rides the timing stage, so -parallel records the
		// identical series; a nil sampler makes this a plain run.
		tel = core.NewTelemetry(core.DefaultTelemetryCap)
	}
	res, err := core.RunWorkloadTelemetryContext(context.Background(), spec, cfg, *n, core.ParallelDegree(*par), tel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "galsim:", err)
		os.Exit(1)
	}
	printResult(res)
	if *doTrace {
		fmt.Println("\nreconfiguration trace:")
		for _, e := range res.Stats.ReconfigEvents {
			fmt.Printf("  @%9d instr  %-7s -> %s\n", e.Instr, e.Kind, e.Config)
		}
	}
	if *telFile != "" {
		if err := writeTelemetry(*telFile, tel); err != nil {
			fmt.Fprintln(os.Stderr, "galsim:", err)
			os.Exit(1)
		}
		fmt.Printf("\ntelemetry   %s (%d samples, %d events)\n", *telFile, len(tel.Samples), len(tel.Events))
	}
	if *telPlot {
		fmt.Println()
		plotTelemetry(os.Stdout, tel)
	}
}

func parseAdaptiveICache(name string) timing.ICacheConfig {
	for _, c := range timing.ICacheConfigs() {
		if strings.EqualFold(c.String(), name) {
			return c
		}
	}
	fmt.Fprintf(os.Stderr, "galsim: unknown adaptive i-cache %q\n", name)
	os.Exit(1)
	return 0
}

func printResult(r *core.Result) {
	s := r.Stats
	fmt.Printf("workload   %s\nconfig     %s\n", r.Workload, r.Config.Label())
	fmt.Printf("instrs     %d\n", s.Instructions)
	fmt.Printf("time       %.3f us\n", float64(r.TimeFS)/float64(timing.FemtosPerMicro))
	fmt.Printf("throughput %.3f instr/ns\n", r.IPnsec())
	if s.Branches > 0 {
		fmt.Printf("branches   %d  mispredicts %d (%.2f%%)\n",
			s.Branches, s.Mispredicts, 100*float64(s.Mispredicts)/float64(s.Branches))
	}
	fmt.Printf("loads      %d  stores %d  fp %d\n", s.Loads, s.Stores, s.FPOps)
	fmt.Printf("L1I        A %d  B %d  miss %d\n", s.ICacheA, s.ICacheB, s.ICacheMiss)
	fmt.Printf("L1D        A %d  B %d  miss %d\n", s.DCacheA, s.DCacheB, s.DCacheMiss)
	fmt.Printf("L2         A %d  B %d  miss %d  (mem %d)\n", s.L2A, s.L2B, s.L2Miss, s.MemAccesses)
	if s.Reconfigs > 0 {
		fmt.Printf("reconfigs  %d\n", s.Reconfigs)
	}
}
