// Command galsload is a closed-loop load-smoke driver for galsd: a fixed
// number of workers issue a mixed stream of warm runs (a small set of
// repeating requests that dedup and hit the cache), cold runs (unique
// seeds that always simulate) and quick design-space sweeps, then the
// driver reports exact client-side p50/p95/p99 latency and — the point of
// the exercise — scrapes GET /metrics and checks that the server's own
// histograms and counters tell the same story.
//
// Usage:
//
//	galsload -addr http://localhost:8347 -concurrency 8 -duration 10s
//	galsload -launch -galsd-bin ./bin/galsd     # spawn a throwaway server
//	galsload -requests 200 -assert              # CI smoke: fail on silence
//	galsload -launch -kill-after 5s             # crash/restart resume drill
//
// With -kill-after, galsload runs a restart drill instead of the load mix:
// it drives a full suite on a -launch'ed galsd, SIGKILLs the server
// mid-flight (after at least one progress checkpoint has been written),
// relaunches it over the same cache directory, re-issues the suite and
// reports resume efficiency — how many of the suite's simulation cells the
// checkpoint resume skipped versus recomputed.
//
// With -assert, the exit status is non-zero unless the scrape shows
// non-zero request-latency series, cache hits and completed cells —
// the "is observability actually wired" smoke test behind `make obs`.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gals/client"
	"gals/internal/metrics"
)

// warmSet is the repeating request mix: small windows (smoke, not
// benchmark), distinct benchmarks and modes so the server exercises
// record, replay, sync and adaptive paths.
var warmSet = []client.RunRequest{
	{Bench: "adpcm encode", Mode: "phase"},
	{Bench: "adpcm decode", Mode: "program"},
	{Bench: "epic encode", Mode: "sync"},
	{Bench: "jpeg compress", Mode: "phase"},
}

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8347", "galsd base URL")
		token       = flag.String("token", os.Getenv("GALSD_TOKEN"), "bearer token (default $GALSD_TOKEN)")
		concurrency = flag.Int("concurrency", 8, "closed-loop workers")
		duration    = flag.Duration("duration", 10*time.Second, "how long to drive load (ignored when -requests > 0)")
		requests    = flag.Int("requests", 0, "total request budget (0 = drive for -duration)")
		coldFrac    = flag.Float64("cold-frac", 0.25, "fraction of runs issued with a unique seed (always simulate)")
		sweepFrac   = flag.Float64("sweep-frac", 0.05, "fraction of requests that are quick phase-space sweeps")
		telFrac     = flag.Float64("telemetry-frac", 0, "fraction of runs issued with \"telemetry\":true, each followed by a GET /v1/telemetry/<digest> fetch of the artifact")
		window      = flag.Int64("window", 20_000, "instruction window per run")
		seed        = flag.Int64("seed", 1, "base seed for the request mix")
		launch      = flag.Bool("launch", false, "spawn a throwaway galsd (-galsd-bin) on a random port with a temp cache")
		galsdBin    = flag.String("galsd-bin", "galsd", "galsd binary for -launch")
		assert      = flag.Bool("assert", false, "exit non-zero unless the /metrics scrape shows non-zero latency, cache-hit and completed-cell series")
		killAfter   = flag.Duration("kill-after", 0, "restart drill: SIGKILL the -launch'ed galsd this long into a suite, relaunch it on the same cache and report resume efficiency (0 disables)")
		latency     = flag.Bool("latency", false, "single-run latency drill: p50/p95/p99 of cold and warm /v1/run on a sequential and a -run-parallel galsd (needs -launch; -requests sets samples per cell)")
		warmP95     = flag.Duration("assert-warm-p95", 0, "with -latency -assert: fail when either server's warm p95 exceeds this bound (0 = no bound)")
	)
	flag.Parse()

	if *concurrency < 1 || *coldFrac < 0 || *coldFrac > 1 || *sweepFrac < 0 || *sweepFrac > 1 || *telFrac < 0 || *telFrac > 1 || *killAfter < 0 {
		fmt.Fprintln(os.Stderr, "galsload: bad flags: need -concurrency >= 1, fractions in [0,1] and -kill-after >= 0")
		os.Exit(2)
	}
	if *latency {
		if !*launch {
			fmt.Fprintln(os.Stderr, "galsload: -latency needs -launch (the drill compares two server configurations it must own)")
			os.Exit(2)
		}
		if !latencyDrill(os.Stdout, *galsdBin, *token, *window, *seed, *requests, *assert, *warmP95) {
			os.Exit(1)
		}
		return
	}
	if *killAfter > 0 {
		if !*launch {
			fmt.Fprintln(os.Stderr, "galsload: -kill-after needs -launch (the drill must own the server process to kill it)")
			os.Exit(2)
		}
		if !killDrill(os.Stdout, *galsdBin, *token, *killAfter, *window, *seed, *assert) {
			os.Exit(1)
		}
		return
	}

	base := *addr
	if *launch {
		dir, err := os.MkdirTemp("", "galsload-cache-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "galsload:", err)
			os.Exit(1)
		}
		var stop func()
		base, stop, err = launchServer(*galsdBin, dir)
		if err != nil {
			os.RemoveAll(dir)
			fmt.Fprintln(os.Stderr, "galsload:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		defer stop()
	}

	cl := client.New(client.Options{BaseURL: base, Token: *token})
	if err := waitHealthy(cl, 10*time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "galsload:", err)
		os.Exit(1)
	}

	lat := drive(cl, driveConfig{
		concurrency: *concurrency, duration: *duration, requests: *requests,
		coldFrac: *coldFrac, sweepFrac: *sweepFrac, telFrac: *telFrac,
		window: *window, seed: *seed,
	})

	ok := report(os.Stdout, cl, base, lat, *assert)
	if !ok {
		os.Exit(1)
	}
}

type driveConfig struct {
	concurrency int
	duration    time.Duration
	requests    int
	coldFrac    float64
	sweepFrac   float64
	telFrac     float64
	window      int64
	seed        int64
}

type latencies struct {
	mu    sync.Mutex
	runs  []time.Duration // client-side latency of successful requests
	fails int

	// Telemetry exercise: runs issued with "telemetry":true, artifacts
	// fetched back by digest, and fetches that failed (or came back with
	// no digest at all).
	telRuns, telFetched, telFails int
}

func (l *latencies) add(d time.Duration, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err != nil {
		l.fails++
		return
	}
	l.runs = append(l.runs, d)
}

// drive runs the closed loop: each worker issues its next request as soon
// as the previous one completes, so offered load adapts to server capacity
// instead of queueing unboundedly.
func drive(cl *client.Client, cfg driveConfig) *latencies {
	lat := &latencies{}
	var issued atomic.Int64
	var coldSeq atomic.Int64
	budget := int64(cfg.requests)
	deadline := time.Now().Add(cfg.duration)

	// splitmix-style per-request mixing keeps the mix deterministic for a
	// given -seed without sharing one locked RNG across workers.
	frac := func(n int64) float64 {
		z := uint64(n)*0x9e3779b97f4a7c15 + uint64(cfg.seed)
		z ^= z >> 33
		z *= 0xff51afd7ed558ccd
		z ^= z >> 33
		return float64(z%1_000_000) / 1_000_000
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := issued.Add(1)
				if budget > 0 && n > budget {
					return
				}
				if budget <= 0 && time.Now().After(deadline) {
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				start := time.Now()
				var err error
				switch r := frac(n); {
				case r < cfg.sweepFrac:
					_, err = cl.Sweep(ctx, client.SweepRequest{
						Space: "phase", Bench: "adpcm encode",
						Window: cfg.window, Seed: cfg.seed,
					})
				case r < cfg.sweepFrac+cfg.coldFrac:
					req := warmSet[int(n)%len(warmSet)]
					req.Window = cfg.window
					// Unique seed: this exact request has never been
					// simulated, so it must miss the cache and compute.
					req.Seed = cfg.seed + 1_000_000 + coldSeq.Add(1)
					// A second, independent draw (offset stream) decides
					// whether this run also asks for the telemetry artifact.
					req.Telemetry = frac(n+7_777_777) < cfg.telFrac
					var res client.RunResult
					res, err = cl.Run(ctx, req)
					if err == nil && req.Telemetry {
						lat.fetchTelemetry(ctx, cl, res)
					}
				default:
					req := warmSet[int(n)%len(warmSet)]
					req.Window = cfg.window
					req.Seed = cfg.seed
					req.Telemetry = frac(n+7_777_777) < cfg.telFrac
					var res client.RunResult
					res, err = cl.Run(ctx, req)
					if err == nil && req.Telemetry {
						lat.fetchTelemetry(ctx, cl, res)
					}
				}
				lat.add(time.Since(start), err)
				cancel()
			}
		}()
	}
	wg.Wait()
	return lat
}

// fetchTelemetry rounds out one telemetry-enabled run: pull the artifact
// the digest names back through GET /v1/telemetry/<digest> and fold the
// outcome into the counters.
func (l *latencies) fetchTelemetry(ctx context.Context, cl *client.Client, res client.RunResult) {
	l.mu.Lock()
	l.telRuns++
	l.mu.Unlock()
	ok := false
	if res.Telemetry != "" {
		// A valid artifact can be empty (sync/program runs have no
		// controller boundaries); the round-trip check is the version.
		if tel, err := cl.Telemetry(ctx, res.Telemetry); err == nil && tel.Version > 0 {
			ok = true
		}
	}
	l.mu.Lock()
	if ok {
		l.telFetched++
	} else {
		l.telFails++
	}
	l.mu.Unlock()
}

// pctile returns the exact q-quantile (nearest-rank) of sorted samples.
func pctile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// report prints the client-side and server-side views and, with assert,
// returns false when the scrape shows a dead observability surface.
func report(w io.Writer, cl *client.Client, base string, lat *latencies, assert bool) bool {
	sort.Slice(lat.runs, func(i, j int) bool { return lat.runs[i] < lat.runs[j] })
	fmt.Fprintf(w, "galsload: %d ok, %d failed\n", len(lat.runs), lat.fails)
	fmt.Fprintf(w, "client-side latency: p50 %v  p95 %v  p99 %v\n",
		pctile(lat.runs, 0.50).Round(time.Microsecond),
		pctile(lat.runs, 0.95).Round(time.Microsecond),
		pctile(lat.runs, 0.99).Round(time.Microsecond))
	cs := cl.Stats()
	fmt.Fprintf(w, "client counters: calls %d attempts %d retries %d 429s %d 503s %d 504s %d transport %d breaker-opens %d\n",
		cs.Calls, cs.Attempts, cs.Retries, cs.RateLimited, cs.Unavailable, cs.Timeouts, cs.TransportErrors, cs.BreakerOpens)

	scrape, err := scrapeMetrics(base)
	if err != nil {
		fmt.Fprintf(w, "metrics scrape FAILED: %v\n", err)
		return !assert
	}
	runBuckets := scrape.Buckets("gals_http_request_seconds", metrics.Label{Key: "endpoint", Value: "/v1/run"})
	fmt.Fprintf(w, "server-side /v1/run latency: p50 %s  p95 %s  p99 %s (upper bucket bounds)\n",
		fmtSecs(metrics.Quantile(0.50, runBuckets)),
		fmtSecs(metrics.Quantile(0.95, runBuckets)),
		fmtSecs(metrics.Quantile(0.99, runBuckets)))
	hits, _ := scrape.Value("gals_cache_hits_total")
	misses, _ := scrape.Value("gals_cache_misses_total")
	completed, _ := scrape.Value("gals_pool_cells_completed_total")
	queued, _ := scrape.Value("gals_pool_queue_depth")
	simRuns, _ := scrape.Value("gals_sim_runs_total")
	fmt.Fprintf(w, "server counters: cache hits %.0f misses %.0f, cells completed %.0f (queue %.0f), sim runs %.0f\n",
		hits, misses, completed, queued, simRuns)
	if lat.telRuns > 0 {
		telRuns, _ := scrape.Value("gals_telemetry_runs_total")
		telBytes, _ := scrape.Value("gals_telemetry_bytes_total")
		fmt.Fprintf(w, "telemetry: %d runs requested it, %d artifacts fetched, %d failed; server serialized %.0f artifacts (%.0f bytes)\n",
			lat.telRuns, lat.telFetched, lat.telFails, telRuns, telBytes)
	}

	if !assert {
		return true
	}
	var dead []string
	var reqCount float64
	for _, b := range runBuckets {
		reqCount = b.CumulativeCount
	}
	if reqCount <= 0 {
		dead = append(dead, "gals_http_request_seconds{endpoint=\"/v1/run\"} has no observations")
	}
	if hits <= 0 {
		dead = append(dead, "gals_cache_hits_total is zero (warm traffic should hit)")
	}
	if completed <= 0 {
		dead = append(dead, "gals_pool_cells_completed_total is zero")
	}
	if len(lat.runs) == 0 {
		dead = append(dead, "no request succeeded")
	}
	if lat.telRuns > 0 && lat.telFetched == 0 {
		dead = append(dead, "telemetry was requested but no artifact round-tripped")
	}
	for _, d := range dead {
		fmt.Fprintf(w, "ASSERT FAILED: %s\n", d)
	}
	if len(dead) == 0 {
		fmt.Fprintln(w, "asserts passed: latency, cache-hit and cell series are live")
	}
	return len(dead) == 0
}

func fmtSecs(s float64) string {
	if s != s { // NaN: no observations
		return "n/a"
	}
	return fmt.Sprintf("<=%v", time.Duration(s*float64(time.Second)).Round(time.Microsecond))
}

// scrapeMetrics fetches and parses the Prometheus exposition.
func scrapeMetrics(base string) (*metrics.Scrape, error) {
	resp, err := http.Get(strings.TrimRight(base, "/") + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return metrics.Parse(resp.Body)
}

func waitHealthy(cl *client.Client, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		err := cl.Health(ctx)
		cancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not healthy after %v: %w", timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// launchServer spawns a throwaway galsd on a kernel-chosen port over the
// given cache directory and parses the announced address from its startup
// line. The returned stop SIGKILLs the server and reaps it; the cache
// directory is the caller's to remove — or to relaunch over, which is how
// the restart drill proves a killed server's checkpoints resume.
func launchServer(bin, dir string, extra ...string) (base string, stop func(), err error) {
	args := append([]string{"-addr", "127.0.0.1:0", "-cache", dir}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, fmt.Errorf("starting %s: %w", bin, err)
	}
	stop = func() {
		cmd.Process.Kill()
		cmd.Wait()
	}

	// The first stdout line announces the bound address:
	//   galsd: listening on 127.0.0.1:43210 (http, cache "...")
	sc := bufio.NewScanner(out)
	addrc := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "galsd: listening on "); ok {
				addrc <- strings.Fields(rest)[0]
			}
		}
	}()
	select {
	case a := <-addrc:
		return "http://" + a, stop, nil
	case <-time.After(10 * time.Second):
		stop()
		return "", nil, fmt.Errorf("%s did not announce a listen address within 10s", bin)
	}
}

// killDrill is the -kill-after restart drill: launch galsd with a short
// checkpoint interval, drive a full suite, SIGKILL the server mid-flight
// once at least one progress checkpoint has been written, relaunch it over
// the SAME cache directory and re-issue the identical suite. The rerun's
// /v1/stats then show how much work the checkpoint resume saved.
func killDrill(w io.Writer, bin, token string, killAfter time.Duration, window, seed int64, assert bool) bool {
	dir, err := os.MkdirTemp("", "galsload-drill-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "galsload:", err)
		return false
	}
	defer os.RemoveAll(dir)

	// Checkpoint a few times before the kill lands, whatever -kill-after is.
	ckpt := killAfter / 3
	if ckpt < 200*time.Millisecond {
		ckpt = 200 * time.Millisecond
	}
	extra := []string{"-checkpoint-interval", ckpt.String()}

	base, stop, err := launchServer(bin, dir, extra...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "galsload:", err)
		return false
	}
	cl := client.New(client.Options{BaseURL: base, Token: token})
	if err := waitHealthy(cl, 10*time.Second); err != nil {
		stop()
		fmt.Fprintln(os.Stderr, "galsload:", err)
		return false
	}

	req := client.SuiteRequest{Window: window, Seed: seed}
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		defer cancel()
		_, err := cl.Suite(ctx, req)
		done <- err
	}()

	// Wait out -kill-after, then hold the trigger until the first
	// checkpoint write is visible in /v1/stats — killing before any
	// checkpoint landed would only demonstrate a cold rerun.
	finished := false
	select {
	case <-done:
		finished = true
	case <-time.After(killAfter):
	}
	for deadline := time.Now().Add(30 * time.Second); !finished && time.Now().Before(deadline); {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		st, err := cl.ServerStats(ctx)
		cancel()
		if err == nil && st.CheckpointsWritten >= 1 {
			break
		}
		select {
		case <-done:
			finished = true
		case <-time.After(150 * time.Millisecond):
		}
	}
	if finished {
		stop()
		fmt.Fprintf(w, "galsload: suite finished in %v, before -kill-after %v left anything to resume (raise -window or lower -kill-after)\n",
			time.Since(start).Round(time.Millisecond), killAfter)
		return !assert
	}
	killedAfter := time.Since(start)
	stop() // SIGKILL: no drain, no flush — only the periodic checkpoints survive
	fmt.Fprintf(w, "galsload: SIGKILLed galsd %v into the suite (checkpoint interval %v)\n",
		killedAfter.Round(time.Millisecond), ckpt)

	base, stop, err = launchServer(bin, dir, extra...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "galsload: relaunch:", err)
		return false
	}
	defer stop()
	cl = client.New(client.Options{BaseURL: base, Token: token})
	if err := waitHealthy(cl, 10*time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "galsload:", err)
		return false
	}

	restart := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	_, err = cl.Suite(ctx, req)
	cancel()
	if err != nil {
		fmt.Fprintln(os.Stderr, "galsload: rerun suite:", err)
		return false
	}
	rerun := time.Since(restart)

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	st, err := cl.ServerStats(sctx)
	scancel()
	if err != nil {
		fmt.Fprintln(os.Stderr, "galsload: stats:", err)
		return false
	}

	// The relaunched process's counters start at zero, so Completed is
	// exactly the rerun's computed cells and ResumedCells the skipped ones.
	total := st.ResumedCells + st.Completed
	eff := 0.0
	if total > 0 {
		eff = 100 * float64(st.ResumedCells) / float64(total)
	}
	fmt.Fprintf(w, "restart drill: first leg killed at %v, rerun completed in %v\n",
		killedAfter.Round(time.Millisecond), rerun.Round(time.Millisecond))
	fmt.Fprintf(w, "resume: %d checkpoints restored, %d cells skipped, %d cells computed after restart — %.1f%% resume efficiency\n",
		st.CheckpointsResumed, st.ResumedCells, st.Completed, eff)

	if !assert {
		return true
	}
	var dead []string
	if st.CheckpointsResumed < 1 {
		dead = append(dead, "no checkpoint was resumed after the restart")
	}
	if st.ResumedCells <= 0 {
		dead = append(dead, "the resume skipped zero completed cells")
	}
	for _, d := range dead {
		fmt.Fprintf(w, "ASSERT FAILED: %s\n", d)
	}
	if len(dead) == 0 {
		fmt.Fprintln(w, "asserts passed: the restarted server resumed the suite from checkpoint")
	}
	return len(dead) == 0
}

// latencyCell is one (server config, temperature) cell of the latency
// drill: sorted client-side samples.
type latencyCell []time.Duration

func (c latencyCell) String() string {
	return fmt.Sprintf("p50 %-10v p95 %-10v p99 %v",
		pctile(c, 0.50).Round(time.Microsecond),
		pctile(c, 0.95).Round(time.Microsecond),
		pctile(c, 0.99).Round(time.Microsecond))
}

// latencyDrill is the -latency mode: launch galsd twice over private caches
// — once plain, once with -run-parallel — and measure single-run /v1/run
// latency in a 2x2 grid: cold (unique seed, always simulates) and warm
// (repeated request, cache hit) on each server. Workers are fixed at 4 so
// the parallel server always has idle slots to borrow; the drill issues one
// request at a time, which is exactly the latency story -run-parallel
// exists for. With assert, the drill fails when any cell is empty, when the
// parallel server never actually ran a parallel simulation, or when a
// -assert-warm-p95 bound is given and either warm cell's p95 exceeds it.
func latencyDrill(w io.Writer, bin, token string, window, seed int64, runs int, assert bool, warmP95Bound time.Duration) bool {
	if runs <= 0 {
		runs = 30
	}
	legs := []struct {
		name  string
		extra []string
	}{
		{"sequential", []string{"-workers", "4"}},
		{"parallel", []string{"-workers", "4", "-run-parallel"}},
	}
	cells := map[string]latencyCell{}
	parallelRuns := 0.0
	for _, leg := range legs {
		dir, err := os.MkdirTemp("", "galsload-latency-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "galsload:", err)
			return false
		}
		base, stop, err := launchServer(bin, dir, leg.extra...)
		if err != nil {
			os.RemoveAll(dir)
			fmt.Fprintln(os.Stderr, "galsload:", err)
			return false
		}
		cl := client.New(client.Options{BaseURL: base, Token: token})
		if err := waitHealthy(cl, 10*time.Second); err != nil {
			stop()
			os.RemoveAll(dir)
			fmt.Fprintln(os.Stderr, "galsload:", err)
			return false
		}

		issue := func(req client.RunRequest) (time.Duration, error) {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			start := time.Now()
			_, err := cl.Run(ctx, req)
			return time.Since(start), err
		}
		// Cold: every request carries a never-seen seed, so each one
		// simulates. The first request also pays trace recording; it is
		// issued unmeasured so the cells compare simulation latency.
		if _, err := issue(client.RunRequest{Bench: "gcc", Window: window, Seed: seed + 999_999}); err != nil {
			fmt.Fprintln(os.Stderr, "galsload: prime:", err)
		}
		var cold, warm latencyCell
		for i := 0; i < runs; i++ {
			d, err := issue(client.RunRequest{Bench: "gcc", Window: window, Seed: seed + 1_000_000 + int64(i)})
			if err == nil {
				cold = append(cold, d)
			}
		}
		// Warm: one fixed request; the first issue fills the cache, the
		// measured ones hit it.
		warmReq := client.RunRequest{Bench: "gcc", Window: window, Seed: seed}
		if _, err := issue(warmReq); err != nil {
			fmt.Fprintln(os.Stderr, "galsload: warm prime:", err)
		}
		for i := 0; i < runs; i++ {
			d, err := issue(warmReq)
			if err == nil {
				warm = append(warm, d)
			}
		}
		sort.Slice(cold, func(i, j int) bool { return cold[i] < cold[j] })
		sort.Slice(warm, func(i, j int) bool { return warm[i] < warm[j] })
		cells[leg.name+"/cold"] = cold
		cells[leg.name+"/warm"] = warm
		if leg.name == "parallel" {
			if sc, err := scrapeMetrics(base); err == nil {
				parallelRuns, _ = sc.Value("gals_sim_runs_parallel_total")
			}
		}
		stop()
		os.RemoveAll(dir)
	}

	fmt.Fprintf(w, "single-run latency (bench gcc, window %d, %d samples per cell):\n", window, runs)
	for _, leg := range legs {
		fmt.Fprintf(w, "  %-10s  cold: %s\n", leg.name, cells[leg.name+"/cold"])
		fmt.Fprintf(w, "  %-10s  warm: %s\n", "", cells[leg.name+"/warm"])
	}
	if sp, pp := pctile(cells["sequential/cold"], 0.50), pctile(cells["parallel/cold"], 0.50); sp > 0 && pp > 0 {
		fmt.Fprintf(w, "cold p50 parallel/sequential: %.2fx speedup (>1 = parallel faster; needs free cores to win)\n",
			float64(sp)/float64(pp))
	}
	fmt.Fprintf(w, "parallel server: %.0f parallel simulation runs\n", parallelRuns)

	if !assert {
		return true
	}
	var dead []string
	for _, leg := range legs {
		for _, temp := range []string{"cold", "warm"} {
			if len(cells[leg.name+"/"+temp]) == 0 {
				dead = append(dead, fmt.Sprintf("no %s/%s request succeeded", leg.name, temp))
			}
		}
	}
	if parallelRuns <= 0 {
		dead = append(dead, "gals_sim_runs_parallel_total is zero on the -run-parallel server")
	}
	if warmP95Bound > 0 {
		for _, leg := range legs {
			if p := pctile(cells[leg.name+"/warm"], 0.95); p > warmP95Bound {
				dead = append(dead, fmt.Sprintf("%s warm p95 %v exceeds bound %v", leg.name, p, warmP95Bound))
			}
		}
	}
	for _, d := range dead {
		fmt.Fprintf(w, "ASSERT FAILED: %s\n", d)
	}
	if len(dead) == 0 {
		fmt.Fprintln(w, "asserts passed: all latency cells live, parallel runs observed")
	}
	return len(dead) == 0
}
