// Command sweep performs the paper's design-space explorations
// (Section 4) and prints a draft of Figure 6:
//
//   - search the 1,024-point fully synchronous space for the best overall
//     machine,
//   - search the 256-point adaptive MCD space per application
//     (Program-Adaptive),
//   - run the Phase-Adaptive machine with its on-line controllers,
//
// then report per-application percent improvements over the best
// synchronous design and the suite means.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"gals/internal/resultcache"
	"gals/internal/sweep"
	"gals/internal/timing"
	"gals/internal/workload"
)

func main() {
	var (
		window  = flag.Int64("window", 30_000, "instruction window per run")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		pll     = flag.Float64("pllscale", 0.1, "PLL lock-time scale")
		quick   = flag.Bool("quick", false, "prune the synchronous space to direct-mapped I-caches (5x faster)")
		only    = flag.String("bench", "", "restrict to one benchmark (adaptive stages only)")
		cache   = flag.String("cache", "", "persistent result cache directory (repeated sweeps become incremental)")
	)
	flag.Parse()

	if *window <= 0 {
		fmt.Fprintf(os.Stderr, "sweep: -window must be positive, got %d\n", *window)
		os.Exit(2)
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "sweep: -workers must be >= 0, got %d\n", *workers)
		os.Exit(2)
	}
	if !(*pll >= 0) { // negated form rejects NaN too
		fmt.Fprintf(os.Stderr, "sweep: -pllscale must be >= 0, got %g\n", *pll)
		os.Exit(2)
	}
	if *cache != "" {
		c, err := resultcache.Open(*cache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		sweep.SetPersist(c)
	}

	opts := sweep.Options{Window: *window, Workers: *workers, PLLScale: *pll}.WithDefaults()
	*window = opts.Window
	// One shared recorded-trace pool: each benchmark's deterministic stream
	// is generated once and replayed by every configuration run of all
	// three sweep stages.
	opts.Traces = workload.NewPool(opts.Window)
	specs := workload.Suite()
	if *only != "" {
		s, ok := workload.ByName(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "sweep: unknown benchmark %q\n", *only)
			os.Exit(1)
		}
		specs = []workload.Spec{s}
	}

	syncCfgs := sweep.SyncSpace()
	if *quick {
		syncCfgs = sweep.QuickSyncSpace()
	}

	start := time.Now()
	fmt.Printf("sync sweep: %d configs x %d benchmarks, window %d\n", len(syncCfgs), len(specs), *window)
	syncTimes := sweep.Measure(specs, syncCfgs, opts)
	bestSync := sweep.BestOverall(syncTimes)
	if bestSync < 0 {
		fmt.Fprintln(os.Stderr, "sweep: synchronous sweep produced no finite run times")
		os.Exit(1)
	}
	fmt.Printf("best overall synchronous: %s  (%.1fs)\n", syncCfgs[bestSync].Label(), time.Since(start).Seconds())

	// Show the ranking of the synchronous space (geomean run time relative
	// to the best) for the most informative configurations.
	type ranked struct {
		ci    int
		score float64
	}
	var rank []ranked
	for ci := range syncCfgs {
		s := 0.0
		for _, t := range syncTimes[ci] {
			if t <= 0 { // no valid measurement: disqualify, as BestOverall does
				s = math.Inf(1)
				break
			}
			s += math.Log(float64(t))
		}
		rank = append(rank, ranked{ci, s})
	}
	sort.Slice(rank, func(i, j int) bool { return rank[i].score < rank[j].score })
	n := float64(len(specs))
	fmt.Println("top synchronous configurations (geomean vs best):")
	for i := 0; i < 10 && i < len(rank); i++ {
		rel := math.Exp((rank[i].score - rank[0].score) / n)
		fmt.Printf("  %2d. %-44s %+.2f%%\n", i+1, syncCfgs[rank[i].ci].Label(), (rel-1)*100)
	}
	for i, r := range rank {
		c := syncCfgs[r.ci]
		if timing.SyncICacheSpecs()[c.SyncICache].Name == "64k1W" && c.DCache == timing.DCache32K1W &&
			c.IntIQ == timing.IQ16 && c.FPIQ == timing.IQ16 {
			rel := math.Exp((r.score - rank[0].score) / n)
			fmt.Printf("  paper's best-sync config ranks #%d: %-30s %+.2f%%\n", i+1, c.Label(), (rel-1)*100)
		}
	}
	fmt.Println()

	adCfgs := sweep.AdaptiveSpace()
	fmt.Printf("adaptive sweep: %d configs x %d benchmarks\n", len(adCfgs), len(specs))
	adTimes := sweep.Measure(specs, adCfgs, opts)
	bestPer := sweep.BestPerApp(adTimes)

	phase := sweep.PhaseResults(specs, opts)

	fmt.Printf("\n%-18s %11s %11s %8s %8s   %s\n", "benchmark", "t_sync(us)", "t_prog(us)", "prog%", "phase%", "best adaptive config")
	var sumProg, sumPhase float64
	for si, spec := range specs {
		ts := syncTimes[bestSync][si]
		tp := adTimes[bestPer[si]][si]
		tph := phase[si].TimeFS
		ip := sweep.Improvement(ts, tp)
		iph := sweep.Improvement(ts, tph)
		sumProg += ip
		sumPhase += iph
		fmt.Printf("%-18s %11.2f %11.2f %+8.1f %+8.1f   %s\n",
			spec.Name, us(ts), us(tp), ip, iph, adCfgs[bestPer[si]].Label())
	}
	fmt.Printf("\nmean improvement: program-adaptive %+.1f%%  phase-adaptive %+.1f%%  (paper: +17.6%% / +20.4%%)\n",
		sumProg/n, sumPhase/n)
	fmt.Printf("total sweep time %.1fs\n", time.Since(start).Seconds())
}

func us(fs int64) float64 { return float64(fs) / 1e9 }
