// Command sweep performs the paper's design-space explorations
// (Section 4) and prints a draft of Figure 6:
//
//   - search the 1,024-point fully synchronous space for the best overall
//     machine,
//   - search the 256-point adaptive MCD space per application
//     (Program-Adaptive),
//   - run the Phase-Adaptive machine with its on-line controllers,
//
// then report per-application percent improvements over the best
// synchronous design and the suite means.
//
// By default the sweeps stream per-cell results into running accumulators
// (O(configs + benchmarks) memory); with -cache, each benchmark's trace is
// recorded once to an mmap-replayed slab under <cache>/recordings, so
// paper-scale windows (-window 1000000 and up) run in bounded heap.
// -fullmatrix retains the whole [config][benchmark] matrix instead (the
// historical path; needed only when every cell must be inspected).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"gals/internal/control"
	"gals/internal/core"
	_ "gals/internal/learn" // registers the "learned" policy
	"gals/internal/recstore"
	"gals/internal/resultcache"
	"gals/internal/sweep"
	"gals/internal/timing"
	"gals/internal/workload"
)

func main() {
	var (
		window   = flag.Int64("window", 30_000, "instruction window per run")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		pll      = flag.Float64("pllscale", 0.1, "PLL lock-time scale")
		quick    = flag.Bool("quick", false, "prune the synchronous space to direct-mapped I-caches (5x faster)")
		only     = flag.String("bench", "", "restrict to one benchmark (adaptive stages only)")
		cache    = flag.String("cache", "", "persistent cache directory: results + mmap-replayed recordings (repeated sweeps become incremental)")
		fullmat  = flag.Bool("fullmatrix", false, "retain the full [config][benchmark] times matrix instead of streaming accumulators")
		memstats = flag.Bool("memstats", false, "report peak heap and peak RSS after the sweep")
		topk     = flag.Int("topk", 0, "retain only the K best configurations for the ranking report (memory stops scaling with design-space size; 0 = full scores)")
		policies = flag.String("policies", "", `adaptation-policy sweep: settings as "name[:k=v,k=v][@blobfile]" separated by ';' (e.g. "paper;frozen;interval:interval=7500;learned@weights.json"); runs an extra Phase-Adaptive policy stage`)
	)
	flag.Parse()

	if *window <= 0 {
		fmt.Fprintf(os.Stderr, "sweep: -window must be positive, got %d\n", *window)
		os.Exit(2)
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "sweep: -workers must be >= 0, got %d\n", *workers)
		os.Exit(2)
	}
	if !(*pll >= 0) { // negated form rejects NaN too
		fmt.Fprintf(os.Stderr, "sweep: -pllscale must be >= 0, got %g\n", *pll)
		os.Exit(2)
	}
	if *topk < 0 {
		fmt.Fprintf(os.Stderr, "sweep: -topk must be >= 0, got %d\n", *topk)
		os.Exit(2)
	}
	settings, err := parsePolicies(*policies)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}
	if *cache != "" {
		c, err := resultcache.Open(*cache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		sweep.SetPersist(c)
		st, err := recstore.Open(filepath.Join(*cache, recstore.Subdir))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		sweep.SetRecordings(st)
	}

	stopSampler := (func())(nil)
	if *memstats {
		stopSampler = startHeapSampler()
	}

	opts := sweep.Options{Window: *window, Workers: *workers, PLLScale: *pll, TopK: *topk}.WithDefaults()
	*window = opts.Window
	// One shared recorded-trace pool: each benchmark's deterministic stream
	// is captured once (on disk when -cache is set, in memory otherwise)
	// and replayed by every configuration run of all three sweep stages.
	opts.Traces = sweep.NewRecordingPool(opts.Window)
	specs := workload.Suite()
	if *only != "" {
		s, ok := workload.ByName(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "sweep: unknown benchmark %q\n", *only)
			os.Exit(1)
		}
		specs = []workload.Spec{s}
	}

	syncCfgs := sweep.SyncSpace()
	if *quick {
		syncCfgs = sweep.QuickSyncSpace()
	}

	// measure runs one design space through the chosen engine: streaming
	// summaries by default, the retained full matrix under -fullmatrix.
	measure := func(cfgs []core.Config) *sweep.Summary {
		if *fullmat {
			return sweep.Summarize(sweep.Measure(specs, cfgs, opts))
		}
		sum, err := sweep.MeasureSummary(specs, cfgs, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		return sum
	}

	start := time.Now()
	fmt.Printf("sync sweep: %d configs x %d benchmarks, window %d\n", len(syncCfgs), len(specs), *window)

	syncSum := measure(syncCfgs)
	if syncSum.Best < 0 {
		fmt.Fprintln(os.Stderr, "sweep: synchronous sweep produced no finite run times")
		os.Exit(1)
	}
	fmt.Printf("best overall synchronous: %s  (%.1fs)\n", syncCfgs[syncSum.Best].Label(), time.Since(start).Seconds())

	// Show the ranking of the synchronous space (geomean run time relative
	// to the best) for the most informative configurations. With -topk the
	// sweep retained only the K best scores (Summary.Top); otherwise the
	// full Scores slice is sorted here.
	var rank []sweep.RankedConfig
	if *topk > 0 {
		rank = syncSum.Top
		if len(rank) == 0 && syncSum.Scores != nil { // -fullmatrix retains scores
			rank = syncSum.TopOf(*topk)
		}
	} else {
		for ci := range syncCfgs {
			s := syncSum.Scores[ci]
			if syncSum.Invalid[ci] { // no valid measurement: disqualify
				s = math.Inf(1)
			}
			rank = append(rank, sweep.RankedConfig{Config: ci, Score: s})
		}
		sort.Slice(rank, func(i, j int) bool { return rank[i].Score < rank[j].Score })
	}
	n := float64(len(specs))
	fmt.Println("top synchronous configurations (geomean vs best):")
	for i := 0; i < 10 && i < len(rank); i++ {
		rel := math.Exp((rank[i].Score - rank[0].Score) / n)
		fmt.Printf("  %2d. %-44s %+.2f%%\n", i+1, syncCfgs[rank[i].Config].Label(), (rel-1)*100)
	}
	for i, r := range rank {
		c := syncCfgs[r.Config]
		if timing.SyncICacheSpecs()[c.SyncICache].Name == "64k1W" && c.DCache == timing.DCache32K1W &&
			c.IntIQ == timing.IQ16 && c.FPIQ == timing.IQ16 {
			rel := math.Exp((r.Score - rank[0].Score) / n)
			fmt.Printf("  paper's best-sync config ranks #%d: %-30s %+.2f%%\n", i+1, c.Label(), (rel-1)*100)
		}
	}
	fmt.Println()

	adCfgs := sweep.AdaptiveSpace()
	fmt.Printf("adaptive sweep: %d configs x %d benchmarks\n", len(adCfgs), len(specs))
	adSum := measure(adCfgs)

	phase := sweep.PhaseResults(specs, opts)

	fmt.Printf("\n%-18s %11s %11s %8s %8s   %s\n", "benchmark", "t_sync(us)", "t_prog(us)", "prog%", "phase%", "best adaptive config")
	var sumProg, sumPhase float64
	for si, spec := range specs {
		ts := syncSum.BestTimes[si]
		tp := adSum.PerAppTimes[si]
		tph := phase[si].TimeFS
		ip := sweep.Improvement(ts, tp)
		iph := sweep.Improvement(ts, tph)
		sumProg += ip
		sumPhase += iph
		fmt.Printf("%-18s %11.2f %11.2f %+8.1f %+8.1f   %s\n",
			spec.Name, us(ts), us(tp), ip, iph, adCfgs[adSum.PerApp[si]].Label())
	}
	fmt.Printf("\nmean improvement: program-adaptive %+.1f%%  phase-adaptive %+.1f%%  (paper: +17.6%% / +20.4%%)\n",
		sumProg/n, sumPhase/n)

	// Optional adaptation-policy stage: the same benchmarks swept across
	// Phase-Adaptive machines that differ only in their control policy.
	if len(settings) > 0 {
		fmt.Printf("\npolicy sweep: %d policies x %d benchmarks\n", len(settings), len(specs))
		polCfgs := sweep.PhaseSpace(settings)
		// Summarize applies the module's ranking guards (a non-positive run
		// time disqualifies a policy instead of poisoning the geomean).
		polSum := sweep.Summarize(sweep.Measure(specs, polCfgs, opts))
		fmt.Printf("%-40s %12s %10s\n", "policy", "geomean(us)", "vs first")
		for i, ps := range settings {
			label := ps.Name
			if ps.Params != "" {
				label += "{" + ps.Params + "}"
			}
			if polSum.Invalid[i] {
				fmt.Printf("%-40s %12s %10s\n", label, "-", "invalid")
				continue
			}
			geo := math.Exp(polSum.Scores[i] / n)
			if polSum.Invalid[0] {
				fmt.Printf("%-40s %12.2f %10s\n", label, geo/1e9, "n/a")
				continue
			}
			rel := math.Exp((polSum.Scores[i] - polSum.Scores[0]) / n)
			fmt.Printf("%-40s %12.2f %+9.2f%%\n", label, geo/1e9, (rel-1)*100)
		}
	}
	fmt.Printf("total sweep time %.1fs\n", time.Since(start).Seconds())

	if stopSampler != nil {
		stopSampler()
	}
}

// parsePolicies parses the -policies flag: settings separated by ';', each
// "name", "name:key=value,key=value" or either form followed by
// "@blobfile" (a weights-artifact file for blob-requiring policies),
// validated against the policy registry.
func parsePolicies(s string) ([]sweep.PolicySetting, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []sweep.PolicySetting
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var blobFile string
		if at := strings.LastIndex(part, "@"); at >= 0 {
			part, blobFile = part[:at], strings.TrimSpace(part[at+1:])
		}
		name, params, _ := strings.Cut(part, ":")
		ps := sweep.PolicySetting{Name: strings.TrimSpace(name), Params: strings.TrimSpace(params)}
		if blobFile != "" {
			blob, err := os.ReadFile(blobFile)
			if err != nil {
				return nil, err
			}
			ps.Blob = string(blob)
		}
		if err := control.ValidateSelection(ps.Name, ps.Params, ps.Blob); err != nil {
			return nil, err
		}
		out = append(out, ps)
	}
	return out, nil
}

func us(fs int64) float64 { return float64(fs) / 1e9 }

// startHeapSampler polls the Go heap every 50 ms and, on stop, reports the
// peak heap observed alongside the process's peak RSS (VmHWM, which also
// counts resident mmap'd recording pages — the gap between the two numbers
// is the file-backed memory the recording store moved out of the heap).
func startHeapSampler() (stop func()) {
	var peak atomic.Int64
	done := make(chan struct{})
	finished := make(chan struct{})
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if h := int64(ms.HeapInuse); h > peak.Load() {
			peak.Store(h)
		}
	}
	go func() {
		defer close(finished)
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-done:
				sample()
				return
			case <-t.C:
				sample()
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		fmt.Printf("peak heap in use: %.1f MB\n", float64(peak.Load())/(1<<20))
		if hwm, ok := vmHWM(); ok {
			fmt.Printf("peak RSS (incl. mmap'd recordings): %.1f MB\n", float64(hwm)/(1<<20))
		}
	}
}

// vmHWM reads the process's peak resident set size from /proc (Linux).
func vmHWM() (int64, bool) {
	blob, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(blob), "\n") {
		var kb int64
		if n, _ := fmt.Sscanf(line, "VmHWM: %d kB", &kb); n == 1 {
			return kb * 1024, true
		}
	}
	return 0, false
}
