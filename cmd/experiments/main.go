// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                  # every static table/figure (fast)
//	experiments -run figure6     # one experiment
//	experiments -all             # everything, including the sweeps
//	experiments -all -full -window 100000 > results.txt
//	experiments -run policies    # frozen-vs-paper adaptation benefit
//	experiments -run controllers # paper vs feedback vs learned, per benchmark
//	experiments -run figure6 -policy interval -policy-params interval=7500
//	experiments -run figure6 -policy learned -policy-blob weights.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gals"
)

// static experiments need no simulation and always run quickly.
var static = map[string]bool{
	"table1": true, "table2": true, "table3": true, "table4": true,
	"table5": true, "table6": true, "table7": true, "table8": true,
	"figure2": true, "figure3": true, "figure4": true,
}

func main() {
	var (
		run     = flag.String("run", "", "comma-separated experiment IDs (default: all static)")
		all     = flag.Bool("all", false, "run everything including the design-space sweeps")
		window  = flag.Int64("window", 100_000, "instruction window per simulation run")
		workers = flag.Int("workers", 0, "sweep parallelism (0 = GOMAXPROCS)")
		full    = flag.Bool("full", false, "sweep all 1,024 synchronous configurations (paper scale)")
		pll     = flag.Float64("pllscale", 0.1, "PLL lock-time scale")
		cache   = flag.String("cache", "", "persistent result cache directory (repeated invocations become incremental)")
		policy  = flag.String("policy", "", "adaptation policy for the Phase-Adaptive stages (paper, interval, frozen, feedback, learned); empty = paper")
		polPar  = flag.String("policy-params", "", "policy parameters as key=value[,key=value...]")
		polBlob = flag.String("policy-blob", "", "weights-artifact file for blob-requiring policies (galsim -train-policy writes one; the controllers experiment trains its own when omitted)")
	)
	flag.Parse()

	if *window <= 0 {
		fmt.Fprintf(os.Stderr, "experiments: -window must be positive, got %d\n", *window)
		os.Exit(2)
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -workers must be >= 0, got %d\n", *workers)
		os.Exit(2)
	}
	if !(*pll >= 0) { // negated form rejects NaN too
		fmt.Fprintf(os.Stderr, "experiments: -pllscale must be >= 0, got %g\n", *pll)
		os.Exit(2)
	}
	blob := ""
	if *polBlob != "" {
		raw, err := os.ReadFile(*polBlob)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		blob = string(raw)
	}
	if *policy != "" || *polPar != "" {
		if err := gals.ValidatePolicySelection(*policy, *polPar, blob); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
	} else if blob != "" {
		// A bare -policy-blob feeds the controllers experiment's learned
		// column (the Phase-Adaptive stages of other experiments keep the
		// default paper policy), so validate it as a learned artifact.
		if err := gals.ValidatePolicySelection("learned", "", blob); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
	}
	if *cache != "" {
		if err := gals.UsePersistentCache(*cache); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	opts := gals.DefaultExperimentOptions()
	opts.Window = *window
	opts.Workers = *workers
	opts.FullSyncSpace = *full
	opts.PLLScale = *pll
	opts.Policy = *policy
	opts.PolicyParams = *polPar
	opts.PolicyBlob = blob

	var ids []string
	switch {
	case *run != "":
		ids = strings.Split(*run, ",")
	case *all:
		ids = gals.Experiments()
	default:
		for _, id := range gals.Experiments() {
			if static[id] {
				ids = append(ids, id)
			}
		}
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		t, err := gals.RunExperiment(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
		if d := time.Since(start); d > time.Second {
			fmt.Printf("(%s took %.1fs)\n", id, d.Seconds())
		}
		fmt.Println()
	}
}
