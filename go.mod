module gals

go 1.24
