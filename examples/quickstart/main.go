// Quickstart: run one benchmark on the best fully synchronous machine and
// on the Phase-Adaptive GALS machine, and print the improvement — the
// paper's headline comparison, on one workload.
package main

import (
	"fmt"
	"log"

	"gals"
)

func main() {
	const window = 100_000

	spec, err := gals.Workload("gcc")
	if err != nil {
		log.Fatal(err)
	}

	syncRes, err := gals.Run(spec, gals.DefaultSynchronous(), window)
	if err != nil {
		log.Fatal(err)
	}
	phaseRes, err := gals.Run(spec, gals.DefaultPhaseAdaptive(), window)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark: %s (%s)\n\n", spec.Name, spec.Suite)
	fmt.Printf("%-22s %12s %14s\n", "machine", "time (us)", "instr/ns")
	for _, r := range []*gals.Result{syncRes, phaseRes} {
		fmt.Printf("%-22s %12.2f %14.3f\n",
			r.Config.Mode, r.Seconds()*1e6, r.IPnsec())
	}
	fmt.Printf("\nphase-adaptive improvement over synchronous: %+.1f%%\n",
		gals.Improvement(syncRes.TimeFS, phaseRes.TimeFS))
	fmt.Printf("reconfigurations performed by the controllers: %d\n",
		phaseRes.Stats.Reconfigs)
}
