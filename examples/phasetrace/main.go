// Phasetrace reproduces the behaviour of paper Figure 7: it runs the
// Phase-Adaptive machine on apsi (periodic data working-set phases) and on
// art (periodic ILP phases) and renders each structure's configuration
// over time as an ASCII step plot.
package main

import (
	"fmt"
	"log"
	"strings"

	"gals"
)

const window = 150_000

func main() {
	trace("apsi", "dcache", []string{"32k1W/256k1W", "64k2W/512k2W", "128k4W/1024k4W", "256k8W/2048k8W"})
	fmt.Println()
	trace("art", "int-iq", []string{"16", "32", "48", "64"})
}

func trace(bench, kind string, labels []string) {
	spec, err := gals.Workload(bench)
	if err != nil {
		log.Fatal(err)
	}
	cfg := gals.DefaultPhaseAdaptive()
	cfg.RecordTrace = true
	res, err := gals.Run(spec, cfg, window)
	if err != nil {
		log.Fatal(err)
	}

	// Build the configuration-index timeline from the reconfiguration
	// events (index 0 at start).
	const buckets = 72
	timeline := make([]int, buckets)
	level := 0
	events := res.Stats.ReconfigEvents
	next := 0
	for b := 0; b < buckets; b++ {
		instr := int64(b) * window / buckets
		for next < len(events) && events[next].Instr <= instr {
			if events[next].Kind == kind {
				level = events[next].Index
			}
			next++
		}
		timeline[b] = level
	}

	fmt.Printf("%s: %s configuration over %d instructions (Phase-Adaptive)\n", bench, kind, window)
	for lvl := len(labels) - 1; lvl >= 0; lvl-- {
		var b strings.Builder
		for _, v := range timeline {
			if v == lvl {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		fmt.Printf("%16s |%s|\n", labels[lvl], b.String())
	}
	fmt.Printf("%16s  0%*s%d\n", "instructions", buckets-1, "", window)
	count := 0
	for _, e := range events {
		if e.Kind == kind {
			count++
		}
	}
	fmt.Printf("%d %s reconfigurations in the window\n", count, kind)
}
