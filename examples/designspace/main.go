// Designspace explores the adaptive MCD configuration space for one
// benchmark — the per-application exhaustive search that defines the
// paper's Program-Adaptive mode (Section 4) — and reports how each
// structure's sizing trades frequency against hit rates and parallelism.
package main

import (
	"flag"
	"fmt"
	"log"

	"gals"
)

func main() {
	bench := flag.String("bench", "em3d", "benchmark to explore")
	window := flag.Int64("window", 60_000, "instruction window per configuration")
	flag.Parse()

	spec, err := gals.Workload(*bench)
	if err != nil {
		log.Fatal(err)
	}

	// Record the benchmark's deterministic stream once; every configuration
	// below replays the same slab (bit-identical to live generation).
	rec, err := gals.RecordWorkload(spec, *window)
	if err != nil {
		log.Fatal(err)
	}
	run := func(cfg gals.Config) (*gals.Result, error) {
		return gals.RunRecorded(rec, cfg, *window)
	}

	// Baseline: the best-overall fully synchronous machine.
	syncRes, err := run(gals.DefaultSynchronous())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on the best synchronous machine: %.2f us\n\n", spec.Name, syncRes.Seconds()*1e6)

	// One-dimensional slices through the adaptive space, holding the other
	// structures at the base configuration.
	fmt.Println("D-cache/L2 slice (i$=16k1W, iq=16, fq=16):")
	for dc := gals.DCacheConfig(0); dc < 4; dc++ {
		cfg := gals.DefaultProgramAdaptive()
		cfg.DCache = dc
		r, err := run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  d$=%-16v time %8.2f us  improvement %+6.1f%%\n",
			dc, r.Seconds()*1e6, gals.Improvement(syncRes.TimeFS, r.TimeFS))
	}

	fmt.Println("\nI-cache slice (d$=32k1W, iq=16, fq=16):")
	for ic := gals.ICacheConfig(0); ic < 4; ic++ {
		cfg := gals.DefaultProgramAdaptive()
		cfg.ICache = ic
		r, err := run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  i$=%-6v time %8.2f us  improvement %+6.1f%%\n",
			ic, r.Seconds()*1e6, gals.Improvement(syncRes.TimeFS, r.TimeFS))
	}

	fmt.Println("\nInteger issue queue slice (caches at base):")
	for _, iq := range []gals.IQSize{16, 32, 48, 64} {
		cfg := gals.DefaultProgramAdaptive()
		cfg.IntIQ = iq
		r, err := run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  iq=%-3d time %8.2f us  improvement %+6.1f%%\n",
			iq, r.Seconds()*1e6, gals.Improvement(syncRes.TimeFS, r.TimeFS))
	}

	// Full 256-point search: the Program-Adaptive selection.
	best, t := gals.ProgramAdaptiveSearch(spec, gals.SweepOptions{Window: *window})
	fmt.Printf("\nProgram-Adaptive selection (256-point exhaustive search):\n  %s\n", best.Label())
	fmt.Printf("  time %8.2f us  improvement %+6.1f%% over best synchronous\n",
		float64(t)/1e9, gals.Improvement(syncRes.TimeFS, t))
}
